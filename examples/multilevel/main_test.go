package main

import "testing"

// TestMainSmoke runs the multilevel hierarchy study in-process.
func TestMainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke test skipped in -short mode")
	}
	main()
}
