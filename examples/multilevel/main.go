// Multilevel walks the hierarchical-checkpointing study end to end:
// derive a checkpoint hierarchy from a Table 2 platform, plan the
// optimal multilevel pattern per hierarchy depth, validate the exact
// model by Monte-Carlo simulation, and execute a protected application
// under the winning plan — including a mid-run plan swap at a pattern
// boundary, the hook an adaptive re-planning loop drives.
//
// The study makes the Section 4.1 / 7.1 composition executable: the
// paper's single-level verified patterns on one axis, classic
// multi-level checkpointing on the other, and the combined model
// strictly better than either ingredient alone whenever most fail-stop
// errors are recoverable below the disk.
//
// Run with:
//
//	go run ./examples/multilevel
package main

import (
	"fmt"
	"log"
	"os"

	"respat"
	"respat/internal/faults"
	"respat/internal/harness"
	"respat/internal/platform"
)

func main() {
	// 1. The hierarchy-depth figure across all Table 2 platforms:
	//    L = 1 (disk only), L = 2 (memory + disk), L = 3 (+ local tier).
	o := harness.Fast()
	o.CampaignWorkers = 0
	rows, err := harness.MultilevelStudy(platform.Table2(), []int{1, 2, 3}, o)
	if err != nil {
		log.Fatal(err)
	}
	if err := harness.RenderMultilevelStudy(rows).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 2. Pick the best depth for Hera and protect a real (toy)
	//    application under it. The demo scales Hera's error rates 200x
	//    (a short run still meets errors) and re-plans for the scaled
	//    platform — never run a plan at rates it was not planned for.
	hera, err := respat.PlatformByName("Hera")
	if err != nil {
		log.Fatal(err)
	}
	best := rows[0]
	for _, r := range rows {
		if r.Platform == "Hera" && r.Predicted < best.Predicted {
			best = r
		}
	}
	scaled := hera.ScaleRates(200, 200)
	params, err := respat.MultilevelFromPlatform(scaled, best.Levels)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := respat.OptimalMultilevel(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest Hera hierarchy: L=%d; at 200x rates: %v\n", best.Levels, plan)

	failSrc, err := faults.NewExponential(scaled.Rates.FailStop, 11, 12)
	if err != nil {
		log.Fatal(err)
	}
	silentSrc, err := faults.NewExponential(scaled.Rates.Silent, 13, 14)
	if err != nil {
		log.Fatal(err)
	}
	var work float64
	app := respat.WorkFunc(func(w float64) error { work += w; return nil })

	// A Boundary hook that swaps to a shorter pattern halfway — the
	// multilevel analogue of the adaptive re-planning swap point.
	half := plan.Spec
	half.W = plan.Spec.W / 2
	swapped := false
	rep, err := respat.ProtectMultilevel(respat.MultilevelEngineConfig{
		App:      app,
		Params:   params,
		Spec:     plan.Spec,
		Patterns: 4,
		FailStop: failSrc,
		Silent:   silentSrc,
		Boundary: func(done int, rep respat.MultilevelReport) (*respat.MultilevelSpec, error) {
			if done == 2 && !swapped {
				swapped = true
				return &half, nil
			}
			return nil, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected run: work %.0fs in %.0fs (overhead %.2f%%), %d fail-stop, %d silent, swaps %d\n",
		rep.Work, rep.Time, 100*rep.Overhead, rep.FailStop, rep.Silent, rep.PlanSwaps)
	fmt.Printf("recoveries by level: %v (silent rollbacks %d)\n", rep.Recs[:params.L()], rep.SilentRecs)
}
