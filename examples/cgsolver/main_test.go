package main

import "testing"

// TestMainSmoke runs the protected CG solver example in-process.
func TestMainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke test skipped in -short mode")
	}
	main()
}
