// Cgsolver protects a sparse conjugate-gradient solve — the paper's
// §8 target application class — with the resilience engine. Two
// application-specific detectors are demonstrated:
//
//   - ABFT column checksums on the sparse matrix-vector product
//     (Huang & Abraham, cited in §7.2), shown standalone;
//   - the CG recurrence-drift check: silent corruption of the iterate
//     breaks the invariant r = b - A·x maintained by the recurrence,
//     which a cheap comparison exposes (Chen's Online-ABFT, cited in
//     §1). This serves as the engine's partial verification.
//
// Run with:
//
//	go run ./examples/cgsolver
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"respat"
	"respat/internal/faults"
	"respat/internal/sparse"
)

const (
	gridN       = 24 // Poisson grid side: matrix size 576
	iterSeconds = 10 // virtual cost of one CG iteration
	driftTol    = 1e-8
)

func main() {
	a, err := sparse.Poisson2D(gridN)
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}

	// Standalone ABFT demo: a checksummed SpMV catches a corrupted
	// product.
	demoABFT(a, b)

	app, err := newCGApp(a, b)
	if err != nil {
		log.Fatal(err)
	}

	// Recurrence-drift detector as the partial verification: it misses
	// nothing that moved the iterate materially, but tiny flips hide
	// below the tolerance — an emergent recall, as with heatsim.
	drift := respat.VerifierFunc(func(ap respat.Application) (bool, error) {
		d, err := ap.(*cgApp).state.RecurrenceDrift()
		if err != nil {
			return false, err
		}
		return d <= driftTol, nil
	})

	costs := respat.Costs{
		DiskCkpt: 60, MemCkpt: 5, DiskRec: 60, MemRec: 5,
		GuarVer: 5, PartVer: 0.5, Recall: 0.9,
	}
	plan, err := respat.Optimal(respat.PDMV, costs, respat.Rates{
		FailStop: 1.0 / 5000, Silent: 1.0 / 1200,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npattern: %s\n", plan)

	flips := &iterateFlipper{rng: rand.New(rand.NewPCG(3, 5))}
	fail, err := faults.NewExponential(1.0/5000, 11, 12)
	if err != nil {
		log.Fatal(err)
	}
	silent, err := faults.NewExponential(1.0/1200, 13, 14)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := respat.Protect(respat.EngineConfig{
		App:      app,
		Pattern:  plan.Pattern,
		Costs:    costs,
		Patterns: 4,
		FailStop: fail,
		Silent:   silent,
		Corrupt:  flips.corrupt,
		Partial:  drift,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CG progressed to iteration %d under %d crashes and %d SDCs\n",
		app.state.Iter, rep.FailStop, rep.Silent)
	fmt.Printf("detections: %d by recurrence drift, %d by guaranteed verification\n",
		rep.DetectByPart, rep.DetectByGuar)
	fmt.Printf("overhead: %.1f%%; tainted: %v\n", 100*rep.Overhead, rep.FinalTainted)

	res, err := app.state.ResidualNorm()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true residual |b-Ax| = %.3g after protected execution\n", res)

	// Reference: the same number of iterations fault-free.
	ref, err := sparse.NewCG(a, b)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < app.state.Iter; i++ {
		if _, err := ref.Step(); err != nil {
			log.Fatal(err)
		}
	}
	var maxDiff float64
	for i := range ref.X {
		maxDiff = math.Max(maxDiff, math.Abs(ref.X[i]-app.state.X[i]))
	}
	fmt.Printf("max |protected - reference iterate| = %.3g\n", maxDiff)
}

func demoABFT(a *sparse.CSR, x []float64) {
	cs := a.ColumnChecksums()
	y, ok, err := a.CheckedMulVec(x, cs, 1e-10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ABFT demo: clean SpMV verified: %v\n", ok)
	// Corrupt one output entry as a transient fault in the product.
	y[7] += 1e-3
	var ySum, cx float64
	for _, v := range y {
		ySum += v
	}
	for j := range x {
		cx += cs[j] * x[j]
	}
	fmt.Printf("ABFT demo: corrupted product detected: %v (|Σy - c·x| = %.3g)\n",
		math.Abs(ySum-cx) > 1e-10, math.Abs(ySum-cx))
}

// cgApp adapts sparse.CGState to the engine's Application interface.
type cgApp struct {
	state *sparse.CGState
	carry float64
}

func newCGApp(a *sparse.CSR, b []float64) (*cgApp, error) {
	st, err := sparse.NewCG(a, b)
	if err != nil {
		return nil, err
	}
	return &cgApp{state: st}, nil
}

func (c *cgApp) Advance(work float64) error {
	c.carry += work
	for c.carry >= iterSeconds {
		c.carry -= iterSeconds
		if _, err := c.state.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (c *cgApp) Snapshot() ([]byte, error) {
	n := len(c.state.X)
	buf := make([]byte, 8*(3*n+3))
	put := func(off int, v float64) {
		binary.LittleEndian.PutUint64(buf[8*off:], math.Float64bits(v))
	}
	put(0, c.carry)
	put(1, c.state.RdotR)
	put(2, float64(c.state.Iter))
	for i := 0; i < n; i++ {
		put(3+i, c.state.X[i])
		put(3+n+i, c.state.R[i])
		put(3+2*n+i, c.state.P[i])
	}
	return buf, nil
}

func (c *cgApp) Restore(b []byte) error {
	n := len(c.state.X)
	if len(b) != 8*(3*n+3) {
		return fmt.Errorf("cg: snapshot size %d", len(b))
	}
	get := func(off int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(b[8*off:]))
	}
	c.carry = get(0)
	c.state.RdotR = get(1)
	c.state.Iter = int(get(2))
	for i := 0; i < n; i++ {
		c.state.X[i] = get(3 + i)
		c.state.R[i] = get(3 + n + i)
		c.state.P[i] = get(3 + 2*n + i)
	}
	return nil
}

// iterateFlipper corrupts the CG iterate with a random bit flip,
// breaking the recurrence invariant r = b - A·x.
type iterateFlipper struct{ rng *rand.Rand }

func (f *iterateFlipper) corrupt(a respat.Application) error {
	st := a.(*cgApp).state
	i := f.rng.IntN(len(st.X))
	bit := uint(20 + f.rng.IntN(44)) // avoid sub-tolerance low-mantissa flips
	st.X[i] = math.Float64frombits(math.Float64bits(st.X[i]) ^ (1 << bit))
	return nil
}
