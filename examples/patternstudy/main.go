// Patternstudy explores the design space the paper's Table 1 spans:
// how the optimal family and its overhead react to the quality of the
// partial verification (cost V and recall r) and to the disk/memory
// checkpoint cost ratio. It is pure analytics — no simulation — and
// reproduces the paper's qualitative conclusions: partial
// verifications pay off exactly when their accuracy-to-cost ratio
// beats the guaranteed verification, and two-level checkpointing wins
// whenever CD >> CM.
//
// Run with:
//
//	go run ./examples/patternstudy
package main

import (
	"fmt"
	"log"
	"os"

	"respat"
	"respat/internal/report"
)

func main() {
	hera, err := respat.PlatformByName("Hera")
	if err != nil {
		log.Fatal(err)
	}

	// Sweep the partial-verification recall at fixed cost.
	t1 := report.New("PDMV on Hera vs partial-verification recall (V = V*/100)",
		"recall r", "acc-to-cost ratio", "m*", "H*(PDMV)", "H*(PDMV*)", "partial wins")
	for _, r := range []float64{0.1, 0.3, 0.5, 0.8, 0.95, 1.0} {
		c := hera.Costs
		c.Recall = r
		pdmv, err := respat.Optimal(respat.PDMV, c, hera.Rates)
		if err != nil {
			log.Fatal(err)
		}
		star, err := respat.Optimal(respat.PDMVStar, c, hera.Rates)
		if err != nil {
			log.Fatal(err)
		}
		t1.AddRow(report.Fixed(r, 2), report.Fixed(c.AccuracyToCost(), 0),
			report.I(pdmv.M),
			report.Pct(pdmv.Overhead, 3), report.Pct(star.Overhead, 3),
			fmt.Sprint(pdmv.Overhead < star.Overhead))
	}
	must(t1.Render(os.Stdout))
	fmt.Println()

	// Sweep the partial-verification cost at fixed recall.
	t2 := report.New("PDMV on Hera vs partial-verification cost (r = 0.8)",
		"V / V*", "m*", "H*(PDMV)", "H*(PDMV*)", "partial wins")
	for _, frac := range []float64{0.001, 0.01, 0.05, 0.2, 0.5, 1.0} {
		c := hera.Costs
		c.PartVer = frac * c.GuarVer
		pdmv, err := respat.Optimal(respat.PDMV, c, hera.Rates)
		if err != nil {
			log.Fatal(err)
		}
		star, err := respat.Optimal(respat.PDMVStar, c, hera.Rates)
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRow(report.Fixed(frac, 3), report.I(pdmv.M),
			report.Pct(pdmv.Overhead, 3), report.Pct(star.Overhead, 3),
			fmt.Sprint(pdmv.Overhead < star.Overhead))
	}
	must(t2.Render(os.Stdout))
	fmt.Println()

	// Sweep the disk/memory cost ratio: when disk checkpoints are
	// barely more expensive than memory ones, the second level stops
	// paying for itself.
	t3 := report.New("Two-level benefit on Hera vs disk checkpoint cost (CM = 15.4)",
		"CD (s)", "n*(PDM)", "H*(PD)", "H*(PDM)", "saving")
	for _, cd := range []float64{15.4, 30, 75, 150, 300, 1000, 2500} {
		p := hera.WithDiskCost(cd)
		pd, err := respat.Optimal(respat.PD, p.Costs, p.Rates)
		if err != nil {
			log.Fatal(err)
		}
		pdm, err := respat.Optimal(respat.PDM, p.Costs, p.Rates)
		if err != nil {
			log.Fatal(err)
		}
		t3.AddRow(report.Fixed(cd, 1), report.I(pdm.N),
			report.Pct(pd.Overhead, 3), report.Pct(pdm.Overhead, 3),
			report.Pct(pd.Overhead-pdm.Overhead, 3))
	}
	must(t3.Render(os.Stdout))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
