// Heatsim protects a 2-D heat-diffusion stencil — the prototypical HPC
// dataset of the paper's motivation — with the resilience engine.
// Silent data corruptions are injected as random bit flips in grid
// cells; the partial verification is a *real* detector exploiting the
// maximum principle of the heat equation (values can never leave the
// initial data range), in the spirit of the data-dynamic-monitoring
// detectors the paper cites ([3], [9]). Its recall is therefore not a
// model parameter but an emergent, measured property: flips in high
// exponent bits are caught, flips deep in the mantissa are missed and
// fall through to the guaranteed verification.
//
// Run with:
//
//	go run ./examples/heatsim
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"respat"
	"respat/internal/faults"
)

const (
	gridN       = 64   // grid side; state is gridN² floats
	stepSeconds = 30   // virtual cost of one stencil sweep
	alpha       = 0.2  // diffusion number (stable: <= 0.25)
	patterns    = 12   // pattern instances to execute
	silentMTBF  = 600  // seconds of computation between injected SDCs
	failMTBF    = 7200 // seconds between injected crashes
)

func main() {
	app := newHeat(gridN)
	lo, hi := app.bounds()

	// The physics detector: any cell outside the initial range (or NaN)
	// reveals corruption. It is cheap — one pass over the grid.
	physics := respat.VerifierFunc(func(a respat.Application) (bool, error) {
		h := a.(*heat)
		for _, v := range h.grid {
			if !(v >= lo && v <= hi) { // NaN fails both comparisons
				return false, nil
			}
		}
		return true, nil
	})

	// A modest pattern: short segments with several partial
	// verifications each — the PDMV shape.
	costs := respat.Costs{
		DiskCkpt: 120, MemCkpt: 10, DiskRec: 120, MemRec: 10,
		GuarVer: 10, PartVer: 0.5, Recall: 0.8,
	}
	plan, err := respat.Optimal(respat.PDMV, costs, respat.Rates{
		FailStop: 1.0 / failMTBF, Silent: 1.0 / silentMTBF,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern: %s\n", plan)

	flips := &flipInjector{rng: rand.New(rand.NewPCG(42, 1))}
	fail, err := faults.NewExponential(1.0/failMTBF, 7, 8)
	if err != nil {
		log.Fatal(err)
	}
	silent, err := faults.NewExponential(1.0/silentMTBF, 9, 10)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := respat.Protect(respat.EngineConfig{
		App:      app,
		Pattern:  plan.Pattern,
		Costs:    costs,
		Patterns: patterns,
		FailStop: fail,
		Silent:   silent,
		Corrupt:  flips.corrupt,
		Partial:  physics, // real detector; guaranteed stays the oracle
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nexecuted %.0f s of stencil work in %.0f s wall (overhead %.1f%%)\n",
		rep.Work, rep.Time, 100*rep.Overhead)
	fmt.Printf("injected: %d crashes, %d bit flips\n", rep.FailStop, rep.Silent)
	fmt.Printf("recoveries: %d disk, %d memory\n", rep.DiskRecs, rep.MemRecs)
	det := rep.DetectByPart + rep.DetectByGuar
	fmt.Printf("detections: %d by physics bounds (partial), %d by guaranteed\n",
		rep.DetectByPart, rep.DetectByGuar)
	if det > 0 {
		fmt.Printf("measured physics-detector share: %.0f%% of detections\n",
			100*float64(rep.DetectByPart)/float64(det))
	}
	fmt.Printf("final state tainted: %v\n", rep.FinalTainted)

	// Cross-check against an uninterrupted reference run.
	ref := newHeat(gridN)
	if err := ref.Advance(rep.Work); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max |protected - reference| = %.3g (clean rollback)\n", app.maxDiff(ref))
}

// heat is the protected application: an FTCS heat-diffusion stencil
// with insulated boundaries.
type heat struct {
	n       int
	grid    []float64
	scratch []float64
	// carry holds virtual seconds not yet amounting to a full sweep.
	carry float64
}

func newHeat(n int) *heat {
	h := &heat{n: n, grid: make([]float64, n*n), scratch: make([]float64, n*n)}
	// A hot square on a cold plate.
	for i := n / 4; i < n/2; i++ {
		for j := n / 4; j < n/2; j++ {
			h.grid[i*n+j] = 100
		}
	}
	return h
}

func (h *heat) bounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range h.grid {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// Advance converts virtual seconds into whole stencil sweeps, carrying
// the remainder so arbitrary chunkings reproduce the same trajectory.
func (h *heat) Advance(work float64) error {
	h.carry += work
	for h.carry >= stepSeconds {
		h.carry -= stepSeconds
		h.sweep()
	}
	return nil
}

func (h *heat) sweep() {
	n := h.n
	at := func(i, j int) float64 {
		// Insulated (mirror) boundaries preserve the maximum principle.
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		if j < 0 {
			j = 0
		}
		if j >= n {
			j = n - 1
		}
		return h.grid[i*n+j]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c := h.grid[i*n+j]
			h.scratch[i*n+j] = c + alpha*(at(i-1, j)+at(i+1, j)+at(i, j-1)+at(i, j+1)-4*c)
		}
	}
	h.grid, h.scratch = h.scratch, h.grid
}

func (h *heat) Snapshot() ([]byte, error) {
	buf := make([]byte, 8*(len(h.grid)+1))
	binary.LittleEndian.PutUint64(buf, math.Float64bits(h.carry))
	for i, v := range h.grid {
		binary.LittleEndian.PutUint64(buf[8*(i+1):], math.Float64bits(v))
	}
	return buf, nil
}

func (h *heat) Restore(b []byte) error {
	if len(b) != 8*(len(h.grid)+1) {
		return fmt.Errorf("heat: snapshot size %d", len(b))
	}
	h.carry = math.Float64frombits(binary.LittleEndian.Uint64(b))
	for i := range h.grid {
		h.grid[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*(i+1):]))
	}
	return nil
}

func (h *heat) maxDiff(o *heat) float64 {
	var m float64
	for i := range h.grid {
		m = math.Max(m, math.Abs(h.grid[i]-o.grid[i]))
	}
	return m
}

// flipInjector corrupts a random bit of a random cell — the physical
// SDC mechanism (cosmic-ray upsets) behind the paper's silent errors.
type flipInjector struct{ rng *rand.Rand }

func (f *flipInjector) corrupt(a respat.Application) error {
	h := a.(*heat)
	cell := f.rng.IntN(len(h.grid))
	bit := uint(f.rng.IntN(64))
	h.grid[cell] = math.Float64frombits(math.Float64bits(h.grid[cell]) ^ (1 << bit))
	return nil
}
