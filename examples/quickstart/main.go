// Quickstart: plan the optimal resilience pattern for a platform,
// predict its overhead, validate the prediction by simulation, and
// protect a toy application with the runtime engine.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"respat"
	"respat/internal/faults"
)

func main() {
	// 1. Pick a platform (Table 2 of the paper) — or build your own
	//    respat.Costs / respat.Rates from measurements.
	hera, err := respat.PlatformByName("Hera")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform %s: fail-stop MTBF %.1f days, silent MTBF %.1f days\n",
		hera.Name, hera.FailStopMTBFDays(), hera.SilentMTBFDays())

	// 2. Plan the optimal pattern for every family and pick the best.
	fmt.Println("\nTable 1 instantiation:")
	var best respat.Plan
	for _, k := range respat.Kinds() {
		plan, err := respat.Optimal(k, hera.Costs, hera.Rates)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s W*=%8.0fs  n*=%2d  m*=%2d  predicted overhead %.3f%%\n",
			plan.Kind, plan.W, plan.N, plan.M, 100*plan.Overhead)
		if best.W == 0 || plan.Overhead < best.Overhead {
			best = plan
		}
	}
	fmt.Printf("best family: %s\n", best.Kind)

	// 3. Validate the prediction with the Monte-Carlo simulator.
	res, err := respat.Simulate(respat.SimConfig{
		Pattern:     best.Pattern,
		Costs:       hera.Costs,
		Rates:       hera.Rates,
		Patterns:    200,
		Runs:        50,
		Seed:        1,
		ErrorsInOps: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated overhead: %.3f%% ± %.3f%% (predicted %.3f%%)\n",
		100*res.Overhead.Mean(), 100*res.Overhead.CI95(), 100*best.Overhead)
	fmt.Printf("disk recoveries/day %.3f, mem recoveries/day %.3f\n",
		res.PerDay(res.Total.DiskRecs), res.PerDay(res.Total.MemRecs))

	// 4. Protect a real (toy) application with the engine: inject one
	//    crash and one silent corruption and watch the protocol recover.
	var work float64
	app := counter{&work}
	rep, err := respat.Protect(respat.EngineConfig{
		App:      app,
		Pattern:  best.Pattern,
		Costs:    hera.Costs,
		Patterns: 3,
		FailStop: faults.NewTrace([]float64{best.W * 1.5}),
		Silent:   faults.NewTrace([]float64{best.W * 0.25}),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nengine: %d crash(es), %d silent error(s); %d disk + %d mem recoveries; overhead %.2f%%\n",
		rep.FailStop, rep.Silent, rep.DiskRecs, rep.MemRecs, 100*rep.Overhead)
	fmt.Printf("final state tainted: %v\n", rep.FinalTainted)
}

// counter is the simplest possible Application: its state is the work
// performed so far. Snapshots are not needed for correctness here
// (Advance is replayed deterministically), so they are empty.
type counter struct{ work *float64 }

func (c counter) Advance(w float64) error { *c.work += w; return nil }
func (counter) Snapshot() ([]byte, error) { return []byte{}, nil }
func (counter) Restore([]byte) error      { return nil }
