package main

import "testing"

// TestMainSmoke runs the quickstart end to end in-process (plan,
// simulate, protect). Any failure inside main aborts via log.Fatal,
// failing the test binary.
func TestMainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke test skipped in -short mode")
	}
	main()
}
