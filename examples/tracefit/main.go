// Tracefit demonstrates the operations loop around the planner: take
// raw failure logs (here synthesised with a bursty Weibull law for
// crashes and an exponential law for SDC detections), fit failure
// models by maximum likelihood, select a law by AIC, and feed the
// fitted rates to the pattern planner. It then stress-tests the plan:
// the pattern optimised from the *fitted* exponential rates is
// simulated under the *true* (non-exponential) generator to show the
// model's robustness to mis-specified laws.
//
// Run with:
//
//	go run ./examples/tracefit
package main

import (
	"fmt"
	"log"
	"os"

	"respat"
	"respat/internal/faultfit"
	"respat/internal/faults"
	"respat/internal/report"
)

const (
	observationDays = 120
	failShape       = 0.7      // true crash law: Weibull, infant-mortality regime
	failScaleS      = 180000.0 // ~2.6 days MTBF after Γ correction
	silentMTBFS     = 43200.0  // 12 h
)

func main() {
	// 1. Synthesise the observation logs.
	failLog := synthesise(func() faults.Source {
		w, err := faults.NewWeibull(failShape, failScaleS, 11, 13)
		if err != nil {
			log.Fatal(err)
		}
		return w
	}())
	silentLog := synthesise(func() faults.Source {
		e, err := faults.NewExponential(1/silentMTBFS, 17, 19)
		if err != nil {
			log.Fatal(err)
		}
		return e
	}())
	fmt.Printf("observed %d crashes and %d SDCs over %d days\n",
		len(failLog), len(silentLog), observationDays)

	// 2. Fit both logs.
	failFit, err := faultfit.Select(faultfit.Gaps(failLog))
	if err != nil {
		log.Fatal(err)
	}
	silentFit, err := faultfit.Select(faultfit.Gaps(silentLog))
	if err != nil {
		log.Fatal(err)
	}
	t := report.New("Fitted failure models",
		"log", "selected", "rate (/s)", "MTBF (h)", "Weibull k", "KS p")
	name := func(weib bool) string {
		if weib {
			return "Weibull"
		}
		return "exponential"
	}
	t.AddRow("crashes", name(failFit.BestIsWeibull),
		report.F(failFit.Rate, 3), report.Fixed(1/failFit.Rate/3600, 1),
		report.Fixed(failFit.Weibull.Shape, 2), report.Fixed(failFit.KSp, 3))
	t.AddRow("SDCs", name(silentFit.BestIsWeibull),
		report.F(silentFit.Rate, 3), report.Fixed(1/silentFit.Rate/3600, 1),
		report.Fixed(silentFit.Weibull.Shape, 2), report.Fixed(silentFit.KSp, 3))
	must(t.Render(os.Stdout))

	// 3. Plan with the fitted rates (the paper's model is exponential;
	//    the fitted long-run rates are what it consumes).
	costs := respat.Costs{
		DiskCkpt: 240, MemCkpt: 12, DiskRec: 240, MemRec: 12,
		GuarVer: 12, PartVer: 0.12, Recall: 0.8,
	}
	rates := respat.Rates{FailStop: failFit.Rate, Silent: silentFit.Rate}
	plan, err := respat.Optimal(respat.PDMV, costs, rates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanned from fitted rates: %s\n", plan)

	// 4. Stress test: simulate the plan under the TRUE bursty crash law.
	mkTrue := func(run int) faults.Source {
		s1, s2 := faults.SplitSeed(23, uint64(run))
		w, err := faults.NewWeibull(failShape, failScaleS, s1, s2)
		if err != nil {
			log.Fatal(err)
		}
		return w
	}
	trueRes, err := respat.Simulate(respat.SimConfig{
		Pattern: plan.Pattern, Costs: costs,
		Rates:    respat.Rates{Silent: silentFit.Rate},
		Patterns: 150, Runs: 60, Seed: 29, ErrorsInOps: true,
		FailSource: mkTrue,
	})
	if err != nil {
		log.Fatal(err)
	}
	// And under the fitted exponential law, for reference.
	expRes, err := respat.Simulate(respat.SimConfig{
		Pattern: plan.Pattern, Costs: costs, Rates: rates,
		Patterns: 150, Runs: 60, Seed: 29, ErrorsInOps: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted overhead (model):            %.2f%%\n", 100*plan.Overhead)
	fmt.Printf("simulated, exponential crashes:        %.2f%% ± %.2f%%\n",
		100*expRes.Overhead.Mean(), 100*expRes.Overhead.CI95())
	fmt.Printf("simulated, true Weibull(k=%.1f) crashes: %.2f%% ± %.2f%%\n",
		failShape, 100*trueRes.Overhead.Mean(), 100*trueRes.Overhead.CI95())
	fmt.Println("\nthe exponential plan remains effective under the bursty law;")
	fmt.Println("its overhead shifts with the clustering but stays the same order.")
}

// synthesise collects arrivals of src within the observation window.
func synthesise(src faults.Source) []float64 {
	horizon := float64(observationDays) * 86400
	var times []float64
	now := 0.0
	for {
		now = src.Next(now)
		if now > horizon {
			return times
		}
		times = append(times, now)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
