package main

import "testing"

// TestMainSmoke replays the trace and runs the capacity sweep
// in-process. Any failure inside main aborts via log.Fatal, failing
// the test binary.
func TestMainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke test skipped in -short mode")
	}
	main()
}
