// Fleet: simulate a whole cluster of jobs, each protected by its own
// optimal resilience plan, through the deterministic discrete-event
// simulator — first from the example trace in this directory, then as
// a capacity sweep showing where queueing delay takes off.
//
// Run with:
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"os"

	"respat"
)

func main() {
	hera, err := respat.PlatformByName("Hera")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Replay the example trace: mixed modes on a 64-node slice.
	f, err := os.Open("trace.txt")
	if err != nil {
		// Allow running from the repository root too.
		f, err = os.Open("examples/fleet/trace.txt")
		if err != nil {
			log.Fatal(err)
		}
	}
	trace, err := respat.ParseFleetTrace(f, respat.FleetPattern)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	res, err := respat.SimulateFleet(respat.FleetConfig{
		Platform: hera, Nodes: 64, Family: respat.PDMV,
		Trace: trace, Backfill: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace replay: %d jobs, makespan %.1f h, utilization %.1f%%, overhead p99 %.2f%%\n",
		res.Jobs, res.Makespan/3600, 100*res.Utilization, 100*res.Overhead.P99)
	for _, p := range res.Plans {
		fmt.Printf("  %-10s x%d on %3d nodes: W*=%.0fs, predicted overhead %.2f%%\n",
			p.Mode, p.Jobs, p.Nodes, p.W, 100*p.PredictedOverhead)
	}

	// 2. Capacity sweep: at low arrival rates the queue is empty and
	//    sojourn time is dominated by the resilience overhead; past the
	//    saturation point queueing delay explodes while the per-job
	//    overhead stays flat — the overhead is a property of the plan,
	//    not the load.
	//    Work is quantized to whole patterns (W* ≈ 2.3 days for 8-node
	//    jobs on Hera), so realistic fleet jobs are multi-day runs:
	//    10-day 8-node jobs on 64 nodes saturate near 0.6 jobs/day.
	fmt.Println("\ncapacity sweep (64 nodes, 8-node jobs, 10 d mean work, 2000 jobs/point):")
	fmt.Println("  rate(j/d)  util%   queue-p99(d)  overhead-p99(%)")
	for _, perDay := range []float64{0.1, 0.25, 0.4, 0.5, 0.55} {
		res, err := respat.SimulateFleet(respat.FleetConfig{
			Platform: hera, Nodes: 64, Family: respat.PDMV,
			NumJobs: 2000, Rate: perDay / 86400,
			JobWork: 10 * 86400, WorkSpread: 4, JobNodes: 8,
			Backfill: true, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %8.2f  %5.1f  %11.2f  %14.2f\n",
			perDay, 100*res.Utilization, res.QueueDelay.P99/86400, 100*res.Overhead.P99)
	}
}
