#!/bin/sh
# bench.sh — snapshot the repository benchmarks as a JSON file so future
# PRs can track the perf trajectory (see DESIGN.md §4). The snapshot
# covers every benchmark in bench_test.go, including the multilevel
# planner (BenchmarkMultilevelPlan) and the service hot paths
# (BenchmarkServicePlanHot / BenchmarkServiceMultilevelHot), and fails
# if a service cache hit reports any allocations — the PR 2 0-alloc
# contract, extended to the multilevel endpoint. A second, fixed-20x
# pass gates the cold paths: BenchmarkMultilevelPlan must stay under
# 5ms and 1000 allocs/op, BenchmarkSimulatePattern under 30µs, and a
# whole 500-job fleet campaign (BenchmarkFleetSmall) under 25ms and
# 10000 allocs/op. The same pass holds the admission-gated hit path
# (BenchmarkServicePlanHot) under an absolute 2500ns/op: the PR 8
# overload gate must cost a cache hit nothing measurable (~900ns
# today), and the 0-alloc gate above already pins its allocations.
# The PR 9 ring-route gate holds BenchmarkRingRoute (the per-request
# consistent-hash owner lookup) at 0 allocs/op and under 1000ns/op,
# and a fixed-seed respatd-bench closed-loop run records the first
# serving-SLO snapshot inside the same BENCH_<date>.json under
# "respatd_bench" (failing the script if its SLO check fails).
# The PR 10 observability gates: BenchmarkServicePlanHot now runs with
# the tracer compiled in and sampling enabled, so its 0-alloc and
# 2500ns gates also pin the tracing overhead on the unsampled hot
# path; BenchmarkTraceRecord (a fully sampled trace: start, three
# spans, ring push) must stay under 10µs; BenchmarkPromScrape (the
# whole Prometheus exposition) under 2ms.
#
# Usage: scripts/bench.sh [outdir] [benchtime]
#   outdir    where to write BENCH_<date>.json (default: .)
#   benchtime go test -benchtime value (default: 1x)
#
# Output schema: {"date": ..., "go": ..., "benchmarks":
#   {"<name>": {"ns_per_op": N, "bytes_per_op": N, "allocs_per_op": N}}}
set -eu

outdir=${1:-.}
benchtime=${2:-1x}
mkdir -p "$outdir"
date=$(date -u +%Y-%m-%d)
out="$outdir/BENCH_${date}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchtime "$benchtime" -benchmem . | tee "$raw"

goversion=$(go version | sed 's/"/\\"/g')
awk -v date="$date" -v goversion="$goversion" '
BEGIN { printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": {\n", date, goversion }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs)
}
END { printf "\n  }\n}\n" }
' "$raw" > "$out"

# 0-alloc gate: a service plan-cache hit (single-level or multilevel)
# and the consistent-hash ring route must report 0 allocs/op in the
# snapshot just emitted.
if awk '/^BenchmarkService(Plan|Multilevel)Hot|^BenchmarkRingRoute/ {
        for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op" && $i + 0 > 0) bad = 1
    } END { exit bad }' "$raw"; then
    :
else
    echo "bench.sh: service cache-hit or ring-route path allocates (see above); 0 allocs/op required" >&2
    exit 1
fi

# Ratio gates on the overhauled cold paths. These run at a fixed 20x
# benchtime regardless of the snapshot benchtime: single-iteration
# timings include goroutine spawn/handoff noise comparable to the
# budgets themselves (the source of the phantom SimulatePattern
# "regression" between the 2026-07 snapshots).
gateraw=$(mktemp)
trap 'rm -f "$raw" "$gateraw"' EXIT
go test -run '^$' -bench 'BenchmarkMultilevelPlan$|BenchmarkSimulatePattern$|BenchmarkFleetSmall$|BenchmarkServicePlanHot$|BenchmarkRingRoute$|BenchmarkTraceRecord$|BenchmarkPromScrape$' \
    -benchtime 20x -benchmem . | tee "$gateraw"
if awk '
    /^BenchmarkMultilevelPlan/ {
        for (i = 2; i < NF; i++) {
            if ($(i+1) == "ns/op" && $i + 0 > 5000000) { print "gate: MultilevelPlan " $i " ns/op > 5ms"; bad = 1 }
            if ($(i+1) == "allocs/op" && $i + 0 > 1000) { print "gate: MultilevelPlan " $i " allocs/op > 1000"; bad = 1 }
        }
    }
    /^BenchmarkSimulatePattern/ {
        for (i = 2; i < NF; i++)
            if ($(i+1) == "ns/op" && $i + 0 > 30000) { print "gate: SimulatePattern " $i " ns/op > 30µs"; bad = 1 }
    }
    /^BenchmarkServicePlanHot/ {
        for (i = 2; i < NF; i++)
            if ($(i+1) == "ns/op" && $i + 0 > 2500) { print "gate: ServicePlanHot " $i " ns/op > 2500ns (admission gate must stay off the hit path)"; bad = 1 }
    }
    /^BenchmarkFleetSmall/ {
        for (i = 2; i < NF; i++) {
            if ($(i+1) == "ns/op" && $i + 0 > 25000000) { print "gate: FleetSmall " $i " ns/op > 25ms"; bad = 1 }
            if ($(i+1) == "allocs/op" && $i + 0 > 10000) { print "gate: FleetSmall " $i " allocs/op > 10000"; bad = 1 }
        }
    }
    /^BenchmarkRingRoute/ {
        for (i = 2; i < NF; i++)
            if ($(i+1) == "ns/op" && $i + 0 > 1000) { print "gate: RingRoute " $i " ns/op > 1000ns (owner lookup must stay off the hot path)"; bad = 1 }
    }
    /^BenchmarkTraceRecord/ {
        for (i = 2; i < NF; i++)
            if ($(i+1) == "ns/op" && $i + 0 > 10000) { print "gate: TraceRecord " $i " ns/op > 10µs (sampled-trace overhead)"; bad = 1 }
    }
    /^BenchmarkPromScrape/ {
        for (i = 2; i < NF; i++)
            if ($(i+1) == "ns/op" && $i + 0 > 2000000) { print "gate: PromScrape " $i " ns/op > 2ms (exposition render)"; bad = 1 }
    }
    END { exit bad }' "$gateraw"; then
    :
else
    echo "bench.sh: cold-path budget exceeded (see gate lines above)" >&2
    exit 1
fi

# Serving-SLO snapshot: a hermetic fixed-seed respatd-bench closed loop
# (same workload CI gates via TestClosedLoopSLO). Its JSON report is
# merged into the snapshot under "respatd_bench"; a failed SLO check
# (non-zero exit) fails the script.
slo=$(mktemp)
trap 'rm -f "$raw" "$gateraw" "$slo"' EXIT
go run ./cmd/respatd-bench -inprocess -mode closed -clients 8 -requests 2000 \
    -configs 64 -seed 42 -slo-p99 5s -slo-error-rate 0 -slo-min-qps 1 > "$slo"
# Append: strip the snapshot's closing brace, add the report as one key.
sed '$d' "$out" > "$out.tmp"
{
    cat "$out.tmp"
    printf ',\n  "respatd_bench": '
    sed 's/^/  /;1s/^  //' "$slo"
    printf '}\n'
} > "$out"
rm -f "$out.tmp"

echo "wrote $out"
