#!/bin/sh
# bench.sh — snapshot the repository benchmarks as a JSON file so future
# PRs can track the perf trajectory (see DESIGN.md §4).
#
# Usage: scripts/bench.sh [outdir] [benchtime]
#   outdir    where to write BENCH_<date>.json (default: .)
#   benchtime go test -benchtime value (default: 1x)
#
# Output schema: {"date": ..., "go": ..., "benchmarks":
#   {"<name>": {"ns_per_op": N, "bytes_per_op": N, "allocs_per_op": N}}}
set -eu

outdir=${1:-.}
benchtime=${2:-1x}
mkdir -p "$outdir"
date=$(date -u +%Y-%m-%d)
out="$outdir/BENCH_${date}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchtime "$benchtime" -benchmem . | tee "$raw"

goversion=$(go version | sed 's/"/\\"/g')
awk -v date="$date" -v goversion="$goversion" '
BEGIN { printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": {\n", date, goversion }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs)
}
END { printf "\n  }\n}\n" }
' "$raw" > "$out"

echo "wrote $out"
