module respat

go 1.24
