// Package sched provides the bounded fan-out discipline shared by the
// experiment harness (campaign cells) and the planning service (batch
// requests): n independent cells claimed in index order by at most
// `workers` goroutines, each cell writing only its own output slot.
//
// The discipline guarantees two properties that both consumers rely on:
//
//  1. Determinism — because a cell's inputs derive from its index alone
//     and it writes only its own slot, outputs are bit-identical for
//     any worker count;
//  2. Sequential error semantics — after a failure no new cells start,
//     and because cells are claimed in index order the reported error
//     is the one a sequential loop would have returned (every cell
//     below the first failure was already claimed, so the
//     lowest-indexed failing cell always records its error).
package sched

import (
	"sync"
	"sync/atomic"
)

// RunCells evaluates the n cells with at most workers of them in
// flight. workers <= 1 (or n <= 1) runs the cells sequentially in the
// calling goroutine. cell(i) must write only its own output slot.
func RunCells(n, workers int, cell func(i int) error) error {
	return RunCellsCtx(n, workers, func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) error { return cell(i) })
}

// RunCellsCtx is RunCells for cells that share expensive per-worker
// state (a warm evaluator, a reusable scratch buffer): each worker
// constructs one context via newCtx and threads it through every cell
// it claims. Because cells are claimed dynamically, which context a
// cell sees depends on scheduling — so the determinism contract
// tightens: a context must be a cache or scratch whose history cannot
// influence cell outputs, which must remain pure functions of the cell
// index. Error semantics extend RunCells: after any failure no new
// cells start, the lowest-indexed cell error wins, and a newCtx error
// is reported only when no cell error preceded it. newCtx is never
// called when n == 0.
func RunCellsCtx[C any](n, workers int, newCtx func() (C, error), cell func(ctx C, i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ctx, err := newCtx()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := cell(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	ctxErrs := make([]error, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, err := newCtx()
			if err != nil {
				ctxErrs[w] = err
				failed.Store(true)
				return
			}
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if errs[i] = cell(ctx, i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, err := range ctxErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs cell over every element of cells on a RunCells pool and
// collects the results in cell order.
func Map[C, R any](cells []C, workers int, cell func(i int, c C) (R, error)) ([]R, error) {
	rows := make([]R, len(cells))
	err := RunCells(len(cells), workers, func(i int) error {
		r, err := cell(i, cells[i])
		if err != nil {
			return err
		}
		rows[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
