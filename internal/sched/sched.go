// Package sched provides the bounded fan-out discipline shared by the
// experiment harness (campaign cells) and the planning service (batch
// requests): n independent cells claimed in index order by at most
// `workers` goroutines, each cell writing only its own output slot.
//
// The discipline guarantees two properties that both consumers rely on:
//
//  1. Determinism — because a cell's inputs derive from its index alone
//     and it writes only its own slot, outputs are bit-identical for
//     any worker count;
//  2. Sequential error semantics — after a failure no new cells start,
//     and because cells are claimed in index order the reported error
//     is the one a sequential loop would have returned (every cell
//     below the first failure was already claimed, so the
//     lowest-indexed failing cell always records its error).
package sched

import (
	"sync"
	"sync/atomic"
)

// RunCells evaluates the n cells with at most workers of them in
// flight. workers <= 1 (or n <= 1) runs the cells sequentially in the
// calling goroutine. cell(i) must write only its own output slot.
func RunCells(n, workers int, cell func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if errs[i] = cell(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs cell over every element of cells on a RunCells pool and
// collects the results in cell order.
func Map[C, R any](cells []C, workers int, cell func(i int, c C) (R, error)) ([]R, error) {
	rows := make([]R, len(cells))
	err := RunCells(len(cells), workers, func(i int) error {
		r, err := cell(i, cells[i])
		if err != nil {
			return err
		}
		rows[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
