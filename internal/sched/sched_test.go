package sched

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func workerCounts() []int { return []int{0, 1, 2, 3, 16, runtime.GOMAXPROCS(0)} }

// TestRunCellsRunsEveryCellOnce covers the pool bookkeeping for a
// spread of worker counts, including workers > n.
func TestRunCellsRunsEveryCellOnce(t *testing.T) {
	for _, workers := range workerCounts() {
		var hits [23]atomic.Int32
		if err := RunCells(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Errorf("workers=%d: cell %d ran %d times", workers, i, n)
			}
		}
	}
}

// TestRunCellsReportsFirstErrorInCellOrder: whichever cell fails first
// in wall-clock time, the reported error is the lowest-indexed one,
// matching a sequential loop.
func TestRunCellsReportsFirstErrorInCellOrder(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range workerCounts() {
		err := RunCells(8, workers, func(i int) error {
			switch i {
			case 2:
				return errLow
			case 6:
				return errHigh
			default:
				return nil
			}
		})
		if err != errLow {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

// TestRunCellsBoundsConcurrency asserts at most `workers` cells are in
// flight simultaneously.
func TestRunCellsBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	if err := RunCells(64, workers, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestMapCollectsInOrder: results land in their own slots regardless of
// execution order.
func TestMapCollectsInOrder(t *testing.T) {
	in := make([]int, 50)
	for i := range in {
		in[i] = i
	}
	for _, workers := range workerCounts() {
		out, err := Map(in, workers, func(i, c int) (int, error) { return c * c, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapError: a failing element aborts with its error and nil rows.
func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	rows, err := Map([]int{0, 1, 2}, 2, func(i, c int) (int, error) {
		if c == 1 {
			return 0, boom
		}
		return c, nil
	})
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if rows != nil {
		t.Fatalf("rows = %v, want nil", rows)
	}
}

// TestRunCellsCtxSharesContextPerWorker checks each worker builds
// exactly one context and threads it through every cell it claims.
func TestRunCellsCtxSharesContextPerWorker(t *testing.T) {
	var ctxs atomic.Int64
	n := 64
	seen := make([]int64, n)
	err := RunCellsCtx(n, 4, func() (int64, error) {
		return ctxs.Add(1), nil
	}, func(ctx int64, i int) error {
		seen[i] = ctx
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	built := ctxs.Load()
	if built < 1 || built > 4 {
		t.Fatalf("built %d contexts with 4 workers", built)
	}
	for i, c := range seen {
		if c < 1 || c > built {
			t.Fatalf("cell %d saw context %d of %d", i, c, built)
		}
	}
}

// TestRunCellsCtxCellErrorMidCampaign fails one cell mid-campaign and
// checks the sequential error contract at every worker count: the
// lowest-indexed failing cell's error is reported, and no new cells
// start once the failure is observed.
func TestRunCellsCtxCellErrorMidCampaign(t *testing.T) {
	for _, workers := range workerCounts() {
		errLow := errors.New("low")
		errHigh := errors.New("high")
		var started atomic.Int64
		err := RunCellsCtx(200, workers, func() (struct{}, error) {
			return struct{}{}, nil
		}, func(_ struct{}, i int) error {
			started.Add(1)
			switch i {
			case 90:
				return errLow
			case 150:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
		if workers <= 1 && started.Load() != 91 {
			t.Fatalf("sequential path ran %d cells past the failure", started.Load()-91)
		}
	}
}

// TestRunCellsCtxNewCtxFailure covers the context-construction error
// path: the error surfaces, and cell errors from other workers still
// take precedence over it.
func TestRunCellsCtxNewCtxFailure(t *testing.T) {
	ctxBoom := errors.New("ctx boom")
	// Sequential path: newCtx fails before any cell runs.
	ran := false
	err := RunCellsCtx(5, 1, func() (struct{}, error) {
		return struct{}{}, ctxBoom
	}, func(struct{}, int) error { ran = true; return nil })
	if err != ctxBoom {
		t.Fatalf("sequential err = %v, want %v", err, ctxBoom)
	}
	if ran {
		t.Fatal("cell ran after newCtx failed")
	}
	// Parallel path: every worker's context fails.
	err = RunCellsCtx(50, 4, func() (struct{}, error) {
		return struct{}{}, ctxBoom
	}, func(struct{}, int) error { t.Error("cell ran"); return nil })
	if err != ctxBoom {
		t.Fatalf("parallel err = %v, want %v", err, ctxBoom)
	}
	// Mixed: one worker's context fails but another worker's cell error
	// must win (cell errors are what a sequential loop would surface).
	// The failing constructor waits for cell 0's error so the outcome
	// does not depend on goroutine scheduling.
	cellBoom := errors.New("cell boom")
	var built atomic.Int64
	var cellFailed atomic.Bool
	err = RunCellsCtx(50, 4, func() (struct{}, error) {
		if built.Add(1) == 2 {
			for !cellFailed.Load() {
				runtime.Gosched()
			}
			return struct{}{}, ctxBoom
		}
		return struct{}{}, nil
	}, func(_ struct{}, i int) error {
		if i == 0 {
			cellFailed.Store(true)
			return cellBoom
		}
		return nil
	})
	if err != cellBoom {
		t.Fatalf("mixed err = %v, want cell error %v", err, cellBoom)
	}
}

// TestRunCellsCtxNoGoroutineLeak asserts the pool's goroutines are
// gone after RunCellsCtx returns, on both the clean and error paths.
func TestRunCellsCtxNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		fail := round%2 == 1
		RunCellsCtx(100, 8, func() (struct{}, error) {
			return struct{}{}, nil
		}, func(_ struct{}, i int) error {
			if fail && i == 37 {
				return errors.New("boom")
			}
			return nil
		})
	}
	// The waitgroup joins workers before return, but give the runtime a
	// moment to retire exiting goroutines before comparing.
	for tries := 0; tries < 100; tries++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("goroutines grew from %d to %d after 20 campaigns", before, runtime.NumGoroutine())
}
