package sched

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func workerCounts() []int { return []int{0, 1, 2, 3, 16, runtime.GOMAXPROCS(0)} }

// TestRunCellsRunsEveryCellOnce covers the pool bookkeeping for a
// spread of worker counts, including workers > n.
func TestRunCellsRunsEveryCellOnce(t *testing.T) {
	for _, workers := range workerCounts() {
		var hits [23]atomic.Int32
		if err := RunCells(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Errorf("workers=%d: cell %d ran %d times", workers, i, n)
			}
		}
	}
}

// TestRunCellsReportsFirstErrorInCellOrder: whichever cell fails first
// in wall-clock time, the reported error is the lowest-indexed one,
// matching a sequential loop.
func TestRunCellsReportsFirstErrorInCellOrder(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range workerCounts() {
		err := RunCells(8, workers, func(i int) error {
			switch i {
			case 2:
				return errLow
			case 6:
				return errHigh
			default:
				return nil
			}
		})
		if err != errLow {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

// TestRunCellsBoundsConcurrency asserts at most `workers` cells are in
// flight simultaneously.
func TestRunCellsBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	if err := RunCells(64, workers, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestMapCollectsInOrder: results land in their own slots regardless of
// execution order.
func TestMapCollectsInOrder(t *testing.T) {
	in := make([]int, 50)
	for i := range in {
		in[i] = i
	}
	for _, workers := range workerCounts() {
		out, err := Map(in, workers, func(i, c int) (int, error) { return c * c, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapError: a failing element aborts with its error and nil rows.
func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	rows, err := Map([]int{0, 1, 2}, 2, func(i, c int) (int, error) {
		if c == 1 {
			return 0, boom
		}
		return c, nil
	})
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if rows != nil {
		t.Fatalf("rows = %v, want nil", rows)
	}
}
