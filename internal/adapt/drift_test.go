package adapt

import (
	"reflect"
	"testing"

	"respat/internal/core"
	"respat/internal/engine"
	"respat/internal/faultfit"
	"respat/internal/faults"
)

// driftScenario runs one engine campaign under mid-campaign rate drift:
// the platform starts at the prior rates and degrades ~25x at a fixed
// exposure time. The static run keeps the plan that is optimal at the
// prior rates; the adaptive run wires a Controller into the pattern
// boundary. Everything derives from the seed, so repeats are
// bit-identical.
func driftScenario(t *testing.T, seed uint64, adaptive bool) engine.Report {
	t.Helper()
	costs := testCosts()
	prior := core.Rates{FailStop: 2e-5, Silent: 5e-5}
	const (
		driftAt    = 100_000.0 // exposure seconds at which the platform degrades
		targetWork = 300_000.0
		shiftFS    = 5e-4 // 25x prior
		shiftSil   = 1.25e-3
	)
	fsSeed1, fsSeed2 := faults.SplitSeed(seed, 1)
	silSeed1, silSeed2 := faults.SplitSeed(seed, 2)
	detSeed1, detSeed2 := faults.SplitSeed(seed, 3)
	fsSrc, err := faults.NewPiecewise([]faults.RateStep{
		{Start: 0, Lambda: prior.FailStop}, {Start: driftAt, Lambda: shiftFS},
	}, fsSeed1, fsSeed2)
	if err != nil {
		t.Fatal(err)
	}
	silSrc, err := faults.NewPiecewise([]faults.RateStep{
		{Start: 0, Lambda: prior.Silent}, {Start: driftAt, Lambda: shiftSil},
	}, silSeed1, silSeed2)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(Config{
		Kind: core.PDMV, Costs: costs, Prior: prior,
		FailStop: faultfit.OnlineConfig{Window: 8},
		Silent:   faultfit.OnlineConfig{Window: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{
		App:         engine.WorkFunc(func(float64) error { return nil }),
		Pattern:     sess.Plan().Pattern,
		Costs:       costs,
		TargetWork:  targetWork,
		FailStop:    fsSrc,
		Silent:      silSrc,
		Detect:      faults.NewBernoulli(detSeed1, detSeed2),
		ErrorsInOps: true,
	}
	if adaptive {
		cfg.Boundary = NewController(sess).Boundary
	}
	rep, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Work < targetWork {
		t.Fatalf("run stopped at %v work, target %v", rep.Work, targetWork)
	}
	return rep
}

func TestAdaptiveBeatsStaticUnderDrift(t *testing.T) {
	const seed = 42
	static := driftScenario(t, seed, false)
	adaptv := driftScenario(t, seed, true)

	if adaptv.PlanSwaps < 1 {
		t.Fatalf("adaptive run performed no plan swaps (report %+v)", adaptv)
	}
	if static.PlanSwaps != 0 {
		t.Fatalf("static run performed %d plan swaps, want 0", static.PlanSwaps)
	}
	if adaptv.Overhead >= static.Overhead {
		t.Fatalf("adaptive overhead %.4f not below static %.4f", adaptv.Overhead, static.Overhead)
	}
	t.Logf("static overhead %.4f, adaptive overhead %.4f (%d swaps)",
		static.Overhead, adaptv.Overhead, adaptv.PlanSwaps)
}

func TestDriftScenarioBitIdenticalAcrossRepeats(t *testing.T) {
	const seed = 7
	for _, adaptive := range []bool{false, true} {
		a := driftScenario(t, seed, adaptive)
		b := driftScenario(t, seed, adaptive)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("adaptive=%v: repeat runs differ:\n%+v\n%+v", adaptive, a, b)
		}
	}
}
