package adapt

import (
	"math"
	"testing"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/faultfit"
)

func testCosts() core.Costs {
	return core.Costs{
		DiskCkpt: 30, MemCkpt: 3, DiskRec: 30, MemRec: 3,
		GuarVer: 1.5, PartVer: 0.3, Recall: 0.8,
	}
}

func TestSessionInitialPlanMatchesOptimalAtPrior(t *testing.T) {
	costs := testCosts()
	prior := core.Rates{FailStop: 2e-5, Silent: 5e-5}
	s, err := NewSession(Config{Kind: core.PDMV, Costs: costs, Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	want, err := analytic.Optimal(core.PDMV, costs, prior)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Plan()
	if got.N != want.N || got.M != want.M || got.W != want.W || got.Overhead != want.Overhead {
		t.Fatalf("initial plan %+v != Optimal at prior %+v", got, want)
	}
	if r := s.Rates(); r != prior {
		t.Fatalf("initial fitted rates %+v != prior %+v", r, prior)
	}
}

func TestSessionStableWhenObservationsMatchPrior(t *testing.T) {
	costs := testCosts()
	prior := core.Rates{FailStop: 2e-5, Silent: 5e-5}
	s, err := NewSession(Config{Kind: core.PDMV, Costs: costs, Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	// Observations exactly at the prior rates: expected events per
	// window of exposure.
	const exposure = 50_000.0
	for i := 0; i < 40; i++ {
		d, err := s.Observe(Observation{
			FailStopEvents: 1, FailStopExposure: exposure,
			SilentEvents: 2, SilentExposure: exposure, // ~ 2e-5, 4e-5
		})
		if err != nil {
			t.Fatal(err)
		}
		if d.Replanned {
			t.Fatalf("observation %d at prior-consistent rates triggered a re-plan (regret %v)", i, d.Regret)
		}
	}
	st := s.Status()
	if st.Swaps != 0 {
		t.Fatalf("swaps = %d, want 0", st.Swaps)
	}
}

func TestSessionReplansWhenRatesShift(t *testing.T) {
	costs := testCosts()
	prior := core.Rates{FailStop: 2e-5, Silent: 5e-5}
	s, err := NewSession(Config{
		Kind: core.PDMV, Costs: costs, Prior: prior,
		FailStop: faultfit.OnlineConfig{Window: 8},
		Silent:   faultfit.OnlineConfig{Window: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	// True rates 25x the prior: ~1 fail-stop and ~2.5 silent events per
	// 2000 s of exposure.
	var last Decision
	replannedAt := -1
	for i := 0; i < 60; i++ {
		d, err := s.Observe(Observation{
			FailStopEvents: 1, FailStopExposure: 2000,
			SilentEvents: 2, SilentExposure: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if d.Replanned && replannedAt < 0 {
			replannedAt = i
		}
		last = d
	}
	if replannedAt < 0 {
		t.Fatalf("no re-plan after 60 shifted observations; final rates %+v, regret %v",
			last.Rates, last.Regret)
	}
	st := s.Status()
	if st.Swaps < 1 {
		t.Fatalf("swaps = %d, want >= 1", st.Swaps)
	}
	if st.PredictedSavings <= 0 {
		t.Fatalf("predicted savings = %v, want > 0", st.PredictedSavings)
	}
	// The post-swap plan must be substantially shorter than the plan
	// sized for the (25x lower) prior rates.
	first, err := analytic.Optimal(core.PDMV, costs, prior)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Plan(); got.W >= first.W {
		t.Fatalf("post-swap W %v not shorter than the prior-rates W %v", got.W, first.W)
	}
	// Fitted rates must have moved decisively towards the truth.
	if st.Rates.FailStop < 5*prior.FailStop {
		t.Fatalf("fitted fail-stop rate %v barely moved from prior %v", st.Rates.FailStop, prior.FailStop)
	}
}

func TestSessionCensoredObservationsStayFinite(t *testing.T) {
	costs := testCosts()
	prior := core.Rates{FailStop: 1e-5, Silent: 2e-5}
	s, err := NewSession(Config{Kind: core.PDMV, Costs: costs, Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	// Long stretch of event-free windows: rates must stay positive and
	// finite, and every decision must carry a valid plan.
	for i := 0; i < 100; i++ {
		d, err := s.Observe(Observation{FailStopExposure: 10_000, SilentExposure: 10_000})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []float64{d.Rates.FailStop, d.Rates.Silent, d.Plan.W, d.CurrentOverhead} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("observation %d produced non-finite value %v (decision %+v)", i, v, d)
			}
		}
		if d.Rates.FailStop <= 0 || d.Rates.Silent <= 0 {
			t.Fatalf("observation %d collapsed a rate to zero: %+v", i, d.Rates)
		}
		if err := d.Plan.Pattern.Validate(); err != nil {
			t.Fatalf("observation %d produced invalid plan: %v", i, err)
		}
	}
}

func TestSessionMinObservationsGate(t *testing.T) {
	costs := testCosts()
	prior := core.Rates{FailStop: 2e-5, Silent: 5e-5}
	s, err := NewSession(Config{
		Kind: core.PDMV, Costs: costs, Prior: prior,
		MinObservations: 10,
		FailStop:        faultfit.OnlineConfig{Window: 2},
		Silent:          faultfit.OnlineConfig{Window: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		d, err := s.Observe(Observation{
			FailStopEvents: 5, FailStopExposure: 1000,
			SilentEvents: 10, SilentExposure: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if d.Replanned {
			t.Fatalf("re-planned at observation %d, before MinObservations=10", i+1)
		}
	}
}

func TestSessionRejectedObservationLeavesStateUntouched(t *testing.T) {
	costs := testCosts()
	prior := core.Rates{FailStop: 2e-5, Silent: 5e-5}
	s, err := NewSession(Config{Kind: core.PDMV, Costs: costs, Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	// Valid fail-stop half, invalid silent half: the whole observation
	// must be rejected without ingesting the fail-stop window.
	if _, err := s.Observe(Observation{
		FailStopEvents: 2, FailStopExposure: 100,
		SilentEvents: 1, SilentExposure: -1,
	}); err == nil {
		t.Fatal("negative silent exposure accepted")
	}
	if r := s.Rates(); r != prior {
		t.Fatalf("rejected observation moved the fitted rates: %+v != prior %+v", r, prior)
	}
	if st := s.Status(); st.Observations != 0 {
		t.Fatalf("rejected observation counted: %d", st.Observations)
	}
}

func TestSessionEmptyObservationsDoNotSatisfyMinObservations(t *testing.T) {
	costs := testCosts()
	prior := core.Rates{FailStop: 2e-5, Silent: 5e-5}
	s, err := NewSession(Config{
		Kind: core.PDMV, Costs: costs, Prior: prior,
		MinObservations: 2,
		FailStop:        faultfit.OnlineConfig{Window: 2},
		Silent:          faultfit.OnlineConfig{Window: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Empty observations (session polls) must not count towards the
	// swap gate.
	for i := 0; i < 5; i++ {
		if _, err := s.Observe(Observation{}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Status(); st.Observations != 0 {
		t.Fatalf("empty observations counted: %d", st.Observations)
	}
	// The first real (heavy) window alone must still be gated.
	d, err := s.Observe(Observation{
		FailStopEvents: 5, FailStopExposure: 1000,
		SilentEvents: 10, SilentExposure: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Replanned {
		t.Fatal("swap fired on the first non-empty observation despite MinObservations=2")
	}
}

func TestNewSessionRejectsDegeneratePrior(t *testing.T) {
	if _, err := NewSession(Config{Kind: core.PD, Costs: testCosts()}); err == nil {
		t.Fatal("zero prior rates must fail (no finite optimal plan)")
	}
}

func TestNewSessionRejectsNegativeTuning(t *testing.T) {
	costs := testCosts()
	prior := core.Rates{FailStop: 2e-5, Silent: 5e-5}
	if _, err := NewSession(Config{
		Kind: core.PDMV, Costs: costs, Prior: prior, MinObservations: -1,
	}); err == nil {
		t.Fatal("negative MinObservations accepted")
	}
	if _, err := NewSession(Config{
		Kind: core.PDMV, Costs: costs, Prior: prior, RegretThreshold: -0.1,
	}); err == nil {
		t.Fatal("negative RegretThreshold accepted")
	}
}
