package adapt

import (
	"fmt"
	"math"
	"sync"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/faultfit"
)

// Config assembles an adaptive planning session.
type Config struct {
	// Kind is the pattern family planned throughout the session.
	Kind core.Kind
	// Costs are the platform's resilience costs (fixed; only rates are
	// re-estimated).
	Costs core.Costs
	// Prior holds the error rates believed at session start — typically
	// the rates the platform was commissioned with. The initial plan is
	// the optimal plan at these rates, and the estimators shrink
	// towards them until observations accumulate.
	Prior core.Rates
	// FailStop and Silent tune the two online estimators (window size,
	// forgetting half-life, drift threshold, prior pseudo-exposure).
	// Their PriorRate fields are overwritten from Prior; the zero value
	// gets the faultfit defaults.
	FailStop faultfit.OnlineConfig
	Silent   faultfit.OnlineConfig
	// RegretThreshold is the re-plan trigger: swap plans when the
	// current plan's predicted overhead exceeds the optimum at the
	// fitted rates by more than this relative margin. The zero value
	// selects the default of 0.05 (5 % excess overhead tolerated
	// before a swap); to re-plan on any measurable regret use a tiny
	// positive threshold instead of zero.
	RegretThreshold float64
	// MinObservations is the number of non-empty observations required
	// before the first swap may fire, guarding against re-planning off
	// one noisy window. The zero value selects the default of 4; use 1
	// to allow a swap after the first observation.
	MinObservations int
}

// withDefaults fills unset tuning fields.
func (c Config) withDefaults() Config {
	if c.RegretThreshold == 0 {
		c.RegretThreshold = 0.05
	}
	if c.MinObservations == 0 {
		c.MinObservations = 4
	}
	c.FailStop.PriorRate = c.Prior.FailStop
	c.Silent.PriorRate = c.Prior.Silent
	// Complete the estimator configs too, so Session.Config() reports
	// the effective tuning (window, drift threshold, pseudo-exposure)
	// rather than zero placeholders.
	c.FailStop = c.FailStop.WithDefaults()
	c.Silent = c.Silent.WithDefaults()
	return c
}

// Observation is one censored interval observation: event counts and
// the exposure seconds over which they were collected, per error
// source. Exposure is time on the error clocks (time at risk), not
// wall-clock time — engine.Report exports it directly.
type Observation struct {
	FailStopEvents   int64
	SilentEvents     int64
	FailStopExposure float64
	SilentExposure   float64
}

// Decision reports what one observation did to the session.
type Decision struct {
	// Rates are the fitted rates after ingesting the observation.
	Rates core.Rates
	// CurrentOverhead is the exact expected overhead of the
	// pre-decision plan evaluated at the fitted rates.
	CurrentOverhead float64
	// OptimalOverhead is the exact expected overhead of the plan that
	// is optimal at the fitted rates.
	OptimalOverhead float64
	// Regret is (CurrentOverhead - OptimalOverhead) / OptimalOverhead,
	// the relative excess overhead of keeping the current plan.
	Regret float64
	// Replanned reports whether the session swapped to the new plan.
	Replanned bool
	// Plan is the session's plan after the decision (the new plan when
	// Replanned, the incumbent otherwise).
	Plan analytic.Plan
	// Observations, Swaps and Drifts are the session counters
	// immediately after this decision, read atomically with it —
	// unlike a separate Status call, they cannot reflect a concurrent
	// later observation.
	Observations int64
	Swaps        int64
	Drifts       int64
}

// Status is a snapshot of a session's counters and state.
type Status struct {
	Kind core.Kind
	// Observations counts ingested non-empty observations; Swaps counts
	// plan swaps; Drifts counts change-point resets across both
	// estimators. Swaps counts recommendation changes: a swap decided at
	// an engine run's final pattern boundary is counted here (and in
	// PredictedSavings) even though engine.Run skips installing it —
	// the session's plan is the right starting point for the next run —
	// so Swaps can exceed that run's Report.PlanSwaps by one.
	Observations int64
	Swaps        int64
	Drifts       int64
	// PredictedSavings accumulates, over all swaps, the predicted
	// overhead reduction (CurrentOverhead - OptimalOverhead at the
	// then-fitted rates): the dimensionless overhead the session
	// expects to have shaved off by re-planning.
	PredictedSavings float64
	// Rates are the current fitted rates; Plan is the current plan.
	Rates core.Rates
	Plan  analytic.Plan
}

// Session is one adaptive re-planning loop: it owns the two online
// rate estimators, the current plan, and the regret rule that decides
// when to swap. All methods are safe for concurrent use.
type Session struct {
	mu  sync.Mutex
	cfg Config

	fs  *faultfit.OnlineRate
	sil *faultfit.OnlineRate

	plan analytic.Plan

	// Re-plan evaluations reuse one evaluator per fitted-rates value
	// (the same rebuild-on-change discipline as the service's
	// per-shard evaluators).
	ev      *analytic.Evaluator
	evRates core.Rates

	// Memoised regret evaluation: empty observations (session polls)
	// and zero-delta telemetry leave the fitted rates bit-identical, so
	// the optimization and both exact overhead evaluations would only
	// reproduce the previous answer. Keyed by the fitted rates and the
	// incumbent plan's (N, M, W) identity.
	memoValid        bool
	memoRates        core.Rates
	memoN, memoM     int
	memoW            float64
	memoCur, memoOpt float64
	memoCand         analytic.Plan

	observations int64
	swaps        int64
	savings      float64
}

// NewSession validates the configuration, computes the initial plan
// (optimal at the prior rates) and returns a live session.
func NewSession(cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if cfg.RegretThreshold < 0 || math.IsNaN(cfg.RegretThreshold) || math.IsInf(cfg.RegretThreshold, 0) {
		return nil, fmt.Errorf("adapt: RegretThreshold = %v, need finite >= 0", cfg.RegretThreshold)
	}
	if cfg.MinObservations < 0 {
		return nil, fmt.Errorf("adapt: MinObservations = %d, need >= 0", cfg.MinObservations)
	}
	plan, err := analytic.Optimal(cfg.Kind, cfg.Costs, cfg.Prior)
	if err != nil {
		return nil, err
	}
	fs, err := faultfit.NewOnlineRate(cfg.FailStop)
	if err != nil {
		return nil, err
	}
	sil, err := faultfit.NewOnlineRate(cfg.Silent)
	if err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, fs: fs, sil: sil, plan: plan}, nil
}

// Kind returns the session's pattern family.
func (s *Session) Kind() core.Kind { return s.cfg.Kind }

// Config returns the session's configuration as completed at creation
// (defaults filled); it never changes over the session's lifetime.
func (s *Session) Config() Config { return s.cfg }

// Costs returns the session's resilience costs.
func (s *Session) Costs() core.Costs { return s.cfg.Costs }

// Prior returns the rates the session was created with.
func (s *Session) Prior() core.Rates { return s.cfg.Prior }

// Observe ingests one observation, refits the rates, and applies the
// regret rule: if the current plan's exact expected overhead at the
// fitted rates exceeds the optimum's by more than RegretThreshold, the
// session swaps to the optimal plan. The returned Decision reports the
// fitted rates, both overheads and whether a swap happened.
func (s *Session) Observe(o Observation) (Decision, error) {
	// Validate both halves before ingesting either, so a rejected
	// observation never leaves the session half-updated.
	if err := faultfit.ValidateInterval(o.FailStopEvents, o.FailStopExposure); err != nil {
		return Decision{}, err
	}
	if err := faultfit.ValidateInterval(o.SilentEvents, o.SilentExposure); err != nil {
		return Decision{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fs.Observe(o.FailStopEvents, o.FailStopExposure); err != nil {
		return Decision{}, err
	}
	if err := s.sil.Observe(o.SilentEvents, o.SilentExposure); err != nil {
		return Decision{}, err
	}
	if o != (Observation{}) {
		s.observations++
	}

	fitted := core.Rates{FailStop: s.fs.Rate(), Silent: s.sil.Rate()}
	d := Decision{Rates: fitted, Plan: s.plan}
	var cand analytic.Plan
	if s.memoValid && fitted == s.memoRates &&
		s.plan.N == s.memoN && s.plan.M == s.memoM && s.plan.W == s.memoW {
		d.CurrentOverhead, d.OptimalOverhead = s.memoCur, s.memoOpt
		cand = s.memoCand
	} else {
		ev, err := s.evaluator(fitted)
		if err != nil {
			return Decision{}, err
		}
		d.CurrentOverhead, err = ev.EvalLayoutOverhead(s.cfg.Kind, s.plan.N, s.plan.M, s.plan.W)
		if err != nil {
			return Decision{}, err
		}
		cand, err = analytic.Optimal(s.cfg.Kind, s.cfg.Costs, fitted)
		if err != nil {
			return Decision{}, err
		}
		d.OptimalOverhead, err = ev.EvalLayoutOverhead(s.cfg.Kind, cand.N, cand.M, cand.W)
		if err != nil {
			return Decision{}, err
		}
		s.memoValid = true
		s.memoRates = fitted
		s.memoN, s.memoM, s.memoW = s.plan.N, s.plan.M, s.plan.W
		s.memoCur, s.memoOpt = d.CurrentOverhead, d.OptimalOverhead
		s.memoCand = cand
	}
	if d.OptimalOverhead > 0 {
		d.Regret = (d.CurrentOverhead - d.OptimalOverhead) / d.OptimalOverhead
	}
	if s.observations >= int64(s.cfg.MinObservations) && d.Regret > s.cfg.RegretThreshold {
		s.plan = cand
		s.swaps++
		s.savings += d.CurrentOverhead - d.OptimalOverhead
		d.Replanned = true
		d.Plan = cand
	}
	d.Observations = s.observations
	d.Swaps = s.swaps
	d.Drifts = s.fs.Drifts() + s.sil.Drifts()
	return d, nil
}

// evaluator returns the session's evaluator for the fitted rates,
// rebuilding it only when the rates moved since the last decision.
func (s *Session) evaluator(r core.Rates) (*analytic.Evaluator, error) {
	if s.ev != nil && s.evRates == r {
		return s.ev, nil
	}
	ev, err := analytic.NewEvaluator(s.cfg.Costs, r)
	if err != nil {
		return nil, err
	}
	s.ev, s.evRates = ev, r
	return ev, nil
}

// Rates returns the current fitted rates.
func (s *Session) Rates() core.Rates {
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.Rates{FailStop: s.fs.Rate(), Silent: s.sil.Rate()}
}

// Plan returns the current plan.
func (s *Session) Plan() analytic.Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan
}

// Status returns a snapshot of the session's counters and state.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		Kind:             s.cfg.Kind,
		Observations:     s.observations,
		Swaps:            s.swaps,
		Drifts:           s.fs.Drifts() + s.sil.Drifts(),
		PredictedSavings: s.savings,
		Rates:            core.Rates{FailStop: s.fs.Rate(), Silent: s.sil.Rate()},
		Plan:             s.plan,
	}
}
