package adapt

import (
	"respat/internal/core"
	"respat/internal/engine"
)

// Controller feeds an engine run's per-pattern telemetry into a
// Session and turns its re-plan decisions into pattern swaps. Wire
// Controller.Boundary into engine.Config.Boundary:
//
//	sess, _ := adapt.NewSession(adapt.Config{...})
//	ctl := adapt.NewController(sess)
//	rep, _ := engine.Run(engine.Config{
//		Pattern:  sess.Plan().Pattern,
//		Boundary: ctl.Boundary,
//		...
//	})
//
// At every pattern boundary the controller diffs the report against
// the previous boundary — event counts and exposure seconds per error
// source — and submits the delta as one observation. A Controller
// belongs to exactly one engine run (it keeps that run's last
// snapshot); it is not safe for concurrent use.
type Controller struct {
	s    *Session
	last engine.Report
}

// NewController binds a controller to a session.
func NewController(s *Session) *Controller { return &Controller{s: s} }

// Boundary is the engine.Config.Boundary hook: it observes the pattern
// just completed and returns the new pattern when the session decides
// to re-plan, nil to keep the incumbent.
func (c *Controller) Boundary(done int, rep engine.Report) (*core.Pattern, error) {
	obs := Observation{
		FailStopEvents:   rep.FailStop - c.last.FailStop,
		SilentEvents:     rep.Silent - c.last.Silent,
		FailStopExposure: rep.FailStopExposure - c.last.FailStopExposure,
		SilentExposure:   rep.SilentExposure - c.last.SilentExposure,
	}
	c.last = rep
	d, err := c.s.Observe(obs)
	if err != nil {
		return nil, err
	}
	if !d.Replanned {
		return nil, nil
	}
	p := d.Plan.Pattern
	return &p, nil
}
