// Package adapt closes the observe → fit → re-plan loop of the
// resilience-pattern system. The paper's optimal patterns
// P(W, n, α, m, β) assume error rates that are known up front and
// fixed forever; real platforms drift. This package makes the plan a
// feedback-controlled quantity:
//
//   - observe: ingest censored interval observations — "k fail-stop
//     and j silent events over t seconds of exposure" — from a running
//     engine (Controller wires into engine.Config.Boundary) or any
//     other telemetry source;
//   - fit: maintain online posterior rate estimates per error source
//     (faultfit.OnlineRate: prior-anchored, exponentially forgetting,
//     with a change-point detector that discards stale history when
//     the recent window contradicts it);
//   - re-plan: evaluate the current plan's exact expected overhead
//     under the fitted rates (analytic.Evaluator) against the overhead
//     of the plan that is optimal at those rates, and swap plans when
//     the regret exceeds a configurable threshold.
//
// Sessions are deterministic: fitted rates and re-plan decisions are
// pure functions of the observation stream, so an adaptive engine run
// under seeded fault sources is bit-identical across repeats — the
// drift-scenario test asserts both this and that the adaptive run
// strictly beats the static optimal plan when the true rates shift
// mid-campaign.
//
// The HTTP face of this package is internal/service's POST /v1/observe
// and GET /v1/adaptive endpoints; the library face is respat.Adaptive.
package adapt
