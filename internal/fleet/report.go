package fleet

// Metric reduction and rendering. Every aggregate is reduced in job
// order from per-job records, so the Result — and its JSON rendering —
// is byte-identical across Workers values (asserted by
// TestFleetReportByteIdentical).

import (
	"encoding/json"
	"fmt"
	"io"

	"respat/internal/report"
	"respat/internal/sim"
	"respat/internal/stats"
)

// Totals are mode-independent event counters summed over jobs.
type Totals struct {
	// FailStop and Silent count injected errors.
	FailStop int64 `json:"fail_stop"`
	Silent   int64 `json:"silent"`
	// Detected counts corruptions caught by any verification (the
	// remainder were wiped by a crash before detection).
	Detected int64 `json:"detected"`
	// Checkpoints counts committed checkpoints at every level (disk +
	// memory, or the whole hierarchy).
	Checkpoints int64 `json:"checkpoints"`
	// Verifications counts completed partial + guaranteed
	// verifications.
	Verifications int64 `json:"verifications"`
	// FailRecoveries counts rollbacks caused by fail-stop errors;
	// SilentRecoveries counts rollbacks caused by verification alarms.
	FailRecoveries   int64 `json:"fail_recoveries"`
	SilentRecoveries int64 `json:"silent_recoveries"`
}

func (t *Totals) add(o Totals) {
	t.FailStop += o.FailStop
	t.Silent += o.Silent
	t.Detected += o.Detected
	t.Checkpoints += o.Checkpoints
	t.Verifications += o.Verifications
	t.FailRecoveries += o.FailRecoveries
	t.SilentRecoveries += o.SilentRecoveries
}

// patternTotals maps single-level executor counters to Totals.
func patternTotals(c sim.Counters) Totals {
	return Totals{
		FailStop:         c.FailStop,
		Silent:           c.Silent,
		Detected:         c.DetectByPart + c.DetectByGuar,
		Checkpoints:      c.DiskCkpts + c.MemCkpts,
		Verifications:    c.PartVerifs + c.GuarVerifs,
		FailRecoveries:   c.DiskRecs,
		SilentRecoveries: c.MemRecs,
	}
}

// multilevelTotals maps multilevel executor counters to Totals.
func multilevelTotals(c sim.MultilevelCounters) Totals {
	t := Totals{
		FailStop:         c.FailStop,
		Silent:           c.Silent,
		Detected:         c.DetectByPart + c.DetectByGuar,
		Verifications:    c.PartVerifs + c.GuarVerifs,
		SilentRecoveries: c.SilentRecs,
	}
	for l := range c.Ckpts {
		t.Checkpoints += c.Ckpts[l]
		t.FailRecoveries += c.Recs[l]
	}
	return t
}

// Dist summarises one per-job metric: mean and the SLO quantiles.
type Dist struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// distOf reduces xs (not retained) to a Dist via stats.Quantile.
func distOf(xs []float64) (Dist, error) {
	var s stats.Sample
	for _, x := range xs {
		s.Add(x)
	}
	d := Dist{Mean: s.Mean(), Max: s.Max()}
	for _, q := range []struct {
		q   float64
		dst *float64
	}{{0.50, &d.P50}, {0.90, &d.P90}, {0.99, &d.P99}} {
		v, err := stats.Quantile(xs, q.q)
		if err != nil {
			return Dist{}, err
		}
		*q.dst = v
	}
	return d, nil
}

// PlanSummary describes one (mode, nodes) resilience plan and how many
// jobs ran under it.
type PlanSummary struct {
	Mode              string  `json:"mode"`
	Nodes             int     `json:"nodes"`
	Jobs              int     `json:"jobs"`
	W                 float64 `json:"pattern_work_s"`
	PredictedOverhead float64 `json:"predicted_overhead"`
	Plan              string  `json:"plan"`
}

// Result aggregates a fleet campaign. Field order is the JSON field
// order; keep it stable — CI asserts byte-identical reports.
type Result struct {
	// Echo of the campaign shape.
	Platform string `json:"platform"`
	Nodes    int    `json:"nodes"`
	Jobs     int    `json:"jobs"`
	Seed     uint64 `json:"seed"`
	Backfill bool   `json:"backfill"`

	// Makespan is the last completion time in seconds; Utilization is
	// the fraction of node-seconds busy over [0, Makespan].
	Makespan    float64 `json:"makespan_s"`
	Utilization float64 `json:"utilization"`
	// Backfilled counts jobs started ahead of the queue head.
	Backfilled int `json:"backfilled"`
	// TotalWork and TotalEffWork are the submitted and the
	// pattern-quantized work, in seconds summed over jobs (per-job
	// seconds, not node-weighted).
	TotalWork    float64 `json:"total_work_s"`
	TotalEffWork float64 `json:"total_effective_work_s"`

	// QueueDelay is start-arrival; Overhead is the per-job resilience
	// overhead (duration-effwork)/effwork; Sojourn is completion-
	// arrival; Duration is the protected execution time.
	QueueDelay Dist `json:"queue_delay_s"`
	Overhead   Dist `json:"overhead"`
	Sojourn    Dist `json:"sojourn_s"`
	Duration   Dist `json:"duration_s"`

	Totals Totals        `json:"totals"`
	Plans  []PlanSummary `json:"plans"`
}

// reduce folds the per-job records into a Result, in job order.
func reduce(cfg *Config, jobs []Job, execs []jobExec, plans []jobPlan, backfilled int) (Result, error) {
	n := len(jobs)
	qd := make([]float64, n)
	oh := make([]float64, n)
	so := make([]float64, n)
	du := make([]float64, n)
	res := Result{
		Platform:   cfg.Platform.Name,
		Nodes:      cfg.Nodes,
		Jobs:       n,
		Seed:       cfg.Seed,
		Backfill:   cfg.Backfill,
		Backfilled: backfilled,
	}
	planJobs := make([]int, len(plans))
	var busy float64
	for i := range execs {
		e := &execs[i]
		qd[i] = e.start - jobs[i].Arrival
		oh[i] = (e.duration - e.effWork) / e.effWork
		so[i] = e.end - jobs[i].Arrival
		du[i] = e.duration
		if e.end > res.Makespan {
			res.Makespan = e.end
		}
		res.TotalWork += jobs[i].Work
		res.TotalEffWork += e.effWork
		busy += float64(jobs[i].Nodes) * e.duration
		res.Totals.add(e.counters)
		planJobs[e.planIdx]++
	}
	if res.Makespan > 0 {
		res.Utilization = busy / (float64(cfg.Nodes) * res.Makespan)
	}
	var err error
	if res.QueueDelay, err = distOf(qd); err != nil {
		return Result{}, err
	}
	if res.Overhead, err = distOf(oh); err != nil {
		return Result{}, err
	}
	if res.Sojourn, err = distOf(so); err != nil {
		return Result{}, err
	}
	if res.Duration, err = distOf(du); err != nil {
		return Result{}, err
	}
	res.Plans = make([]PlanSummary, len(plans))
	for i, p := range plans {
		res.Plans[i] = PlanSummary{
			Mode: p.mode.String(), Nodes: p.nodes, Jobs: planJobs[i],
			W: p.w, PredictedOverhead: p.predicted, Plan: p.desc,
		}
	}
	return res, nil
}

// JSON renders the result as stable, indented JSON with a trailing
// newline. Two campaigns with the same configuration (any Workers)
// produce byte-identical output.
func (r Result) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteTable renders the result as the cmd/fleet table.
func (r Result) WriteTable(w io.Writer) error {
	t := report.New(fmt.Sprintf("fleet: %d jobs on %d %s nodes (seed %d)", r.Jobs, r.Nodes, r.Platform, r.Seed),
		"metric", "mean", "p50", "p90", "p99", "max")
	row := func(name, unit string, d Dist, digits int) {
		t.AddRow(name+unit,
			report.Fixed(d.Mean, digits), report.Fixed(d.P50, digits),
			report.Fixed(d.P90, digits), report.Fixed(d.P99, digits),
			report.Fixed(d.Max, digits))
	}
	row("queue delay", " (s)", r.QueueDelay, 1)
	row("duration", " (s)", r.Duration, 1)
	row("sojourn", " (s)", r.Sojourn, 1)
	t.AddRow("overhead",
		report.Pct(r.Overhead.Mean, 3), report.Pct(r.Overhead.P50, 3),
		report.Pct(r.Overhead.P90, 3), report.Pct(r.Overhead.P99, 3),
		report.Pct(r.Overhead.Max, 3))
	t.AddRow("makespan (days)", report.Fixed(r.Makespan/86400, 3), "", "", "", "")
	t.AddRow("utilization", report.Pct(r.Utilization, 2), "", "", "", "")
	t.AddRow("backfilled jobs", fmt.Sprintf("%d", r.Backfilled), "", "", "", "")
	t.AddRow("fail-stop errors", report.I64(r.Totals.FailStop), "", "", "", "")
	t.AddRow("silent errors", report.I64(r.Totals.Silent), "", "", "", "")
	t.AddRow("detected corruptions", report.I64(r.Totals.Detected), "", "", "", "")
	t.AddRow("checkpoints", report.I64(r.Totals.Checkpoints), "", "", "", "")
	t.AddRow("verifications", report.I64(r.Totals.Verifications), "", "", "", "")
	t.AddRow("fail recoveries", report.I64(r.Totals.FailRecoveries), "", "", "", "")
	t.AddRow("silent recoveries", report.I64(r.Totals.SilentRecoveries), "", "", "", "")
	if err := t.Render(w); err != nil {
		return err
	}
	for _, p := range r.Plans {
		if _, err := fmt.Fprintf(w, "plan %s/%dn (%d jobs): %s\n", p.Mode, p.Nodes, p.Jobs, p.Plan); err != nil {
			return err
		}
	}
	return nil
}
