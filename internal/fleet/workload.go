package fleet

// Workload generation: open-loop Poisson arrivals with deterministic
// seeded streams, and the job-trace parser behind cmd/fleet -trace.
// The trace schema is documented in docs/api.md ("cmd/fleet job-trace
// format") with an example under examples/fleet/.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"

	"respat/internal/faults"
)

// rng builds the deterministic generator of one synthesis stream.
func rng(seed uint64, stream uint64) *rand.Rand {
	s1, s2 := faults.SplitSeed(seed, stream)
	return rand.New(rand.NewPCG(s1, s2))
}

// synthesize builds the open-loop workload: NumJobs jobs with
// exponential inter-arrival times at Rate, work drawn log-uniformly in
// [JobWork/WorkSpread, JobWork*WorkSpread], and node counts either
// fixed (JobNodes) or a uniform power-of-two mix from 1 to Nodes/2.
// Every draw comes from its own (Seed, stream) generator, so the
// workload is a pure function of the configuration.
func synthesize(cfg *Config) []Job {
	arrivals := rng(cfg.Seed, streamArrival)
	works := rng(cfg.Seed, streamWork)
	nodes := rng(cfg.Seed, streamNodes)

	var sizes []int
	if cfg.JobNodes == 0 {
		for s := 1; s <= cfg.Nodes/2; s *= 2 {
			sizes = append(sizes, s)
		}
		if len(sizes) == 0 {
			sizes = []int{1}
		}
	}
	spread := cfg.WorkSpread
	if spread == 0 {
		spread = 1
	}
	lnSpread := math.Log(spread)

	jobs := make([]Job, cfg.NumJobs)
	now := 0.0
	for i := range jobs {
		now += arrivals.ExpFloat64() / cfg.Rate
		w := cfg.JobWork
		if spread > 1 {
			w *= math.Exp((2*works.Float64() - 1) * lnSpread)
		}
		n := cfg.JobNodes
		if n == 0 {
			n = sizes[nodes.IntN(len(sizes))]
		}
		jobs[i] = Job{Arrival: now, Work: w, Nodes: n, Mode: cfg.Mode}
	}
	return jobs
}

// ParseTrace reads the cmd/fleet job-trace format: one job per line,
//
//	<arrival-seconds> <work-seconds> [nodes [mode]]
//
// whitespace-separated, with '#' starting a comment and blank lines
// skipped. Arrivals must be non-decreasing; nodes defaults to 1 and
// mode (pattern | twolevel | multilevel) to def. The full schema is
// documented in docs/api.md.
func ParseTrace(r io.Reader, def Mode) ([]Job, error) {
	var jobs []Job
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("fleet: trace line %d: %d fields, want 2-4", lineNo, len(fields))
		}
		arrival, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: trace line %d: arrival %q: %w", lineNo, fields[0], err)
		}
		work, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: trace line %d: work %q: %w", lineNo, fields[1], err)
		}
		job := Job{Arrival: arrival, Work: work, Nodes: 1, Mode: def}
		if len(fields) >= 3 {
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("fleet: trace line %d: nodes %q: %w", lineNo, fields[2], err)
			}
			job.Nodes = n
		}
		if len(fields) == 4 {
			m, err := ParseMode(fields[3])
			if err != nil {
				return nil, fmt.Errorf("fleet: trace line %d: %w", lineNo, err)
			}
			job.Mode = m
		}
		if len(jobs) > 0 && job.Arrival < jobs[len(jobs)-1].Arrival {
			return nil, fmt.Errorf("fleet: trace line %d: arrival %v before previous %v", lineNo, job.Arrival, jobs[len(jobs)-1].Arrival)
		}
		jobs = append(jobs, job)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: reading trace: %w", err)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fleet: trace holds no jobs")
	}
	return jobs, nil
}
