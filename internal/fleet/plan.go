package fleet

// Resilience planning for a fleet: every distinct (mode, node count)
// observed in the job list gets one plan, computed by the repo's warm
// planners — the memoized analytic evaluator + exact search for
// pattern mode (the PR 2 service context), the memoized
// multilevel.Planner for the hierarchical modes (the PR 6 context).
// Thousands of jobs sharing a shape therefore pay for exactly one
// cold plan.

import (
	"fmt"
	"sort"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/multilevel"
	"respat/internal/optimize"
)

// jobPlan is the resilience plan shared by every job of one
// (mode, nodes) shape.
type jobPlan struct {
	idx       int
	mode      Mode
	nodes     int
	w         float64 // pattern work length W* (the protected-work quantum)
	predicted float64 // model-predicted overhead at the optimum
	desc      string  // human-readable plan summary
	// Pattern-mode payload.
	pattern core.Pattern
	costs   core.Costs
	rates   core.Rates
	// Hierarchical-mode payload.
	params multilevel.Params
	spec   multilevel.Spec
}

// planShape is the cache key.
type planShape struct {
	mode  Mode
	nodes int
}

// buildPlans plans every distinct job shape and maps each job to its
// plan index. Shapes are planned in sorted (mode, nodes) order so the
// plan list — and everything downstream — is independent of job order
// within a shape.
func buildPlans(cfg *Config, jobs []Job) ([]jobPlan, []int, error) {
	shapes := map[planShape]int{}
	var order []planShape
	for _, j := range jobs {
		s := planShape{mode: j.Mode, nodes: j.Nodes}
		if _, ok := shapes[s]; !ok {
			shapes[s] = 0
			order = append(order, s)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].mode != order[b].mode {
			return order[a].mode < order[b].mode
		}
		return order[a].nodes < order[b].nodes
	})

	plans := make([]jobPlan, len(order))
	for i, s := range order {
		shapes[s] = i
		p, err := planShapeFor(cfg, s)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: planning %s jobs on %d nodes: %w", s.mode, s.nodes, err)
		}
		p.idx = i
		plans[i] = p
	}
	planIdx := make([]int, len(jobs))
	for i, j := range jobs {
		planIdx[i] = shapes[planShape{mode: j.Mode, nodes: j.Nodes}]
	}
	return plans, planIdx, nil
}

// planShapeFor plans one shape: the job's platform is the fleet
// platform weak-scaled to the job's node count (error rates grow
// linearly with nodes, costs stay per-node constant).
func planShapeFor(cfg *Config, s planShape) (jobPlan, error) {
	plat, err := cfg.Platform.WeakScale(s.nodes)
	if err != nil {
		return jobPlan{}, err
	}
	switch s.mode {
	case ModePattern:
		ev, err := analytic.NewEvaluator(plat.Costs, plat.Rates)
		if err != nil {
			return jobPlan{}, err
		}
		first, err := analytic.Optimal(cfg.Family, plat.Costs, plat.Rates)
		if err != nil {
			return jobPlan{}, err
		}
		exact, err := optimize.ExactWithEvaluator(ev, first)
		if err != nil {
			return jobPlan{}, err
		}
		return jobPlan{
			mode: s.mode, nodes: s.nodes,
			w: exact.W, predicted: exact.Overhead, desc: exact.String(),
			pattern: exact.Pattern, costs: plat.Costs, rates: plat.Rates,
		}, nil
	case ModeTwoLevel, ModeMultilevel:
		levels := 2
		if s.mode == ModeMultilevel {
			levels = cfg.Levels
		}
		params, err := multilevel.FromPlatform(plat, levels)
		if err != nil {
			return jobPlan{}, err
		}
		pl, err := multilevel.NewPlanner(params)
		if err != nil {
			return jobPlan{}, err
		}
		plan, err := pl.Plan()
		if err != nil {
			return jobPlan{}, err
		}
		return jobPlan{
			mode: s.mode, nodes: s.nodes,
			w: plan.Spec.W, predicted: plan.Overhead, desc: plan.String(),
			params: params, spec: plan.Spec,
		}, nil
	default:
		return jobPlan{}, fmt.Errorf("fleet: mode %d out of range", int(s.mode))
	}
}
