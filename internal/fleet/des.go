package fleet

// The discrete-event dispatcher: a sequential event loop over job
// arrivals and completions against the shared node pool. Sequential by
// design — its cost is O(events · log running), negligible next to the
// fault-injected executions of phase 2 — which makes its determinism
// unconditional: state evolves in a fixed event order (ties broken
// completions-first, then by job index).

import (
	"container/heap"
	"sort"
)

// backfillDepth bounds how many queued jobs behind the head one
// dispatch pass may inspect, keeping a deeply backlogged campaign
// (100k queued jobs) out of O(queue²) while leaving realistic
// backlogs fully scanned.
const backfillDepth = 64

// completion is one running job's end event.
type completion struct {
	end   float64
	idx   int
	nodes int
}

// completionHeap orders completions by (end, idx) — the idx tie-break
// keeps the event order, and with it every downstream float reduction,
// fully specified.
type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(a, b int) bool {
	if h[a].end != h[b].end {
		return h[a].end < h[b].end
	}
	return h[a].idx < h[b].idx
}
func (h completionHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// des is the dispatcher state.
type des struct {
	cfg        *Config
	jobs       []Job
	execs      []jobExec
	now        float64
	free       int
	queue      []int // job indices, FIFO
	running    completionHeap
	scratch    []completion // reservation scratch, reused
	backfilled int
}

// dispatch replays the campaign and fills each job's start/end times.
// It returns the number of backfilled starts.
func dispatch(cfg *Config, jobs []Job, execs []jobExec) int {
	d := &des{cfg: cfg, jobs: jobs, execs: execs, free: cfg.Nodes}
	next := 0 // next arrival index
	for next < len(jobs) || d.running.Len() > 0 {
		// Completions fire before arrivals at equal times so a freed
		// node is visible to a job arriving at that instant.
		if d.running.Len() > 0 && (next >= len(jobs) || d.running[0].end <= jobs[next].Arrival) {
			c := heap.Pop(&d.running).(completion)
			d.now = c.end
			d.free += c.nodes
		} else {
			d.now = jobs[next].Arrival
			d.queue = append(d.queue, next)
			next++
		}
		d.sched()
	}
	return d.backfilled
}

// sched starts every job the policy admits at the current instant.
func (d *des) sched() {
	for len(d.queue) > 0 {
		head := d.queue[0]
		if d.jobs[head].Nodes <= d.free {
			d.start(head)
			d.queue = d.queue[1:]
			continue
		}
		if !d.cfg.Backfill {
			return
		}
		// Conservative backfill: the head holds a reservation at the
		// earliest time enough nodes will be free; a later job may jump
		// it only if it fits right now and its (exactly known) finish
		// does not outlast the reservation — so the head is provably
		// never delayed.
		tres, ok := d.reservation(d.jobs[head].Nodes)
		if !ok {
			return
		}
		started := false
		limit := len(d.queue)
		if limit > backfillDepth+1 {
			limit = backfillDepth + 1
		}
		for k := 1; k < limit; k++ {
			i := d.queue[k]
			if d.jobs[i].Nodes <= d.free && d.now+d.execs[i].duration <= tres {
				d.start(i)
				d.queue = append(d.queue[:k], d.queue[k+1:]...)
				started = true
				break
			}
		}
		if !started {
			return
		}
		d.backfilled++
	}
}

// start launches job i at the current instant.
func (d *des) start(i int) {
	d.execs[i].start = d.now
	d.execs[i].end = d.now + d.execs[i].duration
	d.free -= d.jobs[i].Nodes
	heap.Push(&d.running, completion{end: d.execs[i].end, idx: i, nodes: d.jobs[i].Nodes})
}

// reservation returns the earliest time at which n nodes are free,
// assuming no further starts — the backfill bound. ok is false when
// even draining every running job cannot free n nodes (impossible
// here, since jobs are validated against the cluster size, but kept as
// a guard).
func (d *des) reservation(n int) (float64, bool) {
	if n <= d.free {
		return d.now, true
	}
	d.scratch = append(d.scratch[:0], d.running...)
	sort.Slice(d.scratch, func(a, b int) bool {
		if d.scratch[a].end != d.scratch[b].end {
			return d.scratch[a].end < d.scratch[b].end
		}
		return d.scratch[a].idx < d.scratch[b].idx
	})
	free := d.free
	for _, c := range d.scratch {
		free += c.nodes
		if free >= n {
			return c.end, true
		}
	}
	return 0, false
}
