package fleet

import (
	"strings"
	"testing"

	"respat/internal/core"
	"respat/internal/platform"
)

func hera(t *testing.T) platform.Platform {
	t.Helper()
	p, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunSmallPattern(t *testing.T) {
	res, err := Run(Config{
		Platform: hera(t), Nodes: 16, Family: core.PDMV,
		NumJobs: 300, Rate: 1.0 / 7200, JobWork: 36000, WorkSpread: 4,
		Backfill: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 300 {
		t.Errorf("Jobs = %d, want 300", res.Jobs)
	}
	if res.Makespan <= 0 {
		t.Errorf("Makespan = %v, want > 0", res.Makespan)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("Utilization = %v, want in (0, 1]", res.Utilization)
	}
	if res.Overhead.Mean <= 0 {
		t.Errorf("Overhead.Mean = %v, want > 0 (checkpoints cost something)", res.Overhead.Mean)
	}
	if res.Overhead.P99 < res.Overhead.P50 || res.Overhead.Max < res.Overhead.P99 {
		t.Errorf("overhead quantiles disordered: %+v", res.Overhead)
	}
	if res.Totals.Detected > res.Totals.Silent {
		t.Errorf("Detected %d > Silent %d", res.Totals.Detected, res.Totals.Silent)
	}
	if res.Totals.Checkpoints == 0 || res.Totals.Verifications == 0 {
		t.Errorf("no checkpoints (%d) or verifications (%d) in a protected campaign", res.Totals.Checkpoints, res.Totals.Verifications)
	}
	if res.TotalEffWork < res.TotalWork {
		t.Errorf("effective work %v < submitted work %v; quantization rounds up", res.TotalEffWork, res.TotalWork)
	}
	if len(res.Plans) == 0 {
		t.Error("no plans reported")
	}
	jobs := 0
	for _, p := range res.Plans {
		jobs += p.Jobs
		if p.W <= 0 || p.PredictedOverhead <= 0 {
			t.Errorf("plan %+v has non-positive W or overhead", p)
		}
	}
	if jobs != res.Jobs {
		t.Errorf("plan job counts sum to %d, want %d", jobs, res.Jobs)
	}
}

func TestRunMixedModesFromTrace(t *testing.T) {
	trace := []Job{
		{Arrival: 0, Work: 200000, Nodes: 64, Mode: ModePattern},
		{Arrival: 1000, Work: 200000, Nodes: 64, Mode: ModeTwoLevel},
		{Arrival: 2000, Work: 200000, Nodes: 64, Mode: ModeMultilevel},
		{Arrival: 3000, Work: 200000, Nodes: 128, Mode: ModeMultilevel},
	}
	res, err := Run(Config{
		Platform: hera(t), Nodes: 256, Family: core.PDMV,
		Trace: trace, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 4 {
		t.Fatalf("got %d plans, want 4 (one per shape): %+v", len(res.Plans), res.Plans)
	}
	// Shapes are reported in (mode, nodes) order.
	wantModes := []string{"pattern", "twolevel", "multilevel", "multilevel"}
	for i, p := range res.Plans {
		if p.Mode != wantModes[i] {
			t.Errorf("plan %d mode = %s, want %s", i, p.Mode, wantModes[i])
		}
		if p.Jobs != 1 {
			t.Errorf("plan %d jobs = %d, want 1", i, p.Jobs)
		}
	}
}

func TestSynthesizeDeterministicAndBounded(t *testing.T) {
	cfg := Config{
		Platform: hera(t), Nodes: 64, NumJobs: 500, Rate: 0.01,
		JobWork: 1000, WorkSpread: 8, Seed: 9,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	a := synthesize(&cfg)
	b := synthesize(&cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("synthesis not deterministic at job %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	last := 0.0
	for i, j := range a {
		if j.Arrival < last {
			t.Fatalf("job %d arrival %v before %v", i, j.Arrival, last)
		}
		last = j.Arrival
		if j.Work < 1000/8-1e-9 || j.Work > 1000*8+1e-9 {
			t.Errorf("job %d work %v outside spread bounds", i, j.Work)
		}
		if j.Nodes < 1 || j.Nodes > 32 || j.Nodes&(j.Nodes-1) != 0 {
			t.Errorf("job %d nodes %d not a power of two in 1..32", i, j.Nodes)
		}
	}
	cfg.Seed = 10
	c := synthesize(&cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestConfigValidate(t *testing.T) {
	base := Config{Platform: hera(t), Nodes: 16, NumJobs: 10, Rate: 1, JobWork: 100}
	if err := base.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
	for name, mut := range map[string]func(*Config){
		"negative nodes":    func(c *Config) { c.Nodes = -1 },
		"zero jobs":         func(c *Config) { c.NumJobs = 0 },
		"zero rate":         func(c *Config) { c.Rate = 0 },
		"bad spread":        func(c *Config) { c.WorkSpread = 0.5 },
		"bad mode":          func(c *Config) { c.Mode = numModes },
		"bad family":        func(c *Config) { c.Family = core.Kind(99) },
		"job nodes too big": func(c *Config) { c.JobNodes = 17 },
		"oversized trace job": func(c *Config) {
			c.Trace = []Job{{Arrival: 0, Work: 1, Nodes: 17}}
		},
		"unsorted trace": func(c *Config) {
			c.Trace = []Job{{Arrival: 5, Work: 1, Nodes: 1}, {Arrival: 1, Work: 1, Nodes: 1}}
		},
		"zero-work trace job": func(c *Config) {
			c.Trace = []Job{{Arrival: 0, Work: 0, Nodes: 1}}
		},
	} {
		cfg := base
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
}

func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModePattern, ModeTwoLevel, ModeMultilevel} {
		got, err := ParseMode(strings.ToUpper(m.String()))
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("daly"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}
