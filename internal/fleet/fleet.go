// Package fleet is a deterministic discrete-event simulator of a whole
// cluster running resilience-protected jobs. Where internal/sim
// validates the paper's model for a single protected application,
// fleet answers capacity-planning questions: will N nodes sustain an
// arrival rate R under the platform's fault rates (λf, λs) within an
// SLO on queueing delay and resilience overhead?
//
// A campaign has three phases:
//
//  1. Plan — every distinct (mode, job node count) gets a resilience
//     plan from the warm planners (analytic evaluator +
//     optimize.ExactWithEvaluator for pattern mode, the memoized
//     multilevel.Planner for the hierarchical modes), with the job's
//     error rates weak-scaled from the platform's per-node rates.
//  2. Simulate — each job's protected execution (fault injection on
//     the exposure clocks of internal/sim, whole patterns as the unit
//     of protected work) runs as one cell of a sched.RunCellsCtx
//     fan-out: each worker keeps warm JobSim/MLJobSim executors per
//     plan and every cell writes only its own slot. A job's duration
//     is a pure function of (campaign seed, job index, plan), so the
//     fan-out width cannot change any output bit.
//  3. Dispatch — a sequential discrete-event loop replays open-loop
//     arrivals against the shared node pool with a FIFO queue and
//     optional conservative backfill (durations are known exactly, so
//     backfilled jobs provably never delay the queue head), then
//     reduces per-job metrics in job order.
//
// Same seed ⇒ byte-identical Result JSON for any Workers value,
// asserted like internal/sim's determinism tests.
package fleet

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"respat/internal/core"
	"respat/internal/faults"
	"respat/internal/platform"
	"respat/internal/sched"
	"respat/internal/sim"
)

// Mode selects the resilience model protecting a job.
type Mode int

const (
	// ModePattern protects jobs with a single-level Table 1 pattern
	// (family Config.Family) simulated by the internal/sim executor
	// with errors striking all operations (the Section 5 semantics).
	ModePattern Mode = iota
	// ModeTwoLevel protects jobs with the two-level checkpoint
	// hierarchy (multilevel model at L = 2).
	ModeTwoLevel
	// ModeMultilevel protects jobs with an L-level hierarchy
	// (Config.Levels, default 3).
	ModeMultilevel
	numModes
)

// String names the mode as the CLI spells it.
func (m Mode) String() string {
	switch m {
	case ModePattern:
		return "pattern"
	case ModeTwoLevel:
		return "twolevel"
	case ModeMultilevel:
		return "multilevel"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode converts a mode name (case-insensitive) to a Mode.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "pattern":
		return ModePattern, nil
	case "twolevel":
		return ModeTwoLevel, nil
	case "multilevel":
		return ModeMultilevel, nil
	default:
		return 0, fmt.Errorf("fleet: unknown mode %q (have pattern, twolevel, multilevel)", s)
	}
}

// Job is one unit of submitted work: it arrives at Arrival, needs
// Nodes nodes exclusively, and performs Work seconds of protected
// computation under the resilience model of Mode.
type Job struct {
	// Arrival is the submission time in seconds from campaign start.
	Arrival float64
	// Work is the error-free computation demand in seconds. Protected
	// execution proceeds in whole patterns, so the effective work is
	// Work rounded up to a multiple of the plan's pattern length W*.
	Work float64
	// Nodes is the number of cluster nodes the job occupies; the job's
	// error rates are the platform per-node rates times Nodes.
	Nodes int
	// Mode selects the job's resilience model.
	Mode Mode
}

// Validate checks one job against the cluster size.
func (j Job) Validate(clusterNodes int) error {
	if j.Arrival < 0 || math.IsNaN(j.Arrival) || math.IsInf(j.Arrival, 0) {
		return fmt.Errorf("fleet: job arrival = %v, need finite >= 0", j.Arrival)
	}
	if j.Work <= 0 || math.IsNaN(j.Work) || math.IsInf(j.Work, 0) {
		return fmt.Errorf("fleet: job work = %v, need finite > 0", j.Work)
	}
	if j.Nodes <= 0 {
		return fmt.Errorf("fleet: job nodes = %d, need > 0", j.Nodes)
	}
	if j.Nodes > clusterNodes {
		return fmt.Errorf("fleet: job needs %d nodes, cluster has %d", j.Nodes, clusterNodes)
	}
	if j.Mode < 0 || j.Mode >= numModes {
		return fmt.Errorf("fleet: job mode %d out of range", int(j.Mode))
	}
	return nil
}

// Config parameterises a fleet campaign.
type Config struct {
	// Platform supplies the per-node error rates and the resilience
	// costs (a Table 2 platform, typically).
	Platform platform.Platform
	// Nodes is the cluster capacity; 0 means Platform.Nodes.
	Nodes int
	// Mode is the resilience model of synthesized jobs (trace jobs
	// carry their own).
	Mode Mode
	// Family is the Table 1 family used by pattern-mode jobs; the zero
	// value is PD, cmd/fleet defaults to PDMV.
	Family core.Kind
	// Levels is the hierarchy depth of ModeMultilevel jobs (default 3,
	// max multilevel.MaxLevels); ModeTwoLevel always uses 2.
	Levels int

	// Trace, when non-nil, is the explicit job list (see ParseTrace);
	// arrivals must be non-decreasing. It overrides the synthesis
	// fields below.
	Trace []Job
	// NumJobs is the number of synthesized jobs.
	NumJobs int
	// Rate is the Poisson arrival rate of synthesized jobs in jobs per
	// second.
	Rate float64
	// JobWork is the work demand of synthesized jobs in seconds
	// (default 86400, one error-free day).
	JobWork float64
	// WorkSpread >= 1 draws each synthesized job's work log-uniformly
	// from [JobWork/WorkSpread, JobWork*WorkSpread]; 0 or 1 keeps it
	// constant.
	WorkSpread float64
	// JobNodes fixes the node count of synthesized jobs; 0 draws
	// power-of-two sizes from 1 to Nodes/2 uniformly (a classic HPC
	// mix, which gives the backfill scheduler something to do).
	JobNodes int

	// Backfill enables conservative backfill: when the queue head does
	// not fit, later queued jobs may start if they fit in the free
	// nodes and provably finish before the head's reservation time.
	Backfill bool
	// Seed makes the whole campaign reproducible: arrivals, job sizing
	// and every job's fault injection derive from it alone.
	Seed uint64
	// Workers bounds the goroutines simulating job executions; 0 means
	// GOMAXPROCS. It affects wall-clock speed only, never results.
	Workers int
}

// Stream indices under the campaign seed. Job fault-injection seeds
// live at jobSeedStream+i so they can never collide with the workload
// synthesis streams.
const (
	streamArrival = iota
	streamWork
	streamNodes
	jobSeedStream = 1 << 32
)

// jobSeed derives job i's fault-injection seed; the job's executor
// splits its own per-process streams from it, so jobs of different
// modes never share an underlying random sequence.
func jobSeed(campaign uint64, i int) uint64 {
	s, _ := faults.SplitSeed(campaign, jobSeedStream+uint64(i))
	return s
}

// Validate checks the configuration and normalises nothing; Run works
// on a copy with defaults applied.
func (cfg Config) Validate() error {
	if err := cfg.Platform.Validate(); err != nil {
		return err
	}
	if cfg.Nodes < 0 {
		return fmt.Errorf("fleet: Nodes = %d, need >= 0", cfg.Nodes)
	}
	if cfg.Mode < 0 || cfg.Mode >= numModes {
		return fmt.Errorf("fleet: Mode %d out of range", int(cfg.Mode))
	}
	if !cfg.Family.Valid() {
		return fmt.Errorf("fleet: invalid pattern family %d", int(cfg.Family))
	}
	if cfg.Levels < 0 {
		return fmt.Errorf("fleet: Levels = %d, need >= 0", cfg.Levels)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("fleet: Workers = %d, need >= 0", cfg.Workers)
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = cfg.Platform.Nodes
	}
	if cfg.Trace != nil {
		last := math.Inf(-1)
		for i, j := range cfg.Trace {
			if err := j.Validate(nodes); err != nil {
				return fmt.Errorf("trace job %d: %w", i, err)
			}
			if j.Arrival < last {
				return fmt.Errorf("fleet: trace job %d arrives at %v, before job %d at %v", i, j.Arrival, i-1, last)
			}
			last = j.Arrival
		}
		return nil
	}
	if cfg.NumJobs <= 0 {
		return fmt.Errorf("fleet: NumJobs = %d, need > 0 (or a Trace)", cfg.NumJobs)
	}
	if cfg.Rate <= 0 || math.IsNaN(cfg.Rate) || math.IsInf(cfg.Rate, 0) {
		return fmt.Errorf("fleet: Rate = %v jobs/s, need finite > 0", cfg.Rate)
	}
	if cfg.JobWork < 0 || math.IsNaN(cfg.JobWork) || math.IsInf(cfg.JobWork, 0) {
		return fmt.Errorf("fleet: JobWork = %v, need finite >= 0", cfg.JobWork)
	}
	if cfg.WorkSpread != 0 && (cfg.WorkSpread < 1 || math.IsNaN(cfg.WorkSpread) || math.IsInf(cfg.WorkSpread, 0)) {
		return fmt.Errorf("fleet: WorkSpread = %v, need >= 1 (or 0)", cfg.WorkSpread)
	}
	if cfg.JobNodes < 0 || cfg.JobNodes > nodes {
		return fmt.Errorf("fleet: JobNodes = %d, need 0..%d", cfg.JobNodes, nodes)
	}
	return nil
}

// jobExec is the per-job execution record filled across the three
// phases.
type jobExec struct {
	planIdx  int
	patterns int
	effWork  float64
	duration float64
	counters Totals
	start    float64
	end      float64
}

// Run executes the campaign. The returned Result is byte-identical
// (via Result.JSON) for a fixed Config modulo Workers.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = cfg.Platform.Nodes
	}
	if cfg.Levels == 0 {
		cfg.Levels = 3
	}
	if cfg.JobWork == 0 {
		cfg.JobWork = 86400
	}

	jobs := cfg.Trace
	if jobs == nil {
		jobs = synthesize(&cfg)
	}
	if len(jobs) == 0 {
		return Result{}, fmt.Errorf("fleet: empty job list")
	}

	plans, planIdx, err := buildPlans(&cfg, jobs)
	if err != nil {
		return Result{}, err
	}

	// Phase 2: per-job protected executions, fanned out with the
	// worker-count-independent discipline. Each cell writes only
	// execs[i]; each worker's context holds warm executors per plan.
	execs := make([]jobExec, len(jobs))
	for i := range jobs {
		execs[i].planIdx = planIdx[i]
		p := plans[planIdx[i]]
		n := int(math.Ceil(jobs[i].Work / p.w))
		if n < 1 {
			n = 1
		}
		execs[i].patterns = n
		execs[i].effWork = float64(n) * p.w
	}
	workers := cfg.Workers
	err = sched.RunCellsCtx(len(jobs), workersOr(workers, len(jobs)),
		func() (*simCtx, error) { return newSimCtx(plans), nil },
		func(ctx *simCtx, i int) error {
			dur, cnt, err := ctx.simulate(plans[execs[i].planIdx], jobSeed(cfg.Seed, i), execs[i].patterns)
			if err != nil {
				return fmt.Errorf("fleet: job %d: %w", i, err)
			}
			execs[i].duration = dur
			execs[i].counters = cnt
			return nil
		})
	if err != nil {
		return Result{}, err
	}

	// Phase 3: sequential dispatch + reduction in job order.
	backfilled := dispatch(&cfg, jobs, execs)
	return reduce(&cfg, jobs, execs, plans, backfilled)
}

// workersOr resolves the Workers default against the cell count.
func workersOr(workers, n int) int {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// simCtx is one worker's warm executor set: lazily one JobSim or
// MLJobSim per plan index. Executors are caches in the RunCellsCtx
// sense — their reuse history cannot influence a job's output, which
// depends only on (plan, job seed, pattern count).
type simCtx struct {
	plans []jobPlan
	pat   map[int]*sim.JobSim
	ml    map[int]*sim.MLJobSim
}

func newSimCtx(plans []jobPlan) *simCtx {
	return &simCtx{plans: plans, pat: map[int]*sim.JobSim{}, ml: map[int]*sim.MLJobSim{}}
}

// simulate runs one job's protected execution and maps its counters to
// the mode-independent totals.
func (c *simCtx) simulate(p jobPlan, seed uint64, patterns int) (float64, Totals, error) {
	if p.mode == ModePattern {
		js, ok := c.pat[p.idx]
		if !ok {
			var err error
			js, err = sim.NewJobSim(sim.Config{
				Pattern: p.pattern, Costs: p.costs, Rates: p.rates,
				ErrorsInOps: true,
			})
			if err != nil {
				return 0, Totals{}, err
			}
			c.pat[p.idx] = js
		}
		cnt, dur, err := js.Run(seed, patterns)
		if err != nil {
			return 0, Totals{}, err
		}
		return dur, patternTotals(cnt), nil
	}
	js, ok := c.ml[p.idx]
	if !ok {
		var err error
		js, err = sim.NewMLJobSim(sim.MultilevelConfig{Params: p.params, Spec: p.spec})
		if err != nil {
			return 0, Totals{}, err
		}
		c.ml[p.idx] = js
	}
	cnt, dur, err := js.Run(seed, patterns)
	if err != nil {
		return 0, Totals{}, err
	}
	return dur, multilevelTotals(cnt), nil
}
