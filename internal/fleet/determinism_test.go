package fleet

import (
	"bytes"
	"testing"

	"respat/internal/core"
)

// TestFleetReportByteIdentical is the fleet determinism gate wired
// into ci.yml: the same seed must produce byte-identical JSON reports
// at different worker counts — the fleet extension of internal/sim's
// same-seed contract. The per-job fault-injected executions are the
// only parallel phase, and each is a pure function of (seed, job
// index, plan); this test is what keeps that contract honest.
func TestFleetReportByteIdentical(t *testing.T) {
	cfg := Config{
		Platform: hera(t), Nodes: 64, Family: core.PDMV,
		NumJobs: 3000, Rate: 0.5, JobWork: 86400, WorkSpread: 4,
		Backfill: true, Seed: 42,
	}
	var golden []byte
	for _, workers := range []int{1, 3, 8} {
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := res.JSON()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if golden == nil {
			golden = b
			continue
		}
		if !bytes.Equal(golden, b) {
			t.Fatalf("workers=%d report differs from workers=1:\n%s\nvs\n%s", workers, golden, b)
		}
	}
}

// TestFleetMultilevelByteIdentical repeats the contract for the
// hierarchical executor path.
func TestFleetMultilevelByteIdentical(t *testing.T) {
	cfg := Config{
		Platform: hera(t), Nodes: 32, Mode: ModeMultilevel, Levels: 2,
		NumJobs: 500, Rate: 0.1, JobWork: 200000, JobNodes: 8,
		Seed: 7,
	}
	var golden []byte
	for _, workers := range []int{1, 5} {
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := res.JSON()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if golden == nil {
			golden = b
		} else if !bytes.Equal(golden, b) {
			t.Fatalf("workers=%d multilevel report differs", workers)
		}
	}
}
