package fleet

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// mkExecs builds execution records with fixed durations for DES-only
// tests (no fault injection involved).
func mkExecs(durations []float64) []jobExec {
	execs := make([]jobExec, len(durations))
	for i, d := range durations {
		execs[i].duration = d
		execs[i].effWork = d
	}
	return execs
}

func TestDispatchFIFO(t *testing.T) {
	cfg := &Config{Nodes: 2}
	jobs := []Job{
		{Arrival: 0, Work: 1, Nodes: 1},
		{Arrival: 0, Work: 1, Nodes: 1},
		{Arrival: 0, Work: 1, Nodes: 1},
	}
	execs := mkExecs([]float64{10, 10, 10})
	if got := dispatch(cfg, jobs, execs); got != 0 {
		t.Errorf("backfilled = %d without backfill enabled", got)
	}
	wantStart := []float64{0, 0, 10}
	for i, w := range wantStart {
		if execs[i].start != w {
			t.Errorf("job %d start = %v, want %v", i, execs[i].start, w)
		}
		if execs[i].end != w+10 {
			t.Errorf("job %d end = %v, want %v", i, execs[i].end, w+10)
		}
	}
}

func TestDispatchBackfill(t *testing.T) {
	cfg := &Config{Nodes: 4, Backfill: true}
	jobs := []Job{
		{Arrival: 0, Work: 1, Nodes: 2}, // runs 0-10, free 2 left
		{Arrival: 1, Work: 1, Nodes: 4}, // blocked head, reservation t=10
		{Arrival: 2, Work: 1, Nodes: 1}, // fits and ends 7 <= 10: backfilled
		{Arrival: 3, Work: 1, Nodes: 1}, // would end 23 > 10: must wait
	}
	execs := mkExecs([]float64{10, 10, 5, 20})
	if got := dispatch(cfg, jobs, execs); got != 1 {
		t.Errorf("backfilled = %d, want 1", got)
	}
	wantStart := []float64{0, 10, 2, 20}
	for i, w := range wantStart {
		if execs[i].start != w {
			t.Errorf("job %d start = %v, want %v", i, execs[i].start, w)
		}
	}
}

func TestDispatchNoBackfillHoldsQueue(t *testing.T) {
	cfg := &Config{Nodes: 4}
	jobs := []Job{
		{Arrival: 0, Work: 1, Nodes: 2},
		{Arrival: 1, Work: 1, Nodes: 4},
		{Arrival: 2, Work: 1, Nodes: 1},
	}
	execs := mkExecs([]float64{10, 10, 5})
	dispatch(cfg, jobs, execs)
	// FIFO: job 2 cannot jump the blocked 4-node head.
	if execs[1].start != 10 || execs[2].start != 20 {
		t.Errorf("starts = %v, %v; want 10, 20", execs[1].start, execs[2].start)
	}
}

// TestDispatchCapacity replays a randomized campaign and asserts the
// node pool is never oversubscribed and every job starts after its
// arrival, with and without backfill.
func TestDispatchCapacity(t *testing.T) {
	for _, backfill := range []bool{false, true} {
		rng := rand.New(rand.NewPCG(1, 2))
		const cluster = 16
		jobs := make([]Job, 400)
		durs := make([]float64, len(jobs))
		now := 0.0
		for i := range jobs {
			now += rng.Float64() * 3
			jobs[i] = Job{Arrival: now, Work: 1, Nodes: 1 + rng.IntN(cluster)}
			durs[i] = 1 + rng.Float64()*30
		}
		cfg := &Config{Nodes: cluster, Backfill: backfill}
		execs := mkExecs(durs)
		dispatch(cfg, jobs, execs)

		type edge struct {
			t     float64
			nodes int
		}
		var edges []edge
		for i := range execs {
			if execs[i].start < jobs[i].Arrival {
				t.Fatalf("backfill=%v: job %d starts at %v before arrival %v", backfill, i, execs[i].start, jobs[i].Arrival)
			}
			if execs[i].end != execs[i].start+execs[i].duration {
				t.Fatalf("backfill=%v: job %d end %v != start+duration %v", backfill, i, execs[i].end, execs[i].start+execs[i].duration)
			}
			edges = append(edges, edge{execs[i].start, jobs[i].Nodes}, edge{execs[i].end, -jobs[i].Nodes})
		}
		sort.Slice(edges, func(a, b int) bool {
			if edges[a].t != edges[b].t {
				return edges[a].t < edges[b].t
			}
			return edges[a].nodes < edges[b].nodes // releases before claims at ties
		})
		busy := 0
		for _, e := range edges {
			busy += e.nodes
			if busy > cluster {
				t.Fatalf("backfill=%v: %d nodes busy at t=%v on a %d-node cluster", backfill, busy, e.t, cluster)
			}
		}
	}
}
