package fleet

import (
	"strings"
	"testing"
)

func TestParseTrace(t *testing.T) {
	in := `
# arrival  work  nodes  mode
0       360000            # 1-node pattern job (defaults)
1800    360000  16        # 16-node job, default mode
3600    720000  64  multilevel
3600    360000  8   twolevel  # equal arrivals are fine
`
	jobs, err := ParseTrace(strings.NewReader(in), ModePattern)
	if err != nil {
		t.Fatal(err)
	}
	want := []Job{
		{Arrival: 0, Work: 360000, Nodes: 1, Mode: ModePattern},
		{Arrival: 1800, Work: 360000, Nodes: 16, Mode: ModePattern},
		{Arrival: 3600, Work: 720000, Nodes: 64, Mode: ModeMultilevel},
		{Arrival: 3600, Work: 360000, Nodes: 8, Mode: ModeTwoLevel},
	}
	if len(jobs) != len(want) {
		t.Fatalf("got %d jobs, want %d", len(jobs), len(want))
	}
	for i := range want {
		if jobs[i] != want[i] {
			t.Errorf("job %d = %+v, want %+v", i, jobs[i], want[i])
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":       "# nothing but comments\n",
		"one field":   "100\n",
		"five fields": "0 1 1 pattern extra\n",
		"bad arrival": "x 100\n",
		"bad work":    "0 x\n",
		"bad nodes":   "0 100 x\n",
		"bad mode":    "0 100 1 daly\n",
		"decreasing":  "100 1\n50 1\n",
	} {
		if _, err := ParseTrace(strings.NewReader(in), ModePattern); err == nil {
			t.Errorf("%s: ParseTrace accepted %q", name, in)
		}
	}
}

// TestTraceDrivenRunMatchesDefaultMode checks a trace campaign runs
// end to end and that the default mode reaches jobs without one.
func TestTraceDrivenRunMatchesDefaultMode(t *testing.T) {
	jobs, err := ParseTrace(strings.NewReader("0 300000 16\n600 300000 16\n"), ModeTwoLevel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Platform: hera(t), Nodes: 32, Trace: jobs, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 1 || res.Plans[0].Mode != "twolevel" {
		t.Fatalf("plans = %+v, want one twolevel plan", res.Plans)
	}
}
