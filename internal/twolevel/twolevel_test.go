package twolevel

import (
	"math"
	"testing"

	"respat/internal/xmath"
)

// TestCompareGain: with a large local share and a cheap local level
// the two-level protocol strictly beats the rate-matched disk-only
// baseline, and the baseline matches the protocol's own n=1,
// share-0 degeneration.
func TestCompareGain(t *testing.T) {
	p := Params{
		Lambda: 9.46e-6, LocalShare: 0.8,
		LocalCkpt: 15.4, DiskCkpt: 300, LocalRec: 15.4, DiskRec: 300,
	}
	cmp, err := Compare(p)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TwoLevel.Overhead >= cmp.SingleLevel.Overhead {
		t.Errorf("two-level %.4f not below disk-only %.4f", cmp.TwoLevel.Overhead, cmp.SingleLevel.Overhead)
	}
	if cmp.Gain <= 0 || cmp.Gain >= 1 {
		t.Errorf("gain %v outside (0,1)", cmp.Gain)
	}
	// The baseline overhead is the exact n=1 disk-only evaluation at
	// its own optimum: re-evaluating at W* must reproduce it.
	base := Params{Lambda: p.Lambda, DiskCkpt: p.DiskCkpt, DiskRec: p.DiskRec}
	e, err := ExpectedTime(base, cmp.SingleLevel.W, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h := e/cmp.SingleLevel.W - 1; h != cmp.SingleLevel.Overhead {
		t.Errorf("baseline overhead %v not reproduced by ExpectedTime (%v)", cmp.SingleLevel.Overhead, h)
	}
	if cmp.String() == "" {
		t.Error("empty String")
	}
	if _, err := Compare(Params{Lambda: 0, DiskCkpt: 300}); err == nil {
		t.Error("zero-rate comparison should fail")
	}
}

func params() Params {
	return Params{
		Lambda:     1e-4,
		LocalShare: 0.8,
		LocalCkpt:  10,
		DiskCkpt:   120,
		LocalRec:   10,
		DiskRec:    120,
	}
}

func TestValidate(t *testing.T) {
	if err := params().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := params()
	bad.LocalShare = 1.5
	if bad.Validate() == nil {
		t.Error("q > 1 should fail")
	}
	bad = params()
	bad.Lambda = math.NaN()
	if bad.Validate() == nil {
		t.Error("NaN lambda should fail")
	}
	bad = params()
	bad.DiskCkpt = -1
	if bad.Validate() == nil {
		t.Error("negative cost should fail")
	}
}

func TestExpectedTimeErrorFree(t *testing.T) {
	p := params()
	p.Lambda = 0
	e, err := ExpectedTime(p, 3600, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 3600 + 4*10 + 120.0
	if !xmath.Close(e, want, 1e-12) {
		t.Errorf("E = %v, want %v", e, want)
	}
}

func TestExpectedTimeValidation(t *testing.T) {
	p := params()
	if _, err := ExpectedTime(p, 0, 4); err == nil {
		t.Error("W=0 should fail")
	}
	if _, err := ExpectedTime(p, 100, 0); err == nil {
		t.Error("n=0 should fail")
	}
	bad := p
	bad.LocalShare = -1
	if _, err := ExpectedTime(bad, 100, 1); err == nil {
		t.Error("bad params should fail")
	}
}

func TestExpectedTimeAllGlobalReducesToSingleLevel(t *testing.T) {
	// With q = 0 and n = 1 the protocol is plain single-level
	// checkpointing; the renewal solves to
	// E = [(1-p)(W+CL) + p(lost+RD)]/(1-p) + CD.
	p := params()
	p.LocalShare = 0
	w := 5000.0
	e, err := ExpectedTime(p, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	prob := 1 - math.Exp(-p.Lambda*(w/1))
	lost := 1/p.Lambda - w/(math.Exp(p.Lambda*w)-1)
	want := ((1-prob)*(w+p.LocalCkpt)+prob*(lost+p.DiskRec))/(1-prob) + p.DiskCkpt
	if !xmath.Close(e, want, 1e-9) {
		t.Errorf("E = %v, want %v", e, want)
	}
}

func TestExpectedTimeMonotoneInRate(t *testing.T) {
	p := params()
	prev := 0.0
	for _, l := range []float64{0, 1e-5, 1e-4, 1e-3} {
		p.Lambda = l
		e, err := ExpectedTime(p, 3600, 4)
		if err != nil {
			t.Fatal(err)
		}
		if e <= prev {
			t.Errorf("E not increasing at lambda %v", l)
		}
		prev = e
	}
}

func TestOptimizeBasic(t *testing.T) {
	plan, err := Optimize(params())
	if err != nil {
		t.Fatal(err)
	}
	if plan.W <= 0 || plan.N < 1 || plan.Overhead <= 0 {
		t.Fatalf("implausible plan: %+v", plan)
	}
	// Local checkpoints must pay off here (cheap CL, mostly local
	// errors): the two-level optimum beats the single-level one.
	single, _ := xmath.MinimizeGolden(func(w float64) float64 {
		e, err := ExpectedTime(params(), w, 1)
		if err != nil {
			return math.Inf(1)
		}
		return e/w - 1
	}, 100, 1e6, 1e-10)
	_ = single
	eSingle, err := ExpectedTime(params(), single, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(plan.Overhead < eSingle/single-1) {
		t.Errorf("two-level %v should beat single-level %v", plan.Overhead, eSingle/single-1)
	}
	if plan.N < 2 {
		t.Errorf("expected several local intervals, got %d", plan.N)
	}
	if plan.String() == "" {
		t.Error("empty String")
	}
}

func TestOptimizeLocalShareZeroPrefersSingleLevel(t *testing.T) {
	// With no local errors, extra local checkpoints are pure overhead.
	p := params()
	p.LocalShare = 0
	plan, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != 1 {
		t.Errorf("n = %d, want 1 when all errors are global", plan.N)
	}
}

func TestOptimizeDegenerate(t *testing.T) {
	p := params()
	p.Lambda = 0
	if _, err := Optimize(p); err == nil {
		t.Error("zero rate should fail")
	}
}

func TestOptimizeIsLocalMinimum(t *testing.T) {
	p := params()
	plan, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	for dn := -2; dn <= 2; dn++ {
		n := plan.N + dn
		if n < 1 {
			continue
		}
		e, err := ExpectedTime(p, plan.W, n)
		if err != nil {
			t.Fatal(err)
		}
		if e/plan.W-1 < plan.Overhead-1e-9 {
			t.Errorf("n=%d beats the optimised n=%d", n, plan.N)
		}
	}
}

func TestSimulateMatchesExpectedTime(t *testing.T) {
	p := params()
	plan, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedTime(p, plan.W, plan.N)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(p, plan.W, plan.N, 20, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	perPattern := res.Time.Mean() / 20
	tol := 4*res.Time.CI95()/20 + 0.003*want
	if math.Abs(perPattern-want) > tol {
		t.Errorf("simulated %v vs evaluator %v (tol %v)", perPattern, want, tol)
	}
	if res.LocalRecs == 0 || res.GlobalRecs == 0 {
		t.Errorf("expected both recovery kinds: %+v", res)
	}
	// Local/global split tracks q = 0.8.
	frac := float64(res.LocalRecs) / float64(res.LocalRecs+res.GlobalRecs)
	if math.Abs(frac-0.8) > 0.05 {
		t.Errorf("local share = %v, want ~0.8", frac)
	}
}

func TestSimulateValidation(t *testing.T) {
	p := params()
	if _, err := Simulate(p, 0, 1, 1, 1, 1); err == nil {
		t.Error("W=0 should fail")
	}
	if _, err := Simulate(p, 100, 1, 0, 1, 1); err == nil {
		t.Error("patterns=0 should fail")
	}
	bad := p
	bad.Lambda = -1
	if _, err := Simulate(bad, 100, 1, 1, 1, 1); err == nil {
		t.Error("bad params should fail")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	p := params()
	a, err := Simulate(p, 2000, 3, 5, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, 2000, 3, 5, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time.Mean() != b.Time.Mean() || a.LocalRecs != b.LocalRecs || a.GlobalRecs != b.GlobalRecs {
		t.Error("simulation not deterministic by seed")
	}
}
