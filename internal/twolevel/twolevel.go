// Package twolevel implements the comparator protocol the paper
// contrasts itself against (Section 4.1 remark, Section 7.1): classic
// two-level checkpointing for *two levels of fail-stop errors* in the
// style of Vaidya and Di et al. Errors arrive at rate λ and are
// "local" with probability q — recoverable from a cheap local
// checkpoint — or "global" otherwise, destroying the local state and
// forcing a disk recovery plus a full pattern re-execution.
//
// Unlike the paper's fail-stop + silent combination, this protocol has
// no known closed-form optimum: both error levels interrupt the
// execution, so the analysis must condition on which level strikes
// first. The package therefore provides an exact numeric
// expected-time evaluator (a renewal recursion), a numeric optimiser
// over the period W and the number of local intervals n — the
// "sophisticated heuristics" route of the literature — and a
// Monte-Carlo simulator validating the evaluator. Contrasting
// Optimize here with analytic.Optimal makes the paper's structural
// point executable.
package twolevel

import (
	"fmt"
	"math"

	"respat/internal/analytic"
	"respat/internal/faults"
	"respat/internal/stats"
	"respat/internal/xmath"
)

// Params describes the two-level fail-stop protocol.
type Params struct {
	Lambda     float64 // total fail-stop error rate (/s)
	LocalShare float64 // q: probability an error is local, in [0,1]
	LocalCkpt  float64 // CL: local checkpoint cost (s)
	DiskCkpt   float64 // CD: disk checkpoint cost (s)
	LocalRec   float64 // RL: local recovery cost (s)
	DiskRec    float64 // RD: disk recovery cost (s)
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Lambda < 0 || math.IsNaN(p.Lambda) || math.IsInf(p.Lambda, 0) {
		return fmt.Errorf("twolevel: lambda = %v", p.Lambda)
	}
	if p.LocalShare < 0 || p.LocalShare > 1 || math.IsNaN(p.LocalShare) {
		return fmt.Errorf("twolevel: local share = %v", p.LocalShare)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"CL", p.LocalCkpt}, {"CD", p.DiskCkpt}, {"RL", p.LocalRec}, {"RD", p.DiskRec},
	} {
		if c.v < 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("twolevel: %s = %v", c.name, c.v)
		}
	}
	return nil
}

// ExpectedTime evaluates the exact expected time of one pattern: n
// equal intervals of W/n work, each closed by a local checkpoint, the
// pattern closed by a disk checkpoint. A local error loses the current
// interval (local recovery RL); a global error loses the pattern (disk
// recovery RD plus replay of all committed intervals). Checkpoints are
// failure-free, matching the Sections 3-4 assumption of the paper.
func ExpectedTime(p Params, w float64, n int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if w <= 0 || n <= 0 {
		return 0, fmt.Errorf("twolevel: W=%v n=%d", w, n)
	}
	u := w / float64(n)
	prob := -math.Expm1(-p.Lambda * u) // P(error during one interval attempt)
	if prob >= 1 {
		return math.Inf(1), nil
	}
	lost := analytic.ExpectedLost(p.Lambda, u)
	var total, prevSum float64
	for i := 0; i < n; i++ {
		// Renewal: E_i = (1-p)(u+CL) + p·[lost + q·RL + (1-q)(RD+prev)] + p·E_i.
		attempt := (1-prob)*(u+p.LocalCkpt) +
			prob*(lost+p.LocalShare*p.LocalRec+(1-p.LocalShare)*(p.DiskRec+prevSum))
		ei := attempt / (1 - prob)
		total += ei
		prevSum += ei
	}
	return total + p.DiskCkpt, nil
}

// Plan is the numerically optimised two-level configuration.
type Plan struct {
	W        float64
	N        int
	Overhead float64 // expected overhead E/W - 1 at the optimum
}

// String renders the plan.
func (p Plan) String() string {
	return fmt.Sprintf("two-level: W*=%.6gs n*=%d H*=%.4f", p.W, p.N, p.Overhead)
}

// Optimize searches the (W, n) space numerically: ternary search over
// the convex integer n with an inner golden-section over W. There is
// no closed form to seed from, so the W bracket comes from the
// Young/Daly scale √(2·CD/λ).
func Optimize(p Params) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	if p.Lambda == 0 {
		return Plan{}, fmt.Errorf("twolevel: zero error rate has no finite optimum")
	}
	scale := math.Sqrt(2 * math.Max(p.DiskCkpt, 1e-6) / p.Lambda)
	overheadAt := func(n int) (float64, float64) {
		w, h := xmath.MinimizeGolden(func(w float64) float64 {
			e, err := ExpectedTime(p, w, n)
			if err != nil || math.IsInf(e, 1) {
				return math.Inf(1)
			}
			return e/w - 1
		}, scale/100, scale*100, 1e-10)
		return w, h
	}
	bestN, _ := xmath.MinimizeConvexInt(func(n int) float64 {
		_, h := overheadAt(n)
		return h
	}, 1, 1024)
	w, h := overheadAt(bestN)
	if math.IsInf(h, 1) || math.IsNaN(h) {
		return Plan{}, fmt.Errorf("twolevel: optimisation diverged")
	}
	return Plan{W: w, N: bestN, Overhead: h}, nil
}

// Comparison sets the optimised two-level protocol against the
// single-level disk-only baseline on a rate-matched configuration —
// the executable form of the Section 4.1 remark: how much does the
// cheap local level buy once both protocols are optimised under the
// same exact model?
type Comparison struct {
	// TwoLevel is the optimised two-level plan.
	TwoLevel Plan
	// SingleLevel is the optimised disk-only plan (n = 1, no local
	// checkpoints, every error pays the disk recovery), evaluated
	// under the same exact renewal recursion.
	SingleLevel Plan
	// Gain is the relative overhead reduction,
	// 1 - TwoLevel.Overhead/SingleLevel.Overhead.
	Gain float64
}

// String renders the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf("two-level H*=%.4f vs single-level H*=%.4f (gain %.1f%%)",
		c.TwoLevel.Overhead, c.SingleLevel.Overhead, 100*c.Gain)
}

// Compare optimises the two-level protocol and its disk-only
// degeneration (local share 0, zero-cost local level, n = 1) for the
// same error rate and reports the gain of the local level.
func Compare(p Params) (Comparison, error) {
	two, err := Optimize(p)
	if err != nil {
		return Comparison{}, err
	}
	// The disk-only baseline is the protocol with the local level
	// stripped: all errors are global and only the interval count n = 1
	// makes sense (extra zero-cost local checkpoints change nothing).
	base := Params{Lambda: p.Lambda, LocalShare: 0, DiskCkpt: p.DiskCkpt, DiskRec: p.DiskRec}
	scale := math.Sqrt(2 * math.Max(base.DiskCkpt, 1e-6) / base.Lambda)
	w, h := xmath.MinimizeGolden(func(w float64) float64 {
		e, err := ExpectedTime(base, w, 1)
		if err != nil || math.IsInf(e, 1) {
			return math.Inf(1)
		}
		return e/w - 1
	}, scale/100, scale*100, 1e-10)
	if math.IsInf(h, 1) || math.IsNaN(h) {
		return Comparison{}, fmt.Errorf("twolevel: single-level baseline diverged")
	}
	cmp := Comparison{TwoLevel: two, SingleLevel: Plan{W: w, N: 1, Overhead: h}}
	if h > 0 {
		cmp.Gain = 1 - two.Overhead/h
	}
	return cmp, nil
}

// SimResult aggregates the Monte-Carlo validation.
type SimResult struct {
	Time       stats.Sample // per-run total
	LocalRecs  int64
	GlobalRecs int64
}

// Simulate runs the two-level protocol: patterns instances per run,
// runs repetitions, with exponential arrivals classified local/global
// by an independent Bernoulli(q). It validates ExpectedTime.
func Simulate(p Params, w float64, n, patterns, runs int, seed uint64) (SimResult, error) {
	if err := p.Validate(); err != nil {
		return SimResult{}, err
	}
	if w <= 0 || n <= 0 || patterns <= 0 || runs <= 0 {
		return SimResult{}, fmt.Errorf("twolevel: W=%v n=%d patterns=%d runs=%d", w, n, patterns, runs)
	}
	u := w / float64(n)
	var out SimResult
	for run := 0; run < runs; run++ {
		s1, s2 := faults.SplitSeed(seed, uint64(run)*2)
		src, err := faults.NewExponential(p.Lambda, s1, s2)
		if err != nil {
			return SimResult{}, err
		}
		b1, b2 := faults.SplitSeed(seed, uint64(run)*2+1)
		coin := faults.NewBernoulli(b1, b2)
		var now, exposure float64
		next := src.Next(0)
		for pat := 0; pat < patterns; pat++ {
			i := 0
			for i < n {
				d := u + p.LocalCkpt
				if next-exposure <= d {
					// Error mid-interval.
					dt := next - exposure
					now += dt
					exposure = next
					next = src.Next(exposure)
					if coin.Hit(p.LocalShare) {
						now += p.LocalRec
						out.LocalRecs++
						// Retry interval i.
					} else {
						now += p.DiskRec
						out.GlobalRecs++
						i = 0 // replay the whole pattern
					}
					continue
				}
				exposure += d
				now += d
				i++
			}
			now += p.DiskCkpt
		}
		out.Time.Add(now)
	}
	return out, nil
}
