package faultfit

import (
	"math"
	"testing"
)

func TestOnlineRateStartsAtPrior(t *testing.T) {
	o, err := NewOnlineRate(OnlineConfig{PriorRate: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Rate(); got != 1e-4 {
		t.Fatalf("rate before any observation = %v, want prior 1e-4", got)
	}
}

func TestOnlineRateCensoredWindowsStayPositiveFinite(t *testing.T) {
	o, err := NewOnlineRate(OnlineConfig{PriorRate: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	// A long run of event-free exposure: the estimate must decay towards
	// zero without ever reaching it, and never go NaN.
	prev := o.Rate()
	for i := 0; i < 200; i++ {
		if err := o.Observe(0, 5000); err != nil {
			t.Fatal(err)
		}
		r := o.Rate()
		if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			t.Fatalf("censored observation %d: rate = %v, want positive finite", i, r)
		}
		if r > prev {
			t.Fatalf("censored observation %d: rate rose %v -> %v", i, prev, r)
		}
		prev = r
	}
}

func TestOnlineRateShortWindowsDoNotOverreact(t *testing.T) {
	o, err := NewOnlineRate(OnlineConfig{PriorRate: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	// One event over a tiny exposure would MLE to 1 event/s; the prior
	// pseudo-exposure must keep the posterior sane.
	if err := o.Observe(1, 1); err != nil {
		t.Fatal(err)
	}
	if r := o.Rate(); r > 10*1e-5 {
		t.Fatalf("one short-window event moved the rate to %v (prior 1e-5)", r)
	}
}

func TestOnlineRateZeroExposureEventsRejected(t *testing.T) {
	// Events over zero exposure are a degenerate infinite-rate
	// observation: rejected, leaving the estimate untouched.
	o, err := NewOnlineRate(OnlineConfig{PriorRate: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Observe(3, 0); err == nil {
		t.Fatal("events over zero exposure accepted")
	}
	if r := o.Rate(); r != 1e-5 {
		t.Fatalf("rejected zero-exposure events moved the rate to %v", r)
	}
}

func TestOnlineRateConvergesToTrueRate(t *testing.T) {
	o, err := NewOnlineRate(OnlineConfig{PriorRate: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	// 100 windows at the true rate 1e-3: 10 events per 10,000 s.
	for i := 0; i < 100; i++ {
		if err := o.Observe(10, 10_000); err != nil {
			t.Fatal(err)
		}
	}
	if r := o.Rate(); r < 0.8e-3 || r > 1.2e-3 {
		t.Fatalf("rate %v after 100 windows at 1e-3", r)
	}
}

func TestOnlineRateDriftResetAccelerates(t *testing.T) {
	slow, err := NewOnlineRate(OnlineConfig{PriorRate: 1e-5, Window: 8, DriftGLR: -1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewOnlineRate(OnlineConfig{PriorRate: 1e-5, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Long quiet history at the prior rate, then a 100x shift.
	feed := func(o *OnlineRate, events int64, exposure float64, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := o.Observe(events, exposure); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(slow, 1, 100_000, 50) // ~1e-5
	feed(fast, 1, 100_000, 50)
	feed(slow, 10, 10_000, 10) // 1e-3
	feed(fast, 10, 10_000, 10)
	if fast.Drifts() == 0 {
		t.Fatal("drift detector never fired on a 100x rate shift")
	}
	if slow.Drifts() != 0 {
		t.Fatal("disabled drift detector fired")
	}
	if fast.Rate() <= slow.Rate() {
		t.Fatalf("drift reset did not accelerate: fast %v <= slow %v", fast.Rate(), slow.Rate())
	}
	if r := fast.Rate(); r < 0.3e-3 {
		t.Fatalf("post-drift rate %v still far from true 1e-3", r)
	}
}

func TestOnlineRateHalfLifeForgets(t *testing.T) {
	o, err := NewOnlineRate(OnlineConfig{PriorRate: 1e-4, HalfLife: 50_000, DriftGLR: -1})
	if err != nil {
		t.Fatal(err)
	}
	// History at 1e-3, then fresh windows at 1e-5: with a 50,000 s
	// half-life the old regime fades within a few windows.
	for i := 0; i < 50; i++ {
		if err := o.Observe(10, 10_000); err != nil {
			t.Fatal(err)
		}
	}
	high := o.Rate()
	for i := 0; i < 50; i++ {
		if err := o.Observe(0, 50_000); err != nil {
			t.Fatal(err)
		}
	}
	if o.Rate() > high/10 {
		t.Fatalf("half-life forgetting too weak: %v -> %v", high, o.Rate())
	}
}

func TestOnlineRateRejectsBadObservations(t *testing.T) {
	o, err := NewOnlineRate(OnlineConfig{PriorRate: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Observe(-1, 10); err == nil {
		t.Error("negative events accepted")
	}
	if err := o.Observe(1, math.NaN()); err == nil {
		t.Error("NaN exposure accepted")
	}
	if err := o.Observe(1, math.Inf(1)); err == nil {
		t.Error("infinite exposure accepted")
	}
	if err := o.Observe(1, -5); err == nil {
		t.Error("negative exposure accepted")
	}
	if err := o.Observe(5, 0); err == nil {
		t.Error("events over zero exposure accepted")
	}
	if got := o.Rate(); got != 1e-4 {
		t.Fatalf("rejected observations moved the rate: %v", got)
	}
	if got := o.Observations(); got != 0 {
		t.Fatalf("rejected observations counted: %d", got)
	}
}

func TestOnlineRateConfigValidation(t *testing.T) {
	if _, err := NewOnlineRate(OnlineConfig{PriorRate: math.NaN()}); err == nil {
		t.Error("NaN prior accepted")
	}
	if _, err := NewOnlineRate(OnlineConfig{PriorRate: 1, Window: 1}); err == nil {
		t.Error("window of 1 accepted")
	}
	if _, err := NewOnlineRate(OnlineConfig{PriorRate: 1, Window: MaxWindow + 1}); err == nil {
		t.Error("window above MaxWindow accepted (unbounded eager allocation)")
	}
	if _, err := NewOnlineRate(OnlineConfig{PriorRate: 1, DriftGLR: math.NaN()}); err == nil {
		t.Error("NaN drift threshold accepted")
	}
	if _, err := NewOnlineRate(OnlineConfig{PriorRate: 1, DriftGLR: -1}); err != nil {
		t.Errorf("negative drift threshold (detector disabled) rejected: %v", err)
	}
}

func TestOnlineRateWindowRate(t *testing.T) {
	o, err := NewOnlineRate(OnlineConfig{PriorRate: 1e-4, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.WindowRate(); got != o.Rate() {
		t.Fatalf("empty-window WindowRate %v != Rate %v", got, o.Rate())
	}
	for i := 0; i < 4; i++ {
		if err := o.Observe(2, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := o.WindowRate(), 8.0/4000; math.Abs(got-want) > 1e-12 {
		t.Fatalf("WindowRate = %v, want %v", got, want)
	}
}
