package faultfit

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"respat/internal/stats"
	"respat/internal/xmath"
)

// ErrTooFewSamples is returned when a fit has fewer than two gaps.
var ErrTooFewSamples = errors.New("faultfit: need at least 2 inter-arrival gaps")

// Gaps converts an absolute arrival-time log into positive
// inter-arrival gaps. Times need not be sorted; non-finite entries are
// dropped; zero gaps (duplicate timestamps) are dropped too, as they
// carry no information for continuous laws.
func Gaps(times []float64) []float64 {
	ts := make([]float64, 0, len(times))
	for _, t := range times {
		if !math.IsNaN(t) && !math.IsInf(t, 0) {
			ts = append(ts, t)
		}
	}
	sort.Float64s(ts)
	gaps := make([]float64, 0, len(ts))
	for i := 1; i < len(ts); i++ {
		if d := ts[i] - ts[i-1]; d > 0 {
			gaps = append(gaps, d)
		}
	}
	return gaps
}

// Exponential is a fitted exponential law.
type Exponential struct {
	Lambda float64 // rate (/s)
	LogLik float64 // maximised log-likelihood
	N      int
}

// FitExponential computes the MLE λ = n/Σx.
func FitExponential(gaps []float64) (Exponential, error) {
	n := len(gaps)
	if n < 2 {
		return Exponential{}, ErrTooFewSamples
	}
	var sum xmath.Accumulator
	for _, x := range gaps {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return Exponential{}, fmt.Errorf("faultfit: gap %v not positive finite", x)
		}
		sum.Add(x)
	}
	lambda := float64(n) / sum.Value()
	// logL = n·ln λ - λ·Σx = n·ln λ - n.
	return Exponential{
		Lambda: lambda,
		LogLik: float64(n)*math.Log(lambda) - float64(n),
		N:      n,
	}, nil
}

// CDF evaluates the fitted law.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Lambda * x)
}

// Rate returns the arrival rate.
func (e Exponential) Rate() float64 { return e.Lambda }

// MTBF returns the mean gap.
func (e Exponential) MTBF() float64 { return 1 / e.Lambda }

// Weibull is a fitted Weibull law.
type Weibull struct {
	Shape  float64 // k
	Scale  float64 // λ (seconds)
	LogLik float64
	N      int
}

// FitWeibull computes the Weibull MLE: the shape k solves
//
//	Σ x^k ln x / Σ x^k - 1/k - mean(ln x) = 0
//
// (a monotone equation bracketed and solved with Brent), and the scale
// follows as (Σ x^k / n)^(1/k).
func FitWeibull(gaps []float64) (Weibull, error) {
	n := len(gaps)
	if n < 2 {
		return Weibull{}, ErrTooFewSamples
	}
	var sumLog xmath.Accumulator
	for _, x := range gaps {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return Weibull{}, fmt.Errorf("faultfit: gap %v not positive finite", x)
		}
		sumLog.Add(math.Log(x))
	}
	meanLog := sumLog.Value() / float64(n)
	g := func(k float64) float64 {
		var num, den xmath.Accumulator
		for _, x := range gaps {
			xk := math.Pow(x, k)
			num.Add(xk * math.Log(x))
			den.Add(xk)
		}
		return num.Value()/den.Value() - 1/k - meanLog
	}
	// g is increasing in k; bracket a sign change.
	lo, hi := 0.02, 1.0
	for g(hi) < 0 && hi < 512 {
		hi *= 2
	}
	if g(lo) > 0 || g(hi) < 0 {
		return Weibull{}, errors.New("faultfit: Weibull shape not bracketed (degenerate sample)")
	}
	k, err := xmath.Brent(g, lo, hi, 1e-10)
	if err != nil {
		return Weibull{}, err
	}
	var sumXk xmath.Accumulator
	for _, x := range gaps {
		sumXk.Add(math.Pow(x, k))
	}
	scale := math.Pow(sumXk.Value()/float64(n), 1/k)
	// logL = n(ln k - k ln λ) + (k-1)Σ ln x - Σ(x/λ)^k.
	logLik := float64(n)*(math.Log(k)-k*math.Log(scale)) +
		(k-1)*sumLog.Value() - sumXk.Value()/math.Pow(scale, k)
	return Weibull{Shape: k, Scale: scale, LogLik: logLik, N: n}, nil
}

// CDF evaluates the fitted law.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Scale, w.Shape))
}

// Rate returns the long-run arrival rate 1/(λ·Γ(1+1/k)).
func (w Weibull) Rate() float64 {
	return 1 / (w.Scale * math.Gamma(1+1/w.Shape))
}

// MTBF returns the mean gap.
func (w Weibull) MTBF() float64 { return 1 / w.Rate() }

// Choice reports the outcome of model selection.
type Choice struct {
	Exponential Exponential
	Weibull     Weibull
	// BestIsWeibull selects the model with the lower AIC.
	BestIsWeibull bool
	// KSp is the KS goodness-of-fit p-value of the selected model.
	KSp float64
	// Rate is the selected model's arrival rate: the λ to feed the
	// pattern planner.
	Rate float64
}

// Select fits both laws, picks the lower-AIC model (AIC = 2p - 2logL,
// with 1 and 2 parameters respectively) and attaches a KS p-value.
func Select(gaps []float64) (Choice, error) {
	exp, err := FitExponential(gaps)
	if err != nil {
		return Choice{}, err
	}
	wei, err := FitWeibull(gaps)
	if err != nil {
		return Choice{}, err
	}
	aicExp := 2*1 - 2*exp.LogLik
	aicWei := 2*2 - 2*wei.LogLik
	out := Choice{Exponential: exp, Weibull: wei, BestIsWeibull: aicWei < aicExp}
	var cdf func(float64) float64
	if out.BestIsWeibull {
		cdf = wei.CDF
		out.Rate = wei.Rate()
	} else {
		cdf = exp.CDF
		out.Rate = exp.Rate()
	}
	_, p, err := stats.KolmogorovSmirnov(gaps, cdf)
	if err != nil {
		return Choice{}, err
	}
	out.KSp = p
	return out, nil
}
