// Package faultfit estimates failure-model parameters from operations
// data, closing the loop from observed errors to the planner.
//
// Two estimation styles are provided:
//
//   - Batch fits of a failure log: maximum-likelihood fits of the
//     exponential law (the paper's model, FitExponential) and the
//     Weibull law (the standard alternative on real machines,
//     FitWeibull), AIC-based model selection and Kolmogorov-Smirnov
//     goodness-of-fit (Select). Fit a log, obtain λf and λs, feed them
//     to analytic.Optimal.
//
//   - Online estimation from censored interval observations
//     (OnlineRate): "k events over t seconds of exposure", the form of
//     telemetry a pattern-boundary observer produces. The estimate is
//     a Gamma-conjugate posterior mean anchored by a prior
//     pseudo-exposure — few or zero events can never yield a NaN or
//     zero-rate plan — with exponential forgetting and a Poisson-GLR
//     change-point detector for drifting platforms. This is the
//     estimator behind internal/adapt.
package faultfit
