package faultfit

import (
	"math"
	"testing"

	"respat/internal/faults"
	"respat/internal/xmath"
)

func synthGaps(t *testing.T, src faults.Source, n int) []float64 {
	t.Helper()
	gaps := make([]float64, n)
	now := 0.0
	for i := range gaps {
		next := src.Next(now)
		gaps[i] = next - now
		now = next
	}
	return gaps
}

func TestGapsConversion(t *testing.T) {
	gaps := Gaps([]float64{10, 3, 7, math.NaN(), 7, math.Inf(1)})
	// Sorted: 3, 7, 7, 10 -> gaps 4, 3 (zero gap dropped).
	if len(gaps) != 2 || gaps[0] != 4 || gaps[1] != 3 {
		t.Errorf("Gaps = %v", gaps)
	}
	if len(Gaps(nil)) != 0 || len(Gaps([]float64{5})) != 0 {
		t.Error("degenerate logs should give no gaps")
	}
}

func TestFitExponentialRecoversRate(t *testing.T) {
	lambda := 1.0 / 4000
	src, err := faults.NewExponential(lambda, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	gaps := synthGaps(t, src, 5000)
	fit, err := FitExponential(gaps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Lambda-lambda)/lambda > 0.05 {
		t.Errorf("lambda = %v, want ~%v", fit.Lambda, lambda)
	}
	if !xmath.Close(fit.MTBF(), 1/fit.Lambda, 1e-12) {
		t.Error("MTBF inconsistent")
	}
	if fit.N != 5000 {
		t.Errorf("N = %d", fit.N)
	}
}

func TestFitExponentialValidation(t *testing.T) {
	if _, err := FitExponential([]float64{1}); err != ErrTooFewSamples {
		t.Errorf("err = %v", err)
	}
	if _, err := FitExponential([]float64{1, -2}); err == nil {
		t.Error("negative gap should fail")
	}
	if _, err := FitExponential([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN gap should fail")
	}
}

func TestFitWeibullRecoversParameters(t *testing.T) {
	shape, scale := 0.7, 3000.0
	src, err := faults.NewWeibull(shape, scale, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	gaps := synthGaps(t, src, 8000)
	fit, err := FitWeibull(gaps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape-shape)/shape > 0.05 {
		t.Errorf("shape = %v, want ~%v", fit.Shape, shape)
	}
	if math.Abs(fit.Scale-scale)/scale > 0.05 {
		t.Errorf("scale = %v, want ~%v", fit.Scale, scale)
	}
	// Rate consistency with the generator.
	if math.Abs(fit.Rate()-src.Rate())/src.Rate() > 0.05 {
		t.Errorf("rate = %v", fit.Rate())
	}
}

func TestFitWeibullShapeOne(t *testing.T) {
	// Exponential data: the Weibull fit should find k ~ 1.
	src, err := faults.NewExponential(1e-3, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	gaps := synthGaps(t, src, 5000)
	fit, err := FitWeibull(gaps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape-1) > 0.05 {
		t.Errorf("shape = %v, want ~1", fit.Shape)
	}
}

func TestFitWeibullValidation(t *testing.T) {
	if _, err := FitWeibull([]float64{1}); err != ErrTooFewSamples {
		t.Errorf("err = %v", err)
	}
	if _, err := FitWeibull([]float64{1, 0}); err == nil {
		t.Error("zero gap should fail")
	}
}

func TestCDFs(t *testing.T) {
	e := Exponential{Lambda: 0.5}
	if e.CDF(-1) != 0 || e.CDF(0) != 0 {
		t.Error("CDF below support should be 0")
	}
	if !xmath.Close(e.CDF(2), 1-math.Exp(-1), 1e-12) {
		t.Errorf("exp CDF = %v", e.CDF(2))
	}
	w := Weibull{Shape: 2, Scale: 10}
	if w.CDF(0) != 0 {
		t.Error("Weibull CDF(0) should be 0")
	}
	if !xmath.Close(w.CDF(10), 1-math.Exp(-1), 1e-12) {
		t.Errorf("weibull CDF = %v", w.CDF(10))
	}
}

func TestSelectPrefersCorrectFamily(t *testing.T) {
	// Strongly non-exponential data (k = 0.5) must select Weibull...
	wsrc, err := faults.NewWeibull(0.5, 2000, 11, 12)
	if err != nil {
		t.Fatal(err)
	}
	choice, err := Select(synthGaps(t, wsrc, 4000))
	if err != nil {
		t.Fatal(err)
	}
	if !choice.BestIsWeibull {
		t.Error("Weibull data should select the Weibull model")
	}
	if choice.KSp < 0.005 {
		t.Errorf("selected model rejected by KS: p=%v", choice.KSp)
	}
	if choice.Rate <= 0 {
		t.Error("rate must be positive")
	}
	// ...while exponential data keeps the simpler model competitive:
	// AIC penalises the extra parameter, so exponential usually wins.
	esrc, err := faults.NewExponential(1e-3, 13, 14)
	if err != nil {
		t.Fatal(err)
	}
	choice, err = Select(synthGaps(t, esrc, 4000))
	if err != nil {
		t.Fatal(err)
	}
	if choice.BestIsWeibull {
		t.Log("AIC picked Weibull on exponential data (possible but rare)")
	}
	if choice.KSp < 0.005 {
		t.Errorf("selected model rejected by KS: p=%v", choice.KSp)
	}
	if math.Abs(choice.Rate-1e-3)/1e-3 > 0.06 {
		t.Errorf("selected rate %v, want ~1e-3", choice.Rate)
	}
}

func TestSelectValidation(t *testing.T) {
	if _, err := Select([]float64{1}); err == nil {
		t.Error("too few samples should fail")
	}
}
