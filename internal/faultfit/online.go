package faultfit

import (
	"fmt"
	"math"
)

// OnlineConfig parameterises an OnlineRate estimator. The zero value is
// completed by WithDefaults relative to the prior rate.
type OnlineConfig struct {
	// PriorRate is the rate believed before any observation arrives —
	// typically the rate the current plan was computed for. It anchors
	// the posterior so that short or event-free windows shrink towards
	// the prior instead of collapsing to zero or NaN.
	PriorRate float64
	// PriorExposure is the pseudo-exposure (seconds) the prior counts
	// for: the posterior behaves as if PriorRate had already been
	// observed over PriorExposure seconds. Default: the exposure over
	// which the prior rate would produce four events (4/PriorRate), or
	// one second when PriorRate is zero.
	PriorExposure float64
	// HalfLife is the exponential-forgetting half-life in exposure
	// seconds: evidence this old counts half. Zero disables forgetting
	// (all history weighs equally until a drift reset).
	HalfLife float64
	// Window is the number of recent observations kept for the drift
	// detector and the windowed estimate (default 16, minimum 2,
	// maximum MaxWindow — the ring is allocated up front).
	Window int
	// DriftGLR is the Poisson generalised-likelihood-ratio threshold
	// above which the recent window is declared drifted from the
	// long-run estimate, discarding pre-window history. Roughly: 2·GLR
	// is χ²(1)-distributed under no drift, so the default of 8
	// corresponds to ~4σ evidence. A negative value disables drift
	// detection (zero selects the default).
	DriftGLR float64
}

// WithDefaults returns the config with unset fields filled: the
// completed form NewOnlineRate runs with, exposed so callers that
// store the config (e.g. for consistency checks against later
// requests) see the effective values rather than the zero ones.
func (c OnlineConfig) WithDefaults() OnlineConfig {
	if c.PriorExposure == 0 {
		if c.PriorRate > 0 {
			c.PriorExposure = 4 / c.PriorRate
		} else {
			c.PriorExposure = 1
		}
	}
	if c.Window == 0 {
		c.Window = 16
	}
	if c.DriftGLR == 0 {
		c.DriftGLR = 8
	}
	return c
}

// validate rejects non-finite or out-of-range knobs.
func (c OnlineConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PriorRate", c.PriorRate}, {"PriorExposure", c.PriorExposure},
		{"HalfLife", c.HalfLife},
	} {
		if p.v < 0 || math.IsNaN(p.v) || math.IsInf(p.v, 0) {
			return fmt.Errorf("faultfit: online config %s = %v, need finite >= 0", p.name, p.v)
		}
	}
	if math.IsNaN(c.DriftGLR) || math.IsInf(c.DriftGLR, 0) {
		return fmt.Errorf("faultfit: online config DriftGLR = %v, need finite (negative disables)", c.DriftGLR)
	}
	if c.PriorExposure == 0 {
		return fmt.Errorf("faultfit: online config PriorExposure must be positive")
	}
	if c.Window < 2 || c.Window > MaxWindow {
		return fmt.Errorf("faultfit: online config Window = %d, need 2..%d", c.Window, MaxWindow)
	}
	return nil
}

// MaxWindow bounds OnlineConfig.Window. The ring is allocated eagerly,
// so an unbounded window would let one untrusted config (e.g. a
// respatd observe request) force an arbitrarily large allocation.
const MaxWindow = 1 << 16

// intervalObs is one censored interval observation.
type intervalObs struct {
	events, exposure float64
}

// OnlineRate estimates the arrival rate of a Poisson error process from
// a stream of censored interval observations: "k events occurred over t
// seconds of exposure". Interval data (rather than exact arrival times)
// is what a pattern-boundary observer naturally sees, and it handles
// censoring for free — an event-free interval is evidence too.
//
// The estimate is the mean of a Gamma-conjugate posterior,
//
//	rate = (PriorRate·PriorExposure + Σ events) / (PriorExposure + Σ exposure),
//
// with two freshness mechanisms layered on the sums: exponential
// forgetting with a configurable half-life (old evidence fades), and a
// change-point detector comparing the recent observation window against
// the long-run estimate with a Poisson generalised likelihood ratio —
// when the window is incompatible with the history, the history is
// discarded so the estimate re-converges at window speed rather than
// half-life speed.
//
// The prior pseudo-exposure guarantees the estimate is always finite
// and, for a positive prior, always positive: few or zero events can
// never produce a NaN or zero-rate plan. An OnlineRate is not safe for
// concurrent use.
type OnlineRate struct {
	cfg OnlineConfig

	priorExp float64 // live prior pseudo-exposure (shrunk at drift resets)
	events   float64 // decayed observed event total
	exposure float64 // decayed observed exposure total

	ring   []intervalObs // last Window observations
	next   int
	filled int
	winE   float64 // Σ events over the ring
	winT   float64 // Σ exposure over the ring

	observations int64
	drifts       int64
}

// NewOnlineRate builds an estimator; zero config fields get defaults
// derived from the prior rate.
func NewOnlineRate(cfg OnlineConfig) (*OnlineRate, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &OnlineRate{cfg: cfg, priorExp: cfg.PriorExposure, ring: make([]intervalObs, cfg.Window)}, nil
}

// ValidateInterval checks one censored interval observation without
// ingesting it: events must be >= 0, exposure finite and >= 0, and
// events over zero exposure are rejected (a degenerate infinite-rate
// observation). Callers that must stay atomic across several estimators
// validate every interval up front before observing any of them.
func ValidateInterval(events int64, exposure float64) error {
	if events < 0 {
		return fmt.Errorf("faultfit: observed %d events, need >= 0", events)
	}
	if exposure < 0 || math.IsNaN(exposure) || math.IsInf(exposure, 0) {
		return fmt.Errorf("faultfit: observed exposure %v, need finite >= 0", exposure)
	}
	if events > 0 && exposure == 0 {
		return fmt.Errorf("faultfit: observed %d events over zero exposure", events)
	}
	return nil
}

// Observe ingests one interval observation: events arrivals over
// exposure seconds. A zero-event interval is valid censoring evidence,
// a fully-empty interval (zero events, zero exposure) is a no-op, and
// events over zero exposure are rejected.
func (o *OnlineRate) Observe(events int64, exposure float64) error {
	if err := ValidateInterval(events, exposure); err != nil {
		return err
	}
	if events == 0 && exposure == 0 {
		return nil
	}
	// Forgetting: decay the totals by the exposure that just elapsed.
	if o.cfg.HalfLife > 0 && exposure > 0 {
		g := math.Exp2(-exposure / o.cfg.HalfLife)
		o.events *= g
		o.exposure *= g
	}
	o.events += float64(events)
	o.exposure += exposure

	// Slide the drift window.
	old := o.ring[o.next]
	o.ring[o.next] = intervalObs{events: float64(events), exposure: exposure}
	o.next = (o.next + 1) % len(o.ring)
	if o.filled < len(o.ring) {
		o.filled++
	} else {
		o.winE -= old.events
		o.winT -= old.exposure
	}
	o.winE += float64(events)
	o.winT += exposure
	o.observations++

	if o.cfg.DriftGLR > 0 && o.filled == len(o.ring) && o.driftGLR() > o.cfg.DriftGLR {
		// Change point: the window contradicts the history. Restart the
		// posterior from the window alone so the estimate tracks the new
		// regime at window speed. The prior belief predates the change
		// too, so its pseudo-exposure is cut to a small fraction of the
		// window's — it keeps anchoring against zero-event degeneracy
		// without dragging the post-change estimate (a cap at the full
		// window weight would pin the posterior halfway to the prior and
		// re-trigger the detector indefinitely).
		o.events = o.winE
		o.exposure = o.winT
		if limit := o.winT / 8; limit > 0 && o.priorExp > limit {
			o.priorExp = limit
		}
		o.drifts++
	}
	return nil
}

// driftGLR returns the Poisson generalised likelihood ratio of the
// window counts under the windowed MLE versus the long-run estimate:
//
//	GLR = k·ln(λw/λh) − (λw − λh)·t,   λw = k/t.
//
// For k = 0 the first term vanishes and the statistic reduces to λh·t,
// the evidence carried by an unexpectedly silent window.
func (o *OnlineRate) driftGLR() float64 {
	if o.winT <= 0 {
		return 0
	}
	lh := o.Rate()
	if lh <= 0 {
		return 0
	}
	lw := o.winE / o.winT
	if lw == 0 {
		return lh * o.winT
	}
	return o.winE*math.Log(lw/lh) - (lw-lh)*o.winT
}

// Rate returns the current posterior-mean rate estimate. It is finite
// for any observation history, and positive whenever the prior rate or
// any observed event count is.
func (o *OnlineRate) Rate() float64 {
	if o.events == 0 && o.exposure == 0 {
		// No evidence yet: exactly the prior (the blended form below
		// would reproduce it only up to rounding).
		return o.cfg.PriorRate
	}
	den := o.priorExp + o.exposure
	if den <= 0 {
		return o.cfg.PriorRate
	}
	return (o.cfg.PriorRate*o.priorExp + o.events) / den
}

// WindowRate returns the rate fitted to the recent window alone (the
// drift detector's alternative hypothesis), or the posterior rate while
// the window has no exposure.
func (o *OnlineRate) WindowRate() float64 {
	if o.winT <= 0 {
		return o.Rate()
	}
	return o.winE / o.winT
}

// Observations returns the number of non-empty intervals ingested.
func (o *OnlineRate) Observations() int64 { return o.observations }

// Drifts returns the number of change-point resets triggered.
func (o *OnlineRate) Drifts() int64 { return o.drifts }
