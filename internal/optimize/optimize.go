// Package optimize provides planners beyond the closed-form Table 1
// solution of package analytic:
//
//   - an exact-model planner that minimises the renewal-equation
//     expected overhead (no first-order truncation) over W, n and m,
//     used to quantify how close the paper's first-order optimum is to
//     the true optimum (an ablation the paper argues analytically);
//   - a brute-force verification-placement search on a discretised
//     segment, validating the Theorem 3 chunk-size structure (first and
//     last chunks longer, interior chunks equal) from first principles.
package optimize

import (
	"context"
	"fmt"
	"math"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/linalg"
	"respat/internal/xmath"
)

// ExactPlan is the outcome of exact-model optimisation.
type ExactPlan struct {
	Kind core.Kind
	N, M int
	// W is the work length minimising the exact expected overhead.
	W float64
	// Overhead is the exact expected overhead E(P)/W - 1 at the optimum.
	Overhead float64
	Pattern  core.Pattern
}

// String renders the plan compactly.
func (p ExactPlan) String() string {
	return fmt.Sprintf("%s(exact): W*=%.6gs n*=%d m*=%d H*=%.4f", p.Kind, p.W, p.N, p.M, p.Overhead)
}

// OptimizeW minimises the exact expected overhead of family k at fixed
// (n, m) over the pattern length W by golden-section search. The
// search bracket is centred on the first-order W* and spans two orders
// of magnitude each way.
func OptimizeW(k core.Kind, c core.Costs, r core.Rates, n, m int) (w, overhead float64, err error) {
	ev, err := analytic.NewEvaluator(c, r)
	if err != nil {
		return 0, 0, err
	}
	return optimizeW(ev, k, n, m)
}

// optimizeW is OptimizeW on a shared evaluator: the inner golden-section
// probes only rescale W against the evaluator's cached (n, m) layout.
func optimizeW(ev *analytic.Evaluator, k core.Kind, n, m int) (w, overhead float64, err error) {
	c, r := ev.Costs(), ev.Rates()
	if r.Total() == 0 {
		return 0, 0, analytic.ErrDegenerate
	}
	oef := analytic.EF(k, c, n, m)
	orw := analytic.RW(k, c, r, n, m)
	guess := xmath.SqrtRatio(oef, orw)
	if math.IsInf(guess, 1) || guess <= 0 {
		return 0, 0, fmt.Errorf("optimize: no finite period guess for %v", k)
	}
	var evalErr error
	h := func(w float64) float64 {
		h, err := ev.EvalLayoutOverhead(k, n, m, w)
		if err != nil {
			evalErr = err
			return math.Inf(1)
		}
		return h
	}
	w, overhead = xmath.MinimizeGolden(h, guess/100, guess*100, 1e-10)
	if evalErr != nil {
		return 0, 0, evalErr
	}
	return w, overhead, nil
}

// Exact finds the exact-model optimal plan of family k by searching the
// integer (n, m) space (convex ternary search seeded by the first-order
// optimum) with the inner W optimised by OptimizeW.
func Exact(k core.Kind, c core.Costs, r core.Rates) (ExactPlan, error) {
	first, err := analytic.Optimal(k, c, r)
	if err != nil {
		return ExactPlan{}, err
	}
	return ExactFrom(first, c, r)
}

// ExactFrom is Exact seeded with an already-computed first-order plan,
// so callers that have one (e.g. Compare) do not recompute
// analytic.Optimal for the same inputs.
func ExactFrom(first analytic.Plan, c core.Costs, r core.Rates) (ExactPlan, error) {
	ev, err := analytic.NewEvaluator(c, r)
	if err != nil {
		return ExactPlan{}, err
	}
	return exactFrom(context.Background(), ev, first)
}

// ExactWithEvaluator is ExactFrom on a caller-supplied evaluator, for
// callers that keep a long-lived evaluator per configuration (e.g. the
// planning service's per-shard evaluators). ev must be bound to the
// same (costs, rates) the first-order plan was computed for; the
// caller is responsible for serialising access to ev (an Evaluator is
// not safe for concurrent use).
func ExactWithEvaluator(ev *analytic.Evaluator, first analytic.Plan) (ExactPlan, error) {
	return exactFrom(context.Background(), ev, first)
}

// ExactWithEvaluatorCtx is ExactWithEvaluator under a cancellation
// context: when ctx is cancelled or expires the integer (n, m) search
// aborts — within one golden-section leaf — and returns ctx's error,
// never a partial plan (there is a final ctx check before the plan is
// assembled). The planning service threads each request's deadline
// through here so an abandoned cold plan stops searching.
func ExactWithEvaluatorCtx(ctx context.Context, ev *analytic.Evaluator, first analytic.Plan) (ExactPlan, error) {
	return exactFrom(ctx, ev, first)
}

// exactFrom runs the integer (n, m) search on a shared evaluator.
func exactFrom(ctx context.Context, ev *analytic.Evaluator, first analytic.Plan) (ExactPlan, error) {
	k, c := first.Kind, ev.Costs()
	maxN, maxM := 1, 1
	if k.MultiSegment() {
		maxN = min(3*first.N+4, analytic.MaxSplit)
	}
	if k.MultiChunk() {
		maxM = min(3*first.M+4, analytic.MaxSplit)
	}

	type eval struct {
		w, h float64
		err  error
	}
	memo := make(map[[2]int]eval)
	at := func(n, m int) eval {
		key := [2]int{n, m}
		if e, ok := memo[key]; ok {
			return e
		}
		if err := ctx.Err(); err != nil {
			return eval{err: err}
		}
		w, h, err := optimizeW(ev, k, n, m)
		e := eval{w: w, h: h, err: err}
		memo[key] = e
		return e
	}
	bestM := func(n int) (int, eval) {
		m, _ := xmath.MinimizeConvexInt(func(m int) float64 {
			e := at(n, m)
			if e.err != nil {
				return math.Inf(1)
			}
			return e.h
		}, 1, maxM)
		return m, at(n, m)
	}
	n, _ := xmath.MinimizeConvexInt(func(n int) float64 {
		_, e := bestM(n)
		if e.err != nil {
			return math.Inf(1)
		}
		return e.h
	}, 1, maxN)
	m, best := bestM(n)
	if best.err != nil {
		return ExactPlan{}, best.err
	}
	// A cancelled search parked leaves at +Inf, so its argmin is not
	// the true one; return the cancellation, never a partial plan.
	if err := ctx.Err(); err != nil {
		return ExactPlan{}, err
	}
	pat, err := core.Layout(k, best.w, n, m, c.Recall)
	if err != nil {
		return ExactPlan{}, err
	}
	return ExactPlan{Kind: k, N: n, M: m, W: best.w, Overhead: best.h, Pattern: pat}, nil
}

// Comparison quantifies the gap between the first-order plan and the
// exact-model plan of one family.
type Comparison struct {
	Kind       core.Kind
	FirstOrder analytic.Plan
	Exact      ExactPlan
	// FirstOrderExactOverhead is the exact overhead of the first-order
	// plan (its true cost when deployed).
	FirstOrderExactOverhead float64
	// Regret is the relative excess overhead incurred by deploying the
	// first-order plan instead of the exact optimum.
	Regret float64
}

// Compare runs both planners for family k and evaluates the
// first-order plan under the exact model. The first-order plan is
// computed once and threaded into the exact search; all exact-model
// evaluations share one Evaluator.
func Compare(k core.Kind, c core.Costs, r core.Rates) (Comparison, error) {
	first, err := analytic.Optimal(k, c, r)
	if err != nil {
		return Comparison{}, err
	}
	ev, err := analytic.NewEvaluator(c, r)
	if err != nil {
		return Comparison{}, err
	}
	exact, err := exactFrom(context.Background(), ev, first)
	if err != nil {
		return Comparison{}, err
	}
	hFirst, err := ev.EvalLayoutOverhead(k, first.N, first.M, first.W)
	if err != nil {
		return Comparison{}, err
	}
	regret := 0.0
	if exact.Overhead > 0 {
		regret = (hFirst - exact.Overhead) / exact.Overhead
	}
	return Comparison{
		Kind:                    k,
		FirstOrder:              first,
		Exact:                   exact,
		FirstOrderExactOverhead: hFirst,
		Regret:                  regret,
	}, nil
}

// Placement is the outcome of the brute-force verification-placement
// search on a discretised segment.
type Placement struct {
	// Boundaries marks, for each of the Grid-1 interior grid
	// boundaries, whether a partial verification is placed there.
	Boundaries []bool
	// M is the resulting number of chunks.
	M int
	// Beta holds the resulting chunk fractions.
	Beta []float64
	// Score is the minimised second-order badness (see BruteForcePlacement).
	Score float64
}

// BruteForcePlacement discretises a segment of work w into grid equal
// cells and exhaustively searches all 2^(grid-1) subsets of interior
// boundaries for partial-verification placement, minimising the
// Proposition 3 second-order badness
//
//	(m-1)·V + λs·(βᵀA^(m)β)·w²,
//
// the W²-order trade-off between verification cost and re-executed
// work. It validates Theorem 3 structurally: the optimal subset uses
// (approximately) the closed-form chunk count with longer first and
// last chunks. grid is capped at 16 to bound the enumeration.
func BruteForcePlacement(w float64, grid int, c core.Costs, r core.Rates) (Placement, error) {
	if grid < 1 || grid > 16 {
		return Placement{}, fmt.Errorf("optimize: grid %d out of [1,16]", grid)
	}
	if err := c.Validate(); err != nil {
		return Placement{}, err
	}
	if w <= 0 {
		return Placement{}, fmt.Errorf("optimize: segment work %v", w)
	}
	nb := grid - 1
	best := Placement{Score: math.Inf(1)}
	for mask := 0; mask < 1<<nb; mask++ {
		beta := betaFromMask(mask, grid)
		m := len(beta)
		a, err := linalg.VerificationMatrix(m, c.Recall)
		if err != nil {
			return Placement{}, err
		}
		f, err := linalg.QuadForm(a, beta)
		if err != nil {
			return Placement{}, err
		}
		score := float64(m-1)*c.PartVer + r.Silent*f*w*w
		if score < best.Score {
			bounds := make([]bool, nb)
			for b := 0; b < nb; b++ {
				bounds[b] = mask&(1<<b) != 0
			}
			best = Placement{Boundaries: bounds, M: m, Beta: beta, Score: score}
		}
	}
	return best, nil
}

// betaFromMask converts a boundary subset into chunk fractions over a
// grid of equal cells.
func betaFromMask(mask, grid int) []float64 {
	var beta []float64
	run := 1
	for b := 0; b < grid-1; b++ {
		if mask&(1<<b) != 0 {
			beta = append(beta, float64(run)/float64(grid))
			run = 1
		} else {
			run++
		}
	}
	beta = append(beta, float64(run)/float64(grid))
	return beta
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
