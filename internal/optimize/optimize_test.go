package optimize

import (
	"math"
	"testing"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/platform"
	"respat/internal/xmath"
)

func heraParams(t *testing.T) (core.Costs, core.Rates) {
	t.Helper()
	p, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	return p.Costs, p.Rates
}

func TestOptimizeWNearFirstOrder(t *testing.T) {
	// At Hera scale (large MTBF) the exact-optimal W is within a few
	// percent of the first-order W* for every family.
	c, r := heraParams(t)
	for _, k := range core.Kinds() {
		plan, err := analytic.Optimal(k, c, r)
		if err != nil {
			t.Fatal(err)
		}
		w, h, err := OptimizeW(k, c, r, plan.N, plan.M)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w-plan.W)/plan.W > 0.10 {
			t.Errorf("%v: exact W %v vs first-order %v", k, w, plan.W)
		}
		if math.Abs(h-plan.Overhead) > 0.01 {
			t.Errorf("%v: exact H %v vs first-order %v", k, h, plan.Overhead)
		}
	}
}

func TestOptimizeWDegenerate(t *testing.T) {
	c, _ := heraParams(t)
	if _, _, err := OptimizeW(core.PD, c, core.Rates{}, 1, 1); err != analytic.ErrDegenerate {
		t.Errorf("err = %v, want ErrDegenerate", err)
	}
}

func TestExactPlanBeatsFirstOrderPlan(t *testing.T) {
	// The exact planner can only do better (or equal) under the exact
	// model than the first-order plan evaluated exactly.
	c, r := heraParams(t)
	for _, k := range []core.Kind{core.PD, core.PDV, core.PDM, core.PDMV} {
		cmp, err := Compare(k, c, r)
		if err != nil {
			t.Fatal(err)
		}
		if cmp.Exact.Overhead > cmp.FirstOrderExactOverhead+1e-9 {
			t.Errorf("%v: exact plan %v worse than first-order plan %v",
				k, cmp.Exact.Overhead, cmp.FirstOrderExactOverhead)
		}
		if cmp.Regret < -1e-9 {
			t.Errorf("%v: negative regret %v", k, cmp.Regret)
		}
		// Headline ablation: the paper's first-order plan is within 1%
		// of the true optimum at Table 2 scale.
		if cmp.Regret > 0.01 {
			t.Errorf("%v: first-order regret %v exceeds 1%%", k, cmp.Regret)
		}
		if err := cmp.Exact.Pattern.Validate(); err != nil {
			t.Errorf("%v: invalid exact pattern: %v", k, err)
		}
	}
}

func TestExactPlanIntegerNeighbourhood(t *testing.T) {
	// The exact plan's (n, m) should be close to the first-order one
	// at Hera scale.
	c, r := heraParams(t)
	cmp, err := Compare(core.PDMV, c, r)
	if err != nil {
		t.Fatal(err)
	}
	if d := cmp.Exact.N - cmp.FirstOrder.N; d < -2 || d > 2 {
		t.Errorf("exact n %d far from first-order %d", cmp.Exact.N, cmp.FirstOrder.N)
	}
	if d := cmp.Exact.M - cmp.FirstOrder.M; d < -4 || d > 4 {
		t.Errorf("exact m %d far from first-order %d", cmp.Exact.M, cmp.FirstOrder.M)
	}
}

func TestExactPlanString(t *testing.T) {
	c, r := heraParams(t)
	plan, err := Exact(core.PD, c, r)
	if err != nil {
		t.Fatal(err)
	}
	if plan.String() == "" {
		t.Error("empty String")
	}
}

func TestBruteForcePlacementValidation(t *testing.T) {
	c, r := heraParams(t)
	if _, err := BruteForcePlacement(1000, 0, c, r); err == nil {
		t.Error("grid 0 should fail")
	}
	if _, err := BruteForcePlacement(1000, 17, c, r); err == nil {
		t.Error("grid 17 should fail")
	}
	if _, err := BruteForcePlacement(-1, 8, c, r); err == nil {
		t.Error("negative work should fail")
	}
	bad := c
	bad.Recall = 0
	if _, err := BruteForcePlacement(1000, 8, bad, r); err == nil {
		t.Error("invalid costs should fail")
	}
}

func TestBruteForcePlacementTrivialGrid(t *testing.T) {
	c, r := heraParams(t)
	p, err := BruteForcePlacement(1000, 1, c, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.M != 1 || len(p.Beta) != 1 || p.Beta[0] != 1 {
		t.Errorf("grid 1: %+v", p)
	}
}

func TestBruteForcePlacementPrefersNoVerifsWhenExpensive(t *testing.T) {
	// If the partial verification costs more than any conceivable
	// saving, the optimal placement uses none.
	c, r := heraParams(t)
	c.PartVer = 1e9
	p, err := BruteForcePlacement(1000, 8, c, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.M != 1 {
		t.Errorf("expected no verifications, got m=%d", p.M)
	}
}

func TestBruteForcePlacementMatchesTheorem3Shape(t *testing.T) {
	// For a long segment at a high silent rate, the optimal placement
	// should use several verifications with first and last chunks at
	// least as long as interior ones (Theorem 3 structure), up to grid
	// quantisation.
	c, r := heraParams(t)
	r.Silent = 1e-4 // push towards many verifications
	w := 4000.0
	p, err := BruteForcePlacement(w, 16, c, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.M < 3 {
		t.Fatalf("expected several chunks, got m=%d (beta=%v)", p.M, p.Beta)
	}
	first, last := p.Beta[0], p.Beta[p.M-1]
	for j := 1; j < p.M-1; j++ {
		if p.Beta[j] > first+1.0/16+1e-12 || p.Beta[j] > last+1.0/16+1e-12 {
			t.Errorf("interior chunk %d (%v) exceeds boundary chunks (%v, %v)",
				j, p.Beta[j], first, last)
		}
	}
	// The grid-quantised score cannot beat the continuous optimum.
	mStar := p.M
	_, fstar, err := optimalBetaScore(mStar, c.Recall)
	if err != nil {
		t.Fatal(err)
	}
	continuous := float64(mStar-1)*c.PartVer + r.Silent*fstar*w*w
	if p.Score < continuous-1e-9 {
		t.Errorf("grid placement %v beats continuous bound %v", p.Score, continuous)
	}
	// ... but should be within 5% of it.
	if p.Score > continuous*1.05 {
		t.Errorf("grid placement %v far above continuous bound %v", p.Score, continuous)
	}
}

func optimalBetaScore(m int, recall float64) ([]float64, float64, error) {
	beta, fstar, err := optimalBeta(m, recall)
	return beta, fstar, err
}

// optimalBeta mirrors linalg.OptimalBeta to avoid an import cycle in
// this test's helper; kept in sync by TestOptimalBetaHelper.
func optimalBeta(m int, r float64) ([]float64, float64, error) {
	if m == 1 {
		return []float64{1}, 1, nil
	}
	den := float64(m-2)*r + 2
	beta := make([]float64, m)
	for j := range beta {
		beta[j] = r / den
	}
	beta[0], beta[m-1] = 1/den, 1/den
	return beta, (1 + (2-r)/den) / 2, nil
}

func TestOptimalBetaHelper(t *testing.T) {
	beta, f, err := optimalBeta(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.Close(beta[0], 1/2.8, 1e-12) || !xmath.Close(f, (1+1.2/2.8)/2, 1e-12) {
		t.Errorf("helper drifted: %v %v", beta, f)
	}
}

func TestBetaFromMask(t *testing.T) {
	// grid=4, boundaries after cells 1 and 3 (mask bits 0 and 2).
	beta := betaFromMask(0b101, 4)
	want := []float64{0.25, 0.5, 0.25}
	if len(beta) != len(want) {
		t.Fatalf("beta = %v", beta)
	}
	for i := range want {
		if !xmath.Close(beta[i], want[i], 1e-12) {
			t.Errorf("beta[%d] = %v, want %v", i, beta[i], want[i])
		}
	}
	// Empty mask: one chunk.
	beta = betaFromMask(0, 4)
	if len(beta) != 1 || beta[0] != 1 {
		t.Errorf("beta = %v", beta)
	}
	// Full mask: grid chunks.
	beta = betaFromMask(0b111, 4)
	if len(beta) != 4 {
		t.Errorf("beta = %v", beta)
	}
}
