// Package cluster implements the consistent-hash ring that partitions
// the respatd key space across N replicas (DESIGN.md §2.9). Each
// member owns the arcs preceding its virtual nodes; a key routes to
// the member owning the first virtual node at or after the key's hash
// position, wrapping at the top of the 64-bit circle.
//
// The ring is deterministic: virtual-node positions are a pure
// function of (seed, member name, virtual-node index), and the ring is
// always rebuilt from the sorted member set, so two replicas that
// agree on the membership agree on every key's owner regardless of the
// order members joined. Membership change moves only the arcs adjacent
// to the added or removed member's virtual nodes — on a single
// join/leave the expected fraction of keys that change owner is 1/N,
// and the property tests bound it below 2/N.
//
// A Ring is immutable after New: With and Without return rebuilt
// rings, which is what lets the service swap membership atomically
// (one pointer store) when a health check marks a peer down. Route is
// allocation-free, so the per-request owner lookup costs nothing
// measurable next to the cache probe it precedes (BenchmarkRingRoute,
// gated 0-alloc in scripts/bench.sh).
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member used when the
// caller passes vnodes <= 0. The per-member key share concentrates
// like 1/sqrt(vnodes): 512 virtual nodes keep the share of 16 members
// within ±15% of uniform with margin (worst observed ±8.5% on a
// 100k-key seeded population; asserted by the property tests), while
// the routing table stays small enough that Route's binary search is
// a handful of cache lines.
const DefaultVNodes = 512

// Ring is an immutable consistent-hash ring over a set of named
// members. Safe for concurrent use (it is never mutated after New).
type Ring struct {
	seed    uint64
	vnodes  int
	members []string // sorted, unique
	hashes  []uint64 // virtual-node positions, sorted
	owners  []int32  // hashes[i] belongs to members[owners[i]]
}

// New builds a ring of the given members with vnodes virtual nodes
// each (DefaultVNodes when vnodes <= 0). Placement is a pure function
// of (seed, member, index): equal inputs build identical rings, on any
// replica, in any membership order. Member names must be non-empty and
// unique; an empty member set is an error.
func New(seed uint64, vnodes int, members []string) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
	}
	r := &Ring{
		seed:    seed,
		vnodes:  vnodes,
		members: sorted,
		hashes:  make([]uint64, 0, vnodes*len(sorted)),
		owners:  make([]int32, 0, vnodes*len(sorted)),
	}
	type vnode struct {
		hash  uint64
		owner int32
	}
	vns := make([]vnode, 0, vnodes*len(sorted))
	for mi, m := range sorted {
		base := hashString(seed, m)
		for v := 0; v < vnodes; v++ {
			vns = append(vns, vnode{hash: splitmix64(base + uint64(v)), owner: int32(mi)})
		}
	}
	// Sort by (hash, owner) so a hash collision between two members'
	// virtual nodes still resolves identically on every replica.
	sort.Slice(vns, func(i, j int) bool {
		if vns[i].hash != vns[j].hash {
			return vns[i].hash < vns[j].hash
		}
		return vns[i].owner < vns[j].owner
	})
	for _, vn := range vns {
		r.hashes = append(r.hashes, vn.hash)
		r.owners = append(r.owners, vn.owner)
	}
	return r, nil
}

// Route returns the member owning key: the owner of the first virtual
// node at or after the key's hash position, wrapping past the top of
// the circle. It allocates nothing; the returned string is shared with
// the ring's member table. Routing the canonical service cache key
// (internal/service.Key) is the intended use — the key bytes already
// canonicalise the configuration, so equal configurations route to the
// same replica by construction.
func (r *Ring) Route(key []byte) string {
	h := hashBytes(r.seed, key)
	// Binary search for the first virtual node >= h (inlined, so the
	// hot path takes no closure allocation).
	lo, hi := 0, len(r.hashes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.hashes[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.hashes) {
		lo = 0 // wrap
	}
	return r.members[r.owners[lo]]
}

// Members returns the sorted member set (a copy).
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// Contains reports whether m is a member.
func (r *Ring) Contains(m string) bool {
	i := sort.SearchStrings(r.members, m)
	return i < len(r.members) && r.members[i] == m
}

// With returns a ring with m added (the receiver if already present).
// The rebuild is deterministic: the result equals a fresh New over the
// union, so every replica that applies the same join converges on the
// same ring.
func (r *Ring) With(m string) (*Ring, error) {
	if r.Contains(m) {
		return r, nil
	}
	return New(r.seed, r.vnodes, append(r.Members(), m))
}

// Without returns a ring with m removed (the receiver if absent).
// Removing the last member is an error — an empty ring cannot route.
func (r *Ring) Without(m string) (*Ring, error) {
	if !r.Contains(m) {
		return r, nil
	}
	members := make([]string, 0, len(r.members)-1)
	for _, x := range r.members {
		if x != m {
			members = append(members, x)
		}
	}
	return New(r.seed, r.vnodes, members)
}

// hashString seeds a member's virtual-node sequence: FNV-1a over the
// name, folded with the ring seed.
func hashString(seed uint64, s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ splitmix64(seed)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// hashBytes positions a key on the circle: FNV-1a over the key bytes,
// folded with the ring seed and finalised through splitmix64 so nearby
// canonical keys (which differ in few bytes) spread uniformly.
func hashBytes(seed uint64, b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ splitmix64(seed)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return splitmix64(h)
}

// splitmix64 is the SplitMix64 finaliser, the same mixer the fault
// streams use (internal/faults); it turns sequential inputs into
// uniform positions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
