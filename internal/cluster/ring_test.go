package cluster

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"testing"
)

// testKeys builds n deterministic pseudo-random keys shaped like the
// canonical service cache key (a fixed-width binary blob).
func testKeys(seed uint64, n int) [][]byte {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 139)
		for off := 0; off+8 <= len(k); off += 8 {
			binary.BigEndian.PutUint64(k[off:], rng.Uint64())
		}
		keys[i] = k
	}
	return keys
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("replica-%02d", i)
	}
	return out
}

func TestRingDeterministicAcrossJoinOrder(t *testing.T) {
	ms := members(5)
	a, err := New(42, 64, ms)
	if err != nil {
		t.Fatal(err)
	}
	// Build the same membership in a different order, via joins.
	b, err := New(42, 64, []string{ms[3]})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{ms[0], ms[4], ms[2], ms[1]} {
		if b, err = b.With(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range testKeys(1, 2000) {
		if got, want := b.Route(k), a.Route(k); got != want {
			t.Fatalf("join-order dependence: key routes to %s vs %s", got, want)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := New(1, 16, nil); err == nil {
		t.Fatal("empty member set accepted")
	}
	if _, err := New(1, 16, []string{"a", "a"}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := New(1, 16, []string{""}); err == nil {
		t.Fatal("empty member name accepted")
	}
}

// TestRingDistribution asserts near-uniform key spread: every one of
// 16 replicas owns within ±15% of the uniform share of a large seeded
// key population.
func TestRingDistribution(t *testing.T) {
	const (
		replicas = 16
		keys     = 100000
	)
	r, err := New(7, DefaultVNodes, members(replicas))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int, replicas)
	for _, k := range testKeys(99, keys) {
		counts[r.Route(k)]++
	}
	if len(counts) != replicas {
		t.Fatalf("only %d of %d replicas own keys", len(counts), replicas)
	}
	uniform := float64(keys) / replicas
	for m, c := range counts {
		dev := (float64(c) - uniform) / uniform
		if dev < -0.15 || dev > 0.15 {
			t.Errorf("%s owns %d keys, %.1f%% from uniform share %.0f (tolerance ±15%%)",
				m, c, 100*dev, uniform)
		}
	}
}

// TestRingMinimalMovement asserts consistent hashing's defining
// property: a single join or leave moves fewer than 2/N of the keys.
func TestRingMinimalMovement(t *testing.T) {
	const (
		replicas = 16
		keys     = 50000
	)
	base, err := New(3, DefaultVNodes, members(replicas))
	if err != nil {
		t.Fatal(err)
	}
	ks := testKeys(11, keys)
	before := make([]string, len(ks))
	for i, k := range ks {
		before[i] = base.Route(k)
	}

	joined, err := base.With("replica-new")
	if err != nil {
		t.Fatal(err)
	}
	var movedJoin int
	for i, k := range ks {
		if joined.Route(k) != before[i] {
			movedJoin++
		}
	}
	if limit := 2 * keys / replicas; movedJoin >= limit {
		t.Errorf("join moved %d/%d keys, want < %d (2/N)", movedJoin, keys, limit)
	}

	left, err := base.Without("replica-07")
	if err != nil {
		t.Fatal(err)
	}
	var movedLeave, movedForeign int
	for i, k := range ks {
		if got := left.Route(k); got != before[i] {
			movedLeave++
			if before[i] != "replica-07" {
				movedForeign++
			}
		}
	}
	if limit := 2 * keys / replicas; movedLeave >= limit {
		t.Errorf("leave moved %d/%d keys, want < %d (2/N)", movedLeave, keys, limit)
	}
	// Leaving may only reassign the leaver's own keys.
	if movedForeign != 0 {
		t.Errorf("leave moved %d keys that replica-07 did not own", movedForeign)
	}
}

func TestRingWithWithoutRoundTrip(t *testing.T) {
	r, err := New(5, 32, members(4))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := r.With("extra")
	if err != nil {
		t.Fatal(err)
	}
	r3, err := r2.Without("extra")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(2, 1000) {
		if r3.Route(k) != r.Route(k) {
			t.Fatal("with+without is not the identity")
		}
	}
	if same, _ := r.With(r.Members()[0]); same != r {
		t.Fatal("adding an existing member should return the receiver")
	}
	if same, _ := r.Without("absent"); same != r {
		t.Fatal("removing an absent member should return the receiver")
	}
	solo, err := New(1, 16, []string{"only"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solo.Without("only"); err == nil {
		t.Fatal("removing the last member should fail")
	}
}

// TestRingRouteZeroAlloc pins the routing hot path at zero
// allocations; scripts/bench.sh gates BenchmarkRingRoute the same way.
func TestRingRouteZeroAlloc(t *testing.T) {
	r, err := New(1, DefaultVNodes, members(16))
	if err != nil {
		t.Fatal(err)
	}
	ks := testKeys(4, 64)
	var sink string
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		sink = r.Route(ks[i%len(ks)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Route allocates %.1f times per call, want 0", allocs)
	}
	_ = sink
}
