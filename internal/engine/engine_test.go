package engine

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"respat/internal/core"
	"respat/internal/faults"
	"respat/internal/sim"
	"respat/internal/xmath"
)

// counterApp is a deterministic test application: its state is the
// total work performed plus any injected garbage.
type counterApp struct {
	value   float64
	garbage float64
}

func (a *counterApp) Advance(w float64) error { a.value += w; return nil }

func (a *counterApp) Snapshot() ([]byte, error) {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(a.value))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(a.garbage))
	return buf, nil
}

func (a *counterApp) Restore(b []byte) error {
	if len(b) != 16 {
		return errors.New("bad snapshot")
	}
	a.value = math.Float64frombits(binary.LittleEndian.Uint64(b))
	a.garbage = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	return nil
}

func corruptCounter(app Application) error {
	c := app.(*counterApp)
	c.garbage += 1e9
	return nil
}

func testCosts() core.Costs {
	return core.Costs{
		DiskCkpt: 20, MemCkpt: 10, DiskRec: 7, MemRec: 3,
		GuarVer: 5, PartVer: 1, Recall: 0.8,
	}
}

func layout(t *testing.T, k core.Kind, w float64, n, m int, r float64) core.Pattern {
	t.Helper()
	p, err := core.Layout(k, w, n, m, r)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunValidation(t *testing.T) {
	c := testCosts()
	p := layout(t, core.PD, 100, 1, 1, 1)
	if _, err := Run(Config{Pattern: p, Costs: c, Patterns: 1}); err == nil {
		t.Error("nil App should fail")
	}
	app := &counterApp{}
	if _, err := Run(Config{App: app, Costs: c, Patterns: 1}); err == nil {
		t.Error("invalid pattern should fail")
	}
	if _, err := Run(Config{App: app, Pattern: p, Costs: c, Patterns: 0}); err == nil {
		t.Error("Patterns=0 should fail")
	}
	bad := c
	bad.Recall = 2
	if _, err := Run(Config{App: app, Pattern: p, Costs: bad, Patterns: 1}); err == nil {
		t.Error("invalid costs should fail")
	}
}

func TestErrorFreeRun(t *testing.T) {
	c := testCosts()
	p := layout(t, core.PDMV, 1000, 2, 3, c.Recall)
	app := &counterApp{}
	rep, err := Run(Config{App: app, Pattern: p, Costs: c, Patterns: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.Close(app.value, 3000, 1e-9) {
		t.Errorf("final value = %v, want 3000", app.value)
	}
	if app.garbage != 0 {
		t.Errorf("garbage = %v", app.garbage)
	}
	wantTime := 3 * p.ErrorFreeTime(c)
	if !xmath.Close(rep.Time, wantTime, 1e-9) {
		t.Errorf("time = %v, want %v", rep.Time, wantTime)
	}
	if rep.FinalTainted {
		t.Error("clean run reported tainted")
	}
	if rep.DiskCkpts != 3 || rep.MemCkpts != 6 || rep.GuarVerifs != 6 || rep.PartVerifs != 12 {
		t.Errorf("counters: %+v", rep)
	}
	if !xmath.Close(rep.Overhead, (wantTime-3000)/3000, 1e-9) {
		t.Errorf("overhead = %v", rep.Overhead)
	}
}

func TestFailStopRecoveryRestoresState(t *testing.T) {
	c := testCosts()
	p := layout(t, core.PD, 100, 1, 1, 1)
	app := &counterApp{}
	rep, err := Run(Config{
		App: app, Pattern: p, Costs: c, Patterns: 2,
		FailStop: faults.NewTrace([]float64{50}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same scenario as the simulator test: 50 lost + RD 7 + RM 3 +
	// 2 clean patterns of 135 = 330.
	if !xmath.Close(rep.Time, 330, 1e-9) {
		t.Errorf("time = %v, want 330", rep.Time)
	}
	if !xmath.Close(app.value, 200, 1e-9) {
		t.Errorf("value = %v, want 200 (lost work must not leak)", app.value)
	}
	if rep.FailStop != 1 || rep.DiskRecs != 1 {
		t.Errorf("counters: %+v", rep)
	}
}

func TestSilentCorruptionRolledBack(t *testing.T) {
	c := testCosts()
	p := layout(t, core.PD, 100, 1, 1, 1)
	app := &counterApp{}
	rep, err := Run(Config{
		App: app, Pattern: p, Costs: c, Patterns: 1,
		Silent:  faults.NewTrace([]float64{30}),
		Corrupt: corruptCounter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.Close(rep.Time, 243, 1e-9) {
		t.Errorf("time = %v, want 243", rep.Time)
	}
	if app.garbage != 0 {
		t.Errorf("garbage %v survived rollback", app.garbage)
	}
	if !xmath.Close(app.value, 100, 1e-9) {
		t.Errorf("value = %v, want 100", app.value)
	}
	if rep.DetectByGuar != 1 || rep.MemRecs != 1 || rep.FinalTainted {
		t.Errorf("report: %+v", rep)
	}
}

func TestCustomPartialVerifierDetects(t *testing.T) {
	// An application-level detector: garbage makes the state
	// implausible, which the partial verifier checks directly.
	c := testCosts()
	p := layout(t, core.PDV, 100, 1, 2, c.Recall)
	app := &counterApp{}
	detector := VerifierFunc(func(a Application) (bool, error) {
		return a.(*counterApp).garbage == 0, nil
	})
	rep, err := Run(Config{
		App: app, Pattern: p, Costs: c, Patterns: 1,
		Silent:  faults.NewTrace([]float64{20}),
		Corrupt: corruptCounter,
		Partial: detector,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectByPart != 1 {
		t.Errorf("DetectByPart = %d, want 1 (custom verifier)", rep.DetectByPart)
	}
	if app.garbage != 0 || !xmath.Close(app.value, 100, 1e-9) {
		t.Errorf("state: value=%v garbage=%v", app.value, app.garbage)
	}
}

func TestImperfectGuaranteedVerifierTaintsResult(t *testing.T) {
	// A broken "guaranteed" verifier lets the corruption through; the
	// engine must report the taint and the garbage persists.
	c := testCosts()
	p := layout(t, core.PD, 100, 1, 1, 1)
	app := &counterApp{}
	blind := VerifierFunc(func(Application) (bool, error) { return true, nil })
	rep, err := Run(Config{
		App: app, Pattern: p, Costs: c, Patterns: 1,
		Silent:     faults.NewTrace([]float64{30}),
		Corrupt:    corruptCounter,
		Guaranteed: blind,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FinalTainted {
		t.Error("taint not reported")
	}
	if app.garbage != 1e9 {
		t.Errorf("garbage = %v, want 1e9", app.garbage)
	}
	// No recovery happened: time is one clean traversal.
	if !xmath.Close(rep.Time, p.ErrorFreeTime(c), 1e-9) {
		t.Errorf("time = %v", rep.Time)
	}
}

func TestTaintPropagatesThroughCheckpoints(t *testing.T) {
	// With a blind guaranteed verifier, the corrupted state reaches the
	// memory and disk checkpoints; a later fail-stop restores the
	// *corrupted* disk snapshot, and the engine's ground truth must
	// still report the taint.
	c := testCosts()
	p := layout(t, core.PD, 100, 1, 1, 1)
	app := &counterApp{}
	blind := VerifierFunc(func(Application) (bool, error) { return true, nil })
	rep, err := Run(Config{
		App: app, Pattern: p, Costs: c, Patterns: 2,
		Silent:     faults.NewTrace([]float64{30}),
		FailStop:   faults.NewTrace([]float64{150}), // strikes in pattern 2
		Corrupt:    corruptCounter,
		Guaranteed: blind,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FinalTainted {
		t.Error("taint lost across checkpoint/recovery")
	}
	if app.garbage != 1e9 {
		t.Errorf("garbage = %v, want 1e9", app.garbage)
	}
}

func TestDirStorageRoundTrip(t *testing.T) {
	c := testCosts()
	p := layout(t, core.PD, 100, 1, 1, 1)
	store, err := NewDirStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	app := &counterApp{}
	rep, err := Run(Config{
		App: app, Pattern: p, Costs: c, Patterns: 2, Storage: store,
		FailStop: faults.NewTrace([]float64{150}), // forces a disk read
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiskRecs != 1 {
		t.Errorf("DiskRecs = %d", rep.DiskRecs)
	}
	if !xmath.Close(app.value, 200, 1e-9) {
		t.Errorf("value = %v, want 200", app.value)
	}
}

func TestNewDirStorageValidation(t *testing.T) {
	if _, err := NewDirStorage("/definitely/not/here"); err == nil {
		t.Error("missing dir should fail")
	}
}

func TestMemStorageMissingCheckpoint(t *testing.T) {
	var s MemStorage
	if _, err := s.Load(Memory); err == nil {
		t.Error("empty storage should fail")
	}
}

func TestWorkFuncAdapter(t *testing.T) {
	var total float64
	f := WorkFunc(func(w float64) error { total += w; return nil })
	if err := f.Advance(5); err != nil || total != 5 {
		t.Error("Advance broken")
	}
	if snap, err := f.Snapshot(); err != nil || snap == nil {
		t.Error("Snapshot broken")
	}
	if err := f.Restore(nil); err != nil {
		t.Error("Restore broken")
	}
}

func TestOverheadHelper(t *testing.T) {
	if !xmath.Close(Overhead(130, 100), 0.3, 1e-12) {
		t.Error("Overhead wrong")
	}
	if !math.IsInf(Overhead(1, 0), 1) {
		t.Error("zero work should give +Inf")
	}
}

// TestEngineMatchesSimulatorOnIdenticalTraces is the cross-validation
// between the two executors: fed identical arrival traces and the same
// detection stream, the engine (acting on real state) and the
// simulator (pure accounting) must produce identical timelines and
// counters.
func TestEngineMatchesSimulatorOnIdenticalTraces(t *testing.T) {
	c := testCosts()
	rng := rand.New(rand.NewPCG(99, 77))
	for trial := 0; trial < 25; trial++ {
		kind := core.Kinds()[trial%6]
		p := layout(t, kind, 500+rng.Float64()*2000, 1+rng.IntN(3), 1+rng.IntN(4), c.Recall)
		patterns := 1 + rng.IntN(4)
		seed := rng.Uint64()

		// Build identical finite arrival traces for both executors.
		mkTrace := func(rate float64, s1, s2 uint64) []float64 {
			src, err := faults.NewExponential(rate, s1, s2)
			if err != nil {
				t.Fatal(err)
			}
			var ts []float64
			now := 0.0
			for i := 0; i < 300; i++ {
				now = src.Next(now)
				ts = append(ts, now)
			}
			return ts
		}
		failTimes := mkTrace(1e-4, seed, 1)
		silentTimes := mkTrace(3e-4, seed, 2)
		errorsInOps := trial%2 == 0

		simRes, err := sim.Run(sim.Config{
			Pattern: p, Costs: c, Patterns: patterns, Runs: 1, Seed: seed,
			ErrorsInOps:  errorsInOps,
			FailSource:   func(int) faults.Source { return faults.NewTrace(failTimes) },
			SilentSource: func(int) faults.Source { return faults.NewTrace(silentTimes) },
		})
		if err != nil {
			t.Fatal(err)
		}
		d1, d2 := faults.SplitSeed(seed, 2) // sim's detect stream for run 0
		app := &counterApp{}
		rep, err := Run(Config{
			App: app, Pattern: p, Costs: c, Patterns: patterns,
			ErrorsInOps: errorsInOps,
			FailStop:    faults.NewTrace(failTimes),
			Silent:      faults.NewTrace(silentTimes),
			Corrupt:     corruptCounter,
			Detect:      faults.NewBernoulli(d1, d2),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.Close(rep.Time, simRes.WallTime.Mean(), 1e-9) {
			t.Fatalf("trial %d (%v): engine time %v vs sim %v", trial, kind, rep.Time, simRes.WallTime.Mean())
		}
		tot := simRes.Total
		pairs := []struct {
			name     string
			eng, sim int64
		}{
			{"FailStop", rep.FailStop, tot.FailStop},
			{"Silent", rep.Silent, tot.Silent},
			{"DiskCkpts", rep.DiskCkpts, tot.DiskCkpts},
			{"MemCkpts", rep.MemCkpts, tot.MemCkpts},
			{"PartVerifs", rep.PartVerifs, tot.PartVerifs},
			{"GuarVerifs", rep.GuarVerifs, tot.GuarVerifs},
			{"DiskRecs", rep.DiskRecs, tot.DiskRecs},
			{"MemRecs", rep.MemRecs, tot.MemRecs},
			{"DetectByPart", rep.DetectByPart, tot.DetectByPart},
			{"DetectByGuar", rep.DetectByGuar, tot.DetectByGuar},
		}
		for _, pr := range pairs {
			if pr.eng != pr.sim {
				t.Fatalf("trial %d (%v): %s engine %d vs sim %d", trial, kind, pr.name, pr.eng, pr.sim)
			}
		}
		// And the protocol correctness property: the final state equals
		// the fault-free result regardless of the injection plan.
		want := p.W * float64(patterns)
		if math.Abs(app.value-want)/want > 1e-9 || app.garbage != 0 {
			t.Fatalf("trial %d: final state %v (+%v garbage), want %v", trial, app.value, app.garbage, want)
		}
	}
}

// TestFinalStateCorrectUnderRandomInjection is the headline property:
// whatever the injection plan, the protected application finishes in
// the fault-free state (oracle guaranteed verification).
func TestFinalStateCorrectUnderRandomInjection(t *testing.T) {
	c := testCosts()
	rng := rand.New(rand.NewPCG(5, 8))
	for trial := 0; trial < 40; trial++ {
		kind := core.Kinds()[rng.IntN(6)]
		p := layout(t, kind, 200+rng.Float64()*800, 1+rng.IntN(3), 1+rng.IntN(5), c.Recall)
		patterns := 1 + rng.IntN(3)
		var failT, silT []float64
		now := 0.0
		for i := 0; i < rng.IntN(10); i++ {
			now += rng.Float64() * 500
			failT = append(failT, now)
		}
		now = 0
		for i := 0; i < rng.IntN(10); i++ {
			now += rng.Float64() * 300
			silT = append(silT, now)
		}
		app := &counterApp{}
		_, err := Run(Config{
			App: app, Pattern: p, Costs: c, Patterns: patterns,
			ErrorsInOps: rng.IntN(2) == 0,
			FailStop:    faults.NewTrace(failT),
			Silent:      faults.NewTrace(silT),
			Corrupt:     corruptCounter,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := p.W * float64(patterns)
		if math.Abs(app.value-want)/want > 1e-9 {
			t.Fatalf("trial %d: value %v, want %v", trial, app.value, want)
		}
		if app.garbage != 0 {
			t.Fatalf("trial %d: garbage %v", trial, app.garbage)
		}
	}
}
