package engine

import (
	"errors"
	"math"
	"testing"

	"respat/internal/core"
	"respat/internal/faults"
)

func boundaryCosts() core.Costs {
	return core.Costs{
		DiskCkpt: 5, MemCkpt: 1, DiskRec: 5, MemRec: 1,
		GuarVer: 0.5, PartVer: 0.1, Recall: 0.8,
	}
}

func mustUniform(t *testing.T, w float64, n, m int) core.Pattern {
	t.Helper()
	p, err := core.Uniform(w, n, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunTargetWorkStopsAtTarget(t *testing.T) {
	p := mustUniform(t, 100, 1, 1)
	rep, err := Run(Config{
		App:     WorkFunc(func(float64) error { return nil }),
		Pattern: p, Costs: boundaryCosts(), TargetWork: 350,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 patterns of 100 s: the first total >= 350.
	if rep.Work != 400 {
		t.Fatalf("work = %v, want 400", rep.Work)
	}
}

func TestRunRequiresAStoppingRule(t *testing.T) {
	p := mustUniform(t, 100, 1, 1)
	_, err := Run(Config{
		App:     WorkFunc(func(float64) error { return nil }),
		Pattern: p, Costs: boundaryCosts(),
	})
	if err == nil {
		t.Fatal("Patterns == 0 and TargetWork == 0 must be rejected")
	}
}

func TestBoundaryHookSwapsPattern(t *testing.T) {
	first := mustUniform(t, 100, 1, 1)
	second := mustUniform(t, 50, 2, 1)
	var calls []int
	rep, err := Run(Config{
		App:     WorkFunc(func(float64) error { return nil }),
		Pattern: first, Costs: boundaryCosts(), Patterns: 4,
		Boundary: func(done int, rep Report) (*core.Pattern, error) {
			calls = append(calls, done)
			if done == 2 {
				p := second
				return &p, nil
			}
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 4 || calls[0] != 1 || calls[3] != 4 {
		t.Fatalf("boundary calls = %v, want [1 2 3 4]", calls)
	}
	if rep.PlanSwaps != 1 {
		t.Fatalf("plan swaps = %d, want 1", rep.PlanSwaps)
	}
	// Two patterns of 100 s, then two of 50 s.
	if rep.Work != 300 {
		t.Fatalf("work = %v, want 300", rep.Work)
	}
	// The swapped pattern has 2 segments: memory checkpoints double per
	// instance (2 instances x 2 segments + 2 instances x 1 segment).
	if rep.MemCkpts != 2*2+2*1 {
		t.Fatalf("mem ckpts = %d, want 6", rep.MemCkpts)
	}
}

func TestBoundaryHookFinalSwapNotInstalled(t *testing.T) {
	first := mustUniform(t, 100, 1, 1)
	second := mustUniform(t, 50, 2, 1)
	calls := 0
	rep, err := Run(Config{
		App:     WorkFunc(func(float64) error { return nil }),
		Pattern: first, Costs: boundaryCosts(), Patterns: 2,
		Boundary: func(done int, rep Report) (*core.Pattern, error) {
			calls++
			if done == 2 { // final boundary: the run is over
				p := second
				return &p, nil
			}
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("boundary calls = %d, want 2 (the final observation must still be fed)", calls)
	}
	if rep.PlanSwaps != 0 {
		t.Fatalf("plan swaps = %d, want 0 (a swap at the final boundary never executes)", rep.PlanSwaps)
	}
	if rep.Work != 200 {
		t.Fatalf("work = %v, want 200", rep.Work)
	}
}

func TestBoundaryHookErrorAborts(t *testing.T) {
	p := mustUniform(t, 100, 1, 1)
	boom := errors.New("boom")
	_, err := Run(Config{
		App:     WorkFunc(func(float64) error { return nil }),
		Pattern: p, Costs: boundaryCosts(), Patterns: 3,
		Boundary: func(int, Report) (*core.Pattern, error) { return nil, boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestBoundaryHookRejectsInvalidSwap(t *testing.T) {
	p := mustUniform(t, 100, 1, 1)
	// An invalid swap pattern aborts the run wherever it is returned —
	// including at the final boundary, where the swap itself would be
	// skipped (error surfacing must not depend on the stopping rule).
	for _, patterns := range []int{3, 1} {
		_, err := Run(Config{
			App:     WorkFunc(func(float64) error { return nil }),
			Pattern: p, Costs: boundaryCosts(), Patterns: patterns,
			Boundary: func(int, Report) (*core.Pattern, error) {
				return &core.Pattern{}, nil // invalid: no segments
			},
		})
		if err == nil {
			t.Fatalf("Patterns=%d: invalid swap pattern must abort the run", patterns)
		}
	}
}

func TestReportExposesErrorClockExposure(t *testing.T) {
	p := mustUniform(t, 100, 1, 1)
	fs, err := faults.NewExponential(1e-3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		App:     WorkFunc(func(float64) error { return nil }),
		Pattern: p, Costs: boundaryCosts(), Patterns: 10,
		FailStop: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Chunk work is the only fail-stop exposure without ErrorsInOps; it
	// must cover at least the useful work (re-executions add more).
	if rep.FailStopExposure < rep.Work {
		t.Fatalf("fail-stop exposure %v below useful work %v", rep.FailStopExposure, rep.Work)
	}
	if math.IsNaN(rep.SilentExposure) || rep.SilentExposure < rep.Work {
		t.Fatalf("silent exposure %v below useful work %v", rep.SilentExposure, rep.Work)
	}
}
