// Package engine is the resilience runtime: it executes a real
// application under a computational pattern (Section 2 protocol),
// managing two-level checkpoints (in-memory and disk), guaranteed and
// partial verifications, and recovery from injected fail-stop and
// silent errors. The Monte-Carlo simulator (internal/sim) predicts the
// performance of a pattern; the engine actually runs one, on real
// state, with real snapshot/restore and real (or oracle) detectors.
//
// Time is virtual: operations advance a clock by their configured
// costs, and error arrivals are driven by exposure clocks exactly as
// in internal/sim, so an engine run and a simulator run fed the same
// arrival traces produce identical timelines — a property the tests
// assert.
//
// The engine is also the actuation point of the adaptive re-planning
// loop (internal/adapt): Config.Boundary is called at every pattern
// boundary with a report snapshot — including the per-clock exposure
// seconds an observer needs to estimate arrival rates — and may swap
// the engine onto a new pattern for subsequent instances. Report
// counts the swaps (PlanSwaps), and Config.TargetWork provides the
// work-based stopping rule that makes runs with different pattern
// lengths directly comparable.
package engine
