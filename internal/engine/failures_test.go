package engine

import (
	"errors"
	"testing"

	"respat/internal/core"
	"respat/internal/faults"
)

// failingStorage wraps MemStorage and fails after a countdown, so
// storage-layer errors surface mid-protocol.
type failingStorage struct {
	MemStorage
	saveBudget int
	loadBudget int
}

var errStorage = errors.New("storage broke")

func (s *failingStorage) Save(level Level, data []byte) error {
	if s.saveBudget == 0 {
		return errStorage
	}
	s.saveBudget--
	return s.MemStorage.Save(level, data)
}

func (s *failingStorage) Load(level Level) ([]byte, error) {
	if s.loadBudget == 0 {
		return nil, errStorage
	}
	s.loadBudget--
	return s.MemStorage.Load(level)
}

func TestStorageSaveErrorPropagates(t *testing.T) {
	c := testCosts()
	p := layout(t, core.PD, 100, 1, 1, 1)
	// Budget 2 allows the initial two saves; the first memory
	// checkpoint then fails.
	st := &failingStorage{saveBudget: 2, loadBudget: 1 << 30}
	_, err := Run(Config{App: &counterApp{}, Pattern: p, Costs: c, Patterns: 1, Storage: st})
	if !errors.Is(err, errStorage) {
		t.Errorf("err = %v, want errStorage", err)
	}
}

func TestStorageLoadErrorPropagates(t *testing.T) {
	c := testCosts()
	p := layout(t, core.PD, 100, 1, 1, 1)
	st := &failingStorage{saveBudget: 1 << 30, loadBudget: 0}
	_, err := Run(Config{
		App: &counterApp{}, Pattern: p, Costs: c, Patterns: 1, Storage: st,
		FailStop: faults.NewTrace([]float64{10}), // forces a disk load
	})
	if !errors.Is(err, errStorage) {
		t.Errorf("err = %v, want errStorage", err)
	}
}

// brokenApp fails its Advance after a countdown.
type brokenApp struct {
	counterApp
	budget int
}

var errApp = errors.New("app broke")

func (a *brokenApp) Advance(w float64) error {
	if a.budget == 0 {
		return errApp
	}
	a.budget--
	return a.counterApp.Advance(w)
}

func TestApplicationErrorPropagates(t *testing.T) {
	c := testCosts()
	p := layout(t, core.PDMV, 400, 2, 2, c.Recall)
	_, err := Run(Config{App: &brokenApp{budget: 2}, Pattern: p, Costs: c, Patterns: 1})
	if !errors.Is(err, errApp) {
		t.Errorf("err = %v, want errApp", err)
	}
}

func TestVerifierErrorPropagates(t *testing.T) {
	c := testCosts()
	p := layout(t, core.PD, 100, 1, 1, 1)
	boom := VerifierFunc(func(Application) (bool, error) { return false, errApp })
	_, err := Run(Config{
		App: &counterApp{}, Pattern: p, Costs: c, Patterns: 1,
		Guaranteed: boom,
	})
	if !errors.Is(err, errApp) {
		t.Errorf("err = %v, want errApp", err)
	}
}

func TestCorruptCallbackErrorPropagates(t *testing.T) {
	c := testCosts()
	p := layout(t, core.PD, 100, 1, 1, 1)
	_, err := Run(Config{
		App: &counterApp{}, Pattern: p, Costs: c, Patterns: 1,
		Silent:  faults.NewTrace([]float64{10}),
		Corrupt: func(Application) error { return errApp },
	})
	if !errors.Is(err, errApp) {
		t.Errorf("err = %v, want errApp", err)
	}
}

// snapshotFailApp fails serialisation, which must abort the initial
// checkpoint.
type snapshotFailApp struct{ counterApp }

func (snapshotFailApp) Snapshot() ([]byte, error) { return nil, errApp }

func TestSnapshotErrorPropagates(t *testing.T) {
	c := testCosts()
	p := layout(t, core.PD, 100, 1, 1, 1)
	_, err := Run(Config{App: &snapshotFailApp{}, Pattern: p, Costs: c, Patterns: 1})
	if !errors.Is(err, errApp) {
		t.Errorf("err = %v, want errApp", err)
	}
}

// TestFalsePositivePartialVerifierWastesButFinishes: a detector that
// mis-fires exactly once causes one spurious rollback and re-execution
// but the run still completes correctly.
func TestFalsePositivePartialVerifierWastesButFinishes(t *testing.T) {
	c := testCosts()
	p := layout(t, core.PDV, 100, 1, 2, c.Recall)
	fired := false
	flaky := VerifierFunc(func(Application) (bool, error) {
		if !fired {
			fired = true
			return false, nil // spurious alarm
		}
		return true, nil
	})
	app := &counterApp{}
	rep, err := Run(Config{
		App: app, Pattern: p, Costs: c, Patterns: 1, Partial: flaky,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MemRecs != 1 || rep.DetectByPart != 1 {
		t.Errorf("report: %+v", rep)
	}
	// One spurious segment replay: chunk1 50 + V 1 + RM 3, then the
	// full clean pattern 50+1+50+5+10+20.
	want := 50 + 1 + 3 + p.ErrorFreeTime(c)
	if rep.Time != want {
		t.Errorf("time = %v, want %v", rep.Time, want)
	}
	// The wasted 50 s of work were rolled back with the snapshot, so
	// the final state holds exactly the committed work.
	if app.value != 100 {
		t.Errorf("value = %v, want 100", app.value)
	}
}
