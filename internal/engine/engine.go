package engine

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"respat/internal/core"
	"respat/internal/faults"
)

// Application is the computation protected by the engine. Advance must
// be deterministic for the engine's rollback guarantee to reproduce
// the fault-free result.
type Application interface {
	// Advance performs `work` seconds of computation at unit speed.
	Advance(work float64) error
	// Snapshot serialises the complete application state.
	Snapshot() ([]byte, error)
	// Restore replaces the application state from a snapshot.
	Restore(data []byte) error
}

// Verifier checks the application for silent data corruption.
// Check returns clean=false when corruption is detected.
type Verifier interface {
	Check(app Application) (clean bool, err error)
}

// Level identifies a checkpoint storage level.
type Level int

// The two checkpoint levels of the protocol.
const (
	Memory Level = iota
	Disk
)

// Storage persists checkpoints at the two levels.
type Storage interface {
	Save(level Level, data []byte) error
	Load(level Level) ([]byte, error)
}

// MemStorage keeps both levels in process memory. It is the fastest
// backend and the right one for simulated-disk experiments.
type MemStorage struct {
	mem  []byte
	disk []byte
}

// Save stores a copy of data at the given level. An empty snapshot is
// a valid checkpoint (stateless applications), hence the non-nil copy.
func (s *MemStorage) Save(level Level, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	if level == Memory {
		s.mem = cp
	} else {
		s.disk = cp
	}
	return nil
}

// Load returns a copy of the checkpoint at the given level.
func (s *MemStorage) Load(level Level) ([]byte, error) {
	src := s.mem
	if level == Disk {
		src = s.disk
	}
	if src == nil {
		return nil, fmt.Errorf("engine: no checkpoint at level %d", level)
	}
	return append([]byte(nil), src...), nil
}

// DirStorage keeps the memory level in process memory and the disk
// level in a file, exercising a real I/O path.
type DirStorage struct {
	mem  []byte
	path string
}

// NewDirStorage creates a DirStorage writing its disk checkpoints to
// dir/checkpoint.bin.
func NewDirStorage(dir string) (*DirStorage, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("engine: checkpoint dir: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("engine: checkpoint path %s is not a directory", dir)
	}
	return &DirStorage{path: filepath.Join(dir, "checkpoint.bin")}, nil
}

// Save stores data at the given level (the disk level hits the file
// system).
func (s *DirStorage) Save(level Level, data []byte) error {
	if level == Memory {
		s.mem = make([]byte, len(data))
		copy(s.mem, data)
		return nil
	}
	tmp := s.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path) // atomic replace: a crash never leaves a torn checkpoint
}

// Load retrieves the checkpoint at the given level.
func (s *DirStorage) Load(level Level) ([]byte, error) {
	if level == Memory {
		if s.mem == nil {
			return nil, errors.New("engine: no memory checkpoint")
		}
		return append([]byte(nil), s.mem...), nil
	}
	return os.ReadFile(s.path)
}

// Config assembles an engine run.
type Config struct {
	App     Application
	Pattern core.Pattern
	Costs   core.Costs
	// Patterns is the number of pattern instances to execute.
	Patterns int
	// Storage backs the two checkpoint levels; nil selects MemStorage.
	Storage Storage
	// FailStop and Silent supply error arrivals on exposure clocks
	// (see internal/sim); nil means no errors of that type.
	FailStop faults.Source
	Silent   faults.Source
	// Corrupt applies one silent corruption to the application. It is
	// called at each Silent arrival; nil leaves state untouched (the
	// corruption is still tracked for oracle detection).
	Corrupt func(app Application) error
	// Guaranteed verifies at segment ends; nil selects the oracle that
	// flags exactly the injected corruptions (recall 1), matching the
	// model's assumption of a guaranteed verification.
	Guaranteed Verifier
	// Partial verifies at interior chunk boundaries; nil selects an
	// oracle detecting injected corruptions with probability
	// Costs.Recall using the Detect stream. A custom verifier may miss
	// corruptions (reduced recall) but must not report *persistent*
	// false positives: the replay after a rollback is deterministic, so
	// a detector that always mis-flags a clean state livelocks the
	// protocol, exactly as it would in a real deployment.
	Partial Verifier
	// Detect drives oracle partial detection; nil seeds a fresh
	// deterministic stream.
	Detect *faults.Bernoulli
	// ErrorsInOps exposes verifications, checkpoints and recoveries to
	// fail-stop errors (Section 5 semantics).
	ErrorsInOps bool
	// TargetWork, when positive, runs pattern instances until the
	// cumulative useful work reaches TargetWork seconds (Patterns may
	// then be zero). It is the natural stopping rule when patterns of
	// different lengths are mixed by Boundary swaps: runs with equal
	// TargetWork complete equal work and their overheads compare
	// directly.
	TargetWork float64
	// Boundary, if non-nil, is called after every completed pattern
	// instance with the number of instances done so far and a snapshot
	// of the running report. Returning a non-nil pattern swaps the
	// engine onto it starting at the next instance — the swap point of
	// the adaptive re-planning loop (internal/adapt); the pattern in
	// flight is never altered. Returning an error aborts the run.
	Boundary func(done int, rep Report) (*core.Pattern, error)
}

// Report summarises an engine run.
type Report struct {
	// Time is the total virtual wall-clock in seconds.
	Time float64
	// Work is the useful work completed: the sum of the executed
	// instances' pattern lengths W (instances may differ in length
	// after a Boundary swap).
	Work float64
	// Overhead is (Time - Work) / Work.
	Overhead float64
	// Event counters, with the same semantics as sim.Counters.
	FailStop     int64
	Silent       int64
	DiskCkpts    int64
	MemCkpts     int64
	PartVerifs   int64
	GuarVerifs   int64
	DiskRecs     int64
	MemRecs      int64
	DetectByPart int64
	DetectByGuar int64
	// PlanSwaps counts the pattern swaps performed by the Boundary
	// hook.
	PlanSwaps int64
	// FailStopExposure and SilentExposure are the total exposure
	// seconds accumulated on the two error clocks — the denominators an
	// observer needs to estimate arrival rates from the event counters
	// (events per exposure second, not per wall-clock second).
	FailStopExposure float64
	SilentExposure   float64
	// FinalTainted reports whether the final state carries an
	// undetected corruption (only possible with an imperfect
	// user-supplied guaranteed verifier).
	FinalTainted bool
}

// Run executes pattern instances until the stopping rule is met —
// Patterns instances, or TargetWork seconds of useful work — and
// returns the report. The application ends in the state a fault-free
// execution would produce, provided the guaranteed verifier catches
// every corruption (the oracle always does).
func Run(cfg Config) (Report, error) {
	if cfg.App == nil {
		return Report{}, errors.New("engine: nil App")
	}
	if err := cfg.Costs.Validate(); err != nil {
		return Report{}, err
	}
	if cfg.Patterns <= 0 && cfg.TargetWork <= 0 {
		return Report{}, fmt.Errorf("engine: need Patterns > 0 or TargetWork > 0 (got %d, %v)",
			cfg.Patterns, cfg.TargetWork)
	}
	if math.IsNaN(cfg.TargetWork) || math.IsInf(cfg.TargetWork, 0) {
		return Report{}, fmt.Errorf("engine: TargetWork = %v, need finite", cfg.TargetWork)
	}
	e := &exec{cfg: cfg}
	if e.cfg.Storage == nil {
		e.cfg.Storage = &MemStorage{}
	}
	if e.cfg.FailStop == nil {
		e.cfg.FailStop = faults.Never{}
	}
	if e.cfg.Silent == nil {
		e.cfg.Silent = faults.Never{}
	}
	if e.cfg.Detect == nil {
		e.cfg.Detect = faults.NewBernoulli(0x5eed, 0xdee7)
	}
	e.fail = newClock(e.cfg.FailStop)
	e.silent = newClock(e.cfg.Silent)
	if err := e.setPattern(cfg.Pattern); err != nil {
		return Report{}, err
	}
	if err := e.initialCheckpoint(); err != nil {
		return Report{}, err
	}
	var work float64
	for done := 0; e.more(done, work); done++ {
		if err := e.runPattern(); err != nil {
			return Report{}, err
		}
		work += e.pat.W
		if e.cfg.Boundary == nil {
			continue
		}
		e.syncReport(work)
		next, err := e.cfg.Boundary(done+1, e.rep)
		if err != nil {
			return Report{}, err
		}
		if next == nil {
			continue
		}
		if err := next.Validate(); err != nil {
			// Surface a broken swap pattern no matter where the run
			// ends — the final boundary must not mask a controller bug
			// that every earlier boundary would abort on.
			return Report{}, err
		}
		if !e.more(done+1, work) {
			// The stopping rule fires before another pattern runs: a swap
			// decided at the final boundary would never execute, so don't
			// install or count it (the observation was still fed above).
			continue
		}
		if err := e.setPattern(*next); err != nil {
			return Report{}, err
		}
		e.rep.PlanSwaps++
	}
	e.syncReport(work)
	e.rep.Overhead = (e.rep.Time - e.rep.Work) / e.rep.Work
	e.rep.FinalTainted = e.corrupted
	return e.rep, nil
}

// more is the stopping rule: run until the instance count (when set)
// and the work target (when set) are both met.
func (e *exec) more(done int, work float64) bool {
	if e.cfg.Patterns > 0 && done < e.cfg.Patterns {
		return true
	}
	return e.cfg.TargetWork > 0 && work < e.cfg.TargetWork
}

// setPattern validates p and installs its flattened schedule; the next
// runPattern executes p. Called once at startup and at Boundary swaps.
func (e *exec) setPattern(p core.Pattern) error {
	if err := p.Validate(); err != nil {
		return err
	}
	e.pat = p
	e.sched = p.Schedule()
	e.segStart = make([]int, p.N())
	seen := 0
	for i, a := range e.sched {
		if a.Op == core.OpChunk && a.Chunk == 0 && a.Segment == seen {
			e.segStart[seen] = i
			seen++
		}
	}
	return nil
}

// syncReport refreshes the report fields derived from executor state
// (total time, work, exposure clocks), so Boundary observers see a
// consistent snapshot.
func (e *exec) syncReport(work float64) {
	e.rep.Work = work
	e.rep.Time = e.now
	e.rep.FailStopExposure = e.fail.exposure
	e.rep.SilentExposure = e.silent.exposure
}

// clock drives one error source on an exposure clock (see sim).
type clock struct {
	src      faults.Source
	exposure float64
	next     float64
}

func newClock(src faults.Source) clock {
	return clock{src: src, next: src.Next(0)}
}

func (c *clock) within(d float64) (float64, bool) {
	dt := c.next - c.exposure
	return dt, dt <= d
}

func (c *clock) advance(d float64) { c.exposure += d }

func (c *clock) consume() {
	c.exposure = c.next
	c.next = c.src.Next(c.exposure)
}

type exec struct {
	cfg      Config
	pat      core.Pattern // pattern currently executing (swappable at boundaries)
	sched    []core.Action
	segStart []int
	fail     clock
	silent   clock
	now      float64
	rep      Report
	// Ground-truth corruption tracking. The engine injects the
	// corruptions, so it knows which snapshots are tainted; protocol
	// decisions still come only from the verifiers.
	corrupted   bool
	memTainted  bool
	diskTainted bool
}

// initialCheckpoint persists the pristine initial state at both levels
// (the "initial data" the first pattern recovers to, Section 2.2).
func (e *exec) initialCheckpoint() error {
	snap, err := e.cfg.App.Snapshot()
	if err != nil {
		return err
	}
	if err := e.cfg.Storage.Save(Memory, snap); err != nil {
		return err
	}
	return e.cfg.Storage.Save(Disk, snap)
}

type stepResult int

const (
	stepOK stepResult = iota
	stepFailStop
	stepDetected
)

func (e *exec) runPattern() error {
	i := 0
	for i < len(e.sched) {
		a := e.sched[i]
		var res stepResult
		var err error
		switch a.Op {
		case core.OpChunk:
			res, err = e.chunk(a.Work)
		case core.OpPartVer:
			res, err = e.verify(true)
		case core.OpGuarVer:
			res, err = e.verify(false)
		case core.OpMemCkpt:
			res, err = e.memCkpt()
		case core.OpDisk:
			res, err = e.diskCkpt()
		}
		if err != nil {
			return err
		}
		switch res {
		case stepOK:
			i++
		case stepFailStop:
			if err := e.diskRecovery(); err != nil {
				return err
			}
			i = 0
		case stepDetected:
			ok, err := e.memRecovery()
			if err != nil {
				return err
			}
			if ok {
				i = e.segStart[a.Segment]
			} else {
				i = 0 // escalated to disk recovery
			}
		}
	}
	return nil
}

// chunk advances the application by w seconds of computation, applying
// silent corruptions at their arrival offsets and stopping at a
// fail-stop arrival.
func (e *exec) chunk(w float64) (stepResult, error) {
	remaining := w
	for remaining > 0 {
		fdt, fHit := e.fail.within(remaining)
		sdt, sHit := e.silent.within(remaining)
		if sHit && (!fHit || sdt <= fdt) {
			if err := e.cfg.App.Advance(sdt); err != nil {
				return 0, err
			}
			e.silent.consume()
			e.fail.advance(sdt)
			e.now += sdt
			remaining -= sdt
			e.corrupted = true
			e.rep.Silent++
			if e.cfg.Corrupt != nil {
				if err := e.cfg.Corrupt(e.cfg.App); err != nil {
					return 0, err
				}
			}
			continue
		}
		if fHit {
			// The machine dies mid-chunk; partial progress is lost with
			// the memory, so Advance is not called for it.
			e.fail.consume()
			e.silent.advance(fdt)
			e.now += fdt
			e.rep.FailStop++
			return stepFailStop, nil
		}
		if err := e.cfg.App.Advance(remaining); err != nil {
			return 0, err
		}
		e.fail.advance(remaining)
		e.silent.advance(remaining)
		e.now += remaining
		remaining = 0
	}
	return stepOK, nil
}

// protectedOp spends cost seconds on a non-computation operation,
// exposed to fail-stop errors only when ErrorsInOps is set.
func (e *exec) protectedOp(cost float64) stepResult {
	if cost <= 0 {
		return stepOK
	}
	if !e.cfg.ErrorsInOps {
		e.now += cost
		return stepOK
	}
	if fdt, hit := e.fail.within(cost); hit {
		e.fail.consume()
		e.now += fdt
		e.rep.FailStop++
		return stepFailStop
	}
	e.fail.advance(cost)
	e.now += cost
	return stepOK
}

// verify runs a partial or guaranteed verification.
func (e *exec) verify(partial bool) (stepResult, error) {
	cost := e.cfg.Costs.GuarVer
	if partial {
		cost = e.cfg.Costs.PartVer
	}
	if e.protectedOp(cost) == stepFailStop {
		return stepFailStop, nil
	}
	var clean bool
	var err error
	switch {
	case partial && e.cfg.Partial != nil:
		clean, err = e.cfg.Partial.Check(e.cfg.App)
	case partial:
		clean = !(e.corrupted && e.cfg.Detect.Hit(e.cfg.Costs.Recall))
	case e.cfg.Guaranteed != nil:
		clean, err = e.cfg.Guaranteed.Check(e.cfg.App)
	default:
		clean = !e.corrupted
	}
	if err != nil {
		return 0, err
	}
	if partial {
		e.rep.PartVerifs++
	} else {
		e.rep.GuarVerifs++
	}
	if !clean {
		if partial {
			e.rep.DetectByPart++
		} else {
			e.rep.DetectByGuar++
		}
		return stepDetected, nil
	}
	return stepOK, nil
}

// memCkpt snapshots the application to the memory level.
func (e *exec) memCkpt() (stepResult, error) {
	if e.protectedOp(e.cfg.Costs.MemCkpt) == stepFailStop {
		return stepFailStop, nil
	}
	snap, err := e.cfg.App.Snapshot()
	if err != nil {
		return 0, err
	}
	if err := e.cfg.Storage.Save(Memory, snap); err != nil {
		return 0, err
	}
	e.memTainted = e.corrupted
	e.rep.MemCkpts++
	return stepOK, nil
}

// diskCkpt copies the (just-taken) memory checkpoint to disk.
func (e *exec) diskCkpt() (stepResult, error) {
	if e.protectedOp(e.cfg.Costs.DiskCkpt) == stepFailStop {
		return stepFailStop, nil
	}
	snap, err := e.cfg.Storage.Load(Memory)
	if err != nil {
		return 0, err
	}
	if err := e.cfg.Storage.Save(Disk, snap); err != nil {
		return 0, err
	}
	e.diskTainted = e.memTainted
	e.rep.DiskCkpts++
	return stepOK, nil
}

// diskRecovery restores the last disk checkpoint and re-establishes
// the memory copy, retrying through further fail-stop strikes.
func (e *exec) diskRecovery() error {
	for {
		if e.protectedOp(e.cfg.Costs.DiskRec) == stepFailStop {
			continue
		}
		if e.protectedOp(e.cfg.Costs.MemRec) == stepFailStop {
			continue
		}
		break
	}
	snap, err := e.cfg.Storage.Load(Disk)
	if err != nil {
		return err
	}
	if err := e.cfg.App.Restore(snap); err != nil {
		return err
	}
	if err := e.cfg.Storage.Save(Memory, snap); err != nil {
		return err
	}
	e.corrupted = e.diskTainted
	e.memTainted = e.diskTainted
	e.rep.DiskRecs++
	return nil
}

// memRecovery restores the segment's memory checkpoint; a fail-stop
// during the restore escalates to a disk recovery (ok=false).
func (e *exec) memRecovery() (ok bool, err error) {
	if e.protectedOp(e.cfg.Costs.MemRec) == stepFailStop {
		if err := e.diskRecovery(); err != nil {
			return false, err
		}
		return false, nil
	}
	snap, err := e.cfg.Storage.Load(Memory)
	if err != nil {
		return false, err
	}
	if err := e.cfg.App.Restore(snap); err != nil {
		return false, err
	}
	e.corrupted = e.memTainted
	e.rep.MemRecs++
	return true, nil
}

// WorkFunc adapts a plain function to the Application interface with
// no state; Snapshot and Restore are no-ops. It suits measurement-only
// workloads.
type WorkFunc func(work float64) error

// Advance calls the function.
func (f WorkFunc) Advance(work float64) error { return f(work) }

// Snapshot returns an empty snapshot.
func (WorkFunc) Snapshot() ([]byte, error) { return []byte{}, nil }

// Restore ignores the snapshot.
func (WorkFunc) Restore([]byte) error { return nil }

// VerifierFunc adapts a function to the Verifier interface.
type VerifierFunc func(app Application) (bool, error)

// Check calls the function.
func (f VerifierFunc) Check(app Application) (bool, error) { return f(app) }

// Overhead is a convenience: (time - work)/work guarding zero work.
func Overhead(time, work float64) float64 {
	if work == 0 {
		return math.Inf(1)
	}
	return (time - work) / work
}
