// Package platform embeds the Table 2 platform measurements (Moody et
// al.'s SCR study, as used by the paper) and the derivation rules of
// Section 6: simulation default costs (RD=CD, RM=CM, V*=CM, V=V*/100,
// r=0.8), per-node MTBFs and weak scaling, and error-rate scaling.
package platform

import (
	"fmt"
	"math"
	"sort"

	"respat/internal/core"
)

// SecondsPerDay converts rates to the per-day figures quoted in §6.
const SecondsPerDay = 86400.0

// SecondsPerYear uses the Julian year, matching the paper's "8.57
// years" per-node MTBF derivation for Hera.
const SecondsPerYear = 365.25 * SecondsPerDay

// Platform describes one row of Table 2 plus the simulation defaults.
type Platform struct {
	Name  string
	Nodes int
	// Rates are platform-level arrival rates in errors/second.
	Rates core.Rates
	// Costs hold CD and CM from Table 2 and the derived defaults.
	Costs core.Costs
}

// defaults fills the derived cost parameters of Section 6.1:
// RD = CD, RM = CM, V* = CM, V = V*/100, r = 0.8.
func defaults(cd, cm float64) core.Costs {
	return core.Costs{
		DiskCkpt: cd,
		MemCkpt:  cm,
		DiskRec:  cd,
		MemRec:   cm,
		GuarVer:  cm,
		PartVer:  cm / 100,
		Recall:   0.8,
	}
}

// Table2 returns the four platforms of Table 2 in paper order:
// Hera, Atlas, Coastal, Coastal-SSD.
func Table2() []Platform {
	return []Platform{
		{Name: "Hera", Nodes: 256,
			Rates: core.Rates{FailStop: 9.46e-7, Silent: 3.38e-6},
			Costs: defaults(300, 15.4)},
		{Name: "Atlas", Nodes: 512,
			Rates: core.Rates{FailStop: 5.19e-7, Silent: 7.78e-6},
			Costs: defaults(439, 9.1)},
		{Name: "Coastal", Nodes: 1024,
			Rates: core.Rates{FailStop: 4.02e-7, Silent: 2.01e-6},
			Costs: defaults(1051, 4.5)},
		{Name: "Coastal-SSD", Nodes: 1024,
			Rates: core.Rates{FailStop: 4.02e-7, Silent: 2.01e-6},
			Costs: defaults(2500, 180)},
	}
}

// ByName returns the named Table 2 platform (case-sensitive).
func ByName(name string) (Platform, error) {
	for _, p := range Table2() {
		if p.Name == name {
			return p, nil
		}
	}
	names := Names()
	return Platform{}, fmt.Errorf("platform: unknown platform %q (have %v)", name, names)
}

// Names lists the available platform names, sorted.
func Names() []string {
	ps := Table2()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// FailStopMTBFDays returns the platform MTBF for fail-stop errors in
// days (§6.2.1 quotes 12.2 days for Hera).
func (p Platform) FailStopMTBFDays() float64 {
	if p.Rates.FailStop == 0 {
		return math.Inf(1)
	}
	return 1 / p.Rates.FailStop / SecondsPerDay
}

// SilentMTBFDays returns the platform MTBF for silent errors in days
// (§6.2.1 quotes 3.4 days for Hera).
func (p Platform) SilentMTBFDays() float64 {
	if p.Rates.Silent == 0 {
		return math.Inf(1)
	}
	return 1 / p.Rates.Silent / SecondsPerDay
}

// PerNodeRates returns the single-node error rates λ/Nodes, the basis
// of the weak-scaling extrapolation (§6.3.1).
func (p Platform) PerNodeRates() core.Rates {
	n := float64(p.Nodes)
	return core.Rates{FailStop: p.Rates.FailStop / n, Silent: p.Rates.Silent / n}
}

// PerNodeMTBFYears returns the per-node MTBFs in years for fail-stop
// and silent errors (8.57 and 2.4 years for Hera).
func (p Platform) PerNodeMTBFYears() (failStop, silent float64) {
	pn := p.PerNodeRates()
	return 1 / pn.FailStop / SecondsPerYear, 1 / pn.Silent / SecondsPerYear
}

// WeakScale returns a copy of the platform scaled to nodes compute
// nodes: error rates grow linearly with the node count while, under
// the weak-scaling assumptions of §6.3.1, checkpoint costs stay
// constant (problem size per node fixed, I/O bandwidth scaled).
func (p Platform) WeakScale(nodes int) (Platform, error) {
	if nodes <= 0 {
		return Platform{}, fmt.Errorf("platform: weak scale to %d nodes", nodes)
	}
	pn := p.PerNodeRates()
	out := p
	out.Name = fmt.Sprintf("%s-%dn", p.Name, nodes)
	out.Nodes = nodes
	out.Rates = core.Rates{
		FailStop: pn.FailStop * float64(nodes),
		Silent:   pn.Silent * float64(nodes),
	}
	return out, nil
}

// WithDiskCost returns a copy with CD (and RD) replaced; §6.3.2 uses
// CD = 90 s to model improved disk technology.
func (p Platform) WithDiskCost(cd float64) Platform {
	out := p
	out.Costs.DiskCkpt = cd
	out.Costs.DiskRec = cd
	return out
}

// WithMemCost returns a copy with CM (and RM, V*, V) replaced,
// preserving the Section 6.1 derivation rules.
func (p Platform) WithMemCost(cm float64) Platform {
	out := p
	out.Costs = defaults(out.Costs.DiskCkpt, cm)
	return out
}

// ScaleRates returns a copy with the error rates multiplied by
// (ff, fs), implementing the §6.4 sweeps.
func (p Platform) ScaleRates(ff, fs float64) Platform {
	out := p
	out.Rates = p.Rates.Scale(ff, fs)
	return out
}

// Validate checks the embedded parameters.
func (p Platform) Validate() error {
	if p.Nodes <= 0 {
		return fmt.Errorf("platform: %s has %d nodes", p.Name, p.Nodes)
	}
	if err := p.Rates.Validate(); err != nil {
		return err
	}
	return p.Costs.Validate()
}
