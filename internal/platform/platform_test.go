package platform

import (
	"math"
	"testing"

	"respat/internal/xmath"
)

func TestTable2Contents(t *testing.T) {
	ps := Table2()
	if len(ps) != 4 {
		t.Fatalf("Table2 has %d rows, want 4", len(ps))
	}
	want := []struct {
		name  string
		nodes int
		lf    float64
		ls    float64
		cd    float64
		cm    float64
	}{
		{"Hera", 256, 9.46e-7, 3.38e-6, 300, 15.4},
		{"Atlas", 512, 5.19e-7, 7.78e-6, 439, 9.1},
		{"Coastal", 1024, 4.02e-7, 2.01e-6, 1051, 4.5},
		{"Coastal-SSD", 1024, 4.02e-7, 2.01e-6, 2500, 180},
	}
	for i, w := range want {
		p := ps[i]
		if p.Name != w.name || p.Nodes != w.nodes {
			t.Errorf("row %d: %s/%d, want %s/%d", i, p.Name, p.Nodes, w.name, w.nodes)
		}
		if p.Rates.FailStop != w.lf || p.Rates.Silent != w.ls {
			t.Errorf("%s rates = %+v", p.Name, p.Rates)
		}
		if p.Costs.DiskCkpt != w.cd || p.Costs.MemCkpt != w.cm {
			t.Errorf("%s costs = %+v", p.Name, p.Costs)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
}

func TestSimulationDefaults(t *testing.T) {
	p, err := ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	c := p.Costs
	if c.DiskRec != c.DiskCkpt {
		t.Error("RD != CD")
	}
	if c.MemRec != c.MemCkpt {
		t.Error("RM != CM")
	}
	if c.GuarVer != c.MemCkpt {
		t.Error("V* != CM")
	}
	if !xmath.Close(c.PartVer, c.GuarVer/100, 1e-12) {
		t.Error("V != V*/100")
	}
	if c.Recall != 0.8 {
		t.Error("r != 0.8")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("Summit"); err == nil {
		t.Error("unknown platform should fail")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("Names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
}

func TestMTBFDaysMatchPaper(t *testing.T) {
	// §6.2.1: Hera 12.2 days fail-stop / 3.4 days silent;
	// Coastal 28.8 days fail-stop / 5.8 days silent.
	hera, _ := ByName("Hera")
	if d := hera.FailStopMTBFDays(); math.Abs(d-12.2) > 0.1 {
		t.Errorf("Hera fail-stop MTBF = %v days, want ~12.2", d)
	}
	if d := hera.SilentMTBFDays(); math.Abs(d-3.4) > 0.05 {
		t.Errorf("Hera silent MTBF = %v days, want ~3.4", d)
	}
	coastal, _ := ByName("Coastal")
	if d := coastal.FailStopMTBFDays(); math.Abs(d-28.8) > 0.1 {
		t.Errorf("Coastal fail-stop MTBF = %v days, want ~28.8", d)
	}
	if d := coastal.SilentMTBFDays(); math.Abs(d-5.8) > 0.1 {
		t.Errorf("Coastal silent MTBF = %v days, want ~5.8", d)
	}
	// Atlas ~22 days (§6.2.5).
	atlas, _ := ByName("Atlas")
	if d := atlas.FailStopMTBFDays(); math.Abs(d-22.3) > 0.2 {
		t.Errorf("Atlas fail-stop MTBF = %v days, want ~22.3", d)
	}
}

func TestPerNodeMTBFMatchesPaper(t *testing.T) {
	// §6.3.1: Hera per-node MTBF is 8.57 years fail-stop, 2.4 years
	// silent.
	hera, _ := ByName("Hera")
	fs, s := hera.PerNodeMTBFYears()
	if math.Abs(fs-8.57) > 0.03 {
		t.Errorf("per-node fail-stop MTBF = %v years, want ~8.57", fs)
	}
	if math.Abs(s-2.4) > 0.01 {
		t.Errorf("per-node silent MTBF = %v years, want ~2.4", s)
	}
}

func TestWeakScaleMatchesPaper(t *testing.T) {
	// §6.3.1: at 2^17 nodes the fail-stop MTBF is ~2064 s and the
	// silent MTBF ~577 s.
	hera, _ := ByName("Hera")
	big, err := hera.WeakScale(1 << 17)
	if err != nil {
		t.Fatal(err)
	}
	if mtbf := 1 / big.Rates.FailStop; math.Abs(mtbf-2064) > 10 {
		t.Errorf("fail-stop MTBF at 2^17 nodes = %v s, want ~2064", mtbf)
	}
	if mtbf := 1 / big.Rates.Silent; math.Abs(mtbf-577) > 4 {
		t.Errorf("silent MTBF at 2^17 nodes = %v s, want ~577", mtbf)
	}
	// Costs are unchanged under the weak-scaling assumption.
	if big.Costs != hera.Costs {
		t.Error("weak scaling must not change costs")
	}
	if big.Nodes != 1<<17 {
		t.Errorf("Nodes = %d", big.Nodes)
	}
	if _, err := hera.WeakScale(0); err == nil {
		t.Error("scaling to 0 nodes should fail")
	}
}

func TestWeakScaleIdentity(t *testing.T) {
	hera, _ := ByName("Hera")
	same, err := hera.WeakScale(hera.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.Close(same.Rates.FailStop, hera.Rates.FailStop, 1e-12) ||
		!xmath.Close(same.Rates.Silent, hera.Rates.Silent, 1e-12) {
		t.Error("weak scaling to the same node count changed rates")
	}
}

func TestWithDiskCost(t *testing.T) {
	hera, _ := ByName("Hera")
	cheap := hera.WithDiskCost(90)
	if cheap.Costs.DiskCkpt != 90 || cheap.Costs.DiskRec != 90 {
		t.Errorf("WithDiskCost: %+v", cheap.Costs)
	}
	if cheap.Costs.MemCkpt != hera.Costs.MemCkpt {
		t.Error("WithDiskCost changed CM")
	}
	if hera.Costs.DiskCkpt != 300 {
		t.Error("WithDiskCost mutated the receiver")
	}
}

func TestWithMemCost(t *testing.T) {
	hera, _ := ByName("Hera")
	p := hera.WithMemCost(15)
	if p.Costs.MemCkpt != 15 || p.Costs.MemRec != 15 || p.Costs.GuarVer != 15 {
		t.Errorf("WithMemCost: %+v", p.Costs)
	}
	if !xmath.Close(p.Costs.PartVer, 0.15, 1e-12) {
		t.Errorf("V = %v, want 0.15", p.Costs.PartVer)
	}
	if p.Costs.DiskCkpt != 300 {
		t.Error("WithMemCost changed CD")
	}
}

func TestScaleRates(t *testing.T) {
	hera, _ := ByName("Hera")
	s := hera.ScaleRates(2, 0.5)
	if !xmath.Close(s.Rates.FailStop, 2*hera.Rates.FailStop, 1e-15) {
		t.Error("fail-stop scale wrong")
	}
	if !xmath.Close(s.Rates.Silent, 0.5*hera.Rates.Silent, 1e-15) {
		t.Error("silent scale wrong")
	}
}

func TestZeroRateMTBFs(t *testing.T) {
	p := Platform{Name: "x", Nodes: 1, Costs: Table2()[0].Costs}
	if !math.IsInf(p.FailStopMTBFDays(), 1) || !math.IsInf(p.SilentMTBFDays(), 1) {
		t.Error("zero rates should give infinite MTBF")
	}
}
