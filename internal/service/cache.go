package service

import (
	"container/list"
	"context"
	"sync"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/multilevel"
	"respat/internal/obs"
)

// cache is the sharded LRU plan cache with singleflight request
// coalescing. Values are fully marshalled JSON response bodies, so a
// cache hit serves exactly the bytes a cold computation produced (the
// cache is a pure memo; see DESIGN.md §3).
//
// Sharding serves two purposes: it splits the lock so unrelated
// configurations do not contend, and it pins every configuration to one
// shard (the key hash is deterministic), which lets each shard keep a
// reusable *analytic.Evaluator warm for the configuration it last
// served without violating the evaluator's not-concurrency-safe
// contract.
type cache struct {
	shards []shard
	mask   uint64 // len(shards) - 1; len is a power of two
	m      *Metrics
}

// shard is one lock domain of the cache.
type shard struct {
	mu       sync.Mutex
	entries  map[Key]*list.Element // key -> element whose Value is *entry
	lru      *list.List            // front = most recently used
	capacity int                   // max entries; > 0
	inflight map[Key]*flight

	// evalMu serialises use of the shard's reusable evaluators.
	// Neither analytic.Evaluator nor multilevel.Evaluator is safe for
	// concurrent use; holding evalMu for the whole computation honours
	// that contract while letting other shards compute in parallel.
	evalMu    sync.Mutex
	evalCosts core.Costs
	evalRates core.Rates
	eval      *analytic.Evaluator
	// mlKey identifies the configuration of the warm multilevel
	// planner (Params holds a slice, so the canonical cache key is
	// the equality witness).
	mlKey     Key
	mlPlanner *multilevel.Planner
}

// entry is one cached response.
type entry struct {
	key  Key
	resp []byte
}

// flight is one in-progress computation that concurrent requests for
// the same key coalesce onto. The computation runs in its own
// goroutine under a flight-owned context that is cancelled when the
// last interested request abandons (refs drops to zero) — an orphaned
// cold plan stops searching instead of burning a worker slot for a
// response nobody will read.
type flight struct {
	done   chan struct{} // closed when the computation finished
	cancel context.CancelFunc
	refs   int // interested waiters; guarded by the shard mutex
	resp   []byte
	err    error
}

// newCache builds a cache with shardCount shards (rounded up to a power
// of two) and capacity total entries spread evenly across shards.
func newCache(shardCount, capacity int, m *Metrics) *cache {
	if shardCount < 1 {
		shardCount = 1
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &cache{shards: make([]shard, n), mask: uint64(n - 1), m: m}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*list.Element)
		c.shards[i].lru = list.New()
		c.shards[i].capacity = perShard
		c.shards[i].inflight = make(map[Key]*flight)
	}
	return c
}

// shard returns the shard owning key.
func (c *cache) shard(key Key) *shard {
	return &c.shards[key.hash()&c.mask]
}

// len returns the total number of cached entries (for the metrics
// endpoint; takes every shard lock in turn).
func (c *cache) len() int {
	var n int
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// get returns the cached response for key, refreshing its LRU position.
// It is the allocation-free hot path: one map lookup plus a list splice.
func (c *cache) get(key Key) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		resp := el.Value.(*entry).resp
		s.mu.Unlock()
		c.m.Hits.Add(1)
		return resp, true
	}
	s.mu.Unlock()
	return nil, false
}

// getOrCompute returns the cached response for key, coalescing
// concurrent misses: among racing requests for the same key exactly one
// starts compute (in a flight-owned goroutine); the rest wait for its
// result. A successful result is inserted into the LRU before the
// waiters are released; errors — including cancellations — are never
// cached. Every waiter waits under its own ctx: a request whose
// deadline expires abandons the flight (returning ctx.Err()) without
// disturbing the other waiters, and when the last waiter abandons, the
// flight's context is cancelled so compute can stop early. The
// returned bytes are shared and must be treated as read-only.
func (c *cache) getOrCompute(ctx context.Context, key Key, compute func(context.Context) ([]byte, error)) ([]byte, error) {
	s := c.shard(key)
	for {
		s.mu.Lock()
		if el, ok := s.entries[key]; ok {
			s.lru.MoveToFront(el)
			resp := el.Value.(*entry).resp
			s.mu.Unlock()
			c.m.Hits.Add(1)
			return resp, nil
		}
		if f, ok := s.inflight[key]; ok {
			if f.refs > 0 {
				f.refs++
				s.mu.Unlock()
				c.m.Coalesced.Add(1)
				return f.wait(ctx, s)
			}
			// Dying flight: every waiter abandoned and cancellation is
			// in progress. Joining it would only inherit the stale
			// cancellation error, so wait for it to clear and retry.
			s.mu.Unlock()
			select {
			case <-f.done:
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		// The flight context descends from Background (the computation
		// outlives any one waiter) but carries the leader's trace, so
		// the gate and compute spans recorded inside the flight
		// goroutine land on the request that started it. Spans arriving
		// after that trace finished — the leader abandoned — are
		// dropped by the trace itself.
		fctx, cancel := context.WithCancel(obs.NewContext(context.Background(), obs.FromContext(ctx)))
		f := &flight{done: make(chan struct{}), cancel: cancel, refs: 1}
		s.inflight[key] = f
		s.mu.Unlock()
		c.m.Misses.Add(1)
		go c.run(s, key, f, fctx, compute)
		return f.wait(ctx, s)
	}
}

// run executes one flight's computation and publishes the outcome.
func (c *cache) run(s *shard, key Key, f *flight, fctx context.Context, compute func(context.Context) ([]byte, error)) {
	resp, err := compute(fctx)
	f.cancel() // release the flight context's resources
	s.mu.Lock()
	f.resp, f.err = resp, err
	delete(s.inflight, key)
	if err == nil {
		c.m.Evictions.Add(int64(s.insertLocked(key, resp)))
	}
	s.mu.Unlock()
	close(f.done)
}

// wait blocks until the flight finishes or ctx is done, whichever
// comes first. An abandoning waiter drops its reference; the last one
// out cancels the flight's computation.
func (f *flight) wait(ctx context.Context, s *shard) ([]byte, error) {
	select {
	case <-f.done:
		return f.resp, f.err
	case <-ctx.Done():
		s.mu.Lock()
		f.refs--
		last := f.refs == 0
		s.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, ctx.Err()
	}
}

// insertLocked adds a response under s.mu, evicting least recently used
// entries while the shard is over capacity, and reports how many were
// evicted.
func (s *shard) insertLocked(key Key, resp []byte) int {
	if el, ok := s.entries[key]; ok {
		// Unreachable today (inflight serialises inserts per key) but
		// kept so a future writer cannot corrupt the LRU by double
		// insertion: refresh instead.
		el.Value.(*entry).resp = resp
		s.lru.MoveToFront(el)
		return 0
	}
	s.entries[key] = s.lru.PushFront(&entry{key: key, resp: resp})
	var evicted int
	for s.lru.Len() > s.capacity {
		tail := s.lru.Back()
		s.lru.Remove(tail)
		delete(s.entries, tail.Value.(*entry).key)
		evicted++
	}
	return evicted
}

// withEvaluator runs fn with the shard's reusable evaluator for
// (costs, rates), rebuilding it only when the configuration changed
// since the shard's last computation. The evaluator lock is held for
// the duration of fn.
func (s *shard) withEvaluator(costs core.Costs, rates core.Rates, fn func(*analytic.Evaluator) error) error {
	s.evalMu.Lock()
	defer s.evalMu.Unlock()
	if s.eval == nil || s.evalCosts != costs || s.evalRates != rates {
		ev, err := analytic.NewEvaluator(costs, rates)
		if err != nil {
			return err
		}
		s.eval, s.evalCosts, s.evalRates = ev, costs, rates
	}
	return fn(s.eval)
}

// withMultilevelPlanner is withEvaluator for the multilevel planner:
// the shard keeps one multilevel.Planner — and through it the memoized
// evaluator, the worker-context pool and the search scratch — warm for
// the configuration it last served, identified by its canonical key.
func (s *shard) withMultilevelPlanner(key Key, p multilevel.Params, fn func(*multilevel.Planner) error) error {
	s.evalMu.Lock()
	defer s.evalMu.Unlock()
	if s.mlPlanner == nil || s.mlKey != key {
		pl, err := multilevel.NewPlanner(p)
		if err != nil {
			return err
		}
		s.mlPlanner, s.mlKey = pl, key
	}
	return fn(s.mlPlanner)
}
