package service

import (
	"encoding/binary"
	"math"

	"respat/internal/core"
)

// Mode distinguishes the cacheable operations sharing the plan cache.
// It is the first byte of every cache key, so first-order and
// exact-model plans for the same configuration never collide.
type Mode byte

// The service operations. ModeEvaluate never enters the cache (its
// input includes an arbitrary pattern); its keys are used only to route
// a request to a shard, so evaluator reuse still applies.
const (
	ModePlan Mode = iota
	ModePlanExact
	ModeEvaluate
)

// String names the mode as it appears in the HTTP API.
func (m Mode) String() string {
	switch m {
	case ModePlan:
		return "plan"
	case ModePlanExact:
		return "plan_exact"
	case ModeEvaluate:
		return "evaluate"
	default:
		return "unknown"
	}
}

// KeySize is the byte length of a cache key: one mode byte, one family
// byte, then the nine float64 parameters of (Costs, Rates) as fixed
// 8-byte fields.
const KeySize = 2 + 9*8

// Key is the canonical cache key of a (mode, family, Costs, Rates)
// configuration. It is a fixed-size value type, so it can be a map key
// and built on the stack without allocating.
//
// Canonical encoding contract: every float64 is stored as the
// big-endian bytes of its IEEE-754 bit pattern — a fixed-width binary
// field, never a formatted decimal — after normalising negative zero
// to positive zero. Equal (Mode, Kind, Costs, Rates) values therefore
// always produce identical key bytes, and any change to any field
// changes the key (the encoding is injective on the validated domain:
// validation rejects NaNs, so the only two bit patterns comparing equal
// are ±0, which the normalisation merges).
type Key [KeySize]byte

// EncodeKey builds the canonical key of (mode, kind, costs, rates).
// Callers must ensure kind.Valid() (the kind is truncated to one byte)
// and validate costs and rates; EncodeKey itself never fails.
func EncodeKey(mode Mode, kind core.Kind, c core.Costs, r core.Rates) Key {
	var k Key
	k[0] = byte(mode)
	k[1] = byte(kind)
	fields := [9]float64{
		c.DiskCkpt, c.MemCkpt, c.DiskRec, c.MemRec,
		c.GuarVer, c.PartVer, c.Recall,
		r.FailStop, r.Silent,
	}
	for i, f := range fields {
		if f == 0 {
			f = 0 // normalise -0.0 to +0.0
		}
		binary.BigEndian.PutUint64(k[2+8*i:], math.Float64bits(f))
	}
	return k
}

// hash returns the FNV-1a 64-bit hash of the key bytes, used to select
// a cache shard. It is deterministic across processes and allocates
// nothing.
func (k Key) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range k {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
