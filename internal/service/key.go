package service

import (
	"encoding/binary"
	"math"

	"respat/internal/core"
	"respat/internal/multilevel"
)

// Mode distinguishes the cacheable operations sharing the plan cache.
// It is the first byte of every cache key, so first-order, exact-model
// and multilevel plans for the same configuration never collide.
type Mode byte

// The service operations. ModeEvaluate never enters the cache (its
// input includes an arbitrary pattern); its keys are used only to route
// a request to a shard, so evaluator reuse still applies.
const (
	ModePlan Mode = iota
	ModePlanExact
	ModeEvaluate
	ModePlanMultilevel
)

// String names the mode as it appears in the HTTP API.
func (m Mode) String() string {
	switch m {
	case ModePlan:
		return "plan"
	case ModePlanExact:
		return "plan_exact"
	case ModeEvaluate:
		return "evaluate"
	case ModePlanMultilevel:
		return "plan_multilevel"
	default:
		return "unknown"
	}
}

// Key layout: one mode byte, one discriminator byte (the pattern
// family for the single-level modes, the hierarchy depth L for the
// multilevel mode), then the payload as fixed 8-byte float fields.
// The single-level payload is the nine float64 parameters of
// (Costs, Rates); the multilevel payload is the level vector padded to
// MaxLevels (3 floats per level), the five scalar parameters and the
// family flag byte. KeySize is the maximum of the two; shorter
// payloads are zero-padded, which cannot collide across modes (byte 0)
// or across hierarchy depths (byte 1 pins how many level slots are
// meaningful).
const (
	singleLevelFloats = 9
	multilevelFloats  = 3*multilevel.MaxLevels + 5
	// KeySize is the byte length of a cache key.
	KeySize = 2 + 8*multilevelFloats + 1
)

// Key is the canonical cache key of a service configuration. It is a
// fixed-size value type, so it can be a map key and built on the stack
// without allocating.
//
// Canonical encoding contract: every float64 is stored as the
// big-endian bytes of its IEEE-754 bit pattern — a fixed-width binary
// field, never a formatted decimal — after normalising negative zero
// to positive zero. Equal configurations therefore always produce
// identical key bytes, and any change to any field changes the key
// (the encoding is injective on the validated domain: validation
// rejects NaNs, so the only two bit patterns comparing equal are ±0,
// which the normalisation merges).
type Key [KeySize]byte

// putFloat writes f at offset off with the -0 normalisation.
func (k *Key) putFloat(off int, f float64) {
	if f == 0 {
		f = 0 // normalise -0.0 to +0.0
	}
	binary.BigEndian.PutUint64(k[off:], math.Float64bits(f))
}

// EncodeKey builds the canonical key of (mode, kind, costs, rates) for
// the single-level operations. Callers must ensure kind.Valid() (the
// kind is truncated to one byte) and validate costs and rates;
// EncodeKey itself never fails.
func EncodeKey(mode Mode, kind core.Kind, c core.Costs, r core.Rates) Key {
	var k Key
	k[0] = byte(mode)
	k[1] = byte(kind)
	fields := [singleLevelFloats]float64{
		c.DiskCkpt, c.MemCkpt, c.DiskRec, c.MemRec,
		c.GuarVer, c.PartVer, c.Recall,
		r.FailStop, r.Silent,
	}
	for i, f := range fields {
		k.putFloat(2+8*i, f)
	}
	return k
}

// EncodeMultilevelKey builds the canonical key of a multilevel-plan
// configuration: the level vector (C_l, R_l, q_l per level, unused
// slots zero), the verification scalars, the rates and the
// interior-family flag. Callers must validate p first (validation
// bounds the hierarchy at MaxLevels, which sizes the key).
func EncodeMultilevelKey(p multilevel.Params) Key {
	var k Key
	k[0] = byte(ModePlanMultilevel)
	k[1] = byte(len(p.Levels))
	off := 2
	for _, l := range p.Levels {
		k.putFloat(off, l.Ckpt)
		k.putFloat(off+8, l.Rec)
		k.putFloat(off+16, l.Share)
		off += 24
	}
	off = 2 + 24*multilevel.MaxLevels
	for _, f := range [5]float64{p.GuarVer, p.PartVer, p.Recall, p.Rates.FailStop, p.Rates.Silent} {
		k.putFloat(off, f)
		off += 8
	}
	if p.InteriorGuaranteed {
		k[off] = 1
	}
	return k
}

// hash returns the FNV-1a 64-bit hash of the key bytes, used to select
// a cache shard. It is deterministic across processes and allocates
// nothing.
func (k Key) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range k {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
