package service

// Distributed serving (DESIGN.md §2.9): a consistent-hash ring over N
// respatd replicas partitions the cacheable plan key space. Every
// replica answers any request; a request whose canonical cache key is
// owned by a peer is forwarded there (one hop, loop-guarded by
// ForwardedHeader) and the peer's response bytes are relayed
// verbatim, so a plan is byte-identical no matter which replica a
// client happens to hit while each key is computed and cached exactly
// once cluster-wide.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"respat/internal/cluster"
	"respat/internal/obs"
)

// ForwardedHeader marks a peer-forwarded request. Its value is the
// forwarding replica's name. A replica receiving it always serves
// locally — never forwards again — which caps any request at one hop
// even when two replicas momentarily disagree about the membership.
const ForwardedHeader = "X-Respat-Forwarded"

// Member names one replica of a respatd cluster and its base URL
// (scheme://host:port, no trailing slash).
type Member struct {
	Name string
	URL  string
}

// ClusterConfig wires a Service into a consistent-hash replica group.
// Self, the member set, VNodes and Seed must agree across replicas —
// the ring is a pure function of (Seed, VNodes, members), so agreeing
// replicas route every key identically.
type ClusterConfig struct {
	// Self is this replica's name; it must appear in Members (its URL
	// entry is unused).
	Self string
	// Members is the full replica set, including self.
	Members []Member
	// VNodes is the virtual-node count per member (default
	// cluster.DefaultVNodes).
	VNodes int
	// Seed drives virtual-node placement (default 1).
	Seed uint64
	// Transport carries peer forwards and health probes (default
	// http.DefaultTransport). Tests inject an in-process transport.
	Transport http.RoundTripper
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
}

// clusterState is the service's view of the replica group. The ring
// pointer is swapped atomically on membership change so the
// per-request owner lookup takes no lock.
type clusterState struct {
	self         string
	urls         map[string]string // member name -> base URL
	client       *http.Client
	probeTimeout time.Duration
	vnodes       int
	seed         uint64

	ring atomic.Pointer[cluster.Ring]

	mu   sync.Mutex
	down map[string]bool // peers failing their health probe
}

// EnableCluster joins the service to a replica group. Call it once,
// after New and before serving; it is not safe to call concurrently
// with request handling.
func (s *Service) EnableCluster(cfg ClusterConfig) error {
	if s.clu != nil {
		return errors.New("service: cluster already enabled")
	}
	if cfg.Self == "" {
		return errors.New("service: cluster config needs Self")
	}
	names := make([]string, 0, len(cfg.Members))
	urls := make(map[string]string, len(cfg.Members))
	selfSeen := false
	for _, m := range cfg.Members {
		if m.Name == "" {
			return errors.New("service: cluster member with empty name")
		}
		if _, dup := urls[m.Name]; dup {
			return fmt.Errorf("service: duplicate cluster member %q", m.Name)
		}
		if m.Name == cfg.Self {
			selfSeen = true
		} else if m.URL == "" {
			return fmt.Errorf("service: cluster member %q needs a URL", m.Name)
		}
		urls[m.Name] = m.URL
		names = append(names, m.Name)
	}
	if !selfSeen {
		return fmt.Errorf("service: self %q is not a cluster member", cfg.Self)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ring, err := cluster.New(cfg.Seed, cfg.VNodes, names)
	if err != nil {
		return err
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = 2 * time.Second
	}
	c := &clusterState{
		self:         cfg.Self,
		urls:         urls,
		client:       &http.Client{Transport: transport},
		probeTimeout: probeTimeout,
		vnodes:       cfg.VNodes,
		seed:         cfg.Seed,
		down:         make(map[string]bool),
	}
	c.ring.Store(ring)
	s.clu = c
	return nil
}

// Owner returns the replica owning key under the current ring view,
// or "" when clustering is off. Tests and operators use it to map a
// configuration to its serving replica.
func (s *Service) Owner(key Key) string {
	c := s.clu
	if c == nil {
		return ""
	}
	return c.ring.Load().Route(key[:])
}

// routePeer decides whether the request for key must be forwarded:
// clustering on, request not already forwarded (the single-hop loop
// guard), and the key owned by a peer under the current ring view.
// Peers the health checker marked down have already left the ring, so
// their former key ranges route to the survivors.
func (s *Service) routePeer(r *http.Request, key Key) (name, baseURL string, ok bool) {
	c := s.clu
	if c == nil || r.Header.Get(ForwardedHeader) != "" {
		return "", "", false
	}
	owner := c.ring.Load().Route(key[:])
	if owner == "" || owner == c.self {
		return "", "", false
	}
	return owner, c.urls[owner], true
}

// forward proxies one plan request to the owning peer and relays its
// response verbatim: the exact body bytes (so a forwarded answer is
// byte-identical to one served by the owner directly), the status,
// the overload outcome label and any Retry-After advice. A transport
// failure — the window between a replica dying and the next health
// check removing it from the ring — maps to 502 for that replica's
// key range; every other range is unaffected.
func (s *Service) forward(ctx context.Context, name, baseURL, path string, body []byte, d *disposition) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("cluster: building forward to %s: %w", name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, s.clu.self)
	// A sampled request ships its trace ID with the hop; the peer's
	// tracer records its half of the trace under the same forced ID, so
	// /debug/traces on both replicas join on one ID.
	tr := obs.FromContext(ctx)
	if id := tr.ID(); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	hop := tr.Begin(obs.StagePeerForward)
	resp, err := s.clu.client.Do(req)
	if err != nil {
		hop.EndPeer("error", name, "")
		s.metrics.ForwardErrors.Add(1)
		return nil, http.StatusBadGateway, fmt.Errorf("cluster: forward to %s: %w", name, err)
	}
	defer resp.Body.Close()
	relayed, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	if err != nil {
		hop.EndPeer("error", name, "")
		s.metrics.ForwardErrors.Add(1)
		return nil, http.StatusBadGateway, fmt.Errorf("cluster: reading %s's response: %w", name, err)
	}
	// The hop span stores the peer's Server-Timing verbatim: the remote
	// half of the stitched trace, attributable without a second lookup.
	hop.EndPeer("ok", name, resp.Header.Get("Server-Timing"))
	s.metrics.Forwarded.Add(1)
	d.out = outcome(resp.Header.Get(OutcomeHeader))
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil {
			d.retryAfter = sec
		}
	}
	// writeBytes terminates every response with a newline; the entry
	// replica will append its own, so strip the owner's.
	return bytes.TrimSuffix(relayed, []byte("\n")), resp.StatusCode, nil
}

// CheckPeerHealth probes every peer's /healthz once and, when the
// healthy set changed, rebuilds the ring over the surviving members —
// the deterministic rebalance: every replica probing the same outcome
// converges on the same ring. It returns the probe outcome per peer.
// cmd/respatd runs it on a ticker (-health-interval); tests call it
// directly after injecting failures.
func (s *Service) CheckPeerHealth(ctx context.Context) map[string]bool {
	c := s.clu
	if c == nil {
		return nil
	}
	healthy := make(map[string]bool, len(c.urls)-1)
	for name, url := range c.urls {
		if name == c.self {
			continue
		}
		healthy[name] = c.probe(ctx, url)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	changed := false
	for name, up := range healthy {
		if c.down[name] == up { // state flip: down peer answered, or up peer failed
			changed = true
			if up {
				delete(c.down, name)
			} else {
				c.down[name] = true
			}
		}
	}
	if changed {
		members := make([]string, 0, len(c.urls))
		for name := range c.urls {
			if !c.down[name] {
				members = append(members, name)
			}
		}
		// Self is always a member, so the rebuild cannot fail.
		if ring, err := cluster.New(c.seed, c.vnodes, members); err == nil {
			c.ring.Store(ring)
		}
	}
	return healthy
}

// probe checks one peer's liveness endpoint.
func (c *clusterState) probe(ctx context.Context, baseURL string) bool {
	pctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// peersDown counts peers currently excluded from the ring (the
// /metrics gauge).
func (s *Service) peersDown() int {
	c := s.clu
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.down)
}
