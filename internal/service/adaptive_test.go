package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"respat/internal/core"
	"respat/internal/platform"
)

func deletePath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodDelete, path, nil))
	return w
}

// observeBody builds an ObserveRequest body feeding events at a fixed
// rate over one exposure window.
func observeBody(session string, create bool, fsEvents, silEvents int64, exposure float64) string {
	cfg := ""
	if create {
		cfg = `"kind":"PDMV","platform":"Hera",`
	}
	return fmt.Sprintf(`{"session":%q,%s"failstop":{"events":%d,"exposure":%g},"silent":{"events":%d,"exposure":%g}}`,
		session, cfg, fsEvents, exposure, silEvents, exposure)
}

func TestObserveAdaptiveRoundTrip(t *testing.T) {
	h := New(Config{}).Handler()

	// Create the session with its first (empty) observation.
	w := postJSON(t, h, "/v1/observe", `{"session":"exp","kind":"PDMV","platform":"Hera"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("create: status %d body %s", w.Code, w.Body)
	}
	var first ObserveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	prior := first.Rates

	// Hera's rates are ~1e-7; feed windows at ~100x those rates. The
	// fitted rates must move away from the prior.
	var last ObserveResponse
	for i := 0; i < 40; i++ {
		w := postJSON(t, h, "/v1/observe", observeBody("exp", false, 2, 2, 2e5))
		if w.Code != http.StatusOK {
			t.Fatalf("observe %d: status %d body %s", i, w.Code, w.Body)
		}
		if err := json.Unmarshal(w.Body.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
	}
	if last.Rates.FailStop <= prior.FailStop || last.Rates.Silent <= prior.Silent {
		t.Fatalf("observations did not move the fitted rates: prior %+v, fitted %+v", prior, last.Rates)
	}
	if last.Swaps < 1 {
		t.Fatalf("no plan swap after a 100x rate shift (response %+v)", last)
	}

	// GET /v1/adaptive: the embedded plan must be byte-for-byte what a
	// cold /v1/plan at the fitted rates returns.
	g := getPath(t, h, "/v1/adaptive?session=exp")
	if g.Code != http.StatusOK {
		t.Fatalf("adaptive: status %d body %s", g.Code, g.Body)
	}
	var ar AdaptiveResponse
	if err := json.Unmarshal(g.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Kind != "PDMV" || ar.Observations != last.Observations || ar.Swaps != last.Swaps {
		t.Fatalf("adaptive state %+v inconsistent with last observe %+v", ar, last)
	}
	cold := New(Config{}) // fresh service: a genuinely cold computation
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	coldBytes, err := cold.Plan(core.PDMV, hera.Costs, ar.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(ar.Plan), coldBytes) {
		t.Fatalf("adaptive plan bytes differ from cold Optimal at fitted rates:\n%s\n%s", ar.Plan, coldBytes)
	}
}

func TestAdaptivePlanServedThroughCache(t *testing.T) {
	svc := New(Config{})
	h := svc.Handler()
	postJSON(t, h, "/v1/observe", `{"session":"exp","kind":"PD","platform":"Hera"}`)

	// Two consecutive GETs at unchanged rates: the second must hit the
	// plan cache, not recompute.
	if w := getPath(t, h, "/v1/adaptive?session=exp"); w.Code != http.StatusOK {
		t.Fatalf("first GET: status %d body %s", w.Code, w.Body)
	}
	misses := svc.Metrics().Misses.Load()
	hits := svc.Metrics().Hits.Load()
	if w := getPath(t, h, "/v1/adaptive?session=exp"); w.Code != http.StatusOK {
		t.Fatalf("second GET: status %d body %s", w.Code, w.Body)
	}
	if got := svc.Metrics().Misses.Load(); got != misses {
		t.Fatalf("second GET recomputed the plan (misses %d -> %d)", misses, got)
	}
	if got := svc.Metrics().Hits.Load(); got != hits+1 {
		t.Fatalf("second GET did not hit the cache (hits %d -> %d)", hits, got)
	}
}

func TestObserveSessionLifecycleErrors(t *testing.T) {
	h := New(Config{MaxSessions: 1}).Handler()

	// Unknown session without a configuration.
	if w := postJSON(t, h, "/v1/observe", `{"session":"nope","failstop":{"events":1,"exposure":10}}`); w.Code != http.StatusBadRequest {
		t.Fatalf("unconfigured create: status %d, want 400", w.Code)
	}
	// Missing session id.
	if w := postJSON(t, h, "/v1/observe", `{"kind":"PD","platform":"Hera"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("missing session id: status %d, want 400", w.Code)
	}
	// Create, then contradict the configuration.
	if w := postJSON(t, h, "/v1/observe", `{"session":"a","kind":"PD","platform":"Hera"}`); w.Code != http.StatusOK {
		t.Fatalf("create: status %d body %s", w.Code, w.Body)
	}
	if w := postJSON(t, h, "/v1/observe", `{"session":"a","kind":"PDMV"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("kind mismatch: status %d, want 400", w.Code)
	}
	if w := postJSON(t, h, "/v1/observe", `{"session":"a","kind":"PD","platform":"Atlas"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("platform mismatch: status %d, want 400", w.Code)
	}
	// Tuning fields are creation-only: reconfiguration attempts fail
	// loudly instead of being silently ignored, while replaying the
	// session's effective tuning is accepted.
	if w := postJSON(t, h, "/v1/observe", `{"session":"a","regretThreshold":0.2}`); w.Code != http.StatusBadRequest {
		t.Fatalf("tuning after creation: status %d, want 400", w.Code)
	}
	if w := postJSON(t, h, "/v1/observe", `{"session":"a","regretThreshold":0.05,"minObservations":4}`); w.Code != http.StatusOK {
		t.Fatalf("replayed tuning: status %d body %s, want 200", w.Code, w.Body)
	}
	// Stating the effective defaults explicitly is a replay too: the
	// stored config is the completed one, not the raw creation request.
	if w := postJSON(t, h, "/v1/observe", `{"session":"a","window":16}`); w.Code != http.StatusOK {
		t.Fatalf("replayed effective default window: status %d body %s, want 200", w.Code, w.Body)
	}
	// Session table full.
	if w := postJSON(t, h, "/v1/observe", `{"session":"b","kind":"PD","platform":"Hera"}`); w.Code != http.StatusTooManyRequests {
		t.Fatalf("table overflow: status %d, want 429", w.Code)
	}
	// GET/DELETE of unknown sessions.
	if w := getPath(t, h, "/v1/adaptive?session=nope"); w.Code != http.StatusNotFound {
		t.Fatalf("GET unknown: status %d, want 404", w.Code)
	}
	if w := getPath(t, h, "/v1/adaptive"); w.Code != http.StatusBadRequest {
		t.Fatalf("GET without session: status %d, want 400", w.Code)
	}
	if w := deletePath(t, h, "/v1/adaptive?session=nope"); w.Code != http.StatusNotFound {
		t.Fatalf("DELETE unknown: status %d, want 404", w.Code)
	}
	// DELETE frees a slot.
	if w := deletePath(t, h, "/v1/adaptive?session=a"); w.Code != http.StatusOK {
		t.Fatalf("DELETE: status %d body %s", w.Code, w.Body)
	}
	if w := postJSON(t, h, "/v1/observe", `{"session":"b","kind":"PD","platform":"Hera"}`); w.Code != http.StatusOK {
		t.Fatalf("create after delete: status %d body %s", w.Code, w.Body)
	}
}

func TestObserveRejectedCreateLeavesNoSession(t *testing.T) {
	h := New(Config{MaxSessions: 1}).Handler()
	// A session-creating request carrying an invalid observation must
	// fail without leaving the session behind or consuming the slot.
	if w := postJSON(t, h, "/v1/observe", `{"session":"x","kind":"PD","platform":"Hera","failstop":{"events":1,"exposure":0}}`); w.Code != http.StatusBadRequest {
		t.Fatalf("invalid create: status %d, want 400", w.Code)
	}
	// Windows above the HTTP-layer cap are rejected before allocation:
	// the bound that matters is window x MaxSessions in aggregate.
	if w := postJSON(t, h, "/v1/observe", `{"session":"x","kind":"PD","platform":"Hera","window":65536}`); w.Code != http.StatusBadRequest {
		t.Fatalf("oversized window: status %d, want 400", w.Code)
	}
	if w := getPath(t, h, "/v1/adaptive?session=x"); w.Code != http.StatusNotFound {
		t.Fatalf("rejected create left a session behind: status %d, want 404", w.Code)
	}
	if w := postJSON(t, h, "/v1/observe", `{"session":"y","kind":"PD","platform":"Hera"}`); w.Code != http.StatusOK {
		t.Fatalf("slot leaked by rejected create: status %d body %s", w.Code, w.Body)
	}
}

func TestMetricsCountAdaptiveEndpoints(t *testing.T) {
	svc := New(Config{})
	h := svc.Handler()
	postJSON(t, h, "/v1/observe", `{"session":"m","kind":"PD","platform":"Hera"}`)
	getPath(t, h, "/v1/adaptive?session=m")

	w := getPath(t, h, "/metrics")
	var snap Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.AdaptiveSessions != 1 {
		t.Fatalf("adaptiveSessions = %d, want 1", snap.AdaptiveSessions)
	}
	if snap.Endpoints["observe"].Requests != 1 {
		t.Fatalf("observe requests = %d, want 1", snap.Endpoints["observe"].Requests)
	}
	if snap.Endpoints["adaptive"].Requests != 1 {
		t.Fatalf("adaptive requests = %d, want 1", snap.Endpoints["adaptive"].Requests)
	}
}
