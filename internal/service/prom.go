package service

import (
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"respat/internal/obs"
)

// buildVersion resolves the binary's module version once (the
// exposition is scraped continuously; ReadBuildInfo walks the whole
// build record).
var buildVersion = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
})

// WritePrometheus renders every service counter and gauge, the
// per-endpoint and per-stage latency histograms, and the Go runtime
// gauges in the Prometheus text exposition format (version 0.0.4),
// hand-rolled via obs.PromWriter — no client library. Families are
// emitted in fixed code order and endpoints/stages in declaration
// order, so the output is stable enough to golden-test and always
// passes obs.Lint. Served by GET /metrics?format=prometheus; the JSON
// snapshot remains the default format.
func (s *Service) WritePrometheus(w io.Writer) error {
	p := obs.NewPromWriter(w)
	m := &s.metrics

	// Build info first, the Prometheus convention for joinable metadata.
	p.Family("respat_build_info", "Build metadata; value is always 1.", "gauge")
	p.Sample("respat_build_info", []obs.Label{
		{Key: "version", Value: buildVersion()},
		{Key: "go", Value: runtime.Version()},
	}, 1)

	// Cache.
	p.Counter("respat_cache_hits_total", "Requests served from the plan cache.", float64(m.Hits.Load()))
	p.Counter("respat_cache_misses_total", "Requests that ran a cold computation.", float64(m.Misses.Load()))
	p.Counter("respat_cache_coalesced_total", "Requests coalesced onto an in-flight computation.", float64(m.Coalesced.Load()))
	p.Counter("respat_cache_evictions_total", "LRU entries displaced by inserts.", float64(m.Evictions.Load()))
	p.Gauge("respat_cache_entries", "Plans currently cached.", float64(s.cache.len()))

	// Admission / overload.
	p.Counter("respat_admitted_total", "Cold computations admitted through the gate.", float64(m.Admitted.Load()))
	p.Counter("respat_shed_total", "Cold computations shed by the full queue (HTTP 429).", float64(m.Shed.Load()))
	p.Counter("respat_degraded_total", "Requests answered by the first-order degraded plan.", float64(m.Degraded.Load()))
	p.Counter("respat_deadline_exceeded_total", "Requests that ran out of deadline budget (HTTP 503).", float64(m.DeadlineExceeded.Load()))
	p.Gauge("respat_cold_queue_depth", "Cold-plan computations waiting for a worker slot.", float64(s.gate.depth()))
	p.Gauge("respat_cold_queue_max", "High-water mark of the cold-plan wait queue.", float64(s.gate.maxDepth()))
	p.Gauge("respat_cold_plan_p90_seconds", "Observed cold-plan latency p90 feeding Retry-After.", s.gate.estimate())

	// Cluster.
	p.Counter("respat_forwarded_total", "Requests relayed to the key-owning peer.", float64(m.Forwarded.Load()))
	p.Counter("respat_forward_errors_total", "Peer relays that failed in transit (HTTP 502).", float64(m.ForwardErrors.Load()))
	p.Counter("respat_table_hits_total", "Exact-plan requests answered by plan-table interpolation.", float64(m.TableHits.Load()))
	p.Gauge("respat_peers_down", "Peers currently excluded from the ring by the health checker.", float64(s.peersDown()))

	// Sessions and in-flight work.
	p.Gauge("respat_in_flight", "HTTP requests currently being served.", float64(m.InFlight.Load()))
	p.Gauge("respat_adaptive_sessions", "Live adaptive re-planning sessions.", float64(s.SessionCount()))

	// Per-endpoint counters, the 4xx/5xx split, and latency histograms.
	// Iteration follows the endpointID declaration order, which is what
	// keeps the output byte-stable across scrapes.
	p.Family("respat_endpoint_requests_total", "Requests served, by endpoint.", "counter")
	for id := endpointID(0); id < epCount; id++ {
		p.Sample("respat_endpoint_requests_total",
			[]obs.Label{{Key: "endpoint", Value: id.String()}},
			float64(s.metrics.endpoints[id].requests.Load()))
	}
	p.Family("respat_endpoint_errors_total", "Error responses, by endpoint and class (4xx client, 5xx server).", "counter")
	for id := endpointID(0); id < epCount; id++ {
		e := &s.metrics.endpoints[id]
		p.Sample("respat_endpoint_errors_total",
			[]obs.Label{{Key: "endpoint", Value: id.String()}, {Key: "class", Value: "4xx"}},
			float64(e.errors4xx.Load()))
		p.Sample("respat_endpoint_errors_total",
			[]obs.Label{{Key: "endpoint", Value: id.String()}, {Key: "class", Value: "5xx"}},
			float64(e.errors5xx.Load()))
	}
	p.Family("respat_endpoint_latency_seconds", "Request latency, by endpoint (all requests).", "histogram")
	for id := endpointID(0); id < epCount; id++ {
		p.Hist("respat_endpoint_latency_seconds",
			[]obs.Label{{Key: "endpoint", Value: id.String()}},
			s.metrics.endpoints[id].hist.Snapshot())
	}

	// Tracing: sampler counters and per-stage histograms (sampled
	// requests only — stage durations are recorded by span completion).
	p.Counter("respat_traces_sampled_total", "Requests sampled into a trace.", float64(s.tracer.Sampled()))
	p.Counter("respat_traces_slow_total", "Sampled traces over the slow-request threshold.", float64(s.tracer.Slow()))
	if s.tracer != nil {
		p.Family("respat_stage_latency_seconds", "Stage latency over sampled requests, by stage.", "histogram")
		for st := obs.Stage(0); st < obs.StageCount; st++ {
			p.Hist("respat_stage_latency_seconds",
				[]obs.Label{{Key: "stage", Value: st.String()}},
				s.tracer.StageHistogram(st).Snapshot())
		}
	}

	// Go runtime.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.Gauge("respat_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	p.Gauge("respat_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	p.Counter("respat_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", float64(ms.PauseTotalNs)/1e9)
	p.Counter("respat_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	p.Gauge("respat_uptime_seconds", "Seconds since the service was constructed.", time.Since(s.started).Seconds())

	return p.Err()
}
