package service

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"respat/internal/stats"
)

// ErrShed is returned by the gated cold-planning paths when the
// bounded wait queue is full: the request was shed without computing
// anything. The HTTP layer maps it to 429 with a Retry-After header
// derived from the observed cold-plan latency quantiles.
var ErrShed = errors.New("service: cold-plan queue full; request shed")

// ErrTooTight is returned (only in degraded mode) when a request's
// remaining deadline budget is smaller than the estimated cold-plan
// latency: running the exact search would just burn a worker slot to
// produce an answer nobody is left to read. The handler converts it
// into a degraded first-order response.
var ErrTooTight = errors.New("service: request deadline too tight for exact search")

// coldLatencyWindow is the number of recent cold-plan wall times the
// gate retains for its Retry-After estimate.
const coldLatencyWindow = 256

// Bounds on the Retry-After advice, in seconds. The clamp is what
// keeps the advice sane when the latency observations are garbage —
// an injected clock skew (see internal/chaos), a cold start with no
// observations, a latency spike.
const (
	minRetryAfter = 1
	maxRetryAfter = 60
)

// gate is the cold-plan admission controller: a bounded worker pool
// (slots) fronted by a bounded wait queue. Cache hits never touch it —
// only the singleflight leaders of cold computations do, so coalesced
// requests for one key consume one slot between them.
//
// The queue bound is enforced with a CAS loop on queued, so the
// invariant "queued never exceeds queueCap" holds at every instant,
// not just on average — the chaos suite asserts it under 4x-capacity
// overload.
type gate struct {
	slots     chan struct{} // capacity = worker bound
	queueCap  int64
	queued    atomic.Int64 // requests currently waiting for a slot
	maxQueued atomic.Int64 // high-water mark of queued (observability)

	// Ring of recent cold-plan wall times (seconds) feeding the
	// Retry-After estimate; mirrors the endpointMetrics latency ring.
	mu     sync.Mutex
	ring   [coldLatencyWindow]float64
	filled int
	next   int
}

func newGate(workers, queue int) *gate {
	return &gate{
		slots:    make(chan struct{}, workers),
		queueCap: int64(queue),
	}
}

// acquire admits the caller to a worker slot. The fast path is a
// non-blocking slot grab; otherwise the caller joins the bounded wait
// queue, or is shed with ErrShed when the queue is full. A queued
// caller that gives up (ctx cancelled or expired) leaves the queue
// immediately and returns the ctx error.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	for {
		q := g.queued.Load()
		if q >= g.queueCap {
			return ErrShed
		}
		if g.queued.CompareAndSwap(q, q+1) {
			for hw := g.maxQueued.Load(); q+1 > hw && !g.maxQueued.CompareAndSwap(hw, q+1); hw = g.maxQueued.Load() {
			}
			break
		}
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees the slot taken by a successful acquire.
func (g *gate) release() { <-g.slots }

// depth returns the current wait-queue depth (the /metrics gauge).
func (g *gate) depth() int64 { return g.queued.Load() }

// maxDepth returns the queue-depth high-water mark.
func (g *gate) maxDepth() int64 { return g.maxQueued.Load() }

// workers returns the worker-slot bound.
func (g *gate) workers() int { return cap(g.slots) }

// observe records one cold-plan wall time.
func (g *gate) observe(d time.Duration) {
	g.mu.Lock()
	g.ring[g.next] = d.Seconds()
	g.next = (g.next + 1) % coldLatencyWindow
	if g.filled < coldLatencyWindow {
		g.filled++
	}
	g.mu.Unlock()
}

// estimate returns the p90 of the observed cold-plan wall times in
// seconds, or 0 before the first observation.
func (g *gate) estimate() float64 {
	g.mu.Lock()
	window := append([]float64(nil), g.ring[:g.filled]...)
	g.mu.Unlock()
	if len(window) == 0 {
		return 0
	}
	// stats.Quantile only fails on empty data or q outside [0,1],
	// both excluded here.
	p90, _ := stats.Quantile(window, 0.90)
	return p90
}

// retryAfter returns the advised client back-off in whole seconds:
// the time for the current queue (plus the caller) to drain through
// the worker pool at the estimated per-plan latency, clamped to
// [minRetryAfter, maxRetryAfter].
func (g *gate) retryAfter() int {
	est := g.estimate()
	if est <= 0 {
		return minRetryAfter
	}
	sec := math.Ceil(est * float64(g.depth()+1) / float64(g.workers()))
	if sec < minRetryAfter {
		return minRetryAfter
	}
	if sec > maxRetryAfter {
		return maxRetryAfter
	}
	return int(sec)
}
