package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"respat/internal/core"
)

// testKey builds a synthetic key whose float fields derive from i, so
// distinct i give distinct keys.
func testKey(i int) Key {
	c := core.Costs{DiskCkpt: float64(i + 1), Recall: 1}
	return EncodeKey(ModePlan, core.PD, c, core.Rates{Silent: 1e-6})
}

// TestCoalescingComputesOnce gates the computation so every goroutine
// arrives while it is in flight: exactly one computes, the rest
// coalesce onto the same flight and observe identical bytes.
func TestCoalescingComputesOnce(t *testing.T) {
	var m Metrics
	c := newCache(4, 64, &m)
	key := testKey(1)

	const goroutines = 16
	var computes atomic.Int32
	gate := make(chan struct{})
	arrived := make(chan struct{}, 1)

	var wg sync.WaitGroup
	results := make([][]byte, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := c.getOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
				arrived <- struct{}{}
				<-gate
				computes.Add(1)
				return []byte(`{"v":1}`), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = resp
		}(g)
	}
	<-arrived // one goroutine holds the flight...
	// Let every other goroutine reach the cache. They either coalesce
	// or (if not yet scheduled) will hit the cache after insertion;
	// both paths must return the same bytes. Release the gate once all
	// requests are in flight or queued.
	gate <- struct{}{}
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	for g, r := range results {
		if !bytes.Equal(r, results[0]) {
			t.Fatalf("goroutine %d saw %q, others %q", g, r, results[0])
		}
	}
	if m.Misses.Load() != 1 {
		t.Fatalf("misses = %d, want 1", m.Misses.Load())
	}
	if got := m.Hits.Load() + m.Coalesced.Load(); got != goroutines-1 {
		t.Fatalf("hits+coalesced = %d, want %d", got, goroutines-1)
	}
}

// TestScatteredKeysComputeOncePerKey hammers a scattered key-set from
// many goroutines: every unique key is computed exactly once.
func TestScatteredKeysComputeOncePerKey(t *testing.T) {
	var m Metrics
	c := newCache(8, 4096, &m)
	const keys = 64
	const goroutines = 8

	var computes [keys]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				i := (i + g) % keys // stagger start offsets per goroutine
				_, err := c.getOrCompute(context.Background(), testKey(i), func(context.Context) ([]byte, error) {
					computes[i].Add(1)
					return []byte(fmt.Sprintf(`{"v":%d}`, i)), nil
				})
				if err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()

	for i := range computes {
		if n := computes[i].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want 1", i, n)
		}
	}
	if m.Misses.Load() != keys {
		t.Errorf("misses = %d, want %d", m.Misses.Load(), keys)
	}
	if total := m.Hits.Load() + m.Misses.Load() + m.Coalesced.Load(); total != keys*goroutines {
		t.Errorf("hits+misses+coalesced = %d, want %d", total, keys*goroutines)
	}
}

// TestLRUEviction: a full shard evicts its least recently used entry,
// bounded capacity holds, and an evicted key is recomputed on return.
func TestLRUEviction(t *testing.T) {
	var m Metrics
	c := newCache(1, 4, &m) // one shard, capacity 4
	var computes atomic.Int32
	get := func(i int) {
		t.Helper()
		if _, err := c.getOrCompute(context.Background(), testKey(i), func(context.Context) ([]byte, error) {
			computes.Add(1)
			return []byte(`{}`), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		get(i)
	}
	if n := c.len(); n != 4 {
		t.Fatalf("cache holds %d entries, want 4", n)
	}
	if ev := m.Evictions.Load(); ev != 6 {
		t.Fatalf("evictions = %d, want 6", ev)
	}
	// Keys 6-9 are resident; key 0 was evicted.
	before := computes.Load()
	get(9)
	if computes.Load() != before {
		t.Fatal("resident key was recomputed")
	}
	get(0)
	if computes.Load() != before+1 {
		t.Fatal("evicted key was not recomputed")
	}
	// Recency, not insertion order, decides the victim: touching key 7
	// then inserting two fresh keys must keep 7 resident.
	get(7)
	get(100)
	get(101)
	before = computes.Load()
	get(7)
	if computes.Load() != before {
		t.Fatal("recently used key was evicted")
	}
}

// TestErrorsNotCached: a failed computation is not inserted; the next
// request retries, and coalesced waiters observe the shared error.
func TestErrorsNotCached(t *testing.T) {
	var m Metrics
	c := newCache(2, 16, &m)
	key := testKey(3)
	boom := errors.New("boom")
	var calls atomic.Int32
	for i := 0; i < 3; i++ {
		_, err := c.getOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
			calls.Add(1)
			return nil, boom
		})
		if err != boom {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("failed computation ran %d times, want 3 (errors must not be cached)", n)
	}
	if c.len() != 0 {
		t.Fatal("error was inserted into the cache")
	}
}
