package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/platform"
)

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestPlanEndpoint(t *testing.T) {
	h := New(Config{}).Handler()
	w := postJSON(t, h, "/v1/plan", `{"kind":"PDMV","platform":"Hera"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp PlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	hera, _ := platform.ByName("Hera")
	want, err := analytic.Optimal(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "PDMV" || resp.N != want.N || resp.M != want.M || resp.W != want.W {
		t.Fatalf("resp %+v, want plan %v", resp, want)
	}
}

func TestPlanEndpointExplicitConfig(t *testing.T) {
	h := New(Config{}).Handler()
	body := `{"kind":"PD",
		"costs":{"DiskCkpt":300,"MemCkpt":15.4,"DiskRec":300,"MemRec":15.4,
		         "GuarVer":15.4,"PartVer":0.154,"Recall":0.8},
		"rates":{"FailStop":9.46e-7,"Silent":3.38e-6}}`
	w := postJSON(t, h, "/v1/plan", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	// The explicit config equals Hera's, so the body must be
	// byte-identical to the platform-resolved one (same cache key).
	w2 := postJSON(t, h, "/v1/plan", `{"kind":"PD","platform":"Hera"}`)
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatalf("explicit config and platform name disagree:\n%s\n%s", w.Body, w2.Body)
	}
}

func TestPlanExactEndpoint(t *testing.T) {
	h := New(Config{}).Handler()
	w := postJSON(t, h, "/v1/plan/exact", `{"kind":"PDMV","platform":"Hera"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var exact PlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &exact); err != nil {
		t.Fatal(err)
	}
	if !exact.Exact {
		t.Fatal("exact endpoint served a non-exact plan")
	}
	var first PlanResponse
	wf := postJSON(t, h, "/v1/plan", `{"kind":"PDMV","platform":"Hera"}`)
	if err := json.Unmarshal(wf.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	// The exact optimum can only improve on the first-order plan's
	// predicted overhead by a small margin (EXPERIMENTS.md: ≤ 0.02%
	// relative), so the two must be close.
	if exact.Overhead > first.Overhead*1.05 || exact.Overhead < first.Overhead*0.5 {
		t.Fatalf("exact overhead %v implausible vs first-order %v", exact.Overhead, first.Overhead)
	}
}

func TestEvaluateEndpoint(t *testing.T) {
	hera, _ := platform.ByName("Hera")
	plan, err := analytic.Optimal(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := json.Marshal(plan.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	h := New(Config{}).Handler()
	w := postJSON(t, h, "/v1/evaluate",
		fmt.Sprintf(`{"pattern":%s,"platform":"Hera"}`, pat))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp EvaluateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want, err := analytic.ExactExpectedTime(plan.Pattern, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ExpectedTime != want {
		t.Fatalf("expectedTime = %v, want %v", resp.ExpectedTime, want)
	}
}

func TestBatchEndpoint(t *testing.T) {
	h := New(Config{BatchWorkers: 4}).Handler()
	body := `{"requests":[
		{"op":"plan","kind":"PD","platform":"Hera"},
		{"op":"plan/exact","kind":"PDM","platform":"Atlas"},
		{"op":"plan","kind":"NOPE","platform":"Hera"},
		{"op":"frobnicate"},
		{"op":"plan","kind":"PDMV","platform":"Coastal"}
	]}`
	w := postJSON(t, h, "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Responses) != 5 {
		t.Fatalf("got %d responses, want 5", len(resp.Responses))
	}
	// Items 0, 1, 4 succeed; 2 and 3 carry error envelopes, in order.
	for _, i := range []int{0, 1, 4} {
		var plan PlanResponse
		if err := json.Unmarshal(resp.Responses[i], &plan); err != nil || plan.N < 1 {
			t.Errorf("item %d: bad plan %s", i, resp.Responses[i])
		}
		if wantExact := i == 1; plan.Exact != wantExact {
			t.Errorf("item %d: exact = %v, want %v", i, plan.Exact, wantExact)
		}
	}
	for _, i := range []int{2, 3} {
		var e errorBody
		if err := json.Unmarshal(resp.Responses[i], &e); err != nil || e.Error == "" {
			t.Errorf("item %d: expected error envelope, got %s", i, resp.Responses[i])
		}
	}
	// Batch items share the plan cache with the single-plan endpoints.
	w2 := postJSON(t, h, "/v1/plan", `{"kind":"PD","platform":"Hera"}`)
	var single PlanResponse
	if err := json.Unmarshal(w2.Body.Bytes(), &single); err != nil {
		t.Fatal(err)
	}
	var fromBatch PlanResponse
	if err := json.Unmarshal(resp.Responses[0], &fromBatch); err != nil {
		t.Fatal(err)
	}
	if single != fromBatch {
		t.Error("batch and single-plan endpoints disagree")
	}
}

func TestBadRequests(t *testing.T) {
	h := New(Config{}).Handler()
	cases := []struct {
		name, path, body string
	}{
		{"bad json", "/v1/plan", `{`},
		{"unknown field", "/v1/plan", `{"kind":"PD","platform":"Hera","zzz":1}`},
		{"unknown kind", "/v1/plan", `{"kind":"PDQ","platform":"Hera"}`},
		{"unknown platform", "/v1/plan", `{"kind":"PD","platform":"Summit"}`},
		{"platform and costs", "/v1/plan", `{"kind":"PD","platform":"Hera","costs":{"Recall":1},"rates":{}}`},
		{"no config", "/v1/plan", `{"kind":"PD"}`},
		{"zero rates", "/v1/plan", `{"kind":"PD","costs":{"DiskCkpt":300,"MemCkpt":15,"DiskRec":300,"MemRec":15,"GuarVer":15,"PartVer":0.15,"Recall":0.8},"rates":{}}`},
		{"missing pattern", "/v1/evaluate", `{"platform":"Hera"}`},
		{"oversized batch", "/v1/batch", fmt.Sprintf(`{"requests":[%s]}`,
			strings.TrimSuffix(strings.Repeat(`{"op":"plan"},`, maxBatchItems+1), ","))},
	}
	for _, c := range cases {
		if w := postJSON(t, h, c.path, c.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, w.Code, w.Body)
		} else {
			var e errorBody
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Errorf("%s: missing error envelope: %s", c.name, w.Body)
			}
		}
	}
	// Wrong method.
	if w := getPath(t, h, "/v1/plan"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: status %d, want 405", w.Code)
	}
	// Oversized body: 413, not 400.
	huge := `{"kind":"PD","platform":"Hera","pad":"` + strings.Repeat("x", maxRequestBytes) + `"}`
	if w := postJSON(t, h, "/v1/plan", huge); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", w.Code)
	}
}

func TestHealthz(t *testing.T) {
	h := New(Config{}).Handler()
	w := getPath(t, h, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body["status"] != "ok" {
		t.Fatalf("healthz body %s", w.Body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	svc := New(Config{})
	h := svc.Handler()
	postJSON(t, h, "/v1/plan", `{"kind":"PD","platform":"Hera"}`)  // miss
	postJSON(t, h, "/v1/plan", `{"kind":"PD","platform":"Hera"}`)  // hit
	postJSON(t, h, "/v1/plan", `{"kind":"PDQ","platform":"Hera"}`) // error

	w := getPath(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
	if snap.CacheEntries != 1 {
		t.Errorf("cacheEntries = %d, want 1", snap.CacheEntries)
	}
	if snap.InFlight != 0 {
		t.Errorf("inFlight = %d, want 0", snap.InFlight)
	}
	ep, ok := snap.Endpoints["plan"]
	if !ok {
		t.Fatal("missing plan endpoint metrics")
	}
	if ep.Requests != 3 || ep.Errors != 1 {
		t.Errorf("plan endpoint requests=%d errors=%d, want 3/1", ep.Requests, ep.Errors)
	}
	if ep.Latency.Count != 3 || ep.Latency.P50 <= 0 || ep.Latency.P99 < ep.Latency.P50 {
		t.Errorf("implausible latency quantiles: %+v", ep.Latency)
	}
}
