package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"respat/internal/multilevel"
	"respat/internal/obs"
	"respat/internal/platform"
)

// MultilevelPlanRequest is the body of POST /v1/plan/multilevel.
// Exactly one of the two configuration forms must be given:
//
//   - Platform (a Table 2 name) plus Levels, the hierarchy depth — the
//     configuration is derived by multilevel.FromPlatform;
//   - Params, the explicit hierarchy (per-level Ckpt/Rec/Share,
//     verification costs, rates; Go field names, like costs/rates on
//     the other planning endpoints).
type MultilevelPlanRequest struct {
	Platform string             `json:"platform,omitempty"`
	Levels   int                `json:"levels,omitempty"`
	Params   *multilevel.Params `json:"params,omitempty"`
}

// MultilevelPlanResponse is the body served for /v1/plan/multilevel.
type MultilevelPlanResponse struct {
	// Levels is the hierarchy depth L.
	Levels int `json:"levels"`
	// Counts holds n_1..n_L, the optimal per-level interval counts.
	Counts []int `json:"counts"`
	// M is the optimal chunk count per level-1 interval.
	M int `json:"m"`
	// W is the optimal pattern length W* in seconds.
	W float64 `json:"w"`
	// Overhead is the exact expected overhead E(P)/W - 1 at the
	// optimum (for a degraded response: at the served first-order
	// plan, which is not the exact optimum).
	Overhead float64 `json:"overhead"`
	// Degraded marks a graceful-degradation response carrying the
	// first-order seed plan instead of the exact search's optimum;
	// absent on normal responses, so cached bytes are unchanged.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedDelta is the exact-model overhead of the served plan
	// minus its first-order prediction (how optimistic the degraded
	// answer is).
	DegradedDelta float64 `json:"degradedDelta,omitempty"`
}

// PlanMultilevel returns the marshalled optimal multilevel plan for p,
// cached like the other planning operations: the canonical key covers
// the whole level vector, hits are allocation-free, and concurrent
// misses coalesce onto one computation on the owning shard's warm
// multilevel evaluator. The returned bytes are shared with the cache
// and must not be mutated.
func (s *Service) PlanMultilevel(p multilevel.Params) ([]byte, error) {
	return s.PlanMultilevelCtx(context.Background(), p)
}

// PlanMultilevelCtx is PlanMultilevel under a request context. Cache
// hits bypass the admission gate unconditionally; the cold multilevel
// search (the most expensive computation the service runs) is admitted
// through the bounded cold-plan gate and cancelled when every
// interested request abandons.
func (s *Service) PlanMultilevelCtx(ctx context.Context, p multilevel.Params) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	key := EncodeMultilevelKey(p)
	tm := obs.FromContext(ctx).Begin(obs.StageCacheLookup)
	resp, ok := s.cache.get(key)
	tm.End(hitMiss(ok))
	if ok {
		return resp, nil
	}
	if err := s.tooTight(ctx); err != nil {
		return nil, err
	}
	return s.planMultilevelCold(ctx, key, p)
}

// planMultilevelCold is the miss path of PlanMultilevel, split out so
// the hot path does not pay for the compute closure.
func (s *Service) planMultilevelCold(ctx context.Context, key Key, p multilevel.Params) ([]byte, error) {
	sh := s.cache.shard(key)
	return s.cache.getOrCompute(ctx, key, func(fctx context.Context) ([]byte, error) {
		return s.gated(fctx, func(fctx context.Context) ([]byte, error) {
			var plan multilevel.Plan
			err := sh.withMultilevelPlanner(key, p, func(pl *multilevel.Planner) error {
				var err error
				plan, err = pl.PlanCtx(fctx)
				return err
			})
			if err != nil {
				return nil, err
			}
			return marshalResponse(MultilevelPlanResponse{
				Levels:   p.L(),
				Counts:   plan.Spec.Counts,
				M:        plan.Spec.M,
				W:        plan.Spec.W,
				Overhead: plan.Overhead,
			})
		})
	})
}

// DegradedPlanMultilevel is the graceful-degradation fallback of
// PlanMultilevel: the first-order seed plan (multilevel.FirstOrderPlan)
// evaluated once under the exact model, so the response carries its
// real predicted overhead plus the delta against the first-order
// estimate. No search, no gate, deterministic and byte-stable across
// repeats; never cached.
func (s *Service) DegradedPlanMultilevel(p multilevel.Params) ([]byte, error) {
	plan, err := multilevel.FirstOrderPlan(p)
	if err != nil {
		return nil, err
	}
	t, err := multilevel.ExpectedTime(p, plan.Spec)
	if err != nil {
		return nil, err
	}
	exactH := t/plan.Spec.W - 1
	return marshalResponse(MultilevelPlanResponse{
		Levels:        p.L(),
		Counts:        plan.Spec.Counts,
		M:             plan.Spec.M,
		W:             plan.Spec.W,
		Overhead:      exactH,
		Degraded:      true,
		DegradedDelta: exactH - plan.Overhead,
	})
}

func (s *Service) handlePlanMultilevel(r *http.Request, d *disposition) ([]byte, int, error) {
	tr := obs.FromContext(r.Context())
	dec := tr.Begin(obs.StageDecode)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		dec.End("error")
		return nil, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	var req MultilevelPlanRequest
	if err := decodeJSON(raw, &req); err != nil {
		dec.End("error")
		return nil, http.StatusBadRequest, err
	}
	params, err := resolveMultilevelConfig(req)
	if err != nil {
		dec.End("error")
		return nil, http.StatusBadRequest, err
	}
	// EncodeMultilevelKey requires validated params (the level vector
	// must fit the fixed-width key); PlanMultilevelCtx re-validates,
	// which is cheap.
	if err := params.Validate(); err != nil {
		dec.End("error")
		return nil, http.StatusBadRequest, err
	}
	dec.End("ok")
	key := EncodeMultilevelKey(params)
	tm := tr.Begin(obs.StageCacheLookup)
	resp, ok := s.cache.get(key)
	tm.End(hitMiss(ok))
	if ok {
		return resp, http.StatusOK, nil
	}
	if name, baseURL, ok := s.routePeer(r, key); ok {
		return s.forward(r.Context(), name, baseURL, r.URL.Path, raw, d)
	}
	body, err := s.PlanMultilevelCtx(r.Context(), params)
	if err != nil {
		if s.degradable(err) {
			cc := tr.Begin(obs.StageColdCompute)
			body, derr := s.DegradedPlanMultilevel(params)
			if derr == nil {
				cc.End("degraded")
				d.out = outcomeDegraded
				s.metrics.Degraded.Add(1)
				return body, http.StatusOK, nil
			}
			cc.End("error")
		}
		return nil, http.StatusBadRequest, err
	}
	return body, http.StatusOK, nil
}

// resolveMultilevelConfig turns the (platform+levels | params) request
// into a concrete configuration.
func resolveMultilevelConfig(req MultilevelPlanRequest) (multilevel.Params, error) {
	if req.Platform != "" {
		if req.Params != nil {
			return multilevel.Params{}, errors.New("give either platform+levels or params, not both")
		}
		if req.Levels == 0 {
			return multilevel.Params{}, errors.New("platform form needs levels (the hierarchy depth)")
		}
		pl, err := platform.ByName(req.Platform)
		if err != nil {
			return multilevel.Params{}, err
		}
		return multilevel.FromPlatform(pl, req.Levels)
	}
	if req.Params == nil {
		return multilevel.Params{}, errors.New("need a platform name plus levels, or explicit params")
	}
	if req.Levels != 0 {
		return multilevel.Params{}, errors.New("levels only applies to the platform form")
	}
	return *req.Params, nil
}
