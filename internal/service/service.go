package service

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"respat/internal/adapt"
	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/optimize"
)

// Config sizes a Service.
type Config struct {
	// Shards is the number of cache shards (rounded up to a power of
	// two; default 16). More shards mean less lock contention and more
	// evaluators kept warm.
	Shards int
	// Capacity is the total number of cached plans across all shards
	// (default 4096).
	Capacity int
	// BatchWorkers bounds how many items of one POST /v1/batch body are
	// processed concurrently (default GOMAXPROCS).
	BatchWorkers int
	// MaxSessions caps the number of live adaptive sessions (default
	// 1024); POST /v1/observe for a new session id beyond the cap is
	// rejected with 429. Sessions are freed by DELETE /v1/adaptive.
	MaxSessions int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	return c
}

// Service plans, evaluates and compares resilience patterns behind the
// plan cache, and hosts the adaptive re-planning sessions of
// internal/adapt. All methods are safe for concurrent use.
type Service struct {
	cfg     Config
	cache   *cache
	metrics Metrics

	sessMu   sync.Mutex
	sessions map[string]*adapt.Session
}

// New builds a Service. The zero Config is valid and gets defaults.
func New(cfg Config) *Service {
	s := &Service{cfg: cfg.withDefaults()}
	s.cache = newCache(s.cfg.Shards, s.cfg.Capacity, &s.metrics)
	return s
}

// Metrics exposes the service counters (live; callers read atomics or
// take a Snapshot via the /metrics endpoint).
func (s *Service) Metrics() *Metrics { return &s.metrics }

// PlanResponse is the body served for /v1/plan and /v1/plan/exact.
type PlanResponse struct {
	Kind  string `json:"kind"`
	Exact bool   `json:"exact"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	// W is the optimal pattern length in seconds.
	W float64 `json:"w"`
	// Overhead is the expected overhead H at the optimum: first-order
	// 2·sqrt(oef·orw) for plan, exact E(P)/W - 1 for plan/exact.
	Overhead float64 `json:"overhead"`
}

// EvaluateResponse is the body served for /v1/evaluate.
type EvaluateResponse struct {
	// ExpectedTime is the exact expected execution time E(P) in seconds.
	ExpectedTime float64 `json:"expectedTime"`
	// Overhead is E(P)/W - 1.
	Overhead float64 `json:"overhead"`
}

// Plan returns the marshalled first-order Table 1 plan of family kind
// for (costs, rates), serving from the cache when possible. The
// returned bytes are shared with the cache and must not be mutated.
func (s *Service) Plan(kind core.Kind, costs core.Costs, rates core.Rates) ([]byte, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("service: invalid pattern kind %d", int(kind))
	}
	key := EncodeKey(ModePlan, kind, costs, rates)
	if resp, ok := s.cache.get(key); ok {
		return resp, nil
	}
	return s.planCold(key, kind, costs, rates)
}

// planCold is the miss path of Plan, split out so the hot path does not
// pay for the compute closure.
func (s *Service) planCold(key Key, kind core.Kind, costs core.Costs, rates core.Rates) ([]byte, error) {
	return s.cache.getOrCompute(key, func() ([]byte, error) {
		plan, err := analytic.Optimal(kind, costs, rates)
		if err != nil {
			return nil, err
		}
		return marshalResponse(PlanResponse{
			Kind:     plan.Kind.String(),
			N:        plan.N,
			M:        plan.M,
			W:        plan.W,
			Overhead: plan.Overhead,
		})
	})
}

// PlanExact returns the marshalled exact-model plan (renewal-equation
// optimum, no first-order truncation), cached like Plan. The exact
// search reuses the owning shard's evaluator.
func (s *Service) PlanExact(kind core.Kind, costs core.Costs, rates core.Rates) ([]byte, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("service: invalid pattern kind %d", int(kind))
	}
	key := EncodeKey(ModePlanExact, kind, costs, rates)
	if resp, ok := s.cache.get(key); ok {
		return resp, nil
	}
	return s.planExactCold(key, kind, costs, rates)
}

func (s *Service) planExactCold(key Key, kind core.Kind, costs core.Costs, rates core.Rates) ([]byte, error) {
	sh := s.cache.shard(key)
	return s.cache.getOrCompute(key, func() ([]byte, error) {
		first, err := analytic.Optimal(kind, costs, rates)
		if err != nil {
			return nil, err
		}
		var plan optimize.ExactPlan
		err = sh.withEvaluator(costs, rates, func(ev *analytic.Evaluator) error {
			var err error
			plan, err = optimize.ExactWithEvaluator(ev, first)
			return err
		})
		if err != nil {
			return nil, err
		}
		return marshalResponse(PlanResponse{
			Kind:     plan.Kind.String(),
			Exact:    true,
			N:        plan.N,
			M:        plan.M,
			W:        plan.W,
			Overhead: plan.Overhead,
		})
	})
}

// Evaluate returns the marshalled exact expected time of a
// caller-supplied pattern. Arbitrary patterns are not cached (their
// identity is not covered by the (family, Costs, Rates) key), but the
// computation still reuses the evaluator of the shard owning the
// (costs, rates) configuration.
func (s *Service) Evaluate(p core.Pattern, costs core.Costs, rates core.Rates) ([]byte, error) {
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	if err := rates.Validate(); err != nil {
		return nil, err
	}
	sh := s.cache.shard(EncodeKey(ModeEvaluate, 0, costs, rates))
	var t float64
	err := sh.withEvaluator(costs, rates, func(ev *analytic.Evaluator) error {
		var err error
		t, err = ev.ExpectedTime(p)
		return err
	})
	if err != nil {
		return nil, err
	}
	return marshalResponse(EvaluateResponse{ExpectedTime: t, Overhead: t/p.W - 1})
}

// marshalResponse marshals a response body. encoding/json is
// deterministic for struct values, which is what makes the cached
// bytes byte-identical to a cold computation's.
func marshalResponse(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("service: marshal response: %w", err)
	}
	return b, nil
}
