package service

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"respat/internal/adapt"
	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/obs"
	"respat/internal/optimize"
	"respat/internal/plantable"
)

// Config sizes a Service.
type Config struct {
	// Shards is the number of cache shards (rounded up to a power of
	// two; default 16). More shards mean less lock contention and more
	// evaluators kept warm.
	Shards int
	// Capacity is the total number of cached plans across all shards
	// (default 4096).
	Capacity int
	// BatchWorkers bounds how many items of one POST /v1/batch body are
	// processed concurrently (default GOMAXPROCS).
	BatchWorkers int
	// MaxSessions caps the number of live adaptive sessions (default
	// 1024); POST /v1/observe for a new session id beyond the cap is
	// rejected with 429. Sessions are freed by DELETE /v1/adaptive.
	MaxSessions int
	// ColdWorkers bounds how many expensive cold plans (exact and
	// multilevel searches) compute concurrently (default GOMAXPROCS).
	// Cache hits bypass the gate entirely and stay allocation-free;
	// the cheap first-order /v1/plan cold path is ungated too.
	ColdWorkers int
	// ColdQueue bounds how many cold-plan computations may wait for a
	// worker slot (default 4x ColdWorkers). When the queue is full
	// further cold requests are shed with ErrShed (HTTP 429 plus a
	// Retry-After derived from observed cold-plan latency quantiles).
	ColdQueue int
	// DefaultTimeout is the per-request deadline budget applied when a
	// request carries no X-Request-Timeout header (0 = no budget).
	DefaultTimeout time.Duration
	// Degraded, when set, serves the first-order analytic plan —
	// flagged "degraded": true, with its predicted-overhead delta —
	// instead of failing, whenever the gate sheds a request or its
	// deadline is too tight for the exact search.
	Degraded bool
	// ColdFault, if non-nil, runs at the start of every admitted
	// cold-plan computation. It exists for fault injection (see
	// internal/chaos): returning an error fails the computation,
	// sleeping adds planner latency. Production configurations leave
	// it nil.
	ColdFault func(ctx context.Context) error
	// Now overrides the clock used to time cold-plan computations for
	// the Retry-After estimate (chaos/testing hook; default time.Now).
	Now func() time.Time
	// Tables holds precomputed plan tables (internal/plantable),
	// consulted on the exact-plan path after the cache and before the
	// admission gate: an in-grid request is answered by interpolation
	// in microseconds and never competes for a cold-plan slot. Load
	// tables at startup (cmd/respatd -plan-table, or cmd/plantable to
	// build them); the slice is read concurrently and must not be
	// mutated after New.
	Tables []*plantable.Table
	// Tracer samples and records per-request traces (internal/obs).
	// nil disables tracing entirely; every trace call site is nil-safe,
	// so the hot path pays nothing beyond one atomic add per request.
	Tracer *obs.Tracer
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.ColdWorkers <= 0 {
		c.ColdWorkers = runtime.GOMAXPROCS(0)
	}
	if c.ColdQueue <= 0 {
		c.ColdQueue = 4 * c.ColdWorkers
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Service plans, evaluates and compares resilience patterns behind the
// plan cache, and hosts the adaptive re-planning sessions of
// internal/adapt. All methods are safe for concurrent use.
type Service struct {
	cfg     Config
	cache   *cache
	gate    *gate
	metrics Metrics
	tracer  *obs.Tracer // cfg.Tracer; nil disables tracing
	started time.Time

	sessMu   sync.Mutex
	sessions map[string]*adapt.Session

	// clu is nil until EnableCluster joins this service to a
	// consistent-hash replica group (cluster.go).
	clu *clusterState
}

// New builds a Service. The zero Config is valid and gets defaults.
func New(cfg Config) *Service {
	s := &Service{cfg: cfg.withDefaults(), started: time.Now()}
	s.tracer = s.cfg.Tracer
	s.cache = newCache(s.cfg.Shards, s.cfg.Capacity, &s.metrics)
	s.gate = newGate(s.cfg.ColdWorkers, s.cfg.ColdQueue)
	return s
}

// Tracer exposes the service's tracer (nil when tracing is disabled);
// cmd/respatd mounts /debug/traces on the debug listener through it.
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// Metrics exposes the service counters (live; callers read atomics or
// take a Snapshot via the /metrics endpoint).
func (s *Service) Metrics() *Metrics { return &s.metrics }

// PlanResponse is the body served for /v1/plan and /v1/plan/exact.
type PlanResponse struct {
	Kind  string `json:"kind"`
	Exact bool   `json:"exact"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	// W is the optimal pattern length in seconds.
	W float64 `json:"w"`
	// Overhead is the expected overhead H at the optimum: first-order
	// 2·sqrt(oef·orw) for plan, exact E(P)/W - 1 for plan/exact. A
	// degraded response carries the exact-model overhead of the
	// first-order plan it serves.
	Overhead float64 `json:"overhead"`
	// Degraded marks a graceful-degradation response: the service was
	// overloaded (or the deadline too tight) and served the first-order
	// analytic plan instead of running the exact search. Absent on
	// normal responses, so cached bytes are unchanged.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedDelta quantifies how optimistic the degraded answer is:
	// the exact-model overhead of the served first-order plan minus its
	// own first-order prediction.
	DegradedDelta float64 `json:"degradedDelta,omitempty"`
	// Interpolated marks a plan-table answer: W and Overhead are
	// multilinear interpolations of precomputed exact plans (within
	// the table's validated error bound), (n, m) the nearest grid
	// corner's layout. Absent on normal responses, so cached bytes are
	// unchanged.
	Interpolated bool `json:"interpolated,omitempty"`
}

// EvaluateResponse is the body served for /v1/evaluate.
type EvaluateResponse struct {
	// ExpectedTime is the exact expected execution time E(P) in seconds.
	ExpectedTime float64 `json:"expectedTime"`
	// Overhead is E(P)/W - 1.
	Overhead float64 `json:"overhead"`
}

// Plan returns the marshalled first-order Table 1 plan of family kind
// for (costs, rates), serving from the cache when possible. The
// returned bytes are shared with the cache and must not be mutated.
// The first-order cold path is microseconds of closed-form arithmetic,
// so it is not admission-gated.
func (s *Service) Plan(kind core.Kind, costs core.Costs, rates core.Rates) ([]byte, error) {
	return s.PlanCtx(context.Background(), kind, costs, rates)
}

// PlanCtx is Plan under a request context; a caller that abandons
// (ctx done) stops waiting for a coalesced computation.
func (s *Service) PlanCtx(ctx context.Context, kind core.Kind, costs core.Costs, rates core.Rates) ([]byte, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("service: invalid pattern kind %d", int(kind))
	}
	key := EncodeKey(ModePlan, kind, costs, rates)
	tm := obs.FromContext(ctx).Begin(obs.StageCacheLookup)
	resp, ok := s.cache.get(key)
	tm.End(hitMiss(ok))
	if ok {
		return resp, nil
	}
	return s.planCold(ctx, key, kind, costs, rates)
}

// hitMiss labels a cache or table probe's span outcome.
func hitMiss(ok bool) string {
	if ok {
		return "hit"
	}
	return "miss"
}

// planCold is the miss path of Plan, split out so the hot path does not
// pay for the compute closure.
func (s *Service) planCold(ctx context.Context, key Key, kind core.Kind, costs core.Costs, rates core.Rates) ([]byte, error) {
	return s.cache.getOrCompute(ctx, key, func(context.Context) ([]byte, error) {
		plan, err := analytic.Optimal(kind, costs, rates)
		if err != nil {
			return nil, err
		}
		return marshalResponse(PlanResponse{
			Kind:     plan.Kind.String(),
			N:        plan.N,
			M:        plan.M,
			W:        plan.W,
			Overhead: plan.Overhead,
		})
	})
}

// PlanExact returns the marshalled exact-model plan (renewal-equation
// optimum, no first-order truncation), cached like Plan. The exact
// search reuses the owning shard's evaluator.
func (s *Service) PlanExact(kind core.Kind, costs core.Costs, rates core.Rates) ([]byte, error) {
	return s.PlanExactCtx(context.Background(), kind, costs, rates)
}

// PlanExactCtx is PlanExact under a request context. Cache hits bypass
// the admission gate unconditionally; a cold computation is admitted
// through the bounded cold-plan gate (ErrShed when its queue is full)
// and cancelled when every interested request abandons.
func (s *Service) PlanExactCtx(ctx context.Context, kind core.Kind, costs core.Costs, rates core.Rates) ([]byte, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("service: invalid pattern kind %d", int(kind))
	}
	key := EncodeKey(ModePlanExact, kind, costs, rates)
	tm := obs.FromContext(ctx).Begin(obs.StageCacheLookup)
	resp, ok := s.cache.get(key)
	tm.End(hitMiss(ok))
	if ok {
		return resp, nil
	}
	if resp, ok := s.planFromTable(ctx, kind, costs, rates); ok {
		return resp, nil
	}
	if err := s.tooTight(ctx); err != nil {
		return nil, err
	}
	return s.planExactCold(ctx, key, kind, costs, rates)
}

// planFromTable answers an exact-plan request from the first loaded
// plan table covering it: multilinear interpolation over precomputed
// exact optima, validated at build time against the table's error
// bound. Table answers are marshalled per request and never cached —
// the cache stays a pure memo of real computations, and a table hit is
// already microseconds of arithmetic. Out-of-grid configurations fall
// through to the ordinary cold path (admission gate included)
// unchanged.
func (s *Service) planFromTable(ctx context.Context, kind core.Kind, costs core.Costs, rates core.Rates) ([]byte, bool) {
	if len(s.cfg.Tables) == 0 {
		return nil, false
	}
	tm := obs.FromContext(ctx).Begin(obs.StageTable)
	for _, t := range s.cfg.Tables {
		ans, ok := t.Lookup(kind, costs, rates)
		if !ok {
			continue
		}
		b, err := marshalResponse(PlanResponse{
			Kind:         kind.String(),
			Exact:        true,
			Interpolated: true,
			N:            ans.N,
			M:            ans.M,
			W:            ans.W,
			Overhead:     ans.Overhead,
		})
		if err != nil {
			tm.End("miss")
			return nil, false
		}
		s.metrics.TableHits.Add(1)
		tm.End("hit")
		return b, true
	}
	tm.End("miss")
	return nil, false
}

func (s *Service) planExactCold(ctx context.Context, key Key, kind core.Kind, costs core.Costs, rates core.Rates) ([]byte, error) {
	sh := s.cache.shard(key)
	return s.cache.getOrCompute(ctx, key, func(fctx context.Context) ([]byte, error) {
		return s.gated(fctx, func(fctx context.Context) ([]byte, error) {
			first, err := analytic.Optimal(kind, costs, rates)
			if err != nil {
				return nil, err
			}
			var plan optimize.ExactPlan
			err = sh.withEvaluator(costs, rates, func(ev *analytic.Evaluator) error {
				var err error
				plan, err = optimize.ExactWithEvaluatorCtx(fctx, ev, first)
				return err
			})
			if err != nil {
				return nil, err
			}
			return marshalResponse(PlanResponse{
				Kind:     plan.Kind.String(),
				Exact:    true,
				N:        plan.N,
				M:        plan.M,
				W:        plan.W,
				Overhead: plan.Overhead,
			})
		})
	})
}

// gated runs one cold-plan computation through the admission gate:
// acquire a worker slot (shedding when the bounded queue is full), run
// the optional injected fault hook, compute, and record the wall time
// that feeds the Retry-After estimate. ctx is the flight context, so a
// queued computation whose every requester abandoned leaves the queue
// instead of occupying it.
func (s *Service) gated(ctx context.Context, fn func(context.Context) ([]byte, error)) ([]byte, error) {
	// ctx is the flight context; cache.getOrCompute stitched the flight
	// leader's trace into it, so the gate and compute spans land on the
	// trace of the request that started this computation.
	tr := obs.FromContext(ctx)
	gw := tr.Begin(obs.StageGateWait)
	if err := s.gate.acquire(ctx); err != nil {
		if err == ErrShed {
			s.metrics.Shed.Add(1)
			gw.End("shed")
		} else {
			gw.End("cancelled")
		}
		return nil, err
	}
	gw.End("admitted")
	defer s.gate.release()
	s.metrics.Admitted.Add(1)
	cc := tr.Begin(obs.StageColdCompute)
	if s.cfg.ColdFault != nil {
		if err := s.cfg.ColdFault(ctx); err != nil {
			cc.End("error")
			return nil, err
		}
	}
	start := s.cfg.Now()
	resp, err := fn(ctx)
	s.gate.observe(s.cfg.Now().Sub(start))
	if err != nil {
		cc.End("error")
	} else {
		cc.End("ok")
	}
	return resp, err
}

// tooTight reports (in degraded mode only) whether ctx's remaining
// budget is smaller than the estimated cold-plan latency, in which
// case attempting the exact search is pointless and the caller should
// degrade immediately.
func (s *Service) tooTight(ctx context.Context) error {
	if !s.cfg.Degraded {
		return nil
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	est := s.gate.estimate()
	if est > 0 && time.Until(dl).Seconds() < est {
		return ErrTooTight
	}
	return nil
}

// DegradedPlanExact is the graceful-degradation fallback of PlanExact:
// the first-order Table 1 plan (the exact search's seed), evaluated
// once under the exact model so the response carries both its real
// predicted overhead and the delta against the first-order estimate.
// Pure closed-form arithmetic plus one renewal evaluation — no search,
// no gate, deterministic and byte-stable across repeats. Degraded
// responses are never cached: a later healthy request for the same
// configuration must compute (and cache) the exact optimum.
func (s *Service) DegradedPlanExact(kind core.Kind, costs core.Costs, rates core.Rates) ([]byte, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("service: invalid pattern kind %d", int(kind))
	}
	first, err := analytic.Optimal(kind, costs, rates)
	if err != nil {
		return nil, err
	}
	ev, err := analytic.NewEvaluator(costs, rates)
	if err != nil {
		return nil, err
	}
	t, err := ev.ExpectedTime(first.Pattern)
	if err != nil {
		return nil, err
	}
	exactH := t/first.W - 1
	return marshalResponse(PlanResponse{
		Kind:          first.Kind.String(),
		N:             first.N,
		M:             first.M,
		W:             first.W,
		Overhead:      exactH,
		Degraded:      true,
		DegradedDelta: exactH - first.Overhead,
	})
}

// Evaluate returns the marshalled exact expected time of a
// caller-supplied pattern. Arbitrary patterns are not cached (their
// identity is not covered by the (family, Costs, Rates) key), but the
// computation still reuses the evaluator of the shard owning the
// (costs, rates) configuration.
func (s *Service) Evaluate(p core.Pattern, costs core.Costs, rates core.Rates) ([]byte, error) {
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	if err := rates.Validate(); err != nil {
		return nil, err
	}
	sh := s.cache.shard(EncodeKey(ModeEvaluate, 0, costs, rates))
	var t float64
	err := sh.withEvaluator(costs, rates, func(ev *analytic.Evaluator) error {
		var err error
		t, err = ev.ExpectedTime(p)
		return err
	})
	if err != nil {
		return nil, err
	}
	return marshalResponse(EvaluateResponse{ExpectedTime: t, Overhead: t/p.W - 1})
}

// marshalResponse marshals a response body. encoding/json is
// deterministic for struct values, which is what makes the cached
// bytes byte-identical to a cold computation's.
func marshalResponse(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("service: marshal response: %w", err)
	}
	return b, nil
}
