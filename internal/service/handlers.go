package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"respat/internal/core"
	"respat/internal/obs"
	"respat/internal/platform"
	"respat/internal/sched"
)

// Request body limits: generous for single-plan bodies, larger for
// batches (which may carry thousands of items).
const (
	maxRequestBytes      = 1 << 20  // 1 MiB
	maxBatchRequestBytes = 16 << 20 // 16 MiB
	maxBatchItems        = 10000
)

// TimeoutHeader is the request header carrying a per-request deadline
// budget as a Go duration ("250ms", "2s"). It overrides the service's
// DefaultTimeout; requests without either run unbounded.
const TimeoutHeader = "X-Request-Timeout"

// OutcomeHeader is the response header labelling a request's overload
// disposition ("shed", "degraded", "deadline-exceeded"); absent on
// ordinary responses. The daemon's request log echoes it.
const OutcomeHeader = "X-Respatd-Outcome"

// maxRequestTimeout caps the budget a client may ask for; anything
// longer is clamped rather than rejected (the client asked for
// patience, it gets the maximum the service grants).
const maxRequestTimeout = 10 * time.Minute

// outcome labels a request's overload disposition for the outcome
// header and the daemon request log.
type outcome string

const (
	outcomeShed     outcome = "shed"
	outcomeDegraded outcome = "degraded"
	outcomeDeadline outcome = "deadline-exceeded"
)

// PlanRequest is the body of POST /v1/plan and /v1/plan/exact, and the
// configuration half of evaluate/batch items. Exactly one of Platform
// (a Table 2 name: Hera, Atlas, Coastal, Coastal-SSD) or the
// Costs+Rates pair must be given. Costs and Rates marshal with their Go
// field names (DiskCkpt, MemCkpt, ..., FailStop, Silent).
type PlanRequest struct {
	Kind     string      `json:"kind"`
	Platform string      `json:"platform,omitempty"`
	Costs    *core.Costs `json:"costs,omitempty"`
	Rates    *core.Rates `json:"rates,omitempty"`
}

// EvaluateRequest is the body of POST /v1/evaluate: an explicit pattern
// P(W, n, α, m, β) plus a platform or costs/rates configuration.
type EvaluateRequest struct {
	Pattern  *core.Pattern `json:"pattern"`
	Platform string        `json:"platform,omitempty"`
	Costs    *core.Costs   `json:"costs,omitempty"`
	Rates    *core.Rates   `json:"rates,omitempty"`
}

// BatchItem is one operation of a POST /v1/batch body: Op selects the
// endpoint ("plan", "plan/exact" or "evaluate"); the remaining fields
// are that endpoint's request.
type BatchItem struct {
	Op       string        `json:"op"`
	Kind     string        `json:"kind,omitempty"`
	Platform string        `json:"platform,omitempty"`
	Costs    *core.Costs   `json:"costs,omitempty"`
	Rates    *core.Rates   `json:"rates,omitempty"`
	Pattern  *core.Pattern `json:"pattern,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// BatchResponse carries one response per request, in request order:
// either the operation's normal response body or {"error": "..."}.
type BatchResponse struct {
	Responses []json.RawMessage `json:"responses"`
}

// errorBody is the JSON error envelope of every non-2xx response.
// TraceID carries the request's trace ID when the request was sampled,
// so a client error report joins against /debug/traces and the access
// log without header archaeology.
type errorBody struct {
	Error   string `json:"error"`
	TraceID string `json:"traceId,omitempty"`
}

// resolveConfig turns the (platform | costs+rates) request half into a
// concrete configuration.
func resolveConfig(platName string, costs *core.Costs, rates *core.Rates) (core.Costs, core.Rates, error) {
	if platName != "" {
		if costs != nil || rates != nil {
			return core.Costs{}, core.Rates{}, errors.New("give either platform or costs/rates, not both")
		}
		p, err := platform.ByName(platName)
		if err != nil {
			return core.Costs{}, core.Rates{}, err
		}
		return p.Costs, p.Rates, nil
	}
	if costs == nil || rates == nil {
		return core.Costs{}, core.Rates{}, errors.New("need a platform name or both costs and rates")
	}
	return *costs, *rates, nil
}

// Handler returns the service's HTTP API.
//
//	POST   /v1/plan            first-order Table 1 plan (cached)
//	POST   /v1/plan/exact      exact-model plan (cached)
//	POST   /v1/plan/multilevel optimal multilevel pattern (cached)
//	POST   /v1/evaluate        exact expected time of a supplied pattern
//	POST   /v1/batch           many items fanned over a bounded worker pool
//	POST   /v1/observe         feed an observation to an adaptive session
//	GET    /v1/adaptive        adaptive session state + recommended plan
//	DELETE /v1/adaptive        drop an adaptive session
//	GET    /healthz            liveness probe
//	GET    /metrics            JSON counters and latency quantiles
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", s.instrument(epPlan, maxRequestBytes, s.handlePlan))
	mux.HandleFunc("POST /v1/plan/exact", s.instrument(epPlanExact, maxRequestBytes, s.handlePlanExact))
	mux.HandleFunc("POST /v1/plan/multilevel", s.instrument(epPlanMultilevel, maxRequestBytes, s.handlePlanMultilevel))
	mux.HandleFunc("POST /v1/evaluate", s.instrument(epEvaluate, maxRequestBytes, s.handleEvaluate))
	mux.HandleFunc("POST /v1/batch", s.instrument(epBatch, maxBatchRequestBytes, s.handleBatch))
	mux.HandleFunc("POST /v1/observe", s.instrument(epObserve, maxRequestBytes, s.handleObserve))
	mux.HandleFunc("GET /v1/adaptive", s.instrument(epAdaptive, maxRequestBytes, s.handleAdaptive))
	mux.HandleFunc("DELETE /v1/adaptive", s.instrument(epAdaptiveDelete, maxRequestBytes, s.handleAdaptiveDelete))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			w.Header().Set("Content-Type", obs.PromContentType)
			s.WritePrometheus(w)
			return
		}
		writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cache.len(), s.SessionCount(), s.gate, s.peersDown()))
	})
	mux.HandleFunc("GET /debug/traces", s.DebugTraces)
	return mux
}

// DebugTraces serves the tracer's retained traces as JSON, most recent
// first. It is on the API mux at GET /debug/traces and exported so
// cmd/respatd can also mount it on the -debug-addr listener.
func (s *Service) DebugTraces(w http.ResponseWriter, r *http.Request) {
	recs := s.tracer.Traces()
	if recs == nil {
		recs = []obs.Record{}
	}
	writeJSON(w, http.StatusOK, recs)
}

// disposition carries response annotations from an endpoint handler
// back to instrument: the overload outcome label, and Retry-After
// advice relayed from a forwarded peer response (a peer's 429 must
// reach the client with the owner's estimate, not the entry replica's).
type disposition struct {
	out        outcome
	retryAfter int
}

// opHandler is one endpoint's body: it returns the response bytes or an
// error with an HTTP status, and may annotate the response through d.
type opHandler func(r *http.Request, d *disposition) ([]byte, int, error)

// instrument wraps an endpoint with the in-flight gauge, the trace
// sampling decision, the per-request deadline budget, the request body
// limit, latency recording, overload classification (shed → 429 +
// Retry-After, expired budget → 503) and the error envelope. The
// unsampled path adds one atomic add over the untraced build: Start
// returns nil and every later trace call is a nil-guarded no-op.
func (s *Service) instrument(ep endpointID, maxBytes int64, h opHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.InFlight.Add(1)
		tr := s.tracer.Start(ep.String(), r.Header.Get(obs.TraceHeader), r.Header.Get(ForwardedHeader))
		start := time.Now()
		// 500 until a handler outcome overwrites it, so a handler panic
		// (recovered by net/http) still counts as a server error.
		status := http.StatusInternalServerError
		var d disposition
		// Deferred so a handler panic cannot leak the in-flight gauge
		// or skip the latency observation and trace retirement.
		defer func() {
			s.metrics.InFlight.Add(-1)
			s.metrics.observe(ep, float64(time.Since(start).Nanoseconds()), status)
			tr.Finish(status, string(d.out))
		}()
		budget, err := requestBudget(r, s.cfg.DefaultTimeout)
		if err != nil {
			status = http.StatusBadRequest
			setTraceHeaders(w, tr)
			writeJSON(w, status, errorBody{Error: err.Error(), TraceID: tr.ID()})
			return
		}
		ctx := r.Context()
		if budget > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, budget)
			defer cancel()
		}
		if tr != nil {
			ctx = obs.NewContext(ctx, tr)
		}
		if ctx != r.Context() {
			r = r.WithContext(ctx)
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
		body, st, err := h(r, &d)
		status = st
		if err != nil {
			var tooBig *http.MaxBytesError
			switch {
			case errors.As(err, &tooBig):
				status = http.StatusRequestEntityTooLarge
			case errors.Is(err, ErrShed):
				// Load shed: advise the client when to come back,
				// derived from the observed cold-plan latencies.
				status = http.StatusTooManyRequests
				d.out = outcomeShed
				w.Header().Set("Retry-After", strconv.Itoa(s.gate.retryAfter()))
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled), errors.Is(err, ErrTooTight):
				status = http.StatusServiceUnavailable
				d.out = outcomeDeadline
				s.metrics.DeadlineExceeded.Add(1)
				err = fmt.Errorf("deadline exceeded: %w", err)
			}
			setOutcome(w, d.out)
			setTraceHeaders(w, tr)
			writeJSON(w, status, errorBody{Error: err.Error(), TraceID: tr.ID()})
			return
		}
		if d.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(d.retryAfter))
		}
		setOutcome(w, d.out)
		setTraceHeaders(w, tr)
		enc := tr.Begin(obs.StageEncode)
		writeBytes(w, status, body)
		enc.End("")
	}
}

// setOutcome stamps the overload-disposition header when one applies.
func setOutcome(w http.ResponseWriter, out outcome) {
	if out != "" {
		w.Header().Set(OutcomeHeader, string(out))
	}
}

// setTraceHeaders stamps a sampled request's response with its trace ID
// and the Server-Timing stage summary (spans recorded so far — the
// encode stage necessarily postdates the headers and appears only in
// the trace record). The bench client aggregates Server-Timing to
// attribute observed latency; the entry replica of a forwarded request
// stores the peer's value on the hop span.
func setTraceHeaders(w http.ResponseWriter, tr *obs.Trace) {
	if tr == nil {
		return
	}
	w.Header().Set(obs.TraceHeader, tr.ID())
	w.Header().Set("Server-Timing", tr.ServerTiming())
}

// requestBudget resolves a request's deadline budget: the
// TimeoutHeader duration when present (clamped to maxRequestTimeout),
// else the service default; 0 means unbounded.
func requestBudget(r *http.Request, def time.Duration) (time.Duration, error) {
	hdr := r.Header.Get(TimeoutHeader)
	if hdr == "" {
		return def, nil
	}
	d, err := time.ParseDuration(hdr)
	if err != nil {
		return 0, fmt.Errorf("bad %s header: %w", TimeoutHeader, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("bad %s header: %v is not positive", TimeoutHeader, d)
	}
	return min(d, maxRequestTimeout), nil
}

// degradable reports whether err should be answered with the
// first-order degraded plan instead of an overload failure.
func (s *Service) degradable(err error) bool {
	return s.cfg.Degraded && (errors.Is(err, ErrShed) || errors.Is(err, ErrTooTight))
}

func (s *Service) handlePlan(r *http.Request, d *disposition) ([]byte, int, error) {
	raw, kind, costs, rates, err := decodePlanRequest(r)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	// The local cache answers regardless of ownership (it only holds
	// keys this replica computed, typically while it owned them), then
	// a peer-owned key forwards; PlanCtx handles the rest locally.
	key := EncodeKey(ModePlan, kind, costs, rates)
	tm := obs.FromContext(r.Context()).Begin(obs.StageCacheLookup)
	resp, ok := s.cache.get(key)
	tm.End(hitMiss(ok))
	if ok {
		return resp, http.StatusOK, nil
	}
	if name, baseURL, ok := s.routePeer(r, key); ok {
		return s.forward(r.Context(), name, baseURL, r.URL.Path, raw, d)
	}
	body, err := s.PlanCtx(r.Context(), kind, costs, rates)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return body, http.StatusOK, nil
}

func (s *Service) handlePlanExact(r *http.Request, d *disposition) ([]byte, int, error) {
	raw, kind, costs, rates, err := decodePlanRequest(r)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	// Serving order: local cache, plan table (interpolation — never
	// enters the cold gate), owning peer, local cold path.
	key := EncodeKey(ModePlanExact, kind, costs, rates)
	tr := obs.FromContext(r.Context())
	tm := tr.Begin(obs.StageCacheLookup)
	resp, ok := s.cache.get(key)
	tm.End(hitMiss(ok))
	if ok {
		return resp, http.StatusOK, nil
	}
	if resp, ok := s.planFromTable(r.Context(), kind, costs, rates); ok {
		return resp, http.StatusOK, nil
	}
	if name, baseURL, ok := s.routePeer(r, key); ok {
		return s.forward(r.Context(), name, baseURL, r.URL.Path, raw, d)
	}
	body, err := s.PlanExactCtx(r.Context(), kind, costs, rates)
	if err != nil {
		if s.degradable(err) {
			cc := tr.Begin(obs.StageColdCompute)
			body, derr := s.DegradedPlanExact(kind, costs, rates)
			if derr == nil {
				cc.End("degraded")
				d.out = outcomeDegraded
				s.metrics.Degraded.Add(1)
				return body, http.StatusOK, nil
			}
			cc.End("error")
		}
		return nil, http.StatusBadRequest, err
	}
	return body, http.StatusOK, nil
}

func (s *Service) handleEvaluate(r *http.Request, d *disposition) ([]byte, int, error) {
	var req EvaluateRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	if req.Pattern == nil {
		return nil, http.StatusBadRequest, errors.New("missing pattern")
	}
	costs, rates, err := resolveConfig(req.Platform, req.Costs, req.Rates)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	body, err := s.Evaluate(*req.Pattern, costs, rates)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return body, http.StatusOK, nil
}

func (s *Service) handleBatch(r *http.Request, d *disposition) ([]byte, int, error) {
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	if len(req.Requests) > maxBatchItems {
		return nil, http.StatusBadRequest,
			fmt.Errorf("batch of %d items exceeds the limit of %d", len(req.Requests), maxBatchItems)
	}
	// Fan the items over the bounded pool of internal/sched — the same
	// discipline the experiment harness uses for campaign cells: items
	// are claimed in index order and each writes only its own slot.
	// Item errors become per-item {"error": ...} entries, so the cell
	// function itself never fails. The request context flows into every
	// item, so an expired batch budget stops the remaining cold plans.
	ctx := r.Context()
	responses, _ := sched.Map(req.Requests, s.cfg.BatchWorkers,
		func(i int, item BatchItem) (json.RawMessage, error) {
			return s.batchItem(ctx, item), nil
		})
	body, err := marshalResponse(BatchResponse{Responses: responses})
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	return body, http.StatusOK, nil
}

// batchItem executes one batch operation, folding its error (if any)
// into the response entry.
func (s *Service) batchItem(ctx context.Context, item BatchItem) json.RawMessage {
	body, err := func() ([]byte, error) {
		switch item.Op {
		case "plan", "plan/exact":
			kind, err := core.ParseKind(item.Kind)
			if err != nil {
				return nil, err
			}
			costs, rates, err := resolveConfig(item.Platform, item.Costs, item.Rates)
			if err != nil {
				return nil, err
			}
			if item.Op == "plan" {
				return s.PlanCtx(ctx, kind, costs, rates)
			}
			return s.PlanExactCtx(ctx, kind, costs, rates)
		case "evaluate":
			if item.Pattern == nil {
				return nil, errors.New("missing pattern")
			}
			costs, rates, err := resolveConfig(item.Platform, item.Costs, item.Rates)
			if err != nil {
				return nil, err
			}
			return s.Evaluate(*item.Pattern, costs, rates)
		default:
			return nil, fmt.Errorf("unknown op %q (plan, plan/exact, evaluate)", item.Op)
		}
	}()
	if err != nil {
		// Marshalling a flat string-field struct cannot fail.
		b, _ := json.Marshal(errorBody{Error: err.Error()})
		return b
	}
	return body
}

// decodePlanRequest parses and resolves the shared plan request body.
// It also returns the raw body bytes, which the cluster forwarding
// path replays to the owning peer unmodified.
func decodePlanRequest(r *http.Request) (raw []byte, kind core.Kind, costs core.Costs, rates core.Rates, err error) {
	tm := obs.FromContext(r.Context()).Begin(obs.StageDecode)
	defer func() { tm.End(errOutcome(err)) }()
	raw, err = io.ReadAll(r.Body)
	if err != nil {
		return nil, 0, core.Costs{}, core.Rates{}, fmt.Errorf("bad request body: %w", err)
	}
	var req PlanRequest
	if err := decodeJSON(raw, &req); err != nil {
		return nil, 0, core.Costs{}, core.Rates{}, err
	}
	kind, err = core.ParseKind(req.Kind)
	if err != nil {
		return nil, 0, core.Costs{}, core.Rates{}, err
	}
	costs, rates, err = resolveConfig(req.Platform, req.Costs, req.Rates)
	if err != nil {
		return nil, 0, core.Costs{}, core.Rates{}, err
	}
	return raw, kind, costs, rates, nil
}

// errOutcome labels a span by whether its stage failed.
func errOutcome(err error) string {
	if err != nil {
		return "error"
	}
	return "ok"
}

// decodeBody strictly decodes one JSON body: unknown fields and
// trailing garbage are errors, so client typos fail loudly instead of
// silently planning defaults.
func decodeBody(r *http.Request, v any) (err error) {
	tm := obs.FromContext(r.Context()).Begin(obs.StageDecode)
	defer func() { tm.End(errOutcome(err)) }()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return decodeJSON(raw, v)
}

// decodeJSON is decodeBody over already-read bytes.
func decodeJSON(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return errors.New("bad request body: trailing data")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	writeBytes(w, status, b)
}

func writeBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}
