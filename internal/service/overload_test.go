package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"respat/internal/core"
	"respat/internal/multilevel"
	"respat/internal/platform"
)

// testConfig returns a distinct planning configuration per i, so tests
// can mint arbitrary numbers of cold keys.
func testConfig(i int) (core.Costs, core.Rates) {
	return core.Costs{DiskCkpt: float64(60 + i), DiskRec: 30, Recall: 1},
		core.Rates{FailStop: 1e-7}
}

// TestGateBoundStrict: the wait queue never admits more than its
// capacity — the acquire after workers+queue are held is shed, and a
// release lets exactly one more through.
func TestGateBoundStrict(t *testing.T) {
	const workers, queue = 2, 3
	g := newGate(workers, queue)
	ctx := context.Background()

	// Fill the worker slots.
	for i := 0; i < workers; i++ {
		if err := g.acquire(ctx); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	// Fill the wait queue with blocked acquirers.
	var wg sync.WaitGroup
	errs := make(chan error, queue)
	for i := 0; i < queue; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- g.acquire(ctx)
		}()
	}
	waitFor(t, func() bool { return g.depth() == queue })

	// Queue full: the next acquire is shed immediately.
	if err := g.acquire(ctx); !errors.Is(err, ErrShed) {
		t.Fatalf("acquire over capacity = %v, want ErrShed", err)
	}
	if g.maxDepth() > queue {
		t.Fatalf("high-water %d exceeds bound %d", g.maxDepth(), queue)
	}

	// Releasing drains the queue: each release frees one slot for one
	// queued waiter, so queue-many releases let every waiter through.
	for i := 0; i < queue; i++ {
		g.release()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	}
}

// TestGateQueuedAcquireHonoursContext: a queued caller whose context
// expires leaves the queue promptly instead of occupying it.
func TestGateQueuedAcquireHonoursContext(t *testing.T) {
	g := newGate(1, 4)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire = %v, want DeadlineExceeded", err)
	}
	if g.depth() != 0 {
		t.Fatalf("queue depth %d after abandoned acquire, want 0", g.depth())
	}
	g.release()
}

// TestGetOrComputeTimerDeadline: a waiter whose budget expires
// mid-computation abandons the flight promptly instead of riding it
// to completion.
func TestGetOrComputeTimerDeadline(t *testing.T) {
	var m Metrics
	c := newCache(2, 16, &m)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.getOrCompute(ctx, testKey(7), func(fctx context.Context) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		return []byte("{}"), nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("waiter did not abandon promptly (%v)", elapsed)
	}
}

// TestLongSearchInterrupted pins deadline enforcement against a real
// CPU-bound search, no injection: a 50ms budget must interrupt the
// multi-second L=4 multilevel search within the scheduler's
// best-effort window (see DESIGN.md §2.8), far short of running it to
// completion.
func TestLongSearchInterrupted(t *testing.T) {
	pl, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	p4, err := multilevel.FromPlatform(pl, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, perr := s.PlanMultilevelCtx(ctx, p4)
	elapsed := time.Since(start)
	if !errors.Is(perr, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v (after %v)", perr, elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; search not interrupted", elapsed)
	}
}

// TestPlanExactCancelledNotCached: a cancelled exact plan returns the
// context error and leaves nothing behind — the next call computes
// the full search and caches it.
func TestPlanExactCancelledNotCached(t *testing.T) {
	s := New(Config{})
	costs, rates := testConfig(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.PlanExactCtx(ctx, core.PD, costs, rates); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled PlanExactCtx = %v, want Canceled", err)
	}
	if n := s.cache.len(); n != 0 {
		t.Fatalf("cache holds %d entries after cancelled plan, want 0", n)
	}
	got, err := s.PlanExact(core.PD, costs, rates)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.PlanExact(core.PD, costs, rates)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("post-cancel plan not cached byte-identically")
	}
}

// TestMalformedBodiesRacingCacheFills hammers the handler with an
// interleaving of malformed bodies and valid requests for a small key
// set: the malformed ones all get 400, the valid ones all get 200, and
// nothing panics or deadlocks under -race.
func TestMalformedBodiesRacingCacheFills(t *testing.T) {
	h := New(Config{ColdWorkers: 2, ColdQueue: 64}).Handler()
	bad := []string{
		``,
		`{`,
		`{"kind":"PD"}`,
		`{"kind":"PD","platform":"Hera","costs":{"DiskCkpt":1}}`,
		`{"kind":"nope","platform":"Hera"}`,
		`{"kind":"PD","platform":"Hera"}trailing`,
		`{"kind":"PD","platform":"Hera","unknown":1}`,
	}
	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if i%2 == 0 {
					body := bad[(g+i)%len(bad)]
					w := postJSON(t, h, "/v1/plan/exact", body)
					if w.Code != http.StatusBadRequest {
						t.Errorf("malformed body %q: status %d, want 400", body, w.Code)
					}
					continue
				}
				costs, _ := testConfig(i % 4)
				body := fmt.Sprintf(`{"kind":"PD","costs":{"DiskCkpt":%g,"DiskRec":%g,"Recall":1},"rates":{"FailStop":1e-7}}`,
					costs.DiskCkpt, costs.DiskRec)
				w := postJSON(t, h, "/v1/plan/exact", body)
				if w.Code != http.StatusOK {
					t.Errorf("valid body: status %d: %s", w.Code, w.Body.String())
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDeleteMissingSessionConcurrent: concurrent DELETEs for one
// session leave exactly one 200 and the rest 404 — the session table
// mutation is atomic.
func TestDeleteMissingSessionConcurrent(t *testing.T) {
	h := New(Config{}).Handler()
	if w := postJSON(t, h, "/v1/observe", `{"session":"gone","kind":"PD","platform":"Hera"}`); w.Code != http.StatusOK {
		t.Fatalf("create session: %d", w.Code)
	}
	const deleters = 8
	codes := make([]int, deleters)
	var wg sync.WaitGroup
	for i := 0; i < deleters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodDelete, "/v1/adaptive?session=gone", nil)
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()
	ok, notFound := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusNotFound:
			notFound++
		default:
			t.Errorf("unexpected DELETE status %d", c)
		}
	}
	if ok != 1 || notFound != deleters-1 {
		t.Errorf("deletes resolved as %d ok / %d not-found, want 1 / %d", ok, notFound, deleters-1)
	}
}

// TestMetricsSnapshotRace reads /metrics concurrently with traffic that
// touches every counter the snapshot reads (cache, gate, sessions),
// relying on -race to flag unsynchronised access.
func TestMetricsSnapshotRace(t *testing.T) {
	s := New(Config{ColdWorkers: 2, ColdQueue: 2})
	h := s.Handler()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			costs, _ := testConfig(i % 8)
			body := fmt.Sprintf(`{"kind":"PD","costs":{"DiskCkpt":%g,"DiskRec":30,"Recall":1},"rates":{"FailStop":1e-7}}`, costs.DiskCkpt)
			postJSON(t, h, "/v1/plan/exact", body)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			postJSON(t, h, "/v1/observe",
				fmt.Sprintf(`{"session":"s%d","kind":"PD","platform":"Hera"}`, i%4))
		}
	}()
	for i := 0; i < 50; i++ {
		if w := getPath(t, h, "/metrics"); w.Code != http.StatusOK {
			t.Fatalf("/metrics status %d", w.Code)
		}
	}
	close(stop)
	wg.Wait()
}

// TestTimeoutHeaderParsing covers the budget-resolution edges the
// chaos suite doesn't: clamping, defaults and rejection.
func TestTimeoutHeaderParsing(t *testing.T) {
	req := func(hdr string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader("{}"))
		if hdr != "" {
			r.Header.Set(TimeoutHeader, hdr)
		}
		return r
	}
	if d, err := requestBudget(req(""), 42*time.Second); err != nil || d != 42*time.Second {
		t.Errorf("no header: (%v, %v), want default 42s", d, err)
	}
	if d, err := requestBudget(req("250ms"), 0); err != nil || d != 250*time.Millisecond {
		t.Errorf("250ms: (%v, %v)", d, err)
	}
	if d, err := requestBudget(req("24h"), 0); err != nil || d != maxRequestTimeout {
		t.Errorf("24h: (%v, %v), want clamp to %v", d, err, maxRequestTimeout)
	}
	for _, bad := range []string{"soon", "-1s", "0s"} {
		if _, err := requestBudget(req(bad), 0); err == nil {
			t.Errorf("header %q accepted, want error", bad)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
