package service

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"testing"

	"respat/internal/core"
	"respat/internal/multilevel"
	"respat/internal/platform"
)

// randMultilevelParams draws a random valid multilevel configuration
// with the given hierarchy depth.
func randMultilevelParams(rng *rand.Rand, levels int) multilevel.Params {
	p := multilevel.Params{
		Levels:  make([]multilevel.Level, levels),
		GuarVer: rng.Float64() * 50,
		PartVer: rng.Float64(),
		Recall:  0.05 + 0.95*rng.Float64(),
		Rates:   core.Rates{FailStop: rng.Float64() * 1e-5, Silent: rng.Float64() * 1e-5},
	}
	rest := 1.0
	for l := 0; l < levels; l++ {
		p.Levels[l] = multilevel.Level{
			Ckpt: rng.Float64() * 1000,
			Rec:  rng.Float64() * 1000,
		}
		share := rest * rng.Float64()
		if l == levels-1 {
			share = rest
		}
		p.Levels[l].Share = share
		rest -= share
	}
	return p
}

// TestMultilevelKeyInjectiveAcrossLevelVectors: the canonical key
// separates distinct level vectors — any perturbation of any per-level
// field, any scalar, the family flag or the hierarchy depth changes
// the key, and equal configurations (including ±0 fields) encode
// identically.
func TestMultilevelKeyInjectiveAcrossLevelVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	perturb := func(f *float64) { *f = math.Nextafter(*f, math.Inf(1)) }
	for i := 0; i < 200; i++ {
		levels := 1 + rng.Intn(multilevel.MaxLevels)
		p := randMultilevelParams(rng, levels)
		if err := p.Validate(); err != nil {
			t.Fatalf("random params invalid: %v", err)
		}
		base := EncodeMultilevelKey(p)

		// Determinism across deep copies.
		cp := p
		cp.Levels = append([]multilevel.Level(nil), p.Levels...)
		if EncodeMultilevelKey(cp) != base {
			t.Fatal("equal configurations produced different keys")
		}
		// Per-level field perturbations.
		for l := 0; l < levels; l++ {
			for f := 0; f < 3; f++ {
				cp := p
				cp.Levels = append([]multilevel.Level(nil), p.Levels...)
				switch f {
				case 0:
					perturb(&cp.Levels[l].Ckpt)
				case 1:
					perturb(&cp.Levels[l].Rec)
				case 2:
					perturb(&cp.Levels[l].Share)
				}
				if EncodeMultilevelKey(cp) == base {
					t.Fatalf("perturbing level %d field %d did not change the key", l+1, f)
				}
			}
		}
		// Scalar perturbations and the family flag.
		for f := 0; f < 5; f++ {
			cp := p
			cp.Levels = append([]multilevel.Level(nil), p.Levels...)
			switch f {
			case 0:
				perturb(&cp.GuarVer)
			case 1:
				perturb(&cp.PartVer)
			case 2:
				perturb(&cp.Recall)
			case 3:
				perturb(&cp.Rates.FailStop)
			case 4:
				perturb(&cp.Rates.Silent)
			}
			if EncodeMultilevelKey(cp) == base {
				t.Fatalf("perturbing scalar %d did not change the key", f)
			}
		}
		cp = p
		cp.InteriorGuaranteed = !p.InteriorGuaranteed
		if EncodeMultilevelKey(cp) == base {
			t.Fatal("flipping InteriorGuaranteed did not change the key")
		}
	}
}

// TestMultilevelKeyDepthNotConfusedWithPadding: a hierarchy extended
// by an all-zero level never collides with the shorter hierarchy
// (the depth byte pins how many level slots are meaningful), and the
// multilevel mode never collides with the single-level modes.
func TestMultilevelKeyDepthNotConfusedWithPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 100; i++ {
		levels := 1 + rng.Intn(multilevel.MaxLevels-1)
		p := randMultilevelParams(rng, levels)
		padded := p
		padded.Levels = append(append([]multilevel.Level(nil), p.Levels...), multilevel.Level{})
		if EncodeMultilevelKey(p) == EncodeMultilevelKey(padded) {
			t.Fatal("zero-padded deeper hierarchy collided with the shorter one")
		}
	}
	// ±0 normalisation holds for multilevel fields too.
	p := randMultilevelParams(rng, 2)
	p.Levels[0].Ckpt = 0
	n := p
	n.Levels = append([]multilevel.Level(nil), p.Levels...)
	n.Levels[0].Ckpt = math.Copysign(0, -1)
	if EncodeMultilevelKey(p) != EncodeMultilevelKey(n) {
		t.Fatal("-0.0 level field produced a different key than +0.0")
	}
}

// TestMultilevelCachedByteIdenticalToCold: the §3 memo contract for
// the multilevel endpoint — a cache hit serves exactly the bytes a
// cold computation produced, both through the Go API and over HTTP.
func TestMultilevelCachedByteIdenticalToCold(t *testing.T) {
	warm := New(Config{})
	for _, pl := range platform.Table2() {
		for levels := 1; levels <= 3; levels++ {
			p, err := multilevel.FromPlatform(pl, levels)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := warm.PlanMultilevel(p)
			if err != nil {
				t.Fatal(err)
			}
			hot, err := warm.PlanMultilevel(p)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := New(Config{}).PlanMultilevel(p)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cold, hot) || !bytes.Equal(hot, fresh) {
				t.Fatalf("%s L=%d: cached multilevel plan bytes differ from cold computation", pl.Name, levels)
			}
		}
	}
	if warm.Metrics().Hits.Load() == 0 {
		t.Fatal("no cache hits recorded")
	}
}

// TestMultilevelEndpoint: the HTTP face — platform form, explicit
// params form, response shape and strict request decoding.
func TestMultilevelEndpoint(t *testing.T) {
	h := New(Config{}).Handler()
	w := postJSON(t, h, "/v1/plan/multilevel", `{"platform":"Hera","levels":2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp MultilevelPlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Levels != 2 || len(resp.Counts) != 2 || resp.Counts[1] != 1 {
		t.Fatalf("response %+v: want a 2-level plan with n_2 = 1", resp)
	}
	if resp.W <= 0 || resp.Overhead <= 0 || resp.M < 1 {
		t.Fatalf("response %+v: degenerate plan", resp)
	}

	// Explicit params form matches the derived configuration.
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	p, err := multilevel.FromPlatform(hera, 2)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(MultilevelPlanRequest{Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	w2 := postJSON(t, h, "/v1/plan/multilevel", string(body))
	if w2.Code != http.StatusOK {
		t.Fatalf("explicit params: status %d: %s", w2.Code, w2.Body.String())
	}
	if !bytes.Equal(bytes.TrimSpace(w.Body.Bytes()), bytes.TrimSpace(w2.Body.Bytes())) {
		t.Fatal("platform form and equivalent explicit params served different bytes")
	}

	for _, bad := range []string{
		`{"platform":"Hera"}`,                      // missing levels
		`{"levels":2}`,                             // missing configuration
		`{"platform":"Hera","levels":9}`,           // beyond MaxLevels
		`{"platform":"Hera","levels":2,"x":1}`,     // unknown field
		`{"params":{"Levels":[]},"levels":1}`,      // levels with params
		`{"platform":"Nowhere","levels":2}`,        // unknown platform
		`{"params":{"Levels":[],"Recall":0.5}}`,    // invalid params
		`{"platform":"Hera","levels":2}{"x": "y"}`, // trailing data
	} {
		if w := postJSON(t, h, "/v1/plan/multilevel", bad); w.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", bad, w.Code)
		}
	}
}

// TestMultilevelMetricsLabelled: /metrics reports the multilevel
// endpoint's latency quantiles under its own label, separate from
// plan_exact.
func TestMultilevelMetricsLabelled(t *testing.T) {
	svc := New(Config{})
	h := svc.Handler()
	if w := postJSON(t, h, "/v1/plan/multilevel", `{"platform":"Hera","levels":2}`); w.Code != http.StatusOK {
		t.Fatalf("plan/multilevel: %d", w.Code)
	}
	if w := postJSON(t, h, "/v1/plan/exact", `{"kind":"PD","platform":"Hera"}`); w.Code != http.StatusOK {
		t.Fatalf("plan/exact: %d", w.Code)
	}
	w := getPath(t, h, "/metrics")
	var snap Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	ml, ok := snap.Endpoints["plan_multilevel"]
	if !ok {
		t.Fatal("no plan_multilevel endpoint row in /metrics")
	}
	if ml.Requests != 1 || ml.Latency.Count != 1 {
		t.Errorf("plan_multilevel row %+v: want 1 request / 1 latency observation", ml)
	}
	if ex := snap.Endpoints["plan_exact"]; ex.Requests != 1 {
		t.Errorf("plan_exact row %+v: want exactly the one exact request (not pooled)", ex)
	}
}

// TestMultilevelHotPathZeroAlloc is the CI gate preserving the PR 2
// contract on the new endpoint: a multilevel plan cache hit — key
// encoding plus the sharded LRU lookup — performs zero allocations.
func TestMultilevelHotPathZeroAlloc(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	p, err := multilevel.FromPlatform(hera, 3)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{})
	if _, err := svc.PlanMultilevel(p); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := svc.PlanMultilevel(p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("multilevel plan cache hit allocates: %v allocs/op, want 0", allocs)
	}
}
