// Package service is the online planning layer of respat: a
// high-throughput, concurrency-safe front end over the Table 1 planner
// (analytic.Optimal), the exact-model planner (optimize.Exact), the
// exact expected-time evaluator (analytic.Evaluator) and the adaptive
// re-planning sessions of internal/adapt, designed to serve plan
// lookups at high request rates.
//
// Three mechanisms make the hot path cheap:
//
//   - a sharded LRU cache of fully marshalled responses, keyed by a
//     canonical fixed-width binary encoding of (family, Costs, Rates)
//     (see Key) — a hit is one map lookup plus an LRU splice, with no
//     allocation and no float formatting;
//   - singleflight request coalescing — concurrent misses on the same
//     key run the computation once and share the result;
//   - per-shard evaluator reuse — a shard serves every request of the
//     configurations hashing to it, so it keeps one
//     *analytic.Evaluator warm under a shard-local lock, honouring the
//     evaluator's not-concurrency-safe contract.
//
// The cache is a pure memo: a cached response is byte-identical to what
// a cold computation would produce (asserted by tests; see DESIGN.md
// §3). Batch requests fan out over the bounded worker discipline of
// internal/sched, the same scheduler the experiment harness uses for
// campaign cells.
//
// Adaptive sessions (POST /v1/observe, GET /v1/adaptive) are kept in a
// capped in-memory table; the plan a session recommends is served
// through the same cache, so it is byte-identical to a cold
// /v1/plan at the fitted rates and inherits the coalescing guarantees.
// The full HTTP reference lives in docs/api.md.
package service
