package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"respat/internal/core"
	"respat/internal/platform"
)

// fakeNet is an in-process cluster network: every replica's handler is
// reachable under its member name as host. It records the forwarded
// requests it carries and can cut a replica off to simulate a crash.
type fakeNet struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	dead     map[string]bool
	forwards []string // ForwardedHeader value of each forwarded request
}

func newFakeNet() *fakeNet {
	return &fakeNet{handlers: make(map[string]http.Handler), dead: make(map[string]bool)}
}

func (f *fakeNet) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	f.mu.Lock()
	h, ok := f.handlers[host]
	dead := f.dead[host]
	if v := req.Header.Get(ForwardedHeader); v != "" {
		f.forwards = append(f.forwards, v)
	}
	f.mu.Unlock()
	if !ok || dead {
		return nil, fmt.Errorf("fakenet: host %q unreachable", host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

func (f *fakeNet) setDead(host string, dead bool) {
	f.mu.Lock()
	f.dead[host] = dead
	f.mu.Unlock()
}

func (f *fakeNet) forwardLog() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.forwards...)
}

// newTestCluster builds n in-process replicas named r0..r(n-1) joined
// through a fakeNet.
func newTestCluster(t *testing.T, n int, cfg Config) ([]*Service, []http.Handler, *fakeNet) {
	t.Helper()
	net := newFakeNet()
	members := make([]Member, n)
	for i := range members {
		name := fmt.Sprintf("r%d", i)
		members[i] = Member{Name: name, URL: "http://" + name}
	}
	services := make([]*Service, n)
	handlers := make([]http.Handler, n)
	for i := range services {
		services[i] = New(cfg)
		if err := services[i].EnableCluster(ClusterConfig{
			Self:         members[i].Name,
			Members:      members,
			VNodes:       64,
			Seed:         9,
			Transport:    net,
			ProbeTimeout: time.Second,
		}); err != nil {
			t.Fatal(err)
		}
		handlers[i] = services[i].Handler()
		net.mu.Lock()
		net.handlers[members[i].Name] = handlers[i]
		net.mu.Unlock()
	}
	return services, handlers, net
}

// do sends one request to a replica handler as an external client.
func do(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// clusterRequests is a spread of cacheable plan requests across all
// three routed endpoints and several configurations, so the key space
// exercises every replica.
func clusterRequests() []struct{ path, body string } {
	var reqs []struct{ path, body string }
	for _, plat := range []string{"Hera", "Atlas", "Coastal", "Coastal-SSD"} {
		for _, kind := range []string{"PD", "PDV", "PDMV"} {
			body := fmt.Sprintf(`{"kind":%q,"platform":%q}`, kind, plat)
			reqs = append(reqs,
				struct{ path, body string }{"/v1/plan", body},
				struct{ path, body string }{"/v1/plan/exact", body})
		}
		reqs = append(reqs, struct{ path, body string }{
			"/v1/plan/multilevel",
			fmt.Sprintf(`{"platform":%q,"levels":2}`, plat),
		})
	}
	return reqs
}

// TestClusterByteIdenticalAnyEntry is the headline distributed
// property: every replica returns byte-identical responses for every
// request, each taking at most one forwarding hop, and each distinct
// configuration is computed exactly once cluster-wide.
func TestClusterByteIdenticalAnyEntry(t *testing.T) {
	services, handlers, net := newTestCluster(t, 3, Config{})
	for _, rq := range clusterRequests() {
		var want []byte
		for entry, h := range handlers {
			before := len(net.forwardLog())
			rec := do(h, http.MethodPost, rq.path, rq.body)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s via r%d: status %d: %s", rq.path, entry, rec.Code, rec.Body.Bytes())
			}
			if hops := len(net.forwardLog()) - before; hops > 1 {
				t.Fatalf("%s via r%d took %d forwarding hops, want <= 1", rq.path, entry, hops)
			}
			if entry == 0 {
				want = append([]byte(nil), rec.Body.Bytes()...)
			} else if !bytes.Equal(rec.Body.Bytes(), want) {
				t.Fatalf("%s via r%d differs from r0:\n%s\nvs\n%s", rq.path, entry, rec.Body.Bytes(), want)
			}
		}
	}
	// Loop-guarded forwards carry exactly one replica name: a second
	// hop would have overwritten the header at a replica that, by the
	// guard, never forwards.
	for _, from := range net.forwardLog() {
		if from != "r0" && from != "r1" && from != "r2" {
			t.Fatalf("forwarded request carries unexpected origin %q", from)
		}
	}
	// Each distinct configuration computed exactly once cluster-wide:
	// total cache misses across replicas equals the distinct request
	// count (each request body is one distinct key).
	var misses int64
	for _, s := range services {
		misses += s.Metrics().Misses.Load()
	}
	if want := int64(len(clusterRequests())); misses != want {
		t.Fatalf("cluster computed %d cold plans for %d distinct configurations", misses, want)
	}
}

// TestClusterKillReplicaDegradesOnlyItsRange kills one replica and
// asserts (a) before a health check, only its key range fails — other
// ranges still answer; (b) after CheckPeerHealth rebuilds the ring,
// its former range is served by the survivors; (c) recovery restores
// the original routing.
func TestClusterKillReplicaDegradesOnlyItsRange(t *testing.T) {
	services, handlers, net := newTestCluster(t, 3, Config{})
	entry := services[0]

	// Partition the request spread by owning replica, as routed from r0.
	ownedBy := make(map[string][]struct{ path, body string })
	for _, rq := range clusterRequests() {
		if rq.path != "/v1/plan/exact" {
			continue
		}
		var req PlanRequest
		if err := json.Unmarshal([]byte(rq.body), &req); err != nil {
			t.Fatal(err)
		}
		kind, err := core.ParseKind(req.Kind)
		if err != nil {
			t.Fatal(err)
		}
		p, err := platform.ByName(req.Platform)
		if err != nil {
			t.Fatal(err)
		}
		owner := entry.Owner(EncodeKey(ModePlanExact, kind, p.Costs, p.Rates))
		ownedBy[owner] = append(ownedBy[owner], rq)
	}
	// The victim is a peer of r0 that owns at least one request.
	victim := ""
	for _, name := range []string{"r1", "r2"} {
		if len(ownedBy[name]) > 0 {
			victim = name
			break
		}
	}
	if victim == "" {
		t.Fatal("no peer of r0 owns any test key; widen the request spread")
	}

	net.setDead(victim, true)
	for owner, reqs := range ownedBy {
		want := http.StatusOK
		if owner == victim {
			want = http.StatusBadGateway
		}
		for _, rq := range reqs {
			if rec := do(handlers[0], http.MethodPost, rq.path, rq.body); rec.Code != want {
				t.Fatalf("with %s dead, %s key %s via r0: status %d, want %d",
					victim, owner, rq.body, rec.Code, want)
			}
		}
	}
	if entry.Metrics().ForwardErrors.Load() == 0 {
		t.Fatal("dead-peer forwards did not count as forward errors")
	}

	// Health check: every live replica notices and drops the victim.
	ctx := context.Background()
	for i, s := range services {
		if fmt.Sprintf("r%d", i) == victim {
			continue
		}
		healthy := s.CheckPeerHealth(ctx)
		if healthy[victim] {
			t.Fatalf("r%d still sees %s as healthy", i, victim)
		}
	}
	if entry.peersDown() != 1 {
		t.Fatalf("peersDown = %d after losing one replica", entry.peersDown())
	}
	// The victim's former range now answers from the survivors, and
	// the victim no longer owns any key.
	for _, rq := range ownedBy[victim] {
		if rec := do(handlers[0], http.MethodPost, rq.path, rq.body); rec.Code != http.StatusOK {
			t.Fatalf("after rebalance, former %s key via r0: status %d: %s", victim, rec.Code, rec.Body.Bytes())
		}
	}

	// Recovery: the replica comes back, health checks restore the ring.
	net.setDead(victim, false)
	for i, s := range services {
		if fmt.Sprintf("r%d", i) == victim {
			continue
		}
		if healthy := s.CheckPeerHealth(ctx); !healthy[victim] {
			t.Fatalf("r%d still sees recovered %s as down", i, victim)
		}
	}
	if entry.peersDown() != 0 {
		t.Fatalf("peersDown = %d after recovery", entry.peersDown())
	}
	for _, rq := range ownedBy[victim] {
		if rec := do(handlers[0], http.MethodPost, rq.path, rq.body); rec.Code != http.StatusOK {
			t.Fatalf("after recovery, %s key via r0: status %d", victim, rec.Code)
		}
	}
}

// TestClusterMetricsExposed asserts the /metrics document carries the
// distributed-serving counters.
func TestClusterMetricsExposed(t *testing.T) {
	_, handlers, _ := newTestCluster(t, 3, Config{})
	for _, rq := range clusterRequests() {
		do(handlers[1], http.MethodPost, rq.path, rq.body)
	}
	rec := do(handlers[1], http.MethodGet, "/metrics", "")
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Forwarded == 0 {
		t.Fatal("no forwards recorded in /metrics despite peer-owned keys")
	}
	if snap.PeersDown != 0 {
		t.Fatalf("peersDown = %d with all replicas alive", snap.PeersDown)
	}
}

// TestClusterForwardRace hammers all three replicas concurrently while
// a replica flaps dead/alive under health checks, then verifies the
// cluster neither raced (run with -race in CI) nor leaked goroutines.
func TestClusterForwardRace(t *testing.T) {
	baseline := runtime.NumGoroutine()
	services, handlers, net := newTestCluster(t, 3, Config{})
	reqs := clusterRequests()

	const (
		workers   = 8
		perWorker = 60
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 0x5eed))
			for i := 0; i < perWorker; i++ {
				rq := reqs[rng.IntN(len(reqs))]
				rec := do(handlers[rng.IntN(len(handlers))], http.MethodPost, rq.path, rq.body)
				if rec.Code != http.StatusOK && rec.Code != http.StatusBadGateway {
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.Bytes())
					return
				}
			}
		}(w)
	}
	// The flapper: r2 dies and recovers while health checks run on the
	// other replicas.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background()
		for i := 0; i < 20; i++ {
			net.setDead("r2", i%2 == 0)
			services[0].CheckPeerHealth(ctx)
			services[1].CheckPeerHealth(ctx)
		}
		net.setDead("r2", false)
		services[0].CheckPeerHealth(ctx)
		services[1].CheckPeerHealth(ctx)
	}()
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutine leak: %d running, baseline %d", n, baseline)
	}
}

// TestEnableClusterValidation covers the misconfiguration errors.
func TestEnableClusterValidation(t *testing.T) {
	good := []Member{{Name: "a", URL: "http://a"}, {Name: "b", URL: "http://b"}}
	cases := []struct {
		name string
		cfg  ClusterConfig
	}{
		{"missing self", ClusterConfig{Members: good}},
		{"self not a member", ClusterConfig{Self: "c", Members: good}},
		{"empty member name", ClusterConfig{Self: "a", Members: []Member{{Name: "a"}, {URL: "http://x"}}}},
		{"duplicate member", ClusterConfig{Self: "a", Members: []Member{{Name: "a"}, {Name: "a"}}}},
		{"peer without URL", ClusterConfig{Self: "a", Members: []Member{{Name: "a"}, {Name: "b"}}}},
	}
	for _, tc := range cases {
		if err := New(Config{}).EnableCluster(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	s := New(Config{})
	if err := s.EnableCluster(ClusterConfig{Self: "a", Members: good}); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableCluster(ClusterConfig{Self: "a", Members: good}); err == nil {
		t.Fatal("second EnableCluster accepted")
	}
}
