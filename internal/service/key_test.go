package service

import (
	"math"
	"math/rand"
	"testing"

	"respat/internal/core"
	"respat/internal/platform"
)

// randConfig draws a random valid (costs, rates) configuration.
func randConfig(rng *rand.Rand) (core.Costs, core.Rates) {
	c := core.Costs{
		DiskCkpt: rng.Float64() * 3000,
		MemCkpt:  rng.Float64() * 200,
		DiskRec:  rng.Float64() * 3000,
		MemRec:   rng.Float64() * 200,
		GuarVer:  rng.Float64() * 100,
		PartVer:  rng.Float64(),
		Recall:   0.05 + 0.95*rng.Float64(),
	}
	r := core.Rates{FailStop: rng.Float64() * 1e-5, Silent: rng.Float64() * 1e-5}
	return c, r
}

// TestKeyDeterministic: equal (Mode, Kind, Costs, Rates) values always
// produce identical key bytes, including across struct copies.
func TestKeyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		c, r := randConfig(rng)
		kind := core.Kinds()[rng.Intn(6)]
		mode := Mode(rng.Intn(3))
		c2, r2 := c, r
		if EncodeKey(mode, kind, c, r) != EncodeKey(mode, kind, c2, r2) {
			t.Fatalf("iteration %d: equal values produced different keys", i)
		}
	}
}

// TestKeyPerturbationChangesKey: any single-field change to any of the
// nine float parameters, the family or the mode changes the key.
func TestKeyPerturbationChangesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	perturb := func(f *float64) { *f = math.Nextafter(*f, math.Inf(1)) }
	fields := []struct {
		name string
		get  func(c *core.Costs, r *core.Rates) *float64
	}{
		{"DiskCkpt", func(c *core.Costs, r *core.Rates) *float64 { return &c.DiskCkpt }},
		{"MemCkpt", func(c *core.Costs, r *core.Rates) *float64 { return &c.MemCkpt }},
		{"DiskRec", func(c *core.Costs, r *core.Rates) *float64 { return &c.DiskRec }},
		{"MemRec", func(c *core.Costs, r *core.Rates) *float64 { return &c.MemRec }},
		{"GuarVer", func(c *core.Costs, r *core.Rates) *float64 { return &c.GuarVer }},
		{"PartVer", func(c *core.Costs, r *core.Rates) *float64 { return &c.PartVer }},
		{"Recall", func(c *core.Costs, r *core.Rates) *float64 { return &c.Recall }},
		{"FailStop", func(c *core.Costs, r *core.Rates) *float64 { return &r.FailStop }},
		{"Silent", func(c *core.Costs, r *core.Rates) *float64 { return &r.Silent }},
	}
	for i := 0; i < 200; i++ {
		c, r := randConfig(rng)
		kind := core.Kinds()[rng.Intn(6)]
		base := EncodeKey(ModePlan, kind, c, r)
		for _, f := range fields {
			c2, r2 := c, r
			perturb(f.get(&c2, &r2))
			if EncodeKey(ModePlan, kind, c2, r2) == base {
				t.Fatalf("iteration %d: perturbing %s did not change the key", i, f.name)
			}
		}
		if EncodeKey(ModePlanExact, kind, c, r) == base {
			t.Fatal("mode change did not change the key")
		}
		for _, other := range core.Kinds() {
			if other != kind && EncodeKey(ModePlan, other, c, r) == base {
				t.Fatalf("kind change %v -> %v did not change the key", kind, other)
			}
		}
	}
}

// TestKeyNegativeZeroCanonical: -0.0 and +0.0 encode identically, so
// two configurations comparing equal under == can never produce
// distinct cache entries.
func TestKeyNegativeZeroCanonical(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	c := hera.Costs
	c.PartVer = 0
	cNeg := c
	cNeg.PartVer = math.Copysign(0, -1)
	rNeg := hera.Rates
	rNeg.FailStop = 0
	rPos := rNeg
	rNeg.FailStop = math.Copysign(0, -1)
	if EncodeKey(ModePlan, core.PD, c, rPos) != EncodeKey(ModePlan, core.PD, cNeg, rNeg) {
		t.Fatal("-0.0 fields produced a different key than +0.0")
	}
}

// TestKeyGridNoCollisions: the full Table 2 platforms × six families ×
// cacheable modes grid yields pairwise-distinct keys.
func TestKeyGridNoCollisions(t *testing.T) {
	seen := make(map[Key]string)
	for _, p := range platform.Table2() {
		for _, k := range core.Kinds() {
			for _, mode := range []Mode{ModePlan, ModePlanExact} {
				key := EncodeKey(mode, k, p.Costs, p.Rates)
				id := p.Name + "/" + k.String() + "/" + mode.String()
				if prev, dup := seen[key]; dup {
					t.Fatalf("key collision: %s and %s", prev, id)
				}
				seen[key] = id
			}
		}
	}
	if len(seen) != 4*6*2 {
		t.Fatalf("expected %d distinct keys, got %d", 4*6*2, len(seen))
	}
}

// TestKeyShardStable: the shard assignment of a key is a pure function
// of its bytes, so a configuration is always served by the same shard
// (the evaluator-reuse invariant).
func TestKeyShardStable(t *testing.T) {
	c := newCache(16, 1024, &Metrics{})
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	key := EncodeKey(ModePlan, core.PDMV, hera.Costs, hera.Rates)
	want := c.shard(key)
	for i := 0; i < 32; i++ {
		if c.shard(EncodeKey(ModePlan, core.PDMV, hera.Costs, hera.Rates)) != want {
			t.Fatal("shard assignment not stable")
		}
	}
}
