package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"respat/internal/adapt"
	"respat/internal/core"
	"respat/internal/faultfit"
)

// ObservedCounts is one error source's half of an observation: events
// arrivals over exposure seconds of time at risk.
type ObservedCounts struct {
	Events   int64   `json:"events"`
	Exposure float64 `json:"exposure"`
}

// ObserveRequest is the body of POST /v1/observe. The first request
// for a session id creates the session and must carry the pattern kind
// plus a platform name or costs/rates (the rates are the session's
// prior). Later requests may repeat the configuration (it is checked
// for consistency) or omit it. FailStop and Silent carry the interval
// observation; both may be omitted to create or poll a session without
// feeding it.
type ObserveRequest struct {
	Session  string      `json:"session"`
	Kind     string      `json:"kind,omitempty"`
	Platform string      `json:"platform,omitempty"`
	Costs    *core.Costs `json:"costs,omitempty"`
	Rates    *core.Rates `json:"rates,omitempty"`

	FailStop *ObservedCounts `json:"failstop,omitempty"`
	Silent   *ObservedCounts `json:"silent,omitempty"`

	// Optional tuning, honoured at session creation only.
	RegretThreshold float64 `json:"regretThreshold,omitempty"`
	MinObservations int     `json:"minObservations,omitempty"`
	Window          int     `json:"window,omitempty"`
	HalfLife        float64 `json:"halfLife,omitempty"`
}

// maxObserveWindow caps the per-session change-point window accepted
// over HTTP, tighter than faultfit.MaxWindow: the ring buffers are
// allocated eagerly per session, so the bound that matters to the
// daemon is window × MaxSessions (4096 × 2 rings × 16 B × 1024
// sessions ≈ 128 MiB worst case, vs ~2 GiB at faultfit's library
// limit).
const maxObserveWindow = 4096

// ObserveResponse is the body returned by POST /v1/observe.
type ObserveResponse struct {
	Session string `json:"session"`
	// Rates are the fitted rates after the observation.
	Rates core.Rates `json:"rates"`
	// Replanned reports whether this observation triggered a plan swap;
	// Regret is the relative excess overhead that was measured.
	Replanned bool    `json:"replanned"`
	Regret    float64 `json:"regret"`
	// Session counters after the observation.
	Observations int64 `json:"observations"`
	Swaps        int64 `json:"swaps"`
	Drifts       int64 `json:"drifts"`
}

// AdaptiveResponse is the body of GET /v1/adaptive: the session's
// fitted rates, counters, the plan the session currently recommends at
// those rates, and the plan it is actually running.
type AdaptiveResponse struct {
	Session string     `json:"session"`
	Kind    string     `json:"kind"`
	Rates   core.Rates `json:"rates"`

	Observations     int64   `json:"observations"`
	Swaps            int64   `json:"swaps"`
	Drifts           int64   `json:"drifts"`
	PredictedSavings float64 `json:"predictedSavings"`

	// Plan is the first-order optimal plan at the fitted rates, served
	// through the plan cache: its bytes are identical to what POST
	// /v1/plan returns for (kind, costs, rates).
	Plan json.RawMessage `json:"plan"`
	// Current is the plan the session is running, which trails Plan
	// until the regret threshold triggers the next swap.
	Current PlanResponse `json:"current"`
}

// Observe routes one observation to the named adaptive session,
// creating it on first use. It returns the marshalled ObserveResponse.
func (s *Service) Observe(req ObserveRequest) ([]byte, error) {
	var obs adapt.Observation
	if req.FailStop != nil {
		obs.FailStopEvents = req.FailStop.Events
		obs.FailStopExposure = req.FailStop.Exposure
	}
	if req.Silent != nil {
		obs.SilentEvents = req.Silent.Events
		obs.SilentExposure = req.Silent.Exposure
	}
	// Validate the observation before looking up or creating the
	// session: a rejected request must not leave a fresh session behind
	// a 400 (filling the MaxSessions table with dead entries).
	if err := faultfit.ValidateInterval(obs.FailStopEvents, obs.FailStopExposure); err != nil {
		return nil, err
	}
	if err := faultfit.ValidateInterval(obs.SilentEvents, obs.SilentExposure); err != nil {
		return nil, err
	}
	sess, err := s.adaptiveSession(req)
	if err != nil {
		return nil, err
	}
	d, err := sess.Observe(obs)
	if err != nil {
		return nil, err
	}
	return marshalResponse(ObserveResponse{
		Session:      req.Session,
		Rates:        d.Rates,
		Replanned:    d.Replanned,
		Regret:       d.Regret,
		Observations: d.Observations,
		Swaps:        d.Swaps,
		Drifts:       d.Drifts,
	})
}

// Adaptive returns the marshalled AdaptiveResponse of the named
// session. The embedded plan is served through the plan cache, so its
// bytes are identical to a cold POST /v1/plan at the fitted rates.
func (s *Service) Adaptive(name string) ([]byte, error) {
	s.sessMu.Lock()
	sess, ok := s.sessions[name]
	s.sessMu.Unlock()
	if !ok {
		return nil, errSessionNotFound(name)
	}
	st := sess.Status()
	planBytes, err := s.Plan(st.Kind, sess.Costs(), st.Rates)
	if err != nil {
		return nil, err
	}
	return marshalResponse(AdaptiveResponse{
		Session:          name,
		Kind:             st.Kind.String(),
		Rates:            st.Rates,
		Observations:     st.Observations,
		Swaps:            st.Swaps,
		Drifts:           st.Drifts,
		PredictedSavings: st.PredictedSavings,
		Plan:             json.RawMessage(planBytes),
		Current: PlanResponse{
			Kind:     st.Plan.Kind.String(),
			N:        st.Plan.N,
			M:        st.Plan.M,
			W:        st.Plan.W,
			Overhead: st.Plan.Overhead,
		},
	})
}

// DropSession removes the named session, reporting whether it existed.
func (s *Service) DropSession(name string) bool {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if _, ok := s.sessions[name]; !ok {
		return false
	}
	delete(s.sessions, name)
	return true
}

// SessionCount returns the number of live adaptive sessions.
func (s *Service) SessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

// errNotFound tags lookup failures so the handler can map them to 404.
type errNotFound string

func (e errNotFound) Error() string { return string(e) }

func errSessionNotFound(name string) error {
	return errNotFound(fmt.Sprintf("unknown adaptive session %q", name))
}

// errTooMany tags session-table overflow so the handler can map it to
// 429.
var errTooMany = errors.New("adaptive session table full")

// adaptiveSession returns the session named in req, creating it when
// the request carries a configuration and the id is new. Existing
// sessions reject requests whose configuration contradicts theirs —
// a mistyped session id must fail loudly, not silently feed another
// experiment's estimators.
func (s *Service) adaptiveSession(req ObserveRequest) (*adapt.Session, error) {
	if req.Session == "" {
		return nil, errors.New("missing session id")
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if sess, ok := s.sessions[req.Session]; ok {
		if req.Kind != "" {
			kind, err := core.ParseKind(req.Kind)
			if err != nil {
				return nil, err
			}
			if kind != sess.Kind() {
				return nil, fmt.Errorf("session %q plans %v, request says %v", req.Session, sess.Kind(), kind)
			}
		}
		if req.Platform != "" || req.Costs != nil || req.Rates != nil {
			costs, rates, err := resolveConfig(req.Platform, req.Costs, req.Rates)
			if err != nil {
				return nil, err
			}
			if costs != sess.Costs() || rates != sess.Prior() {
				return nil, fmt.Errorf("session %q was created with a different configuration", req.Session)
			}
		}
		// Tuning is fixed at creation: a replay of the creation values is
		// fine (the documented repeat-the-configuration pattern), but a
		// reconfiguration attempt fails loudly rather than being
		// silently ignored.
		cfg := sess.Config()
		if (req.RegretThreshold != 0 && req.RegretThreshold != cfg.RegretThreshold) ||
			(req.MinObservations != 0 && req.MinObservations != cfg.MinObservations) ||
			(req.Window != 0 && req.Window != cfg.FailStop.Window) ||
			(req.HalfLife != 0 && req.HalfLife != cfg.FailStop.HalfLife) {
			return nil, fmt.Errorf("session %q was created with different tuning: tuning fields are honoured at creation only", req.Session)
		}
		return sess, nil
	}
	if req.Kind == "" {
		return nil, fmt.Errorf("unknown adaptive session %q: the first observe must carry kind and platform or costs/rates", req.Session)
	}
	kind, err := core.ParseKind(req.Kind)
	if err != nil {
		return nil, err
	}
	costs, rates, err := resolveConfig(req.Platform, req.Costs, req.Rates)
	if err != nil {
		return nil, err
	}
	if req.Window > maxObserveWindow {
		return nil, fmt.Errorf("window = %d, need <= %d", req.Window, maxObserveWindow)
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, errTooMany
	}
	sess, err := adapt.NewSession(adapt.Config{
		Kind:            kind,
		Costs:           costs,
		Prior:           rates,
		RegretThreshold: req.RegretThreshold,
		MinObservations: req.MinObservations,
		FailStop:        faultfit.OnlineConfig{Window: req.Window, HalfLife: req.HalfLife},
		Silent:          faultfit.OnlineConfig{Window: req.Window, HalfLife: req.HalfLife},
	})
	if err != nil {
		return nil, err
	}
	if s.sessions == nil {
		s.sessions = make(map[string]*adapt.Session)
	}
	s.sessions[req.Session] = sess
	return sess, nil
}

// handleObserve is POST /v1/observe.
func (s *Service) handleObserve(r *http.Request, d *disposition) ([]byte, int, error) {
	var req ObserveRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	body, err := s.Observe(req)
	if err != nil {
		return nil, adaptiveStatus(err), err
	}
	return body, http.StatusOK, nil
}

// handleAdaptive is GET /v1/adaptive?session=NAME.
func (s *Service) handleAdaptive(r *http.Request, d *disposition) ([]byte, int, error) {
	name := r.URL.Query().Get("session")
	if name == "" {
		return nil, http.StatusBadRequest, errors.New("missing session query parameter")
	}
	body, err := s.Adaptive(name)
	if err != nil {
		return nil, adaptiveStatus(err), err
	}
	return body, http.StatusOK, nil
}

// handleAdaptiveDelete is DELETE /v1/adaptive?session=NAME.
func (s *Service) handleAdaptiveDelete(r *http.Request, d *disposition) ([]byte, int, error) {
	name := r.URL.Query().Get("session")
	if name == "" {
		return nil, http.StatusBadRequest, errors.New("missing session query parameter")
	}
	if !s.DropSession(name) {
		return nil, http.StatusNotFound, errSessionNotFound(name)
	}
	return marshalResponseStatic(map[string]string{"status": "deleted", "session": name})
}

// marshalResponseStatic marshals a response that cannot fail and
// normalises the opHandler triple.
func marshalResponseStatic(v any) ([]byte, int, error) {
	b, err := marshalResponse(v)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	return b, http.StatusOK, nil
}

// adaptiveStatus maps adaptive-session errors to HTTP statuses.
func adaptiveStatus(err error) int {
	var nf errNotFound
	switch {
	case errors.As(err, &nf):
		return http.StatusNotFound
	case errors.Is(err, errTooMany):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}
