package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"respat/internal/core"
	"respat/internal/obs"
	"respat/internal/platform"
)

// tracedService builds a service that samples every request into a
// trace, the configuration the observability tests drive.
func tracedService(cfg Config) *Service {
	cfg.Tracer = obs.New(obs.Config{SampleEvery: 1, Ring: 64, Seed: 7})
	return New(cfg)
}

// TestPrometheusExposition drives a mixed workload (hits, misses, a
// client error) and asserts the Prometheus view of it: correct content
// type, a lint-clean exposition, and the counters/histograms the
// workload must have moved.
func TestPrometheusExposition(t *testing.T) {
	svc := tracedService(Config{})
	h := svc.Handler()

	for i := 0; i < 3; i++ { // one miss, two hits
		rec := do(h, http.MethodPost, "/v1/plan", `{"kind":"PD","platform":"Hera"}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("plan request returned %d: %s", rec.Code, rec.Body.String())
		}
	}
	if rec := do(h, http.MethodPost, "/v1/plan/exact", `{"kind":"PDV","platform":"Atlas"}`); rec.Code != http.StatusOK {
		t.Fatalf("exact request returned %d: %s", rec.Code, rec.Body.String())
	}
	if rec := do(h, http.MethodPost, "/v1/plan", `{not json`); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed request returned %d, want 400", rec.Code)
	}

	rec := do(h, http.MethodGet, "/metrics?format=prometheus", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("prometheus scrape returned %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type %q, want %q", ct, obs.PromContentType)
	}
	body := rec.Body.String()
	for _, errLint := range obs.Lint(rec.Body.Bytes()) {
		t.Errorf("lint: %v", errLint)
	}
	for _, want := range []string{
		"respat_build_info{",
		"respat_cache_hits_total 2",
		"respat_cache_misses_total 2",
		`respat_endpoint_requests_total{endpoint="plan"} 4`,
		`respat_endpoint_errors_total{endpoint="plan",class="4xx"} 1`,
		`respat_endpoint_errors_total{endpoint="plan",class="5xx"} 0`,
		`respat_endpoint_latency_seconds_bucket{endpoint="plan_exact",le="+Inf"} 1`,
		"respat_traces_sampled_total 5",
		`respat_stage_latency_seconds_bucket{stage="cache_lookup",le="+Inf"}`,
		"respat_goroutines ",
		"respat_uptime_seconds ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}

	// The JSON view stays the default and carries the 4xx/5xx split.
	rec = do(h, http.MethodGet, "/metrics", "")
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode JSON /metrics: %v", err)
	}
	ep := snap.Endpoints["plan"]
	if ep.Requests != 4 || ep.ClientErrors != 1 || ep.ServerErrors != 0 || ep.Errors != 1 {
		t.Fatalf("plan endpoint snapshot %+v, want 4 requests, 1 client error", ep)
	}
}

// TestErrorBodyCarriesTraceID: a sampled request that fails returns its
// trace ID both in the response header and in the JSON error envelope,
// so a client error report joins against /debug/traces.
func TestErrorBodyCarriesTraceID(t *testing.T) {
	svc := tracedService(Config{})
	h := svc.Handler()
	const forced = "00000000deadbeef"

	req := httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader(`{not json`))
	req.Header.Set(obs.TraceHeader, forced)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	if got := rec.Header().Get(obs.TraceHeader); got != forced {
		t.Errorf("response trace header %q, want %q", got, forced)
	}
	var body struct {
		Error   string `json:"error"`
		TraceID string `json:"traceId"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.TraceID != forced {
		t.Errorf("error body traceId %q, want %q", body.TraceID, forced)
	}
	recs := svc.Tracer().Traces()
	if len(recs) != 1 || recs[0].ID != forced || recs[0].Status != http.StatusBadRequest {
		t.Fatalf("trace ring %+v, want one 400 record under the forced ID", recs)
	}
}

// TestClusterStitchedTrace is the distributed-tracing acceptance
// scenario: three in-process replicas, one forwarded request, one
// stitched trace. The entry replica's half carries a peer_forward hop
// span naming the owner and storing its Server-Timing; the owner's
// half shares the trace ID and records who forwarded. The stitched
// trace is retrievable from the entry replica's /debug/traces.
func TestClusterStitchedTrace(t *testing.T) {
	net := newFakeNet()
	members := []Member{
		{Name: "r0", URL: "http://r0"},
		{Name: "r1", URL: "http://r1"},
		{Name: "r2", URL: "http://r2"},
	}
	services := make([]*Service, len(members))
	handlers := make([]http.Handler, len(members))
	byName := make(map[string]*Service, len(members))
	for i := range members {
		services[i] = tracedService(Config{})
		if err := services[i].EnableCluster(ClusterConfig{
			Self: members[i].Name, Members: members,
			VNodes: 64, Seed: 9, Transport: net,
		}); err != nil {
			t.Fatal(err)
		}
		handlers[i] = services[i].Handler()
		byName[members[i].Name] = services[i]
		net.mu.Lock()
		net.handlers[members[i].Name] = handlers[i]
		net.mu.Unlock()
	}

	// Find a request r0 does not own: drive the spread with distinct
	// forced trace IDs until the forward log grows.
	var forcedID string
	for i, rq := range clusterRequests() {
		id := fmt.Sprintf("%016x", i+1)
		req := httptest.NewRequest(http.MethodPost, rq.path, strings.NewReader(rq.body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(obs.TraceHeader, id)
		before := len(net.forwardLog())
		rec := httptest.NewRecorder()
		handlers[0].ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s returned %d: %s", rq.path, rec.Code, rec.Body.String())
		}
		if len(net.forwardLog()) > before {
			forcedID = id
			if got := rec.Header().Get(obs.TraceHeader); got != id {
				t.Fatalf("forwarded response trace header %q, want %q", got, id)
			}
			break
		}
	}
	if forcedID == "" {
		t.Fatal("no request was forwarded; the key space did not reach a peer")
	}

	// Entry half: the record under the forced ID has a peer_forward hop
	// span naming the owner and storing the owner's Server-Timing.
	entry := findTrace(t, services[0].Tracer().Traces(), forcedID)
	var hop *obs.Span
	for i := range entry.Spans {
		if entry.Spans[i].Stage == obs.StagePeerForward.String() {
			hop = &entry.Spans[i]
		}
	}
	if hop == nil {
		t.Fatalf("entry trace has no peer_forward span: %+v", entry.Spans)
	}
	if hop.Outcome != "ok" || hop.Peer == "" || hop.Peer == "r0" {
		t.Fatalf("hop span %+v, want outcome ok and a peer name != r0", hop)
	}
	if !strings.Contains(hop.Remote, "app;dur=") {
		t.Fatalf("hop span Remote %q does not carry the peer's Server-Timing", hop.Remote)
	}

	// Owner half: same trace ID, forwarded-from r0, and no further hop.
	owner := byName[hop.Peer]
	if owner == nil {
		t.Fatalf("hop names unknown peer %q", hop.Peer)
	}
	remote := findTrace(t, owner.Tracer().Traces(), forcedID)
	if remote.ForwardedFrom != "r0" {
		t.Fatalf("owner trace ForwardedFrom %q, want r0", remote.ForwardedFrom)
	}
	for _, sp := range remote.Spans {
		if sp.Stage == obs.StagePeerForward.String() {
			t.Fatalf("owner trace has a forward hop of its own: %+v", sp)
		}
	}

	// The stitched trace is served by the entry replica's /debug/traces.
	rec := do(handlers[0], http.MethodGet, "/debug/traces", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces returned %d", rec.Code)
	}
	var dumped []obs.Record
	if err := json.Unmarshal(rec.Body.Bytes(), &dumped); err != nil {
		t.Fatal(err)
	}
	findTrace(t, dumped, forcedID)
}

// findTrace returns the record with the given ID or fails the test.
func findTrace(t *testing.T, recs []obs.Record, id string) obs.Record {
	t.Helper()
	for _, r := range recs {
		if r.ID == id {
			return r
		}
	}
	t.Fatalf("no trace %q among %d records", id, len(recs))
	return obs.Record{}
}

// TestConcurrentTracesAndScrapes races trace recording against
// /debug/traces and Prometheus readers (meaningful under -race): every
// response stays well-formed and the final exposition still lints.
func TestConcurrentTracesAndScrapes(t *testing.T) {
	svc := tracedService(Config{})
	h := svc.Handler()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				body := fmt.Sprintf(`{"kind":"PD","costs":{"DiskCkpt":%d,"DiskRec":30,"Recall":1},"rates":{"FailStop":1e-7}}`, 60+w*50+i)
				if rec := do(h, http.MethodPost, "/v1/plan", body); rec.Code != http.StatusOK {
					t.Errorf("plan returned %d", rec.Code)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if rec := do(h, http.MethodGet, "/debug/traces", ""); rec.Code != http.StatusOK {
					t.Errorf("/debug/traces returned %d", rec.Code)
					return
				}
				if rec := do(h, http.MethodGet, "/metrics?format=prometheus", ""); rec.Code != http.StatusOK {
					t.Errorf("prometheus scrape returned %d", rec.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
	if errs := obs.Lint(do(h, http.MethodGet, "/metrics?format=prometheus", "").Body.Bytes()); len(errs) > 0 {
		t.Fatalf("post-race exposition does not lint: %v", errs)
	}
	if svc.Tracer().Sampled() != 200 {
		t.Fatalf("sampled %d traces, want 200", svc.Tracer().Sampled())
	}
}

// TestTracedHotPathZeroAlloc is the CI gate on the tracing overhead
// contract: with the tracer compiled in and sampling enabled, an
// unsampled cache hit — the overwhelmingly common request — still
// allocates nothing. (BenchmarkServicePlanHot measures the same path;
// scripts/bench.sh gates its allocs/op.)
func TestTracedHotPathZeroAlloc(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	// Sampling enabled but astronomically sparse: every benchmarked
	// request takes the unsampled branch, as in production.
	svc := New(Config{Tracer: obs.New(obs.Config{SampleEvery: 1 << 30})})
	if _, err := svc.PlanExact(core.PDMV, hera.Costs, hera.Rates); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		tr := svc.Tracer().Start("plan_exact", "", "")
		ctx := obs.NewContext(context.Background(), tr)
		if _, err := svc.PlanExactCtx(ctx, core.PDMV, hera.Costs, hera.Rates); err != nil {
			t.Fatal(err)
		}
		tr.Finish(http.StatusOK, "hit")
	})
	if allocs != 0 {
		t.Fatalf("traced cache hit allocates: %v allocs/op, want 0", allocs)
	}
}
