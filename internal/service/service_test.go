package service

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/optimize"
	"respat/internal/platform"
)

// TestCachedByteIdenticalToCold is the §3 memo contract: a response
// served from the cache is byte-identical to what a cold service
// computes for the same request, across every (platform, family) cell
// and both planning modes.
func TestCachedByteIdenticalToCold(t *testing.T) {
	warm := New(Config{})
	for _, p := range platform.Table2() {
		for _, k := range core.Kinds() {
			cold1, err := warm.Plan(k, p.Costs, p.Rates)
			if err != nil {
				t.Fatal(err)
			}
			hot, err := warm.Plan(k, p.Costs, p.Rates)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := New(Config{}).Plan(k, p.Costs, p.Rates)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cold1, hot) || !bytes.Equal(hot, fresh) {
				t.Fatalf("%s/%s: cached plan bytes differ from cold computation", p.Name, k)
			}
		}
	}
	// Exact plans are slower; spot-check one platform across families.
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds() {
		cold1, err := warm.PlanExact(k, hera.Costs, hera.Rates)
		if err != nil {
			t.Fatal(err)
		}
		hot, err := warm.PlanExact(k, hera.Costs, hera.Rates)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(Config{}).PlanExact(k, hera.Costs, hera.Rates)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cold1, hot) || !bytes.Equal(hot, fresh) {
			t.Fatalf("Hera/%s: cached exact plan bytes differ from cold computation", k)
		}
	}
}

// TestPlanMatchesAnalytic: the served body decodes back to exactly the
// analytic.Optimal solution.
func TestPlanMatchesAnalytic(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{})
	body, err := svc.Plan(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	var got PlanResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := analytic.Optimal(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != "PDMV" || got.Exact || got.N != want.N || got.M != want.M ||
		got.W != want.W || got.Overhead != want.Overhead {
		t.Fatalf("served %+v, want %+v", got, want)
	}
}

// TestPlanExactMatchesOptimize: the exact endpoint serves the
// optimize.Exact solution.
func TestPlanExactMatchesOptimize(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{})
	body, err := svc.PlanExact(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	var got PlanResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := optimize.Exact(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Exact || got.N != want.N || got.M != want.M || got.W != want.W || got.Overhead != want.Overhead {
		t.Fatalf("served %+v, want %+v", got, want)
	}
}

// TestEvaluateMatchesDirect: the evaluate path equals a direct
// one-shot analytic.ExactExpectedTime.
func TestEvaluateMatchesDirect(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := analytic.Optimal(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{})
	body, err := svc.Evaluate(plan.Pattern, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	var got EvaluateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := analytic.ExactExpectedTime(plan.Pattern, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if got.ExpectedTime != want {
		t.Fatalf("expectedTime = %v, want %v", got.ExpectedTime, want)
	}
	if wantH := want/plan.Pattern.W - 1; math.Abs(got.Overhead-wantH) > 1e-15 {
		t.Fatalf("overhead = %v, want %v", got.Overhead, wantH)
	}
	// Repeated evaluations through the reused shard evaluator stay
	// bit-identical.
	again, err := svc.Evaluate(plan.Pattern, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, again) {
		t.Fatal("repeated evaluation differs")
	}
}

// TestServiceHammer is the acceptance-criteria race test: ≥8 goroutines
// hammer one hot key and a scattered key-set concurrently (run under
// -race in CI). It proves (a) no data races, (b) computations per
// unique key == 1 under coalescing (misses == unique keys), and
// (c) responses served hot are byte-identical to a cold service's.
func TestServiceHammer(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Shards: 8, Capacity: 4096})

	const goroutines = 12
	const iters = 200
	const scattered = 48 // distinct scattered configurations

	scatteredCosts := func(i int) core.Costs {
		c := hera.Costs
		c.DiskCkpt = 100 + float64(i)
		return c
	}

	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				// Hot key: everyone hammers (Hera, PDMV).
				if _, err := svc.Plan(core.PDMV, hera.Costs, hera.Rates); err != nil {
					errc <- err
					return
				}
				// Scattered keys: staggered walk over the key-set.
				if _, err := svc.Plan(core.PD, scatteredCosts((i+g*17)%scattered), hera.Rates); err != nil {
					errc <- err
					return
				}
				// A slower exact-plan key exercises coalescing windows
				// and the per-shard evaluator under contention.
				if i%40 == g%40 {
					if _, err := svc.PlanExact(core.PDM, hera.Costs, hera.Rates); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	m := svc.Metrics()
	uniqueKeys := int64(1 + scattered + 1) // hot + scattered + one exact
	if got := m.Misses.Load(); got != uniqueKeys {
		t.Errorf("misses (= computations) = %d, want %d (one per unique key)", got, uniqueKeys)
	}
	if m.Hits.Load() == 0 {
		t.Error("no cache hits under the hammer")
	}
	// Every request is accounted for exactly once.
	total := m.Hits.Load() + m.Misses.Load() + m.Coalesced.Load()
	if total < goroutines*iters*2 {
		t.Errorf("accounted requests = %d, want >= %d", total, goroutines*iters*2)
	}

	// (c) hot responses == cold responses, for the hot key and every
	// scattered key.
	cold := New(Config{})
	hot, err := svc.Plan(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	coldB, err := cold.Plan(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hot, coldB) {
		t.Error("hot PDMV response differs from cold computation")
	}
	for i := 0; i < scattered; i++ {
		hot, err := svc.Plan(core.PD, scatteredCosts(i), hera.Rates)
		if err != nil {
			t.Fatal(err)
		}
		coldB, err := cold.Plan(core.PD, scatteredCosts(i), hera.Rates)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(hot, coldB) {
			t.Errorf("scattered key %d: hot response differs from cold computation", i)
		}
	}
}

// TestInvalidInputsRejected: planner errors surface and are never
// cached.
func TestInvalidInputsRejected(t *testing.T) {
	svc := New(Config{})
	bad := core.Costs{DiskCkpt: -1, Recall: 0.8}
	if _, err := svc.Plan(core.PD, bad, core.Rates{Silent: 1e-6}); err == nil {
		t.Error("negative cost accepted")
	}
	// Out-of-range kinds must be rejected before keying: core.Kind(256)
	// truncates to the same key byte as PD and would alias its entry.
	for _, k := range []core.Kind{-1, 6, 256} {
		if _, err := svc.Plan(k, platformCosts(t), core.Rates{Silent: 1e-6}); err == nil {
			t.Errorf("invalid kind %d accepted by Plan", k)
		}
		if _, err := svc.PlanExact(k, platformCosts(t), core.Rates{Silent: 1e-6}); err == nil {
			t.Errorf("invalid kind %d accepted by PlanExact", k)
		}
	}
	if _, err := svc.Plan(core.PD, platformCosts(t), core.Rates{}); err == nil {
		t.Error("zero rates accepted (no finite optimal pattern exists)")
	}
	if _, err := svc.Evaluate(core.Pattern{}, platformCosts(t), core.Rates{Silent: 1e-6}); err == nil {
		t.Error("invalid pattern accepted")
	}
	if m := svc.Metrics(); m.Hits.Load() != 0 || svc.cache.len() != 0 {
		t.Error("failed requests must not populate the cache")
	}
}

func platformCosts(t *testing.T) core.Costs {
	t.Helper()
	p, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	return p.Costs
}
