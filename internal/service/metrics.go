package service

import (
	"sync"
	"sync/atomic"

	"respat/internal/obs"
	"respat/internal/stats"
)

// latencyWindow is the number of recent observations each endpoint's
// latency reservoir retains for quantile estimation. A fixed ring keeps
// recording allocation-free.
const latencyWindow = 4096

// Metrics aggregates the service counters surfaced by GET /metrics.
// Counters are atomics so the request hot path never takes a lock for
// them; latency recording takes one short per-endpoint mutex.
type Metrics struct {
	// Cache outcome counters. A request for a cacheable operation
	// increments exactly one of the three: Hits (served from the LRU),
	// Misses (this request ran the computation) or Coalesced (attached
	// to another request's in-flight computation). Computations
	// performed therefore equal Misses.
	Hits      atomic.Int64
	Misses    atomic.Int64
	Coalesced atomic.Int64
	// Evictions counts LRU entries displaced by inserts into full
	// shards.
	Evictions atomic.Int64
	// InFlight is the number of HTTP requests currently being served.
	InFlight atomic.Int64

	// Overload counters (see admission.go and DESIGN.md §2.8). A cold
	// computation increments exactly one of Admitted or Shed; Degraded
	// counts requests answered by the first-order fallback; and
	// DeadlineExceeded counts requests that ran out of budget (503).
	Admitted         atomic.Int64
	Shed             atomic.Int64
	Degraded         atomic.Int64
	DeadlineExceeded atomic.Int64

	// Distributed-serving counters (see cluster.go and DESIGN.md §2.9).
	// Forwarded counts requests relayed to the owning peer;
	// ForwardErrors counts relays that failed in transit (502 to the
	// client); TableHits counts exact-plan requests answered by a
	// precomputed plan table instead of the cold path.
	Forwarded     atomic.Int64
	ForwardErrors atomic.Int64
	TableHits     atomic.Int64

	endpoints [epCount]endpointMetrics // indexed by endpointID
}

// endpointID indexes the per-endpoint metrics.
type endpointID int

// Every routed (method, path) pair gets its own id, so the /metrics
// latency quantiles are per endpoint — /v1/plan/multilevel and
// /v1/plan/exact report separate histograms, and the adaptive GET and
// DELETE (different cost profiles) are not pooled either.
const (
	epPlan endpointID = iota
	epPlanExact
	epPlanMultilevel
	epEvaluate
	epBatch
	epObserve
	epAdaptive
	epAdaptiveDelete

	epCount // sentinel: sizes the endpoints array
)

func (e endpointID) String() string {
	switch e {
	case epPlan:
		return "plan"
	case epPlanExact:
		return "plan_exact"
	case epPlanMultilevel:
		return "plan_multilevel"
	case epEvaluate:
		return "evaluate"
	case epBatch:
		return "batch"
	case epObserve:
		return "observe"
	case epAdaptive:
		return "adaptive"
	case epAdaptiveDelete:
		return "adaptive_delete"
	default:
		return "unknown"
	}
}

// endpointMetrics tracks one endpoint's request count, error counts
// (client 4xx and server 5xx separately — a spike of bad requests and
// a spike of overload look identical when pooled), a ring of recent
// latencies for the JSON quantiles, and a fixed-bucket histogram for
// the Prometheus exposition.
type endpointMetrics struct {
	requests  atomic.Int64
	errors4xx atomic.Int64
	errors5xx atomic.Int64

	hist obs.Histogram

	mu     sync.Mutex
	ring   [latencyWindow]float64 // nanoseconds
	filled int                    // observations recorded, capped at latencyWindow
	next   int                    // ring write cursor
}

// observe records one request outcome with its latency in nanoseconds
// and final HTTP status.
func (m *Metrics) observe(ep endpointID, latencyNS float64, status int) {
	e := &m.endpoints[ep]
	e.requests.Add(1)
	switch {
	case status >= 500:
		e.errors5xx.Add(1)
	case status >= 400:
		e.errors4xx.Add(1)
	}
	e.hist.Observe(int64(latencyNS))
	e.mu.Lock()
	e.ring[e.next] = latencyNS
	e.next = (e.next + 1) % latencyWindow
	if e.filled < latencyWindow {
		e.filled++
	}
	e.mu.Unlock()
}

// LatencyQuantiles summarises an endpoint's recent latencies.
type LatencyQuantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ns"`
	P90   float64 `json:"p90_ns"`
	P99   float64 `json:"p99_ns"`
}

// EndpointSnapshot is one endpoint's row in the metrics report.
// Errors remains the total for report stability; ClientErrors (4xx)
// and ServerErrors (5xx) split it by responsibility.
type EndpointSnapshot struct {
	Requests     int64            `json:"requests"`
	Errors       int64            `json:"errors"`
	ClientErrors int64            `json:"clientErrors"`
	ServerErrors int64            `json:"serverErrors"`
	Latency      LatencyQuantiles `json:"latency"`
}

// Snapshot is the JSON document served by GET /metrics.
type Snapshot struct {
	CacheHits        int64 `json:"cacheHits"`
	CacheMisses      int64 `json:"cacheMisses"`
	Coalesced        int64 `json:"coalesced"`
	Evictions        int64 `json:"evictions"`
	CacheEntries     int   `json:"cacheEntries"`
	InFlight         int64 `json:"inFlight"`
	AdaptiveSessions int   `json:"adaptiveSessions"`

	// Overload observability (admission gate + degradation).
	Admitted         int64 `json:"admitted"`
	Shed             int64 `json:"shed"`
	Degraded         int64 `json:"degraded"`
	DeadlineExceeded int64 `json:"deadlineExceeded"`
	// ColdQueueDepth is the current cold-plan wait-queue depth;
	// ColdQueueMax its high-water mark since start. ColdPlanP90Ns is
	// the observed cold-plan latency p90 feeding Retry-After.
	ColdQueueDepth int64   `json:"coldQueueDepth"`
	ColdQueueMax   int64   `json:"coldQueueMax"`
	ColdPlanP90Ns  float64 `json:"coldPlanP90Ns"`

	// Distributed serving (cluster.go): peer forwards, failed
	// forwards, plan-table answers, and peers currently excluded from
	// the ring by the health checker.
	Forwarded     int64 `json:"forwarded"`
	ForwardErrors int64 `json:"forwardErrors"`
	TableHits     int64 `json:"tableHits"`
	PeersDown     int   `json:"peersDown"`

	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
}

// snapshot captures the current counters. cacheEntries, sessions and
// the gate are supplied by the service (it owns the cache, the session
// table and the admission gate).
func (m *Metrics) snapshot(cacheEntries, sessions int, g *gate, peersDown int) Snapshot {
	out := Snapshot{
		CacheHits:        m.Hits.Load(),
		CacheMisses:      m.Misses.Load(),
		Coalesced:        m.Coalesced.Load(),
		Evictions:        m.Evictions.Load(),
		CacheEntries:     cacheEntries,
		AdaptiveSessions: sessions,
		InFlight:         m.InFlight.Load(),
		Admitted:         m.Admitted.Load(),
		Shed:             m.Shed.Load(),
		Degraded:         m.Degraded.Load(),
		DeadlineExceeded: m.DeadlineExceeded.Load(),
		ColdQueueDepth:   g.depth(),
		ColdQueueMax:     g.maxDepth(),
		ColdPlanP90Ns:    g.estimate() * 1e9,
		Forwarded:        m.Forwarded.Load(),
		ForwardErrors:    m.ForwardErrors.Load(),
		TableHits:        m.TableHits.Load(),
		PeersDown:        peersDown,
		Endpoints:        make(map[string]EndpointSnapshot, len(m.endpoints)),
	}
	// One scratch buffer serves every endpoint: each ring is copied out
	// under its lock, then sorted in place outside it, so a scrape costs
	// one latencyWindow allocation total instead of one per endpoint.
	scratch := make([]float64, latencyWindow)
	for id := range m.endpoints {
		e := &m.endpoints[id]
		e.mu.Lock()
		window := scratch[:e.filled]
		copy(window, e.ring[:e.filled])
		e.mu.Unlock()
		c4, c5 := e.errors4xx.Load(), e.errors5xx.Load()
		snap := EndpointSnapshot{
			Requests:     e.requests.Load(),
			Errors:       c4 + c5,
			ClientErrors: c4,
			ServerErrors: c5,
		}
		snap.Latency.Count = int64(len(window))
		if len(window) > 0 {
			// One sort for all three quantiles; QuantilesInPlace only
			// fails on empty data or q outside [0,1], both excluded.
			if qs, err := stats.QuantilesInPlace(window, 0.50, 0.90, 0.99); err == nil {
				snap.Latency.P50, snap.Latency.P90, snap.Latency.P99 = qs[0], qs[1], qs[2]
			}
		}
		out.Endpoints[endpointID(id).String()] = snap
	}
	return out
}
