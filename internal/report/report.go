// Package report renders experiment outputs as aligned text tables and
// CSV files, the two formats emitted by cmd/experiments for every
// table and figure of the paper.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; missing cells render empty, extra cells are
// an error surfaced at render time.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		if len(row) > len(t.Columns) {
			return fmt.Errorf("report: row has %d cells for %d columns", len(row), len(t.Columns))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string, ignoring errors (they can only
// arise from ill-formed rows, which String reports inline).
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return "report: " + err.Error()
	}
	return b.String()
}

// WriteCSV writes the table (header + rows) in CSV format.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		padded := make([]string, len(t.Columns))
		copy(padded, row)
		if err := cw.Write(padded); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float with the given number of significant digits.
func F(v float64, digits int) string {
	return strconv.FormatFloat(v, 'g', digits, 64)
}

// Fixed formats a float with a fixed number of decimals.
func Fixed(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Pct formats a ratio as a percentage with the given decimals.
func Pct(v float64, decimals int) string {
	return strconv.FormatFloat(100*v, 'f', decimals, 64) + "%"
}

// I formats an int.
func I(v int) string { return strconv.Itoa(v) }

// I64 formats an int64.
func I64(v int64) string { return strconv.FormatInt(v, 10) }
