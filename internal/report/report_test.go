package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tbl := New("demo", "name", "value")
	tbl.AddRow("a", "1")
	tbl.AddRow("longer-name", "22")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Errorf("title line: %q", lines[0])
	}
	// The value column must start at the same offset on every line.
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatalf("header: %q", lines[1])
	}
	if got := strings.Index(lines[3], "1"); got != idx {
		t.Errorf("row 1 misaligned: col at %d, want %d", got, idx)
	}
	if got := strings.Index(lines[4], "22"); got != idx {
		t.Errorf("row 2 misaligned: col at %d, want %d", got, idx)
	}
}

func TestRenderNoTitle(t *testing.T) {
	tbl := New("", "a")
	tbl.AddRow("x")
	out := tbl.String()
	if strings.Contains(out, "==") {
		t.Errorf("unexpected title: %q", out)
	}
}

func TestRenderShortRow(t *testing.T) {
	tbl := New("t", "a", "b", "c")
	tbl.AddRow("only")
	if out := tbl.String(); !strings.Contains(out, "only") {
		t.Errorf("short row dropped: %q", out)
	}
}

func TestRenderTooManyCells(t *testing.T) {
	tbl := New("t", "a")
	tbl.AddRow("1", "2")
	var b strings.Builder
	if err := tbl.Render(&b); err == nil {
		t.Error("expected error for extra cells")
	}
	if !strings.Contains(tbl.String(), "report:") {
		t.Error("String should surface the error")
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := New("t", "a", "b")
	tbl.AddRow("1", "x,y") // comma must be quoted
	tbl.AddRow("2")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n2,\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if F(0.000123456, 3) != "0.000123" {
		t.Errorf("F = %q", F(0.000123456, 3))
	}
	if Fixed(3.14159, 2) != "3.14" {
		t.Errorf("Fixed = %q", Fixed(3.14159, 2))
	}
	if Pct(0.0714, 1) != "7.1%" {
		t.Errorf("Pct = %q", Pct(0.0714, 1))
	}
	if I(42) != "42" || I64(-7) != "-7" {
		t.Error("int formatters broken")
	}
}
