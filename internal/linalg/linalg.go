// Package linalg implements the small dense linear algebra needed by
// the analytic model: the symmetric matrix A^(m) of Proposition 3, the
// quadratic form f = βᵀAβ that measures expected re-executed work in a
// segment, a Gaussian-elimination solver, and an equality-constrained
// quadratic program that recovers the optimal chunk sizes β*
// numerically (cross-checking the closed form of Theorems 3 and 4).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports a numerically singular system.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrShape reports mismatched dimensions.
var ErrShape = errors.New("linalg: dimension mismatch")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: %dx%d by %d", ErrShape, m.Rows, m.Cols, len(x))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// IsSymmetric reports whether the matrix equals its transpose within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// QuadForm returns βᵀ·A·β. A must be square with dimension len(beta).
func QuadForm(a *Matrix, beta []float64) (float64, error) {
	y, err := a.MulVec(beta)
	if err != nil {
		return 0, err
	}
	if a.Rows != a.Cols {
		return 0, fmt.Errorf("%w: quad form needs square matrix", ErrShape)
	}
	return Dot(beta, y), nil
}

// VerificationMatrix builds the m×m symmetric matrix A^(m) of
// Proposition 3 for a partial-verification recall r in (0,1]:
//
//	A[i][j] = (1 + (1-r)^{|i-j|}) / 2.
//
// With r = 1 it degenerates to (I + J·0 …): diagonal 1, off-diagonal ½,
// matching the guaranteed-verification case of [6].
func VerificationMatrix(m int, r float64) (*Matrix, error) {
	if m <= 0 {
		return nil, fmt.Errorf("linalg: verification matrix size %d", m)
	}
	if r <= 0 || r > 1 || math.IsNaN(r) {
		return nil, fmt.Errorf("linalg: recall %v out of (0,1]", r)
	}
	a := NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			a.Set(i, j, (1+math.Pow(1-r, float64(d)))/2)
		}
	}
	return a, nil
}

// SolveLinear solves A·x = b in place via Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: solve needs square matrix", ErrShape)
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d for %dx%d", ErrShape, len(b), n, n)
	}
	m := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(m.At(col, col))
		for row := col + 1; row < n; row++ {
			if v := math.Abs(m.At(row, col)); v > best {
				piv, best = row, v
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if piv != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[piv*n+j] = m.Data[piv*n+j], m.Data[col*n+j]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / m.At(col, col)
		for row := col + 1; row < n; row++ {
			f := m.At(row, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(row, j, m.At(row, j)-f*m.At(col, j))
			}
			x[row] -= f * x[col]
		}
	}
	// Back substitution.
	for row := n - 1; row >= 0; row-- {
		s := x[row]
		for j := row + 1; j < n; j++ {
			s -= m.At(row, j) * x[j]
		}
		x[row] = s / m.At(row, row)
	}
	return x, nil
}

// MinQuadFormSimplex solves
//
//	minimize    βᵀAβ
//	subject to  Σ βi = 1
//
// for symmetric positive-definite A via the KKT system
//
//	[ 2A  1 ] [β]   [0]
//	[ 1ᵀ  0 ] [μ] = [1],
//
// returning the optimal β and the minimum value. This is the numeric
// ground truth against which the closed-form chunk sizes β* of
// Theorem 3 are validated. Note the constraint is only the equality;
// for the matrices A^(m) of the paper the solution is interior
// (all βi > 0), which the tests assert.
func MinQuadFormSimplex(a *Matrix) (beta []float64, value float64, err error) {
	if a.Rows != a.Cols {
		return nil, 0, fmt.Errorf("%w: need square matrix", ErrShape)
	}
	n := a.Rows
	kkt := NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(i, j, 2*a.At(i, j))
		}
		kkt.Set(i, n, 1)
		kkt.Set(n, i, 1)
	}
	rhs := make([]float64, n+1)
	rhs[n] = 1
	sol, err := SolveLinear(kkt, rhs)
	if err != nil {
		return nil, 0, err
	}
	beta = sol[:n]
	value, err = QuadForm(a, beta)
	return beta, value, err
}

// OptimalBeta returns the closed-form optimal chunk-size fractions of
// Theorem 3 for a segment of m chunks and recall r:
//
//	β1 = βm = 1/((m-2)r+2),  βj = r/((m-2)r+2) otherwise,
//
// together with the minimised quadratic-form value
// f* = (1 + (2-r)/((m-2)r+2)) / 2.
func OptimalBeta(m int, r float64) (beta []float64, fstar float64, err error) {
	if m <= 0 {
		return nil, 0, fmt.Errorf("linalg: m = %d", m)
	}
	if r <= 0 || r > 1 || math.IsNaN(r) {
		return nil, 0, fmt.Errorf("linalg: recall %v out of (0,1]", r)
	}
	den := float64(m-2)*r + 2
	beta = make([]float64, m)
	for j := range beta {
		beta[j] = r / den
	}
	beta[0] = 1 / den
	beta[m-1] = 1 / den
	fstar = (1 + (2-r)/den) / 2
	if m == 1 {
		beta[0] = 1
		fstar = 1
	}
	return beta, fstar, nil
}
