package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"respat/internal/xmath"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 5 || m.At(1, 2) != -2 || m.At(0, 0) != 0 {
		t.Error("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Error("Clone aliases data")
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("expected shape error")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestVerificationMatrixProperties(t *testing.T) {
	for _, r := range []float64{0.2, 0.5, 0.8, 1} {
		for _, m := range []int{1, 2, 3, 7} {
			a, err := VerificationMatrix(m, r)
			if err != nil {
				t.Fatal(err)
			}
			if !a.IsSymmetric(0) {
				t.Errorf("A(m=%d,r=%v) not symmetric", m, r)
			}
			for i := 0; i < m; i++ {
				if a.At(i, i) != 1 {
					t.Errorf("diagonal A[%d][%d] = %v, want 1", i, i, a.At(i, i))
				}
			}
			// Entries decay away from the diagonal for r<1.
			if m >= 3 && r < 1 && !(a.At(0, 1) > a.At(0, 2)) {
				t.Errorf("A entries should decay off-diagonal for r=%v", r)
			}
		}
	}
}

func TestVerificationMatrixGuaranteedCase(t *testing.T) {
	// r=1: off-diagonal entries are exactly 1/2.
	a, err := VerificationMatrix(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.5
			if i == j {
				want = 1
			}
			if a.At(i, j) != want {
				t.Errorf("A[%d][%d] = %v, want %v", i, j, a.At(i, j), want)
			}
		}
	}
}

func TestVerificationMatrixValidation(t *testing.T) {
	if _, err := VerificationMatrix(0, 0.5); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := VerificationMatrix(3, 0); err == nil {
		t.Error("r=0 should fail")
	}
	if _, err := VerificationMatrix(3, 1.5); err == nil {
		t.Error("r>1 should fail")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	x, err := SolveLinear(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !xmath.Close(x[i], want[i], 1e-10) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveLinear(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearDoesNotMutate(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 2)
	b := []float64{8, 6}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 4 || b[0] != 8 {
		t.Error("SolveLinear mutated inputs")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b, _ := a.MulVec(xTrue)
		x, err := SolveLinear(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !xmath.Close(x[i], xTrue[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestQuadFormSimple(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	v, err := QuadForm(a, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v != 14 {
		t.Errorf("QuadForm = %v, want 14", v)
	}
}

func TestOptimalBetaClosedForm(t *testing.T) {
	beta, fstar, err := OptimalBeta(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	den := 2.8
	want := []float64{1 / den, 0.8 / den, 1 / den}
	for i := range want {
		if !xmath.Close(beta[i], want[i], 1e-12) {
			t.Errorf("beta[%d] = %v, want %v", i, beta[i], want[i])
		}
	}
	if !xmath.Close(fstar, (1+1.2/2.8)/2, 1e-12) {
		t.Errorf("fstar = %v", fstar)
	}
}

func TestOptimalBetaEdgeCases(t *testing.T) {
	beta, fstar, err := OptimalBeta(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(beta) != 1 || beta[0] != 1 || fstar != 1 {
		t.Errorf("m=1: beta=%v fstar=%v, want [1] 1", beta, fstar)
	}
	beta, _, err = OptimalBeta(2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.Close(beta[0], 0.5, 1e-12) || !xmath.Close(beta[1], 0.5, 1e-12) {
		t.Errorf("m=2: beta=%v, want [0.5 0.5]", beta)
	}
	if _, _, err := OptimalBeta(0, 0.5); err == nil {
		t.Error("m=0 should fail")
	}
	if _, _, err := OptimalBeta(3, -1); err == nil {
		t.Error("r=-1 should fail")
	}
}

func TestOptimalBetaSumsToOne(t *testing.T) {
	f := func(mRaw uint8, rRaw float64) bool {
		m := int(mRaw%20) + 1
		r := math.Mod(math.Abs(rRaw), 0.999) + 0.001
		beta, _, err := OptimalBeta(m, r)
		if err != nil {
			return false
		}
		var sum float64
		for _, b := range beta {
			sum += b
		}
		return xmath.Close(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestClosedFormBetaMatchesQP is the central cross-check of Theorem 3:
// the paper's closed-form chunk sizes must coincide with the numeric
// solution of min βᵀAβ subject to Σβ=1.
func TestClosedFormBetaMatchesQP(t *testing.T) {
	for _, r := range []float64{0.2, 0.5, 0.8, 0.95, 1} {
		for _, m := range []int{2, 3, 4, 5, 8, 12} {
			a, err := VerificationMatrix(m, r)
			if err != nil {
				t.Fatal(err)
			}
			qpBeta, qpVal, err := MinQuadFormSimplex(a)
			if err != nil {
				t.Fatal(err)
			}
			cfBeta, cfVal, err := OptimalBeta(m, r)
			if err != nil {
				t.Fatal(err)
			}
			if !xmath.Close(qpVal, cfVal, 1e-9) {
				t.Errorf("m=%d r=%v: QP value %v vs closed form %v", m, r, qpVal, cfVal)
			}
			for j := range cfBeta {
				if !xmath.Close(qpBeta[j], cfBeta[j], 1e-7) {
					t.Errorf("m=%d r=%v: beta[%d] QP %v vs closed form %v", m, r, j, qpBeta[j], cfBeta[j])
				}
				if qpBeta[j] <= 0 {
					t.Errorf("m=%d r=%v: QP beta[%d] = %v not interior", m, r, j, qpBeta[j])
				}
			}
		}
	}
}

// TestQPIsActuallyMinimal perturbs the optimal β on the simplex and
// checks the quadratic form only increases.
func TestQPIsActuallyMinimal(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a, _ := VerificationMatrix(5, 0.7)
	beta, val, err := MinQuadFormSimplex(a)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		pert := append([]float64(nil), beta...)
		// Zero-sum perturbation keeps Σβ = 1.
		i, j := rng.IntN(5), rng.IntN(5)
		if i == j {
			continue
		}
		eps := (rng.Float64() - 0.5) * 0.1
		pert[i] += eps
		pert[j] -= eps
		v, err := QuadForm(a, pert)
		if err != nil {
			t.Fatal(err)
		}
		if v < val-1e-12 {
			t.Fatalf("found better point: %v < %v", v, val)
		}
	}
}

func TestMinQuadFormRejectsNonSquare(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, _, err := MinQuadFormSimplex(m); err == nil {
		t.Error("expected shape error")
	}
}
