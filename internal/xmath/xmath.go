// Package xmath provides the small numerical substrate used throughout
// respat: compensated summation, scalar minimisation, convex integer
// search and root finding. All routines are dependency-free and
// deterministic, which keeps the analytic model and the simulator
// reproducible bit-for-bit across runs.
package xmath

import (
	"errors"
	"math"
)

// Eps is the default relative tolerance used by the comparison helpers.
const Eps = 1e-9

// ErrNoBracket is returned by Brent when the supplied interval does not
// bracket a sign change.
var ErrNoBracket = errors.New("xmath: interval does not bracket a root")

// Close reports whether a and b are equal within relative tolerance tol
// (absolute tolerance tol for numbers near zero).
func Close(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= tol
	}
	return diff <= tol*scale
}

// Sum returns the Kahan-Babuška (Neumaier) compensated sum of xs.
// It is accurate to within a couple of ulps even for badly conditioned
// inputs, which matters when accumulating millions of per-operation
// durations in the simulator.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// Accumulator is a streaming Neumaier-compensated accumulator.
// The zero value is ready to use.
type Accumulator struct {
	sum  float64
	comp float64
}

// Add accumulates x.
func (a *Accumulator) Add(x float64) {
	t := a.sum + x
	if math.Abs(a.sum) >= math.Abs(x) {
		a.comp += (a.sum - t) + x
	} else {
		a.comp += (x - t) + a.sum
	}
	a.sum = t
}

// Value returns the compensated total.
func (a *Accumulator) Value() float64 { return a.sum + a.comp }

// Reset clears the accumulator.
func (a *Accumulator) Reset() { a.sum, a.comp = 0, 0 }

// Expm1Div returns (e^x - 1)/x evaluated stably, with the limit value 1
// at x = 0. It appears in the exact expected-lost-time formula
// E[T_lost] = 1/λ - w/(e^{λw}-1).
func Expm1Div(x float64) float64 {
	if x == 0 {
		return 1
	}
	return math.Expm1(x) / x
}

const invPhi = 0.6180339887498949 // (sqrt(5)-1)/2

// MinimizeGolden minimises the unimodal function f on [a, b] by
// golden-section search, stopping when the bracket is narrower than tol
// (relative to the bracket magnitude, with an absolute floor).
// It returns the abscissa and the value of the minimum.
func MinimizeGolden(f func(float64) float64, a, b, tol float64) (x, fx float64) {
	if b < a {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-10
	}
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol*(math.Abs(a)+math.Abs(b)+1) {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x = (a + b) / 2
	return x, f(x)
}

// MinimizeConvexInt minimises a convex function f over the integers in
// [lo, hi] by ternary search. It returns the argmin and minimum value.
// For non-convex f the result is a local minimum.
func MinimizeConvexInt(f func(int) float64, lo, hi int) (int, float64) {
	if lo > hi {
		lo, hi = hi, lo
	}
	for hi-lo > 2 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if f(m1) <= f(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	best, fbest := lo, f(lo)
	for k := lo + 1; k <= hi; k++ {
		if fk := f(k); fk < fbest {
			best, fbest = k, fk
		}
	}
	return best, fbest
}

// IntNeighborhood returns the candidate integer values around the
// rational optimum x, clamped to be at least 1: max(1, floor(x)) and
// ceil(x). This is the rounding rule of Theorems 2-4.
func IntNeighborhood(x float64) []int {
	lo := int(math.Floor(x))
	if lo < 1 {
		lo = 1
	}
	hi := int(math.Ceil(x))
	if hi < 1 {
		hi = 1
	}
	if lo == hi {
		return []int{lo}
	}
	return []int{lo, hi}
}

// ArgminInt evaluates f over candidates and returns the minimising
// candidate and its value. It panics on an empty candidate list.
func ArgminInt(f func(int) float64, candidates []int) (int, float64) {
	if len(candidates) == 0 {
		panic("xmath: ArgminInt with no candidates")
	}
	best := candidates[0]
	fbest := f(best)
	for _, c := range candidates[1:] {
		if fc := f(c); fc < fbest {
			best, fbest = c, fc
		}
	}
	return best, fbest
}

// Brent finds a root of f in [a, b] using the Brent-Dekker method.
// f(a) and f(b) must have opposite signs.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoBracket
	}
	if tol <= 0 {
		tol = 1e-12
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < 200; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return b, nil
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// SqrtRatio returns sqrt(num/den), guarding against a zero denominator
// (returns +Inf) and negative operands (returns NaN), mirroring the
// W* = sqrt(oef/orw) closed form.
func SqrtRatio(num, den float64) float64 {
	if den == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}
