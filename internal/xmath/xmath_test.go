package xmath

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCloseBasics(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-12, true},
		{1, 1 + 1e-10, 1e-9, true},
		{1, 1.1, 1e-3, false},
		{0, 1e-12, 1e-9, true},
		{0, 1e-3, 1e-9, false},
		{1e12, 1e12 * (1 + 1e-10), 1e-9, true},
		{-5, -5, 0, true},
	}
	for _, c := range cases {
		if got := Close(c.a, c.b, c.tol); got != c.want {
			t.Errorf("Close(%v,%v,%v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestSumCompensation(t *testing.T) {
	// 1 + 1e100 - 1e100 + 1 loses a term with naive summation.
	xs := []float64{1, 1e100, 1, -1e100}
	if got := Sum(xs); got != 2 {
		t.Errorf("Sum = %v, want 2", got)
	}
}

func TestSumMatchesAccumulator(t *testing.T) {
	f := func(xs []float64) bool {
		var acc Accumulator
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			acc.Add(x)
		}
		s := Sum(xs)
		return (math.IsNaN(s) && math.IsNaN(acc.Value())) || Close(s, acc.Value(), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorReset(t *testing.T) {
	var acc Accumulator
	acc.Add(3)
	acc.Add(4)
	acc.Reset()
	if acc.Value() != 0 {
		t.Fatalf("Value after Reset = %v, want 0", acc.Value())
	}
	acc.Add(1.5)
	if acc.Value() != 1.5 {
		t.Fatalf("Value = %v, want 1.5", acc.Value())
	}
}

func TestExpm1Div(t *testing.T) {
	if got := Expm1Div(0); got != 1 {
		t.Errorf("Expm1Div(0) = %v, want 1", got)
	}
	// For small x, (e^x-1)/x ~= 1 + x/2.
	x := 1e-8
	if got, want := Expm1Div(x), 1+x/2; !Close(got, want, 1e-12) {
		t.Errorf("Expm1Div(%v) = %v, want %v", x, got, want)
	}
	if got, want := Expm1Div(1.0), math.E-1; !Close(got, want, 1e-12) {
		t.Errorf("Expm1Div(1) = %v, want %v", got, want)
	}
}

func TestMinimizeGoldenQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3.25) * (x - 3.25) }
	x, fx := MinimizeGolden(f, 0, 10, 1e-12)
	if !Close(x, 3.25, 1e-6) {
		t.Errorf("argmin = %v, want 3.25", x)
	}
	if fx > 1e-10 {
		t.Errorf("min value = %v, want ~0", fx)
	}
}

func TestMinimizeGoldenReversedBounds(t *testing.T) {
	f := func(x float64) float64 { return math.Cosh(x - 1) }
	x, _ := MinimizeGolden(f, 5, -5, 1e-12)
	if !Close(x, 1, 1e-6) {
		t.Errorf("argmin = %v, want 1", x)
	}
}

func TestMinimizeGoldenRandomQuadratics(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 50; i++ {
		c := rng.Float64()*20 - 10
		f := func(x float64) float64 { return 2*(x-c)*(x-c) + 1 }
		x, fx := MinimizeGolden(f, -15, 15, 1e-12)
		if !Close(x, c, 1e-5) {
			t.Fatalf("argmin = %v, want %v", x, c)
		}
		if !Close(fx, 1, 1e-9) {
			t.Fatalf("min = %v, want 1", fx)
		}
	}
}

func TestMinimizeConvexInt(t *testing.T) {
	f := func(k int) float64 { d := float64(k) - 17.3; return d * d }
	k, fk := MinimizeConvexInt(f, 1, 1000)
	if k != 17 {
		t.Errorf("argmin = %d, want 17", k)
	}
	if !Close(fk, 0.09, 1e-12) {
		t.Errorf("min = %v, want 0.09", fk)
	}
}

func TestMinimizeConvexIntTinyRange(t *testing.T) {
	f := func(k int) float64 { return float64(k) }
	k, _ := MinimizeConvexInt(f, 5, 5)
	if k != 5 {
		t.Errorf("argmin = %d, want 5", k)
	}
	k, _ = MinimizeConvexInt(f, 7, 3) // reversed bounds
	if k != 3 {
		t.Errorf("argmin = %d, want 3", k)
	}
}

func TestIntNeighborhood(t *testing.T) {
	cases := []struct {
		x    float64
		want []int
	}{
		{2.3, []int{2, 3}},
		{0.4, []int{1}},
		{-3, []int{1}},
		{5, []int{5}},
		{1.0, []int{1}},
	}
	for _, c := range cases {
		got := IntNeighborhood(c.x)
		if len(got) != len(c.want) {
			t.Errorf("IntNeighborhood(%v) = %v, want %v", c.x, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("IntNeighborhood(%v) = %v, want %v", c.x, got, c.want)
			}
		}
	}
}

func TestArgminInt(t *testing.T) {
	f := func(k int) float64 { return math.Abs(float64(k) - 6) }
	k, fk := ArgminInt(f, []int{2, 5, 9})
	if k != 5 || fk != 1 {
		t.Errorf("ArgminInt = (%d,%v), want (5,1)", k, fk)
	}
}

func TestArgminIntPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty candidates")
		}
	}()
	ArgminInt(func(int) float64 { return 0 }, nil)
}

func TestBrentSimpleRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	x, err := Brent(f, 0, 2, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if !Close(x, math.Sqrt2, 1e-10) {
		t.Errorf("root = %v, want sqrt(2)", x)
	}
}

func TestBrentEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x - 1 }
	if x, err := Brent(f, 1, 5, 1e-12); err != nil || x != 1 {
		t.Errorf("root = (%v,%v), want (1,nil)", x, err)
	}
	if x, err := Brent(f, -3, 1, 1e-12); err != nil || x != 1 {
		t.Errorf("root = (%v,%v), want (1,nil)", x, err)
	}
}

func TestBrentNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Brent(f, -1, 1, 1e-12); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentTranscendental(t *testing.T) {
	// Young/Daly-like fixed point: find W with W^2 = K (via exp form).
	f := func(w float64) float64 { return math.Exp(w) - 3 }
	x, err := Brent(f, 0, 5, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if !Close(x, math.Log(3), 1e-10) {
		t.Errorf("root = %v, want ln 3", x)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestSqrtRatio(t *testing.T) {
	if got := SqrtRatio(9, 4); !Close(got, 1.5, 1e-12) {
		t.Errorf("SqrtRatio(9,4) = %v, want 1.5", got)
	}
	if !math.IsInf(SqrtRatio(1, 0), 1) {
		t.Error("SqrtRatio(1,0) should be +Inf")
	}
	if !math.IsNaN(SqrtRatio(-1, 1)) {
		t.Error("SqrtRatio(-1,1) should be NaN")
	}
}

func TestGoldenSectionAgainstBruteForce(t *testing.T) {
	// The pattern-overhead shape a/x + b*x has argmin sqrt(a/b); check
	// golden section recovers it across magnitudes.
	for _, ab := range [][2]float64{{330.8, 3.85e-6}, {15, 1e-3}, {2500, 1e-7}} {
		a, b := ab[0], ab[1]
		f := func(x float64) float64 { return a/x + b*x }
		want := math.Sqrt(a / b)
		x, _ := MinimizeGolden(f, want/100, want*100, 1e-12)
		if !Close(x, want, 1e-5) {
			t.Errorf("argmin(a=%v,b=%v) = %v, want %v", a, b, x, want)
		}
	}
}
