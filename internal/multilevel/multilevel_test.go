package multilevel

import (
	"math"
	"testing"

	"respat/internal/core"
	"respat/internal/platform"
)

// threeLevel is a small hierarchy used across the tests.
func threeLevel() Params {
	return Params{
		Levels: []Level{
			{Ckpt: 5, Rec: 6, Share: 0.5},
			{Ckpt: 30, Rec: 40, Share: 0.3},
			{Ckpt: 200, Rec: 260, Share: 0.2},
		},
		GuarVer: 6, PartVer: 0.4, Recall: 0.7,
		Rates: core.Rates{FailStop: 4e-5, Silent: 5e-5},
	}
}

func TestParamsValidate(t *testing.T) {
	ok := threeLevel()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"no levels", func(p *Params) { p.Levels = nil }},
		{"too many levels", func(p *Params) { p.Levels = make([]Level, MaxLevels+1) }},
		{"negative ckpt", func(p *Params) { p.Levels[1].Ckpt = -1 }},
		{"NaN rec", func(p *Params) { p.Levels[0].Rec = math.NaN() }},
		{"share above one", func(p *Params) { p.Levels[0].Share = 1.5 }},
		{"shares not normalised", func(p *Params) { p.Levels[0].Share = 0.9 }},
		{"negative guar", func(p *Params) { p.GuarVer = -1 }},
		{"zero recall", func(p *Params) { p.Recall = 0 }},
		{"bad rate", func(p *Params) { p.Rates.Silent = math.Inf(1) }},
	}
	for _, c := range cases {
		p := threeLevel()
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	s := UniformSpec(3600, []int{6, 2}, 3)
	if got := s.Counts; got[0] != 12 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("UniformSpec counts = %v, want [12 2 1]", got)
	}
	if err := s.Validate(3); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{W: 0, Counts: []int{1}, M: 1},
		{W: 3600, Counts: []int{2}, M: 1},          // n_L != 1
		{W: 3600, Counts: []int{3, 2, 1}, M: 1},    // 3 not a multiple of 2
		{W: 3600, Counts: []int{4, 2, 1}, M: 0},    // m < 1
		{W: 3600, Counts: []int{4, 1}, M: 1},       // counts/levels mismatch (3 levels)
		{W: math.NaN(), Counts: []int{1, 1}, M: 1}, // NaN W
	}
	levels := []int{1, 1, 3, 3, 3, 2}
	for i, s := range bad {
		if err := s.Validate(levels[i]); err == nil {
			t.Errorf("case %d (%v at %d levels): validation passed", i, s, levels[i])
		}
	}
}

func TestBoundaryLevels(t *testing.T) {
	p := threeLevel()
	layout, err := p.Layout(UniformSpec(3600, []int{3, 2}, 2))
	if err != nil {
		t.Fatal(err)
	}
	// counts = [6 2 1]: level-2 boundaries every 3 intervals, level 3
	// closes the pattern.
	want := []int{1, 1, 2, 1, 1, 3}
	for t1, w := range want {
		if got := layout.BoundaryLevel(t1); got != w {
			t.Errorf("boundary after interval %d: level %d, want %d", t1, got, w)
		}
	}
	// Level-aware rollback targets.
	if got := layout.RollbackTo(1, 4); got != 4 {
		t.Errorf("level-1 rollback from interval 4 -> %d, want 4", got)
	}
	if got := layout.RollbackTo(2, 4); got != 3 {
		t.Errorf("level-2 rollback from interval 4 -> %d, want 3", got)
	}
	if got := layout.RollbackTo(3, 4); got != 0 {
		t.Errorf("level-3 rollback from interval 4 -> %d, want 0", got)
	}
}

func TestPickLevel(t *testing.T) {
	p := threeLevel()
	if got := p.PickLevel(0.1); got != 1 {
		t.Errorf("u=0.1 -> level %d, want 1", got)
	}
	if got := p.PickLevel(0.6); got != 2 {
		t.Errorf("u=0.6 -> level %d, want 2", got)
	}
	if got := p.PickLevel(0.95); got != 3 {
		t.Errorf("u=0.95 -> level %d, want 3", got)
	}
	if got := p.PickLevel(0.9999999999999999); got != 3 {
		t.Errorf("u~1 -> level %d, want 3 (rounding guard)", got)
	}
}

func TestErrorFreeTime(t *testing.T) {
	p := threeLevel()
	s := UniformSpec(3600, []int{3, 2}, 2)
	// 6 level-1 intervals: each 1 interior verification + 1 guaranteed;
	// checkpoints: 6×C1 + 2×C2 + 1×C3.
	want := 3600 + 6*(1*0.4+6) + 6*5 + 2*30 + 1*200
	if got := p.ErrorFreeTime(s); math.Abs(got-want) > 1e-9 {
		t.Errorf("error-free time %v, want %v", got, want)
	}
	// The evaluator reduces to the error-free time at zero rates.
	p.Rates = core.Rates{}
	got, err := ExpectedTime(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("zero-rate expected time %v, want error-free %v", got, want)
	}
}

func TestFromPlatform(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	for levels := 1; levels <= MaxLevels; levels++ {
		p, err := FromPlatform(hera, levels)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("levels=%d: %v", levels, err)
		}
		if p.L() != levels {
			t.Fatalf("levels=%d: got %d", levels, p.L())
		}
		// Endpoints pin to the platform's memory and disk figures.
		top := p.Levels[levels-1]
		if math.Abs(top.Ckpt-hera.Costs.DiskCkpt) > 1e-9 {
			t.Errorf("levels=%d: top checkpoint %v, want CD=%v", levels, top.Ckpt, hera.Costs.DiskCkpt)
		}
		if levels > 1 && math.Abs(p.Levels[0].Ckpt-hera.Costs.MemCkpt) > 1e-9 {
			t.Errorf("levels=%d: bottom checkpoint %v, want CM=%v", levels, p.Levels[0].Ckpt, hera.Costs.MemCkpt)
		}
		// Costs and cumulative recoveries grow with the level.
		for l := 1; l < levels; l++ {
			if p.Levels[l].Ckpt <= p.Levels[l-1].Ckpt || p.Levels[l].Rec <= p.Levels[l-1].Rec {
				t.Errorf("levels=%d: level %d not more expensive than level %d", levels, l+1, l)
			}
		}
	}
	if _, err := FromPlatform(hera, 0); err == nil {
		t.Error("levels=0 accepted")
	}
	if _, err := FromPlatform(hera, MaxLevels+1); err == nil {
		t.Error("levels beyond MaxLevels accepted")
	}
}

// TestOptimizeHierarchyHelps: on every Table 2 platform the planned
// two-level hierarchy (cheap local recovery for most fail-stop errors,
// cheap silent rollback) strictly beats the single-level plan that
// pays the disk for everything — the claim the harness figure
// quantifies.
func TestOptimizeHierarchyHelps(t *testing.T) {
	for _, pl := range platform.Table2() {
		var prev float64
		for levels := 1; levels <= 2; levels++ {
			p, err := FromPlatform(pl, levels)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := Optimize(p)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Overhead <= 0 || math.IsNaN(plan.Overhead) {
				t.Fatalf("%s L=%d: overhead %v", pl.Name, levels, plan.Overhead)
			}
			if err := plan.Spec.Validate(levels); err != nil {
				t.Fatalf("%s L=%d: invalid optimal spec: %v", pl.Name, levels, err)
			}
			if levels == 2 && plan.Overhead >= prev {
				t.Errorf("%s: 2-level optimum %.4f not below single-level %.4f", pl.Name, plan.Overhead, prev)
			}
			prev = plan.Overhead
		}
	}
}

// TestOptimizeIsOptimal: the planner's optimum is not beaten by any
// neighbouring integer layout or a ±20% period change.
func TestOptimizeIsOptimal(t *testing.T) {
	p := threeLevel()
	plan, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	base := plan.Overhead
	check := func(s Spec, label string) {
		if s.Validate(p.L()) != nil {
			return
		}
		h, err := ev.Overhead(s)
		if err != nil {
			t.Fatal(err)
		}
		if h < base-1e-9 {
			t.Errorf("%s (%v) beats the optimum: %.6f < %.6f", label, s, h, base)
		}
	}
	k1 := plan.Spec.Counts[0] / plan.Spec.Counts[1]
	k2 := plan.Spec.Counts[1]
	for _, d1 := range []int{-1, 0, 1} {
		for _, d2 := range []int{-1, 0, 1} {
			for _, dm := range []int{-1, 0, 1} {
				if k1+d1 < 1 || k2+d2 < 1 || plan.Spec.M+dm < 1 {
					continue
				}
				check(UniformSpec(plan.Spec.W, []int{k1 + d1, k2 + d2}, plan.Spec.M+dm), "neighbour")
			}
		}
	}
	for _, f := range []float64{0.8, 1.2} {
		s := plan.Spec
		s.W = plan.Spec.W * f
		check(s, "period shift")
	}
}
