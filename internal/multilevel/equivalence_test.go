package multilevel

import (
	"math"
	"testing"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/optimize"
	"respat/internal/platform"
	"respat/internal/twolevel"
)

// relErr returns |a-b| / max(|a|,|b|,1e-300).
func relErr(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// analyticL2Params maps a paper configuration onto the L = 2
// hierarchy the paper's model is a special case of: level 1 is the
// memory checkpoint (C_1 = CM, silent rollbacks pay R_1 = RM), level 2
// the disk checkpoint, and every fail-stop error is of level 2
// (q_2 = 1, the paper's "a crash loses the memory" assumption) at cost
// R_2 = RD + RM (the disk restore re-establishes the memory state).
func analyticL2Params(c core.Costs, r core.Rates, interiorGuaranteed bool) Params {
	return Params{
		Levels: []Level{
			{Ckpt: c.MemCkpt, Rec: c.MemRec, Share: 0},
			{Ckpt: c.DiskCkpt, Rec: c.DiskRec + c.MemRec, Share: 1},
		},
		GuarVer:            c.GuarVer,
		PartVer:            c.PartVer,
		Recall:             c.Recall,
		Rates:              r,
		InteriorGuaranteed: interiorGuaranteed,
	}
}

// TestEvaluatorDegeneratesToAnalyticL2: on the Table 2 platforms the
// multilevel evaluator at L = 2 under the paper mapping reproduces
// analytic's exact renewal-equation expected times for the PDMV and
// PDMV* layouts across a grid of (n, m, W).
func TestEvaluatorDegeneratesToAnalyticL2(t *testing.T) {
	for _, pl := range platform.Table2() {
		for _, interior := range []bool{false, true} {
			kind := core.PDMV
			if interior {
				kind = core.PDMVStar
			}
			ref, err := analytic.NewEvaluator(pl.Costs, pl.Rates)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := NewEvaluator(analyticL2Params(pl.Costs, pl.Rates, interior))
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{1, 2, 5} {
				for _, m := range []int{1, 2, 3, 7} {
					for _, w := range []float64{900, 25000, 250000} {
						want, err := ref.EvalLayout(kind, n, m, w)
						if err != nil {
							t.Fatal(err)
						}
						got, err := ev.ExpectedTime(UniformSpec(w, []int{n}, m))
						if err != nil {
							t.Fatal(err)
						}
						if re := relErr(got, want); re > 1e-12 {
							t.Errorf("%s %v n=%d m=%d W=%g: multilevel %v vs analytic %v (rel %.2e)",
								pl.Name, kind, n, m, w, got, want, re)
						}
					}
				}
			}
		}
	}
}

// TestEvaluatorDegeneratesToAnalyticL1: at L = 1 the model is the
// paper's single-segment family: one level whose checkpoint is the
// disk checkpoint and whose recovery is paid by fail-stop and silent
// rollbacks alike. The matching analytic configuration has
// MemCkpt = 0, DiskRec = 0 and MemRec = R_1 (the paper charges RD per
// crash inside the attempt and RM per failed attempt; zeroing RD and
// letting RM carry the whole recovery makes both error kinds pay R_1,
// exactly the single-level semantics).
func TestEvaluatorDegeneratesToAnalyticL1(t *testing.T) {
	costs := core.Costs{
		DiskCkpt: 300, MemCkpt: 0, DiskRec: 0, MemRec: 330,
		GuarVer: 15.4, PartVer: 0.154, Recall: 0.8,
	}
	rates := core.Rates{FailStop: 9.46e-7, Silent: 3.38e-6}
	ref, err := analytic.NewEvaluator(costs, rates)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{
		Levels:  []Level{{Ckpt: 300, Rec: 330, Share: 1}},
		GuarVer: 15.4, PartVer: 0.154, Recall: 0.8,
		Rates: rates,
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 2, 3, 9} {
		for _, w := range []float64{1200, 18000, 90000} {
			want, err := ref.EvalLayout(core.PDV, 1, m, w)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ev.ExpectedTime(UniformSpec(w, nil, m))
			if err != nil {
				t.Fatal(err)
			}
			if re := relErr(got, want); re > 1e-12 {
				t.Errorf("m=%d W=%g: multilevel %v vs analytic %v (rel %.2e)", m, w, got, want, re)
			}
		}
	}
}

// TestOptimizeDegeneratesToExactPlannerL1: the multilevel planner at
// L = 1 lands on the same (W*, m*) optimum as optimize.Exact on the
// matching single-segment configuration.
func TestOptimizeDegeneratesToExactPlannerL1(t *testing.T) {
	costs := core.Costs{
		DiskCkpt: 300, MemCkpt: 0, DiskRec: 0, MemRec: 330,
		GuarVer: 15.4, PartVer: 0.154, Recall: 0.8,
	}
	rates := core.Rates{FailStop: 9.46e-7, Silent: 3.38e-6}
	want, err := optimize.Exact(core.PDV, costs, rates)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Optimize(Params{
		Levels:  []Level{{Ckpt: 300, Rec: 330, Share: 1}},
		GuarVer: 15.4, PartVer: 0.154, Recall: 0.8,
		Rates: rates,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.M != want.M {
		t.Errorf("m* = %d, optimize.Exact found %d", got.Spec.M, want.M)
	}
	if re := relErr(got.Overhead, want.Overhead); re > 1e-9 {
		t.Errorf("H* = %v, optimize.Exact found %v (rel %.2e)", got.Overhead, want.Overhead, re)
	}
	if re := relErr(got.Spec.W, want.W); re > 1e-4 {
		t.Errorf("W* = %v, optimize.Exact found %v (rel %.2e)", got.Spec.W, want.W, re)
	}
}

// twolevelParams maps a classic two-level fail-stop configuration
// (package twolevel) onto the L = 2 hierarchy with the silent-error
// machinery switched off: zero verification costs, zero silent rate,
// one chunk per interval.
func twolevelParams(p twolevel.Params) Params {
	return Params{
		Levels: []Level{
			{Ckpt: p.LocalCkpt, Rec: p.LocalRec, Share: p.LocalShare},
			{Ckpt: p.DiskCkpt, Rec: p.DiskRec, Share: 1 - p.LocalShare},
		},
		Recall: 1,
		Rates:  core.Rates{FailStop: p.Lambda},
	}
}

// TestEvaluatorDegeneratesToTwoLevel: at L = 2 with silent rate 0 the
// multilevel evaluator reproduces twolevel.ExpectedTime across a grid
// of (W, n).
func TestEvaluatorDegeneratesToTwoLevel(t *testing.T) {
	tp := twolevel.Params{
		Lambda: 9.46e-6, LocalShare: 0.8,
		LocalCkpt: 15.4, DiskCkpt: 300, LocalRec: 15.4, DiskRec: 300,
	}
	ev, err := NewEvaluator(twolevelParams(tp))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 9} {
		for _, w := range []float64{800, 9000, 60000} {
			want, err := twolevel.ExpectedTime(tp, w, n)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ev.ExpectedTime(UniformSpec(w, []int{n}, 1))
			if err != nil {
				t.Fatal(err)
			}
			if re := relErr(got, want); re > 1e-12 {
				t.Errorf("n=%d W=%g: multilevel %v vs twolevel %v (rel %.2e)", n, w, got, want, re)
			}
		}
	}
}

// TestOptimizeDegeneratesToTwoLevel: the multilevel planner at L = 2
// with silent rate 0 reproduces twolevel.Optimize — same n*, matching
// W* and overhead.
func TestOptimizeDegeneratesToTwoLevel(t *testing.T) {
	for _, tp := range []twolevel.Params{
		{Lambda: 9.46e-6, LocalShare: 0.8, LocalCkpt: 15.4, DiskCkpt: 300, LocalRec: 15.4, DiskRec: 300},
		{Lambda: 5e-5, LocalShare: 0.5, LocalCkpt: 5, DiskCkpt: 120, LocalRec: 10, DiskRec: 150},
	} {
		want, err := twolevel.Optimize(tp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Optimize(twolevelParams(tp))
		if err != nil {
			t.Fatal(err)
		}
		if got.Spec.Counts[0] != want.N {
			t.Errorf("n* = %d, twolevel.Optimize found %d", got.Spec.Counts[0], want.N)
		}
		if got.Spec.M != 1 {
			t.Errorf("m* = %d, want 1 with no silent errors", got.Spec.M)
		}
		if re := relErr(got.Overhead, want.Overhead); re > 1e-9 {
			t.Errorf("H* = %v, twolevel.Optimize found %v (rel %.2e)", got.Overhead, want.Overhead, re)
		}
		if re := relErr(got.Spec.W, want.W); re > 1e-4 {
			t.Errorf("W* = %v, twolevel.Optimize found %v (rel %.2e)", got.Spec.W, want.W, re)
		}
	}
}
