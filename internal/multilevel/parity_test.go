package multilevel

import (
	"math"
	"testing"

	"respat/internal/platform"
)

// plannerGolden pins the planner's output bits across the Table 2
// platforms and L ∈ {1,2,3}. The W and H columns are the exact
// IEEE-754 bit patterns the pre-overhaul sequential nested convex
// search produced (captured at commit 62df4f4's planner before the
// pruned parallel search landed), so this table is the contract that
// the overhaul changed how the optimum is found, not what it is.
var plannerGolden = []struct {
	platform string
	levels   int
	counts   []int
	m        int
	wBits    uint64
	hBits    uint64
}{
	{"Hera", 1, []int{1}, 48, 0x40c726a42ac92028, 0x3fac4ea4e1213fa0},
	{"Hera", 2, []int{9, 1}, 16, 0x40e139f760a87ef7, 0x3fa162b2e60bcfe0},
	{"Hera", 3, []int{12, 2, 1}, 16, 0x40e77761c7b34ff3, 0x3fa1c26447f1e8e0},
	{"Atlas", 1, []int{1}, 80, 0x40c3aeb5b720abf4, 0x3fb7c07c13a08070},
	{"Atlas", 2, []int{27, 1}, 17, 0x40ebcda7b8fbad44, 0x3fa175649a9c54e0},
	{"Atlas", 3, []int{39, 3, 1}, 17, 0x40f434dc6eb29f28, 0x3fa1439363edc4e0},
	{"Coastal", 1, []int{1}, 167, 0x40dc2ec24b718437, 0x3fb34af8a6728e40},
	{"Coastal", 2, []int{36, 1}, 16, 0x40f8b43939d88166, 0x3f9c6f6b69070900},
	{"Coastal", 3, []int{52, 4, 1}, 16, 0x4101a29576f06b68, 0x3f99f9739f6954c0},
	{"Coastal-SSD", 1, []int{1}, 41, 0x40e61474778e5fd6, 0x3fc015313c47eeb0},
	{"Coastal-SSD", 2, []int{9, 1}, 16, 0x4102f6722cd20d81, 0x3fb3c582ec4008b0},
	{"Coastal-SSD", 3, []int{12, 2, 1}, 16, 0x410a0a45fa3702ea, 0x3fb45fb1c7a19050},
}

func samePlan(t *testing.T, label string, got, want Plan) {
	t.Helper()
	if len(got.Spec.Counts) != len(want.Spec.Counts) {
		t.Fatalf("%s: counts %v, want %v", label, got.Spec.Counts, want.Spec.Counts)
	}
	for l := range want.Spec.Counts {
		if got.Spec.Counts[l] != want.Spec.Counts[l] {
			t.Fatalf("%s: counts %v, want %v", label, got.Spec.Counts, want.Spec.Counts)
		}
	}
	if got.Spec.M != want.Spec.M {
		t.Fatalf("%s: m = %d, want %d", label, got.Spec.M, want.Spec.M)
	}
	if math.Float64bits(got.Spec.W) != math.Float64bits(want.Spec.W) {
		t.Fatalf("%s: W = %v (bits %x), want %v (bits %x)",
			label, got.Spec.W, math.Float64bits(got.Spec.W),
			want.Spec.W, math.Float64bits(want.Spec.W))
	}
	if math.Float64bits(got.Overhead) != math.Float64bits(want.Overhead) {
		t.Fatalf("%s: H = %v (bits %x), want %v (bits %x)",
			label, got.Overhead, math.Float64bits(got.Overhead),
			want.Overhead, math.Float64bits(want.Overhead))
	}
}

// TestPlannerGoldenParity asserts the pruned parallel planner returns
// plans bit-identical to (a) the captured pre-overhaul outputs and (b)
// a live run of the sequential nested convex reference, across the
// Table 2 platforms and hierarchy depths.
func TestPlannerGoldenParity(t *testing.T) {
	for _, g := range plannerGolden {
		pl, err := platform.ByName(g.platform)
		if err != nil {
			t.Fatal(err)
		}
		p, err := FromPlatform(pl, g.levels)
		if err != nil {
			t.Fatal(err)
		}
		label := g.platform + "/" + string(rune('0'+g.levels))

		golden := Plan{
			Spec:     Spec{W: math.Float64frombits(g.wBits), Counts: g.counts, M: g.m},
			Overhead: math.Float64frombits(g.hBits),
		}
		got, err := Optimize(p)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		samePlan(t, label+" vs golden", got, golden)

		ev, err := NewEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := optimizeReference(ev)
		if err != nil {
			t.Fatalf("%s: reference: %v", label, err)
		}
		samePlan(t, label+" vs reference", got, ref)
	}
}

// TestPlannerWorkerDeterminism asserts the fan-out width never touches
// the returned plan: the screen and refine sets are pure functions of
// the configuration, every candidate's value is computed by the same
// deterministic leaf search on whichever worker claims it, and the
// reduction is an index-order scan.
func TestPlannerWorkerDeterminism(t *testing.T) {
	for _, name := range []string{"Hera", "Coastal"} {
		pl, err := platform.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := FromPlatform(pl, 3)
		if err != nil {
			t.Fatal(err)
		}
		var base Plan
		for i, workers := range []int{1, 2, 3, 8} {
			pln, err := NewPlanner(p)
			if err != nil {
				t.Fatal(err)
			}
			pln.SetWorkers(workers)
			got, err := pln.Plan()
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if st := pln.Stats(); st.Workers != workers {
				t.Fatalf("%s: stats.Workers = %d, want %d", name, st.Workers, workers)
			}
			if i == 0 {
				base = got
				continue
			}
			samePlan(t, name+" across worker counts", got, base)
		}
	}
}

// TestPlannerWarmReuse asserts a planner can be reused across Plan
// calls (the service's warm per-shard path) without drifting from a
// cold run.
func TestPlannerWarmReuse(t *testing.T) {
	pl, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromPlatform(pl, 3)
	if err != nil {
		t.Fatal(err)
	}
	pln, err := NewPlanner(p)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := pln.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		warm, err := pln.Plan()
		if err != nil {
			t.Fatal(err)
		}
		samePlan(t, "warm replan", warm, cold)
	}
}
