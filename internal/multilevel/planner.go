package multilevel

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"respat/internal/sched"
	"respat/internal/xmath"
)

// MaxBranch caps the per-level branching factor and the chunk count
// considered by the first-order seeding stage, mirroring
// analytic.MaxSplit: it is only reached in degenerate parameter
// regimes.
const MaxBranch = 4096

// maxEnumCandidates bounds the level-vector box the planner will
// enumerate for the pruned parallel search. Realistic platforms yield
// a few hundred candidates; when the first-order caps blow the box
// past this bound (degenerate near-zero-rate regimes) the planner
// falls back to the sequential nested convex search, which is
// logarithmic in the caps.
const maxEnumCandidates = 32768

// pruneSlack is the safety factor of the first-order pruning bound: a
// level-vector candidate is skipped when its W- and m-minimised
// first-order overhead 2·sqrt(oef·orw) exceeds pruneSlack times the
// seed vector's first-order overhead. The comparison is first-order
// against first-order, so the model's absolute error cancels and only
// its ranking error matters: the exact optimum is lost only if the
// first-order model misranks two level vectors by more than 5%, while
// on the Table 2 grid the first-order and exact argmins coincide
// outright (ranking error well under 1%). Parity with the unpruned
// brute-force search is asserted by TestPlannerGoldenParity.
const pruneSlack = 1.05

// refineMargin bounds the screening stage's m-misattribution: a
// survivor is screened with a single coarse W search at the
// incumbent's chunk count m*, and receives the full m search only when
// that screen lands within refineMargin of the best screen. The margin
// must dominate how much a candidate can gain by re-optimising m away
// from the incumbent's — the exact overhead is nearly flat in m around
// m* (well under 1% across the Table 2 grid) — plus the coarse
// search's own error (quadratically suppressed, see optimizeW).
const refineMargin = 0.05

// Plan is the outcome of optimising a multilevel pattern for a
// configuration.
type Plan struct {
	// Spec is the optimal pattern: W*, the per-level interval counts
	// n_1..n_L and the chunk count m*.
	Spec Spec
	// Overhead is the exact expected overhead E(P)/W - 1 at the
	// optimum.
	Overhead float64
}

// String renders the plan compactly.
func (p Plan) String() string {
	return fmt.Sprintf("multilevel: W*=%.6gs n*=%v m*=%d H*=%.4f", p.Spec.W, p.Spec.Counts, p.Spec.M, p.Overhead)
}

// SearchStats describes one planner run, so perf claims are observable
// without a profiler (cmd/respat logs them per cell).
type SearchStats struct {
	// Candidates is the number of level-vector candidates in the
	// enumerated search box (the first-order caps).
	Candidates int
	// Pruned is how many candidates the first-order lower bound
	// skipped without an exact evaluation.
	Pruned int
	// Screened is how many candidates were placed by a single coarse
	// exact W search at the incumbent's chunk count.
	Screened int
	// Evaluated is how many candidates ran the full exact m/W search
	// (the incumbent plus the screening survivors within refineMargin).
	Evaluated int
	// Leaves is the total number of exact (n-vector, m) leaves
	// golden-section-searched over W.
	Leaves int
	// Workers is the fan-out width the exact evaluations ran under.
	Workers int
	// Fallback reports that the box exceeded maxEnumCandidates and the
	// sequential nested convex search ran instead.
	Fallback bool
}

// wEval is one (level-vector, m) leaf: the W-optimised overhead.
type wEval struct {
	w, h   float64
	m      int
	leaves int
	err    error
}

// Planner is a reusable search context bound to one Params
// configuration: it owns a memoized Evaluator (see the Evaluator doc
// for what is cached) plus the enumeration scratch, so repeated Plan
// calls — the service's warm per-shard planners, the harness study —
// allocate almost nothing after the first. A Planner is not safe for
// concurrent use; the parallel fan-out inside Plan spawns its own
// per-worker evaluators.
type Planner struct {
	ev      *Evaluator
	workers int
	stats   SearchStats
	// pool holds one searchCtx per fan-out worker, kept warm across
	// rounds and Plan calls; pool[0] wraps the planner's own evaluator.
	// poolNext hands out slots during a round (reset before each one).
	pool     []*searchCtx
	poolNext atomic.Int64
	// scratch, reused across Plan calls
	branch  []int
	counts  []int
	seed    []int
	caps    []int
	surv    []int
	refine  []int
	screenH []float64
	results []wEval
}

// NewPlanner validates p once and returns a planner bound to it with
// the default fan-out width (GOMAXPROCS).
func NewPlanner(p Params) (*Planner, error) {
	ev, err := NewEvaluator(p)
	if err != nil {
		return nil, err
	}
	return PlannerFor(ev), nil
}

// PlannerFor wraps a caller-supplied evaluator (e.g. a service shard's
// warm one). The planner takes over the evaluator's serialisation
// contract: do not use ev concurrently with the planner.
func PlannerFor(ev *Evaluator) *Planner {
	L := len(ev.Params().Levels)
	pl := &Planner{
		ev:      ev,
		workers: runtime.GOMAXPROCS(0),
		branch:  make([]int, L-1),
		counts:  make([]int, L),
		seed:    make([]int, L-1),
		caps:    make([]int, L-1),
	}
	pl.pool = []*searchCtx{newSearchCtx(ev)}
	return pl
}

// ensurePool grows the context pool to n slots (slot 0 wraps the
// planner's evaluator; extra slots own fresh ones, since an Evaluator
// is not safe for concurrent use). Growth happens sequentially between
// fan-out rounds, so the handout inside a round is a plain atomic.
func (pl *Planner) ensurePool(n int) error {
	for len(pl.pool) < n {
		ev, err := NewEvaluator(pl.ev.Params())
		if err != nil {
			return err
		}
		pl.pool = append(pl.pool, newSearchCtx(ev))
	}
	return nil
}

// runRound fans the n cells out over the context pool: each worker
// claims one pooled context and threads it through the cells it runs.
// Every cell checks the request context first, so an abandoned plan
// (ctx cancelled) aborts within one candidate evaluation instead of
// finishing the round.
func (pl *Planner) runRound(ctx context.Context, n int, cell func(ctx *searchCtx, i int) error) error {
	workers := pl.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if err := pl.ensurePool(workers); err != nil {
		return err
	}
	pl.poolNext.Store(0)
	return sched.RunCellsCtx(n, pl.workers, func() (*searchCtx, error) {
		return pl.pool[pl.poolNext.Add(1)-1], nil
	}, func(sc *searchCtx, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return cell(sc, i)
	})
}

// SetWorkers bounds the parallel fan-out of exact candidate
// evaluations; 0 or 1 evaluates sequentially, the default is
// GOMAXPROCS. The returned Plan is bit-identical for any value (see
// Plan).
func (pl *Planner) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	pl.workers = n
}

// Stats returns the search statistics of the most recent Plan call.
func (pl *Planner) Stats() SearchStats { return pl.stats }

// Optimize finds the multilevel plan minimising the exact expected
// overhead over the pattern length W, the per-level branching factors
// k_1..k_{L-1} (n_l = k_l·n_{l+1}) and the chunk count m. It is
// NewPlanner + Plan; callers planning repeatedly for one configuration
// or wanting SearchStats should keep a Planner.
func Optimize(p Params) (Plan, error) {
	pl, err := NewPlanner(p)
	if err != nil {
		return Plan{}, err
	}
	return pl.Plan()
}

// OptimizeWithEvaluator is Optimize on a caller-supplied evaluator,
// for callers that keep a long-lived evaluator per configuration. The
// caller is responsible for serialising access to ev (an Evaluator is
// not safe for concurrent use).
func OptimizeWithEvaluator(ev *Evaluator) (Plan, error) {
	return PlannerFor(ev).Plan()
}

// FirstOrderPlan returns the Definition 1 first-order optimum — the
// same (level-vector, m, W) seed the exact search starts from, with W
// = sqrt(oef/orw) — without running any exact evaluation. Unlike the
// Plans of Optimize, the returned Overhead is the first-order
// prediction 2·sqrt(oef·orw), not the exact-model overhead. It is the
// graceful-degradation fallback of the planning service: O(L·log²)
// closed-form arithmetic, deterministic, allocation-light, never
// admission-gated.
func FirstOrderPlan(p Params) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	if p.Rates.Total() == 0 {
		return Plan{}, fmt.Errorf("multilevel: both error rates are zero; no finite optimal pattern")
	}
	L := p.L()
	seed := make([]int, L-1)
	counts := make([]int, L)
	m := firstOrderSeed(p, seed, counts)
	fillCounts(counts, seed)
	oef, orw := p.FirstOrder(counts, m)
	w := xmath.SqrtRatio(oef, orw)
	if math.IsInf(w, 1) || math.IsNaN(w) || w <= 0 {
		return Plan{}, fmt.Errorf("multilevel: no finite first-order optimum for n=%v m=%d", counts, m)
	}
	return Plan{Spec: UniformSpec(w, seed, m), Overhead: 2 * math.Sqrt(oef*orw)}, nil
}

// Plan runs the pruned parallel search:
//
//  1. a first-order stage minimises the oef·orw product of Definition
//     1 (cheap, no renewal recursion) to locate the search region and
//     caps the per-dimension box, exactly as the nested search did;
//  2. the seed vector is evaluated exactly (sequentially, on the
//     planner's own evaluator) to obtain the incumbent — its overhead,
//     its optimal chunk count m* and the screening reference;
//  3. every other level-vector candidate in the box is bounded by its
//     m-minimised first-order overhead 2·sqrt(oef·orw); candidates
//     whose bound exceeds pruneSlack × the seed's own first-order
//     overhead are pruned without touching the exact model;
//  4. the survivors fan out over sched.RunCellsCtx — one pooled warm
//     Evaluator per worker, each cell writing only its own slot — for
//     a screening pass: one coarse exact W search at the incumbent's
//     m*, enough to rank level vectors (the exact overhead is nearly
//     flat in m near m*);
//  5. survivors whose screen lands within refineMargin of the best
//     screen fan out again for the full m/W search — the same leaves
//     the nested convex search would have run — and a sequential
//     index-order scan with strict-less tie-breaking picks the winner.
//
// Every candidate's exact value is computed by the same deterministic
// golden-section leaf search regardless of which worker runs it, the
// screen and refine sets are pure functions of deterministic values,
// and the reduction order is fixed — so the returned Plan is
// bit-identical for any SetWorkers value. Bit-parity with the
// sequential nested convex search of the pre-pruning planner is
// asserted across the Table 2 grid by TestPlannerGoldenParity.
func (pl *Planner) Plan() (Plan, error) {
	return pl.PlanCtx(context.Background())
}

// PlanCtx is Plan under a cancellation context: when ctx is cancelled
// or expires the search aborts — within one candidate evaluation —
// and returns ctx's error, never a partial plan. Cancellation cannot
// change the bits of a successful result: a cancelled search returns
// only the error (there is a final ctx check before the plan is
// assembled), so every Plan that is returned ran the full
// deterministic reduction.
func (pl *Planner) PlanCtx(ctx context.Context) (Plan, error) {
	p := pl.ev.Params()
	pl.stats = SearchStats{Workers: pl.workers}
	if err := ctx.Err(); err != nil {
		return Plan{}, err
	}
	if p.Rates.Total() == 0 {
		return Plan{}, fmt.Errorf("multilevel: both error rates are zero; no finite optimal pattern")
	}
	seedM := firstOrderSeed(p, pl.seed, pl.counts)

	// Exact-stage caps around the first-order seed.
	box := 1
	for d := range pl.caps {
		pl.caps[d] = min(3*pl.seed[d]+4, MaxBranch)
		if box > maxEnumCandidates/pl.caps[d] {
			box = maxEnumCandidates + 1 // overflow-safe saturation
			break
		}
		box *= pl.caps[d]
	}
	maxM := min(3*seedM+4, MaxBranch)
	if p.Rates.Silent == 0 {
		// Without silent errors extra verifications only add cost (and
		// tie exactly when V = 0), so pin the chunk count.
		maxM = 1
	}
	if box > maxEnumCandidates {
		pl.stats.Fallback = true
		pl.stats.Candidates = box
		return optimizeNested(ctx, pl.ev, maxM, pl.caps, &pl.stats)
	}
	pl.stats.Candidates = box

	// Incumbent: the seed vector, evaluated exactly on the warm
	// evaluator before any pruning decision, so the screen/refine
	// thresholds are pure functions of the configuration (never of
	// scheduling).
	seedIdx := pl.candidateIndex(pl.seed)
	incumbent := pl.pool[0].evalCandidate(pl.seed, maxM)
	if incumbent.err != nil {
		return Plan{}, incumbent.err
	}
	pl.stats.Leaves += incumbent.leaves
	pl.stats.Evaluated++
	if math.IsInf(incumbent.h, 1) || math.IsNaN(incumbent.h) {
		// A diverging seed means the first-order model missed badly;
		// screening against it would be meaningless, so run the
		// exhaustive-by-convexity nested search instead.
		pl.stats.Fallback = true
		return optimizeNested(ctx, pl.ev, maxM, pl.caps, &pl.stats)
	}

	// Bound-and-prune pass (sequential, O(L·log m) per candidate).
	// First-order is compared against first-order, so the model's
	// absolute error cancels; only a >5% ranking error could prune the
	// exact optimum.
	seedBound := firstOrderBound(p, pl.seed, pl.counts, maxM)
	pl.surv = pl.surv[:0]
	for idx := 0; idx < box; idx++ {
		if idx == seedIdx {
			continue
		}
		pl.decode(idx, pl.branch)
		if firstOrderBound(p, pl.branch, pl.counts, maxM) > pruneSlack*seedBound {
			pl.stats.Pruned++
			continue
		}
		pl.surv = append(pl.surv, idx)
	}

	// Screening fan-out: place every survivor with one coarse W search
	// at the incumbent's m*. Screen failures park at +Inf (the
	// candidate simply never refines).
	surv := pl.surv
	pl.screenH = resize(pl.screenH, len(surv))
	screenH := pl.screenH
	pl.stats.Screened = len(surv)
	pl.stats.Leaves += len(surv)
	err := pl.runRound(ctx, len(surv), func(ctx *searchCtx, i int) error {
		branch := ctx.scratchBranch(len(pl.caps))
		pl.decode(surv[i], branch)
		screenH[i] = ctx.screenCandidate(branch, incumbent.m)
		return nil
	})
	if err != nil {
		return Plan{}, err
	}

	// Refine set: survivors within refineMargin of the best screen
	// (the incumbent's exact overhead is itself a screen value — a
	// candidate must at least approach it to earn the full m search).
	minScreen := incumbent.h
	for _, h := range screenH {
		if h < minScreen {
			minScreen = h
		}
	}
	pl.refine = pl.refine[:0]
	for i, idx := range surv {
		if screenH[i] <= minScreen*(1+refineMargin) {
			pl.refine = append(pl.refine, idx)
		}
	}

	// Refinement fan-out: the full m/W search, identical leaves to the
	// nested convex search.
	refine := pl.refine
	pl.results = resize(pl.results, len(refine))
	results := pl.results
	pl.stats.Evaluated += len(refine)
	err = pl.runRound(ctx, len(refine), func(ctx *searchCtx, i int) error {
		branch := ctx.scratchBranch(len(pl.caps))
		pl.decode(refine[i], branch)
		results[i] = ctx.evalCandidate(branch, maxM)
		return nil
	})
	if err != nil {
		return Plan{}, err
	}

	// Deterministic reduction: ascending candidate index (refine is
	// built in index order), strict less, so ties go to the
	// lexicographically-first candidate regardless of worker count.
	bestIdx := seedIdx
	best := incumbent
	for i, idx := range refine {
		e := results[i]
		pl.stats.Leaves += e.leaves
		if e.err != nil || math.IsNaN(e.h) {
			continue
		}
		if e.h < best.h || (e.h == best.h && idx < bestIdx) {
			best, bestIdx = e, idx
		}
	}
	if math.IsInf(best.h, 1) || math.IsNaN(best.h) {
		return Plan{}, fmt.Errorf("multilevel: optimisation diverged")
	}
	// Final cancellation check: a cancelled search may have parked
	// arbitrary leaves at +Inf, so its reduction must never be served
	// as if it were the full search's.
	if err := ctx.Err(); err != nil {
		return Plan{}, err
	}
	pl.decode(bestIdx, pl.branch)
	return Plan{Spec: UniformSpec(best.w, pl.branch, best.m), Overhead: best.h}, nil
}

// candidateIndex maps a branch vector inside the caps box to its
// enumeration index (mixed radix, dimension 0 slowest).
func (pl *Planner) candidateIndex(branch []int) int {
	idx := 0
	for d, k := range branch {
		idx = idx*pl.caps[d] + (k - 1)
	}
	return idx
}

// decode is the inverse of candidateIndex.
func (pl *Planner) decode(idx int, branch []int) {
	for d := len(pl.caps) - 1; d >= 0; d-- {
		branch[d] = idx%pl.caps[d] + 1
		idx /= pl.caps[d]
	}
}

// searchCtx is the per-worker state of the exact stage: a private
// evaluator (evaluators are not concurrency-safe), the per-candidate
// m-search memo and the counts scratch. Reusing the memo map across
// candidates (cleared, not reallocated) keeps the fan-out
// allocation-lean.
type searchCtx struct {
	ev     *Evaluator
	memo   map[int]wEval
	counts []int
	branch []int
}

func newSearchCtx(ev *Evaluator) *searchCtx {
	L := len(ev.Params().Levels)
	return &searchCtx{
		ev:     ev,
		memo:   make(map[int]wEval),
		counts: make([]int, L),
		branch: make([]int, L-1),
	}
}

func (sc *searchCtx) scratchBranch(n int) []int {
	if cap(sc.branch) < n {
		sc.branch = make([]int, n)
	}
	return sc.branch[:n]
}

// evalCandidate runs the capped convex integer search over m for one
// level-vector candidate, with a golden-section W search at every
// leaf. Leaves are memoized per candidate so the ternary probes and
// the final refinement scan never recompute a leaf.
func (sc *searchCtx) evalCandidate(branch []int, maxM int) wEval {
	fillCounts(sc.counts, branch)
	clear(sc.memo)
	at := func(m int) wEval {
		if e, ok := sc.memo[m]; ok {
			return e
		}
		e := optimizeW(sc.ev, sc.counts, m)
		e.m = m
		sc.memo[m] = e
		return e
	}
	m, _ := xmath.MinimizeConvexInt(func(m int) float64 {
		e := at(m)
		if e.err != nil {
			return math.Inf(1)
		}
		return e.h
	}, 1, maxM)
	e := at(m)
	e.leaves = len(sc.memo)
	return e
}

// screenCandidate places one level-vector candidate with a single
// coarse exact W search at a fixed chunk count (the incumbent's m*),
// returning its approximate overhead; failures park at +Inf so the
// candidate simply never earns the full search.
func (sc *searchCtx) screenCandidate(branch []int, m int) float64 {
	fillCounts(sc.counts, branch)
	e := screenW(sc.ev, sc.counts, m)
	if e.err != nil || math.IsNaN(e.h) {
		return math.Inf(1)
	}
	return e.h
}

// fillCounts assembles the count vector of a branch-factor vector into
// counts (len(branch)+1 slots): counts[L-1] = 1 and counts[l] =
// counts[l+1]·branch[l], the UniformSpec rule without the allocation.
func fillCounts(counts, branch []int) {
	counts[len(branch)] = 1
	for l := len(branch) - 1; l >= 0; l-- {
		counts[l] = counts[l+1] * branch[l]
	}
}

// firstOrderBound returns the m-minimised first-order overhead
// 2·sqrt(oef·orw) of a level-vector candidate — the W-optimal overhead
// of the Definition 1 model, a lower-bound proxy for the exact
// overhead used only to prune (with pruneSlack headroom), never to
// rank survivors.
func firstOrderBound(p Params, branch, counts []int, maxM int) float64 {
	fillCounts(counts, branch)
	_, prod := xmath.MinimizeConvexInt(func(m int) float64 {
		oef, orw := p.FirstOrder(counts, m)
		return oef * orw
	}, 1, maxM)
	return 2 * math.Sqrt(prod)
}

// firstOrderSeed minimises the first-order product oef·orw (whose
// minimiser is W-free, exactly as in Theorems 2-4) over the branching
// factors and the chunk count, writing the branch minimiser into seed
// and returning the chunk minimiser. Evaluations are O(L) on the
// caller's counts scratch — no allocation — so the full MaxBranch
// range is affordable here. The probe sequence is identical to the
// pre-overhaul seeding stage, so the caps box (and therefore the
// search outcome) is unchanged.
func firstOrderSeed(p Params, seed, counts []int) (m int) {
	product := func(m int) float64 {
		fillCounts(counts, seed)
		oef, orw := p.FirstOrder(counts, m)
		return oef * orw
	}
	maxM := MaxBranch
	if p.Rates.Silent == 0 {
		maxM = 1
	}
	bestM := func() (int, float64) {
		return xmath.MinimizeConvexInt(product, 1, maxM)
	}
	var descend func(d int) (int, float64)
	descend = func(d int) (int, float64) {
		if d == len(seed) {
			return bestM()
		}
		k, _ := xmath.MinimizeConvexInt(func(k int) float64 {
			seed[d] = k
			_, f := descend(d + 1)
			return f
		}, 1, MaxBranch)
		seed[d] = k
		return descend(d + 1)
	}
	m, _ = descend(0)
	return m
}

// optimizeW minimises the exact expected overhead at fixed (counts, m)
// over W by golden-section search, bracketed two orders of magnitude
// around the first-order optimum sqrt(oef/orw) — the per-leaf
// first-order seed. Probes run through the evaluator's prefetched
// chunk layout and boundary table, so each one is pure arithmetic.
func optimizeW(ev *Evaluator, counts []int, m int) wEval {
	p := ev.Params()
	oef, orw := p.FirstOrder(counts, m)
	guess := xmath.SqrtRatio(oef, orw)
	if math.IsInf(guess, 1) || math.IsNaN(guess) || guess <= 0 {
		return wEval{err: fmt.Errorf("multilevel: no finite period guess for n=%v m=%d", counts, m)}
	}
	cl, err := ev.layout(m)
	if err != nil {
		return wEval{err: err}
	}
	bt := ev.table(counts)
	h := func(w float64) float64 {
		return ev.evalSpec(cl, bt, w)/w - 1
	}
	w, hMin := xmath.MinimizeGolden(h, guess/100, guess*100, 1e-10)
	return wEval{w: w, h: hMin}
}

// screenW is optimizeW with the golden tolerance relaxed to 1e-4 of
// the first-order guess (~29 probes instead of ~80): screening only
// ranks level vectors, and near the minimum the overhead error is
// quadratic in the W error, far below refineMargin. Refined candidates
// rerun through optimizeW at full precision, so screening never
// touches the returned Plan's bits.
func screenW(ev *Evaluator, counts []int, m int) wEval {
	p := ev.Params()
	oef, orw := p.FirstOrder(counts, m)
	guess := xmath.SqrtRatio(oef, orw)
	if math.IsInf(guess, 1) || math.IsNaN(guess) || guess <= 0 {
		return wEval{err: fmt.Errorf("multilevel: no finite period guess for n=%v m=%d", counts, m)}
	}
	cl, err := ev.layout(m)
	if err != nil {
		return wEval{err: err}
	}
	bt := ev.table(counts)
	h := func(w float64) float64 {
		return ev.evalSpec(cl, bt, w)/w - 1
	}
	w, hMin := xmath.MinimizeGolden(h, guess/100, guess*100, guess*1e-4)
	return wEval{w: w, h: hMin, m: m}
}

// resize returns s with length n, reallocating only on growth.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
