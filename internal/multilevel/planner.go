package multilevel

import (
	"fmt"
	"math"

	"respat/internal/xmath"
)

// MaxBranch caps the per-level branching factor and the chunk count
// considered by the first-order seeding stage, mirroring
// analytic.MaxSplit: it is only reached in degenerate parameter
// regimes.
const MaxBranch = 4096

// Plan is the outcome of optimising a multilevel pattern for a
// configuration.
type Plan struct {
	// Spec is the optimal pattern: W*, the per-level interval counts
	// n_1..n_L and the chunk count m*.
	Spec Spec
	// Overhead is the exact expected overhead E(P)/W - 1 at the
	// optimum.
	Overhead float64
}

// String renders the plan compactly.
func (p Plan) String() string {
	return fmt.Sprintf("multilevel: W*=%.6gs n*=%v m*=%d H*=%.4f", p.Spec.W, p.Spec.Counts, p.Spec.M, p.Overhead)
}

// wEval is one (branch, m) leaf: the W-optimised overhead.
type wEval struct {
	w, h float64
	err  error
}

// Optimize finds the multilevel plan minimising the exact expected
// overhead over the pattern length W, the per-level branching factors
// k_1..k_{L-1} (n_l = k_l·n_{l+1}) and the chunk count m. A
// first-order stage minimises the oef·orw product of Definition 1
// (cheap, no renewal recursion) to locate the search region; the exact
// stage then runs nested convex integer searches capped around that
// seed — the discipline of optimize.Exact — with a golden-section
// search over W at every leaf. All leaf evaluations share one
// Evaluator, so repeated probes at a layout only rescale W.
func Optimize(p Params) (Plan, error) {
	ev, err := NewEvaluator(p)
	if err != nil {
		return Plan{}, err
	}
	return OptimizeWithEvaluator(ev)
}

// OptimizeWithEvaluator is Optimize on a caller-supplied evaluator,
// for callers that keep a long-lived evaluator per configuration (e.g.
// the planning service's shards). The caller is responsible for
// serialising access to ev (an Evaluator is not safe for concurrent
// use).
func OptimizeWithEvaluator(ev *Evaluator) (Plan, error) {
	p := ev.Params()
	if p.Rates.Total() == 0 {
		return Plan{}, fmt.Errorf("multilevel: both error rates are zero; no finite optimal pattern")
	}
	L := len(p.Levels)
	seedBranch, seedM := firstOrderSeed(p)

	// Exact-stage caps around the first-order seed.
	caps := make([]int, L-1)
	for d := range caps {
		caps[d] = min(3*seedBranch[d]+4, MaxBranch)
	}
	maxM := min(3*seedM+4, MaxBranch)
	if p.Rates.Silent == 0 {
		// Without silent errors extra verifications only add cost (and
		// tie exactly when V = 0), so pin the chunk count.
		maxM = 1
	}

	// Memo key: up to MaxLevels-1 branching factors plus m.
	memo := make(map[[MaxLevels]int]wEval)
	branch := make([]int, L-1)
	at := func(m int) wEval {
		var key [MaxLevels]int
		copy(key[:], branch)
		key[MaxLevels-1] = m
		if e, ok := memo[key]; ok {
			return e
		}
		e := optimizeW(ev, UniformSpec(1, branch, m).Counts, m)
		memo[key] = e
		return e
	}
	bestM := func() (int, wEval) {
		m, _ := xmath.MinimizeConvexInt(func(m int) float64 {
			e := at(m)
			if e.err != nil {
				return math.Inf(1)
			}
			return e.h
		}, 1, maxM)
		return m, at(m)
	}
	// descend searches branching dimension d, returning the best leaf
	// under the factors already fixed in branch[0..d-1].
	var descend func(d int) (int, wEval)
	descend = func(d int) (int, wEval) {
		if d == len(branch) {
			return bestM()
		}
		k, _ := xmath.MinimizeConvexInt(func(k int) float64 {
			branch[d] = k
			_, e := descend(d + 1)
			if e.err != nil {
				return math.Inf(1)
			}
			return e.h
		}, 1, caps[d])
		branch[d] = k
		return descend(d + 1)
	}
	m, best := descend(0)
	if best.err != nil {
		return Plan{}, best.err
	}
	if math.IsInf(best.h, 1) || math.IsNaN(best.h) {
		return Plan{}, fmt.Errorf("multilevel: optimisation diverged")
	}
	return Plan{Spec: UniformSpec(best.w, branch, m), Overhead: best.h}, nil
}

// firstOrderSeed minimises the first-order product oef·orw (whose
// minimiser is W-free, exactly as in Theorems 2-4) over the branching
// factors and the chunk count. Evaluations are O(L), so the full
// MaxBranch range is affordable here.
func firstOrderSeed(p Params) (branch []int, m int) {
	L := len(p.Levels)
	branch = make([]int, L-1)
	product := func(m int) float64 {
		counts := UniformSpec(1, branch, m).Counts
		oef, orw := p.FirstOrder(counts, m)
		return oef * orw
	}
	maxM := MaxBranch
	if p.Rates.Silent == 0 {
		maxM = 1
	}
	bestM := func() (int, float64) {
		return xmath.MinimizeConvexInt(product, 1, maxM)
	}
	var descend func(d int) (int, float64)
	descend = func(d int) (int, float64) {
		if d == len(branch) {
			return bestM()
		}
		k, _ := xmath.MinimizeConvexInt(func(k int) float64 {
			branch[d] = k
			_, f := descend(d + 1)
			return f
		}, 1, MaxBranch)
		branch[d] = k
		return descend(d + 1)
	}
	m, _ = descend(0)
	return branch, m
}

// optimizeW minimises the exact expected overhead at fixed (counts, m)
// over W by golden-section search, bracketed two orders of magnitude
// around the first-order optimum sqrt(oef/orw).
func optimizeW(ev *Evaluator, counts []int, m int) wEval {
	p := ev.Params()
	oef, orw := p.FirstOrder(counts, m)
	guess := xmath.SqrtRatio(oef, orw)
	if math.IsInf(guess, 1) || math.IsNaN(guess) || guess <= 0 {
		return wEval{err: fmt.Errorf("multilevel: no finite period guess for n=%v m=%d", counts, m)}
	}
	spec := Spec{Counts: counts, M: m}
	var evalErr error
	h := func(w float64) float64 {
		spec.W = w
		h, err := ev.Overhead(spec)
		if err != nil {
			evalErr = err
			return math.Inf(1)
		}
		return h
	}
	w, hMin := xmath.MinimizeGolden(h, guess/100, guess*100, 1e-10)
	if evalErr != nil {
		return wEval{err: evalErr}
	}
	return wEval{w: w, h: hMin}
}
