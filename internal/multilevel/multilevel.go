// Package multilevel models resilience patterns with a hierarchy of
// checkpoint levels combined with the paper's silent-error
// verifications — the composition the Section 4.1 remark and the
// Section 7.1 related-work discussion contrast the single-level
// patterns against. A pattern of work W is split into n_1 level-1
// intervals; every level-l boundary writes checkpoints at levels 1..l
// (cheapest first), each level-1 interval carries m chunks separated
// by partial verifications and closed by a guaranteed verification, so
// no corrupted state ever commits. Fail-stop errors carry a level:
// with probability q_l an error destroys the state below level l and
// forces a recovery R_l from the most recent level-≥l checkpoint plus
// a replay of everything since; detected silent errors roll back to
// the nearest level-1 checkpoint.
//
// At L = 1 the model degenerates to the paper's single-level pattern
// family (package analytic's exact evaluator); at L = 2 with a zero
// silent-error rate it degenerates to the classic two-level fail-stop
// protocol of package twolevel. Both reductions are asserted by the
// equivalence tests in this package.
package multilevel

import (
	"fmt"
	"math"

	"respat/internal/core"
	"respat/internal/platform"
)

// MaxLevels caps the checkpoint hierarchy depth. Four levels cover the
// realistic storage stacks (memory / node-local / burst-buffer /
// parallel file system) and give the service layer a fixed-width
// canonical cache key.
const MaxLevels = 4

// Level describes one checkpoint level of the hierarchy.
type Level struct {
	// Ckpt is C_l, the cost of writing a level-l checkpoint (s).
	Ckpt float64
	// Rec is R_l, the cost of recovering from the level-l checkpoint
	// after a level-l fail-stop error, including the re-establishment
	// of the levels below it (s).
	Rec float64
	// Share is q_l, the probability that a fail-stop error is of level
	// l — it destroys the state of levels < l and is recoverable from
	// level l. Shares sum to 1 across the hierarchy.
	Share float64
}

// Params describes a multilevel-pattern platform: the checkpoint
// hierarchy, the verification costs of the paper's silent-error
// protocol, and the two error rates.
type Params struct {
	// Levels is the hierarchy, cheapest (level 1) first; 1 ≤ len ≤
	// MaxLevels.
	Levels []Level
	// GuarVer is V*, the guaranteed-verification cost closing every
	// level-1 interval (s).
	GuarVer float64
	// PartVer is V, the partial-verification cost at interior chunk
	// boundaries (s).
	PartVer float64
	// Recall is r, the partial-verification recall, in (0, 1].
	Recall float64
	// Rates are the fail-stop and silent error rates (/s).
	Rates core.Rates
	// InteriorGuaranteed replaces the interior partial verifications
	// with guaranteed ones (the *V*-style families): interior cost
	// GuarVer, recall 1.
	InteriorGuaranteed bool
}

// L returns the number of checkpoint levels.
func (p Params) L() int { return len(p.Levels) }

// costOK reports whether v is a finite non-negative cost. Keeping the
// check boolean (errors are built only on failure) keeps Validate
// allocation-free on the success path — it runs on every service
// cache hit, which carries a 0 allocs/op contract.
func costOK(v float64) bool {
	return v >= 0 && !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if len(p.Levels) < 1 || len(p.Levels) > MaxLevels {
		return fmt.Errorf("multilevel: %d levels, need 1..%d", len(p.Levels), MaxLevels)
	}
	var shares float64
	for i, l := range p.Levels {
		if !costOK(l.Ckpt) {
			return fmt.Errorf("multilevel: C_%d = %v, need finite >= 0", i+1, l.Ckpt)
		}
		if !costOK(l.Rec) {
			return fmt.Errorf("multilevel: R_%d = %v, need finite >= 0", i+1, l.Rec)
		}
		if l.Share < 0 || l.Share > 1 || math.IsNaN(l.Share) {
			return fmt.Errorf("multilevel: share q_%d = %v, need in [0,1]", i+1, l.Share)
		}
		shares += l.Share
	}
	if math.Abs(shares-1) > 1e-9 {
		return fmt.Errorf("multilevel: level shares sum to %v, need 1", shares)
	}
	if !costOK(p.GuarVer) {
		return fmt.Errorf("multilevel: V* = %v, need finite >= 0", p.GuarVer)
	}
	if !costOK(p.PartVer) {
		return fmt.Errorf("multilevel: V = %v, need finite >= 0", p.PartVer)
	}
	if p.Recall <= 0 || p.Recall > 1 || math.IsNaN(p.Recall) {
		return fmt.Errorf("multilevel: recall r = %v, need 0 < r <= 1", p.Recall)
	}
	return p.Rates.Validate()
}

// interiorVerif returns the cost and recall of one interior
// verification under the family flag.
func (p Params) interiorVerif() (cost, recall float64) {
	if p.InteriorGuaranteed {
		return p.GuarVer, 1
	}
	return p.PartVer, p.Recall
}

// meanRec returns Σ q_l·R_l, the expected fail-stop recovery cost.
func (p Params) meanRec() float64 {
	var r float64
	for _, l := range p.Levels {
		r += l.Share * l.Rec
	}
	return r
}

// Spec is one concrete multilevel pattern: work length, per-level
// interval counts and the chunk count.
type Spec struct {
	// W is the pattern work length (s).
	W float64
	// Counts holds n_1..n_L, the number of level-l checkpoint intervals
	// per pattern. Counts are nested: n_L = 1 (the pattern is the
	// level-L interval) and each n_l is a multiple of n_{l+1}, so every
	// level-(l+1) interval splits into n_l/n_{l+1} equal level-l
	// intervals.
	Counts []int
	// M is the number of chunks per level-1 interval, separated by
	// interior verifications and sized by the Theorem 3 fractions.
	M int
}

// UniformSpec assembles a Spec from branching factors: branch[l-1] is
// the number of level-l intervals inside one level-(l+1) interval, for
// l = 1..L-1 (the pattern itself is the single level-L interval).
func UniformSpec(w float64, branch []int, m int) Spec {
	counts := make([]int, len(branch)+1)
	counts[len(branch)] = 1
	for l := len(branch) - 1; l >= 0; l-- {
		counts[l] = counts[l+1] * branch[l]
	}
	return Spec{W: w, Counts: counts, M: m}
}

// Validate checks the spec against a hierarchy depth of levels.
func (s Spec) Validate(levels int) error {
	if s.W <= 0 || math.IsNaN(s.W) || math.IsInf(s.W, 0) {
		return fmt.Errorf("multilevel: W = %v, need finite > 0", s.W)
	}
	if len(s.Counts) != levels {
		return fmt.Errorf("multilevel: %d counts for %d levels", len(s.Counts), levels)
	}
	if s.Counts[levels-1] != 1 {
		return fmt.Errorf("multilevel: n_%d = %d, the pattern is one level-%d interval", levels, s.Counts[levels-1], levels)
	}
	for l := 0; l < levels; l++ {
		if s.Counts[l] < 1 {
			return fmt.Errorf("multilevel: n_%d = %d, need >= 1", l+1, s.Counts[l])
		}
		if l+1 < levels && s.Counts[l]%s.Counts[l+1] != 0 {
			return fmt.Errorf("multilevel: n_%d = %d not a multiple of n_%d = %d",
				l+1, s.Counts[l], l+2, s.Counts[l+1])
		}
	}
	if s.M < 1 {
		return fmt.Errorf("multilevel: m = %d, need >= 1", s.M)
	}
	return nil
}

// String renders the spec compactly, e.g. "ML(W=3600, n=[6 2 1], m=3)".
func (s Spec) String() string {
	return fmt.Sprintf("ML(W=%.6g, n=%v, m=%d)", s.W, s.Counts, s.M)
}

// strides returns, per level, n_1/n_l: the number of level-1 intervals
// between consecutive level-l boundaries.
func (s Spec) strides() []int {
	out := make([]int, len(s.Counts))
	for l := range s.Counts {
		out[l] = s.Counts[0] / s.Counts[l]
	}
	return out
}

// boundaryLevel returns the highest checkpoint level written at the
// boundary closing level-1 interval t (0-based), given the per-level
// strides: the largest l whose stride divides t+1.
func boundaryLevel(strides []int, t int) int {
	level := 1
	for l := 1; l < len(strides); l++ {
		if (t+1)%strides[l] == 0 {
			level = l + 1
		}
	}
	return level
}

// chunkRow returns the Theorem 3 chunk fractions of one level-1
// interval: first and last 1/((m-2)r+2), interior r/((m-2)r+2); equal
// chunks at r = 1, the whole interval at m = 1.
func chunkRow(m int, recall float64) []float64 {
	if m == 1 {
		return []float64{1}
	}
	den := float64(m-2)*recall + 2
	row := make([]float64, m)
	for j := range row {
		row[j] = recall / den
	}
	row[0] = 1 / den
	row[m-1] = 1 / den
	return row
}

// ErrorFreeTime returns the wall-clock of one error-free pattern
// traversal: W plus all verification and checkpoint costs.
func (p Params) ErrorFreeTime(s Spec) float64 {
	v, _ := p.interiorVerif()
	t := s.W
	n1 := s.Counts[0]
	t += float64(n1) * (float64(s.M-1)*v + p.GuarVer)
	for l, lev := range p.Levels {
		t += float64(s.Counts[l]) * lev.Ckpt
	}
	return t
}

// FirstOrder returns the first-order overhead decomposition of the
// spec's layout: the error-free overhead oef per pattern and the
// re-executed-work fraction orw, generalising the paper's Definition 1
// to L levels (a level-l error loses on average half a level-l
// interval, W/(2·n_l)). The first-order optimal period is
// W* ≈ sqrt(oef/orw); the planner uses it to bracket its search.
func (p Params) FirstOrder(counts []int, m int) (oef, orw float64) {
	v, recall := p.interiorVerif()
	n1 := float64(counts[0])
	oef = n1 * (float64(m-1)*v + p.GuarVer)
	for l, lev := range p.Levels {
		oef += float64(counts[l]) * lev.Ckpt
	}
	fstar := 1.0
	if m > 1 {
		fstar = (1 + (2-recall)/(float64(m-2)*recall+2)) / 2
	}
	orw = fstar * p.Rates.Silent / n1
	for l, lev := range p.Levels {
		orw += p.Rates.FailStop * lev.Share / (2 * float64(counts[l]))
	}
	return oef, orw
}

// FromPlatform derives a multilevel configuration with the given
// hierarchy depth from a Table 2 platform, extending the paper's
// Section 6.1 derivation rules:
//
//   - the cheapest level is the in-memory checkpoint (CM, RM), the most
//     expensive the disk checkpoint (CD, RD); interior levels
//     interpolate geometrically (e.g. a node-local SSD tier);
//   - recovering at level l re-establishes every level below it, so
//     R_l is the cumulative sum of the per-level restore costs;
//   - fail-stop levels follow a Di et al.-style locality split: half of
//     the errors that reach level l are contained there, q_l ∝ 2^{-l},
//     with the remainder folded into the top level;
//   - verification costs and rates carry over unchanged.
//
// With levels = 1 the single level is the disk checkpoint and every
// error (including a detected silent one) recovers from disk.
func FromPlatform(pl platform.Platform, levels int) (Params, error) {
	if levels < 1 || levels > MaxLevels {
		return Params{}, fmt.Errorf("multilevel: %d levels, need 1..%d", levels, MaxLevels)
	}
	if err := pl.Validate(); err != nil {
		return Params{}, err
	}
	c := pl.Costs
	out := Params{
		GuarVer: c.GuarVer,
		PartVer: c.PartVer,
		Recall:  c.Recall,
		Rates:   pl.Rates,
	}
	out.Levels = make([]Level, levels)
	var cumRec float64
	for l := 0; l < levels; l++ {
		// Geometric interpolation between (CM, RM) and (CD, RD);
		// levels = 1 pins the single level to the disk figures.
		frac := 1.0
		if levels > 1 {
			frac = float64(l) / float64(levels-1)
		}
		rec := interp(c.MemRec, c.DiskRec, frac)
		cumRec += rec
		out.Levels[l] = Level{Ckpt: interp(c.MemCkpt, c.DiskCkpt, frac), Rec: cumRec}
	}
	// Locality split q_l ∝ 2^{-l}, remainder to the top level.
	rest := 1.0
	for l := 0; l < levels-1; l++ {
		out.Levels[l].Share = rest / 2
		rest /= 2
	}
	out.Levels[levels-1].Share = rest
	return out, nil
}

// Layout is the executable flattening of a spec under a parameter set,
// shared by the Monte-Carlo executor (internal/sim) and the runtime:
// concrete chunk durations, the interior-verification contract and the
// per-level boundary strides.
type Layout struct {
	Spec Spec
	// Chunks holds the m chunk durations of one level-1 interval
	// (Theorem 3 fractions scaled by W/n_1).
	Chunks []float64
	// InteriorCost and InteriorRecall describe one interior
	// verification (V with recall r, or V* with recall 1 for the
	// guaranteed-interior family).
	InteriorCost   float64
	InteriorRecall float64
	// Strides holds n_1/n_l per level: the number of level-1 intervals
	// between consecutive level-l boundaries.
	Strides []int
}

// Layout validates s against p and flattens it.
func (p Params) Layout(s Spec) (Layout, error) {
	if err := p.Validate(); err != nil {
		return Layout{}, err
	}
	if err := s.Validate(len(p.Levels)); err != nil {
		return Layout{}, err
	}
	cost, recall := p.interiorVerif()
	w1 := s.W / float64(s.Counts[0])
	row := chunkRow(s.M, recall)
	chunks := make([]float64, s.M)
	for j, f := range row {
		chunks[j] = f * w1
	}
	return Layout{
		Spec:           s,
		Chunks:         chunks,
		InteriorCost:   cost,
		InteriorRecall: recall,
		Strides:        s.strides(),
	}, nil
}

// BoundaryLevel returns the highest checkpoint level written at the
// boundary closing level-1 interval t (0-based, 1-based level).
func (l Layout) BoundaryLevel(t int) int { return boundaryLevel(l.Strides, t) }

// RollbackTo returns the level-1 interval index execution resumes from
// after a level-`level` fail-stop error during interval t: the most
// recent level-≥level boundary.
func (l Layout) RollbackTo(level, t int) int {
	stride := l.Strides[level-1]
	return t - t%stride
}

// PickLevel maps one uniform draw u in [0,1) to the 1-based level of a
// fail-stop error according to the level shares.
func (p Params) PickLevel(u float64) int {
	var cum float64
	for l, lev := range p.Levels {
		cum += lev.Share
		if u < cum {
			return l + 1
		}
	}
	return len(p.Levels) // guard against share rounding
}

// interp interpolates between the memory and disk cost endpoints:
// geometrically when both are positive (cost ratios across storage
// tiers are multiplicative), linearly when an endpoint is zero.
func interp(mem, disk, frac float64) float64 {
	if mem <= 0 || disk <= 0 {
		return mem + (disk-mem)*frac
	}
	return mem * math.Pow(disk/mem, frac)
}
