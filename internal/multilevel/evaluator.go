package multilevel

import (
	"fmt"
	"math"

	"respat/internal/analytic"
	"respat/internal/xmath"
)

// maxCachedLayouts bounds the two per-evaluator memo maps (chunk
// layouts keyed by m, boundary tables keyed by the count vector). A
// planner run probes a few hundred distinct keys at most; the cap only
// matters for very long-lived evaluators (the service shards), which
// simply start over when an adversarial request stream would otherwise
// grow the maps without bound.
const maxCachedLayouts = 4096

// Evaluator computes exact expected execution times for one validated
// Params configuration via a renewal recursion that conditions on
// which level a fail-stop error destroys. It generalises both exact
// evaluators already in the repo: at L = 1 it reduces to package
// analytic's renewal equations (every error recovers from the single
// level), at L = 2 with λs = 0 to package twolevel. It is also the
// planner's memoized probe context: every W-independent invariant of a
// spec is derived once and cached —
//
//   - per-m chunk-layout invariants (the Theorem 3 fractions and the
//     interior-verification contract), as in analytic.Evaluator;
//   - per-(n_1..n_L) boundary tables (which checkpoint levels close
//     each level-1 interval and which replay sums reset there), so the
//     renewal recursion runs without a single integer division;
//   - the per-level cost/share vectors, hoisted out of Params.
//
// A planner probing many W values at a fixed (counts, m) layout
// therefore pays O(1) transcendental work and zero allocations per
// probe, and re-probing a layout costs two map hits.
//
// An Evaluator is not safe for concurrent use (the caches and the
// per-level replay scratch are mutated); give each goroutine its own.
type Evaluator struct {
	p       Params
	meanRec float64
	// Hoisted per-level constants: ckpts[l] = C_{l+1}, shares[l] =
	// q_{l+1}; rec1 = R_1. Values are copied verbatim from p.Levels, so
	// arithmetic against them is bit-identical to indexing the structs.
	ckpts  [MaxLevels]float64
	shares [MaxLevels]float64
	rec1   float64
	// back[l] accumulates Σ E_k since the last level-(l+1) boundary,
	// the replay a level-(l+1) error forces; reused across evaluations
	// so a planner probe allocates nothing.
	back    [MaxLevels]float64
	layouts map[int]*chunkLayout
	tables  map[[MaxLevels]int]*boundaryTable
}

// chunkLayout caches the W-independent Theorem 3 invariants of one
// m-chunk level-1 interval.
type chunkLayout struct {
	m                 int
	edgeFrac, intFrac float64
	recall            float64
	interiorCost      float64
}

// boundaryTable caches the W- and m-independent boundary structure of
// one level-count vector n_1..n_L: per level-1 interval t, the number
// of checkpoint levels written at the boundary closing it and a
// bitmask of the replay sums that reset there. Both are pure functions
// of the counts, precomputed so the renewal recursion's inner loop is
// free of modulo arithmetic (the old per-t boundaryLevel walk was ~20%
// of planner CPU).
type boundaryTable struct {
	n1     int
	bLevel []uint8 // boundaryLevel(strides, t): # of levels checkpointed after t
	reset  []uint8 // bit l set ⇒ back[l] resets after interval t
}

// NewEvaluator validates p once and returns an evaluator bound to it.
func NewEvaluator(p Params) (*Evaluator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{p: p, meanRec: p.meanRec(), rec1: p.Levels[0].Rec}
	for l, lev := range p.Levels {
		e.ckpts[l] = lev.Ckpt
		e.shares[l] = lev.Share
	}
	return e, nil
}

// Params returns the bound configuration.
func (e *Evaluator) Params() Params { return e.p }

// layout returns the cached chunk invariants for m chunks.
func (e *Evaluator) layout(m int) (*chunkLayout, error) {
	if m < 1 {
		return nil, fmt.Errorf("multilevel: m = %d, need >= 1", m)
	}
	if cl, ok := e.layouts[m]; ok {
		return cl, nil
	}
	cost, recall := e.p.interiorVerif()
	cl := &chunkLayout{m: m, recall: recall, interiorCost: cost, edgeFrac: 1}
	if m > 1 {
		den := float64(m-2)*recall + 2
		cl.edgeFrac = 1 / den
		cl.intFrac = recall / den
	}
	if e.layouts == nil || len(e.layouts) >= maxCachedLayouts {
		e.layouts = make(map[int]*chunkLayout)
	}
	e.layouts[m] = cl
	return cl, nil
}

// table returns the cached boundary table for a validated count
// vector.
func (e *Evaluator) table(counts []int) *boundaryTable {
	var key [MaxLevels]int
	copy(key[:], counts)
	if bt, ok := e.tables[key]; ok {
		return bt
	}
	n1 := counts[0]
	L := len(counts)
	bt := &boundaryTable{
		n1:     n1,
		bLevel: make([]uint8, n1),
		reset:  make([]uint8, n1),
	}
	for t := 0; t < n1; t++ {
		level := 1
		var mask uint8
		for l := 1; l < L; l++ {
			stride := n1 / counts[l]
			if (t+1)%stride == 0 {
				level = l + 1
				mask |= 1 << uint(l)
			}
		}
		bt.bLevel[t] = uint8(level)
		bt.reset[t] = mask
	}
	if e.tables == nil || len(e.tables) >= maxCachedLayouts {
		e.tables = make(map[[MaxLevels]int]*boundaryTable)
	}
	e.tables[key] = bt
	return bt
}

// attempt holds the per-attempt invariants of one level-1 interval:
// expected first-attempt spending (with the level-conditioned recovery
// folded in but the replay factored out), the total fail-stop
// interruption probability, the silent-detection probability and the
// zero-error success probability Π.
type attempt struct {
	s0   float64 // expected spending per attempt, replay excluded
	pfq  float64 // P(attempt interrupted by a fail-stop)
	sdp  float64 // P(attempt ends in a detected silent error)
	pi   float64 // P(attempt completes error-free)
	work float64 // w1, the interval work
}

// intervalAttempt computes the attempt invariants of one level-1
// interval of work w1 with the cached m-chunk layout. The inner loop
// is the Proposition 3 chunk walk of analytic.Evaluator: the Theorem 3
// row has at most two distinct chunk sizes, so the transcendental work
// is O(1) and the remaining per-chunk recurrences are plain
// arithmetic.
func (e *Evaluator) intervalAttempt(cl *chunkLayout, w1 float64) attempt {
	r := e.p.Rates
	a := attempt{work: w1, pi: math.Exp(-(r.FailStop + r.Silent) * w1)}

	wEdge := cl.edgeFrac * w1
	pfE := probAtLeastOne(r.FailStop, wEdge)
	psE := probAtLeastOne(r.Silent, wEdge)
	lostE := analytic.ExpectedLost(r.FailStop, wEdge)
	var wInt, pfI, psI, lostI float64
	if cl.m > 2 {
		wInt = cl.intFrac * w1
		pfI = probAtLeastOne(r.FailStop, wInt)
		psI = probAtLeastOne(r.Silent, wInt)
		lostI = analytic.ExpectedLost(r.FailStop, wInt)
	}

	var s0 xmath.Accumulator
	prodPf := 1.0 // Π_{k<j}(1 - p^f_k)
	prodPs := 1.0 // Π_{k<j}(1 - p^s_k)
	g := 0.0      // probability of an earlier silent error missed so far
	for j := 0; j < cl.m; j++ {
		wj, pf, ps, lost := wInt, pfI, psI, lostI
		if j == 0 || j == cl.m-1 {
			wj, pf, ps, lost = wEdge, pfE, psE, lostE
		}
		q := prodPf * (prodPs + g)
		verif := cl.interiorCost
		if j == cl.m-1 {
			verif = e.p.GuarVer
		}
		if pf > 0 {
			// A fail-stop of level l costs R_l on top of the lost time;
			// the level split is independent of when the error strikes,
			// so the expectation Σ q_l·R_l folds in here and the
			// level-conditioned replay is added by the caller via pfq.
			s0.Add(q * pf * (lost + e.meanRec))
			a.pfq += q * pf
		}
		s0.Add(q * (1 - pf) * (wj + verif))
		g = (g + prodPs*ps) * (1 - cl.recall)
		prodPs *= 1 - ps
		prodPf *= 1 - pf
	}
	a.s0 = s0.Value()
	// Every attempt ends in exactly one of: success, fail-stop, or a
	// detected silent error (the closing guaranteed verification makes
	// detection certain).
	a.sdp = 1 - a.pi - a.pfq
	if a.sdp < 0 {
		a.sdp = 0
	}
	return a
}

// evalSpec is the planner-facing fast path of ExpectedTime: the
// renewal recursion over a prefetched chunk layout and boundary table,
// for pattern length w. It performs the floating-point operations of
// the recursion in exactly the order the pre-table implementation did,
// so results are bit-identical; the tables only replace the per-t
// modulo walks with byte lookups.
func (e *Evaluator) evalSpec(cl *chunkLayout, bt *boundaryTable, w float64) float64 {
	a := e.intervalAttempt(cl, w/float64(bt.n1))
	if a.pi <= 0 {
		return math.Inf(1)
	}
	L := len(e.p.Levels)
	back := &e.back
	for l := 0; l < L; l++ {
		back[l] = 0
	}
	var total xmath.Accumulator
	for t := 0; t < bt.n1; t++ {
		replay := 0.0
		for l := 1; l < L; l++ { // B_1 = 0: a level-1 error retries in place
			replay += e.shares[l] * back[l]
		}
		et := (a.s0 + a.pfq*replay + a.sdp*e.rec1) / a.pi
		for l := 0; l < int(bt.bLevel[t]); l++ {
			et += e.ckpts[l]
		}
		if math.IsNaN(et) || math.IsInf(et, 1) {
			return math.Inf(1)
		}
		total.Add(et)
		rm := bt.reset[t]
		for l := 1; l < L; l++ {
			if rm&(1<<uint(l)) != 0 {
				back[l] = 0
			} else {
				back[l] += et
			}
		}
	}
	return total.Value()
}

// ExpectedTime returns the exact expected execution time E(P) of spec
// s under the renewal recursion. For level-1 interval t (all earlier
// intervals committed), with Π the zero-error attempt probability:
//
//	E_t = cpt(t) + (S + pfq·Σ_l q_l·B_l(t) + sdp·R_1) / Π,
//
// where cpt(t) is the checkpoint cost of the boundary closing the
// interval (Σ C_j over the levels it writes), S the expected
// first-attempt spending, B_l(t) = Σ E_k over the intervals since the
// last level-l boundary — the replay a level-l error forces — and sdp
// the probability the attempt ends in a detected silent error (rolled
// back to the level-1 checkpoint at cost R_1). It returns +Inf when
// the recursion diverges (an interval too long to ever complete).
func (e *Evaluator) ExpectedTime(s Spec) (float64, error) {
	if err := s.Validate(len(e.p.Levels)); err != nil {
		return 0, err
	}
	cl, err := e.layout(s.M)
	if err != nil {
		return 0, err
	}
	return e.evalSpec(cl, e.table(s.Counts), s.W), nil
}

// Overhead returns the exact expected overhead E(P)/W - 1 of spec s,
// the quantity the planner minimises.
func (e *Evaluator) Overhead(s Spec) (float64, error) {
	t, err := e.ExpectedTime(s)
	if err != nil {
		return 0, err
	}
	return t/s.W - 1, nil
}

// ExpectedTime is the one-shot form of Evaluator.ExpectedTime; callers
// evaluating many specs under the same Params should construct an
// Evaluator once.
func ExpectedTime(p Params, s Spec) (float64, error) {
	ev, err := NewEvaluator(p)
	if err != nil {
		return 0, err
	}
	return ev.ExpectedTime(s)
}

// probAtLeastOne returns 1 - e^{-λw} computed stably.
func probAtLeastOne(lambda, w float64) float64 {
	if lambda <= 0 || w <= 0 {
		return 0
	}
	return -math.Expm1(-lambda * w)
}
