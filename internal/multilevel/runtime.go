package multilevel

import (
	"errors"
	"fmt"
	"math"

	"respat/internal/faults"
)

// Application is the computation protected by the multilevel runtime.
// It is structurally identical to engine.Application (the package is
// deliberately engine-free so internal/sim can depend on it), so any
// application written for the single-level engine — including
// engine.WorkFunc — satisfies it unchanged.
type Application interface {
	// Advance performs `work` seconds of computation at unit speed.
	Advance(work float64) error
	// Snapshot serialises the complete application state.
	Snapshot() ([]byte, error)
	// Restore replaces the application state from a snapshot.
	Restore(data []byte) error
}

// Verifier checks the application for silent data corruption; Check
// returns clean=false when corruption is detected.
type Verifier interface {
	Check(app Application) (clean bool, err error)
}

// Storage persists checkpoints across the hierarchy; levels are
// 1-based, cheapest first, mirroring Params.Levels.
type Storage interface {
	Save(level int, data []byte) error
	Load(level int) ([]byte, error)
}

// MemStorage keeps every level in process memory, the multilevel
// analogue of engine.MemStorage.
type MemStorage struct {
	snaps [][]byte
}

// NewMemStorage sizes an in-memory store for a hierarchy of levels.
func NewMemStorage(levels int) *MemStorage {
	return &MemStorage{snaps: make([][]byte, levels)}
}

// Save stores a copy of data at the given level.
func (s *MemStorage) Save(level int, data []byte) error {
	if level < 1 || level > len(s.snaps) {
		return fmt.Errorf("multilevel: storage level %d outside 1..%d", level, len(s.snaps))
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.snaps[level-1] = cp
	return nil
}

// Load returns a copy of the checkpoint at the given level.
func (s *MemStorage) Load(level int) ([]byte, error) {
	if level < 1 || level > len(s.snaps) {
		return nil, fmt.Errorf("multilevel: storage level %d outside 1..%d", level, len(s.snaps))
	}
	if s.snaps[level-1] == nil {
		return nil, fmt.Errorf("multilevel: no checkpoint at level %d", level)
	}
	return append([]byte(nil), s.snaps[level-1]...), nil
}

// EngineConfig assembles a multilevel runtime run, the hierarchy
// analogue of engine.Config: it protects a real Application with
// per-level checkpoints, verified silent-error detection and
// level-aware rollback.
type EngineConfig struct {
	App    Application
	Params Params
	Spec   Spec
	// Patterns is the number of pattern instances to execute.
	Patterns int
	// TargetWork, when positive, runs instances until the cumulative
	// useful work reaches TargetWork seconds — the stopping rule that
	// keeps runs comparable when Boundary swaps mix pattern lengths.
	TargetWork float64
	// Storage backs the checkpoint hierarchy; nil selects a MemStorage.
	Storage Storage
	// FailStop and Silent supply error arrivals on exposure clocks;
	// nil means no errors of that type.
	FailStop faults.Source
	Silent   faults.Source
	// LevelDraw drives the fail-stop level classification (the q
	// shares); nil seeds a fresh deterministic stream.
	LevelDraw *faults.Bernoulli
	// Corrupt applies one silent corruption to the application; nil
	// leaves state untouched (the corruption is still tracked for
	// oracle detection).
	Corrupt func(app Application) error
	// Guaranteed verifies at level-1 interval ends; nil selects the
	// oracle flagging exactly the injected corruptions.
	Guaranteed Verifier
	// Partial verifies at interior chunk boundaries; nil selects an
	// oracle detecting injected corruptions with the interior recall.
	Partial Verifier
	// Detect drives oracle partial detection; nil seeds a fresh
	// deterministic stream.
	Detect *faults.Bernoulli
	// Boundary, if non-nil, is called after every completed pattern
	// instance with the instance count and a report snapshot.
	// Returning a non-nil spec swaps the runtime onto it from the next
	// instance — the multilevel swap point for an adaptive re-planning
	// loop (the report carries the per-source exposure clocks such a
	// loop needs); the pattern in flight is never altered. Returning
	// an error aborts the run.
	Boundary func(done int, rep Report) (*Spec, error)
}

// Report summarises a multilevel runtime run.
type Report struct {
	// Time is the total virtual wall-clock in seconds; Work the useful
	// work completed; Overhead (Time - Work) / Work.
	Time     float64
	Work     float64
	Overhead float64
	// Event counters.
	FailStop     int64
	Silent       int64
	PartVerifs   int64
	GuarVerifs   int64
	DetectByPart int64
	DetectByGuar int64
	SilentRecs   int64
	// Ckpts[l] and Recs[l] count level-(l+1) checkpoints and
	// fail-stop recoveries.
	Ckpts [MaxLevels]int64
	Recs  [MaxLevels]int64
	// PlanSwaps counts the spec swaps performed by the Boundary hook.
	PlanSwaps int64
	// FailStopExposure and SilentExposure are the exposure seconds of
	// the two error clocks — the rate-estimation denominators an
	// adaptive observer diffs at boundaries.
	FailStopExposure float64
	SilentExposure   float64
	// FinalTainted reports whether the final state carries an
	// undetected corruption (only possible with an imperfect
	// user-supplied guaranteed verifier).
	FinalTainted bool
}

// RunEngine executes pattern instances under the multilevel protocol
// until the stopping rule is met and returns the report. Errors strike
// computations only (the model's Sections 3-4 assumption); a
// fail-stop error draws its level, restores the corresponding
// checkpoint and replays from the most recent boundary of that level
// or above; a detected silent error restores the level-1 checkpoint.
func RunEngine(cfg EngineConfig) (Report, error) {
	if cfg.App == nil {
		return Report{}, errors.New("multilevel: nil App")
	}
	layout, err := cfg.Params.Layout(cfg.Spec)
	if err != nil {
		return Report{}, err
	}
	if cfg.Patterns <= 0 && cfg.TargetWork <= 0 {
		return Report{}, fmt.Errorf("multilevel: need Patterns > 0 or TargetWork > 0 (got %d, %v)",
			cfg.Patterns, cfg.TargetWork)
	}
	if math.IsNaN(cfg.TargetWork) || math.IsInf(cfg.TargetWork, 0) {
		return Report{}, fmt.Errorf("multilevel: TargetWork = %v, need finite", cfg.TargetWork)
	}
	e := &mlExec{cfg: cfg, layout: layout}
	if e.cfg.Storage == nil {
		e.cfg.Storage = NewMemStorage(len(cfg.Params.Levels))
	}
	if e.cfg.FailStop == nil {
		e.cfg.FailStop = faults.Never{}
	}
	if e.cfg.Silent == nil {
		e.cfg.Silent = faults.Never{}
	}
	if e.cfg.Detect == nil {
		e.cfg.Detect = faults.NewBernoulli(0x5eed, 0xdee7)
	}
	if e.cfg.LevelDraw == nil {
		e.cfg.LevelDraw = faults.NewBernoulli(0x1e7e1, 0xd4a3)
	}
	e.fail = newClock(e.cfg.FailStop)
	e.silent = newClock(e.cfg.Silent)
	e.tainted = make([]bool, len(cfg.Params.Levels))
	if err := e.initialCheckpoint(); err != nil {
		return Report{}, err
	}
	var work float64
	for done := 0; e.more(done, work); done++ {
		if err := e.runPattern(); err != nil {
			return Report{}, err
		}
		work += e.layout.Spec.W
		if e.cfg.Boundary == nil {
			continue
		}
		e.syncReport(work)
		next, err := e.cfg.Boundary(done+1, e.rep)
		if err != nil {
			return Report{}, err
		}
		if next == nil {
			continue
		}
		nextLayout, err := e.cfg.Params.Layout(*next)
		if err != nil {
			// Surface a broken swap spec no matter where the run ends,
			// matching engine.Run's final-boundary contract.
			return Report{}, err
		}
		if !e.more(done+1, work) {
			continue
		}
		e.layout = nextLayout
		e.rep.PlanSwaps++
	}
	e.syncReport(work)
	e.rep.Overhead = (e.rep.Time - e.rep.Work) / e.rep.Work
	e.rep.FinalTainted = e.corrupted
	return e.rep, nil
}

// mlExec is the multilevel runtime executor.
type mlExec struct {
	cfg    EngineConfig
	layout Layout
	fail   clock
	silent clock
	now    float64
	rep    Report
	// Ground-truth corruption tracking, as in engine.exec: the runtime
	// injects the corruptions, so it knows which snapshots are tainted;
	// protocol decisions still come only from the verifiers.
	corrupted bool
	tainted   []bool // per storage level
}

// clock drives one error source on an exposure clock (see engine).
type clock struct {
	src      faults.Source
	exposure float64
	next     float64
}

func newClock(src faults.Source) clock {
	return clock{src: src, next: src.Next(0)}
}

func (c *clock) within(d float64) (float64, bool) {
	dt := c.next - c.exposure
	return dt, dt <= d
}

func (c *clock) advance(d float64) { c.exposure += d }

func (c *clock) consume() {
	c.exposure = c.next
	c.next = c.src.Next(c.exposure)
}

func (e *mlExec) more(done int, work float64) bool {
	if e.cfg.Patterns > 0 && done < e.cfg.Patterns {
		return true
	}
	return e.cfg.TargetWork > 0 && work < e.cfg.TargetWork
}

func (e *mlExec) syncReport(work float64) {
	e.rep.Work = work
	e.rep.Time = e.now
	e.rep.FailStopExposure = e.fail.exposure
	e.rep.SilentExposure = e.silent.exposure
}

// initialCheckpoint persists the pristine initial state at every level.
func (e *mlExec) initialCheckpoint() error {
	snap, err := e.cfg.App.Snapshot()
	if err != nil {
		return err
	}
	for l := 1; l <= len(e.cfg.Params.Levels); l++ {
		if err := e.cfg.Storage.Save(l, snap); err != nil {
			return err
		}
	}
	return nil
}

// runPattern executes one pattern instance with level-aware rollback.
func (e *mlExec) runPattern() error {
	n1 := e.layout.Spec.Counts[0]
	t := 0
	for t < n1 {
		ok, lvl, err := e.runInterval()
		if err != nil {
			return err
		}
		if !ok {
			if err := e.recover(lvl); err != nil {
				return err
			}
			t = e.layout.RollbackTo(lvl, t)
			continue
		}
		if err := e.commitBoundary(t); err != nil {
			return err
		}
		t++
	}
	return nil
}

// commitBoundary writes the checkpoint stack of the boundary closing
// interval t.
func (e *mlExec) commitBoundary(t int) error {
	snap, err := e.cfg.App.Snapshot()
	if err != nil {
		return err
	}
	for l := 1; l <= e.layout.BoundaryLevel(t); l++ {
		e.now += e.cfg.Params.Levels[l-1].Ckpt
		if err := e.cfg.Storage.Save(l, snap); err != nil {
			return err
		}
		e.tainted[l-1] = e.corrupted
		e.rep.Ckpts[l-1]++
	}
	return nil
}

// recover restores the level-lvl checkpoint after a fail-stop error of
// that level.
func (e *mlExec) recover(lvl int) error {
	e.now += e.cfg.Params.Levels[lvl-1].Rec
	snap, err := e.cfg.Storage.Load(lvl)
	if err != nil {
		return err
	}
	if err := e.cfg.App.Restore(snap); err != nil {
		return err
	}
	// Recovering at level lvl re-establishes the levels below it from
	// the same state (R_lvl includes that cost by definition).
	for l := 1; l < lvl; l++ {
		if err := e.cfg.Storage.Save(l, snap); err != nil {
			return err
		}
		e.tainted[l-1] = e.tainted[lvl-1]
	}
	e.corrupted = e.tainted[lvl-1]
	e.rep.Recs[lvl-1]++
	return nil
}

// silentRollback restores the level-1 checkpoint after a verification
// alarm.
func (e *mlExec) silentRollback() error {
	e.now += e.cfg.Params.Levels[0].Rec
	snap, err := e.cfg.Storage.Load(1)
	if err != nil {
		return err
	}
	if err := e.cfg.App.Restore(snap); err != nil {
		return err
	}
	e.corrupted = e.tainted[0]
	e.rep.SilentRecs++
	return nil
}

// runInterval executes one level-1 interval until its closing
// guaranteed verification passes; ok=false reports a fail-stop of
// level lvl.
func (e *mlExec) runInterval() (ok bool, lvl int, err error) {
	m := len(e.layout.Chunks)
	for {
		j := 0
		for j < m {
			done, err := e.chunk(e.layout.Chunks[j])
			if err != nil {
				return false, 0, err
			}
			if !done {
				return false, e.cfg.Params.PickLevel(e.cfg.LevelDraw.Rng.Float64()), nil
			}
			if j < m-1 {
				e.now += e.layout.InteriorCost
				e.rep.PartVerifs++
				detected, err := e.check(true)
				if err != nil {
					return false, 0, err
				}
				if detected {
					e.rep.DetectByPart++
					if err := e.silentRollback(); err != nil {
						return false, 0, err
					}
					j = 0
					continue
				}
			}
			j++
		}
		e.now += e.cfg.Params.GuarVer
		e.rep.GuarVerifs++
		detected, err := e.check(false)
		if err != nil {
			return false, 0, err
		}
		if !detected {
			return true, 0, nil
		}
		e.rep.DetectByGuar++
		if err := e.silentRollback(); err != nil {
			return false, 0, err
		}
	}
}

// check runs a partial or guaranteed verification decision (the time
// was already spent by the caller) and reports a detection.
func (e *mlExec) check(partial bool) (bool, error) {
	var clean bool
	var err error
	switch {
	case partial && e.cfg.Partial != nil:
		clean, err = e.cfg.Partial.Check(e.cfg.App)
	case partial:
		clean = !(e.corrupted && e.cfg.Detect.Hit(e.layout.InteriorRecall))
	case e.cfg.Guaranteed != nil:
		clean, err = e.cfg.Guaranteed.Check(e.cfg.App)
	default:
		clean = !e.corrupted
	}
	if err != nil {
		return false, err
	}
	return !clean, nil
}

// chunk advances the application by w seconds, applying silent
// corruptions at their arrival offsets and stopping at a fail-stop
// arrival (partial progress dies with the machine, so Advance is not
// called for it).
func (e *mlExec) chunk(w float64) (bool, error) {
	remaining := w
	for remaining > 0 {
		fdt, fHit := e.fail.within(remaining)
		sdt, sHit := e.silent.within(remaining)
		if sHit && (!fHit || sdt <= fdt) {
			if err := e.cfg.App.Advance(sdt); err != nil {
				return false, err
			}
			e.silent.consume()
			e.fail.advance(sdt)
			e.now += sdt
			remaining -= sdt
			e.corrupted = true
			e.rep.Silent++
			if e.cfg.Corrupt != nil {
				if err := e.cfg.Corrupt(e.cfg.App); err != nil {
					return false, err
				}
			}
			continue
		}
		if fHit {
			e.fail.consume()
			e.silent.advance(fdt)
			e.now += fdt
			e.rep.FailStop++
			return false, nil
		}
		if err := e.cfg.App.Advance(remaining); err != nil {
			return false, err
		}
		e.fail.advance(remaining)
		e.silent.advance(remaining)
		e.now += remaining
		remaining = 0
	}
	return true, nil
}
