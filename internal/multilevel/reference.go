package multilevel

import (
	"context"
	"fmt"
	"math"

	"respat/internal/xmath"
)

// optimizeNested is the pre-overhaul planner's exact stage: nested
// convex integer ternary searches over the capped box with a shared
// (branch, m) memo, sequential. It is kept for two reasons:
//
//   - it is the fallback when the first-order caps make the candidate
//     box too large to enumerate (degenerate near-zero-rate regimes) —
//     ternary search is logarithmic in the caps where enumeration is
//     linear;
//   - wrapped by optimizeReference, it is the golden-parity oracle:
//     the pruned parallel Plan must return a bit-identical Plan on the
//     Table 2 grid, which pins the overhaul to the pre-optimization
//     planner's outputs.
//
// Leaves run through the same optimizeW as the parallel path, so the
// two searches share every floating-point operation and differ only in
// how they walk the box.
func optimizeNested(ctx context.Context, ev *Evaluator, maxM int, caps []int, stats *SearchStats) (Plan, error) {
	memo := make(map[[MaxLevels]int]wEval)
	branch := make([]int, len(caps))
	counts := make([]int, len(caps)+1)
	at := func(m int) wEval {
		var key [MaxLevels]int
		copy(key[:], branch)
		key[MaxLevels-1] = m
		if e, ok := memo[key]; ok {
			return e
		}
		if err := ctx.Err(); err != nil {
			return wEval{err: err}
		}
		fillCounts(counts, branch)
		e := optimizeW(ev, counts, m)
		e.m = m
		memo[key] = e
		return e
	}
	bestM := func() (int, wEval) {
		m, _ := xmath.MinimizeConvexInt(func(m int) float64 {
			e := at(m)
			if e.err != nil {
				return math.Inf(1)
			}
			return e.h
		}, 1, maxM)
		return m, at(m)
	}
	// descend searches branching dimension d, returning the best leaf
	// under the factors already fixed in branch[0..d-1].
	var descend func(d int) (int, wEval)
	descend = func(d int) (int, wEval) {
		if d == len(branch) {
			return bestM()
		}
		k, _ := xmath.MinimizeConvexInt(func(k int) float64 {
			branch[d] = k
			_, e := descend(d + 1)
			if e.err != nil {
				return math.Inf(1)
			}
			return e.h
		}, 1, caps[d])
		branch[d] = k
		return descend(d + 1)
	}
	m, best := descend(0)
	if best.err != nil {
		return Plan{}, best.err
	}
	if math.IsInf(best.h, 1) || math.IsNaN(best.h) {
		return Plan{}, fmt.Errorf("multilevel: optimisation diverged")
	}
	// A cancelled search parked leaves at +Inf; never serve its
	// reduction as if the full search had run.
	if err := ctx.Err(); err != nil {
		return Plan{}, err
	}
	stats.Leaves += len(memo)
	stats.Evaluated += len(memo)
	return Plan{Spec: UniformSpec(best.w, branch, m), Overhead: best.h}, nil
}

// optimizeReference reproduces the pre-overhaul Optimize end to end
// (first-order seed, caps, nested convex search; no pruning, no
// parallelism). Production code never calls it — it exists so the
// parity tests can assert the overhauled planner returns bit-identical
// plans.
func optimizeReference(ev *Evaluator) (Plan, error) {
	p := ev.Params()
	if p.Rates.Total() == 0 {
		return Plan{}, fmt.Errorf("multilevel: both error rates are zero; no finite optimal pattern")
	}
	L := len(p.Levels)
	seed := make([]int, L-1)
	counts := make([]int, L)
	seedM := firstOrderSeed(p, seed, counts)
	caps := make([]int, L-1)
	for d := range caps {
		caps[d] = min(3*seed[d]+4, MaxBranch)
	}
	maxM := min(3*seedM+4, MaxBranch)
	if p.Rates.Silent == 0 {
		maxM = 1
	}
	var stats SearchStats
	return optimizeNested(context.Background(), ev, maxM, caps, &stats)
}
