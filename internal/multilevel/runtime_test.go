package multilevel

import (
	"encoding/binary"
	"math"
	"testing"

	"respat/internal/faults"
)

// counterApp accumulates advanced work — its state is the amount of
// deterministic progress, so rollback correctness is observable.
type counterApp struct {
	work float64
}

func (a *counterApp) Advance(w float64) error { a.work += w; return nil }
func (a *counterApp) Snapshot() ([]byte, error) {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(a.work))
	return b, nil
}
func (a *counterApp) Restore(b []byte) error {
	a.work = math.Float64frombits(binary.LittleEndian.Uint64(b))
	return nil
}

func TestRuntimeErrorFree(t *testing.T) {
	p := threeLevel()
	s := UniformSpec(3600, []int{3, 2}, 2)
	app := &counterApp{}
	rep, err := RunEngine(EngineConfig{App: app, Params: p, Spec: s, Patterns: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * p.ErrorFreeTime(s); math.Abs(rep.Time-want) > 1e-9 {
		t.Errorf("time %v, want error-free %v", rep.Time, want)
	}
	if math.Abs(rep.Work-4*3600) > 1e-9 || math.Abs(app.work-4*3600) > 1e-9 {
		t.Errorf("work %v / app %v, want %v", rep.Work, app.work, 4*3600.0)
	}
	wantCkpts := [MaxLevels]int64{4 * 6, 4 * 2, 4 * 1}
	if rep.Ckpts != wantCkpts {
		t.Errorf("checkpoints %v, want %v", rep.Ckpts, wantCkpts)
	}
	if rep.GuarVerifs != 4*6 || rep.PartVerifs != 4*6*1 {
		t.Errorf("verifs guar=%d part=%d, want 24/24", rep.GuarVerifs, rep.PartVerifs)
	}
	if rep.FinalTainted {
		t.Error("fault-free run reports a tainted final state")
	}
}

// TestRuntimeLevelRollback: a single fail-stop error of a forced level
// rolls back exactly to that level's last boundary and the application
// still ends in the fault-free state.
func TestRuntimeLevelRollback(t *testing.T) {
	for lvl := 1; lvl <= 3; lvl++ {
		p := threeLevel()
		// Force every fail-stop error to the level under test.
		for l := range p.Levels {
			p.Levels[l].Share = 0
		}
		p.Levels[lvl-1].Share = 1
		s := UniformSpec(3600, []int{3, 2}, 1)
		app := &counterApp{}
		// One error mid-way through the pattern's 5th interval
		// (exposure clock: errors strike computations only).
		rep, err := RunEngine(EngineConfig{
			App: app, Params: p, Spec: s, Patterns: 1,
			FailStop: faults.NewTrace([]float64{4.2 * 600}),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.FailStop != 1 || rep.Recs[lvl-1] != 1 {
			t.Fatalf("level %d: FailStop=%d Recs=%v", lvl, rep.FailStop, rep.Recs)
		}
		if math.Abs(app.work-3600) > 1e-9 {
			t.Errorf("level %d: final app work %v, want 3600", lvl, app.work)
		}
		// Rollback targets with counts [6 2 1] (level-2 boundaries after
		// intervals 2 and 5): interval 4 (level 1), interval 3 (level 2),
		// interval 0 (level 3). The error loses 120 s of the interrupted
		// attempt and the replay re-executes the rolled-over intervals
		// with their verifications and re-commits their checkpoints
		// (intervals 0-3 span four level-1 boundaries, one of which —
		// after interval 2 — also rewrites level 2).
		extra := map[int]float64{
			1: 120 + p.Levels[0].Rec,
			2: 120 + p.Levels[1].Rec + 600 + p.GuarVer + p.Levels[0].Ckpt,
			3: 120 + p.Levels[2].Rec + 4*(600+p.GuarVer) + 4*p.Levels[0].Ckpt + p.Levels[1].Ckpt,
		}[lvl]
		if want := p.ErrorFreeTime(s) + extra; math.Abs(rep.Time-want) > 1e-9 {
			t.Errorf("level %d: time %v, want %v", lvl, rep.Time, want)
		}
	}
}

// TestRuntimeSilentDetection: an injected silent error is detected by
// the closing guaranteed verification, rolled back at level 1, and the
// final state is clean and fault-free.
func TestRuntimeSilentDetection(t *testing.T) {
	p := threeLevel()
	s := UniformSpec(3600, []int{3, 2}, 1)
	app := &counterApp{}
	corrupted := 0
	rep, err := RunEngine(EngineConfig{
		App: app, Params: p, Spec: s, Patterns: 1,
		Silent:  faults.NewTrace([]float64{2.5 * 600}),
		Corrupt: func(a Application) error { corrupted++; a.(*counterApp).work += 1e6; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Silent != 1 || rep.DetectByGuar != 1 || rep.SilentRecs != 1 {
		t.Fatalf("Silent=%d DetectByGuar=%d SilentRecs=%d", rep.Silent, rep.DetectByGuar, rep.SilentRecs)
	}
	if corrupted != 1 {
		t.Fatalf("Corrupt called %d times", corrupted)
	}
	if rep.FinalTainted || math.Abs(app.work-3600) > 1e-9 {
		t.Errorf("final state tainted=%v work=%v, want clean 3600", rep.FinalTainted, app.work)
	}
	// The corrupted attempt of interval 2 runs to its guaranteed
	// verification (600 s of doomed work + V*), then rolls back at
	// level 1 and replays.
	want := p.ErrorFreeTime(s) + 600 + p.GuarVer + p.Levels[0].Rec
	if math.Abs(rep.Time-want) > 1e-9 {
		t.Errorf("time %v, want %v", rep.Time, want)
	}
}

// TestRuntimeBoundarySwap: the Boundary hook swaps the spec at a
// pattern boundary — the multilevel swap point for an adaptive loop —
// and the report accounts the mixed pattern lengths.
func TestRuntimeBoundarySwap(t *testing.T) {
	p := threeLevel()
	first := UniformSpec(3600, []int{3, 2}, 2)
	second := UniformSpec(1800, []int{2, 2}, 1)
	var boundaries []float64
	rep, err := RunEngine(EngineConfig{
		App: &counterApp{}, Params: p, Spec: first, Patterns: 3,
		Boundary: func(done int, rep Report) (*Spec, error) {
			boundaries = append(boundaries, rep.Work)
			if done == 1 {
				return &second, nil
			}
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanSwaps != 1 {
		t.Fatalf("PlanSwaps = %d, want 1", rep.PlanSwaps)
	}
	if want := 3600 + 2*1800.0; math.Abs(rep.Work-want) > 1e-9 {
		t.Errorf("work %v, want %v", rep.Work, want)
	}
	if want := p.ErrorFreeTime(first) + 2*p.ErrorFreeTime(second); math.Abs(rep.Time-want) > 1e-9 {
		t.Errorf("time %v, want %v", rep.Time, want)
	}
	if len(boundaries) != 3 || boundaries[0] != 3600 || boundaries[2] != rep.Work {
		t.Errorf("boundary work snapshots %v", boundaries)
	}
	// An invalid swap spec aborts the run even at the final boundary.
	bad := Spec{W: -1, Counts: []int{1, 1, 1}, M: 1}
	_, err = RunEngine(EngineConfig{
		App: &counterApp{}, Params: p, Spec: first, Patterns: 1,
		Boundary: func(int, Report) (*Spec, error) { return &bad, nil },
	})
	if err == nil {
		t.Error("invalid final-boundary swap spec not surfaced")
	}
}

// TestRuntimeTargetWork: the TargetWork stopping rule completes equal
// useful work regardless of the spec mix.
func TestRuntimeTargetWork(t *testing.T) {
	p := threeLevel()
	s := UniformSpec(1000, []int{2}, 1)
	p2 := Params{Levels: p.Levels[:2], GuarVer: p.GuarVer, PartVer: p.PartVer, Recall: p.Recall, Rates: p.Rates}
	p2.Levels = []Level{
		{Ckpt: 5, Rec: 6, Share: 0.7},
		{Ckpt: 200, Rec: 260, Share: 0.3},
	}
	rep, err := RunEngine(EngineConfig{App: &counterApp{}, Params: p2, Spec: s, TargetWork: 3500})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Work < 3500 || rep.Work > 3500+1000 {
		t.Errorf("work %v outside [3500, 4500]", rep.Work)
	}
}
