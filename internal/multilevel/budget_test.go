package multilevel

import (
	"testing"
	"time"

	"respat/internal/platform"
)

// Budgets for one cold Hera L=3 plan — the BenchmarkMultilevelPlan
// configuration. The overhauled planner measures ~2.4ms and ~135
// allocs on a 1-core CI runner; the pre-overhaul one measured 33.8ms
// and ~84k allocs. The budgets sit far above the former and far below
// the latter, so the test is insensitive to runner noise but fails
// loudly if the cold path regresses toward the old behaviour. The
// bench gate in scripts/bench.sh enforces the tighter release targets
// (5ms, 1000 allocs).
const (
	coldPlanAllocBudget = 1000
	coldPlanTimeBudget  = 25 * time.Millisecond
)

// TestMultilevelPlanBudget is the CI guard on the cold-plan overhaul:
// a cold multilevel plan must stay within the latency and allocation
// budgets between bench snapshots.
func TestMultilevelPlanBudget(t *testing.T) {
	pl, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromPlatform(pl, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(p); err != nil { // warm the code paths once
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Optimize(p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > coldPlanAllocBudget {
		t.Errorf("cold multilevel plan: %.0f allocs, budget %d", allocs, coldPlanAllocBudget)
	}

	// Latency: best of 3, so a single scheduler hiccup cannot fail CI.
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := Optimize(p); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if best > coldPlanTimeBudget {
		t.Errorf("cold multilevel plan: %v, budget %v", best, coldPlanTimeBudget)
	}
}
