// Package analytic implements the paper's analytical model: the
// first-order optimal pattern characterisation of Theorems 1-4
// (summarised in Table 1), the expected-execution-time expressions of
// Propositions 1-4, an exact (non-truncated) expected-time evaluator
// derived from the same renewal equations, and the Section 5 expected
// costs of checkpoints and recoveries under fail-stop errors.
//
// Conventions: work is measured in seconds at unit speed, rates in
// errors per second. The expected overhead of a pattern is
// H(P) = E(P)/W - 1, decomposed to first order (Definition 1) as
// H = oef/W + orw·W with oef the error-free overhead and orw the
// re-executed-work fraction; the optimum is W* = sqrt(oef/orw) with
// H* = 2·sqrt(oef·orw).
package analytic

import (
	"errors"
	"fmt"
	"math"

	"respat/internal/core"
	"respat/internal/linalg"
	"respat/internal/xmath"
)

// MaxSplit caps the number of segments or chunks considered by the
// integer planner. It is only reached in degenerate regimes (e.g. a
// zero fail-stop rate makes the rational n̄* diverge).
const MaxSplit = 4096

// ErrDegenerate is returned when no finite optimal pattern exists
// (both error rates zero: W* diverges).
var ErrDegenerate = errors.New("analytic: both error rates are zero; no finite optimal pattern")

// Plan is the outcome of optimising one pattern family for a platform:
// the integer-rounded Table 1 solution.
type Plan struct {
	Kind core.Kind
	// N and M are the integer-optimal number of segments and chunks per
	// segment (1 when the family fixes them).
	N, M int
	// RationalN and RationalM are the continuous relaxations n̄*, m̄*
	// of Theorems 2-4 before integer rounding (1 when fixed).
	RationalN, RationalM float64
	// W is the optimal pattern work length W* = sqrt(oef/orw) in
	// seconds at the integer N, M.
	W float64
	// Overhead is the first-order expected overhead 2·sqrt(oef·orw) at
	// the integer N, M.
	Overhead float64
	// Pattern is the concrete optimal pattern (Theorem 4 layout).
	Pattern core.Pattern
}

// String renders the plan compactly.
func (p Plan) String() string {
	return fmt.Sprintf("%s: W*=%.6gs n*=%d m*=%d H*=%.4f", p.Kind, p.W, p.N, p.M, p.Overhead)
}

// interiorVerifCost returns the cost of one interior verification and
// the effective recall for family k.
func interiorVerifCost(k core.Kind, c core.Costs) (cost, recall float64) {
	if k.PartialVerifs() {
		return c.PartVer, c.Recall
	}
	return c.GuarVer, 1
}

// clampNM forces n and m to 1 for families that fix them.
func clampNM(k core.Kind, n, m int) (int, int) {
	if !k.MultiSegment() {
		n = 1
	}
	if !k.MultiChunk() {
		m = 1
	}
	return n, m
}

// EF returns the error-free overhead oef of family k at n segments and
// m chunks per segment:
//
//	oef = n(m-1)·v + n(V* + CM) + CD
//
// with v the interior verification cost (V or V*).
func EF(k core.Kind, c core.Costs, n, m int) float64 {
	n, m = clampNM(k, n, m)
	v, _ := interiorVerifCost(k, c)
	return float64(n*(m-1))*v + float64(n)*(c.GuarVer+c.MemCkpt) + c.DiskCkpt
}

// Fstar returns the minimised quadratic-form value
// f* = (1 + (2-r)/((m-2)r+2))/2 of Theorem 3; with r = 1 it reduces to
// (1 + 1/m)/2 and with m = 1 to 1.
func Fstar(m int, r float64) float64 {
	if m <= 1 {
		return 1
	}
	return (1 + (2-r)/(float64(m-2)*r+2)) / 2
}

// RW returns the re-executed-work overhead orw of family k at n and m:
//
//	orw = f*(m, r)·λs/n + λf/2.
func RW(k core.Kind, c core.Costs, r core.Rates, n, m int) float64 {
	n, m = clampNM(k, n, m)
	_, recall := interiorVerifCost(k, c)
	return Fstar(m, recall)*r.Silent/float64(n) + r.FailStop/2
}

// OverheadAt returns the first-order expected overhead of family k
// executed with pattern length w: oef/w + orw·w. It lets callers study
// the sensitivity to a non-optimal period.
func OverheadAt(k core.Kind, c core.Costs, r core.Rates, n, m int, w float64) float64 {
	return EF(k, c, n, m)/w + RW(k, c, r, n, m)*w
}

// product returns oef·orw, the quantity F(n, m) minimised by the
// planner; H* = 2·sqrt(F).
func product(k core.Kind, c core.Costs, r core.Rates, n, m int) float64 {
	return EF(k, c, n, m) * RW(k, c, r, n, m)
}

// RationalNM returns the continuous-relaxation optima n̄* and m̄* of
// Theorems 1-4 (Table 1, columns n* and m*). Families that fix a
// dimension report 1. Degenerate cases (division by zero, negative
// square-root operands) are clamped to 1 or +Inf as appropriate; the
// integer planner copes with either.
func RationalNM(k core.Kind, c core.Costs, r core.Rates) (nbar, mbar float64) {
	lf, ls := r.FailStop, r.Silent
	vs, cm, cd, v := c.GuarVer, c.MemCkpt, c.DiskCkpt, c.PartVer
	rho := (2 - c.Recall) / c.Recall // the (2-r)/r factor of Theorems 3-4
	nbar, mbar = 1, 1
	switch k {
	case core.PD:
	case core.PDVStar:
		mbar = math.Sqrt(ls / (ls + lf) * (cm + cd) / vs)
	case core.PDV:
		arg := ls / (ls + lf) * rho * ((vs+cm+cd)/v - rho)
		mbar = 2 - 2/c.Recall + sqrtOrZero(arg)
	case core.PDM:
		nbar = math.Sqrt(2 * ls / lf * cd / (vs + cm))
	case core.PDMVStar:
		nbar = math.Sqrt(ls / lf * cd / cm)
		mbar = math.Sqrt(cm / vs)
	case core.PDMV:
		nbar = math.Sqrt(ls / lf * cd / (vs - rho*v + cm))
		arg := rho * ((vs+cm)/v - rho)
		mbar = 2 - 2/c.Recall + sqrtOrZero(arg)
	}
	if math.IsNaN(nbar) || nbar < 1 {
		nbar = 1
	}
	if math.IsNaN(mbar) || mbar < 1 {
		mbar = 1
	}
	return nbar, mbar
}

func sqrtOrZero(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Optimal computes the integer-optimal Table 1 plan of family k for
// costs c and rates r. The integer (n*, m*) is selected among the
// floor/ceil neighbourhood of the continuous optimum and, as a
// robustness net for degenerate parameter regimes, a convex integer
// search, whichever yields the smaller oef·orw product.
func Optimal(k core.Kind, c core.Costs, r core.Rates) (Plan, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, err
	}
	if err := r.Validate(); err != nil {
		return Plan{}, err
	}
	if r.Total() == 0 {
		return Plan{}, ErrDegenerate
	}
	nbar, mbar := RationalNM(k, c, r)

	nCands := []int{1}
	if k.MultiSegment() {
		nCands = intCandidates(nbar)
	}
	mCands := []int{1}
	if k.MultiChunk() {
		mCands = intCandidates(mbar)
	}

	bestN, bestM := 1, 1
	bestF := math.Inf(1)
	for _, n := range nCands {
		for _, m := range mCands {
			if f := product(k, c, r, n, m); f < bestF {
				bestN, bestM, bestF = n, m, f
			}
		}
	}
	// Robustness net: a nested convex integer search. For well-posed
	// inputs it lands on the same (n, m); in degenerate regimes (e.g.
	// λf = 0 driving n̄* to infinity) it supplies a finite answer.
	nGrid, mGrid := 1, 1
	if k.MultiSegment() && k.MultiChunk() {
		var mAt = func(n int) (int, float64) {
			return xmath.MinimizeConvexInt(func(m int) float64 { return product(k, c, r, n, m) }, 1, MaxSplit)
		}
		n2, _ := xmath.MinimizeConvexInt(func(n int) float64 { _, f := mAt(n); return f }, 1, MaxSplit)
		m2, _ := mAt(n2)
		nGrid, mGrid = n2, m2
	} else if k.MultiSegment() {
		nGrid, _ = xmath.MinimizeConvexInt(func(n int) float64 { return product(k, c, r, n, 1) }, 1, MaxSplit)
	} else if k.MultiChunk() {
		mGrid, _ = xmath.MinimizeConvexInt(func(m int) float64 { return product(k, c, r, 1, m) }, 1, MaxSplit)
	}
	if f := product(k, c, r, nGrid, mGrid); f < bestF {
		bestN, bestM, bestF = nGrid, mGrid, f
	}

	oef := EF(k, c, bestN, bestM)
	orw := RW(k, c, r, bestN, bestM)
	w := xmath.SqrtRatio(oef, orw)
	if math.IsInf(w, 1) || w <= 0 || math.IsNaN(w) {
		return Plan{}, fmt.Errorf("analytic: no finite optimal period for %v (oef=%v, orw=%v)", k, oef, orw)
	}
	pat, err := core.Layout(k, w, bestN, bestM, c.Recall)
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		Kind:      k,
		N:         bestN,
		M:         bestM,
		RationalN: nbar,
		RationalM: mbar,
		W:         w,
		Overhead:  2 * math.Sqrt(bestF),
		Pattern:   pat,
	}, nil
}

// intCandidates is xmath.IntNeighborhood with an infinity guard.
func intCandidates(x float64) []int {
	if math.IsInf(x, 1) || x > MaxSplit {
		return []int{MaxSplit}
	}
	return xmath.IntNeighborhood(x)
}

// TableOverhead returns the closed-form optimal overhead H*(P) of
// Table 1 (continuous relaxation, dominant term only). It serves as a
// cross-check of Optimal: the integer-rounded overhead is never below
// it and approaches it as the MTBF grows.
func TableOverhead(k core.Kind, c core.Costs, r core.Rates) float64 {
	lf, ls := r.FailStop, r.Silent
	vs, cm, cd, v := c.GuarVer, c.MemCkpt, c.DiskCkpt, c.PartVer
	rho := (2 - c.Recall) / c.Recall
	switch k {
	case core.PD:
		return 2 * math.Sqrt((ls+lf/2)*(vs+cm+cd))
	case core.PDVStar:
		return math.Sqrt(2*(ls+lf)*(cm+cd)) + math.Sqrt(2*ls*vs)
	case core.PDV:
		return math.Sqrt(2*(ls+lf)*(vs-rho*v+cm+cd)) + math.Sqrt(2*ls*rho*v)
	case core.PDM:
		return 2*math.Sqrt(ls*(vs+cm)) + math.Sqrt(2*lf*cd)
	case core.PDMVStar:
		return math.Sqrt(2*lf*cd) + math.Sqrt(2*ls*cm) + math.Sqrt(2*ls*vs)
	case core.PDMV:
		return math.Sqrt(2*lf*cd) + math.Sqrt(2*ls*(vs-rho*v+cm)) + math.Sqrt(2*ls*rho*v)
	default:
		return math.NaN()
	}
}

// ExpectedLost returns E[T_lost], the expected time lost when an
// exponential(λ) fail-stop error interrupts an activity of length w
// (Equation 3): 1/λ - w/(e^{λw} - 1). It is evaluated stably for tiny
// λw via its series w/2 - λw²/12 + O((λw)³).
func ExpectedLost(lambda, w float64) float64 {
	if lambda <= 0 || w <= 0 {
		return 0
	}
	x := lambda * w
	if x < 1e-4 {
		// Series w/2 - λw²/12 + O(λ³w⁴): below the threshold its
		// truncation error (~w·x³/720) is far smaller than the
		// cancellation error of the direct form (~w·ulp/x).
		return w/2 - lambda*w*w/12
	}
	return 1/lambda - w/math.Expm1(x)
}

// probAtLeastOne returns 1 - e^{-λw} computed stably.
func probAtLeastOne(lambda, w float64) float64 {
	if lambda <= 0 || w <= 0 {
		return 0
	}
	return -math.Expm1(-lambda * w)
}

// ExactExpectedTime evaluates the expected execution time of an
// arbitrary pattern under the Section 2 protocol without any series
// truncation, by solving the renewal equations of Propositions 1-4
// (Equations 2, 17 and 23) numerically:
//
//	E(P) = Σ_i E_i + CD,
//	E_i  = CM + ((1-Π_i)·RM + S_i) / Π_i,
//
// with Π_i the probability segment i completes error-free and S_i the
// expected first-attempt spending (chunks executed, verification
// costs, fail-stop losses, disk recoveries and replays of earlier
// segments). Verifications, checkpoints and recoveries are assumed
// error-free, matching the Sections 3-4 analysis; see ExpectedOpCosts
// for the Section 5 refinement.
// ExactExpectedTime is a thin wrapper over Evaluator for one-shot
// evaluations; callers evaluating many patterns or many pattern lengths
// under the same (costs, rates) should construct an Evaluator once.
func ExactExpectedTime(p core.Pattern, c core.Costs, r core.Rates) (float64, error) {
	ev, err := NewEvaluator(c, r)
	if err != nil {
		return 0, err
	}
	return ev.ExpectedTime(p)
}

// exactSegmentTime computes E_i for segment i given the expected
// replay cost of all earlier segments.
func exactSegmentTime(p core.Pattern, c core.Costs, r core.Rates, i int, prevSum, recall, interiorCost float64) float64 {
	m := p.M(i)
	wi := p.SegmentWork(i)
	pi := math.Exp(-(r.FailStop + r.Silent) * wi) // Π_i

	var s xmath.Accumulator
	prodPf := 1.0 // Π_{k<j}(1 - p^f_k)
	prodPs := 1.0 // Π_{k<j}(1 - p^s_k)
	g := 0.0      // probability of an earlier silent error missed so far
	for j := 0; j < m; j++ {
		w := p.ChunkWork(i, j)
		pf := probAtLeastOne(r.FailStop, w)
		ps := probAtLeastOne(r.Silent, w)
		q := prodPf * (prodPs + g)
		verif := interiorCost
		if j == m-1 {
			verif = c.GuarVer
		}
		if pf > 0 {
			s.Add(q * pf * (ExpectedLost(r.FailStop, w) + c.DiskRec + prevSum))
		}
		s.Add(q * (1 - pf) * (w + verif))
		// The partial verification after chunk j misses the corruption
		// with probability 1 - recall.
		g = (g + prodPs*ps) * (1 - recall)
		prodPs *= 1 - ps
		prodPf *= 1 - pf
	}
	return c.MemCkpt + ((1-pi)*c.MemRec+s.Value())/pi
}

// SecondOrderExpectedTime evaluates the truncated expansions of
// Propositions 2-4 for an arbitrary pattern:
//
//	E(P) ≈ oef + W + (λs·Σ_i f_i·α_i² + λf/2)·W²
//
// with f_i = β_iᵀ A^(m_i) β_i. Terms of order O(√λ) are dropped, as in
// the paper. For the one-segment one-chunk pattern, Prop1ExpectedTime
// keeps the extra linear recovery terms of Proposition 1.
func SecondOrderExpectedTime(p core.Pattern, c core.Costs, r core.Rates) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	recall := c.Recall
	if p.InteriorGuaranteed {
		recall = 1
	}
	var h xmath.Accumulator
	for i := 0; i < p.N(); i++ {
		a, err := linalg.VerificationMatrix(p.M(i), recall)
		if err != nil {
			return 0, err
		}
		fi, err := linalg.QuadForm(a, p.Beta[i])
		if err != nil {
			return 0, err
		}
		h.Add(fi * p.Alpha[i] * p.Alpha[i])
	}
	w := p.W
	return p.ErrorFreeTime(c) + (r.Silent*h.Value()+r.FailStop/2)*w*w, nil
}

// Prop1ExpectedTime is the Proposition 1 second-order expansion of the
// base pattern PD, including the O(λW) recovery terms:
//
//	E = W + V* + CM + CD + (λs + λf/2)W² + λsW(V*+RM) + λfW(RM+RD).
func Prop1ExpectedTime(w float64, c core.Costs, r core.Rates) float64 {
	return w + c.GuarVer + c.MemCkpt + c.DiskCkpt +
		(r.Silent+r.FailStop/2)*w*w +
		r.Silent*w*(c.GuarVer+c.MemRec) +
		r.FailStop*w*(c.MemRec+c.DiskRec)
}

// fstarCont extends Fstar to real m >= 1 (continuous relaxation).
func fstarCont(m, recall float64) float64 {
	if m <= 1 {
		return 1
	}
	return (1 + (2-recall)/((m-2)*recall+2)) / 2
}

// efCont and rwCont are the continuous relaxations of EF and RW used
// to validate the closed-form rational optima.
func efCont(k core.Kind, c core.Costs, n, m float64) float64 {
	if !k.MultiSegment() {
		n = 1
	}
	if !k.MultiChunk() {
		m = 1
	}
	v, _ := interiorVerifCost(k, c)
	return n*(m-1)*v + n*(c.GuarVer+c.MemCkpt) + c.DiskCkpt
}

func rwCont(k core.Kind, c core.Costs, r core.Rates, n, m float64) float64 {
	if !k.MultiSegment() {
		n = 1
	}
	if !k.MultiChunk() {
		m = 1
	}
	_, recall := interiorVerifCost(k, c)
	return fstarCont(m, recall)*r.Silent/n + r.FailStop/2
}

// OpCosts aggregates the Section 5 expected durations of the four
// resilience operations when fail-stop errors can strike during them.
type OpCosts struct {
	DiskRec  float64 // E(R_D)
	MemRec   float64 // E(R_M)
	DiskCkpt float64 // E(C_D)
	MemCkpt  float64 // E(C_M)
}

// ExpectedOpCosts solves the recursions (30)-(33) of Section 5 for the
// expected checkpoint and recovery durations under fail-stop errors of
// rate lf. trec is the expected re-execution time E(T_rec) entailed by
// a failure during the operation (bounded by the pattern's expected
// time; pass the value for the pattern under study).
func ExpectedOpCosts(c core.Costs, lf, trec float64) OpCosts {
	retryFactor := func(d float64) float64 {
		// p/(1-p) with p = 1 - e^{-λd}: expected number of failed tries.
		if lf <= 0 || d <= 0 {
			return 0
		}
		return math.Expm1(lf * d)
	}
	var out OpCosts
	// E(R_D) = R_D + p/(1-p)·E(T_lost): failures restart the disk read.
	kRD := retryFactor(c.DiskRec)
	out.DiskRec = c.DiskRec + kRD*ExpectedLost(lf, c.DiskRec)
	// E(R_M): a failure during memory restore forces a full disk
	// recovery plus re-execution.
	kRM := retryFactor(c.MemRec)
	out.MemRec = c.MemRec + kRM*(ExpectedLost(lf, c.MemRec)+out.DiskRec+trec)
	// E(C_M): same shape.
	kCM := retryFactor(c.MemCkpt)
	out.MemCkpt = c.MemCkpt + kCM*(ExpectedLost(lf, c.MemCkpt)+out.DiskRec+out.MemRec+trec)
	// E(C_D): additionally re-takes the memory checkpoint.
	kCD := retryFactor(c.DiskCkpt)
	out.DiskCkpt = c.DiskCkpt + kCD*(ExpectedLost(lf, c.DiskCkpt)+out.DiskRec+out.MemRec+trec+out.MemCkpt)
	return out
}
