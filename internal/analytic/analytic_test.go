package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"respat/internal/core"
	"respat/internal/xmath"
)

// hera returns the Table 2 parameters of the Hera platform with the
// simulation defaults RD=CD, RM=CM, V*=CM, V=V*/100, r=0.8.
func hera() (core.Costs, core.Rates) {
	c := core.Costs{
		DiskCkpt: 300, MemCkpt: 15.4, DiskRec: 300, MemRec: 15.4,
		GuarVer: 15.4, PartVer: 0.154, Recall: 0.8,
	}
	r := core.Rates{FailStop: 9.46e-7, Silent: 3.38e-6}
	return c, r
}

func TestFstar(t *testing.T) {
	// m = 1 gives 1 regardless of recall.
	if Fstar(1, 0.3) != 1 || Fstar(1, 1) != 1 {
		t.Error("Fstar(1, .) should be 1")
	}
	// r = 1 reduces to (1+1/m)/2.
	for m := 2; m <= 10; m++ {
		want := (1 + 1/float64(m)) / 2
		if got := Fstar(m, 1); !xmath.Close(got, want, 1e-12) {
			t.Errorf("Fstar(%d,1) = %v, want %v", m, got, want)
		}
	}
	// Known value: m=3, r=0.8 -> (1 + 1.2/2.8)/2.
	if got, want := Fstar(3, 0.8), (1+1.2/2.8)/2; !xmath.Close(got, want, 1e-12) {
		t.Errorf("Fstar(3,0.8) = %v, want %v", got, want)
	}
	// Decreasing in m: more verifications reduce re-executed work.
	for m := 1; m < 20; m++ {
		if !(Fstar(m+1, 0.8) < Fstar(m, 0.8)) {
			t.Errorf("Fstar not decreasing at m=%d", m)
		}
	}
}

func TestEFKnownValues(t *testing.T) {
	c, _ := hera()
	// PD: V* + CM + CD.
	if got := EF(core.PD, c, 7, 9); !xmath.Close(got, 330.8, 1e-9) {
		t.Errorf("EF(PD) = %v, want 330.8 (n,m must be clamped)", got)
	}
	// PDV*: mV* + CM + CD with m=3.
	if got, want := EF(core.PDVStar, c, 1, 3), 3*15.4+15.4+300; !xmath.Close(got, want, 1e-9) {
		t.Errorf("EF(PDV*,m=3) = %v, want %v", got, want)
	}
	// PDV: (m-1)V + V* + CM + CD with m=3.
	if got, want := EF(core.PDV, c, 1, 3), 2*0.154+330.8; !xmath.Close(got, want, 1e-9) {
		t.Errorf("EF(PDV,m=3) = %v, want %v", got, want)
	}
	// PDM: n(V*+CM) + CD with n=4.
	if got, want := EF(core.PDM, c, 4, 1), 4*30.8+300.0; !xmath.Close(got, want, 1e-9) {
		t.Errorf("EF(PDM,n=4) = %v, want %v", got, want)
	}
	// PDMV: n(m-1)V + n(V*+CM) + CD with n=2, m=3.
	if got, want := EF(core.PDMV, c, 2, 3), 2*2*0.154+2*30.8+300; !xmath.Close(got, want, 1e-9) {
		t.Errorf("EF(PDMV) = %v, want %v", got, want)
	}
}

func TestRWKnownValues(t *testing.T) {
	c, r := hera()
	// PD: λs + λf/2.
	if got, want := RW(core.PD, c, r, 3, 3), 3.38e-6+9.46e-7/2; !xmath.Close(got, want, 1e-12) {
		t.Errorf("RW(PD) = %v, want %v", got, want)
	}
	// PDM with n=4: λs/4 + λf/2.
	if got, want := RW(core.PDM, c, r, 4, 1), 3.38e-6/4+9.46e-7/2; !xmath.Close(got, want, 1e-12) {
		t.Errorf("RW(PDM) = %v, want %v", got, want)
	}
	// PDV with m=1 reduces to PD.
	if got, want := RW(core.PDV, c, r, 1, 1), RW(core.PD, c, r, 1, 1); !xmath.Close(got, want, 1e-15) {
		t.Errorf("RW(PDV,m=1) = %v, want %v", got, want)
	}
	// PDMV* uses recall 1.
	got := RW(core.PDMVStar, c, r, 2, 4)
	want := (1+1.0/4)/2*3.38e-6/2 + 9.46e-7/2
	if !xmath.Close(got, want, 1e-12) {
		t.Errorf("RW(PDMV*) = %v, want %v", got, want)
	}
}

func TestTheorem1HeraPD(t *testing.T) {
	c, r := hera()
	plan, err := Optimal(core.PD, c, r)
	if err != nil {
		t.Fatal(err)
	}
	// W* = sqrt(330.8 / 3.853e-6) = 9265.9 s (~2.6 h).
	if !xmath.Close(plan.W, 9265.9, 1e-3) {
		t.Errorf("W* = %v, want ~9265.9", plan.W)
	}
	if !xmath.Close(plan.Overhead, 0.071404, 1e-3) {
		t.Errorf("H* = %v, want ~0.0714", plan.Overhead)
	}
	if plan.N != 1 || plan.M != 1 {
		t.Errorf("PD plan has n=%d m=%d, want 1,1", plan.N, plan.M)
	}
}

func TestYoungDalyLimitFailStopOnly(t *testing.T) {
	// With λs = 0 and free verification/memory checkpoint, PD reduces
	// to the classical Young/Daly W* = sqrt(2 CD/λf).
	c := core.Costs{DiskCkpt: 300, DiskRec: 300, Recall: 1}
	r := core.Rates{FailStop: 1e-5}
	plan, err := Optimal(core.PD, c, r)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * 300 / 1e-5)
	if !xmath.Close(plan.W, want, 1e-9) {
		t.Errorf("W* = %v, want Young/Daly %v", plan.W, want)
	}
}

func TestSilentOnlyLimit(t *testing.T) {
	// With λf = 0, PD's optimum is sqrt((V*+CM)/λs) when CD = 0.
	c := core.Costs{MemCkpt: 10, MemRec: 10, GuarVer: 5, Recall: 1}
	r := core.Rates{Silent: 1e-5}
	plan, err := Optimal(core.PD, c, r)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(15 / 1e-5)
	if !xmath.Close(plan.W, want, 1e-9) {
		t.Errorf("W* = %v, want %v", plan.W, want)
	}
}

func TestOptimalHeraAllKindsOrdering(t *testing.T) {
	// Richer patterns never do worse (first-order) on a real platform:
	// H*(PDMV) <= H*(PDMV*) <= ... is not a strict chain, but the
	// endpoints must hold and every family beats or matches PD.
	c, r := hera()
	base, err := Optimal(core.PD, c, r)
	if err != nil {
		t.Fatal(err)
	}
	var best float64 = math.Inf(1)
	for _, k := range core.Kinds() {
		plan, err := Optimal(k, c, r)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if plan.Overhead > base.Overhead*(1+1e-12) {
			t.Errorf("%v overhead %v exceeds PD %v", k, plan.Overhead, base.Overhead)
		}
		if plan.Overhead < best {
			best = plan.Overhead
		}
		if err := plan.Pattern.Validate(); err != nil {
			t.Errorf("%v pattern invalid: %v", k, err)
		}
		if !xmath.Close(plan.Pattern.W, plan.W, 1e-12) {
			t.Errorf("%v pattern W mismatch", k)
		}
	}
	full, _ := Optimal(core.PDMV, c, r)
	if !xmath.Close(full.Overhead, best, 1e-9) {
		t.Errorf("PDMV %v is not the best overhead (best %v)", full.Overhead, best)
	}
}

func TestOptimalHeraPDMVParameters(t *testing.T) {
	c, r := hera()
	plan, err := Optimal(core.PDMV, c, r)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed rational optima: n̄* = 5.92, m̄* = 16.76.
	if math.Abs(plan.RationalN-5.92) > 0.02 {
		t.Errorf("RationalN = %v, want ~5.92", plan.RationalN)
	}
	if math.Abs(plan.RationalM-16.76) > 0.05 {
		t.Errorf("RationalM = %v, want ~16.76", plan.RationalM)
	}
	if plan.N < 5 || plan.N > 6 || plan.M < 16 || plan.M > 17 {
		t.Errorf("integer plan n=%d m=%d outside neighbourhood", plan.N, plan.M)
	}
	// H* ~ 0.0394 from the closed form.
	if math.Abs(plan.Overhead-0.0394) > 0.001 {
		t.Errorf("H* = %v, want ~0.0394", plan.Overhead)
	}
}

func TestOptimalDegeneratesGracefully(t *testing.T) {
	c, _ := hera()
	if _, err := Optimal(core.PDMV, c, core.Rates{}); err != ErrDegenerate {
		t.Errorf("zero rates: err = %v, want ErrDegenerate", err)
	}
	// λf = 0 makes n̄* diverge; the planner must cap, not hang or NaN.
	plan, err := Optimal(core.PDM, c, core.Rates{Silent: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != MaxSplit {
		t.Errorf("n = %d, want cap %d when disk checkpoints are never needed", plan.N, MaxSplit)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Invalid inputs are rejected.
	bad := c
	bad.Recall = 0
	if _, err := Optimal(core.PD, bad, core.Rates{Silent: 1e-6}); err == nil {
		t.Error("invalid costs should fail")
	}
	if _, err := Optimal(core.PD, c, core.Rates{Silent: -1}); err == nil {
		t.Error("invalid rates should fail")
	}
}

// TestTableOverheadMatchesContinuousMinimum verifies the Table 1
// closed-form H* against a brute-force continuous minimisation of
// 2·sqrt(oef·orw) over real (n, m) for each family.
func TestTableOverheadMatchesContinuousMinimum(t *testing.T) {
	c, r := hera()
	for _, k := range core.Kinds() {
		prodAt := func(n, m float64) float64 {
			return efCont(k, c, n, m) * rwCont(k, c, r, n, m)
		}
		// Nested golden-section over n and m in generous ranges.
		inner := func(n float64) float64 {
			if !k.MultiChunk() {
				return prodAt(n, 1)
			}
			_, fm := xmath.MinimizeGolden(func(m float64) float64 { return prodAt(n, math.Max(m, 1)) }, 1, 200, 1e-12)
			return fm
		}
		var fmin float64
		if k.MultiSegment() {
			_, fmin = xmath.MinimizeGolden(func(n float64) float64 { return inner(math.Max(n, 1)) }, 1, 200, 1e-12)
		} else {
			fmin = inner(1)
		}
		numeric := 2 * math.Sqrt(fmin)
		closed := TableOverhead(k, c, r)
		if !xmath.Close(numeric, closed, 1e-5) {
			t.Errorf("%v: numeric continuous H* %v vs closed form %v", k, numeric, closed)
		}
	}
}

func TestIntegerPlanNeverBeatsContinuous(t *testing.T) {
	c, r := hera()
	for _, k := range core.Kinds() {
		plan, err := Optimal(k, c, r)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Overhead < TableOverhead(k, c, r)-1e-12 {
			t.Errorf("%v: integer plan %v beats continuous bound %v", k, plan.Overhead, TableOverhead(k, c, r))
		}
		// And should be within 2% of it for realistic parameters.
		if plan.Overhead > TableOverhead(k, c, r)*1.02 {
			t.Errorf("%v: integer plan %v far above continuous %v", k, plan.Overhead, TableOverhead(k, c, r))
		}
	}
}

func TestOverheadAtMinimisedAtWstar(t *testing.T) {
	c, r := hera()
	for _, k := range core.Kinds() {
		plan, err := Optimal(k, c, r)
		if err != nil {
			t.Fatal(err)
		}
		f := func(w float64) float64 { return OverheadAt(k, c, r, plan.N, plan.M, w) }
		w, _ := xmath.MinimizeGolden(f, plan.W/100, plan.W*100, 1e-12)
		if !xmath.Close(w, plan.W, 1e-4) {
			t.Errorf("%v: OverheadAt minimised at %v, plan says %v", k, w, plan.W)
		}
		if !xmath.Close(f(plan.W), plan.Overhead, 1e-9) {
			t.Errorf("%v: OverheadAt(W*) = %v, plan overhead %v", k, f(plan.W), plan.Overhead)
		}
	}
}

func TestExpectedLost(t *testing.T) {
	// Zero rate or zero work: nothing lost.
	if ExpectedLost(0, 100) != 0 || ExpectedLost(1e-6, 0) != 0 {
		t.Error("degenerate ExpectedLost should be 0")
	}
	// Small λw: E[T_lost] ~ w/2.
	if got := ExpectedLost(1e-9, 100); !xmath.Close(got, 50, 1e-6) {
		t.Errorf("ExpectedLost small = %v, want ~50", got)
	}
	// Large λw: E[T_lost] -> 1/λ.
	if got := ExpectedLost(1, 1e9); !xmath.Close(got, 1, 1e-9) {
		t.Errorf("ExpectedLost large = %v, want ~1", got)
	}
	// Series branch agreement: at λw just above the switch threshold
	// the exact expression and the series must agree to high accuracy.
	w := 100.0
	lambda := 1.05e-4 / w // exact branch, just above the switch
	exact := ExpectedLost(lambda, w)
	series := w/2 - lambda*w*w/12
	if math.Abs(exact-series) > 1e-8 {
		t.Errorf("branch mismatch: exact %v vs series %v", exact, series)
	}
}

// prop1Exact is an independent implementation of the exact PD formula
// from the proof of Proposition 1.
func prop1Exact(w float64, c core.Costs, r core.Rates) float64 {
	lf, ls := r.FailStop, r.Silent
	eAll := math.Exp((lf + ls) * w)
	eS := math.Exp(ls * w)
	return (eAll-eS)/lf - w*eS + eS*(w+c.GuarVer) + c.DiskCkpt + c.MemCkpt +
		(eAll-eS)*c.DiskRec + (eAll-1)*c.MemRec
}

func TestExactMatchesProp1ClosedForm(t *testing.T) {
	c, r := hera()
	for _, w := range []float64{500, 5000, 9265.9, 50000} {
		p, err := core.Layout(core.PD, w, 1, 1, c.Recall)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExactExpectedTime(p, c, r)
		if err != nil {
			t.Fatal(err)
		}
		want := prop1Exact(w, c, r)
		if !xmath.Close(got, want, 1e-10) {
			t.Errorf("W=%v: exact %v vs closed form %v", w, got, want)
		}
	}
}

func TestExactZeroRatesIsErrorFree(t *testing.T) {
	c, _ := hera()
	for _, k := range core.Kinds() {
		p, err := core.Layout(k, 7200, 3, 4, c.Recall)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExactExpectedTime(p, c, core.Rates{})
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.Close(got, p.ErrorFreeTime(c), 1e-10) {
			t.Errorf("%v: exact at zero rates %v != error-free %v", k, got, p.ErrorFreeTime(c))
		}
	}
}

func TestExactMonotoneInRates(t *testing.T) {
	c, r := hera()
	p, err := core.Layout(core.PDMV, 20000, 4, 6, c.Recall)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, scale := range []float64{0, 0.5, 1, 2, 4} {
		e, err := ExactExpectedTime(p, c, r.Scale(scale, scale))
		if err != nil {
			t.Fatal(err)
		}
		if e <= prev {
			t.Errorf("expected time not increasing at scale %v: %v <= %v", scale, e, prev)
		}
		prev = e
	}
}

func TestExactCloseToSecondOrderAtLargeMTBF(t *testing.T) {
	c, r := hera()
	for _, k := range core.Kinds() {
		plan, err := Optimal(k, c, r)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactExpectedTime(plan.Pattern, c, r)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := SecondOrderExpectedTime(plan.Pattern, c, r)
		if err != nil {
			t.Fatal(err)
		}
		// The truncation drops O(√λ) terms; at Hera scale the relative
		// gap must be well below 1%.
		if math.Abs(exact-approx)/exact > 0.01 {
			t.Errorf("%v: exact %v vs second-order %v", k, exact, approx)
		}
	}
}

func TestSecondOrderMatchesProp2Form(t *testing.T) {
	// For PDM with equal segments, Prop 2 gives
	// E = W + n(V*+CM) + CD + (λs/n + λf/2)W².
	c, r := hera()
	n := 4
	w := 20000.0
	p, err := core.Layout(core.PDM, w, n, 1, c.Recall)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SecondOrderExpectedTime(p, c, r)
	if err != nil {
		t.Fatal(err)
	}
	want := w + float64(n)*(c.GuarVer+c.MemCkpt) + c.DiskCkpt +
		(r.Silent/float64(n)+r.FailStop/2)*w*w
	if !xmath.Close(got, want, 1e-12) {
		t.Errorf("Prop2: got %v, want %v", got, want)
	}
}

func TestSecondOrderMatchesProp3Form(t *testing.T) {
	// For PDV with the Theorem 3 chunks, Prop 3 gives
	// E = W + (m-1)V + V* + CM + CD + (λs f* + λf/2)W².
	c, r := hera()
	m := 5
	w := 9000.0
	p, err := core.Layout(core.PDV, w, 1, m, c.Recall)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SecondOrderExpectedTime(p, c, r)
	if err != nil {
		t.Fatal(err)
	}
	want := w + float64(m-1)*c.PartVer + c.GuarVer + c.MemCkpt + c.DiskCkpt +
		(r.Silent*Fstar(m, c.Recall)+r.FailStop/2)*w*w
	if !xmath.Close(got, want, 1e-9) {
		t.Errorf("Prop3: got %v, want %v", got, want)
	}
}

func TestProp1ExpectedTimeExpansion(t *testing.T) {
	c, r := hera()
	w := 9265.9
	// Prop 1 keeps linear recovery terms; it must sit between the bare
	// second-order form and the exact value, and within 0.1% of exact.
	exactP, _ := core.Layout(core.PD, w, 1, 1, c.Recall)
	exact, err := ExactExpectedTime(exactP, c, r)
	if err != nil {
		t.Fatal(err)
	}
	approx := Prop1ExpectedTime(w, c, r)
	if math.Abs(exact-approx)/exact > 1e-3 {
		t.Errorf("Prop1 %v vs exact %v", approx, exact)
	}
}

func TestExactPDMVReducesToStarWhenRecallOne(t *testing.T) {
	// With r = 1 and V = V*, the partial-interior pattern behaves
	// exactly like the guaranteed-interior one.
	c, r := hera()
	c.Recall = 1
	c.PartVer = c.GuarVer
	pPart, err := core.Layout(core.PDMV, 20000, 3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	pStar, err := core.Layout(core.PDMVStar, 20000, 3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExactExpectedTime(pPart, c, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExactExpectedTime(pStar, c, r)
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.Close(a, b, 1e-12) {
		t.Errorf("r=1 reduction: %v vs %v", a, b)
	}
}

func TestExactRejectsInvalid(t *testing.T) {
	c, r := hera()
	if _, err := ExactExpectedTime(core.Pattern{}, c, r); err == nil {
		t.Error("invalid pattern should fail")
	}
	p, _ := core.Layout(core.PD, 100, 1, 1, 1)
	bad := c
	bad.Recall = -1
	if _, err := ExactExpectedTime(p, bad, r); err == nil {
		t.Error("invalid costs should fail")
	}
	if _, err := ExactExpectedTime(p, c, core.Rates{FailStop: math.NaN()}); err == nil {
		t.Error("invalid rates should fail")
	}
}

func TestExactOverheadNearPredictedAtOptimum(t *testing.T) {
	// At the Table-1 optimum the first-order overhead and the exact
	// overhead agree closely on Hera (the paper reports <1% absolute).
	c, r := hera()
	for _, k := range core.Kinds() {
		plan, err := Optimal(k, c, r)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactExpectedTime(plan.Pattern, c, r)
		if err != nil {
			t.Fatal(err)
		}
		hExact := exact/plan.W - 1
		if math.Abs(hExact-plan.Overhead) > 0.01 {
			t.Errorf("%v: exact overhead %v vs predicted %v", k, hExact, plan.Overhead)
		}
		if hExact < plan.Overhead-1e-9 {
			// First-order prediction is optimistic (paper §6.2.2).
			t.Errorf("%v: prediction %v above exact %v", k, plan.Overhead, hExact)
		}
	}
}

func TestExpectedOpCosts(t *testing.T) {
	c, _ := hera()
	// Zero rate: expected costs equal base costs.
	oc := ExpectedOpCosts(c, 0, 1e4)
	if oc.DiskRec != c.DiskRec || oc.MemRec != c.MemRec ||
		oc.DiskCkpt != c.DiskCkpt || oc.MemCkpt != c.MemCkpt {
		t.Errorf("zero-rate op costs changed: %+v", oc)
	}
	// Realistic rate: E(op) = op + O(λ), i.e. small positive inflation.
	lf := 9.46e-7
	oc = ExpectedOpCosts(c, lf, 1e4)
	if oc.DiskRec <= c.DiskRec || oc.DiskRec > c.DiskRec*1.01 {
		t.Errorf("E(RD) = %v, want slightly above %v", oc.DiskRec, c.DiskRec)
	}
	if oc.MemRec <= c.MemRec || oc.MemRec > c.MemRec+1 {
		t.Errorf("E(RM) = %v, want slightly above %v", oc.MemRec, c.MemRec)
	}
	if oc.DiskCkpt <= c.DiskCkpt || oc.MemCkpt <= c.MemCkpt {
		t.Error("expected checkpoint costs should exceed base costs")
	}
	// Higher failure rate inflates more.
	oc10 := ExpectedOpCosts(c, lf*10, 1e4)
	if oc10.DiskCkpt <= oc.DiskCkpt {
		t.Error("op costs should grow with the fail-stop rate")
	}
}

func TestPlanString(t *testing.T) {
	c, r := hera()
	plan, err := Optimal(core.PDMV, c, r)
	if err != nil {
		t.Fatal(err)
	}
	if plan.String() == "" {
		t.Error("empty String")
	}
}

func TestRationalNMProperty(t *testing.T) {
	// For any valid costs/rates, rational optima are >= 1 and finite
	// unless λf = 0 (where n̄* legitimately diverges).
	f := func(cd, cm, vs, v, rRaw, lfRaw, lsRaw float64) bool {
		c := core.Costs{
			DiskCkpt: math.Abs(math.Mod(cd, 1e4)) + 1,
			MemCkpt:  math.Abs(math.Mod(cm, 1e3)) + 1,
			GuarVer:  math.Abs(math.Mod(vs, 1e3)) + 1,
			PartVer:  math.Abs(math.Mod(v, 10)) + 0.01,
			Recall:   math.Mod(math.Abs(rRaw), 0.98) + 0.01,
		}
		c.DiskRec, c.MemRec = c.DiskCkpt, c.MemCkpt
		r := core.Rates{
			FailStop: math.Abs(math.Mod(lfRaw, 1e-4)) + 1e-9,
			Silent:   math.Abs(math.Mod(lsRaw, 1e-4)) + 1e-9,
		}
		for _, k := range core.Kinds() {
			n, m := RationalNM(k, c, r)
			if math.IsNaN(n) || math.IsNaN(m) || n < 1 || m < 1 {
				return false
			}
			if math.IsInf(n, 0) || math.IsInf(m, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimalPropertyIntegerNeighbourhoodIsOptimal(t *testing.T) {
	// The chosen (n*, m*) must beat all integer points in a window
	// around it, confirming the convexity-based selection.
	c, r := hera()
	for _, k := range core.Kinds() {
		plan, err := Optimal(k, c, r)
		if err != nil {
			t.Fatal(err)
		}
		best := plan.Overhead
		for dn := -2; dn <= 2; dn++ {
			for dm := -2; dm <= 2; dm++ {
				n, m := plan.N+dn, plan.M+dm
				if n < 1 || m < 1 {
					continue
				}
				if !k.MultiSegment() && n != 1 {
					continue
				}
				if !k.MultiChunk() && m != 1 {
					continue
				}
				h := 2 * math.Sqrt(product(k, c, r, n, m))
				if h < best-1e-12 {
					t.Errorf("%v: (n=%d,m=%d) gives %v < plan %v", k, n, m, h, best)
				}
			}
		}
	}
}
