package analytic

import (
	"fmt"
	"math"

	"respat/internal/core"
)

// EventRates predicts the steady-state operation frequencies of a
// pattern — the quantities plotted in Figures 6c-6e of the paper.
// Rates are per second of wall-clock time; multiply by 3600 or 86400
// for the per-hour and per-day figures.
//
// The derivation is first-order: one pattern occupies W(1+H) seconds
// of wall clock where H is the expected overhead, and in that span it
// completes one disk checkpoint, n memory checkpoints, n guaranteed
// verifications and n(m-1) interior verifications. Disk recoveries
// happen at the fail-stop rate λf (every fail-stop error forces one).
// Standalone memory recoveries happen at the rate of *detected,
// unmasked* silent errors: corruptions arrive at λs on computation
// time — a fraction W/(W(1+H)) of wall time — and a corruption is
// masked when a fail-stop error wipes it before its verification
// triggers, a second-order effect bounded by MaskedShare.
type EventRatesOut struct {
	DiskCkpts  float64 // completed disk checkpoints /s
	MemCkpts   float64 // completed memory checkpoints /s
	GuarVerifs float64 // guaranteed verifications /s
	PartVerifs float64 // interior (partial) verifications /s
	DiskRecs   float64 // disk recoveries /s
	MemRecs    float64 // standalone memory recoveries /s
	// MaskedShare estimates the fraction of silent errors wiped by a
	// fail-stop error before detection.
	MaskedShare float64
}

// EventRates computes the predicted frequencies for a plan.
func EventRates(p Plan, c core.Costs, r core.Rates) EventRatesOut {
	wall := p.W * (1 + p.Overhead) // expected wall-clock per pattern
	perPattern := 1 / wall
	n := float64(p.N)
	m := float64(p.M)
	var out EventRatesOut
	out.DiskCkpts = perPattern
	out.MemCkpts = n * perPattern
	out.GuarVerifs = n * perPattern
	out.PartVerifs = n * (m - 1) * perPattern
	out.DiskRecs = r.FailStop
	// A corruption struck at a uniformly random point of a segment is
	// masked if a fail-stop error arrives before the segment's
	// guaranteed verification; the exposure is at most one segment,
	// W/n work plus its verification overhead, i.e. roughly half a
	// segment on average.
	segWall := wall / n
	out.MaskedShare = 1 - math.Exp(-r.FailStop*segWall/2)
	computeShare := p.W / wall
	out.MemRecs = r.Silent * computeShare * (1 - out.MaskedShare)
	return out
}

// Makespan estimates the total wall-clock of an application of wbase
// seconds of base (resilience-free) work executed under the plan, via
// the Section 2.4 approximation W_final ≈ (E(P)/W)·W_base =
// (1 + H)·W_base.
func Makespan(p Plan, wbase float64) float64 {
	return (1 + p.Overhead) * wbase
}

// ExactExpectedTimeWithOpErrors evaluates the exact expected pattern
// time under the Section 5 model, where fail-stop errors also strike
// verifications, checkpoints and recoveries. It combines the exact
// renewal evaluator with the expected-operation-cost recursions
// (Equations 30-33) through a fixed-point iteration: the op costs
// depend on the expected re-execution time E(T_rec), which depends on
// the pattern time computed with those op costs. The iteration
// converges geometrically (the coupling is O(λ·cost)); a handful of
// rounds reaches float64 precision at realistic MTBFs.
//
// Verification costs are folded into their preceding chunks for
// fail-stop exposure (the Section 5 treatment), which matches the
// simulator's ErrorsInOps mode to first order; the residual gap is
// O(λ²) and covered by the simulator cross-validation tests.
func ExactExpectedTimeWithOpErrors(p core.Pattern, c core.Costs, r core.Rates) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if err := r.Validate(); err != nil {
		return 0, err
	}
	// Start from the ops-error-free evaluation.
	e, err := exactWithVerifExposure(p, c, r)
	if err != nil {
		return 0, err
	}
	for i := 0; i < 20; i++ {
		// Use the current pattern-time estimate as E(T_rec): an upper
		// bound for mid-pattern failures, tight for end-of-pattern ones.
		oc := ExpectedOpCosts(c, r.FailStop, e/2)
		adjusted := c
		adjusted.DiskRec = oc.DiskRec
		adjusted.MemRec = oc.MemRec
		adjusted.DiskCkpt = oc.DiskCkpt
		adjusted.MemCkpt = oc.MemCkpt
		next, err := exactWithVerifExposure(p, adjusted, r)
		if err != nil {
			return 0, err
		}
		if math.Abs(next-e) <= 1e-12*math.Abs(next) {
			return next, nil
		}
		e = next
	}
	return e, nil
}

// exactWithVerifExposure is the exact evaluator with each chunk's
// fail-stop exposure extended by its trailing verification, the §5
// treatment of verification failures.
func exactWithVerifExposure(p core.Pattern, c core.Costs, r core.Rates) (float64, error) {
	recall := c.Recall
	if p.InteriorGuaranteed {
		recall = 1
	}
	interiorCost := c.PartVer
	if p.InteriorGuaranteed {
		interiorCost = c.GuarVer
	}
	var prevSum float64
	var total float64
	for i := 0; i < p.N(); i++ {
		ei := segmentTimeVerifExposed(p, c, r, i, prevSum, recall, interiorCost)
		if math.IsInf(ei, 1) || math.IsNaN(ei) {
			return 0, fmt.Errorf("analytic: expected time diverged at segment %d", i)
		}
		total += ei
		prevSum += ei
	}
	total += c.DiskCkpt
	return total, nil
}

// segmentTimeVerifExposed mirrors exactSegmentTime with the chunk+verif
// exposure of Section 5: the probability of a fail-stop interruption
// covers w+V, and the expected loss is computed over w+V.
func segmentTimeVerifExposed(p core.Pattern, c core.Costs, r core.Rates, i int, prevSum, recall, interiorCost float64) float64 {
	m := p.M(i)
	var s float64
	prodPf := 1.0
	prodPs := 1.0
	g := 0.0
	piAll := 1.0
	for j := 0; j < m; j++ {
		w := p.ChunkWork(i, j)
		verif := interiorCost
		if j == m-1 {
			verif = c.GuarVer
		}
		exposed := w + verif
		pf := probAtLeastOne(r.FailStop, exposed)
		ps := probAtLeastOne(r.Silent, w)
		q := prodPf * (prodPs + g)
		if pf > 0 {
			s += q * pf * (ExpectedLost(r.FailStop, exposed) + c.DiskRec + prevSum)
		}
		s += q * (1 - pf) * exposed
		g = (g + prodPs*ps) * (1 - recall)
		prodPs *= 1 - ps
		prodPf *= 1 - pf
		piAll *= (1 - pf) * (1 - ps)
	}
	return c.MemCkpt + ((1-piAll)*c.MemRec+s)/piAll
}
