package analytic

import (
	"fmt"
	"math"

	"respat/internal/core"
	"respat/internal/xmath"
)

// Evaluator evaluates exact renewal-equation expected times for one
// fixed (costs, rates) configuration. It validates the configuration
// once at construction and caches the W-independent invariants of every
// Theorem 4 layout it sees, so planners that probe many pattern lengths
// at the same (n, m) — e.g. the golden-section search of
// optimize.OptimizeW — pay for validation and layout construction once
// and for ≤ 2 distinct chunk-size evaluations per probe instead of
// O(m).
//
// The fast path exploits the structure of the optimal interior layout:
// all n segments are equal, and the Theorem 3 chunk row has only two
// distinct sizes (first = last, interior equal). Per probe it therefore
// needs a constant number of exp/expm1 evaluations; the remaining
// per-chunk recurrences are plain arithmetic. Arbitrary patterns are
// handled by ExpectedTime, which shares the validated configuration but
// walks every chunk.
//
// An Evaluator is not safe for concurrent use: the layout cache is
// mutated by EvalLayout. Give each goroutine its own Evaluator.
type Evaluator struct {
	costs   core.Costs
	rates   core.Rates
	layouts map[layoutKey]*layoutInfo
}

type layoutKey struct {
	kind core.Kind
	n, m int
}

// layoutInfo caches the W-independent invariants of family kind's
// Theorem 4 layout with n segments of m chunks.
type layoutInfo struct {
	n, m int
	// edgeFrac and intFrac are the Theorem 3 chunk fractions of the
	// first/last and interior chunks of a segment (intFrac is unused
	// when m <= 2).
	edgeFrac, intFrac float64
	// recall is the detection recall of interior verifications
	// (costs.Recall for the partial families, 1 otherwise).
	recall float64
	// interiorCost is the cost of one interior verification.
	interiorCost float64
}

// NewEvaluator validates the costs and rates once and returns an
// evaluator bound to them.
func NewEvaluator(c core.Costs, r core.Rates) (*Evaluator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &Evaluator{costs: c, rates: r}, nil
}

// Costs returns the configuration's resilience costs.
func (e *Evaluator) Costs() core.Costs { return e.costs }

// Rates returns the configuration's error rates.
func (e *Evaluator) Rates() core.Rates { return e.rates }

// layout returns the cached invariants of family k at (n, m), clamping
// the dimensions the family fixes exactly as core.Layout does.
func (e *Evaluator) layout(k core.Kind, n, m int) (*layoutInfo, error) {
	n, m = clampNM(k, n, m)
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("%w: n=%d m=%d", core.ErrInvalidPattern, n, m)
	}
	key := layoutKey{kind: k, n: n, m: m}
	if li, ok := e.layouts[key]; ok {
		return li, nil
	}
	li := &layoutInfo{n: n, m: m, recall: 1, interiorCost: e.costs.GuarVer}
	if k.PartialVerifs() {
		li.recall = e.costs.Recall
		li.interiorCost = e.costs.PartVer
	}
	if m == 1 {
		li.edgeFrac = 1
	} else {
		// Theorem 3 sizes: first and last chunks 1/den, interior r/den,
		// with den = (m-2)r + 2 (equal chunks when r = 1).
		den := float64(m-2)*li.recall + 2
		li.edgeFrac = 1 / den
		li.intFrac = li.recall / den
	}
	if e.layouts == nil {
		e.layouts = make(map[layoutKey]*layoutInfo)
	}
	e.layouts[key] = li
	return li, nil
}

// EvalLayout returns the exact expected execution time E(P) of family
// k's Theorem 4 layout with n segments of m chunks at pattern length w.
// It agrees with ExactExpectedTime(Layout(k, w, n, m, recall), c, r) up
// to floating-point rounding, but reuses the cached layout so repeated
// probes at the same (n, m) only rescale W.
func (e *Evaluator) EvalLayout(k core.Kind, n, m int, w float64) (float64, error) {
	li, err := e.layout(k, n, m)
	if err != nil {
		return 0, err
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return 0, fmt.Errorf("%w: W=%v", core.ErrInvalidPattern, w)
	}
	c, r := e.costs, e.rates
	wi := w / float64(li.n)
	pi := math.Exp(-(r.FailStop + r.Silent) * wi) // Π_i, same for all segments

	// Per-distinct-chunk-size quantities: the only transcendental work
	// of the whole evaluation.
	wEdge := li.edgeFrac * wi
	pfE := probAtLeastOne(r.FailStop, wEdge)
	psE := probAtLeastOne(r.Silent, wEdge)
	lostE := ExpectedLost(r.FailStop, wEdge)
	var wInt, pfI, psI, lostI float64
	if li.m > 2 {
		wInt = li.intFrac * wi
		pfI = probAtLeastOne(r.FailStop, wInt)
		psI = probAtLeastOne(r.Silent, wInt)
		lostI = ExpectedLost(r.FailStop, wInt)
	}

	// First-attempt spending of one segment, with the replay of earlier
	// segments factored out: S_i = s0 + pfq·Σ_{k<i} E_k, where pfq is
	// the total probability-weighted chance a fail-stop interrupts the
	// attempt. All segments are identical, so this runs once.
	var s0 xmath.Accumulator
	pfq := 0.0
	prodPf := 1.0 // Π_{k<j}(1 - p^f_k)
	prodPs := 1.0 // Π_{k<j}(1 - p^s_k)
	g := 0.0      // probability of an earlier silent error missed so far
	for j := 0; j < li.m; j++ {
		wj, pf, ps, lost := wInt, pfI, psI, lostI
		if j == 0 || j == li.m-1 {
			wj, pf, ps, lost = wEdge, pfE, psE, lostE
		}
		q := prodPf * (prodPs + g)
		verif := li.interiorCost
		if j == li.m-1 {
			verif = c.GuarVer
		}
		if pf > 0 {
			s0.Add(q * pf * (lost + c.DiskRec))
			pfq += q * pf
		}
		s0.Add(q * (1 - pf) * (wj + verif))
		g = (g + prodPs*ps) * (1 - li.recall)
		prodPs *= 1 - ps
		prodPf *= 1 - pf
	}

	s0v := s0.Value()
	var total xmath.Accumulator
	prevSum := 0.0 // Σ_{k<i} E_k
	for i := 0; i < li.n; i++ {
		ei := c.MemCkpt + ((1-pi)*c.MemRec+s0v+pfq*prevSum)/pi
		if math.IsInf(ei, 1) || math.IsNaN(ei) {
			return 0, fmt.Errorf("analytic: expected time diverged at segment %d", i)
		}
		total.Add(ei)
		prevSum += ei
	}
	total.Add(c.DiskCkpt)
	return total.Value(), nil
}

// EvalLayoutOverhead returns the exact expected overhead E(P)/W - 1 of
// the Theorem 4 layout, the quantity minimised by the exact planner.
func (e *Evaluator) EvalLayoutOverhead(k core.Kind, n, m int, w float64) (float64, error) {
	t, err := e.EvalLayout(k, n, m, w)
	if err != nil {
		return 0, err
	}
	return t/w - 1, nil
}

// ExpectedTime evaluates an arbitrary pattern under the exact renewal
// equations (the general path: every chunk is walked individually).
// Costs and rates were validated at construction; only the pattern is
// validated here.
func (e *Evaluator) ExpectedTime(p core.Pattern) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	recall := e.costs.Recall
	if p.InteriorGuaranteed {
		recall = 1
	}
	interiorCost := e.costs.PartVer
	if p.InteriorGuaranteed {
		interiorCost = e.costs.GuarVer
	}
	var prevSum float64 // Σ_{k<i} E_k
	var total xmath.Accumulator
	for i := 0; i < p.N(); i++ {
		ei := exactSegmentTime(p, e.costs, e.rates, i, prevSum, recall, interiorCost)
		if math.IsInf(ei, 1) || math.IsNaN(ei) {
			return 0, fmt.Errorf("analytic: expected time diverged at segment %d", i)
		}
		total.Add(ei)
		prevSum += ei
	}
	total.Add(e.costs.DiskCkpt)
	return total.Value(), nil
}
