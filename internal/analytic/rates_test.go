package analytic

import (
	"math"
	"testing"

	"respat/internal/core"
	"respat/internal/xmath"
)

func TestEventRatesHeraPDMV(t *testing.T) {
	c, r := hera()
	plan, err := Optimal(core.PDMV, c, r)
	if err != nil {
		t.Fatal(err)
	}
	er := EventRates(plan, c, r)
	// One disk checkpoint per pattern: ~0.137/hour at W*~7h.
	if got := er.DiskCkpts * 3600; math.Abs(got-0.137) > 0.01 {
		t.Errorf("disk ckpts/hour = %v, want ~0.137", got)
	}
	// n per pattern memory checkpoints.
	if !xmath.Close(er.MemCkpts, float64(plan.N)*er.DiskCkpts, 1e-12) {
		t.Errorf("mem ckpt rate %v != n x disk rate", er.MemCkpts)
	}
	// Disk recoveries per day track λf: 0.0817.
	if got := er.DiskRecs * 86400; math.Abs(got-0.0817) > 0.001 {
		t.Errorf("disk recs/day = %v, want ~0.0817", got)
	}
	// Memory recoveries per day slightly below the silent rate (~0.29).
	memPerDay := er.MemRecs * 86400
	silentPerDay := r.Silent * 86400
	if !(memPerDay < silentPerDay && memPerDay > 0.8*silentPerDay) {
		t.Errorf("mem recs/day = %v, want a bit below %v", memPerDay, silentPerDay)
	}
	// Verification totals: n(m-1) partial + n guaranteed per pattern.
	wantVerifs := float64(plan.N*(plan.M-1)+plan.N) * er.DiskCkpts
	if !xmath.Close(er.PartVerifs+er.GuarVerifs, wantVerifs, 1e-12) {
		t.Errorf("verif rate = %v, want %v", er.PartVerifs+er.GuarVerifs, wantVerifs)
	}
	if er.MaskedShare < 0 || er.MaskedShare > 0.01 {
		t.Errorf("masked share = %v, want tiny at Hera scale", er.MaskedShare)
	}
}

func TestEventRatesMaskedShareGrowsWithFailRate(t *testing.T) {
	c, r := hera()
	plan, err := Optimal(core.PDMV, c, r)
	if err != nil {
		t.Fatal(err)
	}
	low := EventRates(plan, c, r)
	high := EventRates(plan, c, r.Scale(100, 1))
	if !(high.MaskedShare > low.MaskedShare) {
		t.Errorf("masked share should grow with lambda_f: %v vs %v", high.MaskedShare, low.MaskedShare)
	}
}

func TestExactWithOpErrorsExceedsPlainExact(t *testing.T) {
	// Exposing operations to failures can only lengthen the execution.
	c, r := hera()
	for _, k := range core.Kinds() {
		plan, err := Optimal(k, c, r)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := ExactExpectedTime(plan.Pattern, c, r)
		if err != nil {
			t.Fatal(err)
		}
		withOps, err := ExactExpectedTimeWithOpErrors(plan.Pattern, c, r)
		if err != nil {
			t.Fatal(err)
		}
		if withOps <= plain {
			t.Errorf("%v: with-op-errors %v <= plain %v", k, withOps, plain)
		}
		// At Hera MTBFs the difference is a small correction (<1%).
		if (withOps-plain)/plain > 0.01 {
			t.Errorf("%v: op-error correction %v too large", k, (withOps-plain)/plain)
		}
	}
}

func TestExactWithOpErrorsZeroFailRate(t *testing.T) {
	// Without fail-stop errors the two evaluators coincide: silent
	// errors never strike operations.
	c, _ := hera()
	p, err := core.Layout(core.PDV, 9000, 1, 4, c.Recall)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Rates{Silent: 3.38e-6}
	plain, err := ExactExpectedTime(p, c, r)
	if err != nil {
		t.Fatal(err)
	}
	withOps, err := ExactExpectedTimeWithOpErrors(p, c, r)
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.Close(plain, withOps, 1e-9) {
		t.Errorf("zero lambda_f: %v vs %v", plain, withOps)
	}
}

func TestExactWithOpErrorsValidation(t *testing.T) {
	c, r := hera()
	if _, err := ExactExpectedTimeWithOpErrors(core.Pattern{}, c, r); err == nil {
		t.Error("invalid pattern should fail")
	}
	p, _ := core.Layout(core.PD, 100, 1, 1, 1)
	bad := c
	bad.DiskCkpt = math.NaN()
	if _, err := ExactExpectedTimeWithOpErrors(p, bad, r); err == nil {
		t.Error("invalid costs should fail")
	}
	if _, err := ExactExpectedTimeWithOpErrors(p, c, core.Rates{FailStop: -1}); err == nil {
		t.Error("invalid rates should fail")
	}
}
