package analytic

import (
	"math"
	"testing"

	"respat/internal/core"
	"respat/internal/platform"
)

// relErr returns |a-b| / max(|a|,|b|).
func relErr(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}

// oldExactExpectedTime is the pre-Evaluator reference path: it walks
// every chunk of the concrete pattern individually.
func oldExactExpectedTime(t *testing.T, p core.Pattern, c core.Costs, r core.Rates) float64 {
	t.Helper()
	recall := c.Recall
	if p.InteriorGuaranteed {
		recall = 1
	}
	interiorCost := c.PartVer
	if p.InteriorGuaranteed {
		interiorCost = c.GuarVer
	}
	var prevSum, total float64
	for i := 0; i < p.N(); i++ {
		ei := exactSegmentTime(p, c, r, i, prevSum, recall, interiorCost)
		total += ei
		prevSum += ei
	}
	return total + c.DiskCkpt
}

// TestEvaluatorGoldenParity asserts that the fast layout path of the
// Evaluator matches the chunk-by-chunk evaluation to within 1e-12
// relative error for every family on every Table 2 platform, at the
// optimal (n*, m*, W*) and at off-optimal probes of the kind the
// golden-section search issues.
func TestEvaluatorGoldenParity(t *testing.T) {
	for _, p := range platform.Table2() {
		ev, err := NewEvaluator(p.Costs, p.Rates)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range core.Kinds() {
			plan, err := Optimal(k, p.Costs, p.Rates)
			if err != nil {
				t.Fatalf("%s/%v: %v", p.Name, k, err)
			}
			for _, probe := range []struct {
				n, m  int
				scale float64
			}{
				{plan.N, plan.M, 1},
				{plan.N, plan.M, 0.37},
				{plan.N, plan.M, 2.9},
				{plan.N + 2, plan.M + 3, 1},
				{1, 1, 0.5},
			} {
				w := plan.W * probe.scale
				pat, err := core.Layout(k, w, probe.n, probe.m, p.Costs.Recall)
				if err != nil {
					t.Fatalf("%s/%v: %v", p.Name, k, err)
				}
				want, err := ExactExpectedTime(pat, p.Costs, p.Rates)
				if err != nil {
					t.Fatalf("%s/%v: %v", p.Name, k, err)
				}
				wantOld := oldExactExpectedTime(t, pat, p.Costs, p.Rates)
				got, err := ev.EvalLayout(k, probe.n, probe.m, w)
				if err != nil {
					t.Fatalf("%s/%v: %v", p.Name, k, err)
				}
				if e := relErr(got, want); e > 1e-12 {
					t.Errorf("%s/%v n=%d m=%d x%v: evaluator %v vs wrapper %v (rel %v)",
						p.Name, k, probe.n, probe.m, probe.scale, got, want, e)
				}
				if e := relErr(got, wantOld); e > 1e-12 {
					t.Errorf("%s/%v n=%d m=%d x%v: evaluator %v vs chunk-walk %v (rel %v)",
						p.Name, k, probe.n, probe.m, probe.scale, got, wantOld, e)
				}
			}
		}
	}
}

// TestEvaluatorLayoutCacheReuse asserts that repeated probes at the
// same (family, n, m) agree bit-for-bit with the first (the cache only
// stores W-independent invariants).
func TestEvaluatorLayoutCacheReuse(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ev.EvalLayout(core.PDMV, 3, 4, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ev.EvalLayout(core.PDMV, 3, 4+i, 15000+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	again, err := ev.EvalLayout(core.PDMV, 3, 4, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Errorf("cached re-evaluation drifted: %v vs %v", first, again)
	}
}

// TestEvaluatorRejectsInvalid mirrors the wrapper's validation.
func TestEvaluatorRejectsInvalid(t *testing.T) {
	if _, err := NewEvaluator(core.Costs{Recall: 0}, core.Rates{}); err == nil {
		t.Error("zero recall should fail validation")
	}
	if _, err := NewEvaluator(core.Costs{DiskCkpt: -1, Recall: 1}, core.Rates{}); err == nil {
		t.Error("negative cost should fail validation")
	}
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.EvalLayout(core.PDMV, 2, 2, -5); err == nil {
		t.Error("negative W should fail")
	}
	if _, err := ev.EvalLayout(core.PDMV, 2, 2, math.NaN()); err == nil {
		t.Error("NaN W should fail")
	}
	if _, err := ev.EvalLayout(core.PDMV, 0, 0, 100); err == nil {
		t.Error("non-positive n, m should fail")
	}
}

// TestEvaluatorClampsFixedDimensions: families that fix n or m to 1
// ignore larger requests, exactly like core.Layout.
func TestEvaluatorClampsFixedDimensions(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ev.EvalLayout(core.PD, 5, 7, 9000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.EvalLayout(core.PD, 1, 1, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("PD should clamp (n, m) to (1, 1): %v vs %v", a, b)
	}
}
