package obs

import (
	"io"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one Prometheus label pair.
type Label struct{ Key, Value string }

// PromWriter renders the Prometheus text exposition format (version
// 0.0.4) by hand — no client library. The caller emits one Family
// header per metric name followed by that family's samples; emission
// order is code order, which is what makes the output stable enough
// to golden-test. Write errors are sticky and surfaced by Err.
type PromWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

// flush writes the line buffer.
func (p *PromWriter) flush() {
	if p.err != nil {
		p.buf = p.buf[:0]
		return
	}
	_, p.err = p.w.Write(p.buf)
	p.buf = p.buf[:0]
}

// Family emits the # HELP and # TYPE header of one metric family.
// typ is "counter", "gauge" or "histogram".
func (p *PromWriter) Family(name, help, typ string) {
	p.buf = append(p.buf, "# HELP "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = appendEscapedHelp(p.buf, help)
	p.buf = append(p.buf, "\n# TYPE "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, typ...)
	p.buf = append(p.buf, '\n')
	p.flush()
}

// Sample emits one sample line of the current family. name must match
// the family name (histogram families use the _bucket/_sum/_count
// suffixes through Hist instead).
func (p *PromWriter) Sample(name string, labels []Label, value float64) {
	p.buf = appendSample(p.buf, name, labels, value)
	p.flush()
}

// Counter emits a complete single-sample counter family.
func (p *PromWriter) Counter(name, help string, value float64) {
	p.Family(name, help, "counter")
	p.Sample(name, nil, value)
}

// Gauge emits a complete single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, value float64) {
	p.Family(name, help, "gauge")
	p.Sample(name, nil, value)
}

// Hist emits one histogram series of the current family: cumulative
// _bucket lines for every bound plus +Inf, then _sum (in seconds, the
// Prometheus base unit) and _count. labels are the series labels; the
// le label is appended after them.
func (p *PromWriter) Hist(name string, labels []Label, snap HistSnapshot) {
	le := make([]Label, len(labels)+1)
	copy(le, labels)
	for i := 0; i < NumBuckets; i++ {
		le[len(labels)] = Label{"le", formatSeconds(BucketBoundsNS[i])}
		p.buf = appendSample(p.buf, name+"_bucket", le, float64(snap.Cumulative[i]))
	}
	le[len(labels)] = Label{"le", "+Inf"}
	p.buf = appendSample(p.buf, name+"_bucket", le, float64(snap.Count))
	p.buf = appendSample(p.buf, name+"_sum", labels, float64(snap.SumNS)/1e9)
	p.buf = appendSample(p.buf, name+"_count", labels, float64(snap.Count))
	p.flush()
}

// appendSample renders `name{labels} value\n`.
func appendSample(buf []byte, name string, labels []Label, value float64) []byte {
	buf = append(buf, name...)
	if len(labels) > 0 {
		buf = append(buf, '{')
		for i, l := range labels {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, l.Key...)
			buf = append(buf, `="`...)
			buf = appendEscapedLabel(buf, l.Value)
			buf = append(buf, '"')
		}
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = appendValue(buf, value)
	buf = append(buf, '\n')
	return buf
}

// appendValue renders a sample value: integral values print without an
// exponent or decimal point (counters read naturally), everything else
// as shortest round-trip float.
func appendValue(buf []byte, v float64) []byte {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.AppendInt(buf, int64(v), 10)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// formatSeconds renders a nanosecond bound as seconds for the le
// label, trimming trailing zeros so 2_500_000ns prints "0.0025".
func formatSeconds(ns int64) string {
	s := strconv.FormatFloat(float64(ns)/1e9, 'f', 9, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// appendEscapedHelp escapes a HELP string: backslash and newline.
func appendEscapedHelp(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, `\\`...)
		case '\n':
			buf = append(buf, `\n`...)
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// appendEscapedLabel escapes a label value: backslash, quote, newline.
func appendEscapedLabel(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, `\\`...)
		case '"':
			buf = append(buf, `\"`...)
		case '\n':
			buf = append(buf, `\n`...)
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}
