package obs

import "context"

// ctxKey is the private context key type carrying a *Trace.
type ctxKey struct{}

// NewContext returns ctx carrying tr. A nil trace returns ctx
// unchanged, so the unsampled path allocates no derived context.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil. The lookup is
// allocation-free, and every Trace method is nil-safe, so callers use
// the result unconditionally.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
