package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint checks a Prometheus text exposition (version 0.0.4) the way
// `promtool check metrics` would — self-written, no dependency — and
// returns every problem found (nil when clean). Checks:
//
//   - line syntax: `# HELP`/`# TYPE` comments and `name{labels} value`
//     samples; metric and label names match the Prometheus grammar;
//     values parse as floats; label values are well-quoted.
//   - family structure: at most one HELP and one TYPE per family, both
//     before its first sample; a family's samples are contiguous (no
//     interleaving); TYPE is a known type; no duplicate series (same
//     name and label set).
//   - conventions: counter families end in _total; histogram families
//     expose _bucket/_sum/_count, every _bucket series carries le, the
//     le bounds include +Inf, and cumulative bucket counts are
//     non-decreasing with the +Inf bucket equal to _count.
func Lint(data []byte) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type family struct {
		help, typ string
		samples   int
		closed    bool // a later family started; more samples are interleaving
	}
	families := make(map[string]*family)
	order := []string{}
	series := make(map[string]int)          // name{sorted labels} -> line
	buckets := make(map[string][]bucketObs) // histogram series (sans le) -> bucket observations
	histSum := make(map[string]bool)        // histogram series with a _sum
	histCount := make(map[string]float64)   // histogram series _count values
	current := ""                           // family of the last sample/header
	base := func(name string) string {      // histogram sample name -> family name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			b := strings.TrimSuffix(name, suf)
			if b != name {
				if f, ok := families[b]; ok && f.typ == "histogram" {
					return b
				}
			}
		}
		return name
	}
	get := func(name string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{}
			families[name] = f
			order = append(order, name)
		}
		return f
	}
	enter := func(name string, line int) *family {
		f := get(name)
		if name != current {
			if f.samples > 0 || f.closed {
				fail(line, "family %s reappears after other families; samples must be contiguous", name)
			}
			if cur, ok := families[current]; ok {
				cur.closed = true
			}
			current = name
		}
		return f
	}

	lines := strings.Split(string(data), "\n")
	for i, raw := range lines {
		line := i + 1
		if raw == "" {
			continue
		}
		if strings.HasPrefix(raw, "#") {
			kind, name, rest, ok := parseComment(raw)
			if !ok {
				continue // free comment, allowed
			}
			if !validMetricName(name) {
				fail(line, "invalid metric name %q in %s", name, kind)
				continue
			}
			f := enter(name, line)
			switch kind {
			case "HELP":
				if f.help != "" {
					fail(line, "second HELP for %s", name)
				}
				if rest == "" {
					fail(line, "empty HELP for %s", name)
				}
				f.help = rest
			case "TYPE":
				if f.typ != "" {
					fail(line, "second TYPE for %s", name)
				}
				if f.samples > 0 {
					fail(line, "TYPE for %s after its samples", name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = rest
				default:
					fail(line, "unknown TYPE %q for %s", rest, name)
				}
				if rest == "counter" && !strings.HasSuffix(name, "_total") {
					fail(line, "counter %s should end in _total", name)
				}
			}
			continue
		}
		name, labels, value, err := parseSample(raw)
		if err != nil {
			fail(line, "%v", err)
			continue
		}
		famName := base(name)
		f := enter(famName, line)
		f.samples++
		if f.typ == "" {
			fail(line, "sample for %s before any TYPE", famName)
		}
		id := seriesID(name, labels)
		if prev, dup := series[id]; dup {
			fail(line, "duplicate series %s (first at line %d)", id, prev)
		}
		series[id] = line
		if f.typ == "histogram" {
			key := seriesID(famName, withoutLE(labels))
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labelValue(labels, "le")
				if !ok {
					fail(line, "histogram bucket %s without le label", id)
					continue
				}
				bound := math.Inf(1)
				if le != "+Inf" {
					if bound, err = strconv.ParseFloat(le, 64); err != nil {
						fail(line, "unparseable le %q on %s", le, id)
						continue
					}
				}
				buckets[key] = append(buckets[key], bucketObs{bound, value, line})
			case strings.HasSuffix(name, "_sum"):
				histSum[key] = true
			case strings.HasSuffix(name, "_count"):
				histCount[key] = value
			default:
				fail(line, "histogram family %s has non-histogram sample %s", famName, name)
			}
		}
	}

	// Histogram shape checks per series.
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		obs := buckets[key]
		sort.Slice(obs, func(a, b int) bool { return obs[a].bound < obs[b].bound })
		hasInf := false
		for j := range obs {
			if math.IsInf(obs[j].bound, 1) {
				hasInf = true
			}
			if j > 0 && obs[j].count < obs[j-1].count {
				fail(obs[j].line, "histogram %s buckets not cumulative: le=%g count %g < %g",
					key, obs[j].bound, obs[j].count, obs[j-1].count)
			}
		}
		if !hasInf {
			fail(obs[len(obs)-1].line, "histogram %s missing +Inf bucket", key)
		}
		count, ok := histCount[key]
		if !ok {
			fail(obs[len(obs)-1].line, "histogram %s missing _count", key)
		} else if hasInf && obs[len(obs)-1].count != count {
			fail(obs[len(obs)-1].line, "histogram %s +Inf bucket %g != _count %g",
				key, obs[len(obs)-1].count, count)
		}
		if !histSum[key] {
			fail(obs[len(obs)-1].line, "histogram %s missing _sum", key)
		}
	}
	// Families with a TYPE but no samples, or samples but no HELP.
	for _, name := range order {
		f := families[name]
		if f.typ != "" && f.samples == 0 && f.typ != "histogram" {
			errs = append(errs, fmt.Errorf("family %s has TYPE but no samples", name))
		}
		if f.samples > 0 && f.help == "" {
			errs = append(errs, fmt.Errorf("family %s has samples but no HELP", name))
		}
	}
	return errs
}

type bucketObs struct {
	bound float64
	count float64
	line  int
}

// parseComment splits `# HELP name text` / `# TYPE name type`.
func parseComment(raw string) (kind, name, rest string, ok bool) {
	s := strings.TrimPrefix(raw, "#")
	s = strings.TrimLeft(s, " ")
	for _, k := range []string{"HELP", "TYPE"} {
		if strings.HasPrefix(s, k+" ") {
			s = strings.TrimPrefix(s, k+" ")
			name, rest, _ := strings.Cut(s, " ")
			return k, name, rest, true
		}
	}
	return "", "", "", false
}

// parseSample splits `name{k="v",...} value` (no timestamp support:
// the exposition here never emits one).
func parseSample(raw string) (name string, labels []Label, value float64, err error) {
	rest := raw
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", raw)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end := findLabelsEnd(rest)
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated labels in %q", raw)
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimLeft(rest, " ")
	if rest == "" {
		return "", nil, 0, fmt.Errorf("sample %q has no value", raw)
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q: %v", rest, err)
	}
	return name, labels, value, nil
}

// findLabelsEnd locates the closing brace of a label block, honouring
// quotes and escapes.
func findLabelsEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip escaped char
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

// parseLabels parses `k="v",k2="v2"`.
func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		key := s[:eq]
		if !validLabelName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			if s[i] == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[i+1], key)
				}
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
			val.WriteByte(s[i])
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		out = append(out, Label{key, val.String()})
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

// seriesID renders a canonical series identity: name plus sorted
// labels.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func withoutLE(labels []Label) []Label {
	out := make([]Label, 0, len(labels))
	for _, l := range labels {
		if l.Key != "le" {
			out = append(out, l)
		}
	}
	return out
}

func labelValue(labels []Label, key string) (string, bool) {
	for _, l := range labels {
		if l.Key == key {
			return l.Value, true
		}
	}
	return "", false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
