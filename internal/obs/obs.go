// Package obs is respatd's zero-dependency observability substrate:
// per-request tracing with named stages, a seeded 1-in-N sampler, a
// fixed ring of recent traces (served as JSON at /debug/traces), a
// slow-request log, fixed-bucket latency histograms, a hand-rolled
// Prometheus text-exposition writer and a promtool-style lint of that
// output. It depends on nothing outside the standard library and owns
// no HTTP routes — internal/service and cmd/respatd wire it in.
//
// Hot-path contract (DESIGN.md §2.10): every entry point is safe on a
// nil *Tracer and a nil *Trace, and the unsampled path allocates
// nothing — one atomic add for the sampling decision, then nil-guarded
// no-ops. Only sampled requests pay for span recording, and only they
// appear in /debug/traces, the per-stage histograms, Server-Timing
// headers and the slow-request log.
package obs

import (
	"log"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries a trace ID between replicas (requests) and back
// to clients (responses). A forwarded request's header forces the peer
// to record its half of the trace under the same ID, which is what
// stitches one logical request across a cluster.
const TraceHeader = "X-Respat-Trace"

// Stage names one timed segment of a request. The set is closed: every
// stage gets its own latency histogram, and the Prometheus exposition
// iterates them in declaration order for stable output.
type Stage uint8

const (
	// StageDecode is request-body reading and JSON decoding.
	StageDecode Stage = iota
	// StageCacheLookup is one probe of the sharded plan cache.
	StageCacheLookup
	// StageTable is a plan-table interpolation attempt.
	StageTable
	// StageGateWait is time spent acquiring a cold-plan worker slot.
	StageGateWait
	// StageColdCompute is the planner computation itself.
	StageColdCompute
	// StagePeerForward is one hop to the key-owning replica.
	StagePeerForward
	// StageEncode is response serialisation and writing.
	StageEncode

	// StageCount sizes per-stage arrays; not a stage.
	StageCount
)

var stageNames = [StageCount]string{
	"decode", "cache_lookup", "table", "gate_wait",
	"cold_compute", "peer_forward", "encode",
}

func (s Stage) String() string {
	if s < StageCount {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one completed stage of a trace. Start is the offset from the
// trace's start, so spans order and nest without absolute clocks.
type Span struct {
	Stage   string `json:"stage"`
	StartNS int64  `json:"startNs"`
	DurNS   int64  `json:"durNs"`
	// Outcome labels how the stage ended: "hit"/"miss" for lookups,
	// "admitted"/"shed"/"cancelled" for the gate, "ok"/"error"/
	// "degraded" for computations. Empty when the stage has only one
	// way to end.
	Outcome string `json:"outcome,omitempty"`
	// Peer is the replica a peer_forward span relayed to.
	Peer string `json:"peer,omitempty"`
	// Remote is the peer's Server-Timing summary for a peer_forward
	// span: the remote half of the stitched trace, captured verbatim.
	Remote string `json:"remote,omitempty"`
}

// Record is one completed trace as served by /debug/traces.
type Record struct {
	ID       string    `json:"id"`
	Endpoint string    `json:"endpoint"`
	Start    time.Time `json:"start"`
	// ForwardedFrom names the replica that forwarded this request here;
	// empty on requests that entered the cluster at this replica.
	ForwardedFrom string `json:"forwardedFrom,omitempty"`
	Status        int    `json:"status,omitempty"`
	// Outcome is the request's overload disposition ("shed",
	// "degraded", "deadline-exceeded"); empty on ordinary requests.
	Outcome string `json:"outcome,omitempty"`
	TotalNS int64  `json:"totalNs"`
	Slow    bool   `json:"slow,omitempty"`
	Spans   []Span `json:"spans"`
}

// Config sizes a Tracer. The zero value disables sampling but still
// honours forced (forwarded) trace IDs.
type Config struct {
	// SampleEvery samples roughly 1 in N requests through a seeded
	// splitmix64 draw (1 = every request, 0 = none). Forwarded
	// requests carrying TraceHeader are always sampled, so a stitched
	// trace never loses its remote half to the peer's sampler.
	SampleEvery int
	// Ring is how many completed traces /debug/traces retains
	// (default 256).
	Ring int
	// SlowThreshold logs a sampled trace whose total latency exceeds
	// it (0 = no slow log).
	SlowThreshold time.Duration
	// Seed keys the sampling draw; two tracers with equal Seed and
	// request sequence sample identically (default 1).
	Seed uint64
	// MaxSpans caps spans recorded per trace (default 32); later
	// spans are dropped and counted in the trace's drop counter.
	MaxSpans int
	// Log receives slow-request lines (nil = log.Default()).
	Log *log.Logger
}

// Tracer makes sampling decisions, owns the ring of recent traces and
// aggregates per-stage latency histograms. All methods are safe for
// concurrent use and safe on a nil receiver (a nil Tracer never
// samples).
type Tracer struct {
	sampleEvery uint64
	seed        uint64
	maxSpans    int
	slowNS      int64
	log         *log.Logger

	counter atomic.Uint64 // requests seen (the sampling sequence)
	sampled atomic.Int64  // traces started
	slow    atomic.Int64  // traces logged as slow

	stages [StageCount]Histogram

	mu     sync.Mutex
	ring   []Record
	next   int
	filled int
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 32
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	return &Tracer{
		sampleEvery: uint64(max(cfg.SampleEvery, 0)),
		seed:        cfg.Seed,
		maxSpans:    cfg.MaxSpans,
		slowNS:      cfg.SlowThreshold.Nanoseconds(),
		log:         cfg.Log,
		ring:        make([]Record, cfg.Ring),
	}
}

// Start makes the sampling decision for one request and returns its
// trace, or nil when the request is unsampled. forcedID, when it is a
// well-formed trace ID (the TraceHeader of a forwarded request),
// bypasses the sampler so the remote half of a stitched trace is
// always recorded; forwardedFrom names the forwarding replica. The
// unsampled path costs one atomic add and allocates nothing.
func (t *Tracer) Start(endpoint, forcedID, forwardedFrom string) *Trace {
	if t == nil {
		return nil
	}
	n := t.counter.Add(1)
	id := forcedID
	if !validTraceID(id) {
		if t.sampleEvery == 0 || splitmix64(t.seed+n)%t.sampleEvery != 0 {
			return nil
		}
		id = formatTraceID(splitmix64(t.seed ^ (n * 0x9e3779b97f4a7c15)))
		forwardedFrom = ""
	}
	t.sampled.Add(1)
	return &Trace{
		tracer:        t,
		id:            id,
		endpoint:      endpoint,
		forwardedFrom: forwardedFrom,
		start:         time.Now(),
		spans:         make([]Span, 0, t.maxSpans),
	}
}

// Sampled returns how many traces this tracer has started.
func (t *Tracer) Sampled() int64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// Slow returns how many traces exceeded the slow threshold.
func (t *Tracer) Slow() int64 {
	if t == nil {
		return 0
	}
	return t.slow.Load()
}

// StageHistogram returns the latency histogram of one stage, fed by
// every completed span of sampled traces. The pointer is live; read it
// through Snapshot.
func (t *Tracer) StageHistogram(s Stage) *Histogram {
	if t == nil || s >= StageCount {
		return nil
	}
	return &t.stages[s]
}

// Traces returns the retained traces, most recent first.
func (t *Tracer) Traces() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, t.filled)
	for i := 0; i < t.filled; i++ {
		// next-1 is the most recently written slot.
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// push retires one completed trace into the ring.
func (t *Tracer) push(rec Record) {
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	if t.filled < len(t.ring) {
		t.filled++
	}
	t.mu.Unlock()
}

// Trace is one sampled request's in-progress trace. Span recording is
// mutex-guarded: the cold-plan flight a request leads runs in its own
// goroutine and records gate/compute spans concurrently with the
// request's own stages. All methods are safe on a nil receiver.
type Trace struct {
	tracer        *Tracer
	id            string
	endpoint      string
	forwardedFrom string
	start         time.Time

	mu       sync.Mutex
	finished bool
	spans    []Span
	dropped  int
}

// ID returns the trace ID ("" on a nil trace), as carried by
// TraceHeader and echoed in error bodies and the access log.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Timing is an in-progress span: Begin starts the clock, End records
// the span. It is a value, so an unsampled (nil-trace) Begin/End pair
// allocates nothing and never reads the clock.
type Timing struct {
	tr    *Trace
	stage Stage
	start time.Time
}

// Begin starts timing one stage. On a nil trace it returns an inert
// Timing without touching the clock.
func (tr *Trace) Begin(stage Stage) Timing {
	if tr == nil {
		return Timing{}
	}
	return Timing{tr: tr, stage: stage, start: time.Now()}
}

// End records the span with its outcome label.
func (h Timing) End(outcome string) { h.end(outcome, "", "") }

// EndPeer records a forwarding hop: the peer replica's name and its
// Server-Timing summary (the remote half of the stitched trace).
func (h Timing) EndPeer(outcome, peer, remote string) { h.end(outcome, peer, remote) }

func (h Timing) end(outcome, peer, remote string) {
	if h.tr == nil {
		return
	}
	now := time.Now()
	h.tr.record(Span{
		Stage:   h.stage.String(),
		StartNS: h.start.Sub(h.tr.start).Nanoseconds(),
		DurNS:   now.Sub(h.start).Nanoseconds(),
		Outcome: outcome,
		Peer:    peer,
		Remote:  remote,
	}, h.stage)
}

// record appends one completed span. Spans arriving after Finish —
// an abandoned cold-plan flight completing late — are dropped: the
// retired Record is immutable once in the ring.
func (tr *Trace) record(sp Span, stage Stage) {
	tr.tracer.stages[stage].Observe(sp.DurNS)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.finished || len(tr.spans) >= cap(tr.spans) {
		tr.dropped++
		return
	}
	tr.spans = append(tr.spans, sp)
}

// Finish retires the trace into the tracer's ring with the request's
// final status and overload outcome, feeds the slow-request log, and
// detaches the trace from later span recording. Idempotent.
func (tr *Trace) Finish(status int, outcome string) {
	if tr == nil {
		return
	}
	total := time.Since(tr.start).Nanoseconds()
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	spans := tr.spans
	tr.mu.Unlock()
	t := tr.tracer
	slow := t.slowNS > 0 && total > t.slowNS
	t.push(Record{
		ID:            tr.id,
		Endpoint:      tr.endpoint,
		Start:         tr.start,
		ForwardedFrom: tr.forwardedFrom,
		Status:        status,
		Outcome:       outcome,
		TotalNS:       total,
		Slow:          slow,
		Spans:         spans,
	})
	if slow {
		t.slow.Add(1)
		t.log.Printf("obs: slow request trace=%s endpoint=%s status=%d total=%v spans=%s",
			tr.id, tr.endpoint, status, time.Duration(total), summarize(spans))
	}
}

// ServerTiming renders the spans recorded so far as a Server-Timing
// header value: `stage;dur=<ms>` entries in recording order, prefixed
// with `app;dur=<ms>`, the elapsed total. Clients (cmd/respatd-bench)
// use it to attribute observed latency to serving stages; the entry
// replica of a forwarded request stores the peer's value verbatim on
// the hop span. Returns "" on a nil trace.
func (tr *Trace) ServerTiming() string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	spans := tr.spans
	tr.mu.Unlock()
	buf := make([]byte, 0, 32+32*len(spans))
	buf = append(buf, "app;dur="...)
	buf = appendMS(buf, time.Since(tr.start).Nanoseconds())
	for i := range spans {
		buf = append(buf, ", "...)
		buf = append(buf, spans[i].Stage...)
		buf = append(buf, ";dur="...)
		buf = appendMS(buf, spans[i].DurNS)
	}
	return string(buf)
}

// appendMS appends ns as fractional milliseconds with microsecond
// resolution, the Server-Timing convention.
func appendMS(buf []byte, ns int64) []byte {
	return strconv.AppendFloat(buf, float64(ns)/1e6, 'f', 3, 64)
}

// summarize renders spans compactly for the slow-request log.
func summarize(spans []Span) string {
	buf := make([]byte, 0, 32*len(spans))
	for i := range spans {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, spans[i].Stage...)
		if spans[i].Outcome != "" {
			buf = append(buf, ':')
			buf = append(buf, spans[i].Outcome...)
		}
		buf = append(buf, '=')
		buf = append(buf, time.Duration(spans[i].DurNS).String()...)
	}
	if len(buf) == 0 {
		return "none"
	}
	return string(buf)
}

// formatTraceID renders a trace ID as 16 lowercase hex digits.
func formatTraceID(x uint64) string {
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[x&0xf]
		x >>= 4
	}
	return string(b[:])
}

// validTraceID reports whether s is a well-formed forced trace ID (16
// lowercase hex digits). Anything else — including an empty header —
// falls back to the sampler, so a garbage header cannot force
// unbounded recording with attacker-chosen IDs.
func validTraceID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// splitmix64 is the standard 64-bit mix (Steele et al.), the repo-wide
// cheap deterministic stream (cf. internal/chaos).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
