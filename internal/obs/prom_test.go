package obs

import (
	"errors"
	"strings"
	"testing"
)

func TestPromWriterGolden(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("respat_requests_total", "Requests served.", 12345)
	p.Gauge("respat_inflight", "In-flight requests.", 3)
	p.Family("respat_endpoint_requests_total", "Per-endpoint requests.", "counter")
	p.Sample("respat_endpoint_requests_total", []Label{{"endpoint", "plan"}}, 7)
	p.Sample("respat_endpoint_requests_total", []Label{{"endpoint", "plan_exact"}}, 2)
	p.Gauge("respat_fraction", "A non-integral value.", 0.25)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP respat_requests_total Requests served.
# TYPE respat_requests_total counter
respat_requests_total 12345
# HELP respat_inflight In-flight requests.
# TYPE respat_inflight gauge
respat_inflight 3
# HELP respat_endpoint_requests_total Per-endpoint requests.
# TYPE respat_endpoint_requests_total counter
respat_endpoint_requests_total{endpoint="plan"} 7
respat_endpoint_requests_total{endpoint="plan_exact"} 2
# HELP respat_fraction A non-integral value.
# TYPE respat_fraction gauge
respat_fraction 0.25
`
	if got := b.String(); got != want {
		t.Fatalf("golden mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if errs := Lint([]byte(b.String())); errs != nil {
		t.Fatalf("golden output does not lint: %v", errs)
	}
}

func TestPromWriterEscaping(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Family("respat_x", "help with \\ backslash\nand newline", "gauge")
	p.Sample("respat_x", []Label{{"k", "quote \" slash \\ nl \n end"}}, 1)
	out := b.String()
	if !strings.Contains(out, `help with \\ backslash\nand newline`) {
		t.Fatalf("HELP not escaped: %q", out)
	}
	if !strings.Contains(out, `k="quote \" slash \\ nl \n end"`) {
		t.Fatalf("label not escaped: %q", out)
	}
	if errs := Lint([]byte(out)); errs != nil {
		t.Fatalf("escaped output does not lint: %v", errs)
	}
}

func TestPromWriterHist(t *testing.T) {
	var h Histogram
	h.Observe(500)            // bucket 0 (≤1µs)
	h.Observe(900_000)        // ≤1ms
	h.Observe(30_000_000_000) // +Inf
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Family("respat_stage_seconds", "Stage latency.", "histogram")
	p.Hist("respat_stage_seconds", []Label{{"stage", "decode"}}, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`respat_stage_seconds_bucket{stage="decode",le="0.000001"} 1`,
		`respat_stage_seconds_bucket{stage="decode",le="0.001"} 2`,
		`respat_stage_seconds_bucket{stage="decode",le="10"} 2`,
		`respat_stage_seconds_bucket{stage="decode",le="+Inf"} 3`,
		`respat_stage_seconds_count{stage="decode"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// _sum is in seconds: 500ns + 0.9ms + 30s.
	if !strings.Contains(out, `respat_stage_seconds_sum{stage="decode"} 30.0009005`) {
		t.Fatalf("sum wrong in:\n%s", out)
	}
	if errs := Lint([]byte(out)); errs != nil {
		t.Fatalf("histogram output does not lint: %v", errs)
	}
}

func TestPromWriterStickyError(t *testing.T) {
	p := NewPromWriter(failWriter{})
	p.Counter("respat_x_total", "x", 1)
	if p.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	p.Gauge("respat_y", "y", 2) // must not panic, error stays
	if p.Err() == nil {
		t.Fatal("error not sticky")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("boom") }

func TestLintCatchesBadExpositions(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of some error
	}{
		{"clean", "# HELP a_total ok\n# TYPE a_total counter\na_total 1\n", ""},
		{"counter suffix", "# HELP a ok\n# TYPE a counter\na 1\n", "should end in _total"},
		{"duplicate series", "# HELP a ok\n# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n", "duplicate series"},
		{"duplicate series reordered labels", "# HELP a ok\n# TYPE a gauge\na{x=\"1\",y=\"2\"} 1\na{y=\"2\",x=\"1\"} 2\n", "duplicate series"},
		{"interleaved families", "# HELP a ok\n# TYPE a gauge\na 1\n# HELP b ok\n# TYPE b gauge\nb 1\na{x=\"2\"} 2\n", "contiguous"},
		{"second help", "# HELP a ok\n# HELP a again\n# TYPE a gauge\na 1\n", "second HELP"},
		{"type after samples", "# HELP a ok\n# TYPE a gauge\na 1\n", ""},
		{"unknown type", "# HELP a ok\n# TYPE a widget\na 1\n", "unknown TYPE"},
		{"no type", "# HELP a ok\na 1\n", "before any TYPE"},
		{"no help", "# TYPE a gauge\na 1\n", "no HELP"},
		{"bad value", "# HELP a ok\n# TYPE a gauge\na pizza\n", "unparseable value"},
		{"bad metric name", "# HELP a ok\n# TYPE a gauge\n0a 1\n", "invalid metric name"},
		{"bad label name", "# HELP a ok\n# TYPE a gauge\na{__x=\"1\"} 1\n", "invalid label name"},
		{"unterminated labels", "# HELP a ok\n# TYPE a gauge\na{x=\"1\" 1\n", "unterminated"},
		{
			"non-cumulative histogram",
			"# HELP h ok\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
		{
			"missing +Inf",
			"# HELP h ok\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
			"missing +Inf",
		},
		{
			"inf != count",
			"# HELP h ok\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
			"!= _count",
		},
		{
			"missing sum",
			"# HELP h ok\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"missing _sum",
		},
		{
			"clean histogram two series",
			"# HELP h ok\n# TYPE h histogram\n" +
				"h_bucket{s=\"a\",le=\"1\"} 2\nh_bucket{s=\"a\",le=\"+Inf\"} 3\nh_sum{s=\"a\"} 1\nh_count{s=\"a\"} 3\n" +
				"h_bucket{s=\"b\",le=\"1\"} 0\nh_bucket{s=\"b\",le=\"+Inf\"} 1\nh_sum{s=\"b\"} 1\nh_count{s=\"b\"} 1\n",
			"",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := Lint([]byte(tc.in))
			if tc.want == "" {
				if errs != nil {
					t.Fatalf("clean input flagged: %v", errs)
				}
				return
			}
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					return
				}
			}
			t.Fatalf("no error containing %q in %v", tc.want, errs)
		})
	}
}
