package obs

import (
	"encoding/json"
	"log"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSamplerDeterministic(t *testing.T) {
	pick := func(seed uint64) []uint64 {
		tr := New(Config{SampleEvery: 8, Seed: seed})
		var hits []uint64
		for i := 0; i < 1024; i++ {
			if h := tr.Start("plan", "", ""); h != nil {
				hits = append(hits, uint64(i))
				h.Finish(200, "")
			}
		}
		return hits
	}
	a, b := pick(7), pick(7)
	if len(a) == 0 {
		t.Fatal("sampler never fired over 1024 requests at 1-in-8")
	}
	// Roughly 1 in 8: allow a wide band, the draw is hash-based.
	if len(a) < 64 || len(a) > 256 {
		t.Fatalf("1-in-8 sampler hit %d of 1024", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := pick(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical sampling sequences")
	}
}

func TestSampleEveryOneAndZero(t *testing.T) {
	always := New(Config{SampleEvery: 1})
	for i := 0; i < 10; i++ {
		if always.Start("plan", "", "") == nil {
			t.Fatalf("SampleEvery=1 skipped request %d", i)
		}
	}
	never := New(Config{SampleEvery: 0})
	for i := 0; i < 100; i++ {
		if never.Start("plan", "", "") != nil {
			t.Fatal("SampleEvery=0 sampled a request")
		}
	}
}

func TestForcedIDBypassesSampler(t *testing.T) {
	tr := New(Config{SampleEvery: 0})
	h := tr.Start("plan", "00ff00ff00ff00ff", "r1")
	if h == nil {
		t.Fatal("forced ID was not sampled with sampling disabled")
	}
	if h.ID() != "00ff00ff00ff00ff" {
		t.Fatalf("forced ID not preserved: %q", h.ID())
	}
	h.Finish(200, "")
	recs := tr.Traces()
	if len(recs) != 1 || recs[0].ForwardedFrom != "r1" {
		t.Fatalf("forwardedFrom lost: %+v", recs)
	}
	// Malformed IDs fall back to the (disabled) sampler.
	for _, bad := range []string{"", "zzzzzzzzzzzzzzzz", "ABCDEF0123456789", "0123", strings.Repeat("a", 17)} {
		if tr.Start("plan", bad, "") != nil {
			t.Fatalf("malformed forced ID %q was sampled", bad)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Start("plan", "", "") != nil {
		t.Fatal("nil tracer sampled")
	}
	if tr.Sampled() != 0 || tr.Slow() != 0 || tr.Traces() != nil || tr.StageHistogram(StageDecode) != nil {
		t.Fatal("nil tracer accessors not inert")
	}
	var h *Trace
	if h.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
	tm := h.Begin(StageDecode)
	tm.End("ok")
	tm.EndPeer("ok", "r1", "app;dur=1")
	h.Finish(200, "")
	if h.ServerTiming() != "" {
		t.Fatal("nil trace has Server-Timing")
	}
	var hist *Histogram
	hist.Observe(5)
	if s := hist.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram counted")
	}
}

func TestUnsampledPathZeroAlloc(t *testing.T) {
	tr := New(Config{SampleEvery: 1 << 30})
	allocs := testing.AllocsPerRun(1000, func() {
		h := tr.Start("plan", "", "")
		tm := h.Begin(StageCacheLookup)
		tm.End("hit")
		h.Finish(200, "")
	})
	if allocs != 0 {
		t.Fatalf("unsampled request path allocates: %.1f allocs/op", allocs)
	}
}

func TestTraceRecordAndRingOrder(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Ring: 4})
	endpoints := []string{"a", "b", "c", "d", "e", "f"}
	for _, ep := range endpoints {
		h := tr.Start(ep, "", "")
		tm := h.Begin(StageCacheLookup)
		tm.End("miss")
		tm = h.Begin(StageColdCompute)
		tm.End("ok")
		h.Finish(200, "")
	}
	recs := tr.Traces()
	if len(recs) != 4 {
		t.Fatalf("ring of 4 holds %d", len(recs))
	}
	// Most recent first: f, e, d, c.
	for i, want := range []string{"f", "e", "d", "c"} {
		if recs[i].Endpoint != want {
			t.Fatalf("ring order: got %q at %d, want %q", recs[i].Endpoint, i, want)
		}
	}
	r := recs[0]
	if len(r.Spans) != 2 || r.Spans[0].Stage != "cache_lookup" || r.Spans[0].Outcome != "miss" ||
		r.Spans[1].Stage != "cold_compute" || r.Spans[1].Outcome != "ok" {
		t.Fatalf("spans wrong: %+v", r.Spans)
	}
	if r.Status != 200 || r.TotalNS < 0 || !validTraceID(r.ID) {
		t.Fatalf("record fields wrong: %+v", r)
	}
	if tr.Sampled() != 6 {
		t.Fatalf("Sampled() = %d, want 6", tr.Sampled())
	}
	// Records marshal as the JSON served by /debug/traces.
	if _, err := json.Marshal(recs); err != nil {
		t.Fatalf("records not marshalable: %v", err)
	}
}

func TestLateSpansDroppedAfterFinish(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	h := tr.Start("plan", "", "")
	tm := h.Begin(StageGateWait)
	h.Finish(200, "")
	tm.End("admitted") // abandoned flight completing late
	recs := tr.Traces()
	if len(recs) != 1 || len(recs[0].Spans) != 0 {
		t.Fatalf("late span leaked into retired record: %+v", recs)
	}
	// Finish is idempotent.
	h.Finish(500, "changed")
	if recs := tr.Traces(); len(recs) != 1 || recs[0].Status != 200 {
		t.Fatalf("double Finish re-pushed: %+v", recs)
	}
}

func TestMaxSpansCap(t *testing.T) {
	tr := New(Config{SampleEvery: 1, MaxSpans: 3})
	h := tr.Start("plan", "", "")
	for i := 0; i < 10; i++ {
		h.Begin(StageCacheLookup).End("hit")
	}
	h.Finish(200, "")
	if recs := tr.Traces(); len(recs[0].Spans) != 3 {
		t.Fatalf("span cap not enforced: %d spans", len(recs[0].Spans))
	}
}

func TestSlowLog(t *testing.T) {
	var buf strings.Builder
	tr := New(Config{
		SampleEvery:   1,
		SlowThreshold: time.Nanosecond,
		Log:           log.New(&buf, "", 0),
	})
	h := tr.Start("plan", "", "")
	h.Begin(StageColdCompute).End("ok")
	time.Sleep(time.Millisecond)
	h.Finish(200, "")
	if tr.Slow() != 1 {
		t.Fatalf("Slow() = %d", tr.Slow())
	}
	line := buf.String()
	if !strings.Contains(line, "slow request trace="+h.ID()) ||
		!strings.Contains(line, "endpoint=plan") ||
		!strings.Contains(line, "cold_compute:ok=") {
		t.Fatalf("slow log line wrong: %q", line)
	}
	if recs := tr.Traces(); !recs[0].Slow {
		t.Fatal("record not flagged slow")
	}
}

func TestServerTiming(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	h := tr.Start("plan", "", "")
	h.Begin(StageDecode).End("")
	h.Begin(StageCacheLookup).End("hit")
	st := h.ServerTiming()
	if !strings.HasPrefix(st, "app;dur=") {
		t.Fatalf("Server-Timing missing app entry: %q", st)
	}
	for _, part := range []string{", decode;dur=", ", cache_lookup;dur="} {
		if !strings.Contains(st, part) {
			t.Fatalf("Server-Timing missing %q: %q", part, st)
		}
	}
	h.Finish(200, "")
}

func TestStageHistogramFeedsOnRecord(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	h := tr.Start("plan", "", "")
	h.Begin(StageTable).End("ok")
	h.Finish(200, "")
	snap := tr.StageHistogram(StageTable).Snapshot()
	if snap.Count != 1 {
		t.Fatalf("stage histogram count = %d", snap.Count)
	}
	if tr.StageHistogram(StageCount) != nil {
		t.Fatal("out-of-range stage returned a histogram")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(500)            // ≤ 1µs bucket
	h.Observe(1_000)          // boundary: still first bucket
	h.Observe(3_000)          // 5µs bucket
	h.Observe(20_000_000_000) // above last bound: +Inf
	s := h.Snapshot()
	if s.Cumulative[0] != 2 {
		t.Fatalf("first bucket = %d, want 2", s.Cumulative[0])
	}
	if s.Cumulative[2] != 3 { // ≤5µs
		t.Fatalf("5µs bucket cumulative = %d, want 3", s.Cumulative[2])
	}
	if s.Cumulative[NumBuckets-1] != 3 {
		t.Fatalf("last finite bucket = %d, want 3", s.Cumulative[NumBuckets-1])
	}
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.SumNS != 500+1_000+3_000+20_000_000_000 {
		t.Fatalf("sum = %d", s.SumNS)
	}
	for i := 1; i < NumBuckets; i++ {
		if s.Cumulative[i] < s.Cumulative[i-1] {
			t.Fatalf("cumulative counts decrease at %d", i)
		}
	}
}

func TestConcurrentRecordAndRead(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Ring: 64})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h := tr.Start("plan", "", "")
				tm := h.Begin(StageCacheLookup)
				tm.End("hit")
				h.Finish(200, "")
			}
		}()
	}
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range tr.Traces() {
				if r.ID == "" {
					t.Error("reader saw a record without an ID")
					return
				}
			}
			tr.StageHistogram(StageCacheLookup).Snapshot()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A shared trace raced by recorder goroutines, as the cold-plan
		// flight does.
		h := tr.Start("plan", "f0f0f0f0f0f0f0f0", "")
		var inner sync.WaitGroup
		for g := 0; g < 4; g++ {
			inner.Add(1)
			go func() {
				defer inner.Done()
				for i := 0; i < 200; i++ {
					h.Begin(StageGateWait).End("admitted")
					h.ServerTiming()
				}
			}()
		}
		inner.Wait()
		h.Finish(200, "")
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if got := tr.Sampled(); got != 4*500+1 {
		t.Fatalf("Sampled() = %d, want %d", got, 4*500+1)
	}
}

func TestTraceIDFormat(t *testing.T) {
	id := formatTraceID(0xDEADBEEF01234567)
	if id != "deadbeef01234567" || !validTraceID(id) {
		t.Fatalf("formatTraceID: %q", id)
	}
	if !validTraceID(formatTraceID(0)) {
		t.Fatal("zero-padded ID invalid")
	}
}
