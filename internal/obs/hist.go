package obs

import "sync/atomic"

// BucketBoundsNS are the fixed latency-histogram bucket upper bounds
// in nanoseconds, shared by the per-endpoint and per-stage histograms
// so Prometheus queries can aggregate across both. The range spans
// sub-microsecond cache hits to multi-second cold multilevel searches;
// observations above the last bound land in the implicit +Inf bucket.
var BucketBoundsNS = [...]int64{
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, // µs range
	1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000, // ms range
	100_000_000, 250_000_000, 500_000_000, // sub-second
	1_000_000_000, 2_500_000_000, 5_000_000_000, 10_000_000_000, // seconds
}

// NumBuckets is the number of finite buckets; the exposition adds the
// +Inf bucket on top.
const NumBuckets = len(BucketBoundsNS)

// Histogram is a fixed-bucket latency histogram with atomic counters:
// recording is lock-free and allocation-free, so it can sit on the
// request path. The zero value is ready to use.
type Histogram struct {
	buckets [NumBuckets + 1]atomic.Int64 // last slot = +Inf overflow
	count   atomic.Int64
	sumNS   atomic.Int64
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	i := 0
	for i < NumBuckets && ns > BucketBoundsNS[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// HistSnapshot is one histogram's state, cumulative per the
// Prometheus histogram convention: Cumulative[i] counts observations
// ≤ BucketBoundsNS[i], and Count is the +Inf bucket.
type HistSnapshot struct {
	Cumulative [NumBuckets]int64
	Count      int64
	SumNS      int64
}

// Snapshot captures the histogram. Counters are read individually (no
// global lock), so a snapshot taken during concurrent recording is
// approximate; cumulativity is restored by construction, and the +Inf
// bucket is forced to cover every bucketed observation so the
// exposition always lints clean.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	var run int64
	for i := 0; i < NumBuckets; i++ {
		run += h.buckets[i].Load()
		s.Cumulative[i] = run
	}
	run += h.buckets[NumBuckets].Load()
	s.Count = max(run, h.count.Load())
	s.SumNS = h.sumNS.Load()
	return s
}
