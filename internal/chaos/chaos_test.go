package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"respat/internal/obs"
	"respat/internal/service"
)

// planBody builds a /v1/plan/exact body for the i-th synthetic
// configuration: distinct i give distinct cache keys, so every request
// is a cold plan.
func planBody(i int) string {
	return fmt.Sprintf(
		`{"kind":"PD","costs":{"DiskCkpt":%d,"DiskRec":30,"Recall":1},"rates":{"FailStop":1e-7}}`,
		60+i)
}

func exactRequest(i int) *http.Request {
	req := httptest.NewRequest("POST", "/v1/plan/exact", strings.NewReader(planBody(i)))
	req.Header.Set("Content-Type", "application/json")
	return req
}

// metricsSnapshot fetches and decodes GET /metrics.
func metricsSnapshot(t *testing.T, h http.Handler) service.Snapshot {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics returned %d", rec.Code)
	}
	var snap service.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	return snap
}

// TestOverloadInvariants is the core chaos scenario: planner slowed
// far beyond its natural latency, closed-loop load at several times
// the worker+queue capacity, all requests for distinct (cold) keys.
// Invariants:
//
//   - every request resolves to 200, 429 or 503 — nothing hangs, no
//     5xx surprises;
//   - some requests are shed (the load really exceeded capacity) and
//     some succeed (shedding is not total collapse);
//   - the queue-depth high-water mark never exceeds the configured
//     bound;
//   - after the drive drains, goroutines return to baseline (no leaked
//     flights, workers or waiters);
//   - the service recovers: a post-overload cold request succeeds.
func TestOverloadInvariants(t *testing.T) {
	const workers, queue = 2, 4
	inj := &Injector{PlannerDelay: 20 * time.Millisecond, PlannerJitter: 5 * time.Millisecond, Seed: 1}
	svc := service.New(inj.Apply(service.Config{ColdWorkers: workers, ColdQueue: queue}))
	h := svc.Handler()

	baseline := runtime.NumGoroutine()
	rep := Drive(h, Options{
		Clients:    4 * (workers + queue), // 4x total capacity
		Requests:   96,
		NewRequest: exactRequest,
	})

	counts := rep.StatusCounts()
	for status := range counts {
		if status != http.StatusOK && status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			t.Errorf("unexpected status %d (%d requests)", status, counts[status])
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Error("no request succeeded under overload")
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Error("no request was shed at 4x capacity")
	}
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Status == http.StatusTooManyRequests {
			if r.Outcome != "shed" {
				t.Errorf("request %d: 429 outcome = %q, want shed", i, r.Outcome)
			}
			if r.RetryAfter < 1 || r.RetryAfter > 60 {
				t.Errorf("request %d: Retry-After = %d, want within [1, 60]", i, r.RetryAfter)
			}
		}
	}

	snap := metricsSnapshot(t, h)
	if snap.ColdQueueMax > queue {
		t.Errorf("queue high-water %d exceeds bound %d", snap.ColdQueueMax, queue)
	}
	if snap.Shed == 0 || snap.Admitted == 0 {
		t.Errorf("metrics: admitted=%d shed=%d, want both positive", snap.Admitted, snap.Shed)
	}
	if snap.Shed+snap.Admitted < int64(len(rep.Results)) {
		// Coalescing can make admitted < requests, but every request
		// either hit the cache, was admitted, or was shed; with unique
		// keys admitted+shed covers all of them.
		t.Errorf("admitted+shed = %d, want >= %d", snap.Shed+snap.Admitted, len(rep.Results))
	}

	if n := WaitGoroutines(baseline, 5*time.Second); n > baseline {
		t.Errorf("goroutines did not drain: %d, baseline %d", n, baseline)
	}
	if snap := metricsSnapshot(t, h); snap.ColdQueueDepth != 0 {
		t.Errorf("queue depth %d after drain, want 0", snap.ColdQueueDepth)
	}

	// Monotone shed -> recover: with the overload gone, a fresh cold
	// request must be admitted and succeed.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, exactRequest(1000))
	if rec.Code != http.StatusOK {
		t.Errorf("post-overload request returned %d, want 200", rec.Code)
	}
}

// TestHitLatencyBoundedUnderOverload: cache hits bypass the gate, so a
// warmed key stays fast even while the planner is drowning in slowed
// cold plans.
func TestHitLatencyBoundedUnderOverload(t *testing.T) {
	inj := &Injector{PlannerDelay: 20 * time.Millisecond, Seed: 2}
	svc := service.New(inj.Apply(service.Config{ColdWorkers: 1, ColdQueue: 2}))
	h := svc.Handler()

	// Warm one key (slowly — it pays the injected delay once).
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, exactRequest(0))
	if rec.Code != http.StatusOK {
		t.Fatalf("warming request returned %d", rec.Code)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		Drive(h, Options{Clients: 8, Requests: 48, NewRequest: func(i int) *http.Request {
			return exactRequest(i + 1) // all cold
		}})
	}()
	rep := Drive(h, Options{Clients: 2, Requests: 200, NewRequest: func(i int) *http.Request {
		return exactRequest(0) // all hits
	}})
	<-done

	for i := range rep.Results {
		if rep.Results[i].Status != http.StatusOK {
			t.Fatalf("hit request %d returned %d", i, rep.Results[i].Status)
		}
	}
	// The hit path is sub-microsecond in steady state; the bound is
	// generous because CI schedulers stall, but a hit that waits on the
	// planner queue would take >= 20ms and trip it.
	if p99 := rep.LatencyQuantile(0.99, nil); p99 >= 15*time.Millisecond {
		t.Errorf("hit p99 = %v under overload, want < 15ms", p99)
	}
}

// TestDegradedByteStable: in degraded mode, shed requests serve the
// first-order fallback with "degraded":true, and repeated degraded
// responses for one configuration are byte-identical.
func TestDegradedByteStable(t *testing.T) {
	inj := &Injector{PlannerDelay: 50 * time.Millisecond, Seed: 3}
	svc := service.New(inj.Apply(service.Config{ColdWorkers: 1, ColdQueue: 1, Degraded: true}))
	h := svc.Handler()

	// Saturate the single worker and the one-deep queue with two slow
	// cold plans, then request a third configuration repeatedly: the
	// gate sheds it, degraded mode answers it.
	for i := 0; i < 2; i++ {
		go func(i int) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, exactRequest(100+i))
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let both occupy slot + queue

	var bodies [][]byte
	for try := 0; try < 5; try++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, exactRequest(0))
		if rec.Code != http.StatusOK {
			t.Fatalf("degraded request returned %d: %s", rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get(service.OutcomeHeader); got != "degraded" {
			t.Fatalf("outcome header = %q, want degraded", got)
		}
		bodies = append(bodies, rec.Body.Bytes())
	}
	for i, b := range bodies[1:] {
		if !bytes.Equal(b, bodies[0]) {
			t.Errorf("degraded response %d differs: %s vs %s", i+1, b, bodies[0])
		}
	}
	var resp service.PlanResponse
	if err := json.Unmarshal(bodies[0], &resp); err != nil {
		t.Fatalf("decode degraded response: %v", err)
	}
	if !resp.Degraded {
		t.Error(`degraded response lacks "degraded":true`)
	}
	if resp.DegradedDelta < 0 {
		t.Errorf("degradedDelta = %g, want >= 0 (first-order underestimates)", resp.DegradedDelta)
	}
	if snap := metricsSnapshot(t, h); snap.Degraded < 5 {
		t.Errorf("degraded counter = %d, want >= 5", snap.Degraded)
	}

	// Degraded responses are never cached: once the overload clears,
	// the same configuration computes the exact plan.
	WaitGoroutines(runtime.NumGoroutine(), 2*time.Second)
	time.Sleep(120 * time.Millisecond) // let the two slow plans finish
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, exactRequest(0))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-overload request returned %d", rec.Code)
	}
	var exact service.PlanResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Degraded {
		t.Error("post-overload response is still degraded: degraded body was cached")
	}
	if !exact.Exact {
		t.Error("post-overload response is not the exact plan")
	}
}

// TestInjectedErrorsNotCached: a forced cold-plan failure surfaces as
// an error response, and the failure is not cached — the same request
// succeeds once the fault is disarmed.
func TestInjectedErrorsNotCached(t *testing.T) {
	inj := &Injector{Seed: 4}
	inj.SetFailEvery(1) // every cold plan fails
	svc := service.New(inj.Apply(service.Config{ColdWorkers: 2, ColdQueue: 2}))
	h := svc.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, exactRequest(0))
	if rec.Code == http.StatusOK {
		t.Fatalf("injected fault did not fail the request (status %d)", rec.Code)
	}
	inj.SetFailEvery(0)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, exactRequest(0))
	if rec.Code != http.StatusOK {
		t.Fatalf("request after disarming returned %d, want 200 (error was cached?)", rec.Code)
	}
}

// TestRetryAfterClampedUnderClockSkew: a wildly scaled and skewed
// service clock corrupts the cold-plan latency observations, but the
// Retry-After advice stays within [1, 60] seconds.
func TestRetryAfterClampedUnderClockSkew(t *testing.T) {
	inj := &Injector{
		PlannerDelay: 10 * time.Millisecond,
		ClockSkew:    -3 * time.Hour,
		ClockScale:   1e5, // 10ms of real delay reads as ~1000s
		Seed:         5,
	}
	svc := service.New(inj.Apply(service.Config{ColdWorkers: 1, ColdQueue: 1}))
	h := svc.Handler()

	rep := Drive(h, Options{Clients: 12, Requests: 48, NewRequest: exactRequest})
	shed := 0
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Status != http.StatusTooManyRequests {
			continue
		}
		shed++
		if r.RetryAfter < 1 || r.RetryAfter > 60 {
			t.Errorf("request %d: Retry-After = %d under clock chaos, want within [1, 60]", i, r.RetryAfter)
		}
	}
	if shed == 0 {
		t.Error("no request was shed; the clamp was never exercised")
	}
}

// TestDeadlineExceeded: a budget far below the injected planner
// latency yields 503 with the deadline outcome, and the abandoned
// computation does not leak.
func TestDeadlineExceeded(t *testing.T) {
	inj := &Injector{PlannerDelay: 50 * time.Millisecond, Seed: 6}
	svc := service.New(inj.Apply(service.Config{ColdWorkers: 2, ColdQueue: 2}))
	h := svc.Handler()
	baseline := runtime.NumGoroutine()

	req := exactRequest(0)
	req.Header.Set(service.TimeoutHeader, "5ms")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(service.OutcomeHeader); got != "deadline-exceeded" {
		t.Errorf("outcome header = %q, want deadline-exceeded", got)
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Errorf("body %q does not mention the deadline", rec.Body.String())
	}
	if snap := metricsSnapshot(t, h); snap.DeadlineExceeded == 0 {
		t.Error("deadlineExceeded counter not incremented")
	}
	if n := WaitGoroutines(baseline, 5*time.Second); n > baseline {
		t.Errorf("abandoned flight leaked goroutines: %d, baseline %d", n, baseline)
	}

	// An invalid budget is a client error, not a crash.
	req = exactRequest(1)
	req.Header.Set(service.TimeoutHeader, "soon")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad budget header: status = %d, want 400", rec.Code)
	}
}

// traceByID finds one retained trace record, or fails the test.
func traceByID(t *testing.T, svc *service.Service, id string) obs.Record {
	t.Helper()
	for _, rec := range svc.Tracer().Traces() {
		if rec.ID == id {
			return rec
		}
	}
	t.Fatalf("no trace %q retained", id)
	return obs.Record{}
}

// spanOutcome returns the outcome of the first span of the given stage,
// or "" when the trace has none.
func spanOutcome(rec obs.Record, stage string) string {
	for _, sp := range rec.Spans {
		if sp.Stage == stage {
			return sp.Outcome
		}
	}
	return ""
}

// TestShedTraceOutcomes: under overload with every request sampled, a
// shed request's trace tells the story end to end — the record carries
// the 429 and the shed outcome, and its gate_wait span ended "shed".
func TestShedTraceOutcomes(t *testing.T) {
	const workers, queue = 2, 4
	inj := &Injector{PlannerDelay: 20 * time.Millisecond, PlannerJitter: 5 * time.Millisecond, Seed: 11}
	svc := service.New(inj.Apply(service.Config{
		ColdWorkers: workers, ColdQueue: queue,
		Tracer: obs.New(obs.Config{SampleEvery: 1, Ring: 256}),
	}))
	rep := Drive(svc.Handler(), Options{
		Clients:    4 * (workers + queue),
		Requests:   96,
		NewRequest: exactRequest, // distinct keys: every request leads its own flight
	})

	shed := 0
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.TraceID == "" {
			t.Fatalf("request %d not sampled at SampleEvery=1", i)
		}
		if r.Status != http.StatusTooManyRequests {
			continue
		}
		shed++
		rec := traceByID(t, svc, r.TraceID)
		if rec.Status != http.StatusTooManyRequests || rec.Outcome != "shed" {
			t.Errorf("shed trace %s: status=%d outcome=%q, want 429/shed", rec.ID, rec.Status, rec.Outcome)
		}
		if got := spanOutcome(rec, "gate_wait"); got != "shed" {
			t.Errorf("shed trace %s: gate_wait span outcome %q, want shed; spans %+v", rec.ID, got, rec.Spans)
		}
	}
	if shed == 0 {
		t.Fatal("no request was shed; the scenario exercised nothing")
	}
}

// TestDegradedTraceOutcomes: a degraded-mode answer's trace records the
// overload shape — the gate shed the cold plan (gate_wait "shed") and
// the first-order fallback computed the answer (cold_compute
// "degraded") — while the request still returned 200.
func TestDegradedTraceOutcomes(t *testing.T) {
	inj := &Injector{PlannerDelay: 50 * time.Millisecond, Seed: 12}
	svc := service.New(inj.Apply(service.Config{
		ColdWorkers: 1, ColdQueue: 1, Degraded: true,
		Tracer: obs.New(obs.Config{SampleEvery: 1, Ring: 64}),
	}))
	h := svc.Handler()

	for i := 0; i < 2; i++ { // saturate the worker slot and the queue
		go func(i int) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, exactRequest(100+i))
		}(i)
	}
	time.Sleep(10 * time.Millisecond)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, exactRequest(0))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded request returned %d: %s", rec.Code, rec.Body.String())
	}
	id := rec.Header().Get(obs.TraceHeader)
	if id == "" {
		t.Fatal("degraded response carries no trace ID at SampleEvery=1")
	}
	trace := traceByID(t, svc, id)
	if trace.Status != http.StatusOK || trace.Outcome != "degraded" {
		t.Errorf("trace status=%d outcome=%q, want 200/degraded", trace.Status, trace.Outcome)
	}
	if got := spanOutcome(trace, "gate_wait"); got != "shed" {
		t.Errorf("gate_wait span outcome %q, want shed; spans %+v", got, trace.Spans)
	}
	if got := spanOutcome(trace, "cold_compute"); got != "degraded" {
		t.Errorf("cold_compute span outcome %q, want degraded; spans %+v", got, trace.Spans)
	}
	WaitGoroutines(runtime.NumGoroutine(), 2*time.Second)
}

// TestJitterDeterministic pins the injector's jitter stream: same
// seed, same sequence.
func TestJitterDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		a := splitmix64(seed)
		b := splitmix64(seed)
		if a != b {
			t.Fatalf("splitmix64(%d) unstable: %d vs %d", seed, a, b)
		}
	}
	if splitmix64(1) == splitmix64(2) {
		t.Error("distinct seeds collide")
	}
}
