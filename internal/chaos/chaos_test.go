package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"respat/internal/service"
)

// planBody builds a /v1/plan/exact body for the i-th synthetic
// configuration: distinct i give distinct cache keys, so every request
// is a cold plan.
func planBody(i int) string {
	return fmt.Sprintf(
		`{"kind":"PD","costs":{"DiskCkpt":%d,"DiskRec":30,"Recall":1},"rates":{"FailStop":1e-7}}`,
		60+i)
}

func exactRequest(i int) *http.Request {
	req := httptest.NewRequest("POST", "/v1/plan/exact", strings.NewReader(planBody(i)))
	req.Header.Set("Content-Type", "application/json")
	return req
}

// metricsSnapshot fetches and decodes GET /metrics.
func metricsSnapshot(t *testing.T, h http.Handler) service.Snapshot {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics returned %d", rec.Code)
	}
	var snap service.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	return snap
}

// TestOverloadInvariants is the core chaos scenario: planner slowed
// far beyond its natural latency, closed-loop load at several times
// the worker+queue capacity, all requests for distinct (cold) keys.
// Invariants:
//
//   - every request resolves to 200, 429 or 503 — nothing hangs, no
//     5xx surprises;
//   - some requests are shed (the load really exceeded capacity) and
//     some succeed (shedding is not total collapse);
//   - the queue-depth high-water mark never exceeds the configured
//     bound;
//   - after the drive drains, goroutines return to baseline (no leaked
//     flights, workers or waiters);
//   - the service recovers: a post-overload cold request succeeds.
func TestOverloadInvariants(t *testing.T) {
	const workers, queue = 2, 4
	inj := &Injector{PlannerDelay: 20 * time.Millisecond, PlannerJitter: 5 * time.Millisecond, Seed: 1}
	svc := service.New(inj.Apply(service.Config{ColdWorkers: workers, ColdQueue: queue}))
	h := svc.Handler()

	baseline := runtime.NumGoroutine()
	rep := Drive(h, Options{
		Clients:    4 * (workers + queue), // 4x total capacity
		Requests:   96,
		NewRequest: exactRequest,
	})

	counts := rep.StatusCounts()
	for status := range counts {
		if status != http.StatusOK && status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			t.Errorf("unexpected status %d (%d requests)", status, counts[status])
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Error("no request succeeded under overload")
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Error("no request was shed at 4x capacity")
	}
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Status == http.StatusTooManyRequests {
			if r.Outcome != "shed" {
				t.Errorf("request %d: 429 outcome = %q, want shed", i, r.Outcome)
			}
			if r.RetryAfter < 1 || r.RetryAfter > 60 {
				t.Errorf("request %d: Retry-After = %d, want within [1, 60]", i, r.RetryAfter)
			}
		}
	}

	snap := metricsSnapshot(t, h)
	if snap.ColdQueueMax > queue {
		t.Errorf("queue high-water %d exceeds bound %d", snap.ColdQueueMax, queue)
	}
	if snap.Shed == 0 || snap.Admitted == 0 {
		t.Errorf("metrics: admitted=%d shed=%d, want both positive", snap.Admitted, snap.Shed)
	}
	if snap.Shed+snap.Admitted < int64(len(rep.Results)) {
		// Coalescing can make admitted < requests, but every request
		// either hit the cache, was admitted, or was shed; with unique
		// keys admitted+shed covers all of them.
		t.Errorf("admitted+shed = %d, want >= %d", snap.Shed+snap.Admitted, len(rep.Results))
	}

	if n := WaitGoroutines(baseline, 5*time.Second); n > baseline {
		t.Errorf("goroutines did not drain: %d, baseline %d", n, baseline)
	}
	if snap := metricsSnapshot(t, h); snap.ColdQueueDepth != 0 {
		t.Errorf("queue depth %d after drain, want 0", snap.ColdQueueDepth)
	}

	// Monotone shed -> recover: with the overload gone, a fresh cold
	// request must be admitted and succeed.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, exactRequest(1000))
	if rec.Code != http.StatusOK {
		t.Errorf("post-overload request returned %d, want 200", rec.Code)
	}
}

// TestHitLatencyBoundedUnderOverload: cache hits bypass the gate, so a
// warmed key stays fast even while the planner is drowning in slowed
// cold plans.
func TestHitLatencyBoundedUnderOverload(t *testing.T) {
	inj := &Injector{PlannerDelay: 20 * time.Millisecond, Seed: 2}
	svc := service.New(inj.Apply(service.Config{ColdWorkers: 1, ColdQueue: 2}))
	h := svc.Handler()

	// Warm one key (slowly — it pays the injected delay once).
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, exactRequest(0))
	if rec.Code != http.StatusOK {
		t.Fatalf("warming request returned %d", rec.Code)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		Drive(h, Options{Clients: 8, Requests: 48, NewRequest: func(i int) *http.Request {
			return exactRequest(i + 1) // all cold
		}})
	}()
	rep := Drive(h, Options{Clients: 2, Requests: 200, NewRequest: func(i int) *http.Request {
		return exactRequest(0) // all hits
	}})
	<-done

	for i := range rep.Results {
		if rep.Results[i].Status != http.StatusOK {
			t.Fatalf("hit request %d returned %d", i, rep.Results[i].Status)
		}
	}
	// The hit path is sub-microsecond in steady state; the bound is
	// generous because CI schedulers stall, but a hit that waits on the
	// planner queue would take >= 20ms and trip it.
	if p99 := rep.LatencyQuantile(0.99, nil); p99 >= 15*time.Millisecond {
		t.Errorf("hit p99 = %v under overload, want < 15ms", p99)
	}
}

// TestDegradedByteStable: in degraded mode, shed requests serve the
// first-order fallback with "degraded":true, and repeated degraded
// responses for one configuration are byte-identical.
func TestDegradedByteStable(t *testing.T) {
	inj := &Injector{PlannerDelay: 50 * time.Millisecond, Seed: 3}
	svc := service.New(inj.Apply(service.Config{ColdWorkers: 1, ColdQueue: 1, Degraded: true}))
	h := svc.Handler()

	// Saturate the single worker and the one-deep queue with two slow
	// cold plans, then request a third configuration repeatedly: the
	// gate sheds it, degraded mode answers it.
	for i := 0; i < 2; i++ {
		go func(i int) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, exactRequest(100+i))
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let both occupy slot + queue

	var bodies [][]byte
	for try := 0; try < 5; try++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, exactRequest(0))
		if rec.Code != http.StatusOK {
			t.Fatalf("degraded request returned %d: %s", rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get(service.OutcomeHeader); got != "degraded" {
			t.Fatalf("outcome header = %q, want degraded", got)
		}
		bodies = append(bodies, rec.Body.Bytes())
	}
	for i, b := range bodies[1:] {
		if !bytes.Equal(b, bodies[0]) {
			t.Errorf("degraded response %d differs: %s vs %s", i+1, b, bodies[0])
		}
	}
	var resp service.PlanResponse
	if err := json.Unmarshal(bodies[0], &resp); err != nil {
		t.Fatalf("decode degraded response: %v", err)
	}
	if !resp.Degraded {
		t.Error(`degraded response lacks "degraded":true`)
	}
	if resp.DegradedDelta < 0 {
		t.Errorf("degradedDelta = %g, want >= 0 (first-order underestimates)", resp.DegradedDelta)
	}
	if snap := metricsSnapshot(t, h); snap.Degraded < 5 {
		t.Errorf("degraded counter = %d, want >= 5", snap.Degraded)
	}

	// Degraded responses are never cached: once the overload clears,
	// the same configuration computes the exact plan.
	WaitGoroutines(runtime.NumGoroutine(), 2*time.Second)
	time.Sleep(120 * time.Millisecond) // let the two slow plans finish
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, exactRequest(0))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-overload request returned %d", rec.Code)
	}
	var exact service.PlanResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Degraded {
		t.Error("post-overload response is still degraded: degraded body was cached")
	}
	if !exact.Exact {
		t.Error("post-overload response is not the exact plan")
	}
}

// TestInjectedErrorsNotCached: a forced cold-plan failure surfaces as
// an error response, and the failure is not cached — the same request
// succeeds once the fault is disarmed.
func TestInjectedErrorsNotCached(t *testing.T) {
	inj := &Injector{Seed: 4}
	inj.SetFailEvery(1) // every cold plan fails
	svc := service.New(inj.Apply(service.Config{ColdWorkers: 2, ColdQueue: 2}))
	h := svc.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, exactRequest(0))
	if rec.Code == http.StatusOK {
		t.Fatalf("injected fault did not fail the request (status %d)", rec.Code)
	}
	inj.SetFailEvery(0)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, exactRequest(0))
	if rec.Code != http.StatusOK {
		t.Fatalf("request after disarming returned %d, want 200 (error was cached?)", rec.Code)
	}
}

// TestRetryAfterClampedUnderClockSkew: a wildly scaled and skewed
// service clock corrupts the cold-plan latency observations, but the
// Retry-After advice stays within [1, 60] seconds.
func TestRetryAfterClampedUnderClockSkew(t *testing.T) {
	inj := &Injector{
		PlannerDelay: 10 * time.Millisecond,
		ClockSkew:    -3 * time.Hour,
		ClockScale:   1e5, // 10ms of real delay reads as ~1000s
		Seed:         5,
	}
	svc := service.New(inj.Apply(service.Config{ColdWorkers: 1, ColdQueue: 1}))
	h := svc.Handler()

	rep := Drive(h, Options{Clients: 12, Requests: 48, NewRequest: exactRequest})
	shed := 0
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Status != http.StatusTooManyRequests {
			continue
		}
		shed++
		if r.RetryAfter < 1 || r.RetryAfter > 60 {
			t.Errorf("request %d: Retry-After = %d under clock chaos, want within [1, 60]", i, r.RetryAfter)
		}
	}
	if shed == 0 {
		t.Error("no request was shed; the clamp was never exercised")
	}
}

// TestDeadlineExceeded: a budget far below the injected planner
// latency yields 503 with the deadline outcome, and the abandoned
// computation does not leak.
func TestDeadlineExceeded(t *testing.T) {
	inj := &Injector{PlannerDelay: 50 * time.Millisecond, Seed: 6}
	svc := service.New(inj.Apply(service.Config{ColdWorkers: 2, ColdQueue: 2}))
	h := svc.Handler()
	baseline := runtime.NumGoroutine()

	req := exactRequest(0)
	req.Header.Set(service.TimeoutHeader, "5ms")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(service.OutcomeHeader); got != "deadline-exceeded" {
		t.Errorf("outcome header = %q, want deadline-exceeded", got)
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Errorf("body %q does not mention the deadline", rec.Body.String())
	}
	if snap := metricsSnapshot(t, h); snap.DeadlineExceeded == 0 {
		t.Error("deadlineExceeded counter not incremented")
	}
	if n := WaitGoroutines(baseline, 5*time.Second); n > baseline {
		t.Errorf("abandoned flight leaked goroutines: %d, baseline %d", n, baseline)
	}

	// An invalid budget is a client error, not a crash.
	req = exactRequest(1)
	req.Header.Set(service.TimeoutHeader, "soon")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad budget header: status = %d, want 400", rec.Code)
	}
}

// TestJitterDeterministic pins the injector's jitter stream: same
// seed, same sequence.
func TestJitterDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		a := splitmix64(seed)
		b := splitmix64(seed)
		if a != b {
			t.Fatalf("splitmix64(%d) unstable: %d vs %d", seed, a, b)
		}
	}
	if splitmix64(1) == splitmix64(2) {
		t.Error("distinct seeds collide")
	}
}
