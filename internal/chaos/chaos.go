// Package chaos is the fault-injection and overload-testing harness of
// respatd. It wraps a service.Config with injectable faults — planner
// latency and jitter, forced cold-plan errors, clock skew and scale on
// the latency observations feeding Retry-After — plus a closed-loop
// load driver (Drive) that hammers the service's HTTP handler and
// reports per-request dispositions. The chaos suite uses both to
// assert the overload invariants of DESIGN.md §2.8: bounded queue
// depth, bounded hit latency, no goroutine leaks after drain, and
// monotone shed → recover.
//
// Everything here is deterministic: injected jitter comes from a
// seeded splitmix64 stream keyed by the fault sequence number, never
// from math/rand's global state or the wall clock.
package chaos

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"respat/internal/service"
)

// ErrInjected is the error a forced cold-plan fault returns. The HTTP
// layer has no special case for it, so it surfaces like any planner
// failure — which is the point: the suite asserts injected failures
// are never cached.
var ErrInjected = errors.New("chaos: injected cold-plan fault")

// Injector generates the faults. The zero value injects nothing.
// Configure it, then Apply it to a service.Config before service.New.
// SetFailEvery may be called while a drive is running; the other
// fields must be set before Apply.
type Injector struct {
	// PlannerDelay is added to every admitted cold-plan computation,
	// simulating a slow search. It honours the computation's context:
	// an abandoned plan stops sleeping.
	PlannerDelay time.Duration
	// PlannerJitter adds a deterministic pseudo-random extra delay in
	// [0, PlannerJitter) per computation, drawn from Seed.
	PlannerJitter time.Duration
	// Seed keys the jitter stream. Two injectors with equal Seed and
	// fault sequence produce identical delays.
	Seed uint64
	// ClockSkew is added to every reading of the service clock,
	// simulating a stepped clock. A constant skew cancels in the
	// latency differences; pair it with ClockScale to corrupt them.
	ClockSkew time.Duration
	// ClockScale multiplies elapsed time as seen by the service clock
	// (0 means 1: unscaled). A scale of 1000 makes a 1ms cold plan
	// look like 1s to the Retry-After estimator — the clamp in the
	// admission gate is what keeps the advice bounded anyway.
	ClockScale float64

	failEvery atomic.Int64 // every Nth fault call fails; 0 = never
	calls     atomic.Int64 // fault sequence number
	epoch     time.Time    // ClockScale reference point, set by Apply
}

// SetFailEvery arranges for every nth admitted cold plan to fail with
// ErrInjected (n <= 0 disables failures). Safe to call concurrently
// with a running drive.
func (in *Injector) SetFailEvery(n int) { in.failEvery.Store(int64(n)) }

// Calls returns how many cold-plan computations reached the fault
// hook.
func (in *Injector) Calls() int64 { return in.calls.Load() }

// Apply returns cfg with the injector's fault hook and clock wired in.
func (in *Injector) Apply(cfg service.Config) service.Config {
	in.epoch = time.Now()
	cfg.ColdFault = in.fault
	cfg.Now = in.now
	return cfg
}

// fault is the injected cold-plan hook: sleep the configured delay
// plus jitter (respecting ctx), then fail if this call's sequence
// number is a multiple of failEvery.
func (in *Injector) fault(ctx context.Context) error {
	n := in.calls.Add(1)
	d := in.PlannerDelay
	if in.PlannerJitter > 0 {
		d += time.Duration(splitmix64(in.Seed+uint64(n)) % uint64(in.PlannerJitter))
	}
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if every := in.failEvery.Load(); every > 0 && n%every == 0 {
		return ErrInjected
	}
	return nil
}

// now is the skewed, scaled service clock.
func (in *Injector) now() time.Time {
	t := time.Now()
	if in.ClockScale != 0 && in.ClockScale != 1 {
		t = in.epoch.Add(time.Duration(float64(t.Sub(in.epoch)) * in.ClockScale))
	}
	return t.Add(in.ClockSkew)
}

// splitmix64 is the standard 64-bit mix (Steele et al.), enough for
// jitter and far better than sharing math/rand's locked global.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
