package chaos

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"respat/internal/obs"
	"respat/internal/service"
)

// Options configures one closed-loop drive.
type Options struct {
	// Clients is the number of concurrent closed-loop clients: each
	// sends its next request only after the previous one completed
	// (default 8). Offered load is therefore bounded by service
	// latency, as with real callers.
	Clients int
	// Requests is the total number of requests across all clients
	// (default Clients).
	Requests int
	// NewRequest builds request i (0-based). Required. It must return
	// a fresh request each call — requests are consumed by ServeHTTP.
	NewRequest func(i int) *http.Request
}

// Result is one request's disposition.
type Result struct {
	Status  int
	Outcome string // the X-Respatd-Outcome header ("" when absent)
	// TraceID is the X-Respat-Trace response header: non-empty exactly
	// when the service sampled the request, joining the result to the
	// service's /debug/traces ring.
	TraceID string
	// RetryAfter is the parsed Retry-After header in seconds, 0 when
	// absent.
	RetryAfter int
	Body       []byte
	Latency    time.Duration
}

// Report aggregates one drive.
type Report struct {
	Results []Result // indexed by request number
}

// StatusCounts tallies results by HTTP status.
func (r *Report) StatusCounts() map[int]int {
	out := make(map[int]int)
	for i := range r.Results {
		out[r.Results[i].Status]++
	}
	return out
}

// OutcomeCounts tallies results by overload disposition.
func (r *Report) OutcomeCounts() map[string]int {
	out := make(map[string]int)
	for i := range r.Results {
		if o := r.Results[i].Outcome; o != "" {
			out[o]++
		}
	}
	return out
}

// LatencyQuantile returns the q-quantile (0..1) of the request
// latencies, nearest-rank, over results matching keep (nil keeps all).
func (r *Report) LatencyQuantile(q float64, keep func(Result) bool) time.Duration {
	var lat []time.Duration
	for i := range r.Results {
		if keep == nil || keep(r.Results[i]) {
			lat = append(lat, r.Results[i].Latency)
		}
	}
	if len(lat) == 0 {
		return 0
	}
	// Insertion sort: the windows here are test-sized.
	for i := 1; i < len(lat); i++ {
		for j := i; j > 0 && lat[j] < lat[j-1]; j-- {
			lat[j], lat[j-1] = lat[j-1], lat[j]
		}
	}
	idx := int(q * float64(len(lat)-1))
	return lat[idx]
}

// Drive runs a closed-loop load of opts against h (in-process, no
// sockets) and reports every request's disposition. It returns only
// after every client finished, so the handler has no requests in
// flight when Drive returns — background flights may still be
// draining; see WaitGoroutines.
func Drive(h http.Handler, opts Options) *Report {
	if opts.Clients <= 0 {
		opts.Clients = 8
	}
	if opts.Requests <= 0 {
		opts.Requests = opts.Clients
	}
	rep := &Report{Results: make([]Result, opts.Requests)}
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				req := opts.NewRequest(i)
				rec := httptest.NewRecorder()
				start := time.Now()
				h.ServeHTTP(rec, req)
				res := &rep.Results[i]
				res.Latency = time.Since(start)
				res.Status = rec.Code
				res.Outcome = rec.Header().Get(service.OutcomeHeader)
				res.TraceID = rec.Header().Get(obs.TraceHeader)
				if ra := rec.Header().Get("Retry-After"); ra != "" {
					res.RetryAfter, _ = strconv.Atoi(ra)
				}
				res.Body = rec.Body.Bytes()
			}
		}()
	}
	wg.Wait()
	return rep
}

// WaitGoroutines polls until the process goroutine count is at most
// baseline (plus slack for runtime helpers) or the timeout elapses,
// returning the final count. The chaos suite uses it to assert
// abandoned flights and queued cold plans all drain.
func WaitGoroutines(baseline int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline || time.Now().After(deadline) {
			return n
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}
