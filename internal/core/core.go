// Package core defines the computational-pattern model of the paper
// (Section 2): the resilience cost parameters, the two error rates, the
// six pattern families of Table 1, and the pattern object
// P(W, n, α, m, ⟨β1..βn⟩) together with its flattening into an
// executable schedule of operations consumed by the simulator
// (internal/sim) and the runtime (internal/engine).
package core

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"respat/internal/xmath"
)

// Costs groups the resilience cost parameters, all in seconds.
// The notation follows Section 2.3 of the paper.
type Costs struct {
	DiskCkpt float64 // CD: disk (stable-storage) checkpoint
	MemCkpt  float64 // CM: in-memory checkpoint
	DiskRec  float64 // RD: disk recovery
	MemRec   float64 // RM: memory recovery
	GuarVer  float64 // V*: guaranteed verification (recall 1)
	PartVer  float64 // V:  partial verification
	Recall   float64 // r:  partial-verification recall, in (0, 1]
}

// Validate checks that all costs are finite and non-negative and the
// recall lies in (0, 1].
func (c Costs) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: cost %s = %v, need finite >= 0", name, v)
		}
		return nil
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"CD", c.DiskCkpt}, {"CM", c.MemCkpt}, {"RD", c.DiskRec},
		{"RM", c.MemRec}, {"V*", c.GuarVer}, {"V", c.PartVer},
	} {
		if err := check(p.name, p.v); err != nil {
			return err
		}
	}
	if c.Recall <= 0 || c.Recall > 1 || math.IsNaN(c.Recall) {
		return fmt.Errorf("core: recall r = %v, need 0 < r <= 1", c.Recall)
	}
	return nil
}

// AccuracyToCost returns the accuracy-to-cost ratio of the partial
// verification, a = (r/(2-r)) / (V/(V*+CM)), the figure of merit of
// [Cavelan et al. 2015] quoted in Section 2.3. Higher is better; the
// guaranteed verification scores CM/V* + 1.
func (c Costs) AccuracyToCost() float64 {
	if c.PartVer == 0 {
		return math.Inf(1)
	}
	return (c.Recall / (2 - c.Recall)) / (c.PartVer / (c.GuarVer + c.MemCkpt))
}

// GuaranteedAccuracyToCost returns the accuracy-to-cost ratio of the
// guaranteed verification, CM/V* + 1.
func (c Costs) GuaranteedAccuracyToCost() float64 {
	if c.GuarVer == 0 {
		return math.Inf(1)
	}
	return c.MemCkpt/c.GuarVer + 1
}

// Rates holds the arrival rates of the two independent Poisson error
// processes (Section 2.1), in errors per second.
type Rates struct {
	FailStop float64 // λf
	Silent   float64 // λs
}

// Validate checks the rates are finite and non-negative.
func (r Rates) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"lambda_f", r.FailStop}, {"lambda_s", r.Silent}} {
		if p.v < 0 || math.IsNaN(p.v) || math.IsInf(p.v, 0) {
			return fmt.Errorf("core: rate %s = %v, need finite >= 0", p.name, p.v)
		}
	}
	return nil
}

// Total returns λ = λf + λs, the reciprocal of the platform MTBF
// accounting for both error sources.
func (r Rates) Total() float64 { return r.FailStop + r.Silent }

// MTBF returns the platform mean time between failures µ = 1/λ.
func (r Rates) MTBF() float64 {
	if t := r.Total(); t > 0 {
		return 1 / t
	}
	return math.Inf(1)
}

// Scale returns the rates multiplied component-wise by (ff, fs); it
// implements the error-rate sweeps of Section 6.4.
func (r Rates) Scale(ff, fs float64) Rates {
	return Rates{FailStop: r.FailStop * ff, Silent: r.Silent * fs}
}

// Kind enumerates the six pattern families of Table 1.
type Kind int

// The six families, ordered as in Table 1. The D subscript denotes the
// disk checkpoint closing every pattern, M intermediate memory
// checkpoints, V* intermediate guaranteed verifications, and V
// intermediate partial verifications.
const (
	PD Kind = iota
	PDVStar
	PDV
	PDM
	PDMVStar
	PDMV
	numKinds
)

// Kinds returns all six families in Table 1 order.
func Kinds() []Kind { return []Kind{PD, PDVStar, PDV, PDM, PDMVStar, PDMV} }

// Valid reports whether k is one of the six Table 1 families.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// String returns the paper's name for the family.
func (k Kind) String() string {
	switch k {
	case PD:
		return "PD"
	case PDVStar:
		return "PDV*"
	case PDV:
		return "PDV"
	case PDM:
		return "PDM"
	case PDMVStar:
		return "PDMV*"
	case PDMV:
		return "PDMV"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a pattern-family name ("PDMV*", case-insensitive,
// "star" accepted for "*") back into a Kind.
func ParseKind(s string) (Kind, error) {
	norm := strings.ToUpper(strings.TrimSpace(s))
	norm = strings.ReplaceAll(norm, "STAR", "*")
	for _, k := range Kinds() {
		if k.String() == norm {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown pattern kind %q", s)
}

// MultiSegment reports whether the family places memory checkpoints
// between disk checkpoints (n may exceed 1).
func (k Kind) MultiSegment() bool { return k == PDM || k == PDMVStar || k == PDMV }

// MultiChunk reports whether the family places verifications inside
// segments (m may exceed 1).
func (k Kind) MultiChunk() bool {
	return k == PDVStar || k == PDV || k == PDMVStar || k == PDMV
}

// PartialVerifs reports whether intermediate verifications are partial
// (recall r < 1 allowed) rather than guaranteed.
func (k Kind) PartialVerifs() bool { return k == PDV || k == PDMV }

// ErrInvalidPattern tags pattern-validation failures.
var ErrInvalidPattern = errors.New("core: invalid pattern")

// Pattern is the computational unit P(W, n, α, m, ⟨β1..βn⟩) of
// Section 2.3. Alpha holds the n segment fractions (Σα = 1); Beta[i]
// holds segment i's chunk fractions (Σ Beta[i] = 1, len(Beta[i]) = mi).
// Every segment implicitly ends with a guaranteed verification and a
// memory checkpoint; the pattern ends with a guaranteed verification, a
// memory checkpoint and a disk checkpoint. Interior chunk boundaries
// carry partial verifications.
type Pattern struct {
	W     float64
	Alpha []float64
	Beta  [][]float64
	// InteriorGuaranteed selects the verification placed at interior
	// chunk boundaries: guaranteed (families PDV*, PDMV*) when true,
	// partial (families PDV, PDMV) when false. Segment-final
	// verifications are always guaranteed.
	InteriorGuaranteed bool
}

// New builds an explicitly sized pattern. It does not validate; call
// Validate or use the Uniform helper.
func New(w float64, alpha []float64, beta [][]float64) Pattern {
	return Pattern{W: w, Alpha: alpha, Beta: beta}
}

// Layout builds the optimal interior layout of a family: n segments of
// equal size, m chunks per segment. For the partial families (PDV,
// PDMV) chunks follow the Theorem 3 sizes for recall r; for the
// guaranteed families (PDV*, PDMV*) chunks are equal and interior
// verifications are guaranteed. n is forced to 1 for single-segment
// families and m to 1 for single-chunk families.
func Layout(k Kind, w float64, n, m int, r float64) (Pattern, error) {
	if !k.MultiSegment() {
		n = 1
	}
	if !k.MultiChunk() {
		m = 1
	}
	rEff := r
	if !k.PartialVerifs() {
		rEff = 1
	}
	p, err := Uniform(w, n, m, rEff)
	if err != nil {
		return Pattern{}, err
	}
	p.InteriorGuaranteed = k.MultiChunk() && !k.PartialVerifs()
	return p, nil
}

// Uniform builds the pattern with n equal segments, each of m chunks
// sized by the closed-form β* of Theorem 3 for recall r (equal chunks
// when r = 1). This is the optimal interior layout of Theorem 4.
func Uniform(w float64, n, m int, r float64) (Pattern, error) {
	if n <= 0 || m <= 0 {
		return Pattern{}, fmt.Errorf("%w: n=%d m=%d", ErrInvalidPattern, n, m)
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return Pattern{}, fmt.Errorf("%w: W=%v", ErrInvalidPattern, w)
	}
	if r <= 0 || r > 1 || math.IsNaN(r) {
		return Pattern{}, fmt.Errorf("%w: recall=%v", ErrInvalidPattern, r)
	}
	alpha := make([]float64, n)
	for i := range alpha {
		alpha[i] = 1 / float64(n)
	}
	beta := make([][]float64, n)
	row := optimalChunks(m, r)
	for i := range beta {
		beta[i] = append([]float64(nil), row...)
	}
	return Pattern{W: w, Alpha: alpha, Beta: beta}, nil
}

// optimalChunks returns the Theorem 3 chunk fractions (first and last
// 1/((m-2)r+2), interior r/((m-2)r+2)); for m = 1 the single chunk is
// the whole segment.
func optimalChunks(m int, r float64) []float64 {
	if m == 1 {
		return []float64{1}
	}
	den := float64(m-2)*r + 2
	row := make([]float64, m)
	for j := range row {
		row[j] = r / den
	}
	row[0] = 1 / den
	row[m-1] = 1 / den
	return row
}

// N returns the number of segments.
func (p Pattern) N() int { return len(p.Alpha) }

// M returns the number of chunks in segment i.
func (p Pattern) M(i int) int { return len(p.Beta[i]) }

// TotalChunks returns the number of chunks across all segments.
func (p Pattern) TotalChunks() int {
	var t int
	for i := range p.Beta {
		t += len(p.Beta[i])
	}
	return t
}

// SegmentWork returns wi = αi·W.
func (p Pattern) SegmentWork(i int) float64 { return p.Alpha[i] * p.W }

// ChunkWork returns wij = βij·αi·W.
func (p Pattern) ChunkWork(i, j int) float64 { return p.Beta[i][j] * p.Alpha[i] * p.W }

// Validate checks structural consistency: positive W, matching segment
// counts, positive fractions summing to one.
func (p Pattern) Validate() error {
	if p.W <= 0 || math.IsNaN(p.W) || math.IsInf(p.W, 0) {
		return fmt.Errorf("%w: W = %v", ErrInvalidPattern, p.W)
	}
	if len(p.Alpha) == 0 {
		return fmt.Errorf("%w: no segments", ErrInvalidPattern)
	}
	if len(p.Beta) != len(p.Alpha) {
		return fmt.Errorf("%w: %d alpha vs %d beta rows", ErrInvalidPattern, len(p.Alpha), len(p.Beta))
	}
	var sumA float64
	for i, a := range p.Alpha {
		if a <= 0 || math.IsNaN(a) {
			return fmt.Errorf("%w: alpha[%d] = %v", ErrInvalidPattern, i, a)
		}
		sumA += a
		if len(p.Beta[i]) == 0 {
			return fmt.Errorf("%w: segment %d has no chunks", ErrInvalidPattern, i)
		}
		var sumB float64
		for j, b := range p.Beta[i] {
			if b <= 0 || math.IsNaN(b) {
				return fmt.Errorf("%w: beta[%d][%d] = %v", ErrInvalidPattern, i, j, b)
			}
			sumB += b
		}
		if !xmath.Close(sumB, 1, 1e-9) {
			return fmt.Errorf("%w: beta[%d] sums to %v", ErrInvalidPattern, i, sumB)
		}
	}
	if !xmath.Close(sumA, 1, 1e-9) {
		return fmt.Errorf("%w: alpha sums to %v", ErrInvalidPattern, sumA)
	}
	return nil
}

// String renders the pattern compactly, e.g. "P(W=3600, n=2, m=[3 3])".
func (p Pattern) String() string {
	ms := make([]string, len(p.Beta))
	for i := range p.Beta {
		ms[i] = fmt.Sprintf("%d", len(p.Beta[i]))
	}
	return fmt.Sprintf("P(W=%.6g, n=%d, m=[%s])", p.W, p.N(), strings.Join(ms, " "))
}

// Op enumerates the primitive operations a pattern flattens into.
type Op int

// Operations in schedule order. Recovery operations never appear in a
// schedule; they are emitted dynamically by the executor on error.
const (
	OpChunk   Op = iota // computation chunk
	OpPartVer           // partial verification (interior chunk boundary)
	OpGuarVer           // guaranteed verification (segment end)
	OpMemCkpt           // memory checkpoint (segment end)
	OpDisk              // disk checkpoint (pattern end)
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpChunk:
		return "chunk"
	case OpPartVer:
		return "partial-verif"
	case OpGuarVer:
		return "guaranteed-verif"
	case OpMemCkpt:
		return "mem-ckpt"
	case OpDisk:
		return "disk-ckpt"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Action is one step of an executable schedule.
type Action struct {
	Op      Op
	Segment int     // segment index (0-based)
	Chunk   int     // chunk index within segment, for OpChunk/OpPartVer
	Work    float64 // chunk duration for OpChunk, else 0 (cost from Costs)
}

// Schedule flattens the pattern into the ordered action list executed
// between two disk checkpoints: for each segment, its chunks separated
// by partial verifications, then the guaranteed verification and the
// memory checkpoint; the final action is the disk checkpoint.
func (p Pattern) Schedule() []Action {
	var out []Action
	interior := OpPartVer
	if p.InteriorGuaranteed {
		interior = OpGuarVer
	}
	for i := range p.Alpha {
		m := len(p.Beta[i])
		for j := 0; j < m; j++ {
			out = append(out, Action{Op: OpChunk, Segment: i, Chunk: j, Work: p.ChunkWork(i, j)})
			if j < m-1 {
				out = append(out, Action{Op: interior, Segment: i, Chunk: j})
			}
		}
		out = append(out, Action{Op: OpGuarVer, Segment: i})
		out = append(out, Action{Op: OpMemCkpt, Segment: i})
	}
	out = append(out, Action{Op: OpDisk, Segment: len(p.Alpha) - 1})
	return out
}

// ErrorFreeTime returns the wall-clock duration of one error-free
// traversal of the pattern: W plus all verification and checkpoint
// costs. This is the numerator of the error-free overhead oef/W.
func (p Pattern) ErrorFreeTime(c Costs) float64 {
	interior := c.PartVer
	if p.InteriorGuaranteed {
		interior = c.GuarVer
	}
	t := p.W + c.DiskCkpt
	for i := range p.Alpha {
		t += c.GuarVer + c.MemCkpt
		t += float64(len(p.Beta[i])-1) * interior
	}
	return t
}

// ErrorFreeOverhead returns oef, the resilience time added per pattern
// in the absence of errors (Definition 1).
func (p Pattern) ErrorFreeOverhead(c Costs) float64 {
	return p.ErrorFreeTime(c) - p.W
}
