package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"respat/internal/xmath"
)

func validCosts() Costs {
	return Costs{DiskCkpt: 300, MemCkpt: 15.4, DiskRec: 300, MemRec: 15.4,
		GuarVer: 15.4, PartVer: 0.154, Recall: 0.8}
}

func TestCostsValidate(t *testing.T) {
	if err := validCosts().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := validCosts()
	bad.DiskCkpt = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative CD should fail")
	}
	bad = validCosts()
	bad.Recall = 0
	if err := bad.Validate(); err == nil {
		t.Error("recall 0 should fail")
	}
	bad = validCosts()
	bad.Recall = 1.2
	if err := bad.Validate(); err == nil {
		t.Error("recall > 1 should fail")
	}
	bad = validCosts()
	bad.GuarVer = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN cost should fail")
	}
}

func TestAccuracyToCost(t *testing.T) {
	c := validCosts()
	// a = (r/(2-r)) / (V/(V*+CM)) = (0.8/1.2) / (0.154/30.8) = 133.33.
	want := (0.8 / 1.2) / (0.154 / 30.8)
	if got := c.AccuracyToCost(); !xmath.Close(got, want, 1e-12) {
		t.Errorf("AccuracyToCost = %v, want %v", got, want)
	}
	// The paper notes partial verification ratios can be ~100x better
	// than guaranteed; with the simulation defaults it indeed is.
	if c.AccuracyToCost() < 50*c.GuaranteedAccuracyToCost() {
		t.Errorf("partial ratio %v not >> guaranteed ratio %v",
			c.AccuracyToCost(), c.GuaranteedAccuracyToCost())
	}
	c.PartVer = 0
	if !math.IsInf(c.AccuracyToCost(), 1) {
		t.Error("free partial verification should have infinite ratio")
	}
	c.GuarVer = 0
	if !math.IsInf(c.GuaranteedAccuracyToCost(), 1) {
		t.Error("free guaranteed verification should have infinite ratio")
	}
}

func TestRates(t *testing.T) {
	r := Rates{FailStop: 2e-6, Silent: 3e-6}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if !xmath.Close(r.Total(), 5e-6, 1e-15) {
		t.Errorf("Total = %v", r.Total())
	}
	if !xmath.Close(r.MTBF(), 2e5, 1e-9) {
		t.Errorf("MTBF = %v", r.MTBF())
	}
	s := r.Scale(2, 0.5)
	if !xmath.Close(s.FailStop, 4e-6, 1e-15) || !xmath.Close(s.Silent, 1.5e-6, 1e-15) {
		t.Errorf("Scale = %+v", s)
	}
	if (Rates{}).MTBF() != math.Inf(1) {
		t.Error("zero rates should give infinite MTBF")
	}
	if err := (Rates{FailStop: -1}).Validate(); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %v -> %v", k, got)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("unknown kind should fail")
	}
	if k, err := ParseKind("pdmvstar"); err != nil || k != PDMVStar {
		t.Errorf("ParseKind(pdmvstar) = %v, %v", k, err)
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k                          Kind
		multiSeg, multiChunk, part bool
	}{
		{PD, false, false, false},
		{PDVStar, false, true, false},
		{PDV, false, true, true},
		{PDM, true, false, false},
		{PDMVStar, true, true, false},
		{PDMV, true, true, true},
	}
	for _, c := range cases {
		if c.k.MultiSegment() != c.multiSeg {
			t.Errorf("%v.MultiSegment() = %v", c.k, c.k.MultiSegment())
		}
		if c.k.MultiChunk() != c.multiChunk {
			t.Errorf("%v.MultiChunk() = %v", c.k, c.k.MultiChunk())
		}
		if c.k.PartialVerifs() != c.part {
			t.Errorf("%v.PartialVerifs() = %v", c.k, c.k.PartialVerifs())
		}
	}
}

func TestUniformPattern(t *testing.T) {
	p, err := Uniform(3600, 2, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.N() != 2 || p.M(0) != 3 || p.M(1) != 3 || p.TotalChunks() != 6 {
		t.Errorf("shape wrong: %v", p)
	}
	if !xmath.Close(p.SegmentWork(0), 1800, 1e-9) {
		t.Errorf("SegmentWork = %v", p.SegmentWork(0))
	}
	// Theorem 3 chunks: first/last 1/2.8, middle 0.8/2.8 of the segment.
	if !xmath.Close(p.ChunkWork(0, 0), 1800/2.8, 1e-9) {
		t.Errorf("ChunkWork(0,0) = %v, want %v", p.ChunkWork(0, 0), 1800/2.8)
	}
	if !xmath.Close(p.ChunkWork(0, 1), 1800*0.8/2.8, 1e-9) {
		t.Errorf("ChunkWork(0,1) = %v", p.ChunkWork(0, 1))
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := Uniform(100, 0, 1, 0.5); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := Uniform(100, 1, 0, 0.5); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := Uniform(-5, 1, 1, 0.5); err == nil {
		t.Error("W<0 should fail")
	}
	if _, err := Uniform(100, 1, 1, 2); err == nil {
		t.Error("r>1 should fail")
	}
}

func TestValidateCatchesBadFractions(t *testing.T) {
	p := New(100, []float64{0.6, 0.6}, [][]float64{{1}, {1}})
	if err := p.Validate(); !errors.Is(err, ErrInvalidPattern) {
		t.Errorf("alpha not summing to 1 should fail, got %v", err)
	}
	p = New(100, []float64{1}, [][]float64{{0.5, 0.4}})
	if err := p.Validate(); !errors.Is(err, ErrInvalidPattern) {
		t.Errorf("beta not summing to 1 should fail, got %v", err)
	}
	p = New(100, []float64{1}, [][]float64{})
	if err := p.Validate(); !errors.Is(err, ErrInvalidPattern) {
		t.Errorf("missing beta rows should fail, got %v", err)
	}
	p = New(100, []float64{0.5, 0.5}, [][]float64{{1}, {}})
	if err := p.Validate(); !errors.Is(err, ErrInvalidPattern) {
		t.Errorf("empty segment should fail, got %v", err)
	}
	p = New(100, []float64{-0.5, 1.5}, [][]float64{{1}, {1}})
	if err := p.Validate(); !errors.Is(err, ErrInvalidPattern) {
		t.Errorf("negative alpha should fail, got %v", err)
	}
}

func TestUniformAlwaysValid(t *testing.T) {
	f := func(nRaw, mRaw uint8, rRaw, wRaw float64) bool {
		n := int(nRaw%10) + 1
		m := int(mRaw%10) + 1
		r := math.Mod(math.Abs(rRaw), 0.999) + 0.001
		w := math.Mod(math.Abs(wRaw), 1e6) + 1
		p, err := Uniform(w, n, m, r)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScheduleStructure(t *testing.T) {
	p, err := Uniform(2800, 2, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	sched := p.Schedule()
	// Per segment: 3 chunks + 2 partial verifs + guar verif + mem ckpt = 7.
	// Two segments + final disk ckpt = 15.
	if len(sched) != 15 {
		t.Fatalf("schedule length = %d, want 15", len(sched))
	}
	wantOps := []Op{
		OpChunk, OpPartVer, OpChunk, OpPartVer, OpChunk, OpGuarVer, OpMemCkpt,
		OpChunk, OpPartVer, OpChunk, OpPartVer, OpChunk, OpGuarVer, OpMemCkpt,
		OpDisk,
	}
	var work float64
	for i, a := range sched {
		if a.Op != wantOps[i] {
			t.Errorf("sched[%d].Op = %v, want %v", i, a.Op, wantOps[i])
		}
		work += a.Work
	}
	if !xmath.Close(work, 2800, 1e-9) {
		t.Errorf("total scheduled work = %v, want 2800", work)
	}
	if sched[7].Segment != 1 || sched[7].Chunk != 0 {
		t.Errorf("second segment first chunk mislabelled: %+v", sched[7])
	}
}

func TestSchedulePDIsMinimal(t *testing.T) {
	p, err := Uniform(1000, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched := p.Schedule()
	wantOps := []Op{OpChunk, OpGuarVer, OpMemCkpt, OpDisk}
	if len(sched) != len(wantOps) {
		t.Fatalf("schedule length = %d, want %d", len(sched), len(wantOps))
	}
	for i, a := range sched {
		if a.Op != wantOps[i] {
			t.Errorf("sched[%d].Op = %v, want %v", i, a.Op, wantOps[i])
		}
	}
}

func TestErrorFreeTime(t *testing.T) {
	c := validCosts()
	p, err := Uniform(1000, 2, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// W + 2(V*+CM) + 4V + CD
	want := 1000 + 2*(15.4+15.4) + 4*0.154 + 300
	if got := p.ErrorFreeTime(c); !xmath.Close(got, want, 1e-12) {
		t.Errorf("ErrorFreeTime = %v, want %v", got, want)
	}
	if got := p.ErrorFreeOverhead(c); !xmath.Close(got, want-1000, 1e-12) {
		t.Errorf("ErrorFreeOverhead = %v, want %v", got, want-1000)
	}
}

func TestErrorFreeTimeMatchesSchedule(t *testing.T) {
	c := validCosts()
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%5) + 1
		m := int(mRaw%5) + 1
		p, err := Uniform(5000, n, m, c.Recall)
		if err != nil {
			return false
		}
		var total float64
		for _, a := range p.Schedule() {
			switch a.Op {
			case OpChunk:
				total += a.Work
			case OpPartVer:
				total += c.PartVer
			case OpGuarVer:
				total += c.GuarVer
			case OpMemCkpt:
				total += c.MemCkpt
			case OpDisk:
				total += c.DiskCkpt
			}
		}
		return xmath.Close(total, p.ErrorFreeTime(c), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	for _, c := range []struct {
		op   Op
		want string
	}{
		{OpChunk, "chunk"}, {OpPartVer, "partial-verif"},
		{OpGuarVer, "guaranteed-verif"}, {OpMemCkpt, "mem-ckpt"}, {OpDisk, "disk-ckpt"},
	} {
		if c.op.String() != c.want {
			t.Errorf("%d.String() = %q, want %q", c.op, c.op.String(), c.want)
		}
	}
	if Op(42).String() != "Op(42)" {
		t.Error("unknown op String")
	}
}

func TestPatternString(t *testing.T) {
	p, _ := Uniform(3600, 2, 3, 0.8)
	if got := p.String(); got != "P(W=3600, n=2, m=[3 3])" {
		t.Errorf("String = %q", got)
	}
}
