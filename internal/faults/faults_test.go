package faults

import (
	"math"
	"testing"
	"testing/quick"

	"respat/internal/stats"
	"respat/internal/xmath"
)

func TestNever(t *testing.T) {
	var n Never
	if !math.IsInf(n.Next(0), 1) || !math.IsInf(n.Next(1e12), 1) {
		t.Error("Never should return +Inf")
	}
	if n.Rate() != 0 {
		t.Error("Never rate should be 0")
	}
}

func TestExponentialParamValidation(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := NewExponential(bad, 1, 2); err == nil {
			t.Errorf("NewExponential(%v) should fail", bad)
		}
	}
	e, err := NewExponential(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(e.Next(3), 1) {
		t.Error("zero-rate exponential should never fire")
	}
}

func TestExponentialMoments(t *testing.T) {
	lambda := 1.0 / 300.0
	e, err := NewExponential(lambda, 42, 43)
	if err != nil {
		t.Fatal(err)
	}
	var s stats.Sample
	now := 0.0
	for i := 0; i < 20000; i++ {
		next := e.Next(now)
		s.Add(next - now)
		now = next
	}
	mean := 1 / lambda
	if math.Abs(s.Mean()-mean) > 4*s.StdErr()+mean*0.02 {
		t.Errorf("mean gap = %v, want ~%v", s.Mean(), mean)
	}
	// Exponential: std == mean.
	if math.Abs(s.Std()-mean)/mean > 0.05 {
		t.Errorf("std gap = %v, want ~%v", s.Std(), mean)
	}
}

func TestExponentialKS(t *testing.T) {
	lambda := 2.0
	e, _ := NewExponential(lambda, 7, 8)
	xs := make([]float64, 3000)
	now := 0.0
	for i := range xs {
		next := e.Next(now)
		xs[i] = next - now
		now = next
	}
	cdf := func(x float64) float64 { return 1 - math.Exp(-lambda*x) }
	d, p, err := stats.KolmogorovSmirnov(xs, cdf)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.005 {
		t.Errorf("KS rejects exponential sampler: D=%v p=%v", d, p)
	}
}

func TestExponentialMonotone(t *testing.T) {
	e, _ := NewExponential(10, 1, 1)
	f := func(now float64) bool {
		if math.IsNaN(now) || math.IsInf(now, 0) {
			return true
		}
		// Clamp to a realistic simulation horizon (~30k years in
		// seconds); beyond float64 granularity now+gap can equal now.
		now = math.Mod(math.Abs(now), 1e12)
		return e.Next(now) > now
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExponentialDeterministicBySeed(t *testing.T) {
	a, _ := NewExponential(0.5, 11, 12)
	b, _ := NewExponential(0.5, 11, 12)
	now := 0.0
	for i := 0; i < 100; i++ {
		na, nb := a.Next(now), b.Next(now)
		if na != nb {
			t.Fatalf("streams diverge at step %d: %v vs %v", i, na, nb)
		}
		now = na
	}
}

func TestWeibullValidation(t *testing.T) {
	if _, err := NewWeibull(0, 1, 1, 2); err == nil {
		t.Error("shape 0 should fail")
	}
	if _, err := NewWeibull(1, -1, 1, 2); err == nil {
		t.Error("negative scale should fail")
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	// With k=1, Weibull(1, scale) gaps are Exp(1/scale).
	scale := 100.0
	w, err := NewWeibull(1, scale, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.Close(w.Rate(), 1/scale, 1e-9) {
		t.Errorf("Rate = %v, want %v", w.Rate(), 1/scale)
	}
	xs := make([]float64, 3000)
	now := 0.0
	for i := range xs {
		next := w.Next(now)
		xs[i] = next - now
		now = next
	}
	cdf := func(x float64) float64 { return 1 - math.Exp(-x/scale) }
	_, p, err := stats.KolmogorovSmirnov(xs, cdf)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.005 {
		t.Errorf("Weibull(1) sampler rejected as exponential: p=%v", p)
	}
}

func TestWeibullMeanMatchesRate(t *testing.T) {
	w, err := NewWeibull(0.7, 1000, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	var s stats.Sample
	now := 0.0
	for i := 0; i < 30000; i++ {
		next := w.Next(now)
		s.Add(next - now)
		now = next
	}
	want := 1 / w.Rate()
	if math.Abs(s.Mean()-want)/want > 0.05 {
		t.Errorf("mean gap = %v, want ~%v", s.Mean(), want)
	}
}

func TestLogNormalValidation(t *testing.T) {
	if _, err := NewLogNormal(0, 0, 1, 2); err == nil {
		t.Error("sigma 0 should fail")
	}
	if _, err := NewLogNormal(math.NaN(), 1, 1, 2); err == nil {
		t.Error("NaN mu should fail")
	}
}

func TestLogNormalPositiveGaps(t *testing.T) {
	l, err := NewLogNormal(2, 0.5, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; i < 1000; i++ {
		next := l.Next(now)
		if next <= now {
			t.Fatalf("non-positive gap at step %d", i)
		}
		now = next
	}
	if l.Rate() <= 0 {
		t.Error("rate should be positive")
	}
}

func TestTraceReplay(t *testing.T) {
	tr := NewTrace([]float64{5, 1, 3, math.NaN(), math.Inf(1)})
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if got := tr.Next(0); got != 1 {
		t.Errorf("Next(0) = %v, want 1", got)
	}
	if got := tr.Next(1); got != 3 {
		t.Errorf("Next(1) = %v, want 3", got)
	}
	if got := tr.Next(4.5); got != 5 {
		t.Errorf("Next(4.5) = %v, want 5", got)
	}
	if got := tr.Next(5); !math.IsInf(got, 1) {
		t.Errorf("Next(5) = %v, want +Inf", got)
	}
	// Rollback: asking with an earlier now must still work.
	if got := tr.Next(2); got != 3 {
		t.Errorf("Next(2) after forward scan = %v, want 3", got)
	}
	tr.Reset()
	if got := tr.Next(0); got != 1 {
		t.Errorf("Next(0) after Reset = %v, want 1", got)
	}
}

func TestBernoulli(t *testing.T) {
	b := NewBernoulli(21, 22)
	if b.Hit(0) {
		t.Error("Hit(0) must be false")
	}
	if !b.Hit(1) {
		t.Error("Hit(1) must be true")
	}
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if b.Hit(0.8) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.8) > 0.02 {
		t.Errorf("empirical p = %v, want ~0.8", frac)
	}
}

func TestSplitSeedDecorrelates(t *testing.T) {
	seen := map[uint64]bool{}
	for stream := uint64(0); stream < 1000; stream++ {
		a, b := SplitSeed(12345, stream)
		if seen[a] {
			t.Fatalf("seed collision at stream %d", stream)
		}
		seen[a] = true
		if a == b {
			t.Fatalf("seed halves identical at stream %d", stream)
		}
	}
	// Same inputs give same outputs.
	a1, b1 := SplitSeed(9, 3)
	a2, b2 := SplitSeed(9, 3)
	if a1 != a2 || b1 != b2 {
		t.Error("SplitSeed is not deterministic")
	}
}
