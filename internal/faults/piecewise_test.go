package faults

import (
	"math"
	"testing"
)

func TestNewPiecewiseValidation(t *testing.T) {
	cases := []struct {
		name  string
		steps []RateStep
	}{
		{"empty", nil},
		{"nonzero first start", []RateStep{{Start: 1, Lambda: 1}}},
		{"negative rate", []RateStep{{Start: 0, Lambda: -1}}},
		{"NaN rate", []RateStep{{Start: 0, Lambda: math.NaN()}}},
		{"non-increasing starts", []RateStep{{Start: 0, Lambda: 1}, {Start: 0, Lambda: 2}}},
	}
	for _, tc := range cases {
		if _, err := NewPiecewise(tc.steps, 1, 2); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestPiecewiseSingleRegimeMatchesExponentialLaw(t *testing.T) {
	const lambda = 1e-2
	p, err := NewPiecewise([]RateStep{{Start: 0, Lambda: lambda}}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	var now float64
	const n = 20000
	for i := 0; i < n; i++ {
		next := p.Next(now)
		if next <= now {
			t.Fatalf("arrival %v not after %v", next, now)
		}
		now = next
	}
	rate := n / now
	if rate < 0.95*lambda || rate > 1.05*lambda {
		t.Fatalf("empirical rate %v vs lambda %v", rate, lambda)
	}
}

func TestPiecewiseShiftsRateAtBoundary(t *testing.T) {
	const lo, hi, shift = 1e-3, 1e-1, 50_000.0
	p, err := NewPiecewise([]RateStep{
		{Start: 0, Lambda: lo}, {Start: shift, Lambda: hi},
	}, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	var now float64
	var before, after int
	for now < 2*shift {
		now = p.Next(now)
		if now < shift {
			before++
		} else if now < 2*shift {
			after++
		}
	}
	// Expected ~50 arrivals before the shift and ~5000 after.
	if before < 20 || before > 100 {
		t.Fatalf("arrivals before shift = %d, want ~50", before)
	}
	if after < 4000 || after > 6000 {
		t.Fatalf("arrivals after shift = %d, want ~5000", after)
	}
	if got := p.Rate(); got != hi {
		t.Fatalf("Rate() = %v, want final regime %v", got, hi)
	}
}

func TestPiecewiseZeroRateRegimes(t *testing.T) {
	// Quiescent head: nothing before 100, rate 1 after.
	p, err := NewPiecewise([]RateStep{
		{Start: 0, Lambda: 0}, {Start: 100, Lambda: 1},
	}, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if next := p.Next(0); next <= 100 {
		t.Fatalf("arrival %v inside the quiescent regime", next)
	}
	// Quiescent tail: no arrivals after 10.
	q, err := NewPiecewise([]RateStep{
		{Start: 0, Lambda: 1}, {Start: 10, Lambda: 0},
	}, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if next := q.Next(10); !math.IsInf(next, 1) {
		t.Fatalf("arrival %v after the process went quiescent, want +Inf", next)
	}
}

func TestPiecewiseDeterministicPerSeed(t *testing.T) {
	steps := []RateStep{{Start: 0, Lambda: 1e-2}, {Start: 1000, Lambda: 1e-1}}
	a, _ := NewPiecewise(steps, 11, 12)
	b, _ := NewPiecewise(steps, 11, 12)
	var now float64
	for i := 0; i < 1000; i++ {
		na, nb := a.Next(now), b.Next(now)
		if na != nb {
			t.Fatalf("arrival %d differs: %v vs %v", i, na, nb)
		}
		now = na
	}
}

func TestPiecewiseSubnormalRateTerminates(t *testing.T) {
	// A subnormal final-regime rate overflows the sampled gap to +Inf;
	// Next must return it (the source never fires again), not loop
	// resampling at the unbounded regime's end.
	p, err := NewPiecewise([]RateStep{{Start: 0, Lambda: 1e-310}}, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		next := p.Next(0)
		if math.IsInf(next, 1) {
			return // overflowed and returned, as it must
		}
		if next <= 0 {
			t.Fatalf("arrival %v, want > 0", next)
		}
	}
}
