// Package faults is the error-arrival substrate of respat. It generates
// the fail-stop and silent-error arrival processes of the paper's
// failure model (Section 2.1): independent Poisson processes with rates
// λf and λs, sampled as exponential inter-arrival gaps. Beyond the
// paper's exponential assumption the package also provides Weibull and
// log-normal generators (for robustness ablations) and deterministic
// trace replay (for engine tests and reproducible injections).
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// ErrBadParam reports an invalid distribution parameter.
var ErrBadParam = errors.New("faults: invalid parameter")

// Source produces successive arrival times of a point process, in
// seconds of *exposure time* (the clock only ticks while the protected
// activity runs). Implementations need not be safe for concurrent use;
// the simulator gives each worker its own Source.
type Source interface {
	// Next returns the absolute time of the next arrival strictly after
	// time now. Implementations must be monotone: Next(now) > now.
	Next(now float64) float64
	// Rate returns the long-run arrival rate (arrivals per second), or 0
	// if the process has no constant rate (e.g. trace replay).
	Rate() float64
}

// Never is a Source that never produces an arrival.
type Never struct{}

// Next returns +Inf.
func (Never) Next(float64) float64 { return math.Inf(1) }

// Rate returns 0.
func (Never) Rate() float64 { return 0 }

// Exponential samples a homogeneous Poisson process with rate Lambda
// using memoryless exponential gaps. This is the paper's failure model.
type Exponential struct {
	Lambda float64
	Rng    *rand.Rand
}

// NewExponential returns an exponential Source with rate lambda >= 0,
// seeded deterministically from (seed1, seed2). A zero rate yields a
// process that never fires.
func NewExponential(lambda float64, seed1, seed2 uint64) (*Exponential, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("%w: lambda = %v", ErrBadParam, lambda)
	}
	return &Exponential{Lambda: lambda, Rng: rand.New(rand.NewPCG(seed1, seed2))}, nil
}

// Next returns now + Exp(Lambda).
func (e *Exponential) Next(now float64) float64 {
	if e.Lambda == 0 {
		return math.Inf(1)
	}
	return now + e.Rng.ExpFloat64()/e.Lambda
}

// Rate returns Lambda.
func (e *Exponential) Rate() float64 { return e.Lambda }

// Weibull samples inter-arrival gaps from a Weibull(shape k, scale λ)
// law via inverse-CDF. With k=1 it degenerates to the exponential; with
// k<1 it exhibits the infant-mortality clustering observed on real
// machines, a standard robustness ablation for checkpointing models.
type Weibull struct {
	Shape float64 // k
	Scale float64 // λ (seconds)
	Rng   *rand.Rand
}

// NewWeibull returns a Weibull Source with shape k > 0 and scale > 0.
func NewWeibull(shape, scale float64, seed1, seed2 uint64) (*Weibull, error) {
	if shape <= 0 || scale <= 0 || math.IsNaN(shape) || math.IsNaN(scale) {
		return nil, fmt.Errorf("%w: weibull shape=%v scale=%v", ErrBadParam, shape, scale)
	}
	return &Weibull{Shape: shape, Scale: scale, Rng: rand.New(rand.NewPCG(seed1, seed2))}, nil
}

// Next returns now plus a Weibull-distributed gap.
func (w *Weibull) Next(now float64) float64 {
	u := w.Rng.Float64()
	for u == 0 {
		u = w.Rng.Float64()
	}
	return now + w.Scale*math.Pow(-math.Log(u), 1/w.Shape)
}

// Rate returns the reciprocal of the mean gap, 1/(scale·Γ(1+1/k)).
func (w *Weibull) Rate() float64 {
	return 1 / (w.Scale * math.Gamma(1+1/w.Shape))
}

// LogNormal samples inter-arrival gaps from a log-normal law with the
// given parameters of the underlying normal (mu, sigma).
type LogNormal struct {
	Mu    float64
	Sigma float64
	Rng   *rand.Rand
}

// NewLogNormal returns a log-normal Source; sigma must be positive.
func NewLogNormal(mu, sigma float64, seed1, seed2 uint64) (*LogNormal, error) {
	if sigma <= 0 || math.IsNaN(mu) || math.IsNaN(sigma) {
		return nil, fmt.Errorf("%w: lognormal mu=%v sigma=%v", ErrBadParam, mu, sigma)
	}
	return &LogNormal{Mu: mu, Sigma: sigma, Rng: rand.New(rand.NewPCG(seed1, seed2))}, nil
}

// Next returns now plus a log-normal gap.
func (l *LogNormal) Next(now float64) float64 {
	return now + math.Exp(l.Mu+l.Sigma*l.Rng.NormFloat64())
}

// Rate returns the reciprocal mean gap, exp(-(mu+sigma^2/2)).
func (l *LogNormal) Rate() float64 {
	return math.Exp(-(l.Mu + l.Sigma*l.Sigma/2))
}

// RateStep is one regime of a piecewise-constant-rate process: from
// exposure time Start (inclusive) onwards, arrivals occur at rate
// Lambda, until the next step's Start.
type RateStep struct {
	Start  float64 // exposure seconds at which this regime begins
	Lambda float64 // arrival rate during the regime (0 = quiescent)
}

// Piecewise samples an inhomogeneous Poisson process whose rate is
// piecewise constant in exposure time. It models platform drift: a
// machine that degrades (or recovers) mid-campaign. Sampling is exact,
// not thinned: within a regime gaps are memoryless exponentials, and a
// gap that would cross into the next regime is discarded at the
// boundary and resampled at the new rate — valid precisely because the
// exponential law is memoryless.
type Piecewise struct {
	steps []RateStep
	rng   *rand.Rand
}

// NewPiecewise returns a piecewise-constant-rate Source. Steps must be
// non-empty, start at 0, have strictly increasing Start times and
// finite non-negative rates.
func NewPiecewise(steps []RateStep, seed1, seed2 uint64) (*Piecewise, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("%w: piecewise needs at least one rate step", ErrBadParam)
	}
	if steps[0].Start != 0 {
		return nil, fmt.Errorf("%w: first rate step must start at 0, got %v", ErrBadParam, steps[0].Start)
	}
	for i, s := range steps {
		if s.Lambda < 0 || math.IsNaN(s.Lambda) || math.IsInf(s.Lambda, 0) {
			return nil, fmt.Errorf("%w: step %d lambda = %v", ErrBadParam, i, s.Lambda)
		}
		if i > 0 && !(s.Start > steps[i-1].Start) {
			return nil, fmt.Errorf("%w: step starts must increase (step %d: %v after %v)",
				ErrBadParam, i, s.Start, steps[i-1].Start)
		}
	}
	cp := append([]RateStep(nil), steps...)
	return &Piecewise{steps: cp, rng: rand.New(rand.NewPCG(seed1, seed2))}, nil
}

// Next returns the first arrival strictly after now.
func (p *Piecewise) Next(now float64) float64 {
	t := now
	for {
		i := p.stepAt(t)
		end := math.Inf(1)
		if i+1 < len(p.steps) {
			end = p.steps[i+1].Start
		}
		lambda := p.steps[i].Lambda
		if lambda == 0 {
			if math.IsInf(end, 1) {
				return math.Inf(1)
			}
			t = end
			continue
		}
		next := t + p.rng.ExpFloat64()/lambda
		if next < end || math.IsInf(end, 1) {
			// The final regime has no boundary to resample at: return
			// the sample even when it overflowed to +Inf (a subnormal
			// rate), meaning the source never fires again — looping
			// would resample +Inf forever.
			return next
		}
		t = end // memoryless: restart the clock at the regime boundary
	}
}

// stepAt returns the index of the regime containing exposure time t.
func (p *Piecewise) stepAt(t float64) int {
	i := sort.Search(len(p.steps), func(j int) bool { return p.steps[j].Start > t })
	if i == 0 {
		return 0
	}
	return i - 1
}

// Rate returns the rate of the final regime, the process's long-run
// arrival rate.
func (p *Piecewise) Rate() float64 { return p.steps[len(p.steps)-1].Lambda }

// Trace replays a fixed, sorted sequence of absolute arrival times.
// After the trace is exhausted it never fires again. It makes engine
// and simulator behaviour exactly reproducible in tests.
type Trace struct {
	times []float64
	idx   int
}

// NewTrace copies and sorts the arrival times, dropping non-finite
// entries, and returns a replaying Source.
func NewTrace(times []float64) *Trace {
	ts := make([]float64, 0, len(times))
	for _, t := range times {
		if !math.IsNaN(t) && !math.IsInf(t, 0) {
			ts = append(ts, t)
		}
	}
	sort.Float64s(ts)
	return &Trace{times: ts}
}

// Next returns the first recorded arrival strictly after now.
func (t *Trace) Next(now float64) float64 {
	// The cursor only moves forward; simulator clocks are monotone.
	for t.idx < len(t.times) && t.times[t.idx] <= now {
		t.idx++
	}
	// Scan without consuming: Next may be called repeatedly with
	// decreasing `now` after a rollback, so search from the cursor.
	i := sort.SearchFloat64s(t.times, math.Nextafter(now, math.Inf(1)))
	if i < len(t.times) {
		return t.times[i]
	}
	return math.Inf(1)
}

// Rate returns 0: a trace has no constant rate.
func (t *Trace) Rate() float64 { return 0 }

// Reset rewinds the trace to the beginning.
func (t *Trace) Reset() { t.idx = 0 }

// Len returns the number of arrivals in the trace.
func (t *Trace) Len() int { return len(t.times) }

// Bernoulli draws with probability p using a dedicated stream; it backs
// the partial-verification detection decision (recall r).
type Bernoulli struct {
	Rng *rand.Rand
}

// NewBernoulli returns a deterministic Bernoulli stream.
func NewBernoulli(seed1, seed2 uint64) *Bernoulli {
	return &Bernoulli{Rng: rand.New(rand.NewPCG(seed1, seed2))}
}

// Hit returns true with probability p.
func (b *Bernoulli) Hit(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return b.Rng.Float64() < p
}

// SplitSeed derives a child seed pair from a base seed and a stream
// index, using SplitMix64 so that distinct workers and distinct error
// processes get decorrelated deterministic streams.
func SplitSeed(base uint64, stream uint64) (uint64, uint64) {
	a := splitmix64(base + 0x9e3779b97f4a7c15*stream)
	b := splitmix64(a ^ 0xbf58476d1ce4e5b9)
	return a, b
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
