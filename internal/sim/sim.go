// Package sim is the Monte-Carlo simulator used to validate the
// analytical model (Section 6 of the paper). It replays the execution
// of an application protected by a computational pattern on a virtual
// clock: fail-stop errors may strike during computations and — in the
// Section 5 mode — during verifications, checkpoints and recoveries,
// while silent errors strike computations only. A fail-stop error
// triggers a disk recovery and a pattern restart; a detected silent
// error triggers a memory recovery and a segment restart.
//
// Error arrivals are driven by exposure clocks: each process (fail-stop
// and silent) accumulates exposure only while an operation it can
// strike is running, which realises the paper's "errors strike
// computations" semantics for arbitrary renewal processes, not just the
// memoryless exponential.
//
// Detection semantics match the accounting of Proposition 3: a silent
// error leaves the application state corrupted; each partial
// verification executed while corrupted detects independently with
// probability r (so a corruption surviving k partial verifications has
// probability (1-r)^k), and a guaranteed verification always detects.
package sim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"respat/internal/core"
	"respat/internal/faults"
	"respat/internal/stats"
)

// Stream identifiers for deterministic per-run seed derivation.
const (
	streamFail = iota
	streamSilent
	streamDetect
	numStreams
)

// Config parameterises a simulation campaign.
type Config struct {
	Pattern core.Pattern
	Costs   core.Costs
	Rates   core.Rates
	// Patterns is the number of pattern instances forming the
	// application (the paper uses 1000 optimal patterns).
	Patterns int
	// Runs is the number of independent Monte-Carlo repetitions (the
	// paper uses 1000).
	Runs int
	// Seed makes the whole campaign reproducible; runs are seeded
	// independently of scheduling, so results do not depend on Workers.
	Seed uint64
	// ErrorsInOps enables fail-stop errors during verifications,
	// checkpoints and recoveries (the Section 5 / reference-simulator
	// behaviour). When false, the Sections 3-4 assumption holds and
	// only computations are exposed.
	ErrorsInOps bool
	// Workers bounds the number of parallel simulation goroutines;
	// 0 means GOMAXPROCS.
	Workers int
	// FailSource and SilentSource optionally override the exponential
	// arrival processes (e.g. Weibull ablations or trace replay in
	// tests). They are invoked once per run with the run index.
	FailSource   func(run int) faults.Source
	SilentSource func(run int) faults.Source
}

// Counters tallies the events of one run (or, summed, of a campaign).
// MemRecs counts only standalone memory recoveries triggered by a
// verification alarm; the memory restore bundled with every disk
// recovery is part of DiskRecs, matching the paper's Figure 6e
// accounting.
type Counters struct {
	FailStop     int64 // fail-stop errors injected
	Silent       int64 // silent errors injected
	SilentMasked int64 // corruptions wiped by a fail-stop before detection
	DiskCkpts    int64 // completed disk checkpoints
	MemCkpts     int64 // completed memory checkpoints
	PartVerifs   int64 // completed partial verifications
	GuarVerifs   int64 // completed guaranteed verifications
	DiskRecs     int64 // disk recoveries (each includes a memory restore)
	MemRecs      int64 // standalone memory recoveries
	DetectByPart int64 // corruptions caught by a partial verification
	DetectByGuar int64 // corruptions caught by a guaranteed verification
}

func (c *Counters) add(o Counters) {
	c.FailStop += o.FailStop
	c.Silent += o.Silent
	c.SilentMasked += o.SilentMasked
	c.DiskCkpts += o.DiskCkpts
	c.MemCkpts += o.MemCkpts
	c.PartVerifs += o.PartVerifs
	c.GuarVerifs += o.GuarVerifs
	c.DiskRecs += o.DiskRecs
	c.MemRecs += o.MemRecs
	c.DetectByPart += o.DetectByPart
	c.DetectByGuar += o.DetectByGuar
}

// Verifs returns partial plus guaranteed verifications.
func (c Counters) Verifs() int64 { return c.PartVerifs + c.GuarVerifs }

// Result aggregates a campaign.
type Result struct {
	Runs        int
	Patterns    int
	PatternWork float64      // W of the simulated pattern
	Overhead    stats.Sample // per-run (time-work)/work
	WallTime    stats.Sample // per-run total simulated seconds
	Total       Counters     // summed over runs
}

// TotalTime returns the summed simulated wall-clock over all runs.
func (r Result) TotalTime() float64 { return r.WallTime.Mean() * float64(r.WallTime.N()) }

// PerHour converts a campaign-total event count into the average
// number of events per simulated hour.
func (r Result) PerHour(count int64) float64 {
	t := r.TotalTime()
	if t == 0 {
		return 0
	}
	return float64(count) / (t / 3600)
}

// PerDay converts a campaign-total event count into the average number
// of events per simulated day.
func (r Result) PerDay(count int64) float64 { return r.PerHour(count) * 24 }

// PerPattern converts a campaign-total event count into the average
// number of events per executed pattern.
func (r Result) PerPattern(count int64) float64 {
	n := float64(r.Runs) * float64(r.Patterns)
	if n == 0 {
		return 0
	}
	return float64(count) / n
}

// Validate checks the configuration.
func (cfg Config) Validate() error {
	if err := cfg.Pattern.Validate(); err != nil {
		return err
	}
	if err := cfg.Costs.Validate(); err != nil {
		return err
	}
	if cfg.FailSource == nil || cfg.SilentSource == nil {
		if err := cfg.Rates.Validate(); err != nil {
			return err
		}
	}
	if cfg.Patterns <= 0 {
		return fmt.Errorf("sim: Patterns = %d, need > 0", cfg.Patterns)
	}
	if cfg.Runs <= 0 {
		return fmt.Errorf("sim: Runs = %d, need > 0", cfg.Runs)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("sim: Workers = %d, need >= 0", cfg.Workers)
	}
	return nil
}

// Run executes the campaign, distributing runs over worker goroutines.
// Results are bit-identical for a fixed cfg.Seed regardless of Workers:
// every run derives its random streams from (Seed, run) alone, each
// worker reuses one executor against a campaign-shared immutable plan,
// and per-run statistics are reduced in run order.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Runs {
		workers = cfg.Runs
	}

	pl := newPlan(cfg.Pattern)
	work := cfg.Pattern.W * float64(cfg.Patterns)
	overheads := make([]float64, cfg.Runs)
	walls := make([]float64, cfg.Runs)
	totals := make([]Counters, workers)
	if workers == 1 {
		// Run inline: a single worker gains nothing from a goroutine,
		// and the spawn/handoff latency is comparable to a whole
		// small campaign (it showed up as a 2-3x swing in
		// BenchmarkSimulatePattern between snapshots).
		ex := newExecutor(&cfg, pl)
		for run := 0; run < cfg.Runs; run++ {
			ex.reset(run)
			cnt, elapsed := ex.runAll()
			overheads[run] = (elapsed - work) / work
			walls[run] = elapsed
			totals[0].add(cnt)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ex := newExecutor(&cfg, pl)
				for run := w; run < cfg.Runs; run += workers {
					ex.reset(run)
					cnt, elapsed := ex.runAll()
					overheads[run] = (elapsed - work) / work
					walls[run] = elapsed
					totals[w].add(cnt)
				}
			}(w)
		}
		wg.Wait()
	}

	res := Result{Runs: cfg.Runs, Patterns: cfg.Patterns, PatternWork: cfg.Pattern.W}
	for run := range overheads {
		res.Overhead.Add(overheads[run])
		res.WallTime.Add(walls[run])
	}
	for i := range totals {
		res.Total.add(totals[i])
	}
	return res, nil
}

// process drives one error source on an exposure clock.
type process struct {
	src   faults.Source
	clock float64 // accumulated exposure
	next  float64 // next arrival on the exposure clock
}

func newProcess(src faults.Source) process {
	return process{src: src, next: src.Next(0)}
}

// within reports the exposure distance to the next arrival and whether
// it falls inside the next d units of exposure.
func (p *process) within(d float64) (float64, bool) {
	dt := p.next - p.clock
	return dt, dt <= d
}

// advance consumes d units of exposure known to contain no arrival.
func (p *process) advance(d float64) { p.clock += d }

// consume advances to the pending arrival and schedules the next one.
func (p *process) consume() {
	p.clock = p.next
	p.next = p.src.Next(p.clock)
}

// plan is the immutable flattening of a pattern shared by every run of
// a campaign: the executable schedule and each segment's first action
// index. Building it once per Run (instead of once per run, as the
// executor used to) removes the dominant per-run allocations of
// paper-scale campaigns.
type plan struct {
	sched    []core.Action
	segStart []int // schedule index of each segment's first action
}

func newPlan(p core.Pattern) *plan {
	sched := p.Schedule()
	segStart := make([]int, p.N())
	seen := 0
	for i, a := range sched {
		if a.Op == core.OpChunk && a.Chunk == 0 && a.Segment == seen {
			segStart[seen] = i
			seen++
		}
	}
	return &plan{sched: sched, segStart: segStart}
}

// executor simulates runs one at a time; one executor is reused across
// all runs of a worker, reseeded per run by reset.
type executor struct {
	cfg       *Config
	plan      *plan
	fail      process
	silent    process
	detect    *faults.Bernoulli
	now       float64
	corrupted bool
	cnt       Counters
	// Reusable default sources and their generators, reseeded in place
	// per run; nil when the corresponding factory override is set.
	failExp   *faults.Exponential
	failPCG   *rand.PCG
	silentExp *faults.Exponential
	silentPCG *rand.PCG
	detectPCG *rand.PCG
	// Optional event recorder (TraceOne) plus its position context.
	rec    func(Event)
	curSeg int
	patIdx int
}

// emit records a timeline event when tracing is enabled.
func (e *executor) emit(k EventKind, op core.Op) {
	if e.rec != nil {
		e.rec(Event{Time: e.now, Kind: k, Op: op, Segment: e.curSeg, Pattern: e.patIdx})
	}
}

// newExecutor builds a reusable executor for a validated configuration
// against a campaign-shared plan. Call reset before each run.
func newExecutor(cfg *Config, pl *plan) *executor {
	e := &executor{cfg: cfg, plan: pl}
	// The rates were validated by Config.Validate whenever a default
	// exponential source is needed, so construction cannot fail here.
	if cfg.FailSource == nil {
		e.failPCG = rand.NewPCG(0, 0)
		e.failExp = &faults.Exponential{Lambda: cfg.Rates.FailStop, Rng: rand.New(e.failPCG)}
	}
	if cfg.SilentSource == nil {
		e.silentPCG = rand.NewPCG(0, 0)
		e.silentExp = &faults.Exponential{Lambda: cfg.Rates.Silent, Rng: rand.New(e.silentPCG)}
	}
	e.detectPCG = rand.NewPCG(0, 0)
	e.detect = &faults.Bernoulli{Rng: rand.New(e.detectPCG)}
	return e
}

// reset prepares the executor for one run. Every random stream depends
// only on (cfg.Seed, run), never on scheduling, so results are
// bit-identical across worker counts; reseeding the generators in place
// is state-equivalent to constructing fresh ones with the same seeds.
func (e *executor) reset(run int) {
	var failSrc, silentSrc faults.Source
	if e.cfg.FailSource != nil {
		failSrc = e.cfg.FailSource(run)
	} else {
		s1, s2 := faults.SplitSeed(e.cfg.Seed, uint64(run)*numStreams+streamFail)
		e.failPCG.Seed(s1, s2)
		failSrc = e.failExp
	}
	if e.cfg.SilentSource != nil {
		silentSrc = e.cfg.SilentSource(run)
	} else {
		s1, s2 := faults.SplitSeed(e.cfg.Seed, uint64(run)*numStreams+streamSilent)
		e.silentPCG.Seed(s1, s2)
		silentSrc = e.silentExp
	}
	d1, d2 := faults.SplitSeed(e.cfg.Seed, uint64(run)*numStreams+streamDetect)
	e.detectPCG.Seed(d1, d2)
	e.fail = newProcess(failSrc)
	e.silent = newProcess(silentSrc)
	e.now = 0
	e.corrupted = false
	e.cnt = Counters{}
	e.curSeg = 0
	e.patIdx = 0
}

// runAll executes cfg.Patterns pattern instances and returns the event
// counters and total elapsed virtual time.
func (e *executor) runAll() (Counters, float64) {
	for p := 0; p < e.cfg.Patterns; p++ {
		e.patIdx = p
		e.runPattern()
		e.emit(EvPatternDone, core.OpDisk)
	}
	return e.cnt, e.now
}

// outcome of a protected (fail-stop-exposed) operation.
type outcome int

const (
	opDone outcome = iota
	opFailStop
)

// runPattern executes one pattern instance to completion, restarting
// from the disk checkpoint on fail-stop errors and from the enclosing
// segment's memory checkpoint on detected silent errors.
func (e *executor) runPattern() {
	i := 0
	for i < len(e.plan.sched) {
		a := e.plan.sched[i]
		e.curSeg = a.Segment
		switch a.Op {
		case core.OpChunk:
			if e.chunk(a.Work) == opFailStop {
				e.diskRecovery()
				i = 0
				continue
			}
			e.emit(EvOpDone, core.OpChunk)
		case core.OpPartVer:
			res, detected := e.verify(core.OpPartVer, e.cfg.Costs.PartVer, e.cfg.Costs.Recall, &e.cnt.PartVerifs, &e.cnt.DetectByPart)
			if res == opFailStop {
				e.diskRecovery()
				i = 0
				continue
			}
			if detected {
				if e.memRecovery() == opFailStop {
					i = 0
				} else {
					i = e.plan.segStart[a.Segment]
				}
				continue
			}
		case core.OpGuarVer:
			res, detected := e.verify(core.OpGuarVer, e.cfg.Costs.GuarVer, 1, &e.cnt.GuarVerifs, &e.cnt.DetectByGuar)
			if res == opFailStop {
				e.diskRecovery()
				i = 0
				continue
			}
			if detected {
				if e.memRecovery() == opFailStop {
					i = 0
				} else {
					i = e.plan.segStart[a.Segment]
				}
				continue
			}
		case core.OpMemCkpt:
			if e.protectedOp(e.cfg.Costs.MemCkpt) == opFailStop {
				e.diskRecovery()
				i = 0
				continue
			}
			e.cnt.MemCkpts++
			e.emit(EvOpDone, core.OpMemCkpt)
		case core.OpDisk:
			if e.protectedOp(e.cfg.Costs.DiskCkpt) == opFailStop {
				e.diskRecovery()
				i = 0
				continue
			}
			e.cnt.DiskCkpts++
			e.emit(EvOpDone, core.OpDisk)
		}
		i++
	}
}

// chunk executes w seconds of computation, exposed to both error
// processes. It returns opFailStop if interrupted.
func (e *executor) chunk(w float64) outcome {
	remaining := w
	for remaining > 0 {
		fdt, fHit := e.fail.within(remaining)
		sdt, sHit := e.silent.within(remaining)
		if sHit && (!fHit || sdt <= fdt) {
			// A silent error strikes first: corrupt and keep computing.
			e.silent.consume()
			e.fail.advance(sdt)
			e.now += sdt
			remaining -= sdt
			e.corrupted = true
			e.cnt.Silent++
			e.emit(EvSilent, core.OpChunk)
			continue
		}
		if fHit {
			e.fail.consume()
			e.silent.advance(fdt)
			e.now += fdt
			e.cnt.FailStop++
			e.emit(EvFailStop, core.OpChunk)
			return opFailStop
		}
		e.fail.advance(remaining)
		e.silent.advance(remaining)
		e.now += remaining
		remaining = 0
	}
	return opDone
}

// protectedOp executes a non-computation operation of the given cost.
// Silent errors never strike it; fail-stop errors do when ErrorsInOps.
func (e *executor) protectedOp(cost float64) outcome {
	if cost <= 0 {
		return opDone
	}
	if !e.cfg.ErrorsInOps {
		e.now += cost
		return opDone
	}
	if fdt, hit := e.fail.within(cost); hit {
		e.fail.consume()
		e.now += fdt
		e.cnt.FailStop++
		e.emit(EvFailStop, core.OpChunk)
		return opFailStop
	}
	e.fail.advance(cost)
	e.now += cost
	return opDone
}

// verify runs a verification of the given cost and recall, bumps its
// counter on completion and reports whether an existing corruption was
// detected.
func (e *executor) verify(op core.Op, cost, recall float64, done, caught *int64) (outcome, bool) {
	if e.protectedOp(cost) == opFailStop {
		return opFailStop, false
	}
	*done++
	e.emit(EvOpDone, op)
	if e.corrupted && e.detect.Hit(recall) {
		*caught++
		e.emit(EvDetect, op)
		return opDone, true
	}
	return opDone, false
}

// diskRecovery restores the last disk checkpoint (RD) and the memory
// state (RM), retrying per the Section 5 semantics: a fail-stop during
// either restore resumes from the disk read. It clears any pending
// corruption — the restored state is verified by construction.
func (e *executor) diskRecovery() {
	for {
		if e.protectedOp(e.cfg.Costs.DiskRec) == opFailStop {
			continue
		}
		if e.protectedOp(e.cfg.Costs.MemRec) == opFailStop {
			continue
		}
		break
	}
	e.cnt.DiskRecs++
	e.emit(EvDiskRec, core.OpChunk)
	if e.corrupted {
		e.cnt.SilentMasked++
		e.corrupted = false
	}
}

// memRecovery restores the segment's memory checkpoint after a
// verification alarm. A fail-stop during the restore escalates to a
// full disk recovery (the memory content is lost), reported as
// opFailStop so the caller restarts the whole pattern.
func (e *executor) memRecovery() outcome {
	if e.protectedOp(e.cfg.Costs.MemRec) == opFailStop {
		e.diskRecovery()
		return opFailStop
	}
	e.cnt.MemRecs++
	e.emit(EvMemRec, core.OpChunk)
	e.corrupted = false
	return opDone
}

// OverheadPredictionGap returns the relative gap between a simulated
// overhead and a model prediction, |sim - pred| / max(pred, eps); it is
// the figure reported in EXPERIMENTS.md.
func OverheadPredictionGap(simulated, predicted float64) float64 {
	den := math.Max(math.Abs(predicted), 1e-12)
	return math.Abs(simulated-predicted) / den
}
