package sim

import (
	"math"
	"testing"

	"respat/internal/core"
	"respat/internal/xmath"
)

func TestBaselineValidation(t *testing.T) {
	r := core.Rates{FailStop: 1e-4}
	if _, err := Baseline(0, r, 10, 1); err == nil {
		t.Error("zero work should fail")
	}
	if _, err := Baseline(100, r, 0, 1); err == nil {
		t.Error("zero runs should fail")
	}
	if _, err := Baseline(100, core.Rates{FailStop: -1}, 10, 1); err == nil {
		t.Error("invalid rates should fail")
	}
}

func TestBaselineNoErrors(t *testing.T) {
	res, err := Baseline(500, core.Rates{}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time.Mean() != 500 || res.Time.Std() != 0 {
		t.Errorf("time = %v ± %v, want exactly 500", res.Time.Mean(), res.Time.Std())
	}
	if res.CorruptShare != 0 || res.Restarts != 0 {
		t.Errorf("result: %+v", res)
	}
}

func TestBaselineMatchesClosedForm(t *testing.T) {
	// E[T] = (e^{λW} - 1)/λ; pick λW ~ 1 so restarts are frequent.
	r := core.Rates{FailStop: 1e-3}
	work := 1000.0
	res, err := Baseline(work, r, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := BaselineExpectedTime(work, r)
	if math.Abs(res.Time.Mean()-want) > 4*res.Time.CI95() {
		t.Errorf("mean %v vs closed form %v (CI %v)", res.Time.Mean(), want, res.Time.CI95())
	}
}

func TestBaselineCorruptShareMatchesClosedForm(t *testing.T) {
	r := core.Rates{Silent: 2e-3}
	work := 500.0
	res, err := Baseline(work, r, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - BaselineCorrectProb(work, r)
	if math.Abs(res.CorruptShare-want) > 0.03 {
		t.Errorf("corrupt share %v vs closed form %v", res.CorruptShare, want)
	}
}

func TestBaselineClosedFormEdges(t *testing.T) {
	if BaselineExpectedTime(100, core.Rates{}) != 100 {
		t.Error("no failures should give work")
	}
	if !xmath.Close(BaselineCorrectProb(100, core.Rates{}), 1, 1e-15) {
		t.Error("no silent errors: always correct")
	}
	// Exponential blow-up: doubling work more than doubles the time.
	r := core.Rates{FailStop: 1e-3}
	if !(BaselineExpectedTime(2000, r) > 2.5*BaselineExpectedTime(1000, r)) {
		t.Error("baseline time should grow super-linearly")
	}
}

// TestProtectionBeatsBaseline is the motivation experiment: at scale,
// the optimal PDMV pattern finishes far sooner than the unprotected
// baseline and never returns a corrupted result.
func TestProtectionBeatsBaseline(t *testing.T) {
	// A platform where λf·W_total ~ 4: the unprotected baseline wastes
	// most of its attempts.
	r := core.Rates{FailStop: 2e-4, Silent: 5e-4}
	c := core.Costs{
		DiskCkpt: 30, MemCkpt: 3, DiskRec: 30, MemRec: 3,
		GuarVer: 3, PartVer: 0.1, Recall: 0.8,
	}
	total := 20000.0
	base, err := Baseline(total, r, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Protected: patterns covering the same total work.
	p, err := core.Layout(core.PDMV, 2000, 4, 4, c.Recall)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Pattern: p, Costs: c, Rates: r,
		Patterns: 10, Runs: 300, Seed: 11, ErrorsInOps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	protectedTime := res.WallTime.Mean()
	if !(protectedTime < base.Time.Mean()/2) {
		t.Errorf("protected %v not clearly faster than baseline %v", protectedTime, base.Time.Mean())
	}
	if base.CorruptShare < 0.9 {
		t.Errorf("baseline corrupt share %v should be near 1 at these rates", base.CorruptShare)
	}
}
