package sim

import (
	"math"
	"testing"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/faults"
)

// TestSimulatorMatchesOpErrorModel cross-validates the Section 5
// analytical refinement: with fail-stop errors striking operations too
// (ErrorsInOps), the simulated mean pattern time must match
// analytic.ExactExpectedTimeWithOpErrors.
func TestSimulatorMatchesOpErrorModel(t *testing.T) {
	c := testCosts()
	r := core.Rates{FailStop: 2e-4, Silent: 3e-4}
	p := mustLayout(t, core.PDMV, 3000, 2, 3, c.Recall)
	want, err := analytic.ExactExpectedTimeWithOpErrors(p, c, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Pattern: p, Costs: c, Rates: r,
		Patterns: 30, Runs: 500, Seed: 21, ErrorsInOps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	gotPerPattern := res.WallTime.Mean() / float64(res.Patterns)
	tol := 4*res.WallTime.CI95()/float64(res.Patterns) + 0.005*want
	if math.Abs(gotPerPattern-want) > tol {
		t.Errorf("simulated per-pattern %v vs §5 model %v (tol %v)", gotPerPattern, want, tol)
	}
	// And the §5 model must fit better than the ops-error-free one.
	plain, err := analytic.ExactExpectedTime(p, c, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotPerPattern-want) > math.Abs(gotPerPattern-plain) {
		t.Errorf("§5 model (%v) fits worse than plain (%v) for simulated %v", want, plain, gotPerPattern)
	}
}

// TestWeibullAblation exercises the non-exponential fault generators:
// with shape k < 1 (infant mortality / clustering) the optimal-for-
// exponential pattern still completes and the simulator stays
// deterministic, while the memoryless renewal sampling makes failures
// burst after each recovery.
func TestWeibullAblation(t *testing.T) {
	c := testCosts()
	p := mustLayout(t, core.PDMV, 2000, 2, 3, c.Recall)
	mtbf := 5000.0
	shape := 0.7
	scale := mtbf / math.Gamma(1+1/shape) // same long-run rate as Exp(1/mtbf)
	mkWeibull := func(run int) faults.Source {
		s1, s2 := faults.SplitSeed(77, uint64(run))
		w, err := faults.NewWeibull(shape, scale, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	cfg := Config{
		Pattern: p, Costs: c,
		Rates:    core.Rates{Silent: 1e-4}, // silent stays exponential
		Patterns: 20, Runs: 60, Seed: 5, ErrorsInOps: true,
		FailSource:   mkWeibull,
		SilentSource: nil,
	}
	res1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Total != res2.Total {
		t.Error("Weibull campaign not deterministic")
	}
	if res1.Total.FailStop == 0 {
		t.Error("expected Weibull failures")
	}
	// Sanity: overall failure count within 2x of the rate-matched
	// exponential campaign.
	expCfg := cfg
	expCfg.FailSource = nil
	expCfg.Rates = core.Rates{FailStop: 1 / mtbf, Silent: 1e-4}
	expRes, err := Run(expCfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res1.Total.FailStop) / float64(expRes.Total.FailStop)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("Weibull/exponential failure ratio %v implausible", ratio)
	}
}

// TestLogNormalSourceInSimulator smoke-tests the third generator under
// the full protocol.
func TestLogNormalSourceInSimulator(t *testing.T) {
	c := testCosts()
	p := mustLayout(t, core.PD, 1000, 1, 1, 1)
	res, err := Run(Config{
		Pattern: p, Costs: c, Patterns: 10, Runs: 20, Seed: 5,
		FailSource: func(run int) faults.Source {
			s1, s2 := faults.SplitSeed(31, uint64(run))
			l, err := faults.NewLogNormal(8, 1, s1, s2)
			if err != nil {
				t.Fatal(err)
			}
			return l
		},
		SilentSource: func(int) faults.Source { return faults.Never{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.FailStop == 0 {
		t.Error("expected log-normal failures (mean gap ~4900s)")
	}
	if res.Total.DiskRecs != res.Total.FailStop {
		t.Error("every crash must trigger a disk recovery")
	}
}
