package sim

import (
	"math"
	"testing"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/platform"
)

// simGolden pins the full Result bits of a fixed campaign — the
// Hera-platform PDMV pattern, Patterns:10 Runs:7 Seed:42 ErrorsInOps —
// as captured before the Workers==1 inline fast path landed. The
// BenchmarkSimulatePattern swing between snapshots (26.7µs → 69.3µs)
// bisected to goroutine spawn/handoff latency on the single-worker
// path, not to a semantic change; this test is the proof the fix kept
// every statistic and counter bit-identical, for any worker count.
var simGolden = struct {
	meanBits, ciBits, wallBits                  uint64
	failStop, silent, diskRecs, memRecs, pv, gv int64
}{
	meanBits: 0x3fa3f188e1a20c39,
	ciBits:   0x3f932be88937baba,
	wallBits: 0x41100f8977a407ad,
	failStop: 2, silent: 3, diskRecs: 2, memRecs: 3, pv: 6847, gv: 426,
}

func TestRunGoldenBits(t *testing.T) {
	pl, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := analytic.Optimal(core.PDMV, pl.Costs, pl.Rates)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3} {
		res, err := Run(Config{
			Pattern:  plan.Pattern,
			Costs:    pl.Costs,
			Rates:    pl.Rates,
			Patterns: 10, Runs: 7, Seed: 42, ErrorsInOps: true,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := math.Float64bits(res.Overhead.Mean()); got != simGolden.meanBits {
			t.Errorf("workers=%d: overhead mean bits %x, want %x", workers, got, simGolden.meanBits)
		}
		if got := math.Float64bits(res.Overhead.CI95()); got != simGolden.ciBits {
			t.Errorf("workers=%d: overhead CI bits %x, want %x", workers, got, simGolden.ciBits)
		}
		if got := math.Float64bits(res.WallTime.Mean()); got != simGolden.wallBits {
			t.Errorf("workers=%d: wall-time mean bits %x, want %x", workers, got, simGolden.wallBits)
		}
		if res.Total.FailStop != simGolden.failStop || res.Total.Silent != simGolden.silent ||
			res.Total.DiskRecs != simGolden.diskRecs || res.Total.MemRecs != simGolden.memRecs ||
			res.Total.PartVerifs != simGolden.pv || res.Total.GuarVerifs != simGolden.gv {
			t.Errorf("workers=%d: counters %+v, want %+v", workers, res.Total, simGolden)
		}
	}
}
