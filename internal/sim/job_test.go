package sim

import (
	"testing"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/multilevel"
	"respat/internal/platform"
)

// TestJobSimMatchesCampaignRun pins JobSim.Run to the campaign
// executor: a job seeded s must reproduce run 0 of a campaign with
// Seed s exactly — same counters, same elapsed time — so the fleet's
// per-job path can never drift from the validated simulator.
func TestJobSimMatchesCampaignRun(t *testing.T) {
	p, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := analytic.Optimal(core.PDMV, p.Costs, p.Rates)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Pattern: plan.Pattern, Costs: p.Costs, Rates: p.Rates,
		Patterns: 20, Runs: 1, ErrorsInOps: true, Workers: 1,
	}
	js, err := NewJobSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 42, 1 << 40} {
		cfg.Seed = seed
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cnt, elapsed, err := js.Run(seed, 20)
		if err != nil {
			t.Fatal(err)
		}
		if cnt != want.Total {
			t.Errorf("seed %d: counters %+v, want %+v", seed, cnt, want.Total)
		}
		if got := want.WallTime.Mean(); elapsed != got {
			t.Errorf("seed %d: elapsed %v, want %v", seed, elapsed, got)
		}
	}
	if js.Work() != plan.Pattern.W {
		t.Errorf("Work() = %v, want %v", js.Work(), plan.Pattern.W)
	}
}

// TestJobSimReuseIsStateless re-runs the same seed after other seeds
// and expects bit-identical results: reuse history must not leak.
func TestJobSimReuseIsStateless(t *testing.T) {
	p, err := platform.ByName("Atlas")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := analytic.Optimal(core.PDMV, p.Costs, p.Rates)
	if err != nil {
		t.Fatal(err)
	}
	js, err := NewJobSim(Config{Pattern: plan.Pattern, Costs: p.Costs, Rates: p.Rates, ErrorsInOps: true})
	if err != nil {
		t.Fatal(err)
	}
	cnt1, el1, err := js.Run(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := js.Run(8, 11); err != nil {
		t.Fatal(err)
	}
	cnt2, el2, err := js.Run(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cnt1 != cnt2 || el1 != el2 {
		t.Errorf("reuse leaked state: (%+v, %v) vs (%+v, %v)", cnt1, el1, cnt2, el2)
	}
	if _, _, err := js.Run(7, 0); err == nil {
		t.Error("Run accepted zero patterns")
	}
}

// TestMLJobSimMatchesCampaignRun is the multilevel twin of the
// campaign-parity test.
func TestMLJobSimMatchesCampaignRun(t *testing.T) {
	p, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	params, err := multilevel.FromPlatform(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := multilevel.Optimize(params)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MultilevelConfig{Params: params, Spec: plan.Spec, Patterns: 10, Runs: 1, Workers: 1}
	js, err := NewMLJobSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{3, 99} {
		cfg.Seed = seed
		want, err := RunMultilevel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cnt, elapsed, err := js.Run(seed, 10)
		if err != nil {
			t.Fatal(err)
		}
		if cnt != want.Total {
			t.Errorf("seed %d: counters %+v, want %+v", seed, cnt, want.Total)
		}
		if got := want.WallTime.Mean(); elapsed != got {
			t.Errorf("seed %d: elapsed %v, want %v", seed, elapsed, got)
		}
	}
	if js.Work() != plan.Spec.W {
		t.Errorf("Work() = %v, want %v", js.Work(), plan.Spec.W)
	}
	if _, _, err := js.Run(1, -1); err == nil {
		t.Error("Run accepted negative patterns")
	}
}
