package sim

import (
	"strings"
	"testing"

	"respat/internal/core"
)

func TestTraceOneCleanRun(t *testing.T) {
	c := testCosts()
	p := mustLayout(t, core.PDV, 100, 1, 2, 1)
	events, cnt, err := TraceOne(Config{
		Pattern: p, Costs: c, Patterns: 1, Runs: 99, // Runs ignored
		Seed:       1,
		FailSource: never, SilentSource: never,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// chunk, partverif, chunk, guarverif, memckpt, disk, pattern-done.
	wantKinds := []EventKind{EvOpDone, EvOpDone, EvOpDone, EvOpDone, EvOpDone, EvOpDone, EvPatternDone}
	wantOps := []core.Op{core.OpChunk, core.OpPartVer, core.OpChunk, core.OpGuarVer, core.OpMemCkpt, core.OpDisk, core.OpDisk}
	if len(events) != len(wantKinds) {
		t.Fatalf("got %d events: %v", len(events), events)
	}
	for i, e := range events {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
		if e.Kind == EvOpDone && e.Op != wantOps[i] {
			t.Errorf("event %d op = %v, want %v", i, e.Op, wantOps[i])
		}
	}
	// Final event time equals the error-free traversal time.
	if got, want := events[len(events)-1].Time, p.ErrorFreeTime(c); got != want {
		t.Errorf("final time %v, want %v", got, want)
	}
	if cnt.DiskCkpts != 1 {
		t.Errorf("counters: %+v", cnt)
	}
}

func TestTraceOneWithErrors(t *testing.T) {
	c := testCosts()
	p := mustLayout(t, core.PD, 100, 1, 1, 1)
	events, cnt, err := TraceOne(Config{
		Pattern: p, Costs: c, Patterns: 1, Seed: 1,
		FailSource:   traceAt(50),
		SilentSource: traceAt(120), // strikes during the replay chunk
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// fail@50, disk-rec, silent during replay, chunk done, guar verif,
	// alarm, mem-rec, replay chunk, guar verif, mem ckpt, disk, done.
	var kinds []EventKind
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{
		EvFailStop, EvDiskRec, EvSilent, EvOpDone, EvOpDone, EvDetect,
		EvMemRec, EvOpDone, EvOpDone, EvOpDone, EvOpDone, EvPatternDone,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events:\n%v", len(kinds), events)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
	if cnt.FailStop != 1 || cnt.Silent != 1 || cnt.MemRecs != 1 || cnt.DiskRecs != 1 {
		t.Errorf("counters: %+v", cnt)
	}
	// Times are monotone non-decreasing.
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Errorf("time went backwards at %d: %v -> %v", i, events[i-1].Time, events[i].Time)
		}
	}
}

func TestTraceOneInvalidConfig(t *testing.T) {
	if _, _, err := TraceOne(Config{}, 0); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestWriteTimeline(t *testing.T) {
	c := testCosts()
	p := mustLayout(t, core.PD, 100, 1, 1, 1)
	events, _, err := TraceOne(Config{
		Pattern: p, Costs: c, Patterns: 1, Seed: 1,
		FailSource: never, SilentSource: never,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTimeline(&b, events); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "chunk") || !strings.Contains(out, "committed") {
		t.Errorf("timeline incomplete:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != len(events) {
		t.Errorf("%d lines for %d events", got, len(events))
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvOpDone; k <= EvPatternDone; k++ {
		if strings.HasPrefix(k.String(), "EventKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if EventKind(42).String() != "EventKind(42)" {
		t.Error("unknown kind fallback broken")
	}
}

func TestTracingDoesNotPerturbResults(t *testing.T) {
	// A traced run and an untraced run with identical seeds produce
	// identical counters and times.
	c := testCosts()
	p := mustLayout(t, core.PDMV, 1500, 2, 3, c.Recall)
	cfg := Config{
		Pattern: p, Costs: c,
		Rates:    core.Rates{FailStop: 1e-4, Silent: 2e-4},
		Patterns: 10, Runs: 1, Seed: 33, ErrorsInOps: true,
	}
	events, cnt, err := TraceOne(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != res.Total {
		t.Errorf("traced counters %+v != untraced %+v", cnt, res.Total)
	}
	if len(events) == 0 {
		t.Error("no events recorded")
	}
	if last := events[len(events)-1]; last.Time != res.WallTime.Mean() {
		t.Errorf("traced end time %v != untraced %v", last.Time, res.WallTime.Mean())
	}
}
