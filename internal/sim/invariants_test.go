package sim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"respat/internal/core"
)

// TestInvariantDiskCkptsEqualPatterns: each pattern instance commits
// exactly one disk checkpoint (failed attempts are not counted), so
// the campaign total is Runs × Patterns regardless of the error rates.
func TestInvariantDiskCkptsEqualPatterns(t *testing.T) {
	c := testCosts()
	f := func(seed uint64, lfRaw, lsRaw uint16) bool {
		p, err := core.Layout(core.PDMV, 1500, 2, 3, c.Recall)
		if err != nil {
			return false
		}
		res, err := Run(Config{
			Pattern: p, Costs: c,
			Rates: core.Rates{
				FailStop: float64(lfRaw) * 1e-8,
				Silent:   float64(lsRaw) * 1e-8,
			},
			Patterns: 5, Runs: 3, Seed: seed, ErrorsInOps: true,
		})
		if err != nil {
			return false
		}
		return res.Total.DiskCkpts == 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestInvariantMemCkptsAtLeastSegments: every pattern commits at least
// n memory checkpoints (more when silent-error rollbacks replay
// segments... wait: replays re-execute chunks, not checkpoints of
// *earlier* segments; a segment's checkpoint is taken once per
// successful segment traversal, so re-detections can add more).
func TestInvariantMemCkptsAtLeastSegments(t *testing.T) {
	c := testCosts()
	p := mustLayout(t, core.PDMV, 1500, 3, 2, c.Recall)
	res, err := Run(Config{
		Pattern: p, Costs: c,
		Rates:    core.Rates{FailStop: 1e-4, Silent: 2e-4},
		Patterns: 8, Runs: 10, Seed: 3, ErrorsInOps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.MemCkpts < int64(3*8*10) {
		t.Errorf("MemCkpts = %d, want >= %d", res.Total.MemCkpts, 3*8*10)
	}
	if res.Total.GuarVerifs < res.Total.MemCkpts {
		t.Errorf("every memory checkpoint is preceded by a guaranteed verification: %d < %d",
			res.Total.GuarVerifs, res.Total.MemCkpts)
	}
}

// TestInvariantOverheadMonotoneInRates: more errors cannot make the
// same pattern cheaper (in expectation; asserted on means with many
// runs and paired seeds).
func TestInvariantOverheadMonotoneInRates(t *testing.T) {
	c := testCosts()
	p := mustLayout(t, core.PD, 1500, 1, 1, 1)
	prev := -1.0
	for _, scale := range []float64{0, 1, 3, 9} {
		res, err := Run(Config{
			Pattern: p, Costs: c,
			Rates:    core.Rates{FailStop: 3e-5 * scale, Silent: 6e-5 * scale},
			Patterns: 20, Runs: 150, Seed: 5, ErrorsInOps: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Overhead.Mean() <= prev {
			t.Errorf("overhead at scale %v (%v) not above previous (%v)", scale, res.Overhead.Mean(), prev)
		}
		prev = res.Overhead.Mean()
	}
}

// TestInvariantWallTimeAccounting: total time equals work plus all
// operation costs plus lost time — spot-checked via the error-free
// identity and a reconstruction bound under errors.
func TestInvariantWallTimeAccounting(t *testing.T) {
	c := testCosts()
	p := mustLayout(t, core.PDV, 900, 1, 3, c.Recall)
	res, err := Run(Config{
		Pattern: p, Costs: c,
		Rates:    core.Rates{FailStop: 1e-4, Silent: 1e-4},
		Patterns: 10, Runs: 20, Seed: 9, ErrorsInOps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound: committed work + committed resilience ops.
	tot := res.Total
	minTime := float64(res.Runs)*float64(res.Patterns)*p.W +
		float64(tot.DiskCkpts)*c.DiskCkpt +
		float64(tot.MemCkpts)*c.MemCkpt +
		float64(tot.PartVerifs)*c.PartVer +
		float64(tot.GuarVerifs)*c.GuarVer +
		float64(tot.DiskRecs)*(c.DiskRec+c.MemRec) +
		float64(tot.MemRecs)*c.MemRec
	total := res.TotalTime()
	if total < minTime {
		t.Errorf("total time %v below accounted floor %v", total, minTime)
	}
	// The gap is re-executed work and partial losses; it cannot exceed
	// one pattern per error plus segment replays, generously bounded:
	maxExtra := float64(tot.FailStop+tot.MemRecs+tot.DetectByPart+tot.DetectByGuar) * (p.W + p.ErrorFreeTime(c))
	if total > minTime+maxExtra {
		t.Errorf("total time %v exceeds ceiling %v", total, minTime+maxExtra)
	}
}

// TestInvariantSilentConservation: every injected silent error is
// eventually detected (leading to a memory recovery), masked by a
// crash, or — in truncated bookkeeping — absorbed into a recovery that
// cleared several corruptions at once. Detections can never exceed
// injections.
func TestInvariantSilentConservation(t *testing.T) {
	c := testCosts()
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 10; trial++ {
		p := mustLayout(t, core.PDMV, 800+rng.Float64()*2000, 1+rng.IntN(3), 1+rng.IntN(4), c.Recall)
		res, err := Run(Config{
			Pattern: p, Costs: c,
			Rates:    core.Rates{FailStop: 5e-5, Silent: 3e-4},
			Patterns: 10, Runs: 10, Seed: rng.Uint64(), ErrorsInOps: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		detections := res.Total.DetectByPart + res.Total.DetectByGuar
		if detections > res.Total.Silent {
			t.Errorf("detections %d exceed injected silent errors %d", detections, res.Total.Silent)
		}
		if detections+res.Total.SilentMasked > res.Total.Silent {
			t.Errorf("detected+masked %d exceed injected %d",
				detections+res.Total.SilentMasked, res.Total.Silent)
		}
		if detections != res.Total.MemRecs {
			t.Errorf("detections %d != memory recoveries %d", detections, res.Total.MemRecs)
		}
	}
}
