package sim

import (
	"fmt"
	"math"

	"respat/internal/core"
	"respat/internal/faults"
	"respat/internal/stats"
)

// BaselineResult summarises the unprotected-execution baseline.
type BaselineResult struct {
	// Time samples the completion time across runs.
	Time stats.Sample
	// CorruptShare is the fraction of runs whose final result carries
	// an undetected silent corruption.
	CorruptShare float64
	// Restarts counts fail-stop restarts across all runs.
	Restarts int64
}

// Baseline simulates the do-nothing strategy the paper's patterns are
// measured against: no checkpoints, no verifications. Every fail-stop
// error restarts the whole computation from scratch; silent errors go
// undetected, so any silent error in the final (successful) attempt
// corrupts the result. It quantifies the motivation of Section 1: the
// expected completion time grows exponentially with λf·W, and the
// probability of a *correct* result decays as e^(-λs·W).
func Baseline(work float64, r core.Rates, runs int, seed uint64) (BaselineResult, error) {
	if work <= 0 || math.IsNaN(work) || math.IsInf(work, 0) {
		return BaselineResult{}, fmt.Errorf("sim: baseline work %v", work)
	}
	if err := r.Validate(); err != nil {
		return BaselineResult{}, err
	}
	if runs <= 0 {
		return BaselineResult{}, fmt.Errorf("sim: baseline runs %d", runs)
	}
	var out BaselineResult
	var corrupt int64
	for run := 0; run < runs; run++ {
		s1, s2 := faults.SplitSeed(seed, uint64(run)*2)
		s3, s4 := faults.SplitSeed(seed, uint64(run)*2+1)
		failSrc, err := faults.NewExponential(r.FailStop, s1, s2)
		if err != nil {
			return BaselineResult{}, err
		}
		silentSrc, err := faults.NewExponential(r.Silent, s3, s4)
		if err != nil {
			return BaselineResult{}, err
		}
		fail := newProcess(failSrc)
		silent := newProcess(silentSrc)
		var now float64
		for {
			fdt, hit := fail.within(work)
			if !hit {
				// The attempt completes; silent errors within it are
				// permanent in the unprotected baseline.
				corrupted := false
				remaining := work
				for {
					sdt, sHit := silent.within(remaining)
					if !sHit {
						break
					}
					silent.consume()
					remaining -= sdt
					corrupted = true
				}
				silent.advance(remaining)
				fail.advance(work)
				now += work
				if corrupted {
					corrupt++
				}
				break
			}
			// Crash: all progress is lost, including any corruption.
			fail.consume()
			silent.advance(fdt)
			now += fdt
			out.Restarts++
		}
		out.Time.Add(now)
	}
	out.CorruptShare = float64(corrupt) / float64(runs)
	return out, nil
}

// BaselineExpectedTime is the closed-form expectation of the baseline:
// E[T] = (e^(λf·W) - 1)/λf with restart-from-scratch (the memoryless
// race to finish W before the next crash), degenerating to W when
// λf = 0.
func BaselineExpectedTime(work float64, r core.Rates) float64 {
	if r.FailStop == 0 {
		return work
	}
	return math.Expm1(r.FailStop*work) / r.FailStop
}

// BaselineCorrectProb is the probability the baseline's result is
// correct: no silent error during the final attempt, e^(-λs·W).
func BaselineCorrectProb(work float64, r core.Rates) float64 {
	return math.Exp(-r.Silent * work)
}
