package sim

import (
	"runtime"
	"testing"

	"respat/internal/core"
)

// TestRunBitIdenticalAcrossWorkerCounts asserts the strong guarantee
// documented on Run: the whole Result — counters, overhead and
// wall-time statistics — is bit-identical for Workers ∈
// {1, 2, GOMAXPROCS}, because random streams derive from (Seed, run)
// alone and per-run statistics are reduced in run order.
func TestRunBitIdenticalAcrossWorkerCounts(t *testing.T) {
	c := testCosts()
	p := mustLayout(t, core.PDMV, 2000, 2, 3, c.Recall)
	base := Config{
		Pattern: p, Costs: c,
		Rates:    core.Rates{FailStop: 5e-5, Silent: 1e-4},
		Patterns: 10, Runs: 12, Seed: 42, ErrorsInOps: true,
	}
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	var ref Result
	for i, workers := range counts {
		cfg := base
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res != ref {
			t.Errorf("Workers=%d result differs from Workers=%d:\n%+v\nvs\n%+v",
				workers, counts[0], res, ref)
		}
	}
}
