package sim

// Job-granular entry points for the fleet simulator (internal/fleet):
// a fleet campaign needs one protected execution per job — seeded by
// the job's own identity, with the job's own pattern count — instead
// of one statistical campaign per configuration. JobSim and MLJobSim
// wrap the campaign executors so a worker can reuse one across all the
// jobs it simulates: construction validates once and builds the
// schedule flattening once; Run only reseeds in place.

import (
	"fmt"

	"respat/internal/multilevel"
)

// JobSim replays single protected executions of one pattern
// configuration. It owns a private copy of the configuration and a
// reusable executor, so repeated Run calls allocate nothing. A JobSim
// is not safe for concurrent use; give each worker its own.
type JobSim struct {
	cfg Config
	ex  *executor
}

// NewJobSim validates the configuration (Runs and Seed are ignored —
// Run supplies per-job seeds) and builds the shared schedule
// flattening. cfg.Patterns only seeds validation; each Run passes its
// own count.
func NewJobSim(cfg Config) (*JobSim, error) {
	cfg.Runs = 1
	if cfg.Patterns == 0 {
		cfg.Patterns = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	j := &JobSim{cfg: cfg}
	j.ex = newExecutor(&j.cfg, newPlan(cfg.Pattern))
	return j, nil
}

// Run executes patterns instances under the configured pattern with
// every random stream derived from seed alone (stream index 0, like
// run 0 of a campaign with that seed). It returns the event counters
// and the elapsed virtual seconds. The result is a pure function of
// (seed, patterns) and the construction-time configuration, which is
// what makes fleet reductions independent of worker count.
func (j *JobSim) Run(seed uint64, patterns int) (Counters, float64, error) {
	if patterns <= 0 {
		return Counters{}, 0, fmt.Errorf("sim: job patterns = %d, need > 0", patterns)
	}
	j.cfg.Seed = seed
	j.cfg.Patterns = patterns
	j.ex.reset(0)
	cnt, elapsed := j.ex.runAll()
	return cnt, elapsed, nil
}

// Work returns the pattern work length W in seconds, the quantum a job
// of arbitrary work is rounded up to.
func (j *JobSim) Work() float64 { return j.cfg.Pattern.W }

// MLJobSim is JobSim for the multilevel model: single protected
// executions of one multilevel (Params, Spec) configuration.
type MLJobSim struct {
	cfg    MultilevelConfig
	layout multilevel.Layout
	ex     *mlExecutor
}

// NewMLJobSim validates the configuration (Runs and Seed are ignored)
// and builds the boundary layout once.
func NewMLJobSim(cfg MultilevelConfig) (*MLJobSim, error) {
	cfg.Runs = 1
	if cfg.Patterns == 0 {
		cfg.Patterns = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout, err := cfg.Params.Layout(cfg.Spec)
	if err != nil {
		return nil, err
	}
	j := &MLJobSim{cfg: cfg, layout: layout}
	j.ex = newMLExecutor(&j.cfg, &j.layout)
	return j, nil
}

// Run executes patterns instances seeded by seed alone, mirroring
// JobSim.Run for the multilevel executor.
func (j *MLJobSim) Run(seed uint64, patterns int) (MultilevelCounters, float64, error) {
	if patterns <= 0 {
		return MultilevelCounters{}, 0, fmt.Errorf("sim: job patterns = %d, need > 0", patterns)
	}
	j.cfg.Seed = seed
	j.cfg.Patterns = patterns
	j.ex.reset(0)
	cnt, elapsed := j.ex.runAll()
	return cnt, elapsed, nil
}

// Work returns the spec's pattern work length W in seconds.
func (j *MLJobSim) Work() float64 { return j.cfg.Spec.W }
