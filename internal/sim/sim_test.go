package sim

import (
	"math"
	"testing"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/faults"
	"respat/internal/platform"
	"respat/internal/xmath"
)

// testCosts are small hand-checkable costs used by the trace tests.
func testCosts() core.Costs {
	return core.Costs{
		DiskCkpt: 20, MemCkpt: 10, DiskRec: 7, MemRec: 3,
		GuarVer: 5, PartVer: 1, Recall: 0.8,
	}
}

func mustLayout(t *testing.T, k core.Kind, w float64, n, m int, r float64) core.Pattern {
	t.Helper()
	p, err := core.Layout(k, w, n, m, r)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func never(int) faults.Source { return faults.Never{} }

func traceAt(times ...float64) func(int) faults.Source {
	return func(int) faults.Source { return faults.NewTrace(times) }
}

func TestValidate(t *testing.T) {
	good := Config{
		Pattern:  mustLayout(t, core.PD, 100, 1, 1, 1),
		Costs:    testCosts(),
		Rates:    core.Rates{FailStop: 1e-6, Silent: 1e-6},
		Patterns: 1, Runs: 1,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Patterns = 0
	if bad.Validate() == nil {
		t.Error("Patterns=0 should fail")
	}
	bad = good
	bad.Runs = 0
	if bad.Validate() == nil {
		t.Error("Runs=0 should fail")
	}
	bad = good
	bad.Workers = -1
	if bad.Validate() == nil {
		t.Error("Workers=-1 should fail")
	}
	bad = good
	bad.Rates.Silent = -1
	if bad.Validate() == nil {
		t.Error("bad rates should fail")
	}
	// But custom sources skip rate validation.
	bad.FailSource, bad.SilentSource = never, never
	if err := bad.Validate(); err != nil {
		t.Errorf("custom sources should skip rate validation: %v", err)
	}
	bad = good
	bad.Pattern = core.Pattern{}
	if bad.Validate() == nil {
		t.Error("invalid pattern should fail")
	}
}

func TestErrorFreeRun(t *testing.T) {
	c := testCosts()
	p := mustLayout(t, core.PDMV, 1000, 2, 3, c.Recall)
	res, err := Run(Config{
		Pattern: p, Costs: c, Patterns: 5, Runs: 3, Seed: 1,
		FailSource: never, SilentSource: never,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantOverhead := p.ErrorFreeTime(c)/p.W - 1
	if !xmath.Close(res.Overhead.Mean(), wantOverhead, 1e-12) {
		t.Errorf("overhead = %v, want %v", res.Overhead.Mean(), wantOverhead)
	}
	if res.Overhead.Std() != 0 {
		t.Error("error-free runs should have zero variance")
	}
	// Counters: per run, 5 patterns x (1 disk, 2 mem ckpt, 2 guar, 4 part).
	if res.Total.DiskCkpts != 3*5 {
		t.Errorf("DiskCkpts = %d, want 15", res.Total.DiskCkpts)
	}
	if res.Total.MemCkpts != 3*5*2 {
		t.Errorf("MemCkpts = %d, want 30", res.Total.MemCkpts)
	}
	if res.Total.GuarVerifs != 3*5*2 {
		t.Errorf("GuarVerifs = %d, want 30", res.Total.GuarVerifs)
	}
	if res.Total.PartVerifs != 3*5*4 {
		t.Errorf("PartVerifs = %d, want 60", res.Total.PartVerifs)
	}
	if res.Total.FailStop != 0 || res.Total.Silent != 0 ||
		res.Total.DiskRecs != 0 || res.Total.MemRecs != 0 {
		t.Errorf("error counters non-zero: %+v", res.Total)
	}
}

func TestSingleFailStopTrace(t *testing.T) {
	// PD pattern, W=100, fail-stop after 50 s of computation.
	// Timeline: 50 (lost) + RD 7 + RM 3 + 100 + V* 5 + CM 10 + CD 20,
	// then a clean second pattern of 135: total 330.
	c := testCosts()
	p := mustLayout(t, core.PD, 100, 1, 1, 1)
	res, err := Run(Config{
		Pattern: p, Costs: c, Patterns: 2, Runs: 1, Seed: 1,
		FailSource: traceAt(50), SilentSource: never,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.WallTime.Mean(); !xmath.Close(got, 330, 1e-12) {
		t.Errorf("wall time = %v, want 330", got)
	}
	if res.Total.FailStop != 1 || res.Total.DiskRecs != 1 {
		t.Errorf("counters: %+v", res.Total)
	}
	if res.Total.DiskCkpts != 2 || res.Total.GuarVerifs != 2 {
		t.Errorf("counters: %+v", res.Total)
	}
	if !xmath.Close(res.Overhead.Mean(), (330.0-200)/200, 1e-12) {
		t.Errorf("overhead = %v", res.Overhead.Mean())
	}
}

func TestSingleSilentTraceDetectedByGuaranteed(t *testing.T) {
	// PD pattern, W=100, silent error after 30 s of computation:
	// chunk 100 + V* 5, alarm -> RM 3, replay chunk 100 + V* 5 + CM 10
	// + CD 20 = 243.
	c := testCosts()
	p := mustLayout(t, core.PD, 100, 1, 1, 1)
	res, err := Run(Config{
		Pattern: p, Costs: c, Patterns: 1, Runs: 1, Seed: 1,
		FailSource: never, SilentSource: traceAt(30),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.WallTime.Mean(); !xmath.Close(got, 243, 1e-12) {
		t.Errorf("wall time = %v, want 243", got)
	}
	if res.Total.Silent != 1 || res.Total.MemRecs != 1 || res.Total.DetectByGuar != 1 {
		t.Errorf("counters: %+v", res.Total)
	}
	if res.Total.GuarVerifs != 2 {
		t.Errorf("GuarVerifs = %d, want 2", res.Total.GuarVerifs)
	}
	if res.Total.DiskRecs != 0 {
		t.Errorf("DiskRecs = %d, want 0", res.Total.DiskRecs)
	}
}

func TestSilentTraceDetectedByPartial(t *testing.T) {
	// PDV with two equal chunks of 50 and recall forced to 1 so the
	// partial verification detects deterministically. Silent error at
	// 20 s: chunk1 50 + V 1, alarm -> RM 3, replay segment: 50 + 1 +
	// 50 + V* 5 + CM 10 + CD 20 = 190.
	c := testCosts()
	c.Recall = 1
	p := mustLayout(t, core.PDV, 100, 1, 2, 1)
	res, err := Run(Config{
		Pattern: p, Costs: c, Patterns: 1, Runs: 1, Seed: 1,
		FailSource: never, SilentSource: traceAt(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.WallTime.Mean(); !xmath.Close(got, 190, 1e-12) {
		t.Errorf("wall time = %v, want 190", got)
	}
	if res.Total.DetectByPart != 1 || res.Total.MemRecs != 1 {
		t.Errorf("counters: %+v", res.Total)
	}
	// One partial verification in the first (detecting) attempt plus
	// one in the replay.
	if res.Total.PartVerifs != 2 {
		t.Errorf("PartVerifs = %d, want 2", res.Total.PartVerifs)
	}
}

func TestSilentMissedByPartialCaughtByGuaranteed(t *testing.T) {
	// Same layout but recall 0-ish cannot be configured (r>0), so use
	// a detection stream that never fires by setting recall extremely
	// low; the corruption must then be caught by the guaranteed
	// verification at segment end.
	c := testCosts()
	c.Recall = 1e-12
	p := mustLayout(t, core.PDV, 100, 1, 2, c.Recall)
	res, err := Run(Config{
		Pattern: p, Costs: c, Patterns: 1, Runs: 1, Seed: 1,
		FailSource: never, SilentSource: traceAt(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.DetectByGuar != 1 || res.Total.DetectByPart != 0 {
		t.Errorf("counters: %+v", res.Total)
	}
	// chunk sizes for r~0: beta = [1/2, ~0, 1/2] -> m=2 gives [1/2,1/2].
	// Timeline: 50 + V 1 (miss) + 50 + V* 5 (catch) -> RM 3, replay
	// 50+1+50+5, CM 10, CD 20 = 245.
	if got := res.WallTime.Mean(); !xmath.Close(got, 245, 1e-12) {
		t.Errorf("wall time = %v, want 245", got)
	}
}

func TestFailStopDuringMemCkptWithErrorsInOps(t *testing.T) {
	// Fail-stop exposure includes operations: arrival at exposure 112
	// strikes 7 s into the memory checkpoint (chunk 100 + V* 5 + CM..).
	// Timeline: 112 + RD 7 + RM 3 + replay 100 + 5 + 10 + 20 = 257.
	c := testCosts()
	p := mustLayout(t, core.PD, 100, 1, 1, 1)
	res, err := Run(Config{
		Pattern: p, Costs: c, Patterns: 1, Runs: 1, Seed: 1, ErrorsInOps: true,
		FailSource: traceAt(112), SilentSource: never,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.WallTime.Mean(); !xmath.Close(got, 257, 1e-12) {
		t.Errorf("wall time = %v, want 257", got)
	}
	if res.Total.MemCkpts != 1 || res.Total.GuarVerifs != 2 || res.Total.DiskRecs != 1 {
		t.Errorf("counters: %+v", res.Total)
	}
}

func TestFailStopDuringRecoveryRetries(t *testing.T) {
	// Two arrivals: one kills the chunk at 50, the next strikes during
	// the first disk-recovery read (exposure 53 = 3 s into RD).
	// Timeline: 50 + 3 (lost RD) + RD 7 + RM 3 + 100 + 5 + 10 + 20 = 198.
	c := testCosts()
	p := mustLayout(t, core.PD, 100, 1, 1, 1)
	res, err := Run(Config{
		Pattern: p, Costs: c, Patterns: 1, Runs: 1, Seed: 1, ErrorsInOps: true,
		FailSource: traceAt(50, 53), SilentSource: never,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.WallTime.Mean(); !xmath.Close(got, 198, 1e-12) {
		t.Errorf("wall time = %v, want 198", got)
	}
	if res.Total.FailStop != 2 || res.Total.DiskRecs != 1 {
		t.Errorf("counters: %+v", res.Total)
	}
}

func TestFailStopOnlyCountsMatch(t *testing.T) {
	// Without ErrorsInOps each fail-stop triggers exactly one disk
	// recovery and no memory recovery.
	c := testCosts()
	p := mustLayout(t, core.PD, 1000, 1, 1, 1)
	res, err := Run(Config{
		Pattern: p, Costs: c, Rates: core.Rates{FailStop: 1e-4},
		Patterns: 50, Runs: 20, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.FailStop == 0 {
		t.Fatal("expected some fail-stop errors")
	}
	if res.Total.DiskRecs != res.Total.FailStop {
		t.Errorf("DiskRecs = %d, FailStop = %d", res.Total.DiskRecs, res.Total.FailStop)
	}
	if res.Total.MemRecs != 0 || res.Total.Silent != 0 {
		t.Errorf("unexpected silent activity: %+v", res.Total)
	}
}

func TestSilentOnlyAllDetected(t *testing.T) {
	// Silent-only: every injected corruption is either detected (by a
	// partial or guaranteed verification) exactly once per recovery.
	c := testCosts()
	p := mustLayout(t, core.PDV, 1000, 1, 4, c.Recall)
	res, err := Run(Config{
		Pattern: p, Costs: c, Rates: core.Rates{Silent: 2e-4},
		Patterns: 40, Runs: 20, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Silent == 0 {
		t.Fatal("expected some silent errors")
	}
	detections := res.Total.DetectByPart + res.Total.DetectByGuar
	if detections != res.Total.MemRecs {
		t.Errorf("detections %d != memory recoveries %d", detections, res.Total.MemRecs)
	}
	if res.Total.DiskRecs != 0 {
		t.Errorf("DiskRecs = %d, want 0", res.Total.DiskRecs)
	}
	// With recall 0.8 and 3 partial verifs per pattern, most
	// detections should come from partial verifications.
	if res.Total.DetectByPart <= res.Total.DetectByGuar {
		t.Errorf("partial detections %d should dominate guaranteed %d",
			res.Total.DetectByPart, res.Total.DetectByGuar)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	c := testCosts()
	p := mustLayout(t, core.PDMV, 2000, 2, 3, c.Recall)
	base := Config{
		Pattern: p, Costs: c,
		Rates:    core.Rates{FailStop: 5e-5, Silent: 1e-4},
		Patterns: 10, Runs: 8, Seed: 42, ErrorsInOps: true,
	}
	cfg1 := base
	cfg1.Workers = 1
	cfg4 := base
	cfg4.Workers = 4
	r1, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Total != r4.Total {
		t.Errorf("counters differ: %+v vs %+v", r1.Total, r4.Total)
	}
	if !xmath.Close(r1.Overhead.Mean(), r4.Overhead.Mean(), 1e-12) {
		t.Errorf("overheads differ: %v vs %v", r1.Overhead.Mean(), r4.Overhead.Mean())
	}
	// And a different seed gives different results.
	cfgS := base
	cfgS.Seed = 43
	rS, err := Run(cfgS)
	if err != nil {
		t.Fatal(err)
	}
	if rS.Total == r1.Total {
		t.Error("different seeds produced identical counters")
	}
}

// TestSimulatorMatchesExactModelPD is the central validation: in the
// Sections 3-4 mode (errors only in computation) the simulated mean
// overhead must match the exact renewal-equation evaluation.
func TestSimulatorMatchesExactModelPD(t *testing.T) {
	c := testCosts()
	r := core.Rates{FailStop: 1e-4, Silent: 2e-4}
	p := mustLayout(t, core.PD, 2000, 1, 1, 1)
	exact, err := analytic.ExactExpectedTime(p, c, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Pattern: p, Costs: c, Rates: r, Patterns: 40, Runs: 400, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantOverhead := exact/p.W - 1
	got := res.Overhead.Mean()
	tol := 4*res.Overhead.CI95() + 0.002
	if math.Abs(got-wantOverhead) > tol {
		t.Errorf("simulated overhead %v vs exact %v (tol %v)", got, wantOverhead, tol)
	}
}

func TestSimulatorMatchesExactModelPDMV(t *testing.T) {
	c := testCosts()
	r := core.Rates{FailStop: 5e-5, Silent: 3e-4}
	p := mustLayout(t, core.PDMV, 4000, 3, 4, c.Recall)
	exact, err := analytic.ExactExpectedTime(p, c, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Pattern: p, Costs: c, Rates: r, Patterns: 25, Runs: 400, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantOverhead := exact/p.W - 1
	got := res.Overhead.Mean()
	tol := 4*res.Overhead.CI95() + 0.002
	if math.Abs(got-wantOverhead) > tol {
		t.Errorf("simulated overhead %v vs exact %v (tol %v)", got, wantOverhead, tol)
	}
}

func TestDiskRecoveryRateMatchesMTBF(t *testing.T) {
	// On Hera the simulated disk-recovery frequency tracks the
	// fail-stop rate (§6.2.5): expect roughly λf·86400 per day.
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := analytic.Optimal(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Pattern: plan.Pattern, Costs: hera.Costs, Rates: hera.Rates,
		Patterns: 60, Runs: 30, Seed: 3, ErrorsInOps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	perDay := res.PerDay(res.Total.DiskRecs)
	want := hera.Rates.FailStop * platform.SecondsPerDay
	if math.Abs(perDay-want)/want > 0.25 {
		t.Errorf("disk recoveries/day = %v, want ~%v", perDay, want)
	}
}

func TestRateHelpers(t *testing.T) {
	var r Result
	if r.PerHour(10) != 0 || r.PerPattern(10) != 0 {
		t.Error("zero-time helpers should return 0")
	}
	c := testCosts()
	p := mustLayout(t, core.PD, 100, 1, 1, 1)
	res, err := Run(Config{
		Pattern: p, Costs: c, Patterns: 4, Runs: 2, Seed: 1,
		FailSource: never, SilentSource: never,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 disk checkpoints over 2 runs x 4 patterns x 135 s each.
	if got, want := res.PerHour(res.Total.DiskCkpts), 8.0/(1080.0/3600.0); !xmath.Close(got, want, 1e-9) {
		t.Errorf("PerHour = %v, want %v", got, want)
	}
	if got := res.PerDay(res.Total.DiskCkpts); !xmath.Close(got, res.PerHour(res.Total.DiskCkpts)*24, 1e-12) {
		t.Errorf("PerDay = %v", got)
	}
	if got := res.PerPattern(res.Total.DiskCkpts); !xmath.Close(got, 1, 1e-12) {
		t.Errorf("PerPattern = %v, want 1", got)
	}
}

func TestOverheadPredictionGap(t *testing.T) {
	if got := OverheadPredictionGap(0.11, 0.10); !xmath.Close(got, 0.1, 1e-9) {
		t.Errorf("gap = %v, want 0.1", got)
	}
	if got := OverheadPredictionGap(1, 0); got < 1e11 {
		t.Errorf("gap with zero prediction = %v", got)
	}
}

func TestCountersVerifsSum(t *testing.T) {
	c := Counters{PartVerifs: 3, GuarVerifs: 4}
	if c.Verifs() != 7 {
		t.Errorf("Verifs = %d", c.Verifs())
	}
}

func TestWorkersClampedToRuns(t *testing.T) {
	c := testCosts()
	p := mustLayout(t, core.PD, 100, 1, 1, 1)
	res, err := Run(Config{
		Pattern: p, Costs: c, Patterns: 1, Runs: 2, Seed: 1, Workers: 64,
		FailSource: never, SilentSource: never,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead.N() != 2 {
		t.Errorf("runs recorded = %d, want 2", res.Overhead.N())
	}
}
