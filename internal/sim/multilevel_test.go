package sim

import (
	"math"
	"testing"

	"respat/internal/core"
	"respat/internal/multilevel"
)

// mlGrid is the seeded parameter grid shared by the cross-validation
// and invariant tests: one configuration per hierarchy depth.
func mlGrid() []MultilevelConfig {
	return []MultilevelConfig{
		{
			Params: multilevel.Params{
				Levels:  []multilevel.Level{{Ckpt: 120, Rec: 150, Share: 1}},
				GuarVer: 10, PartVer: 1, Recall: 0.8,
				Rates: core.Rates{FailStop: 3e-5, Silent: 6e-5},
			},
			Spec:     multilevel.UniformSpec(2400, nil, 3),
			Patterns: 40, Runs: 600, Seed: 11,
		},
		{
			Params: multilevel.Params{
				Levels: []multilevel.Level{
					{Ckpt: 10, Rec: 12, Share: 0.6},
					{Ckpt: 120, Rec: 150, Share: 0.4},
				},
				GuarVer: 8, PartVer: 0.5, Recall: 0.8,
				Rates: core.Rates{FailStop: 5e-5, Silent: 8e-5},
			},
			Spec:     multilevel.UniformSpec(4800, []int{4}, 2),
			Patterns: 40, Runs: 600, Seed: 12,
		},
		{
			Params: multilevel.Params{
				Levels: []multilevel.Level{
					{Ckpt: 5, Rec: 6, Share: 0.5},
					{Ckpt: 30, Rec: 40, Share: 0.3},
					{Ckpt: 200, Rec: 260, Share: 0.2},
				},
				GuarVer: 6, PartVer: 0.4, Recall: 0.7,
				Rates: core.Rates{FailStop: 4e-5, Silent: 5e-5},
			},
			Spec:     multilevel.UniformSpec(7200, []int{3, 2}, 2),
			Patterns: 30, Runs: 600, Seed: 13,
		},
	}
}

// TestMultilevelCrossValidation: on the seeded grid the Monte-Carlo
// overhead agrees with the exact renewal-recursion evaluator within
// the campaign's 95% confidence half-width — the same evaluator-vs-
// simulator contract the single-level model carries.
func TestMultilevelCrossValidation(t *testing.T) {
	for i, cfg := range mlGrid() {
		ev, err := multilevel.NewEvaluator(cfg.Params)
		if err != nil {
			t.Fatal(err)
		}
		predicted, err := ev.Overhead(cfg.Spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunMultilevel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, ci := res.Overhead.Mean(), res.Overhead.CI95()
		if math.Abs(got-predicted) > ci {
			t.Errorf("grid cell %d (L=%d): simulated overhead %.6f vs exact %.6f, |diff| %.2e > CI95 %.2e",
				i, cfg.Params.L(), got, predicted, math.Abs(got-predicted), ci)
		}
	}
}

// TestMultilevelDeterministicAcrossWorkers: results are bit-identical
// for any Workers value (the Run contract, inherited by RunMultilevel).
func TestMultilevelDeterministicAcrossWorkers(t *testing.T) {
	cfg := mlGrid()[2]
	cfg.Runs = 64
	var ref MultilevelResult
	for i, workers := range []int{1, 3, 8} {
		cfg.Workers = workers
		res, err := RunMultilevel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.Overhead != ref.Overhead || res.WallTime != ref.WallTime {
			t.Errorf("Workers=%d: overhead/wall samples differ from Workers=1", workers)
		}
		if res.Total != ref.Total {
			t.Errorf("Workers=%d: counters differ from Workers=1: %+v vs %+v", workers, res.Total, ref.Total)
		}
	}
}

// TestMultilevelInvariants: conservation laws of the multilevel
// executor on the whole grid.
func TestMultilevelInvariants(t *testing.T) {
	for i, cfg := range mlGrid() {
		cfg.Runs = 80
		res, err := RunMultilevel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		L := cfg.Params.L()
		instances := int64(res.Runs) * int64(res.Patterns)
		// Every pattern commits exactly one top-level checkpoint.
		if res.Total.Ckpts[L-1] != instances {
			t.Errorf("cell %d: top-level checkpoints %d != instances %d", i, res.Total.Ckpts[L-1], instances)
		}
		// Lower levels checkpoint at least as often as higher levels.
		for l := 0; l+1 < L; l++ {
			if res.Total.Ckpts[l] < res.Total.Ckpts[l+1] {
				t.Errorf("cell %d: level-%d checkpoints %d below level-%d's %d",
					i, l+1, res.Total.Ckpts[l], l+2, res.Total.Ckpts[l+1])
			}
		}
		// No recoveries outside the hierarchy, and recoveries match the
		// injected fail-stop count.
		var recs int64
		for l := 0; l < multilevel.MaxLevels; l++ {
			if l >= L && (res.Total.Recs[l] != 0 || res.Total.Ckpts[l] != 0) {
				t.Errorf("cell %d: events at level %d beyond the %d-level hierarchy", i, l+1, L)
			}
			recs += res.Total.Recs[l]
		}
		if recs != res.Total.FailStop {
			t.Errorf("cell %d: %d fail-stop recoveries for %d fail-stop errors", i, recs, res.Total.FailStop)
		}
		// Every detection triggers exactly one level-1 rollback, and
		// detections cannot exceed injections.
		det := res.Total.DetectByPart + res.Total.DetectByGuar
		if det != res.Total.SilentRecs {
			t.Errorf("cell %d: detections %d != silent rollbacks %d", i, det, res.Total.SilentRecs)
		}
		if det > res.Total.Silent {
			t.Errorf("cell %d: detections %d exceed injected silent errors %d", i, det, res.Total.Silent)
		}
	}
}
