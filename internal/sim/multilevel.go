package sim

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"respat/internal/faults"
	"respat/internal/multilevel"
	"respat/internal/stats"
)

// Stream identifiers for the multilevel executor's deterministic
// per-run seed derivation (independent of the single-level streams:
// the two simulators never share a Config).
const (
	mlStreamFail = iota
	mlStreamSilent
	mlStreamDetect
	mlStreamLevel
	numMLStreams
)

// MultilevelConfig parameterises a multilevel Monte-Carlo campaign
// (internal/multilevel): patterns with L checkpoint levels, level-aware
// fail-stop rollback and the paper's silent-error verifications.
type MultilevelConfig struct {
	Params multilevel.Params
	Spec   multilevel.Spec
	// Patterns is the number of pattern instances per run.
	Patterns int
	// Runs is the number of independent Monte-Carlo repetitions.
	Runs int
	// Seed makes the campaign reproducible; as in Config, runs are
	// seeded independently of scheduling.
	Seed uint64
	// Workers bounds the number of parallel simulation goroutines;
	// 0 means GOMAXPROCS.
	Workers int
}

// MultilevelCounters tallies the events of a multilevel campaign.
type MultilevelCounters struct {
	FailStop   int64 // fail-stop errors injected
	Silent     int64 // silent errors injected
	PartVerifs int64 // completed interior verifications
	GuarVerifs int64 // completed guaranteed verifications
	// DetectByPart and DetectByGuar split detected corruptions by the
	// verification class that caught them.
	DetectByPart int64
	DetectByGuar int64
	// SilentRecs counts rollbacks to the level-1 checkpoint after a
	// verification alarm.
	SilentRecs int64
	// Ckpts[l] counts committed level-(l+1) checkpoints; Recs[l] counts
	// recoveries from a level-(l+1) fail-stop error.
	Ckpts [multilevel.MaxLevels]int64
	Recs  [multilevel.MaxLevels]int64
}

func (c *MultilevelCounters) add(o MultilevelCounters) {
	c.FailStop += o.FailStop
	c.Silent += o.Silent
	c.PartVerifs += o.PartVerifs
	c.GuarVerifs += o.GuarVerifs
	c.DetectByPart += o.DetectByPart
	c.DetectByGuar += o.DetectByGuar
	c.SilentRecs += o.SilentRecs
	for l := range c.Ckpts {
		c.Ckpts[l] += o.Ckpts[l]
		c.Recs[l] += o.Recs[l]
	}
}

// MultilevelResult aggregates a multilevel campaign.
type MultilevelResult struct {
	Runs     int
	Patterns int
	// PatternWork is W of the simulated spec.
	PatternWork float64
	Overhead    stats.Sample // per-run (time-work)/work
	WallTime    stats.Sample // per-run total simulated seconds
	Total       MultilevelCounters
}

// Validate checks the configuration.
func (cfg MultilevelConfig) Validate() error {
	if err := cfg.Params.Validate(); err != nil {
		return err
	}
	if err := cfg.Spec.Validate(cfg.Params.L()); err != nil {
		return err
	}
	if cfg.Patterns <= 0 {
		return fmt.Errorf("sim: Patterns = %d, need > 0", cfg.Patterns)
	}
	if cfg.Runs <= 0 {
		return fmt.Errorf("sim: Runs = %d, need > 0", cfg.Runs)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("sim: Workers = %d, need >= 0", cfg.Workers)
	}
	return nil
}

// RunMultilevel executes a multilevel campaign with the same
// determinism contract as Run: every random stream derives from
// (Seed, run) alone, each worker reuses one executor against the
// campaign-shared layout, and per-run statistics are reduced in run
// order, so results are bit-identical for any Workers value.
//
// The executor realises the model of internal/multilevel: errors
// strike computations only (the Sections 3-4 assumption the exact
// evaluator shares); a fail-stop error draws its level from the q
// shares, pays that level's recovery and rolls execution back to the
// most recent boundary that wrote a checkpoint at that level or above;
// a detected silent error pays the level-1 recovery and replays the
// current level-1 interval.
func RunMultilevel(cfg MultilevelConfig) (MultilevelResult, error) {
	if err := cfg.Validate(); err != nil {
		return MultilevelResult{}, err
	}
	layout, err := cfg.Params.Layout(cfg.Spec)
	if err != nil {
		return MultilevelResult{}, err
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Runs {
		workers = cfg.Runs
	}

	work := cfg.Spec.W * float64(cfg.Patterns)
	overheads := make([]float64, cfg.Runs)
	walls := make([]float64, cfg.Runs)
	totals := make([]MultilevelCounters, workers)
	if workers == 1 {
		// Inline, as in Run: a lone worker goroutine only adds
		// spawn/handoff latency.
		ex := newMLExecutor(&cfg, &layout)
		for run := 0; run < cfg.Runs; run++ {
			ex.reset(run)
			cnt, elapsed := ex.runAll()
			overheads[run] = (elapsed - work) / work
			walls[run] = elapsed
			totals[0].add(cnt)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ex := newMLExecutor(&cfg, &layout)
				for run := w; run < cfg.Runs; run += workers {
					ex.reset(run)
					cnt, elapsed := ex.runAll()
					overheads[run] = (elapsed - work) / work
					walls[run] = elapsed
					totals[w].add(cnt)
				}
			}(w)
		}
		wg.Wait()
	}

	res := MultilevelResult{Runs: cfg.Runs, Patterns: cfg.Patterns, PatternWork: cfg.Spec.W}
	for run := range overheads {
		res.Overhead.Add(overheads[run])
		res.WallTime.Add(walls[run])
	}
	for i := range totals {
		res.Total.add(totals[i])
	}
	return res, nil
}

// mlExecutor simulates multilevel runs one at a time; one executor is
// reused across all runs of a worker, reseeded per run by reset.
type mlExecutor struct {
	cfg    *MultilevelConfig
	layout *multilevel.Layout
	fail   process
	silent process
	detect *faults.Bernoulli
	level  *faults.Bernoulli // uniform stream behind the level draw

	now       float64
	corrupted bool
	cnt       MultilevelCounters

	failExp   *faults.Exponential
	failPCG   *rand.PCG
	silentExp *faults.Exponential
	silentPCG *rand.PCG
	detectPCG *rand.PCG
	levelPCG  *rand.PCG
}

func newMLExecutor(cfg *MultilevelConfig, layout *multilevel.Layout) *mlExecutor {
	e := &mlExecutor{cfg: cfg, layout: layout}
	// Rates were validated by cfg.Validate, so construction cannot fail.
	e.failPCG = rand.NewPCG(0, 0)
	e.failExp = &faults.Exponential{Lambda: cfg.Params.Rates.FailStop, Rng: rand.New(e.failPCG)}
	e.silentPCG = rand.NewPCG(0, 0)
	e.silentExp = &faults.Exponential{Lambda: cfg.Params.Rates.Silent, Rng: rand.New(e.silentPCG)}
	e.detectPCG = rand.NewPCG(0, 0)
	e.detect = &faults.Bernoulli{Rng: rand.New(e.detectPCG)}
	e.levelPCG = rand.NewPCG(0, 0)
	e.level = &faults.Bernoulli{Rng: rand.New(e.levelPCG)}
	return e
}

// reset prepares the executor for one run; every stream depends only
// on (cfg.Seed, run).
func (e *mlExecutor) reset(run int) {
	s1, s2 := faults.SplitSeed(e.cfg.Seed, uint64(run)*numMLStreams+mlStreamFail)
	e.failPCG.Seed(s1, s2)
	s1, s2 = faults.SplitSeed(e.cfg.Seed, uint64(run)*numMLStreams+mlStreamSilent)
	e.silentPCG.Seed(s1, s2)
	s1, s2 = faults.SplitSeed(e.cfg.Seed, uint64(run)*numMLStreams+mlStreamDetect)
	e.detectPCG.Seed(s1, s2)
	s1, s2 = faults.SplitSeed(e.cfg.Seed, uint64(run)*numMLStreams+mlStreamLevel)
	e.levelPCG.Seed(s1, s2)
	e.fail = newProcess(e.failExp)
	e.silent = newProcess(e.silentExp)
	e.now = 0
	e.corrupted = false
	e.cnt = MultilevelCounters{}
}

func (e *mlExecutor) runAll() (MultilevelCounters, float64) {
	for p := 0; p < e.cfg.Patterns; p++ {
		e.runPattern()
	}
	return e.cnt, e.now
}

// runPattern executes one pattern instance: n_1 level-1 intervals,
// each of m chunks, with level-aware rollback.
func (e *mlExecutor) runPattern() {
	p := &e.cfg.Params
	n1 := e.layout.Spec.Counts[0]
	t := 0
	for t < n1 {
		if lvl, ok := e.runInterval(); !ok {
			// Fail-stop of level lvl: pay its recovery, resume from the
			// most recent level-≥lvl boundary. The restored state was
			// verified before it was checkpointed, so no corruption
			// survives the rollback.
			e.now += p.Levels[lvl-1].Rec
			e.cnt.Recs[lvl-1]++
			e.corrupted = false
			t = e.layout.RollbackTo(lvl, t)
			continue
		}
		// Clean guaranteed verification: commit the boundary's
		// checkpoint stack.
		for l := 1; l <= e.layout.BoundaryLevel(t); l++ {
			e.now += p.Levels[l-1].Ckpt
			e.cnt.Ckpts[l-1]++
		}
		t++
	}
}

// runInterval executes one level-1 interval until it passes its
// closing guaranteed verification. It returns ok=false with the error
// level when a fail-stop interrupts it; detected silent errors are
// handled internally (level-1 rollback and retry).
func (e *mlExecutor) runInterval() (level int, ok bool) {
	p := &e.cfg.Params
	m := len(e.layout.Chunks)
	for {
		j := 0
		for j < m {
			if !e.chunk(e.layout.Chunks[j]) {
				return p.PickLevel(e.level.Rng.Float64()), false
			}
			if j < m-1 {
				// Interior verification.
				e.now += e.layout.InteriorCost
				e.cnt.PartVerifs++
				if e.corrupted && e.detect.Hit(e.layout.InteriorRecall) {
					e.cnt.DetectByPart++
					e.silentRollback()
					j = 0
					continue
				}
			}
			j++
		}
		// Closing guaranteed verification: detection is certain.
		e.now += p.GuarVer
		e.cnt.GuarVerifs++
		if !e.corrupted {
			return 0, true
		}
		e.cnt.DetectByGuar++
		e.silentRollback()
	}
}

// silentRollback restores the level-1 checkpoint after a verification
// alarm.
func (e *mlExecutor) silentRollback() {
	e.now += e.cfg.Params.Levels[0].Rec
	e.cnt.SilentRecs++
	e.corrupted = false
}

// chunk executes w seconds of computation exposed to both error
// processes; it reports false when a fail-stop interrupts it.
func (e *mlExecutor) chunk(w float64) bool {
	remaining := w
	for remaining > 0 {
		fdt, fHit := e.fail.within(remaining)
		sdt, sHit := e.silent.within(remaining)
		if sHit && (!fHit || sdt <= fdt) {
			e.silent.consume()
			e.fail.advance(sdt)
			e.now += sdt
			remaining -= sdt
			e.corrupted = true
			e.cnt.Silent++
			continue
		}
		if fHit {
			e.fail.consume()
			e.silent.advance(fdt)
			e.now += fdt
			e.cnt.FailStop++
			return false
		}
		e.fail.advance(remaining)
		e.silent.advance(remaining)
		e.now += remaining
		remaining = 0
	}
	return true
}
