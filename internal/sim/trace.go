package sim

import (
	"fmt"
	"io"

	"respat/internal/core"
)

// EventKind classifies timeline events recorded by TraceOne.
type EventKind int

// Event kinds, in the order they typically appear.
const (
	EvOpDone      EventKind = iota // an operation completed
	EvFailStop                     // a fail-stop error struck
	EvSilent                       // a silent error corrupted the state
	EvDetect                       // a verification raised an alarm
	EvDiskRec                      // a disk recovery completed
	EvMemRec                       // a standalone memory recovery completed
	EvPatternDone                  // a pattern instance committed
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvOpDone:
		return "op-done"
	case EvFailStop:
		return "fail-stop"
	case EvSilent:
		return "silent-error"
	case EvDetect:
		return "detected"
	case EvDiskRec:
		return "disk-recovery"
	case EvMemRec:
		return "mem-recovery"
	case EvPatternDone:
		return "pattern-done"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of a simulated run's timeline.
type Event struct {
	Time    time64
	Kind    EventKind
	Op      core.Op // for EvOpDone and EvDetect
	Segment int
	Pattern int // pattern instance index
}

// time64 documents that event times are virtual seconds.
type time64 = float64

// String renders one timeline line.
func (e Event) String() string {
	switch e.Kind {
	case EvOpDone:
		return fmt.Sprintf("t=%10.1f  p%02d s%02d  %v", e.Time, e.Pattern, e.Segment, e.Op)
	case EvDetect:
		return fmt.Sprintf("t=%10.1f  p%02d s%02d  ALARM (%v)", e.Time, e.Pattern, e.Segment, e.Op)
	case EvPatternDone:
		return fmt.Sprintf("t=%10.1f  p%02d      committed", e.Time, e.Pattern)
	default:
		return fmt.Sprintf("t=%10.1f  p%02d s%02d  %v", e.Time, e.Pattern, e.Segment, e.Kind)
	}
}

// TraceOne executes a single run of the configuration (cfg.Runs is
// ignored) and returns its full event timeline alongside the counters.
// It is intended for debugging protocols and for documentation — the
// timelines in README.md come from it.
func TraceOne(cfg Config, run int) ([]Event, Counters, error) {
	cfg.Runs = 1
	if err := cfg.Validate(); err != nil {
		return nil, Counters{}, err
	}
	ex := newExecutor(&cfg, newPlan(cfg.Pattern))
	ex.reset(run)
	var events []Event
	ex.rec = func(e Event) { events = append(events, e) }
	cnt, _ := ex.runAll()
	return events, cnt, nil
}

// WriteTimeline renders events one per line.
func WriteTimeline(w io.Writer, events []Event) error {
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
