package harness

import (
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"respat/internal/core"
	"respat/internal/platform"
)

// campaignCounts are the worker counts the determinism tests compare.
func campaignCounts() []int { return []int{1, 2, runtime.GOMAXPROCS(0)} }

// TestFig6DeterministicAcrossCampaignWorkers asserts the campaign
// scheduler's core guarantee: for a fixed seed, every cell's row is
// bit-identical regardless of how many cells run concurrently.
func TestFig6DeterministicAcrossCampaignWorkers(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Patterns: 10, Runs: 6, Seed: 11, Workers: 1}
	var ref []Fig6Row
	for i, workers := range campaignCounts() {
		o.CampaignWorkers = workers
		rows, err := Fig6([]platform.Platform{hera}, o)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = rows
			continue
		}
		if !reflect.DeepEqual(rows, ref) {
			t.Errorf("CampaignWorkers=%d rows differ from sequential", workers)
		}
	}
}

// TestRateSweepDeterministicAcrossCampaignWorkers covers the Figure 9
// driver, whose cells differ in both rate factors and family.
func TestRateSweepDeterministicAcrossCampaignWorkers(t *testing.T) {
	o := Options{Patterns: 8, Runs: 5, Seed: 3, Workers: 1}
	pairs := Grid([]float64{0.5, 1.5})
	kinds := []core.Kind{core.PD, core.PDMV}
	var ref []RatePoint
	for i, workers := range campaignCounts() {
		o.CampaignWorkers = workers
		pts, err := RateSweep(5000, pairs, kinds, o)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = pts
			continue
		}
		if !reflect.DeepEqual(pts, ref) {
			t.Errorf("CampaignWorkers=%d points differ from sequential", workers)
		}
	}
}

// TestWeakScalingDeterministicAcrossCampaignWorkers covers the
// Figures 7/8 driver.
func TestWeakScalingDeterministicAcrossCampaignWorkers(t *testing.T) {
	o := Options{Patterns: 8, Runs: 5, Seed: 5, Workers: 1}
	var ref []WeakRow
	for i, workers := range campaignCounts() {
		o.CampaignWorkers = workers
		rows, err := WeakScaling([]int{1 << 10, 1 << 12}, 300, 15, []core.Kind{core.PD, core.PDMV}, o)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = rows
			continue
		}
		if !reflect.DeepEqual(rows, ref) {
			t.Errorf("CampaignWorkers=%d rows differ from sequential", workers)
		}
	}
}

// TestCellSeedsDistinct: distinct cells get decorrelated seeds, and the
// derivation is a pure function of (Seed, index).
func TestCellSeedsDistinct(t *testing.T) {
	o := Options{Seed: 9}
	seen := map[uint64]int{}
	for i := 0; i < 64; i++ {
		s := o.cellSeed(i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("cells %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
		if s != o.cellSeed(i) {
			t.Fatalf("cellSeed(%d) not deterministic", i)
		}
	}
}

// TestRunCellsReportsFirstErrorInCellOrder: whichever cell fails first
// in wall-clock time, the reported error is the lowest-indexed one,
// matching a sequential driver.
func TestRunCellsReportsFirstErrorInCellOrder(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range campaignCounts() {
		err := runCells(8, workers, func(i int) error {
			switch i {
			case 2:
				return errLow
			case 6:
				return errHigh
			default:
				return nil
			}
		})
		if err != errLow {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

// TestRunCellsRunsEveryCellOnce covers the pool bookkeeping.
func TestRunCellsRunsEveryCellOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var hits [23]atomic.Int32
		if err := runCells(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Errorf("workers=%d: cell %d ran %d times", workers, i, n)
			}
		}
	}
}
