package harness

import (
	"fmt"

	"respat/internal/core"
	"respat/internal/viz"
)

// WeakScalingChart plots overhead vs node count (Figures 7a/8a):
// predicted and simulated series per pattern family, log-scaled nodes.
func WeakScalingChart(title string, rows []WeakRow) *viz.Chart {
	series := map[string]*viz.Series{}
	var order []string
	add := func(name string, x, y float64) {
		s, ok := series[name]
		if !ok {
			s = &viz.Series{Name: name}
			series[name] = s
			order = append(order, name)
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	for _, r := range rows {
		add(r.Kind.String()+" pred", float64(r.Nodes), 100*r.Predicted)
		add(r.Kind.String()+" sim", float64(r.Nodes), 100*r.Simulated)
	}
	c := &viz.Chart{Title: title + "  [y: overhead %, x: nodes]", Width: 72, Height: 20, LogX: true}
	for _, name := range order {
		c.Series = append(c.Series, *series[name])
	}
	return c
}

// RateSweepPeriodChart plots the optimal period vs the swept rate
// factor (Figures 9d/9h).
func RateSweepPeriodChart(title string, pts []RatePoint, silentAxis bool) *viz.Chart {
	return rateSweepChart(title+"  [y: period min, x: rate factor]", pts, silentAxis,
		func(p RatePoint) float64 { return p.PeriodMinutes })
}

// RateSweepOverheadChart plots the simulated overhead vs the swept
// rate factor (slices of Figures 9a-9b).
func RateSweepOverheadChart(title string, pts []RatePoint, silentAxis bool) *viz.Chart {
	return rateSweepChart(title+"  [y: overhead %, x: rate factor]", pts, silentAxis,
		func(p RatePoint) float64 { return 100 * p.Simulated })
}

func rateSweepChart(title string, pts []RatePoint, silentAxis bool, metric func(RatePoint) float64) *viz.Chart {
	series := map[core.Kind]*viz.Series{}
	var order []core.Kind
	for _, p := range pts {
		s, ok := series[p.Kind]
		if !ok {
			s = &viz.Series{Name: p.Kind.String()}
			series[p.Kind] = s
			order = append(order, p.Kind)
		}
		x := p.FailFactor
		if silentAxis {
			x = p.SilentFactor
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, metric(p))
	}
	c := &viz.Chart{Title: title, Width: 72, Height: 20}
	for _, k := range order {
		c.Series = append(c.Series, *series[k])
	}
	return c
}

// Fig6Chart plots predicted vs simulated overhead per family on one
// platform (Figure 6a), using the family index as the x axis.
func Fig6Chart(platformName string, rows []Fig6Row) *viz.Chart {
	pred := viz.Series{Name: "predicted"}
	sim := viz.Series{Name: "simulated"}
	for _, r := range rows {
		if r.Platform != platformName {
			continue
		}
		x := float64(int(r.Kind))
		pred.X = append(pred.X, x)
		pred.Y = append(pred.Y, 100*r.Predicted)
		sim.X = append(sim.X, x)
		sim.Y = append(sim.Y, 100*r.Simulated)
	}
	return &viz.Chart{
		Title:  fmt.Sprintf("Figure 6a (%s)  [y: overhead %%, x: family 0=PD..5=PDMV]", platformName),
		Width:  60,
		Height: 14,
		Series: []viz.Series{pred, sim},
	}
}
