package harness

import (
	"math"
	"strings"
	"testing"

	"respat/internal/core"
	"respat/internal/platform"
)

// quick is smaller than Fast for unit-test latency; experiment shapes
// remain stable because the seeds are fixed. Runs is large enough that
// rare-event assertions (e.g. disk recoveries/day tracking λf) sit
// several Poisson standard deviations inside their tolerance.
func quick() Options { return Options{Patterns: 40, Runs: 48, Seed: 7, CampaignWorkers: 2} }

func TestTable1AllPlatforms(t *testing.T) {
	rows, err := Table1(platform.Table2())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*6 {
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	// Within each platform, the full pattern never does worse than the
	// base pattern, and the integer plan sits above the closed form.
	byPlatform := map[string]map[core.Kind]Table1Row{}
	for _, r := range rows {
		if byPlatform[r.Platform] == nil {
			byPlatform[r.Platform] = map[core.Kind]Table1Row{}
		}
		byPlatform[r.Platform][r.Plan.Kind] = r
		if r.Plan.Overhead < r.ContinuousOverhead-1e-12 {
			t.Errorf("%s/%v: integer overhead below closed form", r.Platform, r.Plan.Kind)
		}
	}
	for name, kinds := range byPlatform {
		if kinds[core.PDMV].Plan.Overhead > kinds[core.PD].Plan.Overhead+1e-12 {
			t.Errorf("%s: PDMV worse than PD", name)
		}
	}
	out := RenderTable1(rows).String()
	if !strings.Contains(out, "Hera") || !strings.Contains(out, "PDMV") {
		t.Error("rendered table incomplete")
	}
}

func TestTable2Derived(t *testing.T) {
	rows := Table2()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if math.Abs(rows[0].FailMTBFDays-12.2) > 0.1 {
		t.Errorf("Hera fail-stop MTBF = %v", rows[0].FailMTBFDays)
	}
	out := RenderTable2(rows).String()
	if !strings.Contains(out, "Coastal-SSD") {
		t.Error("rendered table incomplete")
	}
}

func TestFig6ShapesOnHera(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Fig6([]platform.Platform{hera}, quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	get := func(k core.Kind) Fig6Row {
		for _, r := range rows {
			if r.Kind == k {
				return r
			}
		}
		t.Fatalf("missing %v", k)
		return Fig6Row{}
	}
	// Paper §6.2.2: predicted is slightly optimistic; the gap stays
	// small (<1% absolute at this scale; allow slack for reduced runs).
	for _, r := range rows {
		if r.Simulated < r.Predicted-3*r.SimCI95 {
			t.Errorf("%v: simulated %v below predicted %v", r.Kind, r.Simulated, r.Predicted)
		}
		if gap := math.Abs(r.Simulated - r.Predicted); gap > 0.02 {
			t.Errorf("%v: prediction gap %v too large", r.Kind, gap)
		}
	}
	// Paper §6.2.3: two-level patterns have longer periods.
	if !(get(core.PDM).PeriodHours > get(core.PD).PeriodHours) {
		t.Error("PDM period should exceed PD period")
	}
	if !(get(core.PDMV).PeriodHours > get(core.PDV).PeriodHours) {
		t.Error("PDMV period should exceed PDV period")
	}
	// §6.2.4: partial-verification patterns take many verifications.
	if !(get(core.PDV).VerifsPerHour > 5) {
		t.Errorf("PDV verifs/hour = %v, want >5 (paper: ~13)", get(core.PDV).VerifsPerHour)
	}
	// §6.2.5: disk recoveries/day track the fail-stop rate for every
	// pattern (~0.083 on Hera).
	for _, r := range rows {
		want := hera.Rates.FailStop * platform.SecondsPerDay
		if math.Abs(r.DiskRecsPerDay-want)/want > 0.5 {
			t.Errorf("%v: disk recs/day = %v, want ~%v", r.Kind, r.DiskRecsPerDay, want)
		}
	}
	out := RenderFig6(rows).String()
	if !strings.Contains(out, "PDMV*") {
		t.Error("rendered table incomplete")
	}
}

func TestWeakScalingShapes(t *testing.T) {
	rows, err := WeakScaling([]int{256, 16384}, 300, 15, []core.Kind{core.PD, core.PDMV}, quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	find := func(nodes int, k core.Kind) WeakRow {
		for _, r := range rows {
			if r.Nodes == nodes && r.Kind == k {
				return r
			}
		}
		t.Fatalf("missing %d/%v", nodes, k)
		return WeakRow{}
	}
	// Overheads grow with the node count.
	if !(find(16384, core.PD).Simulated > find(256, core.PD).Simulated) {
		t.Error("PD overhead should grow with nodes")
	}
	if !(find(16384, core.PDMV).Simulated > find(256, core.PDMV).Simulated) {
		t.Error("PDMV overhead should grow with nodes")
	}
	// At scale, the combined pattern wins (Fig 7a).
	if !(find(16384, core.PDMV).Simulated < find(16384, core.PD).Simulated) {
		t.Error("PDMV should beat PD at 16k nodes")
	}
	out := RenderWeakScaling("Figure 7", rows).String()
	if !strings.Contains(out, "16384") {
		t.Error("rendered table incomplete")
	}
}

func TestWeakScalingCheapDiskLowersOverhead(t *testing.T) {
	o := quick()
	expensive, err := WeakScaling([]int{16384}, 300, 15, []core.Kind{core.PD}, o)
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := WeakScaling([]int{16384}, 90, 15, []core.Kind{core.PD}, o)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 8 vs Figure 7: cheaper disk checkpoints reduce overhead.
	if !(cheap[0].Simulated < expensive[0].Simulated) {
		t.Errorf("CD=90 overhead %v should beat CD=300 %v", cheap[0].Simulated, expensive[0].Simulated)
	}
}

func TestRateSweepShapes(t *testing.T) {
	// Figure 9 shape at reduced scale (10^4 nodes for test latency):
	// increasing the silent rate hurts PD much more than PDMV.
	o := quick()
	pts, err := RateSweep(10000, AxisSilent([]float64{0.5, 2}), []core.Kind{core.PD, core.PDMV}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	find := func(fs float64, k core.Kind) RatePoint {
		for _, p := range pts {
			if p.SilentFactor == fs && p.Kind == k {
				return p
			}
		}
		t.Fatalf("missing %v/%v", fs, k)
		return RatePoint{}
	}
	dPD := find(2, core.PD).Simulated - find(0.5, core.PD).Simulated
	dPDMV := find(2, core.PDMV).Simulated - find(0.5, core.PDMV).Simulated
	if !(dPD > dPDMV) {
		t.Errorf("silent-rate sensitivity: PD +%v should exceed PDMV +%v", dPD, dPDMV)
	}
	// The PD period shrinks as silent errors intensify (Fig 9h).
	if !(find(2, core.PD).PeriodMinutes < find(0.5, core.PD).PeriodMinutes) {
		t.Error("PD period should shrink with the silent rate")
	}
	out := RenderRateSweep("Figure 9", pts).String()
	if !strings.Contains(out, "PDMV") {
		t.Error("rendered table incomplete")
	}
}

func TestGridAndAxes(t *testing.T) {
	g := Grid([]float64{1, 2})
	if len(g) != 4 || g[1] != [2]float64{1, 2} || g[2] != [2]float64{2, 1} {
		t.Errorf("Grid = %v", g)
	}
	af := AxisFail([]float64{0.5, 1.5})
	if len(af) != 2 || af[0] != [2]float64{0.5, 1} || af[1] != [2]float64{1.5, 1} {
		t.Errorf("AxisFail = %v", af)
	}
	as := AxisSilent([]float64{3})
	if len(as) != 1 || as[0] != [2]float64{1, 3} {
		t.Errorf("AxisSilent = %v", as)
	}
}

func TestAblationSmall(t *testing.T) {
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Ablation([]platform.Platform{hera}, []core.Kind{core.PD, core.PDM}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Cmp.Regret < -1e-9 || r.Cmp.Regret > 0.01 {
			t.Errorf("%v regret = %v", r.Cmp.Kind, r.Cmp.Regret)
		}
	}
	out := RenderAblation(rows).String()
	if !strings.Contains(out, "regret") {
		t.Error("rendered table incomplete")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Patterns <= 0 || o.Runs <= 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
	if f := Fast(); f.Patterns <= 0 || f.Runs <= 0 {
		t.Error("Fast misconfigured")
	}
	if f := Full(); f.Patterns != 1000 || f.Runs != 1000 {
		t.Error("Full should be the paper scale")
	}
}
