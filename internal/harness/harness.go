// Package harness drives the paper's experiments end to end: it plans
// optimal patterns (Table 1), simulates them (Figures 6-9) and renders
// the results. Every table and figure of the evaluation section has a
// driver here and a bench in the repository root; cmd/experiments
// composes them into the results/ directory.
package harness

import (
	"fmt"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/faults"
	"respat/internal/optimize"
	"respat/internal/platform"
	"respat/internal/report"
	"respat/internal/sched"
	"respat/internal/sim"
)

// Options sizes a simulation campaign.
type Options struct {
	// Patterns is the number of pattern instances per run (the paper
	// uses 1000).
	Patterns int
	// Runs is the number of Monte-Carlo repetitions (the paper uses
	// 1000).
	Runs int
	// Seed drives all randomness deterministically.
	Seed uint64
	// Workers bounds per-cell simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// CampaignWorkers bounds how many campaign cells — one (platform,
	// family, sweep-point) plan-and-simulate unit of Fig6, WeakScaling,
	// RateSweep or Ablation — are in flight concurrently. 0 and 1 run
	// cells sequentially. Results are bit-identical for any value:
	// each cell derives its seed from (Seed, cell index) alone and
	// writes only its own output row. When cells are fanned out, keep
	// Workers small (e.g. 1) to avoid goroutine oversubscription.
	CampaignWorkers int
}

// cellSeed derives the deterministic simulation seed of campaign cell
// i, decorrelating the error streams of distinct cells.
func (o Options) cellSeed(i int) uint64 {
	s, _ := faults.SplitSeed(o.Seed, uint64(i))
	return s
}

// runCells evaluates the n campaign cells on the shared bounded pool
// of internal/sched: cells are claimed in index order, each writes only
// its own output slot, and errors are reported as a sequential driver
// would report them.
func runCells(n, workers int, cell func(i int) error) error {
	return sched.RunCells(n, workers, cell)
}

// mapCells runs cell over every element of cells on a runCells pool and
// collects the results in cell order.
func mapCells[C, R any](cells []C, workers int, cell func(i int, c C) (R, error)) ([]R, error) {
	return sched.Map(cells, workers, cell)
}

// Fast returns options sized for tests and benches: large enough for
// stable shapes, small enough for seconds-scale wall time.
func Fast() Options { return Options{Patterns: 60, Runs: 24, Seed: 1} }

// Medium returns a campaign sized for minutes-scale regeneration with
// tight confidence intervals.
func Medium() Options { return Options{Patterns: 300, Runs: 150, Seed: 1} }

// Full returns the paper-scale campaign: 1000 patterns × 1000 runs.
func Full() Options { return Options{Patterns: 1000, Runs: 1000, Seed: 1} }

func (o Options) withDefaults() Options {
	if o.Patterns <= 0 {
		o.Patterns = 60
	}
	if o.Runs <= 0 {
		o.Runs = 24
	}
	return o
}

// simulate plans nothing: it runs the given pattern on the given
// parameters with the reference-simulator semantics (fail-stop errors
// everywhere, silent errors in computation), under the given cell seed.
func simulate(pat core.Pattern, c core.Costs, r core.Rates, o Options, seed uint64) (sim.Result, error) {
	return sim.Run(sim.Config{
		Pattern:     pat,
		Costs:       c,
		Rates:       r,
		Patterns:    o.Patterns,
		Runs:        o.Runs,
		Seed:        seed,
		ErrorsInOps: true,
		Workers:     o.Workers,
	})
}

// Table1Row is one (platform, family) instantiation of Table 1.
type Table1Row struct {
	Platform string
	Plan     analytic.Plan
	// ContinuousOverhead is the closed-form H* of Table 1 before
	// integer rounding.
	ContinuousOverhead float64
}

// Table1 instantiates the Table 1 formulas on each platform.
func Table1(platforms []platform.Platform) ([]Table1Row, error) {
	var rows []Table1Row
	for _, p := range platforms {
		for _, k := range core.Kinds() {
			plan, err := analytic.Optimal(k, p.Costs, p.Rates)
			if err != nil {
				return nil, fmt.Errorf("harness: %s/%v: %w", p.Name, k, err)
			}
			rows = append(rows, Table1Row{
				Platform:           p.Name,
				Plan:               plan,
				ContinuousOverhead: analytic.TableOverhead(k, p.Costs, p.Rates),
			})
		}
	}
	return rows, nil
}

// RenderTable1 renders Table 1 rows.
func RenderTable1(rows []Table1Row) *report.Table {
	t := report.New("Table 1: optimal patterns (integer-rounded first-order solution)",
		"platform", "pattern", "W* (s)", "W* (h)", "n*", "m*", "H* (pred)", "H* (closed form)")
	for _, r := range rows {
		t.AddRow(r.Platform, r.Plan.Kind.String(),
			report.Fixed(r.Plan.W, 1), report.Fixed(r.Plan.W/3600, 2),
			report.I(r.Plan.N), report.I(r.Plan.M),
			report.Pct(r.Plan.Overhead, 2), report.Pct(r.ContinuousOverhead, 2))
	}
	return t
}

// Table2Row reports the embedded platform parameters and the derived
// MTBF figures quoted in Section 6.
type Table2Row struct {
	Platform        platform.Platform
	FailMTBFDays    float64
	SilentMTBFDays  float64
	NodeFailYears   float64
	NodeSilentYears float64
}

// Table2 derives the Section 6 platform figures.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, p := range platform.Table2() {
		fs, s := p.PerNodeMTBFYears()
		rows = append(rows, Table2Row{
			Platform:        p,
			FailMTBFDays:    p.FailStopMTBFDays(),
			SilentMTBFDays:  p.SilentMTBFDays(),
			NodeFailYears:   fs,
			NodeSilentYears: s,
		})
	}
	return rows
}

// RenderTable2 renders the platform table.
func RenderTable2(rows []Table2Row) *report.Table {
	t := report.New("Table 2: platforms (with derived MTBFs)",
		"platform", "nodes", "lambda_f (/s)", "lambda_s (/s)", "CD (s)", "CM (s)",
		"MTBF_f (days)", "MTBF_s (days)", "node MTBF_f (y)", "node MTBF_s (y)")
	for _, r := range rows {
		p := r.Platform
		t.AddRow(p.Name, report.I(p.Nodes),
			report.F(p.Rates.FailStop, 3), report.F(p.Rates.Silent, 3),
			report.Fixed(p.Costs.DiskCkpt, 0), report.Fixed(p.Costs.MemCkpt, 1),
			report.Fixed(r.FailMTBFDays, 1), report.Fixed(r.SilentMTBFDays, 1),
			report.Fixed(r.NodeFailYears, 2), report.Fixed(r.NodeSilentYears, 2))
	}
	return t
}

// Fig6Row is one bar group of Figure 6: one pattern family on one
// platform, with the five metrics of sub-figures (a)-(e).
type Fig6Row struct {
	Platform  string
	Kind      core.Kind
	Plan      analytic.Plan
	Predicted float64 // H* from Table 1 (Fig 6a blue)
	Simulated float64 // Monte-Carlo overhead (Fig 6a yellow)
	SimCI95   float64
	// Fig 6b: pattern period in hours.
	PeriodHours float64
	// Fig 6c/6d: operations per simulated hour.
	DiskCkptsPerHour float64
	MemCkptsPerHour  float64
	VerifsPerHour    float64
	// Fig 6e: recoveries per simulated day.
	DiskRecsPerDay float64
	MemRecsPerDay  float64
}

// Fig6 runs the Section 6.2 experiment: the six optimal patterns on
// each platform. Cells are fanned over o.CampaignWorkers.
func Fig6(platforms []platform.Platform, o Options) ([]Fig6Row, error) {
	o = o.withDefaults()
	type cellSpec struct {
		p platform.Platform
		k core.Kind
	}
	var cells []cellSpec
	for _, p := range platforms {
		for _, k := range core.Kinds() {
			cells = append(cells, cellSpec{p: p, k: k})
		}
	}
	return mapCells(cells, o.CampaignWorkers, func(i int, cs cellSpec) (Fig6Row, error) {
		p, k := cs.p, cs.k
		plan, err := analytic.Optimal(k, p.Costs, p.Rates)
		if err != nil {
			return Fig6Row{}, fmt.Errorf("harness: %s/%v: %w", p.Name, k, err)
		}
		res, err := simulate(plan.Pattern, p.Costs, p.Rates, o, o.cellSeed(i))
		if err != nil {
			return Fig6Row{}, fmt.Errorf("harness: %s/%v: %w", p.Name, k, err)
		}
		return Fig6Row{
			Platform:         p.Name,
			Kind:             k,
			Plan:             plan,
			Predicted:        plan.Overhead,
			Simulated:        res.Overhead.Mean(),
			SimCI95:          res.Overhead.CI95(),
			PeriodHours:      plan.W / 3600,
			DiskCkptsPerHour: res.PerHour(res.Total.DiskCkpts),
			MemCkptsPerHour:  res.PerHour(res.Total.MemCkpts),
			VerifsPerHour:    res.PerHour(res.Total.Verifs()),
			DiskRecsPerDay:   res.PerDay(res.Total.DiskRecs),
			MemRecsPerDay:    res.PerDay(res.Total.MemRecs),
		}, nil
	})
}

// RenderFig6 renders the Figure 6 metrics.
func RenderFig6(rows []Fig6Row) *report.Table {
	t := report.New("Figure 6: patterns on real platforms (a: overheads, b: periods, c/d: ckpt+verif rates, e: recovery rates)",
		"platform", "pattern", "H* pred", "H* sim", "±95%", "period (h)",
		"disk ckpt/h", "mem ckpt/h", "verifs/h", "disk rec/day", "mem rec/day")
	for _, r := range rows {
		t.AddRow(r.Platform, r.Kind.String(),
			report.Pct(r.Predicted, 2), report.Pct(r.Simulated, 2), report.Pct(r.SimCI95, 2),
			report.Fixed(r.PeriodHours, 2),
			report.Fixed(r.DiskCkptsPerHour, 3), report.Fixed(r.MemCkptsPerHour, 3),
			report.Fixed(r.VerifsPerHour, 2),
			report.Fixed(r.DiskRecsPerDay, 3), report.Fixed(r.MemRecsPerDay, 3))
	}
	return t
}

// WeakRow is one point of the Figures 7/8 weak-scaling study.
type WeakRow struct {
	Nodes     int
	Kind      core.Kind
	Plan      analytic.Plan
	Predicted float64
	Simulated float64
	SimCI95   float64
	// Fig 7b: period in hours.
	PeriodHours float64
	// Fig 7c: recoveries per pattern.
	DiskRecsPerPattern float64
	MemRecsPerPattern  float64
	// Fig 7d/7e: operations per hour.
	DiskCkptsPerHour float64
	MemCkptsPerHour  float64
	VerifsPerHour    float64
	// Fig 7f: recoveries per day.
	DiskRecsPerDay float64
	MemRecsPerDay  float64
}

// WeakScaling runs the Section 6.3 experiment: Hera's per-node MTBFs
// extrapolated to each node count, with CD and CM overridden (the
// paper uses CD=300/CM=15 for Figure 7 and CD=90/CM=15 for Figure 8),
// for the given pattern families (the paper compares PD and PDMV).
func WeakScaling(nodeCounts []int, cd, cm float64, kinds []core.Kind, o Options) ([]WeakRow, error) {
	o = o.withDefaults()
	hera, err := platform.ByName("Hera")
	if err != nil {
		return nil, err
	}
	base := hera.WithDiskCost(cd).WithMemCost(cm)
	type cellSpec struct {
		p platform.Platform
		k core.Kind
	}
	var cells []cellSpec
	for _, nodes := range nodeCounts {
		p, err := base.WeakScale(nodes)
		if err != nil {
			return nil, err
		}
		for _, k := range kinds {
			cells = append(cells, cellSpec{p: p, k: k})
		}
	}
	return mapCells(cells, o.CampaignWorkers, func(i int, cs cellSpec) (WeakRow, error) {
		p, k := cs.p, cs.k
		plan, err := analytic.Optimal(k, p.Costs, p.Rates)
		if err != nil {
			return WeakRow{}, fmt.Errorf("harness: %d nodes/%v: %w", p.Nodes, k, err)
		}
		res, err := simulate(plan.Pattern, p.Costs, p.Rates, o, o.cellSeed(i))
		if err != nil {
			return WeakRow{}, fmt.Errorf("harness: %d nodes/%v: %w", p.Nodes, k, err)
		}
		return WeakRow{
			Nodes:              p.Nodes,
			Kind:               k,
			Plan:               plan,
			Predicted:          plan.Overhead,
			Simulated:          res.Overhead.Mean(),
			SimCI95:            res.Overhead.CI95(),
			PeriodHours:        plan.W / 3600,
			DiskRecsPerPattern: res.PerPattern(res.Total.DiskRecs),
			MemRecsPerPattern:  res.PerPattern(res.Total.MemRecs),
			DiskCkptsPerHour:   res.PerHour(res.Total.DiskCkpts),
			MemCkptsPerHour:    res.PerHour(res.Total.MemCkpts),
			VerifsPerHour:      res.PerHour(res.Total.Verifs()),
			DiskRecsPerDay:     res.PerDay(res.Total.DiskRecs),
			MemRecsPerDay:      res.PerDay(res.Total.MemRecs),
		}, nil
	})
}

// RenderWeakScaling renders Figures 7/8 rows.
func RenderWeakScaling(title string, rows []WeakRow) *report.Table {
	t := report.New(title,
		"nodes", "pattern", "H* pred", "H* sim", "±95%", "period (h)",
		"disk rec/pattern", "mem rec/pattern", "disk ckpt/h", "mem ckpt/h",
		"verifs/h", "disk rec/day", "mem rec/day")
	for _, r := range rows {
		t.AddRow(report.I(r.Nodes), r.Kind.String(),
			report.Pct(r.Predicted, 1), report.Pct(r.Simulated, 1), report.Pct(r.SimCI95, 1),
			report.Fixed(r.PeriodHours, 3),
			report.Fixed(r.DiskRecsPerPattern, 3), report.Fixed(r.MemRecsPerPattern, 3),
			report.Fixed(r.DiskCkptsPerHour, 2), report.Fixed(r.MemCkptsPerHour, 2),
			report.Fixed(r.VerifsPerHour, 1),
			report.Fixed(r.DiskRecsPerDay, 2), report.Fixed(r.MemRecsPerDay, 2))
	}
	return t
}

// RatePoint is one cell of the Figure 9 error-rate study: the Hera
// platform scaled to a node count, with both rates multiplied by the
// given factors.
type RatePoint struct {
	FailFactor   float64
	SilentFactor float64
	Kind         core.Kind
	Plan         analytic.Plan
	Simulated    float64
	SimCI95      float64
	// Period in minutes (Fig 9d/9h).
	PeriodMinutes float64
	// Operations per hour (Fig 9e/9f/9i/9j).
	DiskCkptsPerHour float64
	MemCkptsPerHour  float64
	VerifsPerHour    float64
	// Recoveries per day (Fig 9g/9k).
	DiskRecsPerDay float64
	MemRecsPerDay  float64
}

// RateSweep runs the Section 6.4 experiment at the given node count
// (the paper uses 10^5 Hera nodes): for each (failFactor, silentFactor)
// pair and each family, the optimal pattern is re-planned and
// simulated. Pass a full grid for Figures 9a-9c or a single-axis sweep
// (the other factor pinned to 1) for Figures 9d-9k.
func RateSweep(nodes int, pairs [][2]float64, kinds []core.Kind, o Options) ([]RatePoint, error) {
	o = o.withDefaults()
	hera, err := platform.ByName("Hera")
	if err != nil {
		return nil, err
	}
	base, err := hera.WeakScale(nodes)
	if err != nil {
		return nil, err
	}
	type cellSpec struct {
		pair [2]float64
		k    core.Kind
	}
	var cells []cellSpec
	for _, pair := range pairs {
		for _, k := range kinds {
			cells = append(cells, cellSpec{pair: pair, k: k})
		}
	}
	return mapCells(cells, o.CampaignWorkers, func(i int, cs cellSpec) (RatePoint, error) {
		pair, k := cs.pair, cs.k
		p := base.ScaleRates(pair[0], pair[1])
		plan, err := analytic.Optimal(k, p.Costs, p.Rates)
		if err != nil {
			return RatePoint{}, fmt.Errorf("harness: rates %vx/%vx %v: %w", pair[0], pair[1], k, err)
		}
		res, err := simulate(plan.Pattern, p.Costs, p.Rates, o, o.cellSeed(i))
		if err != nil {
			return RatePoint{}, fmt.Errorf("harness: rates %vx/%vx %v: %w", pair[0], pair[1], k, err)
		}
		return RatePoint{
			FailFactor:       pair[0],
			SilentFactor:     pair[1],
			Kind:             k,
			Plan:             plan,
			Simulated:        res.Overhead.Mean(),
			SimCI95:          res.Overhead.CI95(),
			PeriodMinutes:    plan.W / 60,
			DiskCkptsPerHour: res.PerHour(res.Total.DiskCkpts),
			MemCkptsPerHour:  res.PerHour(res.Total.MemCkpts),
			VerifsPerHour:    res.PerHour(res.Total.Verifs()),
			DiskRecsPerDay:   res.PerDay(res.Total.DiskRecs),
			MemRecsPerDay:    res.PerDay(res.Total.MemRecs),
		}, nil
	})
}

// Grid builds the full factor grid factors×factors for Figures 9a-9c.
func Grid(factors []float64) [][2]float64 {
	var out [][2]float64
	for _, ff := range factors {
		for _, fs := range factors {
			out = append(out, [2]float64{ff, fs})
		}
	}
	return out
}

// AxisFail pins the silent factor to 1 and sweeps the fail-stop factor
// (Figures 9d-9g).
func AxisFail(factors []float64) [][2]float64 {
	out := make([][2]float64, len(factors))
	for i, f := range factors {
		out[i] = [2]float64{f, 1}
	}
	return out
}

// AxisSilent pins the fail-stop factor to 1 and sweeps the silent
// factor (Figures 9h-9k).
func AxisSilent(factors []float64) [][2]float64 {
	out := make([][2]float64, len(factors))
	for i, f := range factors {
		out[i] = [2]float64{1, f}
	}
	return out
}

// RenderRateSweep renders Figure 9 points.
func RenderRateSweep(title string, pts []RatePoint) *report.Table {
	t := report.New(title,
		"lambda_f x", "lambda_s x", "pattern", "H* sim", "±95%", "period (min)",
		"disk ckpt/h", "mem ckpt/h", "verifs/h", "disk rec/day", "mem rec/day")
	for _, p := range pts {
		t.AddRow(report.Fixed(p.FailFactor, 1), report.Fixed(p.SilentFactor, 1), p.Kind.String(),
			report.Pct(p.Simulated, 1), report.Pct(p.SimCI95, 1),
			report.Fixed(p.PeriodMinutes, 1),
			report.Fixed(p.DiskCkptsPerHour, 2), report.Fixed(p.MemCkptsPerHour, 2),
			report.Fixed(p.VerifsPerHour, 1),
			report.Fixed(p.DiskRecsPerDay, 2), report.Fixed(p.MemRecsPerDay, 2))
	}
	return t
}

// AblationRow compares the first-order plan with the exact-model plan
// (not in the paper; quantifies the quality of its approximation).
type AblationRow struct {
	Platform string
	Cmp      optimize.Comparison
}

// Ablation runs optimize.Compare on each (platform, family), fanning
// the comparisons over workers (0 or 1 = sequential).
func Ablation(platforms []platform.Platform, kinds []core.Kind, workers int) ([]AblationRow, error) {
	type cellSpec struct {
		p platform.Platform
		k core.Kind
	}
	var cells []cellSpec
	for _, p := range platforms {
		for _, k := range kinds {
			cells = append(cells, cellSpec{p: p, k: k})
		}
	}
	return mapCells(cells, workers, func(_ int, cs cellSpec) (AblationRow, error) {
		p, k := cs.p, cs.k
		cmp, err := optimize.Compare(k, p.Costs, p.Rates)
		if err != nil {
			return AblationRow{}, fmt.Errorf("harness: ablation %s/%v: %w", p.Name, k, err)
		}
		return AblationRow{Platform: p.Name, Cmp: cmp}, nil
	})
}

// RenderAblation renders the planner comparison.
func RenderAblation(rows []AblationRow) *report.Table {
	t := report.New("Ablation: first-order plan vs exact-model plan",
		"platform", "pattern", "W* first", "W* exact", "n/m first", "n/m exact",
		"H exact-of-first", "H exact-optimal", "regret")
	for _, r := range rows {
		c := r.Cmp
		t.AddRow(r.Platform, c.Kind.String(),
			report.Fixed(c.FirstOrder.W, 0), report.Fixed(c.Exact.W, 0),
			fmt.Sprintf("%d/%d", c.FirstOrder.N, c.FirstOrder.M),
			fmt.Sprintf("%d/%d", c.Exact.N, c.Exact.M),
			report.Pct(c.FirstOrderExactOverhead, 3), report.Pct(c.Exact.Overhead, 3),
			report.Pct(c.Regret, 4))
	}
	return t
}
