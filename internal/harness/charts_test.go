package harness

import (
	"strings"
	"testing"

	"respat/internal/core"
)

func TestWeakScalingChart(t *testing.T) {
	rows := []WeakRow{
		{Nodes: 256, Kind: core.PD, Predicted: 0.05, Simulated: 0.06},
		{Nodes: 4096, Kind: core.PD, Predicted: 0.2, Simulated: 0.25},
		{Nodes: 256, Kind: core.PDMV, Predicted: 0.04, Simulated: 0.045},
		{Nodes: 4096, Kind: core.PDMV, Predicted: 0.15, Simulated: 0.17},
	}
	out := WeakScalingChart("Figure 7a", rows).String()
	if strings.Contains(out, "viz:") {
		t.Fatalf("chart failed: %s", out)
	}
	for _, want := range []string{"PD pred", "PD sim", "PDMV pred", "PDMV sim", "256"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestRateSweepCharts(t *testing.T) {
	pts := []RatePoint{
		{FailFactor: 0.2, SilentFactor: 1, Kind: core.PD, PeriodMinutes: 14, Simulated: 1.2},
		{FailFactor: 2, SilentFactor: 1, Kind: core.PD, PeriodMinutes: 14, Simulated: 1.5},
		{FailFactor: 0.2, SilentFactor: 1, Kind: core.PDMV, PeriodMinutes: 47, Simulated: 0.8},
		{FailFactor: 2, SilentFactor: 1, Kind: core.PDMV, PeriodMinutes: 15, Simulated: 1.1},
	}
	out := RateSweepPeriodChart("Figure 9d", pts, false).String()
	if strings.Contains(out, "viz:") || !strings.Contains(out, "period min") {
		t.Fatalf("period chart: %s", out)
	}
	out = RateSweepOverheadChart("Figure 9", pts, false).String()
	if strings.Contains(out, "viz:") || !strings.Contains(out, "overhead %") {
		t.Fatalf("overhead chart: %s", out)
	}
	// Silent-axis variant uses SilentFactor as x.
	out = RateSweepPeriodChart("Figure 9h", pts, true).String()
	if strings.Contains(out, "viz:") {
		t.Fatalf("silent-axis chart: %s", out)
	}
}

func TestFig6Chart(t *testing.T) {
	rows := []Fig6Row{
		{Platform: "Hera", Kind: core.PD, Predicted: 0.071, Simulated: 0.072},
		{Platform: "Hera", Kind: core.PDMV, Predicted: 0.039, Simulated: 0.041},
		{Platform: "Atlas", Kind: core.PD, Predicted: 0.09, Simulated: 0.091},
	}
	out := Fig6Chart("Hera", rows).String()
	if strings.Contains(out, "viz:") {
		t.Fatalf("chart failed: %s", out)
	}
	if !strings.Contains(out, "predicted") || !strings.Contains(out, "simulated") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "Hera") {
		t.Error("title missing platform")
	}
}
