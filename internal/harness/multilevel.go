package harness

import (
	"fmt"
	"time"

	"respat/internal/multilevel"
	"respat/internal/platform"
	"respat/internal/report"
	"respat/internal/sim"
)

// MultilevelRow is one cell of the multilevel study: the optimal
// L-level pattern for one platform, with its Monte-Carlo validation.
type MultilevelRow struct {
	Platform string
	Levels   int
	Plan     multilevel.Plan
	// Predicted is the exact-model overhead of the plan; Simulated the
	// Monte-Carlo estimate with its 95% half-width.
	Predicted float64
	Simulated float64
	SimCI95   float64
	// LocalRecsPerDay and TopRecsPerDay split the recovery traffic:
	// rollbacks served below the top level (the hierarchy's win) vs
	// full top-level recoveries.
	LocalRecsPerDay float64
	TopRecsPerDay   float64
	// PlanTime and PlanStats record how the planner earned the row —
	// wall time and candidate/pruned/evaluated counts — so perf claims
	// about the cold path are observable without a profiler.
	PlanTime  time.Duration
	PlanStats multilevel.SearchStats
}

// MultilevelStudy runs the hierarchy-depth figure: for each platform
// and each depth, derive the multilevel configuration
// (multilevel.FromPlatform), plan it, and validate the plan by
// simulation. Cells fan over o.CampaignWorkers with the usual
// determinism contract (per-cell seeds, rows written by index).
func MultilevelStudy(platforms []platform.Platform, depths []int, o Options) ([]MultilevelRow, error) {
	o = o.withDefaults()
	type cellSpec struct {
		p platform.Platform
		l int
	}
	var cells []cellSpec
	for _, p := range platforms {
		for _, l := range depths {
			cells = append(cells, cellSpec{p: p, l: l})
		}
	}
	return mapCells(cells, o.CampaignWorkers, func(i int, cs cellSpec) (MultilevelRow, error) {
		params, err := multilevel.FromPlatform(cs.p, cs.l)
		if err != nil {
			return MultilevelRow{}, fmt.Errorf("harness: %s/L=%d: %w", cs.p.Name, cs.l, err)
		}
		planner, err := multilevel.NewPlanner(params)
		if err != nil {
			return MultilevelRow{}, fmt.Errorf("harness: %s/L=%d: %w", cs.p.Name, cs.l, err)
		}
		start := time.Now()
		plan, err := planner.Plan()
		planTime := time.Since(start)
		if err != nil {
			return MultilevelRow{}, fmt.Errorf("harness: %s/L=%d: %w", cs.p.Name, cs.l, err)
		}
		res, err := sim.RunMultilevel(sim.MultilevelConfig{
			Params:   params,
			Spec:     plan.Spec,
			Patterns: o.Patterns,
			Runs:     o.Runs,
			Seed:     o.cellSeed(i),
			Workers:  o.Workers,
		})
		if err != nil {
			return MultilevelRow{}, fmt.Errorf("harness: %s/L=%d: %w", cs.p.Name, cs.l, err)
		}
		row := MultilevelRow{
			Platform:  cs.p.Name,
			Levels:    cs.l,
			Plan:      plan,
			Predicted: plan.Overhead,
			Simulated: res.Overhead.Mean(),
			SimCI95:   res.Overhead.CI95(),
			PlanTime:  planTime,
			PlanStats: planner.Stats(),
		}
		var local, top int64
		for l := 0; l < cs.l; l++ {
			if l == cs.l-1 {
				top += res.Total.Recs[l]
			} else {
				local += res.Total.Recs[l]
			}
		}
		local += res.Total.SilentRecs
		days := res.WallTime.Mean() * float64(res.WallTime.N()) / platform.SecondsPerDay
		if days > 0 {
			row.LocalRecsPerDay = float64(local) / days
			row.TopRecsPerDay = float64(top) / days
		}
		return row, nil
	})
}

// RenderMultilevelStudy renders the hierarchy-depth figure.
func RenderMultilevelStudy(rows []MultilevelRow) *report.Table {
	t := report.New("Multilevel study: optimal L-level patterns (hierarchy + verified silent-error detection)",
		"platform", "L", "W* (h)", "n_1..n_L", "m*", "H* exact", "H* sim", "±95%",
		"local rec/day", "top rec/day")
	for _, r := range rows {
		t.AddRow(r.Platform, report.I(r.Levels),
			report.Fixed(r.Plan.Spec.W/3600, 2),
			fmt.Sprintf("%v", r.Plan.Spec.Counts), report.I(r.Plan.Spec.M),
			report.Pct(r.Predicted, 2), report.Pct(r.Simulated, 2), report.Pct(r.SimCI95, 2),
			report.Fixed(r.LocalRecsPerDay, 3), report.Fixed(r.TopRecsPerDay, 3))
	}
	return t
}
