// Package docscheck validates the repository's markdown documentation:
// it walks every *.md file and verifies that relative links resolve to
// files that actually exist. External (http, https, mailto) links are
// not fetched — the check must stay deterministic and offline — and
// pure in-page anchors are skipped. The repo-wide test in this package
// is what the CI docs job runs, so a doc that links to a moved or
// deleted file fails the build instead of rotting silently.
package docscheck

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// Problem is one broken link.
type Problem struct {
	// File is the markdown file containing the link, relative to the
	// checked root.
	File string
	// Link is the link target as written.
	Link string
	// Target is the resolved filesystem path that does not exist.
	Target string
}

// String renders the problem as file: link -> target.
func (p Problem) String() string {
	return fmt.Sprintf("%s: link %q -> missing %s", p.File, p.Link, p.Target)
}

// inlineLink matches markdown inline links and images,
// [text](target) / ![alt](target), capturing the target. Nested
// brackets in the text are not supported; the repo's docs do not use
// them.
var inlineLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// skipDirs are never descended into.
var skipDirs = map[string]bool{".git": true, "node_modules": true, "vendor": true}

// skipFiles are machine-generated retrieval artifacts whose asset
// links (e.g. figures extracted from PDFs) are intentionally not
// vendored into the repo. Hand-written docs are never listed here.
var skipFiles = map[string]bool{"PAPERS.md": true}

// CheckLinks walks root for markdown files and returns every relative
// link whose target does not exist. A nil slice means the docs are
// clean.
func CheckLinks(root string) ([]Problem, error) {
	var problems []Problem
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") || skipFiles[d.Name()] {
			return nil
		}
		ps, err := checkFile(root, path)
		if err != nil {
			return err
		}
		problems = append(problems, ps...)
		return nil
	})
	return problems, err
}

// checkFile extracts and verifies the relative links of one file.
func checkFile(root, path string) ([]Problem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, path)
	if err != nil {
		rel = path
	}
	var problems []Problem
	for _, m := range inlineLink.FindAllStringSubmatch(stripCodeBlocks(string(data)), -1) {
		link := m[1]
		if isExternal(link) {
			continue
		}
		target := link
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue // pure in-page anchor
		}
		resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
		if _, err := os.Stat(resolved); err != nil {
			problems = append(problems, Problem{File: rel, Link: link, Target: resolved})
		}
	}
	return problems, nil
}

// isExternal reports whether the link leaves the repository.
func isExternal(link string) bool {
	for _, prefix := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(link, prefix) {
			return true
		}
	}
	return false
}

// stripCodeBlocks blanks out fenced code blocks, indented (CommonMark
// four-space) code blocks and inline code spans, whose bracket-paren
// sequences (Go slices, shell snippets, markdown examples) are not
// links.
func stripCodeBlocks(s string) string {
	var out strings.Builder
	out.Grow(len(s))
	inFence := false
	prevBlank := true // file start opens an indented block like a blank line
	inIndented := false
	for _, line := range strings.SplitAfter(s, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			out.WriteString("\n")
			continue
		}
		if inFence {
			out.WriteString("\n")
			continue
		}
		// An indented code block starts after a blank line (it cannot
		// interrupt a paragraph or a list item's continuation) and runs
		// while lines stay indented.
		indented := strings.HasPrefix(line, "    ") || strings.HasPrefix(line, "\t")
		if indented && trimmed != "" && (prevBlank || inIndented) {
			inIndented = true
			prevBlank = false
			out.WriteString("\n")
			continue
		}
		inIndented = false
		prevBlank = trimmed == ""
		out.WriteString(stripInlineCode(line))
	}
	return out.String()
}

// stripInlineCode blanks `code spans` within one line.
func stripInlineCode(line string) string {
	var out strings.Builder
	out.Grow(len(line))
	inCode := false
	for _, r := range line {
		switch {
		case r == '`':
			inCode = !inCode
			out.WriteRune(' ')
		case inCode:
			out.WriteRune(' ')
		default:
			out.WriteRune(r)
		}
	}
	return out.String()
}
