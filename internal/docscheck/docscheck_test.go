package docscheck

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLinksFindsBrokenAndAcceptsValid(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.md"), `
[good](b.md) and [good anchor](b.md#section) and [page anchor](#here)
and [external](https://example.com/x.md) and [mail](mailto:x@y.z)
and [broken](missing.md) and ![broken img](img/missing.png)
and [into docs](docs/guide.md)
`)
	write(t, filepath.Join(dir, "b.md"), "# b\n")
	write(t, filepath.Join(dir, "docs", "guide.md"), "[up](../a.md)\n")

	problems, err := CheckLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want exactly the 2 broken links", problems)
	}
	for _, p := range problems {
		if p.Link != "missing.md" && p.Link != "img/missing.png" {
			t.Errorf("unexpected problem %v", p)
		}
	}
}

func TestCheckLinksIgnoresCode(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.md"), "```go\nx := a[0](nope.md)\n```\nand `[inline](nope2.md)` code\n")
	problems, err := CheckLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("code spans reported as links: %v", problems)
	}
}

func TestCheckLinksIgnoresIndentedCodeBlocks(t *testing.T) {
	dir := t.TempDir()
	// The indented block after a blank line is code; the indented list
	// continuation (no preceding blank line) is prose and its broken
	// link must still be reported.
	write(t, filepath.Join(dir, "a.md"), `intro

    [example](missing-in-code.md)
    more code

- item
    [broken](missing-in-list.md)
`)
	problems, err := CheckLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || problems[0].Link != "missing-in-list.md" {
		t.Fatalf("problems = %v, want exactly the list-continuation link", problems)
	}
}

func TestCheckLinksSkipsGeneratedArtifacts(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "PAPERS.md"), "![](extracted_figure.jpeg)\n")
	problems, err := CheckLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("generated artifact checked: %v", problems)
	}
}

func TestCheckLinksSkipsGitDir(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, ".git", "x.md"), "[broken](gone.md)\n")
	problems, err := CheckLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf(".git contents checked: %v", problems)
	}
}

// TestRepoMarkdownLinks is the repo-wide gate the CI docs job runs:
// every relative link in every tracked markdown file must resolve.
func TestRepoMarkdownLinks(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	problems, err := CheckLinks(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("%s", p)
	}
}
