package sparse

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"respat/internal/xmath"
)

func TestNewCSRBasics(t *testing.T) {
	m, err := NewCSR(2, 3, []Coord{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {0, 0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3 (duplicates summed)", m.NNZ())
	}
	if m.At(0, 0) != 5 {
		t.Errorf("At(0,0) = %v, want 5 (1+4)", m.At(0, 0))
	}
	if m.At(0, 1) != 0 || m.At(1, 1) != 3 {
		t.Error("At misreads")
	}
}

func TestNewCSRValidation(t *testing.T) {
	if _, err := NewCSR(0, 1, nil); err == nil {
		t.Error("zero rows should fail")
	}
	if _, err := NewCSR(2, 2, []Coord{{2, 0, 1}}); err == nil {
		t.Error("out-of-range row should fail")
	}
	if _, err := NewCSR(2, 2, []Coord{{0, -1, 1}}); err == nil {
		t.Error("negative col should fail")
	}
}

func TestMulVec(t *testing.T) {
	m, err := NewCSR(2, 2, []Coord{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestColumnChecksumInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.IntN(20), 1+rng.IntN(20)
		var entries []Coord
		for k := 0; k < rng.IntN(60); k++ {
			entries = append(entries, Coord{rng.IntN(rows), rng.IntN(cols), rng.NormFloat64()})
		}
		m, err := NewCSR(rows, cols, entries)
		if err != nil {
			t.Fatal(err)
		}
		cs := m.ColumnChecksums()
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y, err := m.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		var ySum, cx float64
		for _, v := range y {
			ySum += v
		}
		for j := range x {
			cx += cs[j] * x[j]
		}
		if !xmath.Close(ySum, cx, 1e-9) {
			t.Fatalf("checksum invariant broken: %v vs %v", ySum, cx)
		}
	}
}

func TestCheckedMulVecDetectsCorruption(t *testing.T) {
	m, err := Poisson1D(50)
	if err != nil {
		t.Fatal(err)
	}
	cs := m.ColumnChecksums()
	x := make([]float64, 50)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y, ok, err := m.CheckedMulVec(x, cs, 1e-10)
	if err != nil || !ok {
		t.Fatalf("clean product flagged: ok=%v err=%v", ok, err)
	}
	// Corrupt the checksum vector to emulate a corrupted operand; the
	// invariant must break.
	csBad := append([]float64(nil), cs...)
	csBad[9] += 1.5 // x[9] = -1, so the checksum product shifts by -1.5
	_, ok, err = m.CheckedMulVec(x, csBad, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("corruption not detected")
	}
	_ = y
	if _, _, err := m.CheckedMulVec(x, cs[:3], 1e-10); err == nil {
		t.Error("short checksum vector should fail")
	}
}

func TestPoisson1DStructure(t *testing.T) {
	m, err := Poisson1D(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3*4-2 {
		t.Errorf("NNZ = %d, want 10", m.NNZ())
	}
	if m.At(0, 0) != 2 || m.At(1, 0) != -1 || m.At(0, 1) != -1 || m.At(0, 2) != 0 {
		t.Error("Poisson1D entries wrong")
	}
	if _, err := Poisson1D(0); err == nil {
		t.Error("size 0 should fail")
	}
}

func TestPoisson2DStructure(t *testing.T) {
	m, err := Poisson2D(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 9 || m.Cols != 9 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	// Centre point has 4 neighbours.
	if m.At(4, 4) != 4 || m.At(4, 1) != -1 || m.At(4, 3) != -1 || m.At(4, 5) != -1 || m.At(4, 7) != -1 {
		t.Error("centre stencil wrong")
	}
	// Corner has 2 neighbours.
	if m.At(0, 0) != 4 || m.At(0, 1) != -1 || m.At(0, 3) != -1 || m.At(0, 4) != 0 {
		t.Error("corner stencil wrong")
	}
	if _, err := Poisson2D(-1); err == nil {
		t.Error("negative size should fail")
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v", Dot(a, b))
	}
	if !xmath.Close(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Error("Norm2 wrong")
	}
	y := []float64{1, 1}
	Axpy(2, []float64{10, 20}, y)
	if y[0] != 21 || y[1] != 41 {
		t.Errorf("Axpy = %v", y)
	}
}

func TestCGSolvesPoisson1D(t *testing.T) {
	n := 64
	a, err := Poisson1D(n)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i) / 5)
	}
	b, err := a.MulVec(xTrue)
	if err != nil {
		t.Fatal(err)
	}
	x, iters, err := Solve(a, b, 1e-10, 10*n)
	if err != nil {
		t.Fatalf("after %d iters: %v", iters, err)
	}
	for i := range x {
		if !xmath.Close(x[i], xTrue[i], 1e-6) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
	// CG on an SPD n×n system converges in at most n exact-arithmetic
	// iterations; allow slack for floating point.
	if iters > 2*n {
		t.Errorf("CG took %d iterations", iters)
	}
}

func TestCGSolvesPoisson2D(t *testing.T) {
	a, err := Poisson2D(12)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x, _, err := Solve(a, b, 1e-9, 4*a.Rows)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the residual directly.
	ax, _ := a.MulVec(x)
	var res float64
	for i := range ax {
		d := b[i] - ax[i]
		res += d * d
	}
	if math.Sqrt(res) > 1e-8*Norm2(b)+1e-12 {
		t.Errorf("residual %v too large", math.Sqrt(res))
	}
}

func TestCGValidation(t *testing.T) {
	a, _ := NewCSR(2, 3, nil)
	if _, err := NewCG(a, []float64{1, 2}); err == nil {
		t.Error("non-square should fail")
	}
	sq, _ := NewCSR(2, 2, []Coord{{0, 0, 1}, {1, 1, 1}})
	if _, err := NewCG(sq, []float64{1}); err == nil {
		t.Error("rhs mismatch should fail")
	}
}

func TestCGNotConverged(t *testing.T) {
	a, err := Poisson1D(100)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 100)
	b[0] = 1
	if _, _, err := Solve(a, b, 1e-14, 2); err != ErrNotConverged {
		t.Errorf("err = %v, want ErrNotConverged", err)
	}
}

func TestRecurrenceDriftDetectsCorruption(t *testing.T) {
	a, err := Poisson1D(64)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 64)
	for i := range b {
		b[i] = 1
	}
	s, err := NewCG(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	drift, err := s.RecurrenceDrift()
	if err != nil {
		t.Fatal(err)
	}
	if drift > 1e-8 {
		t.Fatalf("clean drift %v too large", drift)
	}
	// Corrupt the iterate (a silent error in X breaks the recurrence
	// invariant between R and b - A·x).
	s.X[20] += 1.0
	drift, err = s.RecurrenceDrift()
	if err != nil {
		t.Fatal(err)
	}
	if drift < 1e-3 {
		t.Errorf("corruption drift %v too small to detect", drift)
	}
}

func TestResidualNormMatchesRecurrence(t *testing.T) {
	a, err := Poisson1D(32)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 32)
	b[3] = 2
	s, err := NewCG(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		rn, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		true_, err := s.ResidualNorm()
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.Close(rn, true_, 1e-6) {
			t.Fatalf("iter %d: recurrence %v vs true %v", i, rn, true_)
		}
	}
}

func TestCSRPropertyRandomMulMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xdead))
		n := 1 + rng.IntN(12)
		dense := make([][]float64, n)
		var entries []Coord
		for i := range dense {
			dense[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.3 {
					v := rng.NormFloat64()
					dense[i][j] = v
					entries = append(entries, Coord{i, j, v})
				}
			}
		}
		m, err := NewCSR(n, n, entries)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y, err := m.MulVec(x)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j < n; j++ {
				want += dense[i][j] * x[j]
			}
			if !xmath.Close(y[i], want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
