// Package sparse provides the sparse numerical substrate for the
// application examples: CSR matrices, matrix-vector products protected
// by ABFT column checksums (Huang & Abraham, as cited in §7.2 of the
// paper), and a conjugate-gradient solver whose residual/orthogonality
// invariants serve as application-level silent-error detectors.
package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape reports mismatched dimensions.
var ErrShape = errors.New("sparse: dimension mismatch")

// ErrNotConverged is returned by CG when the iteration budget is
// exhausted before the residual target is met.
var ErrNotConverged = errors.New("sparse: conjugate gradient did not converge")

// Coord is one coordinate-format entry used to assemble matrices.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Vals       []float64
}

// NewCSR assembles a CSR matrix from coordinate entries; duplicate
// coordinates are summed. The entry list is not modified.
func NewCSR(rows, cols int, entries []Coord) (*CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: shape %dx%d", rows, cols)
	}
	// Deduplicate via a per-row map then pack.
	perRow := make([]map[int]float64, rows)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
		if perRow[e.Row] == nil {
			perRow[e.Row] = make(map[int]float64)
		}
		perRow[e.Row][e.Col] += e.Val
	}
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] = m.RowPtr[i] + len(perRow[i])
	}
	nnz := m.RowPtr[rows]
	m.ColIdx = make([]int, 0, nnz)
	m.Vals = make([]float64, 0, nnz)
	for i := 0; i < rows; i++ {
		// Deterministic column order within the row.
		cols := make([]int, 0, len(perRow[i]))
		for c := range perRow[i] {
			cols = append(cols, c)
		}
		insertionSort(cols)
		for _, c := range cols {
			m.ColIdx = append(m.ColIdx, c)
			m.Vals = append(m.Vals, perRow[i][c])
		}
	}
	return m, nil
}

func insertionSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// At returns element (i, j) (zero if not stored).
func (m *CSR) At(i, j int) float64 {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if m.ColIdx[k] == j {
			return m.Vals[k]
		}
	}
	return 0
}

// MulVec computes y = A·x into a fresh slice.
func (m *CSR) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: %dx%d by %d", ErrShape, m.Rows, m.Cols, len(x))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
	return y, nil
}

// ColumnChecksums returns cᵀ = 1ᵀA, the ABFT column-checksum vector:
// for any x, Σᵢ (A·x)ᵢ must equal c·x. A corrupted SpMV output is
// detected by comparing the two sums.
func (m *CSR) ColumnChecksums() []float64 {
	c := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c[m.ColIdx[k]] += m.Vals[k]
		}
	}
	return c
}

// CheckedMulVec computes y = A·x and verifies it against the supplied
// column checksums within a relative tolerance; ok reports whether the
// ABFT invariant held. Passing checksums from ColumnChecksums amortises
// the O(nnz) checksum construction across products.
func (m *CSR) CheckedMulVec(x, checksums []float64, tol float64) (y []float64, ok bool, err error) {
	if len(checksums) != m.Cols {
		return nil, false, fmt.Errorf("%w: %d checksums for %d cols", ErrShape, len(checksums), m.Cols)
	}
	y, err = m.MulVec(x)
	if err != nil {
		return nil, false, err
	}
	var ySum, cx, scale float64
	for _, v := range y {
		ySum += v
		scale += math.Abs(v)
	}
	for j, v := range x {
		cx += checksums[j] * v
	}
	if scale < 1 {
		scale = 1
	}
	return y, math.Abs(ySum-cx) <= tol*scale, nil
}

// Poisson1D returns the n×n tridiagonal [-1, 2, -1] matrix, the
// standard 1-D Poisson operator (symmetric positive definite).
func Poisson1D(n int) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sparse: Poisson1D size %d", n)
	}
	entries := make([]Coord, 0, 3*n)
	for i := 0; i < n; i++ {
		entries = append(entries, Coord{i, i, 2})
		if i > 0 {
			entries = append(entries, Coord{i, i - 1, -1})
		}
		if i < n-1 {
			entries = append(entries, Coord{i, i + 1, -1})
		}
	}
	return NewCSR(n, n, entries)
}

// Poisson2D returns the 5-point Laplacian on an n×n grid (size n²),
// the workhorse SPD test matrix for iterative solvers.
func Poisson2D(n int) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sparse: Poisson2D size %d", n)
	}
	id := func(i, j int) int { return i*n + j }
	var entries []Coord
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r := id(i, j)
			entries = append(entries, Coord{r, r, 4})
			if i > 0 {
				entries = append(entries, Coord{r, id(i-1, j), -1})
			}
			if i < n-1 {
				entries = append(entries, Coord{r, id(i+1, j), -1})
			}
			if j > 0 {
				entries = append(entries, Coord{r, id(i, j-1), -1})
			}
			if j < n-1 {
				entries = append(entries, Coord{r, id(i, j+1), -1})
			}
		}
	}
	return NewCSR(n*n, n*n, entries)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// CGState carries the conjugate-gradient iteration state so callers
// (the resilience engine) can snapshot, restore and advance it
// incrementally.
type CGState struct {
	A     *CSR
	B     []float64
	X     []float64 // current iterate
	R     []float64 // residual b - A·x
	P     []float64 // search direction
	RdotR float64
	Iter  int
}

// NewCG initialises conjugate gradient for A·x = b from the zero
// vector. A must be square and symmetric positive definite for the
// method's guarantees to hold.
func NewCG(a *CSR, b []float64) (*CGState, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: CG needs square matrix", ErrShape)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("%w: rhs %d for %dx%d", ErrShape, len(b), a.Rows, a.Cols)
	}
	s := &CGState{
		A: a,
		B: append([]float64(nil), b...),
		X: make([]float64, a.Rows),
		R: append([]float64(nil), b...),
		P: append([]float64(nil), b...),
	}
	s.RdotR = Dot(s.R, s.R)
	return s, nil
}

// Step performs one CG iteration. It returns the residual norm after
// the step.
func (s *CGState) Step() (float64, error) {
	ap, err := s.A.MulVec(s.P)
	if err != nil {
		return 0, err
	}
	pap := Dot(s.P, ap)
	if pap == 0 {
		return math.Sqrt(s.RdotR), nil // stagnation; residual unchanged
	}
	alpha := s.RdotR / pap
	Axpy(alpha, s.P, s.X)
	Axpy(-alpha, ap, s.R)
	rNew := Dot(s.R, s.R)
	beta := rNew / s.RdotR
	for i := range s.P {
		s.P[i] = s.R[i] + beta*s.P[i]
	}
	s.RdotR = rNew
	s.Iter++
	return math.Sqrt(rNew), nil
}

// ResidualNorm returns |b - A·x| recomputed from scratch (not the
// recurrence residual), the guaranteed-verification quantity for CG.
func (s *CGState) ResidualNorm() (float64, error) {
	ax, err := s.A.MulVec(s.X)
	if err != nil {
		return 0, err
	}
	var acc float64
	for i := range ax {
		d := s.B[i] - ax[i]
		acc += d * d
	}
	return math.Sqrt(acc), nil
}

// RecurrenceDrift returns the gap between the recurrence residual R
// and the true residual b - A·x, normalised by |b| (the problem
// scale). Silent data corruptions break the recurrence invariant, so a
// drift above a small threshold is a cheap partial detector (Chen's
// Online-ABFT idea cited in §1). Normalising by |b| rather than by the
// current residual keeps the detector's false-positive rate near zero
// after convergence, when the residual itself is pure roundoff.
func (s *CGState) RecurrenceDrift() (float64, error) {
	ax, err := s.A.MulVec(s.X)
	if err != nil {
		return 0, err
	}
	var num, den float64
	for i := range ax {
		true_ := s.B[i] - ax[i]
		d := true_ - s.R[i]
		num += d * d
		den += s.B[i] * s.B[i]
	}
	if den == 0 {
		return math.Sqrt(num), nil
	}
	return math.Sqrt(num / den), nil
}

// Solve runs CG until the true residual drops below tol·|b| or
// maxIter iterations elapse.
func Solve(a *CSR, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	s, err := NewCG(a, b)
	if err != nil {
		return nil, 0, err
	}
	target := tol * Norm2(b)
	for it := 0; it < maxIter; it++ {
		rn, err := s.Step()
		if err != nil {
			return nil, s.Iter, err
		}
		if rn <= target {
			return s.X, s.Iter, nil
		}
	}
	return s.X, s.Iter, ErrNotConverged
}
