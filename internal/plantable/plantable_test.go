package plantable

import (
	"bytes"
	"math"
	"testing"

	"respat/internal/core"
	"respat/internal/optimize"
	"respat/internal/platform"
)

// heraSpec builds a small grid around Hera's operating point: rates
// within a factor of 1.5 each way, disk costs within a factor of 1.3.
func heraSpec(t *testing.T) BuildSpec {
	t.Helper()
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := AxisAround(hera.Rates.FailStop, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	sil, err := AxisAround(hera.Rates.Silent, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := AxisAround(hera.Costs.DiskCkpt, 1.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := AxisAround(hera.Costs.DiskRec, 1.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return BuildSpec{
		Kind:     core.PDMV,
		Base:     hera.Costs,
		FailStop: fs, Silent: sil, Ckpt: ck, Rec: rec,
		ErrBound: 0.05,
		Samples:  24,
		Seed:     7,
	}
}

func buildHera(t *testing.T) *Table {
	t.Helper()
	tbl, err := Build(heraSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestBuildWithinBound is the headline correctness property:
// interpolated answers stay within the configured error bound of
// exact planning on a seeded in-grid sample, and Build records the
// observed maximum.
func TestBuildWithinBound(t *testing.T) {
	tbl := buildHera(t)
	if tbl.SampleErr > tbl.ErrBound {
		t.Fatalf("sample error %v exceeds bound %v", tbl.SampleErr, tbl.ErrBound)
	}
	if tbl.SampleErr <= 0 {
		t.Fatalf("sample error %v; interpolation off grid points should not be exact", tbl.SampleErr)
	}
	// Re-validating a built table with the same seed reproduces the
	// recorded error exactly.
	again, err := tbl.CheckError(tbl.Samples, tbl.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if again != tbl.SampleErr {
		t.Fatalf("re-validation %v != recorded %v", again, tbl.SampleErr)
	}
}

// TestLookupAtGridPoint asserts interpolation degenerates to the
// stored exact entry on grid points.
func TestLookupAtGridPoint(t *testing.T) {
	tbl := buildHera(t)
	for _, at := range [][4]int{{0, 0, 0, 0}, {1, 2, 1, 0}, {2, 2, 1, 1}} {
		costs, rates := tbl.pointConfig(at[0], at[1], at[2], at[3])
		want := tbl.Entries[tbl.index(at[0], at[1], at[2], at[3])]
		ans, ok := tbl.Lookup(tbl.Kind, costs, rates)
		if !ok {
			t.Fatalf("grid point %v missed", at)
		}
		if ans.N != want.N || ans.M != want.M {
			t.Fatalf("grid point %v: layout (%d,%d) != stored (%d,%d)", at, ans.N, ans.M, want.N, want.M)
		}
		if math.Abs(ans.W-want.W) > 1e-9*want.W || math.Abs(ans.Overhead-want.Overhead) > 1e-12 {
			t.Fatalf("grid point %v: (W,H)=(%v,%v) != stored (%v,%v)", at, ans.W, ans.Overhead, want.W, want.Overhead)
		}
		// And the stored entry matches a fresh exact plan bit-for-bit.
		exact, err := optimize.Exact(tbl.Kind, costs, rates)
		if err != nil {
			t.Fatal(err)
		}
		if exact.N != want.N || exact.M != want.M || exact.W != want.W || exact.Overhead != want.Overhead {
			t.Fatalf("grid point %v: stored %+v != fresh exact %+v", at, want, exact)
		}
	}
}

// TestLookupMisses covers every fall-through condition: wrong family,
// different cost template, out-of-grid coordinates.
func TestLookupMisses(t *testing.T) {
	tbl := buildHera(t)
	costs, rates := tbl.pointConfig(1, 1, 0, 0)
	if _, ok := tbl.Lookup(core.PD, costs, rates); ok {
		t.Fatal("wrong family hit the table")
	}
	badTemplate := costs
	badTemplate.Recall = 0.9
	if _, ok := tbl.Lookup(tbl.Kind, badTemplate, rates); ok {
		t.Fatal("different template hit the table")
	}
	outRates := rates
	outRates.FailStop = tbl.FailStop[2] * 1.01
	if _, ok := tbl.Lookup(tbl.Kind, costs, outRates); ok {
		t.Fatal("out-of-grid rate hit the table")
	}
	lowRates := rates
	lowRates.Silent = tbl.Silent[0] * 0.99
	if _, ok := tbl.Lookup(tbl.Kind, costs, lowRates); ok {
		t.Fatal("below-grid rate hit the table")
	}
	outCosts := costs
	outCosts.DiskCkpt = tbl.Ckpt[1] * 2
	if _, ok := tbl.Lookup(tbl.Kind, outCosts, rates); ok {
		t.Fatal("out-of-grid checkpoint cost hit the table")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tbl := buildHera(t)
	var buf bytes.Buffer
	if err := tbl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatal("save → load → save is not byte-stable")
	}
	costs, rates := tbl.pointConfig(1, 1, 1, 1)
	rates.FailStop *= 1.1 // interpolated point
	a, okA := tbl.Lookup(tbl.Kind, costs, rates)
	b, okB := loaded.Lookup(tbl.Kind, costs, rates)
	if !okA || !okB || a != b {
		t.Fatalf("loaded table answers differently: %+v/%v vs %+v/%v", a, okA, b, okB)
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	tbl := buildHera(t)
	var buf bytes.Buffer
	if err := tbl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for name, corrupt := range map[string]func(*Table){
		"entry count":    func(t *Table) { t.Entries = t.Entries[:len(t.Entries)-1] },
		"unsorted axis":  func(t *Table) { t.FailStop[0], t.FailStop[1] = t.FailStop[1], t.FailStop[0] },
		"negative bound": func(t *Table) { t.ErrBound = -1 },
		"bound breach":   func(t *Table) { t.SampleErr = t.ErrBound * 2 },
		"bad entry":      func(t *Table) { t.Entries[0].N = 0 },
	} {
		broken, err := Load(bytes.NewReader(good))
		if err != nil {
			t.Fatal(err)
		}
		corrupt(broken)
		var b bytes.Buffer
		if err := broken.Save(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bytes.NewReader(b.Bytes())); err == nil {
			t.Errorf("corrupt table (%s) loaded without error", name)
		}
	}
}

func TestAxisAround(t *testing.T) {
	ax, err := AxisAround(100, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{50, 100, 200}
	for i := range want {
		if math.Abs(ax[i]-want[i]) > 1e-9*want[i] {
			t.Fatalf("axis %v, want %v", ax, want)
		}
	}
	if ax, err = AxisAround(5, 10, 1); err != nil || len(ax) != 1 || ax[0] != 5 {
		t.Fatalf("single-point axis: %v, %v", ax, err)
	}
	if _, err := AxisAround(0, 2, 3); err == nil {
		t.Fatal("zero center accepted")
	}
	if _, err := AxisAround(1, 1, 3); err == nil {
		t.Fatal("span 1 accepted")
	}
}

// TestBuildRejectsLooseBound asserts Build fails loudly when the grid
// cannot meet the requested bound.
func TestBuildRejectsLooseBound(t *testing.T) {
	spec := heraSpec(t)
	spec.ErrBound = 1e-9 // unreachable for any interpolation
	if _, err := Build(spec); err == nil {
		t.Fatal("Build met an impossible error bound")
	}
}
