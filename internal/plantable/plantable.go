// Package plantable precomputes exact-model plans over a
// (λf, λs, C, R) grid so the serving layer can answer common
// configurations by multilinear interpolation instead of running the
// cold exact search (DESIGN.md §2.9). A table is built offline
// (cmd/plantable) or in-process (Build), carries a verified
// exactness-error bound, and is loaded read-only at daemon startup —
// lookups are pure arithmetic over shared slices and safe for
// concurrent use.
//
// The four axes cover the parameters operators actually sweep: the
// two error rates and the disk checkpoint/recovery costs. The
// remaining cost parameters (memory checkpoint, verifications,
// recall) are the table's fixed template; a request whose template
// differs, or whose coordinates fall outside the grid, misses the
// table and falls through to the ordinary cold-plan path — including
// the PR 8 admission gate — unchanged.
//
// Interpolation serves the W and overhead of the 16 surrounding grid
// corners multilinearly and the integer (n, m) from the nearest
// corner. Build validates the scheme against exact planning on a
// seeded in-grid sample: for each sample point it bounds both the
// suboptimality of the served plan (exact overhead of the
// interpolated layout vs the true optimum) and the prediction error
// of the interpolated overhead figure. The max observed error is
// recorded in the table and must not exceed the configured bound.
package plantable

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"sort"

	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/optimize"
	"respat/internal/sched"
)

// Entry is the exact plan at one grid point.
type Entry struct {
	N        int     `json:"n"`
	M        int     `json:"m"`
	W        float64 `json:"w"`
	Overhead float64 `json:"overhead"`
}

// Answer is one interpolated lookup result.
type Answer struct {
	// N and M come from the grid corner nearest the query point.
	N, M int
	// W and Overhead are multilinear interpolations over the 16
	// surrounding corners.
	W, Overhead float64
}

// Table is a precomputed plan table over a (λf, λs, C, R) grid.
// Immutable after Build/Load; safe for concurrent Lookup.
type Table struct {
	// Kind is the pattern family every entry was planned for.
	Kind core.Kind
	// Base is the cost template shared by all grid points. Its
	// DiskCkpt and DiskRec fields are zero — those coordinates come
	// from the Ckpt and Rec axes.
	Base core.Costs
	// The axes, each strictly increasing. FailStop and Silent are
	// rates in errors/second; Ckpt and Rec are the disk checkpoint
	// and recovery costs in seconds.
	FailStop, Silent, Ckpt, Rec []float64
	// Entries holds the exact plan at each grid point in row-major
	// order: ((fi*len(Silent)+si)*len(Ckpt)+ci)*len(Rec)+ri.
	Entries []Entry
	// ErrBound is the relative-error tolerance the table was
	// validated against; SampleErr the max relative error observed on
	// the validation sample (always <= ErrBound for a built table).
	ErrBound  float64
	SampleErr float64
	// Seed and Samples record the validation draw for reproducibility.
	Seed    uint64
	Samples int
}

// BuildSpec configures Build.
type BuildSpec struct {
	Kind core.Kind
	// Base supplies the non-axis cost parameters (MemCkpt, MemRec,
	// GuarVer, PartVer, Recall); its DiskCkpt/DiskRec are ignored.
	Base core.Costs
	// The grid axes, strictly increasing, at least one point each.
	FailStop, Silent, Ckpt, Rec []float64
	// ErrBound is the maximum tolerated relative error (default 0.01).
	ErrBound float64
	// Samples is the validation sample size (default 32).
	Samples int
	// Seed drives the validation sample (default 1).
	Seed uint64
	// Workers bounds the parallel exact planning (default GOMAXPROCS,
	// via sched).
	Workers int
}

// tableJSON is the on-disk format (docs/api.md "Plan-table file
// format").
type tableJSON struct {
	Kind      string     `json:"kind"`
	Base      core.Costs `json:"base"`
	FailStop  []float64  `json:"failstop"`
	Silent    []float64  `json:"silent"`
	Ckpt      []float64  `json:"ckpt"`
	Rec       []float64  `json:"rec"`
	ErrBound  float64    `json:"errBound"`
	SampleErr float64    `json:"sampleErr"`
	Seed      uint64     `json:"seed"`
	Samples   int        `json:"samples"`
	Entries   []Entry    `json:"entries"`
}

// checkAxis validates one axis: non-empty, finite, non-negative,
// strictly increasing.
func checkAxis(name string, axis []float64) error {
	if len(axis) == 0 {
		return fmt.Errorf("plantable: axis %s is empty", name)
	}
	for i, v := range axis {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("plantable: axis %s[%d] = %v, need finite >= 0", name, i, v)
		}
		if i > 0 && v <= axis[i-1] {
			return fmt.Errorf("plantable: axis %s not strictly increasing at index %d (%v <= %v)",
				name, i, v, axis[i-1])
		}
	}
	return nil
}

// Validate checks the table's structural invariants (axes, entry
// count, bounds). Load calls it; Build guarantees it.
func (t *Table) Validate() error {
	if !t.Kind.Valid() {
		return fmt.Errorf("plantable: invalid pattern kind %d", int(t.Kind))
	}
	for _, ax := range []struct {
		name string
		vals []float64
	}{
		{"failstop", t.FailStop}, {"silent", t.Silent},
		{"ckpt", t.Ckpt}, {"rec", t.Rec},
	} {
		if err := checkAxis(ax.name, ax.vals); err != nil {
			return err
		}
	}
	want := len(t.FailStop) * len(t.Silent) * len(t.Ckpt) * len(t.Rec)
	if len(t.Entries) != want {
		return fmt.Errorf("plantable: %d entries for a %dx%dx%dx%d grid, want %d",
			len(t.Entries), len(t.FailStop), len(t.Silent), len(t.Ckpt), len(t.Rec), want)
	}
	if t.ErrBound <= 0 || math.IsNaN(t.ErrBound) {
		return fmt.Errorf("plantable: error bound %v, need > 0", t.ErrBound)
	}
	if t.SampleErr > t.ErrBound {
		return fmt.Errorf("plantable: sample error %v exceeds bound %v", t.SampleErr, t.ErrBound)
	}
	for i, e := range t.Entries {
		if e.N < 1 || e.M < 1 || e.W <= 0 || math.IsNaN(e.W) || math.IsNaN(e.Overhead) {
			return fmt.Errorf("plantable: entry %d invalid: %+v", i, e)
		}
	}
	return nil
}

// index flattens grid coordinates into Entries.
func (t *Table) index(fi, si, ci, ri int) int {
	return ((fi*len(t.Silent)+si)*len(t.Ckpt)+ci)*len(t.Rec) + ri
}

// locate finds x on axis: the lower bracket index and the fractional
// weight toward the upper bracket. ok is false outside [min, max].
// A single-point axis matches only its exact value.
func locate(axis []float64, x float64) (i int, w float64, ok bool) {
	n := len(axis)
	if math.IsNaN(x) || x < axis[0] || x > axis[n-1] {
		return 0, 0, false
	}
	if n == 1 {
		return 0, 0, true // x == axis[0] by the bounds check
	}
	j := sort.SearchFloat64s(axis, x)
	if j < n && axis[j] == x {
		if j == n-1 {
			return n - 2, 1, true
		}
		return j, 0, true
	}
	i = j - 1
	return i, (x - axis[i]) / (axis[i+1] - axis[i]), true
}

// Covers reports whether the table applies to (kind, c, r): the family
// and cost template match and all four coordinates are in-grid. It is
// Lookup without the interpolation.
func (t *Table) Covers(kind core.Kind, c core.Costs, r core.Rates) bool {
	_, ok := t.Lookup(kind, c, r)
	return ok
}

// Lookup answers (kind, c, r) from the table: multilinear W/overhead
// over the 16 surrounding corners, (n, m) from the nearest corner.
// ok is false when the family differs, the cost template (the non-axis
// cost fields) differs, or any coordinate is out of grid — callers
// then fall through to the ordinary cold-plan path.
func (t *Table) Lookup(kind core.Kind, c core.Costs, r core.Rates) (Answer, bool) {
	if kind != t.Kind {
		return Answer{}, false
	}
	if c.MemCkpt != t.Base.MemCkpt || c.MemRec != t.Base.MemRec ||
		c.GuarVer != t.Base.GuarVer || c.PartVer != t.Base.PartVer ||
		c.Recall != t.Base.Recall {
		return Answer{}, false
	}
	fi, fw, ok := locate(t.FailStop, r.FailStop)
	if !ok {
		return Answer{}, false
	}
	si, sw, ok := locate(t.Silent, r.Silent)
	if !ok {
		return Answer{}, false
	}
	ci, cw, ok := locate(t.Ckpt, c.DiskCkpt)
	if !ok {
		return Answer{}, false
	}
	ri, rw, ok := locate(t.Rec, c.DiskRec)
	if !ok {
		return Answer{}, false
	}
	idx := [4]int{fi, si, ci, ri}
	wts := [4]float64{fw, sw, cw, rw}
	lens := [4]int{len(t.FailStop), len(t.Silent), len(t.Ckpt), len(t.Rec)}

	var ans Answer
	for corner := 0; corner < 16; corner++ {
		weight := 1.0
		var at [4]int
		for d := 0; d < 4; d++ {
			if corner&(1<<d) != 0 {
				weight *= wts[d]
				at[d] = idx[d] + 1
				if at[d] >= lens[d] {
					at[d] = lens[d] - 1 // single-point axis; weight is 0
				}
			} else {
				weight *= 1 - wts[d]
				at[d] = idx[d]
			}
		}
		if weight == 0 {
			continue
		}
		e := t.Entries[t.index(at[0], at[1], at[2], at[3])]
		ans.W += weight * e.W
		ans.Overhead += weight * e.Overhead
	}
	// Nearest corner supplies the integer layout.
	var near [4]int
	for d := 0; d < 4; d++ {
		near[d] = idx[d]
		if wts[d] >= 0.5 {
			near[d]++
			if near[d] >= lens[d] {
				near[d] = lens[d] - 1
			}
		}
	}
	ne := t.Entries[t.index(near[0], near[1], near[2], near[3])]
	ans.N, ans.M = ne.N, ne.M
	return ans, true
}

// Build computes the exact plan at every grid point (in parallel) and
// validates the interpolation error on a seeded in-grid sample,
// failing if it exceeds the bound.
func Build(spec BuildSpec) (*Table, error) {
	if !spec.Kind.Valid() {
		return nil, fmt.Errorf("plantable: invalid pattern kind %d", int(spec.Kind))
	}
	base := spec.Base
	base.DiskCkpt, base.DiskRec = 0, 0
	if spec.ErrBound == 0 {
		spec.ErrBound = 0.01
	}
	if spec.Samples == 0 {
		spec.Samples = 32
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	t := &Table{
		Kind:     spec.Kind,
		Base:     base,
		FailStop: append([]float64(nil), spec.FailStop...),
		Silent:   append([]float64(nil), spec.Silent...),
		Ckpt:     append([]float64(nil), spec.Ckpt...),
		Rec:      append([]float64(nil), spec.Rec...),
		ErrBound: spec.ErrBound,
		Seed:     spec.Seed,
		Samples:  spec.Samples,
	}
	for _, ax := range []struct {
		name string
		vals []float64
	}{
		{"failstop", t.FailStop}, {"silent", t.Silent},
		{"ckpt", t.Ckpt}, {"rec", t.Rec},
	} {
		if err := checkAxis(ax.name, ax.vals); err != nil {
			return nil, err
		}
	}
	cells := len(t.FailStop) * len(t.Silent) * len(t.Ckpt) * len(t.Rec)
	coords := make([][4]int, 0, cells)
	for fi := range t.FailStop {
		for si := range t.Silent {
			for ci := range t.Ckpt {
				for ri := range t.Rec {
					coords = append(coords, [4]int{fi, si, ci, ri})
				}
			}
		}
	}
	entries, err := sched.Map(coords, spec.Workers, func(_ int, at [4]int) (Entry, error) {
		costs, rates := t.pointConfig(at[0], at[1], at[2], at[3])
		plan, err := optimize.Exact(t.Kind, costs, rates)
		if err != nil {
			return Entry{}, fmt.Errorf("plantable: grid point (λf=%v, λs=%v, C=%v, R=%v): %w",
				rates.FailStop, rates.Silent, costs.DiskCkpt, costs.DiskRec, err)
		}
		return Entry{N: plan.N, M: plan.M, W: plan.W, Overhead: plan.Overhead}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Entries = entries
	maxErr, err := t.CheckError(spec.Samples, spec.Seed)
	if err != nil {
		return nil, err
	}
	t.SampleErr = maxErr
	if maxErr > t.ErrBound {
		return nil, fmt.Errorf("plantable: validation error %.4g exceeds bound %.4g "+
			"(densify the grid or relax the bound)", maxErr, t.ErrBound)
	}
	return t, nil
}

// pointConfig materialises the configuration of one grid point.
func (t *Table) pointConfig(fi, si, ci, ri int) (core.Costs, core.Rates) {
	costs := t.Base
	costs.DiskCkpt = t.Ckpt[ci]
	costs.DiskRec = t.Rec[ri]
	return costs, core.Rates{FailStop: t.FailStop[fi], Silent: t.Silent[si]}
}

// CheckError draws samples uniform in-grid points (seeded,
// reproducible) and returns the max relative error of the table's
// answers against exact planning. Two errors are bounded per point:
// the suboptimality of the served layout (exact overhead of the
// interpolated (n, m, W) vs the true optimum) and the prediction
// error of the interpolated overhead figure. Both are relative to the
// true optimal overhead.
func (t *Table) CheckError(samples int, seed uint64) (float64, error) {
	if samples <= 0 {
		return 0, nil
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	draw := func(axis []float64) float64 {
		lo, hi := axis[0], axis[len(axis)-1]
		return lo + rng.Float64()*(hi-lo)
	}
	var maxErr float64
	for i := 0; i < samples; i++ {
		rates := core.Rates{FailStop: draw(t.FailStop), Silent: draw(t.Silent)}
		costs := t.Base
		costs.DiskCkpt = draw(t.Ckpt)
		costs.DiskRec = draw(t.Rec)
		ans, ok := t.Lookup(t.Kind, costs, rates)
		if !ok {
			return 0, fmt.Errorf("plantable: validation sample %d missed its own grid", i)
		}
		exact, err := optimize.Exact(t.Kind, costs, rates)
		if err != nil {
			return 0, fmt.Errorf("plantable: validation sample %d: %w", i, err)
		}
		ev, err := analytic.NewEvaluator(costs, rates)
		if err != nil {
			return 0, err
		}
		served, err := ev.EvalLayoutOverhead(t.Kind, ans.N, ans.M, ans.W)
		if err != nil {
			return 0, fmt.Errorf("plantable: validation sample %d: served layout: %w", i, err)
		}
		rel := math.Abs(served-exact.Overhead) / exact.Overhead
		if pred := math.Abs(ans.Overhead-served) / exact.Overhead; pred > rel {
			rel = pred
		}
		if rel > maxErr {
			maxErr = rel
		}
	}
	return maxErr, nil
}

// Save writes the table as JSON (docs/api.md "Plan-table file
// format"). The encoding is deterministic for a given table.
func (t *Table) Save(w io.Writer) error {
	b, err := json.MarshalIndent(tableJSON{
		Kind:      t.Kind.String(),
		Base:      t.Base,
		FailStop:  t.FailStop,
		Silent:    t.Silent,
		Ckpt:      t.Ckpt,
		Rec:       t.Rec,
		ErrBound:  t.ErrBound,
		SampleErr: t.SampleErr,
		Seed:      t.Seed,
		Samples:   t.Samples,
		Entries:   t.Entries,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("plantable: marshal: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Load reads and validates a table written by Save.
func Load(r io.Reader) (*Table, error) {
	var dto tableJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&dto); err != nil {
		return nil, fmt.Errorf("plantable: decode: %w", err)
	}
	kind, err := core.ParseKind(dto.Kind)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Kind:      kind,
		Base:      dto.Base,
		FailStop:  dto.FailStop,
		Silent:    dto.Silent,
		Ckpt:      dto.Ckpt,
		Rec:       dto.Rec,
		ErrBound:  dto.ErrBound,
		SampleErr: dto.SampleErr,
		Seed:      dto.Seed,
		Samples:   dto.Samples,
		Entries:   dto.Entries,
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// LoadFile is Load over a file path.
func LoadFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("plantable: %w", err)
	}
	defer f.Close()
	t, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("plantable: %s: %w", path, err)
	}
	return t, nil
}

// AxisAround builds a symmetric axis of points geometrically spaced
// around center: center·span^(2i/(points-1) - 1) for i in
// [0, points). It is the convenient way to cover "the platform's
// rates, give or take a factor of span" (cmd/plantable uses it).
func AxisAround(center, span float64, points int) ([]float64, error) {
	if center <= 0 || span <= 1 || points < 1 {
		return nil, fmt.Errorf("plantable: axis center=%v span=%v points=%d, need center > 0, span > 1, points >= 1",
			center, span, points)
	}
	if points == 1 {
		return []float64{center}, nil
	}
	out := make([]float64, points)
	for i := range out {
		exp := 2*float64(i)/float64(points-1) - 1
		out[i] = center * math.Pow(span, exp)
	}
	return out, nil
}
