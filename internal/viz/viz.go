// Package viz renders ASCII line charts for the experiment figures:
// overhead-vs-nodes curves (Figures 7/8), period and rate sweeps
// (Figure 9). It is deliberately small — fixed-grid scatter plots with
// linear interpolation between points — but sufficient to eyeball the
// paper's shapes straight from a terminal or a results file.
package viz

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// ErrEmpty is returned when a chart has no drawable points.
var ErrEmpty = errors.New("viz: no drawable points")

// markers are assigned to series in order.
var markers = []byte{'o', '+', 'x', '*', '#', '@', '%', '&'}

// Series is one named polyline.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a fixed-size ASCII chart.
type Chart struct {
	Title  string
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	LogX   bool
	LogY   bool
	Series []Series
}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	type pt struct{ x, y float64 }
	series := make([][]pt, 0, len(c.Series))
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("viz: series %q has %d x for %d y", s.Name, len(s.X), len(s.Y))
		}
		var pts []pt
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if c.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			pts = append(pts, pt{x, y})
			if first {
				xmin, xmax, ymin, ymax = x, x, y, y
				first = false
			} else {
				xmin = math.Min(xmin, x)
				xmax = math.Max(xmax, x)
				ymin = math.Min(ymin, y)
				ymax = math.Max(ymax, y)
			}
		}
		series = append(series, pts)
	}
	if first {
		return ErrEmpty
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	// Interpolated segments first (dots), then markers on top.
	for si, pts := range series {
		for i := 1; i < len(pts); i++ {
			drawSegment(grid, col(pts[i-1].x), row(pts[i-1].y), col(pts[i].x), row(pts[i].y))
		}
		_ = si
	}
	for si, pts := range series {
		m := markers[si%len(markers)]
		for _, p := range pts {
			grid[row(p.y)][col(p.x)] = m
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	unlog := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	yTop := fmt.Sprintf("%.4g", unlog(ymax, c.LogY))
	yBot := fmt.Sprintf("%.4g", unlog(ymin, c.LogY))
	lw := len(yTop)
	if len(yBot) > lw {
		lw = len(yBot)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", lw)
		switch r {
		case 0:
			label = pad(yTop, lw)
		case height - 1:
			label = pad(yBot, lw)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", lw), strings.Repeat("-", width)); err != nil {
		return err
	}
	xLeft := fmt.Sprintf("%.4g", unlog(xmin, c.LogX))
	xRight := fmt.Sprintf("%.4g", unlog(xmax, c.LogX))
	gap := width - len(xLeft) - len(xRight)
	if gap < 1 {
		gap = 1
	}
	if _, err := fmt.Fprintf(w, "%s  %s%s%s\n", strings.Repeat(" ", lw), xLeft, strings.Repeat(" ", gap), xRight); err != nil {
		return err
	}
	var legend []string
	for i, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[i%len(markers)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%s  [%s]\n", strings.Repeat(" ", lw), strings.Join(legend, "  "))
	return err
}

// String renders to a string; errors are reported inline.
func (c *Chart) String() string {
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		return "viz: " + err.Error()
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// drawSegment draws a light Bresenham line of '.' between two grid
// cells, leaving existing non-space cells untouched.
func drawSegment(grid [][]byte, c0, r0, c1, r1 int) {
	dc := abs(c1 - c0)
	dr := -abs(r1 - r0)
	sc := 1
	if c0 > c1 {
		sc = -1
	}
	sr := 1
	if r0 > r1 {
		sr = -1
	}
	err := dc + dr
	for {
		if grid[r0][c0] == ' ' {
			grid[r0][c0] = '.'
		}
		if c0 == c1 && r0 == r1 {
			return
		}
		e2 := 2 * err
		if e2 >= dr {
			err += dr
			c0 += sc
		}
		if e2 <= dc {
			err += dc
			r0 += sr
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
