package viz

import (
	"strings"
	"testing"
)

func TestRenderBasicChart(t *testing.T) {
	c := &Chart{
		Title:  "demo",
		Width:  21,
		Height: 5,
		Series: []Series{
			{Name: "up", X: []float64{0, 10}, Y: []float64{0, 10}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 5 rows + axis + x labels + legend = 9 lines.
	if len(lines) != 9 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// The first point (0,0) maps to bottom-left, the last (10,10) to
	// top-right.
	top := lines[1]
	bottom := lines[5]
	if !strings.HasSuffix(top, "o") {
		t.Errorf("top row should end with marker: %q", top)
	}
	if !strings.Contains(bottom, "|o") {
		t.Errorf("bottom row should start with marker: %q", bottom)
	}
	if !strings.Contains(out, "o=up") {
		t.Error("missing legend")
	}
	// Interpolation dots exist between endpoints.
	if !strings.Contains(out, ".") {
		t.Error("missing interpolation")
	}
}

func TestRenderTwoSeriesDistinctMarkers(t *testing.T) {
	c := &Chart{
		Width: 20, Height: 5,
		Series: []Series{
			{Name: "a", X: []float64{0, 1}, Y: []float64{1, 1}},
			{Name: "b", X: []float64{0, 1}, Y: []float64{2, 2}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "o=a") || !strings.Contains(out, "+=b") {
		t.Errorf("legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "+") {
		t.Error("markers missing")
	}
}

func TestRenderLogAxes(t *testing.T) {
	c := &Chart{
		Width: 30, Height: 6, LogX: true,
		Series: []Series{
			{Name: "s", X: []float64{256, 262144}, Y: []float64{0.1, 5}},
		},
	}
	out := c.String()
	// Axis labels show the un-logged values.
	if !strings.Contains(out, "256") {
		t.Errorf("x label missing:\n%s", out)
	}
	if !strings.Contains(out, "2.621e+05") && !strings.Contains(out, "262144") {
		t.Errorf("x max label missing:\n%s", out)
	}
}

func TestRenderLogSkipsNonPositive(t *testing.T) {
	c := &Chart{
		LogY: true,
		Series: []Series{
			{Name: "s", X: []float64{1, 2, 3}, Y: []float64{-1, 0, 10}},
		},
	}
	if err := c.Render(&strings.Builder{}); err != nil {
		t.Fatalf("single surviving point should render: %v", err)
	}
}

func TestRenderEmpty(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "s"}}}
	if err := c.Render(&strings.Builder{}); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
	if !strings.Contains(c.String(), "viz:") {
		t.Error("String should surface the error")
	}
}

func TestRenderMismatchedSeries(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := c.Render(&strings.Builder{}); err == nil {
		t.Error("mismatched lengths should fail")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges (all points equal) must not divide by zero.
	c := &Chart{
		Width: 10, Height: 3,
		Series: []Series{{Name: "c", X: []float64{5, 5}, Y: []float64{2, 2}}},
	}
	out := c.String()
	if strings.Contains(out, "viz:") {
		t.Fatalf("render failed: %s", out)
	}
	if !strings.Contains(out, "o") {
		t.Error("marker missing")
	}
}

func TestMarkerCycling(t *testing.T) {
	var series []Series
	for i := 0; i < 10; i++ {
		series = append(series, Series{Name: "s", X: []float64{0, 1}, Y: []float64{float64(i), float64(i)}})
	}
	c := &Chart{Series: series, Width: 12, Height: 12}
	if strings.Contains(c.String(), "viz:") {
		t.Error("ten series should render (markers cycle)")
	}
}
