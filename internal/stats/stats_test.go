package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"respat/internal/xmath"
)

func TestSampleMoments(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if !xmath.Close(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if !xmath.Close(s.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min,Max = %v,%v, want 2,9", s.Min(), s.Max())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Error("empty sample should report zeros")
	}
}

func TestSampleMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e150 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var s1, s2, merged, seq Sample
		for _, x := range a {
			s1.Add(x)
			seq.Add(x)
		}
		for _, x := range b {
			s2.Add(x)
			seq.Add(x)
		}
		merged.AddSample(s1)
		merged.AddSample(s2)
		if merged.N() != seq.N() {
			return false
		}
		if seq.N() == 0 {
			return true
		}
		return xmath.Close(merged.Mean(), seq.Mean(), 1e-9) &&
			xmath.Close(merged.Var(), seq.Var(), 1e-6) &&
			merged.Min() == seq.Min() && merged.Max() == seq.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	if got := s.String(); got == "" {
		t.Error("String should be non-empty")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.Close(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("expected error for q out of range")
	}
}

// TestQuantiles asserts the one-sort multi-quantile helper agrees
// with repeated Quantile calls and validates its inputs.
func TestQuantiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	got, err := Quantiles(xs, 0, 0.25, 0.5, 0.75, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		want, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.Close(got[i], want, 1e-12) {
			t.Errorf("Quantiles[%v] = %v, Quantile = %v", q, got[i], want)
		}
	}
	if xs[0] != 5 || xs[4] != 4 {
		t.Error("Quantiles mutated its input")
	}
	if _, err := Quantiles(nil, 0.5); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	if _, err := Quantiles(xs, 0.5, 1.5); err == nil {
		t.Error("expected error for q out of range")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under,Over = %d,%d, want 1,2", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("expected error for empty range")
	}
}

func TestKSAcceptsCorrectDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	xs := make([]float64, 2000)
	lambda := 2.5
	for i := range xs {
		xs[i] = rng.ExpFloat64() / lambda
	}
	cdf := func(x float64) float64 { return 1 - math.Exp(-lambda*x) }
	d, p, err := KolmogorovSmirnov(xs, cdf)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("KS rejected correct exponential law: D=%v p=%v", d, p)
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() / 2.5
	}
	// Test against an exponential with a 2x wrong rate.
	cdf := func(x float64) float64 { return 1 - math.Exp(-5.0*x) }
	_, p, err := KolmogorovSmirnov(xs, cdf)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-4 {
		t.Errorf("KS failed to reject wrong law: p=%v", p)
	}
}

func TestKSEmpty(t *testing.T) {
	if _, _, err := KolmogorovSmirnov(nil, func(float64) float64 { return 0 }); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestChiSquareUniform(t *testing.T) {
	obs := []int64{95, 105, 102, 98, 100}
	exp := []float64{100, 100, 100, 100, 100}
	stat, dof, err := ChiSquare(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	if dof != 4 {
		t.Errorf("dof = %d, want 4", dof)
	}
	if stat > ChiSquareCritical95(dof) {
		t.Errorf("chi2 = %v rejected a near-uniform sample (crit %v)", stat, ChiSquareCritical95(dof))
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquare(nil, nil); err == nil {
		t.Error("expected error on empty input")
	}
	if _, _, err := ChiSquare([]int64{1}, []float64{0}); err == nil {
		t.Error("expected error on zero expected count")
	}
	if _, _, err := ChiSquare([]int64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error on length mismatch")
	}
}

func TestChiSquareCritical95KnownValues(t *testing.T) {
	// Reference values: dof=5 -> 11.070, dof=10 -> 18.307.
	if got := ChiSquareCritical95(5); math.Abs(got-11.070) > 0.15 {
		t.Errorf("crit(5) = %v, want ~11.07", got)
	}
	if got := ChiSquareCritical95(10); math.Abs(got-18.307) > 0.15 {
		t.Errorf("crit(10) = %v, want ~18.31", got)
	}
	if ChiSquareCritical95(0) != 0 {
		t.Error("crit(0) should be 0")
	}
}

// TestHistogramQuantileMatchesExact pins the binned quantile estimator
// to the exact order-statistic Quantile on random data: the estimate
// may only be off by one bin width.
func TestHistogramQuantileMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	h, err := NewHistogram(0, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 5000)
	for i := range xs {
		x := rng.Float64()
		if i%3 == 0 { // skew the distribution so bins fill unevenly
			x = x * x
		}
		xs[i] = x
		h.Add(x)
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 1} {
		want, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > width {
			t.Errorf("q=%v: histogram %v vs exact %v differ by > bin width %v", q, got, want, width)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Quantile(0.5); err != ErrNoData {
		t.Errorf("empty histogram quantile err = %v, want ErrNoData", err)
	}
	if _, err := h.Quantile(-0.1); err == nil {
		t.Error("Quantile accepted q < 0")
	}
	h.Add(-5) // under
	h.Add(15) // over
	h.Add(5)
	if got, _ := h.Quantile(0); got != h.Lo {
		t.Errorf("q=0 with under-range mass = %v, want Lo %v", got, h.Lo)
	}
	if got, _ := h.Quantile(1); got != h.Hi {
		t.Errorf("q=1 with over-range mass = %v, want Hi %v", got, h.Hi)
	}
}

func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	whole, _ := NewHistogram(0, 1, 50)
	a, _ := NewHistogram(0, 1, 50)
	b, _ := NewHistogram(0, 1, 50)
	for i := 0; i < 2000; i++ {
		x := rng.NormFloat64()*0.3 + 0.5 // exercises Under/Over too
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Under != whole.Under || a.Over != whole.Over || a.Total() != whole.Total() {
		t.Errorf("merged totals (%d,%d,%d) != whole (%d,%d,%d)",
			a.Under, a.Over, a.Total(), whole.Under, whole.Over, whole.Total())
	}
	for i := range a.Counts {
		if a.Counts[i] != whole.Counts[i] {
			t.Fatalf("bin %d: merged %d != whole %d", i, a.Counts[i], whole.Counts[i])
		}
	}
	other, _ := NewHistogram(0, 2, 50)
	if err := a.Merge(other); err == nil {
		t.Error("Merge accepted a mismatched range")
	}
	narrow, _ := NewHistogram(0, 1, 10)
	if err := a.Merge(narrow); err == nil {
		t.Error("Merge accepted a mismatched bin count")
	}
}

// TestStreamingAccumulatorsAllocationFree asserts the hot accumulation
// paths the fleet reducer leans on never allocate.
func TestStreamingAccumulatorsAllocationFree(t *testing.T) {
	var s Sample
	h, _ := NewHistogram(0, 1, 100)
	x := 0.123
	if n := testing.AllocsPerRun(1000, func() {
		s.Add(x)
		x = math.Mod(x*1.618, 1)
	}); n != 0 {
		t.Errorf("Sample.Add allocates %v times per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		h.Add(x)
		x = math.Mod(x*1.618, 1)
	}); n != 0 {
		t.Errorf("Histogram.Add allocates %v times per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := h.Quantile(0.99); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Histogram.Quantile allocates %v times per call", n)
	}
}
