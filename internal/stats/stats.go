// Package stats provides the descriptive statistics used to aggregate
// Monte-Carlo simulation outputs: running moments, confidence intervals,
// histograms and two goodness-of-fit tests (Kolmogorov-Smirnov and
// chi-square) that validate the fault generators of package faults.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"respat/internal/xmath"
)

// ErrNoData is returned when a statistic is requested from an empty sample.
var ErrNoData = errors.New("stats: no data")

// Sample accumulates streaming moments using Welford's algorithm, which
// is numerically stable for long accumulations.
type Sample struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddSample merges another sample (parallel reduction) using Chan et
// al.'s pairwise update, so per-worker samples can be combined exactly.
func (s *Sample) AddSample(o Sample) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.mean += delta * float64(o.n) / float64(n)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// N returns the number of observations.
func (s *Sample) N() int64 { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// CI95 returns the normal-approximation 95% confidence half-width of the
// mean. For the n >= 100 runs used in the experiments the normal
// approximation is adequate.
func (s *Sample) CI95() float64 { return 1.959963984540054 * s.StdErr() }

// String formats the sample as "mean ± ci95 [min,max] (n)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.6g ± %.2g [%.6g,%.6g] (n=%d)", s.Mean(), s.CI95(), s.min, s.max, s.n)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Quantiles returns several quantiles of xs in one pass: the data is
// sorted once, not once per quantile, which is what the metrics
// snapshot and the load generator want when reporting p50/p90/p99
// over the same window. Each qs[i] must be in [0, 1]; xs need not be
// sorted and is not modified.
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantilesSorted(sorted, qs)
}

// QuantilesInPlace is Quantiles over a caller-owned scratch buffer: xs
// is sorted in place and no copy is made, so a caller that reuses one
// buffer across calls (the /metrics snapshot iterating endpoints) pays
// no per-call allocation beyond the small result slice.
func QuantilesInPlace(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	sort.Float64s(xs)
	return quantilesSorted(xs, qs)
}

func quantilesSorted(sorted []float64, qs []float64) ([]float64, error) {
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 {
			return nil, fmt.Errorf("stats: quantile %v out of [0,1]", q)
		}
		pos := q * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			out[i] = sorted[lo]
			continue
		}
		frac := pos - float64(lo)
		out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return out, nil
}

// Histogram is a fixed-width binned histogram over [Lo, Hi); values
// outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	Under  int64
	Over   int64
}

// NewHistogram creates a histogram with bins equal-width bins.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins = %d, need > 0", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: invalid range [%v,%v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}, nil
}

// Add bins one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard FP edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of binned observations, excluding out-of-range.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Merge adds another histogram's counts into h (parallel reduction).
// The histograms must share the same range and bin count.
func (h *Histogram) Merge(o *Histogram) error {
	if o.Lo != h.Lo || o.Hi != h.Hi || len(o.Counts) != len(h.Counts) {
		return fmt.Errorf("stats: merging histogram [%v,%v)x%d into [%v,%v)x%d",
			o.Lo, o.Hi, len(o.Counts), h.Lo, h.Hi, len(h.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
	return nil
}

// Quantile returns the q-quantile (0 <= q <= 1) estimated from the
// binned counts by linear interpolation inside the bin holding the
// target rank: the error is bounded by one bin width. Under-range
// observations resolve to Lo and over-range ones to Hi. It is the
// streaming, allocation-free counterpart of the exact Quantile over a
// retained sample.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	n := h.Total() + h.Under + h.Over
	if n == 0 {
		return 0, ErrNoData
	}
	// Rank in [0, n-1], matching Quantile's order-statistic convention.
	rank := q * float64(n-1)
	if rank < float64(h.Under) {
		return h.Lo, nil
	}
	rest := rank - float64(h.Under)
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if rest < float64(c) {
			// Interpolate through the bin: rank 0 of a c-count bin sits
			// at its left edge, rank c at its right edge.
			return h.Lo + (float64(i)+rest/float64(c))*width, nil
		}
		rest -= float64(c)
	}
	return h.Hi, nil
}

// KolmogorovSmirnov computes the one-sample KS statistic D of xs against
// the continuous CDF cdf, and an approximate p-value via the asymptotic
// Kolmogorov distribution. It is used to validate that the exponential
// fault generators actually sample the advertised law.
func KolmogorovSmirnov(xs []float64, cdf func(float64) float64) (d, p float64, err error) {
	n := len(xs)
	if n == 0 {
		return 0, 0, ErrNoData
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, x := range sorted {
		f := cdf(x)
		up := float64(i+1)/float64(n) - f
		down := f - float64(i)/float64(n)
		if up > d {
			d = up
		}
		if down > d {
			d = down
		}
	}
	p = ksPValue(d, n)
	return d, p, nil
}

// ksPValue approximates P(D_n > d) with the Kolmogorov asymptotic series
// evaluated at sqrt(n)*d with the Stephens small-sample correction.
func ksPValue(d float64, n int) float64 {
	sn := math.Sqrt(float64(n))
	t := (sn + 0.12 + 0.11/sn) * d
	if t < 1e-6 {
		return 1
	}
	// P = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 t^2)
	var sum xmath.Accumulator
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*t*t)
		sum.Add(term)
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum.Value()
	return xmath.Clamp(p, 0, 1)
}

// ChiSquare computes Pearson's chi-square statistic for observed counts
// against expected counts and returns the statistic and the degrees of
// freedom (len-1). Expected entries must be positive.
func ChiSquare(observed []int64, expected []float64) (stat float64, dof int, err error) {
	if len(observed) == 0 || len(observed) != len(expected) {
		return 0, 0, fmt.Errorf("stats: chi-square needs matching non-empty slices, got %d and %d", len(observed), len(expected))
	}
	var acc xmath.Accumulator
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			return 0, 0, fmt.Errorf("stats: expected[%d] = %v, need > 0", i, e)
		}
		diff := float64(o) - e
		acc.Add(diff * diff / e)
	}
	return acc.Value(), len(observed) - 1, nil
}

// ChiSquareCritical95 returns the 95th-percentile critical value of the
// chi-square distribution with dof degrees of freedom, via the
// Wilson-Hilferty approximation (accurate to ~1% for dof >= 3).
func ChiSquareCritical95(dof int) float64 {
	if dof <= 0 {
		return 0
	}
	k := float64(dof)
	z := 1.6448536269514722 // 95th percentile of N(0,1)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}
