// Package respat is a Go implementation of the optimal resilience
// patterns of Benoit, Cavelan, Robert and Sun, "Optimal resilience
// patterns to cope with fail-stop and silent errors" (IPDPS 2016 /
// INRIA RR-8786).
//
// The package protects long-running HPC applications against two
// simultaneous error sources: fail-stop errors (crashes, handled by
// disk checkpoints) and silent data corruptions (handled by partial or
// guaranteed verifications plus in-memory checkpoints). Work is
// organised into periodic patterns P(W, n, α, m, β); this package
// computes the optimal pattern for a platform (Table 1 of the paper),
// predicts its overhead, simulates it, and can execute a real
// application under it.
//
// The four entry points:
//
//   - Optimal plans a pattern family for given costs and error rates
//     (first-order optimal W*, n*, m* and overhead);
//   - Simulate Monte-Carlo-validates a pattern (the paper's Section 6
//     methodology);
//   - Protect executes a real application under a pattern with real
//     checkpoints, verifications and recoveries (internal/engine);
//   - Adaptive opens an observe → fit → re-plan session that tracks
//     drifting error rates and swaps plans when the incumbent's
//     predicted regret exceeds a threshold (internal/adapt).
//
// Beyond the paper's single-level patterns, OptimalMultilevel /
// SimulateMultilevel / ProtectMultilevel plan, validate and execute
// patterns with a hierarchy of checkpoint levels combined with the
// silent-error verifications (internal/multilevel); CompareTwoLevel
// exposes the Section 4.1 two-level fail-stop comparator the
// multilevel model degenerates to.
//
// SimulateFleet scales the validation from one pattern to a whole
// cluster: a deterministic discrete-event simulation of open-loop job
// arrivals against a shared node pool, with per-job plans from the
// warm planners, per-job fault injection and SLO metrics
// (internal/fleet, cmd/fleet).
//
// Lower-level capabilities (exact expected-time evaluation, exact-model
// planning, placement ablations, platform data) live in the internal
// packages and are re-exported here where downstream users need them.
package respat

import (
	"io"

	"respat/internal/adapt"
	"respat/internal/analytic"
	"respat/internal/core"
	"respat/internal/engine"
	"respat/internal/fleet"
	"respat/internal/multilevel"
	"respat/internal/optimize"
	"respat/internal/platform"
	"respat/internal/service"
	"respat/internal/sim"
	"respat/internal/twolevel"
)

// Core model types.
type (
	// Costs groups the resilience cost parameters (CD, CM, RD, RM, V*,
	// V, r), all in seconds except the recall r in (0,1].
	Costs = core.Costs
	// Rates holds the fail-stop and silent error rates (per second).
	Rates = core.Rates
	// Kind enumerates the six pattern families of Table 1.
	Kind = core.Kind
	// Pattern is the computational unit P(W, n, α, m, β).
	Pattern = core.Pattern
	// Plan is an optimised pattern: W*, n*, m* and predicted overhead.
	Plan = analytic.Plan
	// ExactPlan is a plan optimised under the exact (non-truncated)
	// expected-time model.
	ExactPlan = optimize.ExactPlan
	// Platform bundles a machine's node count, error rates and costs.
	Platform = platform.Platform
)

// The six pattern families of Table 1, from the Young/Daly-style base
// pattern (PD) to the full two-level pattern with partial
// verifications (PDMV).
const (
	PD       = core.PD       // disk checkpoints only
	PDVStar  = core.PDVStar  // + intermediate guaranteed verifications
	PDV      = core.PDV      // + intermediate partial verifications
	PDM      = core.PDM      // + intermediate memory checkpoints
	PDMVStar = core.PDMVStar // memory checkpoints + guaranteed verifications
	PDMV     = core.PDMV     // memory checkpoints + partial verifications
)

// Kinds returns all six pattern families in Table 1 order.
func Kinds() []Kind { return core.Kinds() }

// ParseKind converts a family name ("PDMV*", case-insensitive) to a Kind.
func ParseKind(s string) (Kind, error) { return core.ParseKind(s) }

// Optimal returns the first-order optimal plan of family k (Table 1)
// for the given costs and error rates.
func Optimal(k Kind, c Costs, r Rates) (Plan, error) {
	return analytic.Optimal(k, c, r)
}

// OptimalExact returns the plan minimising the exact renewal-equation
// expected overhead (no first-order truncation). It is slower than
// Optimal and rarely more than a fraction of a percent better.
func OptimalExact(k Kind, c Costs, r Rates) (ExactPlan, error) {
	return optimize.Exact(k, c, r)
}

// PredictOverhead returns the closed-form Table 1 overhead H*(P) of
// family k (continuous relaxation).
func PredictOverhead(k Kind, c Costs, r Rates) float64 {
	return analytic.TableOverhead(k, c, r)
}

// ExpectedTime evaluates the exact expected execution time of an
// arbitrary pattern under the Section 2 protocol.
func ExpectedTime(p Pattern, c Costs, r Rates) (float64, error) {
	return analytic.ExactExpectedTime(p, c, r)
}

// Evaluator is a reusable exact expected-time evaluator bound to one
// (costs, rates) configuration: it validates once, caches the layout
// invariants of every (family, n, m) it sees, and evaluates repeated
// pattern-length probes with a constant number of transcendental
// operations. Use it instead of ExpectedTime in planning loops.
type Evaluator = analytic.Evaluator

// NewEvaluator validates the configuration once and returns an
// evaluator bound to it. An Evaluator is not safe for concurrent use;
// give each goroutine its own.
func NewEvaluator(c Costs, r Rates) (*Evaluator, error) {
	return analytic.NewEvaluator(c, r)
}

// Simulation re-exports.
type (
	// SimConfig parameterises a Monte-Carlo campaign.
	SimConfig = sim.Config
	// SimResult aggregates a campaign.
	SimResult = sim.Result
)

// Simulate runs a Monte-Carlo campaign validating a pattern.
func Simulate(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// Engine re-exports.
type (
	// Application is a computation protectable by the engine
	// (Advance/Snapshot/Restore).
	Application = engine.Application
	// Verifier checks an application for silent corruption.
	Verifier = engine.Verifier
	// VerifierFunc adapts a function to Verifier.
	VerifierFunc = engine.VerifierFunc
	// WorkFunc adapts a stateless function to Application
	// (measurement-only workloads).
	WorkFunc = engine.WorkFunc
	// EngineConfig assembles an engine run.
	EngineConfig = engine.Config
	// EngineReport summarises an engine run.
	EngineReport = engine.Report
	// Storage persists two-level checkpoints.
	Storage = engine.Storage
)

// Protect executes a real application under a pattern with two-level
// checkpointing, verification and recovery.
func Protect(cfg EngineConfig) (EngineReport, error) { return engine.Run(cfg) }

// Adaptive re-exports: the observe → fit → re-plan loop of
// internal/adapt.
type (
	// AdaptiveConfig assembles an adaptive session: pattern family,
	// costs, prior rates, estimator tuning and the regret threshold.
	AdaptiveConfig = adapt.Config
	// AdaptiveSession is one live observe → fit → re-plan loop; safe
	// for concurrent use.
	AdaptiveSession = adapt.Session
	// AdaptiveDecision reports what one observation did: fitted rates,
	// predicted overheads, regret and whether the plan was swapped.
	AdaptiveDecision = adapt.Decision
	// AdaptiveStatus is a snapshot of a session's counters and state.
	AdaptiveStatus = adapt.Status
	// AdaptiveController feeds an engine run's pattern-boundary
	// telemetry into a session (wire its Boundary method into
	// EngineConfig.Boundary).
	AdaptiveController = adapt.Controller
	// AdaptiveObservation is one censored interval observation: event
	// counts and exposure seconds per error source.
	AdaptiveObservation = adapt.Observation
)

// Adaptive opens an adaptive re-planning session: it plans the family
// at the prior rates, then refits the rates from the observations fed
// to Session.Observe and swaps plans when the incumbent's predicted
// overhead exceeds the optimum by the configured regret threshold.
func Adaptive(cfg AdaptiveConfig) (*AdaptiveSession, error) { return adapt.NewSession(cfg) }

// NewAdaptiveController binds a controller to a session so an engine
// run can drive it: pass ctl.Boundary as EngineConfig.Boundary. A
// controller belongs to exactly one engine run.
func NewAdaptiveController(s *AdaptiveSession) *AdaptiveController { return adapt.NewController(s) }

// Service re-exports: the online planning layer behind cmd/respatd,
// exposed so applications can embed the planning API in their own HTTP
// servers (mount Service.Handler() under a route of choice).
type (
	// Service plans, evaluates and compares patterns behind a sharded
	// LRU plan cache with request coalescing; safe for concurrent use.
	Service = service.Service
	// ServiceConfig sizes the service (cache shards and capacity,
	// batch-request parallelism). The zero value gets sane defaults.
	ServiceConfig = service.Config
)

// NewService builds a planning service. Service.Handler() returns its
// HTTP API (see cmd/respatd for the endpoint list).
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// Multilevel re-exports: patterns with a hierarchy of checkpoint
// levels combined with the paper's silent-error verifications
// (internal/multilevel) — the composition the Section 4.1 remark
// contrasts the single-level patterns against.
type (
	// MultilevelParams describes the hierarchy (per-level C_l/R_l and
	// fail-stop shares q_l), the verification costs and the rates.
	MultilevelParams = multilevel.Params
	// MultilevelLevel is one checkpoint level of the hierarchy.
	MultilevelLevel = multilevel.Level
	// MultilevelSpec is one concrete multilevel pattern
	// (W, n_1..n_L, m).
	MultilevelSpec = multilevel.Spec
	// MultilevelPlan is an optimised multilevel pattern.
	MultilevelPlan = multilevel.Plan
	// MultilevelEvaluator is the reusable exact expected-time evaluator
	// of the multilevel model.
	MultilevelEvaluator = multilevel.Evaluator
	// MultilevelSimConfig parameterises a multilevel Monte-Carlo
	// campaign.
	MultilevelSimConfig = sim.MultilevelConfig
	// MultilevelSimResult aggregates a multilevel campaign.
	MultilevelSimResult = sim.MultilevelResult
	// MultilevelEngineConfig assembles a multilevel runtime run
	// (per-level storage, level-aware rollback, Boundary swap hook).
	MultilevelEngineConfig = multilevel.EngineConfig
	// MultilevelReport summarises a multilevel runtime run.
	MultilevelReport = multilevel.Report
)

// OptimalMultilevel returns the plan minimising the exact expected
// overhead of the multilevel model over the pattern length, the
// per-level interval counts and the chunk count.
func OptimalMultilevel(p MultilevelParams) (MultilevelPlan, error) {
	return multilevel.Optimize(p)
}

// MultilevelFromPlatform derives a multilevel configuration with the
// given hierarchy depth from a Table 2 platform (geometric cost
// interpolation between the memory and disk tiers, Di et al.-style
// fail-stop locality shares).
func MultilevelFromPlatform(p Platform, levels int) (MultilevelParams, error) {
	return multilevel.FromPlatform(p, levels)
}

// MultilevelExpectedTime evaluates the exact expected execution time
// of a multilevel pattern; use NewMultilevelEvaluator in planning
// loops.
func MultilevelExpectedTime(p MultilevelParams, s MultilevelSpec) (float64, error) {
	return multilevel.ExpectedTime(p, s)
}

// NewMultilevelEvaluator validates the configuration once and returns
// an evaluator bound to it; not safe for concurrent use.
func NewMultilevelEvaluator(p MultilevelParams) (*MultilevelEvaluator, error) {
	return multilevel.NewEvaluator(p)
}

// SimulateMultilevel runs a Monte-Carlo campaign validating a
// multilevel pattern (per-level exposure rollback, deterministic for
// any worker count).
func SimulateMultilevel(cfg MultilevelSimConfig) (MultilevelSimResult, error) {
	return sim.RunMultilevel(cfg)
}

// ProtectMultilevel executes a real application under a multilevel
// pattern with per-level checkpoints, verification and level-aware
// recovery; the Boundary hook is the plan-swap point for adaptive
// loops.
func ProtectMultilevel(cfg MultilevelEngineConfig) (MultilevelReport, error) {
	return multilevel.RunEngine(cfg)
}

// Two-level comparator re-exports (internal/twolevel): the classic
// two-level fail-stop protocol of the Section 4.1 remark, exposed so
// the paper's structural comparison is runnable from the facade and
// cmd/respat -mode twolevel.
type (
	// TwoLevelParams describes the two-level fail-stop protocol
	// (rate, local share, local/disk checkpoint and recovery costs).
	TwoLevelParams = twolevel.Params
	// TwoLevelPlan is the numerically optimised two-level plan.
	TwoLevelPlan = twolevel.Plan
	// TwoLevelComparison sets the two-level optimum against the
	// rate-matched single-level disk-only baseline.
	TwoLevelComparison = twolevel.Comparison
)

// CompareTwoLevel optimises the two-level fail-stop protocol and its
// disk-only degeneration for the same error rate and reports the gain
// of the local level. The multilevel evaluator reproduces these
// numbers at L = 2 with a zero silent-error rate (asserted in
// internal/multilevel).
func CompareTwoLevel(p TwoLevelParams) (TwoLevelComparison, error) {
	return twolevel.Compare(p)
}

// Fleet re-exports: the deterministic fleet-scale discrete-event
// simulator (internal/fleet) behind cmd/fleet — open-loop job arrivals
// against a shared cluster, per-job resilience plans from the warm
// planners, per-job fault injection on the internal/sim exposure
// clocks, and SLO metrics.
type (
	// FleetConfig assembles a fleet campaign: platform, cluster size,
	// workload (synthesized or trace-driven), resilience mode and seed.
	FleetConfig = fleet.Config
	// FleetJob is one job of a fleet workload.
	FleetJob = fleet.Job
	// FleetMode selects the per-job resilience plan family.
	FleetMode = fleet.Mode
	// FleetResult is the campaign report (makespan, utilization,
	// queue-delay / overhead / sojourn distributions, event totals and
	// per-shape plans); Result.JSON is byte-identical for any worker
	// count at a fixed seed.
	FleetResult = fleet.Result
)

// The fleet resilience modes.
const (
	// FleetPattern plans each job with the paper's single-level
	// patterns (Optimal + exact refinement).
	FleetPattern = fleet.ModePattern
	// FleetTwoLevel plans each job with a two-level checkpoint
	// hierarchy (multilevel planner at L = 2).
	FleetTwoLevel = fleet.ModeTwoLevel
	// FleetMultilevel plans each job with the full multilevel
	// hierarchy (FleetConfig.Levels, default 3).
	FleetMultilevel = fleet.ModeMultilevel
)

// SimulateFleet runs a fleet campaign: plan every distinct job shape
// with a warm planner, simulate every job's fault-injected execution
// in parallel, dispatch the jobs through the FIFO/backfill queue and
// reduce the SLO metrics deterministically.
func SimulateFleet(cfg FleetConfig) (FleetResult, error) { return fleet.Run(cfg) }

// ParseFleetMode converts a mode name (pattern | twolevel |
// multilevel, case-insensitive) to a FleetMode.
func ParseFleetMode(s string) (FleetMode, error) { return fleet.ParseMode(s) }

// ParseFleetTrace reads the cmd/fleet job-trace format (documented in
// docs/api.md) into a workload for FleetConfig.Trace; def is the mode
// of jobs that do not name one.
func ParseFleetTrace(r io.Reader, def FleetMode) ([]FleetJob, error) {
	return fleet.ParseTrace(r, def)
}

// Platforms returns the four Table 2 platforms (Hera, Atlas, Coastal,
// Coastal-SSD) with the paper's simulation default costs.
func Platforms() []Platform { return platform.Table2() }

// PlatformByName returns the named Table 2 platform.
func PlatformByName(name string) (Platform, error) { return platform.ByName(name) }
