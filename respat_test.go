package respat_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"respat"
	"respat/internal/faults"
)

func TestFacadeEndToEnd(t *testing.T) {
	hera, err := respat.PlatformByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := respat.Optimal(respat.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if plan.W <= 0 || plan.Overhead <= 0 {
		t.Fatalf("implausible plan: %+v", plan)
	}
	res, err := respat.Simulate(respat.SimConfig{
		Pattern:     plan.Pattern,
		Costs:       hera.Costs,
		Rates:       hera.Rates,
		Patterns:    30,
		Runs:        10,
		Seed:        3,
		ErrorsInOps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Overhead.Mean()-plan.Overhead) > 0.02 {
		t.Errorf("simulated %v vs predicted %v", res.Overhead.Mean(), plan.Overhead)
	}
}

// TestFacadeMultilevel walks the multilevel surface end to end: derive
// a hierarchy from a platform, plan it, validate the plan by
// simulation and execute a protected run under it.
func TestFacadeMultilevel(t *testing.T) {
	hera, err := respat.PlatformByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	params, err := respat.MultilevelFromPlatform(hera, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := respat.OptimalMultilevel(params)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spec.W <= 0 || plan.Overhead <= 0 || len(plan.Spec.Counts) != 2 {
		t.Fatalf("implausible plan: %+v", plan)
	}
	e, err := respat.MultilevelExpectedTime(params, plan.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if h := e/plan.Spec.W - 1; math.Abs(h-plan.Overhead) > 1e-12 {
		t.Errorf("evaluator overhead %v vs plan %v", h, plan.Overhead)
	}
	res, err := respat.SimulateMultilevel(respat.MultilevelSimConfig{
		Params: params, Spec: plan.Spec,
		Patterns: 30, Runs: 60, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Overhead.Mean()-plan.Overhead) > 0.02 {
		t.Errorf("simulated %v vs predicted %v", res.Overhead.Mean(), plan.Overhead)
	}
	rep, err := respat.ProtectMultilevel(respat.MultilevelEngineConfig{
		App:      respat.WorkFunc(func(float64) error { return nil }),
		Params:   params,
		Spec:     plan.Spec,
		Patterns: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Work != 2*plan.Spec.W {
		t.Errorf("protected work %v, want %v", rep.Work, 2*plan.Spec.W)
	}
}

// TestFacadeCompareTwoLevel exercises the de-orphaned §4.1 comparator.
func TestFacadeCompareTwoLevel(t *testing.T) {
	cmp, err := respat.CompareTwoLevel(respat.TwoLevelParams{
		Lambda: 9.46e-6, LocalShare: 0.8,
		LocalCkpt: 15.4, DiskCkpt: 300, LocalRec: 15.4, DiskRec: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Gain <= 0 {
		t.Errorf("expected a positive local-level gain, got %v", cmp.Gain)
	}
}

func TestFacadeKinds(t *testing.T) {
	ks := respat.Kinds()
	if len(ks) != 6 || ks[0] != respat.PD || ks[5] != respat.PDMV {
		t.Errorf("Kinds = %v", ks)
	}
	k, err := respat.ParseKind("pdm")
	if err != nil || k != respat.PDM {
		t.Errorf("ParseKind = %v, %v", k, err)
	}
}

func TestFacadePredictAndExpected(t *testing.T) {
	hera, err := respat.PlatformByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	h := respat.PredictOverhead(respat.PD, hera.Costs, hera.Rates)
	if math.Abs(h-0.0714) > 0.001 {
		t.Errorf("PredictOverhead = %v, want ~0.0714", h)
	}
	plan, err := respat.Optimal(respat.PD, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	e, err := respat.ExpectedTime(plan.Pattern, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if e <= plan.W {
		t.Errorf("expected time %v should exceed work %v", e, plan.W)
	}
}

func TestFacadeOptimalExact(t *testing.T) {
	hera, err := respat.PlatformByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := respat.OptimalExact(respat.PDM, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	first, err := respat.Optimal(respat.PDM, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ep.Overhead-first.Overhead) > 0.005 {
		t.Errorf("exact %v vs first-order %v", ep.Overhead, first.Overhead)
	}
}

func TestFacadeProtect(t *testing.T) {
	hera, err := respat.PlatformByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := respat.Optimal(respat.PD, hera.Costs, hera.Rates)
	if err != nil {
		t.Fatal(err)
	}
	var work float64
	app := appFunc(func(w float64) { work += w })
	rep, err := respat.Protect(respat.EngineConfig{
		App:      app,
		Pattern:  plan.Pattern,
		Costs:    hera.Costs,
		Patterns: 2,
		FailStop: faults.NewTrace([]float64{plan.W / 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiskRecs != 1 || rep.FailStop != 1 {
		t.Errorf("report: %+v", rep)
	}
	// The engine never Advances work lost to a crash, so exactly the
	// two committed patterns' worth of work was applied.
	if math.Abs(work-2*plan.W)/plan.W > 1e-9 {
		t.Errorf("work executed = %v, want %v", work, 2*plan.W)
	}
}

func TestFacadeAdaptive(t *testing.T) {
	hera, err := respat.PlatformByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := respat.Adaptive(respat.AdaptiveConfig{
		Kind: respat.PDMV, Costs: hera.Costs, Prior: hera.Rates,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Rates(); got != hera.Rates {
		t.Fatalf("initial fitted rates %+v != prior %+v", got, hera.Rates)
	}
	// Windows at ~100x Hera's rates eventually force a re-plan.
	var swapped bool
	for i := 0; i < 40 && !swapped; i++ {
		d, err := sess.Observe(respat.AdaptiveObservation{
			FailStopEvents: 2, FailStopExposure: 1e5,
			SilentEvents: 2, SilentExposure: 1e5,
		})
		if err != nil {
			t.Fatal(err)
		}
		swapped = d.Replanned
	}
	if !swapped {
		t.Fatalf("no re-plan after 40 shifted observations (status %+v)", sess.Status())
	}
	// The controller is the engine-side adapter; one boundary call with
	// a zero report must not swap.
	ctl := respat.NewAdaptiveController(sess)
	next, err := ctl.Boundary(1, respat.EngineReport{})
	if err != nil {
		t.Fatal(err)
	}
	if next != nil {
		t.Fatal("empty boundary report triggered a swap")
	}
}

// appFunc is a stateless test application counting executed work.
type appFunc func(float64)

func (f appFunc) Advance(w float64) error { f(w); return nil }
func (appFunc) Snapshot() ([]byte, error) { return []byte{1}, nil }
func (appFunc) Restore([]byte) error      { return nil }

// TestFacadeFleet runs a small fleet campaign through the facade: a
// trace parsed with ParseFleetTrace, mixed modes, and the same-seed
// byte-identical JSON contract across worker counts.
func TestFacadeFleet(t *testing.T) {
	hera, err := respat.PlatformByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	mode, err := respat.ParseFleetMode("twolevel")
	if err != nil || mode != respat.FleetTwoLevel {
		t.Fatalf("ParseFleetMode = %v, %v", mode, err)
	}
	trace, err := respat.ParseFleetTrace(strings.NewReader(
		"0 200000 8\n600 200000 8 pattern\n1200 400000 16 multilevel\n"), mode)
	if err != nil {
		t.Fatal(err)
	}
	cfg := respat.FleetConfig{
		Platform: hera, Nodes: 32, Family: respat.PDMV,
		Trace: trace, Seed: 17,
	}
	var golden []byte
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		res, err := respat.SimulateFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Jobs != 3 || len(res.Plans) != 3 {
			t.Fatalf("jobs = %d, plans = %d; want 3 and 3", res.Jobs, len(res.Plans))
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Fatalf("utilization %v outside (0, 1]", res.Utilization)
		}
		b, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = b
		} else if !bytes.Equal(golden, b) {
			t.Fatalf("facade fleet report differs across worker counts")
		}
	}
}
