package main

import (
	"runtime"
	"testing"
	"time"

	"respat/internal/service"
)

// benchTestConfig is the fixed-seed hermetic campaign CI gates on.
func benchTestConfig() benchConfig {
	return benchConfig{
		inprocess: true,
		mode:      "closed",
		clients:   8,
		requests:  400,
		configs:   24,
		endpoints: []string{"plan", "plan/exact"},
		dist:      "uniform",
		seed:      42,
		timeout:   time.Minute,
		sloP99:    5 * time.Second, // generous: the gate is on errors, not machine speed
		sloErr:    0,
		sloQPS:    1,
	}
}

// TestClosedLoopSLO is the CI SLO assertion: at a fixed seed, the
// in-process closed loop completes every request without a single
// error and the report passes its SLO check.
func TestClosedLoopSLO(t *testing.T) {
	rep, err := run(benchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 400 {
		t.Fatalf("completed %d requests, want 400", rep.Requests)
	}
	if rep.Errors != 0 || rep.ErrorRate != 0 {
		t.Fatalf("%d errors (rate %v): %v", rep.Errors, rep.ErrorRate, rep.Status)
	}
	if rep.Status["200"] != 400 {
		t.Fatalf("status spread %v, want all 200", rep.Status)
	}
	if rep.SLO == nil || !rep.SLO.Pass {
		t.Fatalf("SLO check failed: %+v", rep.SLO)
	}
	if rep.QPS <= 0 || rep.P99Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("implausible latency report: qps=%v p50=%v p99=%v", rep.QPS, rep.P50Ms, rep.P99Ms)
	}
	// The hermetic service samples every request, so the stage
	// attribution must cover the whole campaign.
	app, ok := rep.ServerTiming["app"]
	if !ok {
		t.Fatalf("no app entry in server-timing attribution: %v", rep.ServerTiming)
	}
	if app.Count != 400 {
		t.Fatalf("app timing covered %d of 400 requests", app.Count)
	}
	if app.MeanMs < 0 || app.TotalMs < app.MeanMs && app.Count > 1 {
		t.Fatalf("implausible app timing: %+v", app)
	}
	if _, ok := rep.ServerTiming["decode"]; !ok {
		t.Fatalf("no decode stage in server-timing attribution: %v", rep.ServerTiming)
	}
}

// TestParseServerTiming pins the header subset respatd emits.
func TestParseServerTiming(t *testing.T) {
	got := parseServerTiming("app;dur=12.345, decode;dur=0.01, cache_lookup;dur=0")
	want := []stageTiming{{"app", 12.345}, {"decode", 0.01}, {"cache_lookup", 0}}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if parseServerTiming("") != nil {
		t.Fatal("empty header should parse to nil")
	}
	// Malformed entries are skipped, valid ones kept.
	got = parseServerTiming("bad, alsobad;x=1, ok;dur=2.5, neg;dur=-1")
	if len(got) != 1 || got[0] != (stageTiming{"ok", 2.5}) {
		t.Fatalf("malformed header parsed to %v", got)
	}
}

// TestSynthesizeDeterministic pins the workload to the seed: same
// seed, same request sequence; different seed, different key space.
func TestSynthesizeDeterministic(t *testing.T) {
	cfg := benchTestConfig()
	a, err := synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != cfg.configs*len(cfg.endpoints) {
		t.Fatalf("synthesized %d and %d items, want %d", len(a), len(b), cfg.configs*len(cfg.endpoints))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs across identical seeds", i)
		}
	}
	cfg.seed++
	c, err := synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seed does not influence the synthesized key space")
	}
}

// TestOpenLoop exercises the Poisson arrival path briefly: arrivals
// are either completed or dropped by the inflight cap, never lost.
func TestOpenLoop(t *testing.T) {
	cfg := benchTestConfig()
	cfg.mode = "open"
	cfg.rate = 4000
	cfg.duration = 150 * time.Millisecond
	cfg.clients = 4
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("open loop completed no requests")
	}
	var counted int64
	for _, n := range rep.Status {
		counted += n
	}
	if counted != rep.Requests {
		t.Fatalf("status counts sum to %d, requests %d", counted, rep.Requests)
	}
}

// TestZipfPicker sanity-checks the popularity curve: the hottest key
// dominates a uniform share.
func TestZipfPicker(t *testing.T) {
	pick, err := picker("zipf", 50, rng(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 50)
	for i := 0; i < 20000; i++ {
		counts[pick()]++
	}
	if counts[0] <= 20000/50 {
		t.Fatalf("hottest key drew %d of 20000, no hotter than uniform", counts[0])
	}
	if _, err := picker("nope", 3, rng(1, 1)); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

// TestClientPoolNoLeak asserts the client pools wind down completely
// after both loop modes (run with -race in CI).
func TestClientPoolNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	h := service.New(service.Config{}).Handler()

	closed := benchTestConfig()
	closed.handler = h
	closed.inprocess = false
	if _, err := run(closed); err != nil {
		t.Fatal(err)
	}
	open := benchTestConfig()
	open.handler = h
	open.inprocess = false
	open.mode = "open"
	open.rate = 2000
	open.duration = 100 * time.Millisecond
	if _, err := run(open); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutine leak: %d running, baseline %d", n, baseline)
	}
}
