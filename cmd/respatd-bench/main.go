// Command respatd-bench is the SLO-validating load generator for
// respatd. It synthesizes a seeded key space of planning requests,
// drives the daemon in closed-loop (fixed client concurrency, each
// client issuing the next request as soon as the last returns) or
// open-loop (Poisson arrivals at a target rate, an inflight cap
// standing in for client-side timeouts) mode, and reports sustained
// QPS, p50/p90/p99 latency and error rate against target SLOs as a
// machine-readable JSON document (consumed by scripts/bench.sh).
//
// Usage:
//
//	respatd-bench -url http://localhost:8080 -mode closed -clients 32 -requests 20000
//	respatd-bench -url http://localhost:8080 -mode open -rate 500 -duration 30s \
//	    -slo-p99 50ms -slo-error-rate 0.001 -slo-min-qps 400
//	respatd-bench -inprocess -requests 5000        # hermetic; used by CI
//
// The exit status is 1 when any configured SLO is violated, so the
// command doubles as a CI gate. -inprocess drives an in-process
// service handler instead of a network target: same code path minus
// the kernel, deterministic enough to gate at a fixed seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"math/rand/v2"

	"respat/internal/core"
	"respat/internal/faults"
	"respat/internal/obs"
	"respat/internal/platform"
	"respat/internal/service"
	"respat/internal/stats"
)

func main() {
	var (
		url       = flag.String("url", "", "respatd base URL (e.g. http://localhost:8080)")
		inprocess = flag.Bool("inprocess", false, "drive an in-process service instead of -url")
		mode      = flag.String("mode", "closed", "load mode: closed | open")
		clients   = flag.Int("clients", 16, "closed-loop client count / open-loop inflight cap")
		requests  = flag.Int64("requests", 10000, "closed-loop total request count")
		rate      = flag.Float64("rate", 200, "open-loop Poisson arrival rate (req/s)")
		duration  = flag.Duration("duration", 10*time.Second, "open-loop run length")
		configs   = flag.Int("configs", 64, "distinct planning configurations in the key space")
		endpoints = flag.String("endpoints", "plan,plan/exact", "comma-separated endpoint mix: plan, plan/exact, plan/multilevel")
		dist      = flag.String("dist", "uniform", "key popularity: uniform | zipf")
		seed      = flag.Uint64("seed", 1, "workload seed (same seed, same request sequence)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		sloP99    = flag.Duration("slo-p99", 0, "SLO: max p99 latency (0 = unchecked)")
		sloErr    = flag.Float64("slo-error-rate", -1, "SLO: max error rate in [0,1] (-1 = unchecked)")
		sloQPS    = flag.Float64("slo-min-qps", 0, "SLO: min sustained QPS (0 = unchecked)")
	)
	flag.Parse()
	cfg := benchConfig{
		target:    *url,
		inprocess: *inprocess,
		mode:      *mode,
		clients:   *clients,
		requests:  *requests,
		rate:      *rate,
		duration:  *duration,
		configs:   *configs,
		endpoints: strings.Split(*endpoints, ","),
		dist:      *dist,
		seed:      *seed,
		timeout:   *timeout,
		sloP99:    *sloP99,
		sloErr:    *sloErr,
		sloQPS:    *sloQPS,
	}
	report, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "respatd-bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(report)
	if report.SLO != nil && !report.SLO.Pass {
		fmt.Fprintln(os.Stderr, "respatd-bench: SLO violated")
		os.Exit(1)
	}
}

type benchConfig struct {
	target    string
	inprocess bool
	handler   http.Handler // in-process target override (tests)
	mode      string
	clients   int
	requests  int64
	rate      float64
	duration  time.Duration
	configs   int
	endpoints []string
	dist      string
	seed      uint64
	timeout   time.Duration
	sloP99    time.Duration
	sloErr    float64
	sloQPS    float64
}

// SLOReport echoes the configured targets and the verdict.
type SLOReport struct {
	P99Ms        float64 `json:"p99Ms,omitempty"`
	MaxErrorRate float64 `json:"maxErrorRate,omitempty"`
	MinQPS       float64 `json:"minQps,omitempty"`
	Pass         bool    `json:"pass"`
}

// StageReport aggregates one Server-Timing entry across the sampled
// responses that carried it: how many responses reported the stage and
// the total/mean server-side milliseconds spent in it. Comparing the
// "app" entry's mean against the client-observed mean attributes the
// gap to the network and the client stack.
type StageReport struct {
	Count   int64   `json:"count"`
	TotalMs float64 `json:"totalMs"`
	MeanMs  float64 `json:"meanMs"`
}

// Report is the JSON document written to stdout.
type Report struct {
	Mode       string           `json:"mode"`
	Seed       uint64           `json:"seed"`
	Requests   int64            `json:"requests"`
	Dropped    int64            `json:"dropped,omitempty"`
	Errors     int64            `json:"errors"`
	ErrorRate  float64          `json:"errorRate"`
	DurationMs float64          `json:"durationMs"`
	QPS        float64          `json:"qps"`
	P50Ms      float64          `json:"p50Ms"`
	P90Ms      float64          `json:"p90Ms"`
	P99Ms      float64          `json:"p99Ms"`
	Status     map[string]int64 `json:"status"`
	Outcomes   map[string]int64 `json:"outcomes,omitempty"`
	// ServerTiming breaks server-side time down by serving stage,
	// aggregated from the Server-Timing headers of sampled responses
	// (absent when the target's tracer sampled nothing).
	ServerTiming map[string]StageReport `json:"serverTiming,omitempty"`
	SLO          *SLOReport             `json:"slo,omitempty"`
}

// workItem is one request of the synthesized key space.
type workItem struct {
	path string
	body string
}

// rng derives a decorrelated PCG stream, the repo-wide seeding
// discipline (internal/faults.SplitSeed).
func rng(seed, stream uint64) *rand.Rand {
	s1, s2 := faults.SplitSeed(seed, stream)
	return rand.New(rand.NewPCG(s1, s2))
}

// synthesize builds the seeded key space: configs distinct
// configurations, each requested on every endpoint of the mix. Rates
// and disk costs are scattered geometrically (x0.5..x2) around the
// Table 2 platforms, so the space exercises the planner across its
// real operating range while staying valid.
func synthesize(cfg benchConfig) ([]workItem, error) {
	plats := platform.Table2()
	if len(plats) == 0 {
		return nil, fmt.Errorf("no built-in platforms")
	}
	for _, ep := range cfg.endpoints {
		switch ep {
		case "plan", "plan/exact", "plan/multilevel":
		default:
			return nil, fmt.Errorf("unknown endpoint %q (plan, plan/exact, plan/multilevel)", ep)
		}
	}
	if cfg.configs <= 0 {
		return nil, fmt.Errorf("configs = %d, need > 0", cfg.configs)
	}
	r := rng(cfg.seed, 0)
	kinds := []core.Kind{core.PD, core.PDV, core.PDMV}
	scatter := func(x float64) float64 { return x * math.Exp((r.Float64()*2-1)*math.Ln2) }
	items := make([]workItem, 0, cfg.configs*len(cfg.endpoints))
	for i := 0; i < cfg.configs; i++ {
		p := plats[i%len(plats)]
		costs, rates := p.Costs, p.Rates
		rates.FailStop = scatter(rates.FailStop)
		rates.Silent = scatter(rates.Silent)
		costs.DiskCkpt = scatter(costs.DiskCkpt)
		costs.DiskRec = scatter(costs.DiskRec)
		kind := kinds[i%len(kinds)]
		cb, err := json.Marshal(costs)
		if err != nil {
			return nil, err
		}
		rb, err := json.Marshal(rates)
		if err != nil {
			return nil, err
		}
		body := fmt.Sprintf(`{"kind":%q,"costs":%s,"rates":%s}`, kind, cb, rb)
		for _, ep := range cfg.endpoints {
			if ep == "plan/multilevel" {
				// The multilevel endpoint takes a hierarchy, not a flat
				// configuration; cycle the platform form instead.
				items = append(items, workItem{
					path: "/v1/plan/multilevel",
					body: fmt.Sprintf(`{"platform":%q,"levels":%d}`, p.Name, 2+i%2),
				})
				continue
			}
			items = append(items, workItem{path: "/v1/" + ep, body: body})
		}
	}
	return items, nil
}

// picker returns a seeded index sampler over n items: uniform, or a
// zipf(1.1) popularity curve (a few hot keys, a long cold tail — the
// cache-friendly shape real plan traffic has).
func picker(dist string, n int, r *rand.Rand) (func() int, error) {
	switch dist {
	case "uniform":
		return func() int { return r.IntN(n) }, nil
	case "zipf":
		cdf := make([]float64, n)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += 1 / math.Pow(float64(i+1), 1.1)
			cdf[i] = sum
		}
		for i := range cdf {
			cdf[i] /= sum
		}
		return func() int {
			return sort.SearchFloat64s(cdf, r.Float64())
		}, nil
	default:
		return nil, fmt.Errorf("unknown distribution %q (uniform, zipf)", dist)
	}
}

// handlerTransport serves requests directly from an in-process
// handler: the hermetic -inprocess mode.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// collector accumulates per-request observations. One mutex is fine:
// the critical section is tens of nanoseconds against requests that
// take microseconds at best.
type collector struct {
	mu       sync.Mutex
	lat      []float64 // milliseconds
	status   map[string]int64
	outcomes map[string]int64
	stages   map[string]*StageReport // Server-Timing entry name -> aggregate
	errors   int64
	requests int64
}

func newCollector() *collector {
	return &collector{
		status:   make(map[string]int64),
		outcomes: make(map[string]int64),
		stages:   make(map[string]*StageReport),
	}
}

func (c *collector) record(status int, outcome, serverTiming string, latency time.Duration, transportErr bool) {
	entries := parseServerTiming(serverTiming) // parse outside the lock
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	c.lat = append(c.lat, float64(latency.Nanoseconds())/1e6)
	for _, e := range entries {
		agg := c.stages[e.name]
		if agg == nil {
			agg = &StageReport{}
			c.stages[e.name] = agg
		}
		agg.Count++
		agg.TotalMs += e.durMs
	}
	if transportErr {
		c.status["transport-error"]++
		c.errors++
		return
	}
	c.status[fmt.Sprintf("%d", status)]++
	if status >= 400 {
		c.errors++
	}
	if outcome != "" {
		c.outcomes[outcome]++
	}
}

// stageTiming is one parsed Server-Timing entry.
type stageTiming struct {
	name  string
	durMs float64
}

// parseServerTiming decodes the Server-Timing header respatd emits on
// sampled responses: comma-separated `name;dur=<ms>` entries (the
// subset of RFC 9112 Server-Timing the daemon produces). Entries
// without a parseable dur are skipped; an empty header (the unsampled
// common case) returns nil without allocating.
func parseServerTiming(h string) []stageTiming {
	if h == "" {
		return nil
	}
	var out []stageTiming
	for _, entry := range strings.Split(h, ",") {
		name, params, ok := strings.Cut(strings.TrimSpace(entry), ";")
		if !ok || name == "" {
			continue
		}
		for _, p := range strings.Split(params, ";") {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok || k != "dur" {
				continue
			}
			var ms float64
			if _, err := fmt.Sscanf(v, "%g", &ms); err == nil && ms >= 0 {
				out = append(out, stageTiming{name: name, durMs: ms})
			}
			break
		}
	}
	return out
}

// run executes one load-generation campaign and builds the report.
func run(cfg benchConfig) (Report, error) {
	target := cfg.target
	client := &http.Client{Timeout: cfg.timeout}
	if cfg.inprocess || cfg.handler != nil {
		h := cfg.handler
		if h == nil {
			// Provision the embedded service's cold-plan gate to the
			// drive concurrency, so the hermetic mode measures the
			// serving path rather than deliberate admission shedding
			// (use -url against a real daemon to measure that). Sample
			// every request so each response carries Server-Timing and
			// the report's stage attribution covers the whole run.
			h = service.New(service.Config{
				ColdWorkers: cfg.clients,
				ColdQueue:   8 * cfg.clients,
				Tracer:      obs.New(obs.Config{SampleEvery: 1, Seed: cfg.seed}),
			}).Handler()
		}
		client.Transport = handlerTransport{h: h}
		target = "http://respatd"
	} else if target == "" {
		return Report{}, fmt.Errorf("need -url or -inprocess")
	}
	target = strings.TrimSuffix(target, "/")
	if cfg.clients <= 0 {
		return Report{}, fmt.Errorf("clients = %d, need > 0", cfg.clients)
	}
	items, err := synthesize(cfg)
	if err != nil {
		return Report{}, err
	}

	coll := newCollector()
	var elapsed time.Duration
	var dropped int64
	switch cfg.mode {
	case "closed":
		elapsed, err = runClosed(cfg, items, client, target, coll)
	case "open":
		elapsed, dropped, err = runOpen(cfg, items, client, target, coll)
	default:
		err = fmt.Errorf("unknown mode %q (closed, open)", cfg.mode)
	}
	if err != nil {
		return Report{}, err
	}

	rep := Report{
		Mode:       cfg.mode,
		Seed:       cfg.seed,
		Requests:   coll.requests,
		Dropped:    dropped,
		Errors:     coll.errors,
		DurationMs: float64(elapsed.Nanoseconds()) / 1e6,
		Status:     coll.status,
		Outcomes:   coll.outcomes,
	}
	if attempted := coll.requests + dropped; attempted > 0 {
		rep.ErrorRate = float64(coll.errors+dropped) / float64(attempted)
	}
	if elapsed > 0 {
		rep.QPS = float64(coll.requests) / elapsed.Seconds()
	}
	if len(coll.lat) > 0 {
		qs, err := stats.Quantiles(coll.lat, 0.50, 0.90, 0.99)
		if err != nil {
			return Report{}, err
		}
		rep.P50Ms, rep.P90Ms, rep.P99Ms = qs[0], qs[1], qs[2]
	}
	if len(coll.stages) > 0 {
		rep.ServerTiming = make(map[string]StageReport, len(coll.stages))
		for name, agg := range coll.stages {
			agg.MeanMs = agg.TotalMs / float64(agg.Count)
			rep.ServerTiming[name] = *agg
		}
	}
	if cfg.sloP99 > 0 || cfg.sloErr >= 0 || cfg.sloQPS > 0 {
		slo := &SLOReport{
			P99Ms:        float64(cfg.sloP99.Nanoseconds()) / 1e6,
			MaxErrorRate: cfg.sloErr,
			MinQPS:       cfg.sloQPS,
			Pass:         true,
		}
		if cfg.sloP99 > 0 && rep.P99Ms > slo.P99Ms {
			slo.Pass = false
		}
		if cfg.sloErr >= 0 && rep.ErrorRate > cfg.sloErr {
			slo.Pass = false
		}
		if cfg.sloQPS > 0 && rep.QPS < cfg.sloQPS {
			slo.Pass = false
		}
		rep.SLO = slo
	}
	return rep, nil
}

// send issues one request and records it.
func send(client *http.Client, target string, it workItem, coll *collector) {
	start := time.Now()
	resp, err := client.Post(target+it.path, "application/json", strings.NewReader(it.body))
	if err != nil {
		coll.record(0, "", "", time.Since(start), true)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	coll.record(resp.StatusCode, resp.Header.Get(service.OutcomeHeader),
		resp.Header.Get("Server-Timing"), time.Since(start), false)
}

// runClosed drives the closed loop: cfg.clients workers pull request
// numbers from a shared counter until cfg.requests are done, each
// issuing its next request the moment the previous one returns. The
// measured QPS is the service's sustained throughput at that
// concurrency.
func runClosed(cfg benchConfig, items []workItem, client *http.Client, target string, coll *collector) (time.Duration, error) {
	if cfg.requests <= 0 {
		return 0, fmt.Errorf("requests = %d, need > 0", cfg.requests)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.clients; w++ {
		r := rng(cfg.seed, uint64(w)+1)
		pick, err := picker(cfg.dist, len(items), r)
		if err != nil {
			return 0, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= cfg.requests {
				send(client, target, items[pick()], coll)
			}
		}()
	}
	wg.Wait()
	return time.Since(start), nil
}

// runOpen drives the open loop: Poisson arrivals at cfg.rate for
// cfg.duration, each dispatched on its own goroutine. The inflight cap
// (cfg.clients) models client-side impatience: an arrival finding the
// cap exhausted is dropped and counted against the error-rate SLO,
// which is exactly how an overloaded service looks from outside.
func runOpen(cfg benchConfig, items []workItem, client *http.Client, target string, coll *collector) (time.Duration, int64, error) {
	if cfg.rate <= 0 || cfg.duration <= 0 {
		return 0, 0, fmt.Errorf("open loop needs -rate > 0 and -duration > 0")
	}
	arrivals := rng(cfg.seed, 0xA881)
	pick, err := picker(cfg.dist, len(items), rng(cfg.seed, 0xB77))
	if err != nil {
		return 0, 0, err
	}
	sem := make(chan struct{}, cfg.clients)
	var wg sync.WaitGroup
	var dropped int64
	start := time.Now()
	deadline := start.Add(cfg.duration)
	t := 0.0
	for {
		t += arrivals.ExpFloat64() / cfg.rate
		at := start.Add(time.Duration(t * float64(time.Second)))
		if at.After(deadline) {
			break
		}
		time.Sleep(time.Until(at))
		it := items[pick()]
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				send(client, target, it, coll)
			}()
		default:
			dropped++
		}
	}
	wg.Wait()
	return time.Since(start), dropped, nil
}
