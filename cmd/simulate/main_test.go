package main

import "testing"

func TestRunBasic(t *testing.T) {
	if err := run("Hera", "PDMV", 10, 4, 1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithWeakScalingAndTrace(t *testing.T) {
	if err := run("Hera", "PD", 5, 2, 1, 1, 4096, 10); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("Summit", "PD", 10, 4, 1, 0, 0, 0); err == nil {
		t.Error("unknown platform should fail")
	}
	if err := run("Hera", "XYZ", 10, 4, 1, 0, 0, 0); err == nil {
		t.Error("unknown family should fail")
	}
	if err := run("Hera", "PD", 10, 4, 1, 0, -5, 0); err == nil {
		t.Error("negative node count should fail")
	}
	if err := run("Hera", "PD", 0, 4, 1, 0, 0, 0); err == nil {
		t.Error("zero patterns should fail")
	}
}
