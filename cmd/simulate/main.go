// Command simulate plans one pattern family for a platform and runs
// the Monte-Carlo validation, printing predicted vs simulated overhead
// and the event rates of Figure 6.
//
// Usage:
//
//	simulate -platform Hera -pattern PDMV -patterns 1000 -runs 100
//	simulate -platform Atlas -pattern PD -workers 4
//
// Parallelism flags follow the repo-wide convention (DESIGN.md §2.3):
// -workers bounds the simulation goroutines inside this single
// campaign cell, exactly like cmd/experiments -workers; it defaults to
// GOMAXPROCS here because one cell is all there is (cmd/experiments
// defaults to 1 because it fans cells over -campaign-workers instead).
// Results are bit-identical for any -workers value.
package main

import (
	"flag"
	"fmt"
	"os"

	"respat"
	"respat/internal/platform"
	"respat/internal/report"
	"respat/internal/sim"
)

func main() {
	var (
		platName = flag.String("platform", "Hera", "built-in platform name")
		pattern  = flag.String("pattern", "PDMV", "pattern family")
		patterns = flag.Int("patterns", 200, "pattern instances per run")
		runs     = flag.Int("runs", 100, "Monte-Carlo repetitions")
		seed     = flag.Uint64("seed", 1, "campaign seed")
		workers  = flag.Int("workers", 0, "simulation goroutines in this cell (0 = GOMAXPROCS); matches cmd/experiments -workers")
		nodes    = flag.Int("nodes", 0, "weak-scale the platform to this node count (0 = as measured)")
		traceN   = flag.Int("trace", 0, "print the first N timeline events of run 0")
	)
	flag.Parse()
	if err := run(*platName, *pattern, *patterns, *runs, *seed, *workers, *nodes, *traceN); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(platName, pattern string, patterns, runs int, seed uint64, workers, nodes, traceN int) error {
	p, err := platform.ByName(platName)
	if err != nil {
		return err
	}
	if nodes < 0 {
		return fmt.Errorf("nodes = %d, need >= 0", nodes)
	}
	if nodes > 0 {
		p, err = p.WeakScale(nodes)
		if err != nil {
			return err
		}
	}
	k, err := respat.ParseKind(pattern)
	if err != nil {
		return err
	}
	plan, err := respat.Optimal(k, p.Costs, p.Rates)
	if err != nil {
		return err
	}
	fmt.Printf("plan: %s\n", plan)
	res, err := respat.Simulate(respat.SimConfig{
		Pattern:     plan.Pattern,
		Costs:       p.Costs,
		Rates:       p.Rates,
		Patterns:    patterns,
		Runs:        runs,
		Seed:        seed,
		Workers:     workers,
		ErrorsInOps: true,
	})
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("%s on %s: %d patterns x %d runs", k, p.Name, patterns, runs),
		"metric", "value")
	t.AddRow("predicted overhead", report.Pct(plan.Overhead, 3))
	t.AddRow("simulated overhead", report.Pct(res.Overhead.Mean(), 3)+" ± "+report.Pct(res.Overhead.CI95(), 3))
	t.AddRow("simulated total (days)", report.Fixed(res.TotalTime()/86400, 2))
	t.AddRow("disk ckpts/hour", report.Fixed(res.PerHour(res.Total.DiskCkpts), 3))
	t.AddRow("mem ckpts/hour", report.Fixed(res.PerHour(res.Total.MemCkpts), 3))
	t.AddRow("verifications/hour", report.Fixed(res.PerHour(res.Total.Verifs()), 2))
	t.AddRow("disk recoveries/day", report.Fixed(res.PerDay(res.Total.DiskRecs), 3))
	t.AddRow("mem recoveries/day", report.Fixed(res.PerDay(res.Total.MemRecs), 3))
	t.AddRow("fail-stop errors", report.I64(res.Total.FailStop))
	t.AddRow("silent errors", report.I64(res.Total.Silent))
	t.AddRow("silent masked by crashes", report.I64(res.Total.SilentMasked))
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if traceN > 0 {
		events, _, err := sim.TraceOne(sim.Config{
			Pattern: plan.Pattern, Costs: p.Costs, Rates: p.Rates,
			Patterns: patterns, Seed: seed, ErrorsInOps: true,
		}, 0)
		if err != nil {
			return err
		}
		if len(events) > traceN {
			events = events[:traceN]
		}
		fmt.Printf("\ntimeline of run 0 (first %d events):\n", len(events))
		return sim.WriteTimeline(os.Stdout, events)
	}
	return nil
}
